module rair

go 1.22
