package rair

// One benchmark per reproduced table/figure. Each iteration runs the
// corresponding experiment at reduced (benchmark-sized) durations so the
// suite completes quickly; the rairbench command runs the same drivers at
// the paper's full durations. Reported custom metrics carry the headline
// result of each experiment so `go test -bench` output doubles as a
// regression record of the reproduction.

import (
	"testing"

	"rair/internal/harness"
	"rair/internal/region"
)

// benchDur keeps benchmark iterations short.
func benchDur() harness.Durations {
	return harness.Durations{Warmup: 500, Measure: 3000, Drain: 5000}
}

// BenchmarkFig9MSP regenerates Figure 9 (impact of multi-stage
// prioritization): APL of both apps as the inter-region fraction sweeps.
func BenchmarkFig9MSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig9MSP(benchDur(), []float64{0, 0.5, 1.0}, 1)
		// APL reduction of App 0 at p=100% for RAIR_VA+SA vs RO_RR.
		last := len(res.Xs) - 1
		red := (res.APL[0][last][0] - res.APL[2][last][0]) / res.APL[0][last][0]
		b.ReportMetric(100*red, "app0_reduction_%")
	}
}

// BenchmarkFig10Routing regenerates Figure 10 (impact of routing
// algorithm): Local vs DBAR selection under RO_RR and RAIR.
func BenchmarkFig10Routing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig10Routing(benchDur(), []float64{0, 0.5, 1.0}, 1)
		last := len(res.Xs) - 1
		red := (res.APL[0][last][0] - res.APL[3][last][0]) / res.APL[0][last][0]
		b.ReportMetric(100*red, "app0_reduction_%")
	}
}

// BenchmarkFig12DPA regenerates Figure 12 (dynamic priority adaptation) on
// both load-heterogeneity scenarios.
func BenchmarkFig12DPA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := harness.Fig12DPA(harness.Fig12A, benchDur(), 1)
		bb := harness.Fig12DPA(harness.Fig12B, benchDur(), 1)
		b.ReportMetric(100*a.AvgReduction(3), "dpa_a_reduction_%")
		b.ReportMetric(100*bb.AvgReduction(3), "dpa_b_reduction_%")
	}
}

// BenchmarkFig14SixApp regenerates Figure 14 (six-application scenario,
// uniform-random global traffic).
func BenchmarkFig14SixApp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig14SixApp(benchDur(), 1)
		b.ReportMetric(100*res.AvgReduction(3), "rair_avg_reduction_%")
	}
}

// BenchmarkFig15Patterns regenerates Figure 15 (global traffic patterns).
func BenchmarkFig15Patterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig15Patterns(benchDur(), 1)
		sum := 0.0
		for pi := range res.Patterns {
			sum += res.AvgReduction[pi][len(res.Schemes)-1]
		}
		b.ReportMetric(100*sum/float64(len(res.Patterns)), "rair_avg_reduction_%")
	}
}

// BenchmarkFig17Adversarial regenerates Figure 17 (PARSEC proxies under
// adversarial traffic).
func BenchmarkFig17Adversarial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig17Adversarial(benchDur(), 1)
		b.ReportMetric(res.AvgSlowdown(0), "rorr_slowdown")
		b.ReportMetric(res.AvgSlowdown(3), "rair_slowdown")
	}
}

// BenchmarkAblateDelta regenerates the Section IV.C hysteresis sweep.
func BenchmarkAblateDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblateDelta([]float64{0, 0.2, 0.5}, benchDur(), 1)
		b.ReportMetric(100*res.AvgReduction[1], "delta02_reduction_%")
	}
}

// BenchmarkAblateVCSplit regenerates the Section VI VC split ablation.
func BenchmarkAblateVCSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblateVCSplit([]int{1, 2, 3}, benchDur(), 1)
		b.ReportMetric(100*res.AvgReduction[1], "even_split_reduction_%")
	}
}

// BenchmarkLatencyLoad regenerates the supporting latency-load curve used
// to calibrate saturation.
func BenchmarkLatencyLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.LatencyLoadCurve([]float64{0.3, 0.7, 1.0}, benchDur(), 1)
		b.ReportMetric(pts[len(pts)-1].Throughput, "sat_flits_node_cycle")
	}
}

// BenchmarkLBDRFraction regenerates the Section III.B combinatorial result.
func BenchmarkLBDRFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := region.LBDRValidFraction(16, 4, 4, 4)
		if err != nil {
			b.Fatal(err)
		}
		v, _ := f.Float64()
		b.ReportMetric(100*v, "valid_mappings_%")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: cycles per
// second for the 64-node mesh under moderate uniform load with RAIR.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sim, err := New(Config{Layout: LayoutQuadrants, Scheme: "RA_RAIR", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			b.Fatal(err)
		}
	}
	const cyclesPerRun = 5000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(Phases{Warmup: 0, Measure: cyclesPerRun, Drain: 0}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cyclesPerRun)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}
