package rair

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	sim, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.regions.Mesh().N() != 64 {
		t.Fatal("default mesh must be 8x8")
	}
	if sim.scheme.Name != "RO_RR" {
		t.Fatalf("default scheme %q", sim.scheme.Name)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{MeshW: 1},
		{Layout: "hexagon"},
		{Scheme: "MAGIC"},
		{Layout: LayoutCustom, Rects: []Rect{{0, 0, 9, 9}}},
		{Layout: LayoutCustom, Rects: []Rect{{0, 0, 2, 2}, {1, 1, 3, 3}}},
		{Depth: 5, EscapeVCs: 1, GlobalVCs: 9},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestCustomLayout(t *testing.T) {
	sim, err := New(Config{Layout: LayoutCustom, Rects: []Rect{
		{0, 0, 8, 4}, {0, 4, 8, 8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddApp(AppSpec{App: 1, LoadFrac: 0.1}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAppValidation(t *testing.T) {
	sim, _ := New(Config{Layout: LayoutHalves})
	if err := sim.AddApp(AppSpec{App: 5, LoadFrac: 0.1}); err == nil {
		t.Fatal("app without nodes accepted")
	}
	if err := sim.AddApp(AppSpec{App: 0}); err == nil {
		t.Fatal("app without rate accepted")
	}
	if err := sim.AddApp(AppSpec{App: 0, LoadFrac: 0.1, PacketRate: 0.1}); err == nil {
		t.Fatal("both rates accepted")
	}
	if err := sim.AddApp(AppSpec{App: 0, LoadFrac: 0.1, GlobalFrac: 0.8, MCFrac: 0.4}); err == nil {
		t.Fatal("fractions above 1 accepted")
	}
}

func TestRunRequiresTraffic(t *testing.T) {
	sim, _ := New(Config{})
	if _, err := sim.Run(QuickPhases()); err == nil {
		t.Fatal("run without traffic accepted")
	}
	sim2, _ := New(Config{})
	sim2.AddApp(AppSpec{App: 0, LoadFrac: 0.1})
	if _, err := sim2.Run(Phases{Measure: 0}); err == nil {
		t.Fatal("empty measurement window accepted")
	}
}

func TestRunSyntheticEndToEnd(t *testing.T) {
	sim, err := New(Config{Layout: LayoutHalves, Scheme: "RA_RAIR", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddApp(AppSpec{App: 0, LoadFrac: 0.1, GlobalFrac: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddApp(AppSpec{App: 1, LoadFrac: 0.5}); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Phases{Warmup: 500, Measure: 3000, Drain: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packets == 0 || rep.APL <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if len(rep.PerApp) != 2 {
		t.Fatalf("per-app entries %v", rep.PerApp)
	}
	if rep.GlobalAPL <= rep.RegionalAPL {
		t.Fatalf("global APL %v should exceed regional %v", rep.GlobalAPL, rep.RegionalAPL)
	}
	if !strings.Contains(rep.String(), "APL") {
		t.Fatal("report string empty")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Report {
		sim, _ := New(Config{Layout: LayoutQuadrants, Scheme: "RA_RAIR", Seed: 9})
		for a := 0; a < 4; a++ {
			sim.AddApp(AppSpec{App: a, LoadFrac: 0.2, GlobalFrac: 0.2})
		}
		rep, err := sim.Run(Phases{Warmup: 500, Measure: 2000, Drain: 5000})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.APL != b.APL || a.Packets != b.Packets {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestRunPARSECEndToEnd(t *testing.T) {
	sim, err := New(Config{Layout: LayoutQuadrants, Scheme: "RA_RAIR", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AttachPARSEC(); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddAdversary(0.2); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Phases{Warmup: 1000, Measure: 3000, Drain: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packets == 0 {
		t.Fatal("no PARSEC packets measured")
	}
	// Adversary is excluded from stats: only apps 0..3 appear.
	for app := range rep.PerApp {
		if app < 0 || app > 3 {
			t.Fatalf("unexpected app %d in report", app)
		}
	}
}

func TestMixingModesRejected(t *testing.T) {
	sim, _ := New(Config{Layout: LayoutQuadrants})
	sim.AddApp(AppSpec{App: 0, LoadFrac: 0.1})
	if err := sim.AttachPARSEC(); err == nil {
		t.Fatal("PARSEC after AddApp accepted")
	}
	sim2, _ := New(Config{Layout: LayoutQuadrants})
	sim2.AttachPARSEC()
	if err := sim2.AddApp(AppSpec{App: 0, LoadFrac: 0.1}); err == nil {
		t.Fatal("AddApp after PARSEC accepted")
	}
	if err := sim2.AddAdversary(-1); err == nil {
		t.Fatal("negative adversary rate accepted")
	}
}

func TestSchemesListed(t *testing.T) {
	for _, name := range Schemes() {
		if _, err := New(Config{Scheme: name}); err != nil {
			t.Errorf("listed scheme %q rejected: %v", name, err)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	infos := Experiments()
	if len(infos) < 10 {
		t.Fatalf("only %d experiments registered", len(infos))
	}
	for _, e := range infos {
		if e.Name == "" || e.Paper == "" {
			t.Fatalf("incomplete experiment info %+v", e)
		}
	}
	if _, err := Experiment("nope", true, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentLBDR(t *testing.T) {
	out, err := Experiment("lbdr", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.14") {
		t.Fatalf("LBDR output missing the 14%% result:\n%s", out)
	}
}

func TestReportIncludesVisuals(t *testing.T) {
	sim, _ := New(Config{Layout: LayoutHalves, Seed: 4})
	sim.AddApp(AppSpec{App: 0, LoadFrac: 0.3})
	sim.AddApp(AppSpec{App: 1, LoadFrac: 0.3})
	rep, err := sim.Run(Phases{Warmup: 200, Measure: 2000, Drain: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.LatencyHistogram, "#") {
		t.Fatalf("histogram:\n%s", rep.LatencyHistogram)
	}
	if !strings.Contains(rep.Heatmap, "utilization") {
		t.Fatalf("heatmap:\n%s", rep.Heatmap)
	}
}

func TestRoutingOptions(t *testing.T) {
	for _, r := range []string{"adaptive", "xy", "westfirst", ""} {
		sim, err := New(Config{Routing: r})
		if err != nil {
			t.Fatalf("routing %q rejected: %v", r, err)
		}
		sim.AddApp(AppSpec{App: 0, LoadFrac: 0.2})
		if _, err := sim.Run(Phases{Warmup: 100, Measure: 500, Drain: 3000}); err != nil {
			t.Fatalf("routing %q run: %v", r, err)
		}
	}
	if _, err := New(Config{Routing: "warp"}); err == nil {
		t.Fatal("unknown routing accepted")
	}
}

func TestLBDRRestrictions(t *testing.T) {
	sim, err := New(Config{Layout: LayoutQuadrants, Routing: "lbdr"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddApp(AppSpec{App: 0, LoadFrac: 0.1, GlobalFrac: 0.1}); err == nil {
		t.Fatal("LBDR accepted inter-region traffic")
	}
	if err := sim.AddApp(AppSpec{App: 0, LoadFrac: 0.1, MCFrac: 0.1}); err == nil {
		t.Fatal("LBDR accepted MC traffic")
	}
	if err := sim.AttachPARSEC(); err == nil {
		t.Fatal("LBDR accepted the memory system")
	}
	if err := sim.AddAdversary(0.1); err == nil {
		t.Fatal("LBDR accepted an adversary")
	}
	if err := sim.AddApp(AppSpec{App: 0, LoadFrac: 0.2}); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Phases{Warmup: 100, Measure: 1000, Drain: 3000})
	if err != nil || rep.Packets == 0 {
		t.Fatalf("intra-region LBDR run failed: %v", err)
	}
	// Invalid mapping: halves layout leaves no MC in... halves contain
	// corners, so build a custom MC-less region instead.
	if _, err := New(Config{Routing: "lbdr", Layout: LayoutCustom, Rects: []Rect{
		{0, 0, 2, 8}, {2, 0, 6, 8}, {6, 0, 8, 8},
	}}); err == nil {
		t.Fatal("LBDR accepted an MC-less region")
	}
}
