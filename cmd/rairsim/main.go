// Command rairsim runs one NoC simulation described by a JSON file and
// prints its latency report.
//
// Usage:
//
//	rairsim -f sim.json
//	rairsim -f sim.json -telemetry -telemetry-out tel.json
//	rairsim -f sim.json -faults drop=0.001,corrupt=0.001 -check-invariants
//	rairsim -example            # print an example configuration
//
// The file schema is documented in internal/config; in short it carries the
// simulation configuration (mesh, region layout, scheme, router
// parameters), the traffic (synthetic apps or the PARSEC proxies, plus an
// optional adversarial injector) and the run phases.
//
// -telemetry instruments every router with MSP arbitration counters, DPA
// transition counts and windowed occupancy/utilization series, written as
// JSON (or CSV when the output path ends in .csv). With -telemetry-trace N
// every N-th packet's flit lifecycle is additionally exported as Chrome
// trace_event JSON next to the telemetry output; load it in
// chrome://tracing or https://ui.perfetto.dev.
//
// -faults injects deterministic seeded faults (link flit drops and
// corruptions recovered by retransmission, credit leaks repaired by
// reconciliation, transient router stalls); the report then carries a fault
// summary. -check-invariants runs the runtime invariant checker at every
// cycle and fails the run on any violation. See DESIGN.md for both.
//
// Observability (DESIGN.md "Observability"): -attribution turns on the
// interference blame accountant, decomposing each packet's latency into
// native / foreign-region / escape-VC / fault stall cycles;
// -metrics-addr HOST:PORT serves live Prometheus text at /metrics and a
// JSON snapshot at /snapshot while the run is in flight; -obs-report PATH
// dumps the final snapshot to PATH (.json or .csv). The latter two imply
// -attribution and engine self-profiling.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"rair"
	"rair/internal/config"
	"rair/internal/obs"
)

const example = `{
  "config": {
    "layout": "halves",
    "scheme": "RA_RAIR",
    "seed": 7
  },
  "apps": [
    {"app": 0, "loadFrac": 0.10, "globalFrac": 0.5},
    {"app": 1, "loadFrac": 0.90}
  ],
  "phases": {"warmup": 10000, "measure": 100000, "drain": 20000}
}`

// usage prints the command summary and flag reference to stderr; it is
// installed as flag.Usage so unknown flags exit non-zero with the same text.
func usage() {
	fmt.Fprintf(os.Stderr, `usage: rairsim -f sim.json [flags]

Run one NoC simulation described by a JSON file and print its latency
report.

  rairsim -example                  print an example configuration
  rairsim -f sim.json -telemetry -telemetry-out tel.json
  rairsim -f sim.json -attribution -obs-report obs.json
  rairsim -f sim.json -metrics-addr localhost:9464
                                    serve live /metrics (Prometheus text)
                                    and /snapshot (JSON) during the run
  rairsim -f sim.json -faults drop=0.001,corrupt=0.001 -check-invariants

Flags:
`)
	flag.PrintDefaults()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rairsim:", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Usage = usage
	file := flag.String("f", "", "simulation description (JSON)")
	showExample := flag.Bool("example", false, "print an example configuration and exit")
	telemetry := flag.Bool("telemetry", false, "collect per-router telemetry (counters + windowed series)")
	telOut := flag.String("telemetry-out", "telemetry.json", "telemetry report path (.json or .csv)")
	telWindow := flag.Int64("telemetry-window", 0, "telemetry sampling window in cycles (0 = default 256)")
	telTrace := flag.Uint64("telemetry-trace", 0, "trace every N-th packet's flit lifecycle (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path")
	workers := flag.Int("workers", -1, "tick-engine shard count: -1 = take the config file's value, 0 = auto-select from GOMAXPROCS, >= 1 explicit (results are bit-identical at any count)")
	faultSpec := flag.String("faults", "", "inject deterministic faults, e.g. drop=0.001,corrupt=0.001,leak=0.0005,stall=0.0002")
	checkInv := flag.Bool("check-invariants", false, "run the runtime invariant checker at every cycle")
	attribution := flag.Bool("attribution", false, "enable the interference blame accountant (implies -telemetry collection)")
	profile := flag.Bool("profile", false, "enable tick-engine self-profiling (phase timings, barrier waits, quiescence)")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics and /snapshot on this address during the run (implies -attribution -profile)")
	metricsEvery := flag.Int64("metrics-every", 256, "publish a fresh snapshot to -metrics-addr every N cycles")
	obsReport := flag.String("obs-report", "", "write the final observability snapshot to this path, .json or .csv (implies -attribution -profile)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rairsim: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	if *showExample {
		fmt.Println(example)
		return nil
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "rairsim: -f <file.json> required (see -example)")
		flag.Usage()
		os.Exit(2)
	}
	f, err := config.Load(*file)
	if err != nil {
		return err
	}
	if *metricsAddr != "" || *obsReport != "" {
		*attribution = true
		*profile = true
	}
	if *telemetry || *telTrace > 0 {
		f.Config.Telemetry = true
		f.Config.TelemetryWindow = *telWindow
		f.Config.TelemetryTraceEvery = *telTrace
	}
	f.Config.Attribution = f.Config.Attribution || *attribution
	f.Config.Profile = f.Config.Profile || *profile
	if *faultSpec != "" {
		fs, err := rair.ParseFaultSpec(*faultSpec)
		if err != nil {
			return err
		}
		f.Config.Faults = fs
	}
	if *checkInv {
		f.Config.CheckInvariants = true
	}
	switch {
	case *workers == 0:
		f.Config.Workers = runtime.GOMAXPROCS(0)
	case *workers > 0:
		f.Config.Workers = *workers
	}

	if *cpuprofile != "" {
		cf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	sim, err := f.Build()
	if err != nil {
		return err
	}
	var srv *obs.Server
	if *metricsAddr != "" {
		srv, err = obs.NewServer(*metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rairsim: serving http://%s/metrics and /snapshot\n", srv.Addr())
		sim.SetObsServer(srv, *metricsEvery)
	}
	rep, err := sim.Run(rair.Phases{
		Warmup: f.Phases.Warmup, Measure: f.Phases.Measure, Drain: f.Phases.Drain,
	})
	if err != nil {
		return err
	}
	// Header: the resolved shard count the engine actually ran with (the
	// -workers 0 auto-selection and <= 1 serial collapse both land here).
	fmt.Printf("workers: %d\n", rep.Workers)
	fmt.Print(rep)
	if rep.Faults != nil {
		fmt.Println(rep.Faults)
	}
	if *obsReport != "" {
		if err := writeObsReport(rep, *obsReport); err != nil {
			return err
		}
	}
	if f.Config.CheckInvariants {
		fmt.Println("invariants: all checks passed")
	}

	if *memprofile != "" {
		mf, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return err
		}
	}

	// The telemetry file is tied to the explicit telemetry flags:
	// -attribution alone creates a collector (the accountant lives in it)
	// but should not surprise the user with a telemetry.json.
	if rep.Telemetry == nil || !f.Config.Telemetry {
		return nil
	}
	if err := writeTelemetry(rep, *telOut); err != nil {
		return err
	}
	if *telTrace > 0 {
		tracePath := tracePathFor(*telOut)
		tf, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		if err := rep.Telemetry.WriteChromeTrace(tf); err != nil {
			return err
		}
		fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", tracePath)
	}
	return nil
}

// writeObsReport dumps the run's final observability snapshot as JSON, or
// flat CSV when the path ends in .csv.
func writeObsReport(rep *rair.Report, path string) error {
	snap := &obs.Snapshot{Engine: rep.Engine}
	if tel := rep.Telemetry; tel != nil {
		t := tel.Totals()
		snap.Totals = &t
		snap.Attribution = tel.Attribution()
		snap.Cycle = tel.Now()
	}
	if err := snap.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeTelemetry writes the aggregated telemetry report as JSON, or CSV
// when the path ends in .csv.
func writeTelemetry(rep *rair.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr := rep.Telemetry.Report()
	if strings.HasSuffix(path, ".csv") {
		err = tr.WriteCSV(f)
	} else {
		err = tr.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

// tracePathFor derives the Chrome trace path from the telemetry output path:
// report.json -> report.trace.json.
func tracePathFor(out string) string {
	for _, ext := range []string{".json", ".csv"} {
		if strings.HasSuffix(out, ext) {
			return strings.TrimSuffix(out, ext) + ".trace.json"
		}
	}
	return out + ".trace.json"
}
