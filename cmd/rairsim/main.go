// Command rairsim runs one NoC simulation described by a JSON file and
// prints its latency report.
//
// Usage:
//
//	rairsim -f sim.json
//	rairsim -example            # print an example configuration
//
// The file schema is documented in internal/config; in short it carries the
// simulation configuration (mesh, region layout, scheme, router
// parameters), the traffic (synthetic apps or the PARSEC proxies, plus an
// optional adversarial injector) and the run phases.
package main

import (
	"flag"
	"fmt"
	"os"

	"rair/internal/config"
)

const example = `{
  "config": {
    "layout": "halves",
    "scheme": "RA_RAIR",
    "seed": 7
  },
  "apps": [
    {"app": 0, "loadFrac": 0.10, "globalFrac": 0.5},
    {"app": 1, "loadFrac": 0.90}
  ],
  "phases": {"warmup": 10000, "measure": 100000, "drain": 20000}
}`

func main() {
	file := flag.String("f", "", "simulation description (JSON)")
	showExample := flag.Bool("example", false, "print an example configuration and exit")
	flag.Parse()

	if *showExample {
		fmt.Println(example)
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "rairsim: -f <file.json> required (see -example)")
		os.Exit(2)
	}
	f, err := config.Load(*file)
	if err != nil {
		fatal(err)
	}
	rep, err := f.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rairsim:", err)
	os.Exit(1)
}
