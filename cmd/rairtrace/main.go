// Command rairtrace generates, inspects and replays packet-level traffic
// traces — the trace-driven methodology used for the application
// experiments (the stand-in for the paper's SIMICS+GEMS captures).
//
// Usage:
//
//	rairtrace gen -o parsec.trace -cycles 50000   # capture PARSEC-proxy traffic
//	rairtrace info parsec.trace                   # summarize a trace
//	rairtrace replay -scheme RA_RAIR parsec.trace # replay under a scheme
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rair/internal/harness"
	"rair/internal/memsys"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/stats"
	"rair/internal/trace"
	"rair/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rairtrace gen|info|replay [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rairtrace:", err)
	os.Exit(1)
}

// gen captures the PARSEC-proxy scenario's injections under the RO_RR
// baseline (trace capture is policy-independent traffic: the memory system
// is closed-loop, so a neutral baseline network is used for timing).
func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("o", "parsec.trace", "output file")
	cycles := fs.Int64("cycles", 50000, "capture length in cycles")
	seed := fs.Uint64("seed", 1, "seed")
	fs.Parse(args)

	regs, streams := harness.PARSECScenario()
	s := harness.RORR()
	cfg := harness.MemsysRouterConfig()
	var rec trace.Recorder
	var sys *memsys.System
	net := network.New(network.Params{
		Router: cfg, Regions: regs,
		Alg: s.Alg(regs.Mesh()), Sel: s.Sel(regs, cfg), Policy: s.Policy,
		OnEject: func(p *msg.Packet, now int64) { sys.HandleEject(p, now) },
	})
	sys = memsys.New(memsys.DefaultSystemConfig(), regs, streams, *seed,
		func(node int, p *msg.Packet, now int64) {
			rec.Capture(node, p, now)
			net.NI(node).Inject(p, now)
		})
	sys.Prewarm(harness.PrewarmAccesses)
	for now := int64(0); now < *cycles; now++ {
		sys.Tick(now)
		net.Tick(now)
	}
	rec.T.Sort()
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := rec.T.Write(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d events over %d cycles to %s\n", rec.T.Len(), rec.T.Duration(), *out)
}

func readTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return t
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := readTrace(fs.Arg(0))
	if err := t.Validate(64); err != nil {
		fmt.Println("warning:", err)
	}
	perApp := map[int32]int{}
	flits := 0
	for _, e := range t.Events {
		perApp[e.App]++
		flits += int(e.Size)
	}
	fmt.Printf("%d events, %d flits, %d cycles\n", t.Len(), flits, t.Duration())
	if t.Duration() > 0 {
		fmt.Printf("aggregate rate: %.4f flits/node/cycle (64 nodes)\n",
			float64(flits)/float64(t.Duration())/64)
	}
	profiles := workload.Profiles()
	for app := int32(0); int(app) < len(perApp); app++ {
		name := fmt.Sprintf("app%d", app)
		if int(app) < len(profiles) {
			name = profiles[app].Name
		}
		fmt.Printf("  %-14s %d packets\n", name, perApp[app])
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	schemeName := fs.String("scheme", "RO_RR", "interference-reduction scheme")
	warmup := fs.Int64("warmup", 10000, "warmup cycles excluded from statistics")
	drainTimeout := fs.Int64("drain-timeout", 200000, "extra cycles past the trace end before an undrained replay aborts")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := readTrace(fs.Arg(0))
	// A timed-out drain means packets never arrived — a failed replay, so
	// it must exit non-zero for scripts and CI, not just warn.
	if err := replayTrace(os.Stdout, t, *schemeName, *warmup, *drainTimeout); err != nil {
		fatal(err)
	}
}

// replayTrace replays t under the named scheme, printing the latency
// summary to w. It returns an error when the network fails to drain within
// drainTimeout cycles past the trace end (undelivered packets).
func replayTrace(w io.Writer, t *trace.Trace, schemeName string, warmup, drainTimeout int64) error {
	s, err := harness.SchemeByName(schemeName)
	if err != nil {
		return err
	}
	regs, _ := harness.PARSECScenario()
	cfg := harness.MemsysRouterConfig()
	col := stats.NewCollector(warmup, t.Duration())
	net := network.New(network.Params{
		Router: cfg, Regions: regs,
		Alg: s.Alg(regs.Mesh()), Sel: s.Sel(regs, cfg), Policy: s.Policy,
		OnEject: col.OnEject,
	})
	defer net.Close()
	player := trace.NewPlayer(t, func(node int, p *msg.Packet, now int64) {
		net.NI(node).Inject(p, now)
	})
	now := int64(0)
	timedOut := false
	for ; !player.Done() || !net.Drained(); now++ {
		player.Tick(now)
		net.Tick(now)
		if now > t.Duration()+drainTimeout {
			timedOut = true
			break
		}
	}
	fmt.Fprintf(w, "replayed %d packets under %s in %d cycles\n", player.Injected(), s.Name, now)
	fmt.Fprintf(w, "APL %.2f (p95 %.1f) over %d measured packets\n",
		col.APL(), col.Total().Percentile(95), col.Packets())
	for _, app := range col.Apps() {
		fmt.Fprintf(w, "  app %d: APL %.2f (%d packets)\n", app, col.App(app).Mean(), col.App(app).Count())
	}
	if timedOut {
		return fmt.Errorf("drain timeout: network still undrained %d cycles past the trace end (%d packets injected, %d delivered in the measurement window)",
			drainTimeout, player.Injected(), col.Packets())
	}
	return nil
}
