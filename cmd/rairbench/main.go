// Command rairbench reproduces the paper's evaluation: every table and
// figure has a named experiment that regenerates its rows.
//
// Usage:
//
//	rairbench -list              # show available experiments
//	rairbench                    # run everything at paper durations
//	rairbench -quick             # run everything at reduced durations
//	rairbench -experiment fig14  # run one experiment
//
// Results print as aligned tables; see EXPERIMENTS.md for paper-vs-measured
// commentary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rair"
	"rair/internal/harness"
	"rair/internal/sweep"
)

// benchResults is the machine-readable summary written by -json: simulator
// speed (serial and sharded tick engine) plus the paper's headline APL
// reductions and per-experiment wall time.
type benchResults struct {
	Date              string  `json:"date"`
	Quick             bool    `json:"quick"`
	Seed              uint64  `json:"seed"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	CyclesPerS        float64 `json:"cycles_per_s_serial"`
	CyclesPerSSharded float64 `json:"cycles_per_s_sharded"`
	ShardWorkers      int     `json:"shard_workers"`
	// HeadlineReduction is Figure 14's average APL reduction versus RO_RR
	// per scheme (the paper's headline result).
	HeadlineReduction map[string]float64 `json:"fig14_avg_apl_reduction_vs_RO_RR"`
	Experiments       []experimentTiming `json:"experiments"`
}

type experimentTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// throughput measures simulator speed in cycles/s on the standard probe (the
// 64-node quadrant mesh under moderate uniform load with RA_RAIR, the same
// scenario as BenchmarkSimulatorThroughput).
func throughput(workers int) float64 {
	sim, err := rair.New(rair.Config{Layout: rair.LayoutQuadrants, Scheme: "RA_RAIR", Seed: 1, Workers: workers})
	if err != nil {
		panic(err)
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(rair.AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			panic(err)
		}
	}
	const cycles = 20000
	start := time.Now()
	if _, err := sim.Run(rair.Phases{Warmup: 0, Measure: cycles, Drain: 0}); err != nil {
		panic(err)
	}
	return cycles / time.Since(start).Seconds()
}

// telemetryRun executes the standard throughput probe scenario with
// telemetry enabled and writes the aggregated report to path (JSON). The
// RAIR scheme with cross-region traffic exercises every counter family:
// MSP grants/denials, DPA transitions and windowed OVC_f/OVC_n samples.
func telemetryRun(path string, quick bool, seed uint64, traceEvery uint64) error {
	sim, err := rair.New(rair.Config{
		Layout: rair.LayoutQuadrants, Scheme: "RA_RAIR", Seed: seed,
		Telemetry: true, TelemetryTraceEvery: traceEvery,
	})
	if err != nil {
		return err
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(rair.AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			return err
		}
	}
	ph := rair.PaperPhases()
	if quick {
		ph = rair.QuickPhases()
	}
	rep, err := sim.Run(ph)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr := rep.Telemetry.Report()
	if err := tr.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d link flits, %d DPA transitions, %d windows at node 0)\n",
		path, tr.Totals.LinkFlits, tr.Totals.DPAToNativeHigh+tr.Totals.DPAToForeignHigh,
		len(tr.Routers[0].Windows))
	return f.Close()
}

// faultRun executes the standard probe scenario with the invariant checker
// enabled and (when spec is non-empty) fault injection: a seeded smoke
// proving the network drains, delivers every packet and passes every
// invariant while links drop, corrupt and leak and routers stall. CI uses
// it as the fault-injection smoke job.
func faultRun(spec string, quick bool, seed uint64) error {
	var fs *rair.FaultSpec
	if spec != "" {
		var err error
		if fs, err = rair.ParseFaultSpec(spec); err != nil {
			return err
		}
	}
	sim, err := rair.New(rair.Config{
		Layout: rair.LayoutQuadrants, Scheme: "RA_RAIR", Seed: seed,
		Faults: fs, CheckInvariants: true,
	})
	if err != nil {
		return err
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(rair.AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			return err
		}
	}
	ph := rair.PaperPhases()
	if quick {
		ph = rair.QuickPhases()
	}
	rep, err := sim.Run(ph)
	if err != nil {
		return err
	}
	if rep.Faults != nil {
		if rep.Faults.LostFlits > 0 {
			return fmt.Errorf("fault run lost %d flits permanently (retry budget too small for the configured rates)", rep.Faults.LostFlits)
		}
		fmt.Printf("fault smoke passed: %d packets delivered under faults, all invariants held\n  %s\n",
			rep.Packets, rep.Faults)
	} else {
		fmt.Printf("invariant smoke passed: %d packets delivered, all invariants held\n", rep.Packets)
	}
	return nil
}

// emitSweepManifest writes a rairsweep manifest covering the experiment
// registry (or just `only` when set) so sweeps are declared against the
// same names rairbench -list reports.
func emitSweepManifest(path, only, seedList string, quick bool) error {
	var seeds []uint64
	for _, s := range strings.Split(seedList, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil || v == 0 {
			return fmt.Errorf("-manifest-seeds: bad seed %q (need integers >= 1)", s)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return fmt.Errorf("-manifest-seeds: no seeds given")
	}
	var names []string
	for _, e := range rair.Experiments() {
		if only == "" || e.Name == only {
			names = append(names, e.Name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no experiment named %q (see -list)", only)
	}
	mname := "full-reproduction"
	if quick {
		mname = "quick-reproduction"
	}
	if only != "" {
		mname = only
	}
	m := sweep.NewManifest(mname, names, seeds, quick)
	if err := sweep.WriteManifest(m, path); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d experiments x %d seeds, %s durations)\n",
		path, len(names), len(seeds), map[bool]string{true: "quick", false: "paper"}[quick])
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "use reduced warmup/measurement windows")
	name := flag.String("experiment", "", "run a single experiment (see -list)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	jsonPath := flag.String("json", "", "write a machine-readable summary (cycles/s, headline reductions, timings) to this path, e.g. BENCH_results.json")
	telemetry := flag.Bool("telemetry", false, "also run the standard probe scenario with telemetry and write its report")
	telOut := flag.String("telemetry-out", "telemetry.json", "telemetry report path (with -telemetry)")
	telTrace := flag.Uint64("telemetry-trace", 1000, "trace every N-th packet in the telemetry probe (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path")
	faultSpec := flag.String("faults", "", "run only the fault-injection smoke scenario with this spec, e.g. drop=0.001,corrupt=0.001,stall=0.0002 (implies -check-invariants)")
	checkInv := flag.Bool("check-invariants", false, "run only the invariant-checked probe scenario (no experiments); combine with -faults for the fault smoke")
	emitManifest := flag.String("emit-manifest", "", "write a rairsweep manifest covering the known experiments (honors -quick, -experiment, -manifest-seeds) to this path and exit")
	manifestSeeds := flag.String("manifest-seeds", "1", "comma-separated seed list for -emit-manifest")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rairbench: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	if *emitManifest != "" {
		if err := emitSweepManifest(*emitManifest, *name, *manifestSeeds, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		return
	}

	if *faultSpec != "" || *checkInv {
		if err := faultRun(*faultSpec, *quick, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		cf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			mf, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rairbench:", err)
				return
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "rairbench:", err)
			}
		}()
	}

	if *list {
		for _, e := range rair.Experiments() {
			fmt.Printf("%-13s %s\n", e.Name, e.Paper)
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
	}

	var timings []experimentTiming
	run := func(n string) {
		start := time.Now()
		out, csv, err := rair.ExperimentCSV(n, *quick, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		timings = append(timings, experimentTiming{Name: n, Seconds: secs})
		fmt.Printf("=== %s (%.1fs)\n%s\n", n, secs, out)
		if *csvDir != "" && csv != "" {
			path := filepath.Join(*csvDir, n+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "rairbench:", err)
				os.Exit(1)
			}
		}
	}

	if *name != "" {
		run(*name)
	} else {
		for _, e := range rair.Experiments() {
			run(e.Name)
		}
	}
	if *telemetry {
		if err := telemetryRun(*telOut, *quick, *seed, *telTrace); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
	}
	if *jsonPath == "" {
		return
	}

	// Machine-readable summary: simulator speed (serial and sharded), the
	// Figure 14 headline reductions, and the per-experiment wall times.
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	res := benchResults{
		Date:              time.Now().UTC().Format(time.RFC3339),
		Quick:             *quick,
		Seed:              *seed,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		CyclesPerS:        throughput(0),
		CyclesPerSSharded: throughput(workers),
		ShardWorkers:      workers,
		HeadlineReduction: map[string]float64{},
		Experiments:       timings,
	}
	dur := harness.PaperDurations()
	if *quick {
		dur = harness.QuickDurations()
	}
	fig14 := harness.Fig14SixApp(dur, *seed)
	for si := 1; si < len(fig14.Schemes); si++ {
		res.HeadlineReduction[fig14.Schemes[si]] = fig14.AvgReduction(si)
	}
	buf, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rairbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rairbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%.0f cycles/s serial, %.0f sharded x%d)\n",
		*jsonPath, res.CyclesPerS, res.CyclesPerSSharded, res.ShardWorkers)
}
