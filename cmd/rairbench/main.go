// Command rairbench reproduces the paper's evaluation: every table and
// figure has a named experiment that regenerates its rows.
//
// Usage:
//
//	rairbench -list              # show available experiments
//	rairbench                    # run everything at paper durations
//	rairbench -quick             # run everything at reduced durations
//	rairbench -experiment fig14  # run one experiment
//
// Results print as aligned tables; see EXPERIMENTS.md for paper-vs-measured
// commentary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rair"
	"rair/internal/harness"
	"rair/internal/obs"
	"rair/internal/sweep"
)

// benchResults is the machine-readable file written by -json: a history of
// date-keyed entries, newest last, so successive runs accumulate a record
// instead of overwriting the previous measurement.
type benchResults struct {
	History []benchEntry `json:"history"`
}

// benchEntry is one -json measurement: simulator speed (serial engine,
// sharded engine across a worker sweep, and the lockstep batch runner) plus
// the paper's headline APL reductions and per-experiment wall time.
type benchEntry struct {
	Date       string  `json:"date"`
	Quick      bool    `json:"quick"`
	Seed       uint64  `json:"seed"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	CyclesPerS float64 `json:"cycles_per_s_serial"`
	// CyclesPerSSharded records the sharded tick engine at each worker
	// count of the sweep, keyed by the count. The 1-worker figure is the
	// sharded engine's coordination overhead made visible (one goroutine
	// paying barrier costs the serial engine doesn't) — it is expected to
	// sit below cycles_per_s_serial, not a regression.
	CyclesPerSSharded map[string]float64 `json:"cycles_per_s_sharded"`
	// CyclesPerSBatched is the lockstep batch runner's aggregate speed:
	// batch_width replications advanced in one pass, total simulated
	// cycles across the batch per wall second.
	CyclesPerSBatched float64 `json:"cycles_per_s_batched"`
	BatchWidth        int     `json:"batch_width"`
	// CyclesPerSMesh32 is the 32×32-mesh (1024-router) scaling probe;
	// ProbeCycles the simulated-cycle budget every speed probe above ran
	// with (the -cycles flag).
	CyclesPerSMesh32 float64 `json:"cycles_per_s_mesh32,omitempty"`
	ProbeCycles      int     `json:"probe_cycles,omitempty"`
	// HeadlineReduction is Figure 14's average APL reduction versus RO_RR
	// per scheme (the paper's headline result).
	HeadlineReduction map[string]float64 `json:"fig14_avg_apl_reduction_vs_RO_RR"`
	Experiments       []experimentTiming `json:"experiments"`
	// Scaling is the -scaling worker sweep over big meshes (1k/2k/4k
	// routers): engine speed plus barrier-wait cost per shard count.
	Scaling []scalingPoint `json:"scaling,omitempty"`
}

// scalingPoint is one (mesh, workers) cell of the -scaling sweep: sharded
// engine speed and the coordinator's barrier-wait bill, which is the
// quantity that decides whether more shards still pay at a given mesh size.
type scalingPoint struct {
	MeshW   int `json:"mesh_w"`
	MeshH   int `json:"mesh_h"`
	Routers int `json:"routers"`
	Workers int `json:"workers"`
	// CyclesPerS is simulated cycles per wall second.
	CyclesPerS float64 `json:"cycles_per_s"`
	// BarrierWaitNSPerCycle is the coordinator's total post-phase barrier
	// wait divided by simulated cycles (0 for the serial engine, which has
	// no barriers).
	BarrierWaitNSPerCycle float64 `json:"barrier_wait_ns_per_cycle"`
	// BarrierHist is the log2-nanosecond barrier-wait histogram summed
	// across phases: BarrierHist[k] counts waits in [2^(k-1), 2^k) ns.
	BarrierHist []int64 `json:"barrier_hist,omitempty"`
}

// legacyBenchResults is the pre-history single-object schema (sharded speed
// as one number at one worker count); appendBenchEntry migrates it.
type legacyBenchResults struct {
	Date              string             `json:"date"`
	Quick             bool               `json:"quick"`
	Seed              uint64             `json:"seed"`
	GOMAXPROCS        int                `json:"gomaxprocs"`
	CyclesPerS        float64            `json:"cycles_per_s_serial"`
	CyclesPerSSharded float64            `json:"cycles_per_s_sharded"`
	ShardWorkers      int                `json:"shard_workers"`
	HeadlineReduction map[string]float64 `json:"fig14_avg_apl_reduction_vs_RO_RR"`
	Experiments       []experimentTiming `json:"experiments"`
}

type experimentTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// appendBenchEntry loads the results file at path (accepting both the
// history schema and the legacy single-object schema, which it migrates to
// history[0]), appends entry, and writes the file back.
func appendBenchEntry(path string, entry benchEntry) error {
	var res benchResults
	if buf, err := os.ReadFile(path); err == nil {
		if jerr := json.Unmarshal(buf, &res); jerr != nil || res.History == nil {
			var legacy legacyBenchResults
			if jerr := json.Unmarshal(buf, &legacy); jerr == nil && legacy.Date != "" {
				res.History = []benchEntry{{
					Date:       legacy.Date,
					Quick:      legacy.Quick,
					Seed:       legacy.Seed,
					GOMAXPROCS: legacy.GOMAXPROCS,
					CyclesPerS: legacy.CyclesPerS,
					CyclesPerSSharded: map[string]float64{
						strconv.Itoa(legacy.ShardWorkers): legacy.CyclesPerSSharded,
					},
					HeadlineReduction: legacy.HeadlineReduction,
					Experiments:       legacy.Experiments,
				}}
			} else {
				return fmt.Errorf("unrecognized results schema in %s", path)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	res.History = append(res.History, entry)
	buf, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// throughput measures simulator speed in cycles/s on the standard probe (the
// 64-node quadrant mesh under moderate uniform load with RA_RAIR, the same
// scenario as BenchmarkSimulatorThroughput), simulating `cycles` cycles.
// Every speed probe takes the cycle budget from the single -cycles flag so
// the CI smoke, the saturated probe and the worker sweep cannot drift apart.
func throughput(workers, cycles int) float64 {
	sim, err := rair.New(rair.Config{Layout: rair.LayoutQuadrants, Scheme: "RA_RAIR", Seed: 1, Workers: workers})
	if err != nil {
		panic(err)
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(rair.AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	if _, err := sim.Run(rair.Phases{Warmup: 0, Measure: int64(cycles), Drain: 0}); err != nil {
		panic(err)
	}
	return float64(cycles) / time.Since(start).Seconds()
}

// throughputMesh32 measures the scaling probe: the same quadrant scenario
// scaled to a 32×32 mesh (1024 routers), where shard balance and cache
// footprint, not per-router cost, dominate.
func throughputMesh32(cycles int) float64 {
	sim, err := rair.New(rair.Config{MeshW: 32, MeshH: 32, Layout: rair.LayoutQuadrants, Scheme: "RA_RAIR", Seed: 1})
	if err != nil {
		panic(err)
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(rair.AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	if _, err := sim.Run(rair.Phases{Warmup: 0, Measure: int64(cycles), Drain: 0}); err != nil {
		panic(err)
	}
	return float64(cycles) / time.Since(start).Seconds()
}

// scalingProbe measures one cell of the scaling sweep: the quadrant
// scenario on a w×h mesh advanced by `workers` shards (0 = serial engine)
// with engine self-profiling on, so the point carries both speed and the
// barrier-wait bill behind it.
func scalingProbe(w, h, workers, cycles int) scalingPoint {
	sim, err := rair.New(rair.Config{MeshW: w, MeshH: h, Layout: rair.LayoutQuadrants,
		Scheme: "RA_RAIR", Seed: 1, Workers: workers, Profile: true})
	if err != nil {
		panic(err)
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(rair.AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	rep, err := sim.Run(rair.Phases{Warmup: 0, Measure: int64(cycles), Drain: 0})
	if err != nil {
		panic(err)
	}
	pt := scalingPoint{
		MeshW: w, MeshH: h, Routers: w * h, Workers: workers,
		CyclesPerS: float64(cycles) / time.Since(start).Seconds(),
	}
	if rep.Engine != nil && len(rep.Engine.Barrier) > 0 {
		var waitNS int64
		var hist []int64
		for _, bp := range rep.Engine.Barrier {
			waitNS += bp.WaitNS
			if hist == nil {
				hist = make([]int64, len(bp.Hist))
			}
			for k, c := range bp.Hist {
				hist[k] += c
			}
		}
		pt.BarrierWaitNSPerCycle = float64(waitNS) / float64(cycles)
		pt.BarrierHist = hist
	}
	return pt
}

// scalingSweep runs the full worker × mesh grid of the -scaling probe:
// 32×32 (1024 routers), 64×32 (2048) and 64×64 (4096), each at every
// worker count, printing the curve as it accumulates.
func scalingSweep(workerList []int, cycles int) []scalingPoint {
	var pts []scalingPoint
	fmt.Printf("%-8s %8s %8s %14s %22s\n", "mesh", "routers", "workers", "cycles/s", "barrier ns/cycle")
	for _, m := range [][2]int{{32, 32}, {64, 32}, {64, 64}} {
		for _, w := range workerList {
			pt := scalingProbe(m[0], m[1], w, cycles)
			pts = append(pts, pt)
			fmt.Printf("%-8s %8d %8d %14.0f %22.1f\n",
				fmt.Sprintf("%dx%d", m[0], m[1]), pt.Routers, pt.Workers,
				pt.CyclesPerS, pt.BarrierWaitNSPerCycle)
		}
	}
	return pts
}

// throughputBatched measures the lockstep batch runner's aggregate speed on
// the same probe scenario: width independent replications (seeds 1..width)
// advanced in one pass, reported as total simulated cycles per wall second.
func throughputBatched(width, cycles int) float64 {
	sim, err := rair.New(rair.Config{Layout: rair.LayoutQuadrants, Scheme: "RA_RAIR", Seed: 1})
	if err != nil {
		panic(err)
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(rair.AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			panic(err)
		}
	}
	seeds := make([]uint64, width)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	start := time.Now()
	if _, err := sim.RunBatch(rair.Phases{Warmup: 0, Measure: int64(cycles), Drain: 0}, seeds, width); err != nil {
		panic(err)
	}
	return float64(width) * float64(cycles) / time.Since(start).Seconds()
}

// obsOpts carries the observability-export flags into the probe runs:
// a live /metrics address and/or a one-shot snapshot path. Either one turns
// on interference attribution and engine self-profiling for the run.
type obsOpts struct{ addr, report string }

func (o obsOpts) enabled() bool { return o.addr != "" || o.report != "" }

// arm enables the attribution and profiling layers on cfg when any
// observability export was requested.
func (o obsOpts) arm(cfg *rair.Config) {
	if o.enabled() {
		cfg.Attribution = true
		cfg.Profile = true
	}
}

// attach starts the live endpoint (when requested) on a built simulation;
// the returned cleanup is always safe to defer.
func (o obsOpts) attach(sim *rair.Simulation) (func(), error) {
	if o.addr == "" {
		return func() {}, nil
	}
	srv, err := obs.NewServer(o.addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "rairbench: serving http://%s/metrics and /snapshot\n", srv.Addr())
	sim.SetObsServer(srv, 256)
	return func() { srv.Close() }, nil
}

// dump writes the one-shot snapshot (when requested) from a finished run.
func (o obsOpts) dump(rep *rair.Report) error {
	if o.report == "" {
		return nil
	}
	snap := &obs.Snapshot{Engine: rep.Engine}
	if tel := rep.Telemetry; tel != nil {
		t := tel.Totals()
		snap.Totals = &t
		snap.Attribution = tel.Attribution()
		snap.Cycle = tel.Now()
	}
	if err := snap.WriteFile(o.report); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", o.report)
	return nil
}

// telemetryRun executes the standard throughput probe scenario with
// telemetry enabled and writes the aggregated report to path (JSON). The
// RAIR scheme with cross-region traffic exercises every counter family:
// MSP grants/denials, DPA transitions and windowed OVC_f/OVC_n samples.
func telemetryRun(path string, quick bool, seed uint64, traceEvery uint64, ob obsOpts) error {
	cfg := rair.Config{
		Layout: rair.LayoutQuadrants, Scheme: "RA_RAIR", Seed: seed,
		Telemetry: true, TelemetryTraceEvery: traceEvery,
	}
	ob.arm(&cfg)
	sim, err := rair.New(cfg)
	if err != nil {
		return err
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(rair.AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			return err
		}
	}
	cleanup, err := ob.attach(sim)
	if err != nil {
		return err
	}
	defer cleanup()
	ph := rair.PaperPhases()
	if quick {
		ph = rair.QuickPhases()
	}
	rep, err := sim.Run(ph)
	if err != nil {
		return err
	}
	if err := ob.dump(rep); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr := rep.Telemetry.Report()
	if err := tr.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d link flits, %d DPA transitions, %d windows at node 0)\n",
		path, tr.Totals.LinkFlits, tr.Totals.DPAToNativeHigh+tr.Totals.DPAToForeignHigh,
		len(tr.Routers[0].Windows))
	return f.Close()
}

// faultRun executes the standard probe scenario with the invariant checker
// enabled and (when spec is non-empty) fault injection: a seeded smoke
// proving the network drains, delivers every packet and passes every
// invariant while links drop, corrupt and leak and routers stall. CI uses
// it as the fault-injection smoke job.
func faultRun(spec string, quick bool, seed uint64, ob obsOpts) error {
	var fs *rair.FaultSpec
	if spec != "" {
		var err error
		if fs, err = rair.ParseFaultSpec(spec); err != nil {
			return err
		}
	}
	cfg := rair.Config{
		Layout: rair.LayoutQuadrants, Scheme: "RA_RAIR", Seed: seed,
		Faults: fs, CheckInvariants: true,
	}
	ob.arm(&cfg)
	sim, err := rair.New(cfg)
	if err != nil {
		return err
	}
	for a := 0; a < 4; a++ {
		if err := sim.AddApp(rair.AppSpec{App: a, LoadFrac: 0.5, GlobalFrac: 0.2}); err != nil {
			return err
		}
	}
	cleanup, err := ob.attach(sim)
	if err != nil {
		return err
	}
	defer cleanup()
	ph := rair.PaperPhases()
	if quick {
		ph = rair.QuickPhases()
	}
	rep, err := sim.Run(ph)
	if err != nil {
		return err
	}
	if err := ob.dump(rep); err != nil {
		return err
	}
	if rep.Faults != nil {
		if rep.Faults.LostFlits > 0 {
			return fmt.Errorf("fault run lost %d flits permanently (retry budget too small for the configured rates)", rep.Faults.LostFlits)
		}
		fmt.Printf("fault smoke passed: %d packets delivered under faults, all invariants held\n  %s\n",
			rep.Packets, rep.Faults)
	} else {
		fmt.Printf("invariant smoke passed: %d packets delivered, all invariants held\n", rep.Packets)
	}
	return nil
}

// emitSweepManifest writes a rairsweep manifest covering the experiment
// registry (or just `only` when set) so sweeps are declared against the
// same names rairbench -list reports.
func emitSweepManifest(path, only, seedList string, quick bool) error {
	var seeds []uint64
	for _, s := range strings.Split(seedList, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil || v == 0 {
			return fmt.Errorf("-manifest-seeds: bad seed %q (need integers >= 1)", s)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return fmt.Errorf("-manifest-seeds: no seeds given")
	}
	var names []string
	for _, e := range rair.Experiments() {
		if only == "" || e.Name == only {
			names = append(names, e.Name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no experiment named %q (see -list)", only)
	}
	mname := "full-reproduction"
	if quick {
		mname = "quick-reproduction"
	}
	if only != "" {
		mname = only
	}
	m := sweep.NewManifest(mname, names, seeds, quick)
	if err := sweep.WriteManifest(m, path); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d experiments x %d seeds, %s durations)\n",
		path, len(names), len(seeds), map[bool]string{true: "quick", false: "paper"}[quick])
	return nil
}

// usage prints the command summary and flag reference to stderr; it is
// installed as flag.Usage so unknown flags exit non-zero with the same text.
func usage() {
	fmt.Fprintf(os.Stderr, `usage: rairbench [flags]

Reproduce the paper's evaluation: every table and figure has a named
experiment that regenerates its rows.

  rairbench -list              show available experiments
  rairbench                    run everything at paper durations
  rairbench -quick             run everything at reduced durations
  rairbench -experiment fig14  run one experiment
  rairbench -json BENCH_results.json
                               append a machine-readable entry (simulator
                               speed across a worker sweep, headline
                               reductions, timings) to the history file

Flags:
`)
	flag.PrintDefaults()
}

func main() {
	flag.Usage = usage
	quick := flag.Bool("quick", false, "use reduced warmup/measurement windows")
	name := flag.String("experiment", "", "run a single experiment (see -list)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	cycles := flag.Int("cycles", 20000, "simulated-cycle budget shared by every speed probe (-json serial/sharded/batched/mesh32)")
	list := flag.Bool("list", false, "list experiments and exit")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	jsonPath := flag.String("json", "", "write a machine-readable summary (cycles/s, headline reductions, timings) to this path, e.g. BENCH_results.json")
	telemetry := flag.Bool("telemetry", false, "also run the standard probe scenario with telemetry and write its report")
	telOut := flag.String("telemetry-out", "telemetry.json", "telemetry report path (with -telemetry)")
	telTrace := flag.Uint64("telemetry-trace", 1000, "trace every N-th packet in the telemetry probe (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path")
	scaling := flag.Bool("scaling", false, "run only the engine-scaling probe (worker sweep over 1k/2k/4k-router meshes); with -json, append the curve to the history file")
	scalingWorkers := flag.String("scaling-workers", "1,2,4,8", "comma-separated worker counts for -scaling (0 = serial engine)")
	faultSpec := flag.String("faults", "", "run only the fault-injection smoke scenario with this spec, e.g. drop=0.001,corrupt=0.001,stall=0.0002 (implies -check-invariants)")
	checkInv := flag.Bool("check-invariants", false, "run only the invariant-checked probe scenario (no experiments); combine with -faults for the fault smoke")
	emitManifest := flag.String("emit-manifest", "", "write a rairsweep manifest covering the known experiments (honors -quick, -experiment, -manifest-seeds) to this path and exit")
	manifestSeeds := flag.String("manifest-seeds", "1", "comma-separated seed list for -emit-manifest")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics and /snapshot during the probe run (with -telemetry, -faults or -check-invariants)")
	obsReport := flag.String("obs-report", "", "write the probe run's observability snapshot to this path, .json or .csv (implies -telemetry unless a fault/invariant probe is selected)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rairbench: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	ob := obsOpts{addr: *metricsAddr, report: *obsReport}
	if ob.enabled() && *faultSpec == "" && !*checkInv {
		*telemetry = true
	}

	if *emitManifest != "" {
		if err := emitSweepManifest(*emitManifest, *name, *manifestSeeds, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		return
	}

	if *faultSpec != "" || *checkInv {
		if err := faultRun(*faultSpec, *quick, *seed, ob); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		cf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			mf, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rairbench:", err)
				return
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "rairbench:", err)
			}
		}()
	}

	if *list {
		for _, e := range rair.Experiments() {
			fmt.Printf("%-13s %s\n", e.Name, e.Paper)
		}
		return
	}

	if *scaling {
		var workerList []int
		for _, s := range strings.Split(*scalingWorkers, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			w, err := strconv.Atoi(s)
			if err != nil || w < 0 {
				fmt.Fprintf(os.Stderr, "rairbench: -scaling-workers: bad count %q\n", s)
				os.Exit(2)
			}
			workerList = append(workerList, w)
		}
		if len(workerList) == 0 {
			fmt.Fprintln(os.Stderr, "rairbench: -scaling-workers: no counts given")
			os.Exit(2)
		}
		pts := scalingSweep(workerList, *cycles)
		if *jsonPath != "" {
			entry := benchEntry{
				Date:        time.Now().UTC().Format(time.RFC3339),
				Quick:       *quick,
				Seed:        *seed,
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				ProbeCycles: *cycles,
				Scaling:     pts,
			}
			if err := appendBenchEntry(*jsonPath, entry); err != nil {
				fmt.Fprintln(os.Stderr, "rairbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d scaling points)\n", *jsonPath, len(pts))
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
	}

	var timings []experimentTiming
	run := func(n string) {
		start := time.Now()
		out, csv, err := rair.ExperimentCSV(n, *quick, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		timings = append(timings, experimentTiming{Name: n, Seconds: secs})
		fmt.Printf("=== %s (%.1fs)\n%s\n", n, secs, out)
		if *csvDir != "" && csv != "" {
			path := filepath.Join(*csvDir, n+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "rairbench:", err)
				os.Exit(1)
			}
		}
	}

	if *name != "" {
		run(*name)
	} else {
		for _, e := range rair.Experiments() {
			run(e.Name)
		}
	}
	if *telemetry {
		if err := telemetryRun(*telOut, *quick, *seed, *telTrace, ob); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
	}
	if *jsonPath == "" {
		return
	}

	// Machine-readable summary: simulator speed (serial engine, sharded
	// engine at each worker count, batch runner), the Figure 14 headline
	// reductions, and the per-experiment wall times — appended to the
	// file's history rather than overwriting it.
	entry := benchEntry{
		Date:              time.Now().UTC().Format(time.RFC3339),
		Quick:             *quick,
		Seed:              *seed,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		CyclesPerS:        throughput(0, *cycles),
		CyclesPerSSharded: map[string]float64{},
		CyclesPerSBatched: throughputBatched(harness.DefaultBatchWidth, *cycles),
		BatchWidth:        harness.DefaultBatchWidth,
		CyclesPerSMesh32:  throughputMesh32(*cycles),
		ProbeCycles:       *cycles,
		HeadlineReduction: map[string]float64{},
		Experiments:       timings,
	}
	for _, w := range []int{1, 2, 4} {
		entry.CyclesPerSSharded[strconv.Itoa(w)] = throughput(w, *cycles)
	}
	dur := harness.PaperDurations()
	if *quick {
		dur = harness.QuickDurations()
	}
	fig14 := harness.Fig14SixApp(dur, *seed)
	for si := 1; si < len(fig14.Schemes); si++ {
		entry.HeadlineReduction[fig14.Schemes[si]] = fig14.AvgReduction(si)
	}
	if err := appendBenchEntry(*jsonPath, entry); err != nil {
		fmt.Fprintln(os.Stderr, "rairbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%.0f cycles/s serial; sharded x1 %.0f, x2 %.0f, x4 %.0f; batched x%d %.0f; mesh32 %.0f)\n",
		*jsonPath, entry.CyclesPerS,
		entry.CyclesPerSSharded["1"], entry.CyclesPerSSharded["2"], entry.CyclesPerSSharded["4"],
		entry.BatchWidth, entry.CyclesPerSBatched, entry.CyclesPerSMesh32)
}
