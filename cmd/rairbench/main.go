// Command rairbench reproduces the paper's evaluation: every table and
// figure has a named experiment that regenerates its rows.
//
// Usage:
//
//	rairbench -list              # show available experiments
//	rairbench                    # run everything at paper durations
//	rairbench -quick             # run everything at reduced durations
//	rairbench -experiment fig14  # run one experiment
//
// Results print as aligned tables; see EXPERIMENTS.md for paper-vs-measured
// commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rair"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced warmup/measurement windows")
	name := flag.String("experiment", "", "run a single experiment (see -list)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	flag.Parse()

	if *list {
		for _, e := range rair.Experiments() {
			fmt.Printf("%-13s %s\n", e.Name, e.Paper)
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
	}

	run := func(n string) {
		start := time.Now()
		out, csv, err := rair.ExperimentCSV(n, *quick, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rairbench:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs)\n%s\n", n, time.Since(start).Seconds(), out)
		if *csvDir != "" && csv != "" {
			path := filepath.Join(*csvDir, n+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "rairbench:", err)
				os.Exit(1)
			}
		}
	}

	if *name != "" {
		run(*name)
		return
	}
	for _, e := range rair.Experiments() {
		run(e.Name)
	}
}
