// Command rairsweep orchestrates experiment sweeps over the rairbench
// experiment registry: it expands a declarative manifest into content-hash-
// keyed jobs, schedules them over a bounded worker pool, and appends results
// to a JSONL store that an interrupted sweep resumes bit-exactly. The check
// subcommand gates the store against the EXPERIMENTS.md shape guards; diff
// compares two stores statistically.
//
// Usage:
//
//	rairsweep run    -manifest m.json -out store.jsonl [-workers N] [-job-timeout d] [-retries n] [-force]
//	rairsweep resume -manifest m.json -out store.jsonl [-workers N] [-job-timeout d] [-retries n]
//	rairsweep check  -store store.jsonl [-summary out.md]
//	rairsweep diff   -a a.jsonl -b b.jsonl [-tol frac]
//
// Manifests come from rairbench -emit-manifest or are written by hand; see
// DESIGN.md ("Sweep orchestration") and testdata/sweep/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rair"
	"rair/internal/sweep"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: rairsweep <command> [flags]

commands:
  run      execute a manifest into a fresh result store
  resume   continue an interrupted sweep (skips jobs already in the store)
  check    apply the EXPERIMENTS.md shape guards to a store
  diff     compare two stores statistically

run 'rairsweep <command> -h' for per-command flags.
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:], false)
	case "resume":
		err = cmdRun(os.Args[2:], true)
	case "check":
		err = cmdCheck(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rairsweep: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rairsweep:", err)
		os.Exit(1)
	}
}

// knownExperiments names the rairbench registry for manifest validation.
func knownExperiments() []string {
	var out []string
	for _, e := range rair.Experiments() {
		out = append(out, e.Name)
	}
	return out
}

func cmdRun(args []string, resume bool) error {
	name := "run"
	if resume {
		name = "resume"
	}
	fs := flag.NewFlagSet("rairsweep "+name, flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "manifest JSON path (required; see rairbench -emit-manifest)")
	out := fs.String("out", "sweep.jsonl", "result store path")
	workers := fs.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS-bounded by the harness; 1 = serial)")
	batch := fs.Int("batch", 4, "group up to this many same-experiment seed jobs per worker dispatch (1 = off)")
	timeout := fs.Duration("job-timeout", 0, "per-job attempt timeout (0 = none)")
	retries := fs.Int("retries", 1, "extra attempts per job on transient failure")
	force := fs.Bool("force", false, "overwrite an existing store (run only)")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *manifestPath == "" {
		fs.Usage()
		return fmt.Errorf("-manifest is required")
	}
	m, err := sweep.LoadManifest(*manifestPath)
	if err != nil {
		return err
	}
	if err := m.Validate(knownExperiments()); err != nil {
		return err
	}

	done := map[string]bool{}
	var store *sweep.Store
	if resume {
		recs, dropped, err := sweep.RecoverStore(*out)
		if err != nil {
			return fmt.Errorf("recovering store: %w", err)
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "rairsweep: truncated %d bytes of partial record from %s\n", dropped, *out)
		}
		done = sweep.Keys(recs)
		if store, err = sweep.OpenStoreAppend(*out); err != nil {
			return err
		}
	} else {
		if store, err = sweep.CreateStore(*out, *force); err != nil {
			return err
		}
	}
	defer store.Close()

	// SIGINT/SIGTERM cancel the sweep gracefully: in-order results already
	// appended stay, and resume continues from them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := *workers
	if w <= 0 {
		w = defaultWorkers()
	}
	start := time.Now()
	sum, err := sweep.Execute(ctx, m, store, done, runner, sweep.Options{
		Workers:    w,
		BatchWidth: *batch,
		Timeout:    *timeout,
		Retries:    *retries,
		Log: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if errors.Is(err, sweep.ErrCanceled) {
		return fmt.Errorf("interrupted after %d/%d jobs (%.0fs); 'rairsweep resume' continues from %s",
			sum.Skipped+sum.Ran, sum.Total, time.Since(start).Seconds(), *out)
	}
	if err != nil {
		return err
	}
	fmt.Printf("sweep %s complete: %d jobs (%d ran, %d resumed, %d retries) in %.0fs -> %s\n",
		m.Name, sum.Total, sum.Ran, sum.Skipped, sum.Retried, time.Since(start).Seconds(), *out)
	return nil
}

// runner executes one job through the experiment registry. Each experiment
// parallelizes internally via harness.RunParallel, so the per-sweep worker
// default stays small.
func runner(_ context.Context, job sweep.Job) (text, csv string, err error) {
	return rair.ExperimentCSV(job.Experiment, job.Quick, job.Seed)
}

// defaultWorkers is deliberately conservative: experiments already fan out
// across GOMAXPROCS goroutines internally (harness.RunParallel), so sweep-
// level concurrency mainly hides the serial tails of small experiments.
func defaultWorkers() int { return 2 }

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("rairsweep check", flag.ExitOnError)
	storePath := fs.String("store", "", "result store to check (required)")
	summary := fs.String("summary", "", "also write a markdown summary of the store to this path")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *storePath == "" {
		fs.Usage()
		return fmt.Errorf("-store is required")
	}
	recs, err := sweep.LoadStore(*storePath)
	if err != nil {
		return err
	}
	rep := sweep.CheckStore(recs)
	fmt.Println(rep)
	if *summary != "" {
		f, err := os.Create(*summary)
		if err != nil {
			return err
		}
		if err := sweep.WriteSummary(f, *storePath, recs, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *summary)
	}
	if !rep.OK() {
		if len(rep.Findings) == 0 {
			return fmt.Errorf("no guarded experiments in %s (%d records)", *storePath, len(recs))
		}
		return fmt.Errorf("%d shape guard(s) failed", rep.Failed())
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("rairsweep diff", flag.ExitOnError)
	aPath := fs.String("a", "", "baseline store (required)")
	bPath := fs.String("b", "", "candidate store (required)")
	tol := fs.Float64("tol", 0, "max allowed |relative delta| per numeric cell (0 = exact)")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *aPath == "" || *bPath == "" {
		fs.Usage()
		return fmt.Errorf("-a and -b are required")
	}
	a, err := sweep.LoadStore(*aPath)
	if err != nil {
		return err
	}
	b, err := sweep.LoadStore(*bPath)
	if err != nil {
		return err
	}
	rep := sweep.DiffStores(a, b)
	fmt.Println(rep)
	if !rep.Within(*tol) {
		return fmt.Errorf("stores differ beyond tolerance %.4f (max |delta| %.4f, %d structural mismatches)",
			*tol, rep.MaxDelta(), len(rep.Mismatched))
	}
	return nil
}
