// Package rair is a cycle-accurate simulator for region-aware interference
// reduction in regionalized networks-on-chip (RNoCs), reproducing the
// system of Chen, Hwang and Pinkston, "RAIR: Interference Reduction in
// Regionalized Networks-on-Chip" (IPDPS 2013).
//
// The library models a mesh of canonical five-stage virtual-channel
// wormhole routers (RC, VA, SA, ST, LT) with credit-based flow control,
// Duato-style adaptive routing, and pluggable interference-reduction
// policies:
//
//   - RO_RR: region-oblivious round-robin (baseline)
//   - RO_Rank: idealized STC (oracle application ranking + batching)
//   - RA_DBAR: region-clipped congestion-aware adaptive routing
//   - RA_RAIR: the paper's technique — VC regionalization, multi-stage
//     prioritization and dynamic priority adaptation — plus its ablations
//
// Traffic comes from synthetic generators (uniform random, transpose, bit
// complement, hotspot, composed per application into regionalized mixes),
// from a Table 1 memory-system model driven by PARSEC-proxy workloads, or
// from recorded packet traces.
//
// Basic use:
//
//	sim, err := rair.New(rair.Config{Layout: rair.LayoutHalves, Scheme: "RA_RAIR"})
//	...
//	sim.AddApp(rair.AppSpec{App: 0, LoadFrac: 0.1, GlobalFrac: 0.2})
//	sim.AddApp(rair.AppSpec{App: 1, LoadFrac: 0.9})
//	report := sim.Run(rair.Phases{Warmup: 10000, Measure: 100000, Drain: 20000})
//	fmt.Println(report)
//
// The paper's full evaluation is available through Experiment and the
// rairbench command.
package rair

import (
	"fmt"

	"rair/internal/faults"
	"rair/internal/harness"
	"rair/internal/invariant"
	"rair/internal/memsys"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/obs"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/stats"
	"rair/internal/telemetry"
	"rair/internal/topology"
	"rair/internal/traffic"
	"rair/internal/workload"
)

// Layout selects a predefined region layout.
type Layout string

// Predefined layouts on the configured mesh.
const (
	// LayoutSingle is one region covering the whole chip (a conventional
	// NoC).
	LayoutSingle Layout = "single"
	// LayoutHalves is two applications on left/right halves.
	LayoutHalves Layout = "halves"
	// LayoutQuadrants is four applications on quadrants.
	LayoutQuadrants Layout = "quadrants"
	// LayoutSixGrid is six applications on a 3×2 grid of regions.
	LayoutSixGrid Layout = "sixgrid"
	// LayoutCustom uses Config.Rects.
	LayoutCustom Layout = "custom"
)

// Rect is a half-open node rectangle for LayoutCustom: x in [X0,X1), y in
// [Y0,Y1).
type Rect struct{ X0, Y0, X1, Y1 int }

// Config describes a simulation.
type Config struct {
	// MeshW, MeshH are the mesh dimensions (default 8×8).
	MeshW, MeshH int
	// Layout picks the region layout (default LayoutSingle); Rects is
	// used with LayoutCustom, assigning app i to Rects[i].
	Layout Layout
	Rects  []Rect

	// Scheme names the interference-reduction technique: "RO_RR",
	// "RO_Rank", "RA_DBAR", "RA_RAIR", "RAIR_VA", "RAIR_NativeH",
	// "RAIR_ForeignH" (default "RO_RR").
	Scheme string
	// Routing selects the routing algorithm: "adaptive" (minimal
	// adaptive with Duato escape VCs, the default), "xy", "westfirst",
	// or "lbdr" — the restricted baseline that confines every packet to
	// its region and requires each region to contain a corner memory
	// controller (Section III.B). Under "lbdr" only intra-region traffic
	// can be expressed.
	Routing string
	// Ranks is RO_Rank's oracle ranking (rank per app id, 0 = highest
	// priority). Defaults to app order.
	Ranks []int
	// Delta overrides RAIR's DPA hysteresis width (default 0.2).
	Delta float64

	// Router microarchitecture overrides; zero values take the Table 1
	// defaults (4 adaptive VCs of which 2 global + 1 escape VC per
	// class, 5-flit buffers).
	Classes     int
	AdaptiveVCs int
	GlobalVCs   int
	EscapeVCs   int
	Depth       int
	LinkLatency int

	// Seed fixes all randomness (default 1).
	Seed uint64

	// Workers shards the network tick engine across this many goroutines
	// (<= 1 runs serially). Results are bit-identical either way; see
	// network.Params.Workers.
	Workers int

	// Telemetry enables per-router instrumentation (MSP arbitration
	// counters, DPA transitions, windowed occupancy/utilization series).
	// Simulation results are bit-identical with it on or off; the cost is
	// a modest slowdown and the collector's memory.
	Telemetry bool
	// TelemetryWindow is the sampling window in cycles (default 256).
	TelemetryWindow int64
	// TelemetryTraceEvery samples every N-th packet for flit-lifecycle
	// tracing (0 disables tracing; requires Telemetry).
	TelemetryTraceEvery uint64
	// Attribution enables the interference blame accountant: every cycle a
	// head flit stalls is charged to a cause bucket (native contention,
	// foreign-region interference, escape-VC serialization, fault
	// recovery) and folded into per-(source app, class) latency
	// decompositions at ejection. Implies Telemetry. Observer-only:
	// simulation results are bit-identical with it on or off, at any
	// worker count.
	Attribution bool
	// Profile enables the tick engine's self-profiling (per-shard phase
	// timings, barrier-wait histograms, armed/dirty sweep counts); the
	// result is Report.Engine. Purely observational.
	Profile bool

	// Faults, if non-nil, enables deterministic fault injection: link flit
	// drops and corruptions recovered by retransmission, credit leaks
	// repaired by periodic reconciliation, and transient router stalls.
	// All decisions are seeded hashes, so faulty runs are reproducible at
	// any worker count.
	Faults *FaultSpec
	// CheckInvariants runs the runtime invariant checker at every tick
	// barrier (flit conservation, per-link credit accounting, atomic VC
	// allocation, hop progress, deadlock watchdog). Violations surface as
	// an error from Run. Simulation results are bit-identical with the
	// checker on or off.
	CheckInvariants bool
}

// FaultSpec is the public fault-injection configuration; probabilities
// apply uniformly to every link/router (per-link overrides are available on
// the internal harness API).
type FaultSpec struct {
	// Seed drives all fault decisions; 0 reuses Config.Seed.
	Seed uint64
	// DropProb / CorruptProb are the per-traversal probabilities that a
	// flit is silently lost (recovered by sender timeout) or arrives
	// corrupted (detected by the receiver's CRC check and NACKed).
	DropProb    float64
	CorruptProb float64
	// CreditLeakProb is the per-arrival probability that a returning
	// credit is lost; leaked credits are restored every ReconcileEvery
	// cycles.
	CreditLeakProb float64
	// StallProb is the per-cycle probability that a router's pipeline
	// freezes for StallLen cycles.
	StallProb float64
	StallLen  int
	// Recovery-protocol knobs; zero values take the faults package
	// defaults (32 retries, 32-cycle drop timeout, 2-cycle NACK latency).
	MaxRetries  int
	DropTimeout int
	NackLatency int
	// ReconcileEvery is the credit-reconciliation period in cycles
	// (0 disables reconciliation).
	ReconcileEvery int64
}

// AppSpec describes one synthetic application's traffic.
type AppSpec struct {
	// App is the application id; by default it injects from its own
	// region's nodes.
	App int
	// LoadFrac is the injection rate as a fraction of this traffic mix's
	// achieved saturation load. Exactly one of LoadFrac or PacketRate
	// must be set.
	LoadFrac float64
	// PacketRate sets the absolute rate in packets per node per cycle.
	PacketRate float64
	// GlobalFrac is the fraction of traffic crossing regions (default 0)
	// and GlobalPattern its pattern: "UR" (default), "TP", "BC", "HS".
	GlobalFrac    float64
	GlobalPattern string
	// MCFrac is the fraction of traffic to/from the corner memory
	// controllers (default 0). The remainder (1-GlobalFrac-MCFrac) is
	// intra-region uniform random.
	MCFrac float64
}

// Phases are the simulation phases in cycles.
type Phases struct {
	Warmup  int64
	Measure int64
	Drain   int64
}

// PaperPhases returns the evaluation setting of the paper (10K warmup,
// 100K measure).
func PaperPhases() Phases { return Phases{Warmup: 10000, Measure: 100000, Drain: 20000} }

// QuickPhases returns a fast setting for smoke runs.
func QuickPhases() Phases { return Phases{Warmup: 2000, Measure: 10000, Drain: 10000} }

// Simulation is a configured chip ready to run.
type Simulation struct {
	cfg     Config
	regions *region.Map
	rcfg    router.Config
	scheme  harness.Scheme
	alg     routing.Algorithm // overrides the scheme's default when set

	apps      []traffic.AppTraffic
	parsec    bool
	adversary float64

	obsSrv   *obs.Server
	obsEvery int64
}

// SetObsServer attaches a live observability endpoint: during Run, a fresh
// obs.Snapshot (telemetry totals, attribution, engine profile) is published
// to srv every `every` cycles (and once more at the end of the run). Call
// before Run; the caller owns the server's lifecycle.
func (s *Simulation) SetObsServer(srv *obs.Server, every int64) {
	if every < 1 {
		every = 1
	}
	s.obsSrv = srv
	s.obsEvery = every
}

// ServeObs starts a live observability HTTP listener on addr (host:port;
// ":0" picks a free port) and attaches it to the simulation as with
// SetObsServer. It exists so callers outside this module — which cannot
// name the internal obs package — can still stand up the /metrics and
// /snapshot endpoints. Returns the bound address and a close function the
// caller must invoke when done.
func (s *Simulation) ServeObs(addr string, every int64) (string, func() error, error) {
	srv, err := obs.NewServer(addr)
	if err != nil {
		return "", nil, err
	}
	s.SetObsServer(srv, every)
	return srv.Addr(), srv.Close, nil
}

// New validates the configuration and builds a simulation.
func New(cfg Config) (*Simulation, error) {
	if cfg.MeshW == 0 {
		cfg.MeshW = 8
	}
	if cfg.MeshH == 0 {
		cfg.MeshH = 8
	}
	if cfg.MeshW < 2 || cfg.MeshH < 2 {
		return nil, fmt.Errorf("rair: mesh %dx%d too small", cfg.MeshW, cfg.MeshH)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	mesh := topology.NewMesh(cfg.MeshW, cfg.MeshH)
	var regs *region.Map
	var err error
	switch cfg.Layout {
	case LayoutSingle, "":
		regs = region.Single(mesh)
	case LayoutHalves:
		regs = region.Halves(mesh)
	case LayoutQuadrants:
		regs = region.Quadrants(mesh)
	case LayoutSixGrid:
		regs = region.SixGrid(mesh)
	case LayoutCustom:
		rects := make([]region.Rect, len(cfg.Rects))
		for i, r := range cfg.Rects {
			rects[i] = region.Rect(r)
		}
		regs, err = region.FromRects(mesh, rects)
		if err != nil {
			return nil, err
		}
		if err := regs.Validate(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("rair: unknown layout %q", cfg.Layout)
	}

	rcfg := router.DefaultConfig(1)
	if cfg.Classes > 0 {
		rcfg = router.DefaultConfig(cfg.Classes)
	}
	if cfg.AdaptiveVCs > 0 {
		rcfg.AdaptiveVCs = cfg.AdaptiveVCs
		rcfg.GlobalVCs = cfg.AdaptiveVCs / 2
	}
	if cfg.GlobalVCs > 0 {
		rcfg.GlobalVCs = cfg.GlobalVCs
	}
	if cfg.EscapeVCs > 0 {
		rcfg.EscapeVCs = cfg.EscapeVCs
	}
	if cfg.Depth > 0 {
		rcfg.Depth = cfg.Depth
	}
	if cfg.LinkLatency > 0 {
		rcfg.LinkLatency = cfg.LinkLatency
	}
	if err := rcfg.Validate(); err != nil {
		return nil, err
	}

	scheme, err := schemeByName(cfg, regs.NumApps())
	if err != nil {
		return nil, err
	}
	s := &Simulation{cfg: cfg, regions: regs, rcfg: rcfg, scheme: scheme}
	switch cfg.Routing {
	case "", "adaptive":
	case "xy":
		s.alg = routing.XY{Mesh: mesh}
	case "westfirst":
		s.alg = routing.WestFirst{Mesh: mesh}
	case "lbdr":
		corners := mesh.Corners()
		lbdr, err := routing.NewLBDR(regs, corners[:])
		if err != nil {
			return nil, err
		}
		s.alg = lbdr
	default:
		return nil, fmt.Errorf("rair: unknown routing %q", cfg.Routing)
	}
	return s, nil
}

// lbdrRestricted reports whether the simulation runs under LBDR's
// intra-region-only restriction.
func (s *Simulation) lbdrRestricted() bool {
	_, ok := s.alg.(routing.LBDR)
	return ok
}

func schemeByName(cfg Config, numApps int) (harness.Scheme, error) {
	ranks := cfg.Ranks
	if ranks == nil {
		// Default identity ranking sized to the configured app count so
		// big layouts (16-region grids, chiplet packages) don't silently
		// truncate RO_Rank's oracle at eight apps; keep the historical
		// floor of eight so small configs are byte-identical.
		n := numApps
		if n < 8 {
			n = 8
		}
		ranks = make([]int, n)
		for i := range ranks {
			ranks[i] = i
		}
	}
	switch cfg.Scheme {
	case "", "RO_RR":
		return harness.RORR(), nil
	case "RO_Rank":
		return harness.RORank(ranks), nil
	case "RA_DBAR":
		return harness.RORRDBAR("RA_DBAR"), nil
	case "RA_RAIR":
		if cfg.Delta > 0 {
			return harness.RAIRDelta(cfg.Delta), nil
		}
		return harness.RAIR("RA_RAIR"), nil
	case "RAIR_DBAR":
		return harness.RAIRDBAR("RAIR_DBAR"), nil
	case "RAIR_VA":
		return harness.RAIRVA(), nil
	case "RAIR_NativeH":
		return harness.RAIRNativeH(), nil
	case "RAIR_ForeignH":
		return harness.RAIRForeignH(), nil
	}
	return harness.Scheme{}, fmt.Errorf("rair: unknown scheme %q", cfg.Scheme)
}

// Schemes lists the recognized scheme names.
func Schemes() []string {
	return []string{"RO_RR", "RO_Rank", "RA_DBAR", "RA_RAIR", "RAIR_DBAR", "RAIR_VA", "RAIR_NativeH", "RAIR_ForeignH"}
}

// AddApp attaches a synthetic application. The app id must have nodes in
// the layout.
func (s *Simulation) AddApp(spec AppSpec) error {
	if s.parsec {
		return fmt.Errorf("rair: cannot mix AddApp with AttachPARSEC")
	}
	nodes := s.regions.Nodes(spec.App)
	if len(nodes) == 0 {
		return fmt.Errorf("rair: app %d owns no nodes in layout %q", spec.App, s.cfg.Layout)
	}
	if spec.GlobalFrac < 0 || spec.MCFrac < 0 || spec.GlobalFrac+spec.MCFrac > 1 {
		return fmt.Errorf("rair: app %d traffic fractions out of range", spec.App)
	}
	if s.lbdrRestricted() && (spec.GlobalFrac > 0 || spec.MCFrac > 0) {
		return fmt.Errorf("rair: LBDR routing cannot express app %d's inter-region traffic (GlobalFrac/MCFrac must be 0)", spec.App)
	}
	if (spec.LoadFrac <= 0) == (spec.PacketRate <= 0) {
		return fmt.Errorf("rair: app %d must set exactly one of LoadFrac or PacketRate", spec.App)
	}
	mesh := s.regions.Mesh()
	pat := spec.GlobalPattern
	if pat == "" {
		pat = "UR"
	}
	comps := []traffic.Component{}
	if intra := 1 - spec.GlobalFrac - spec.MCFrac; intra > 0 {
		c := traffic.IntraUR(nodes)
		c.Weight = intra
		comps = append(comps, c)
	}
	if spec.GlobalFrac > 0 {
		c := traffic.InterPattern(s.regions, traffic.PatternByName(pat, mesh))
		c.Weight = spec.GlobalFrac
		comps = append(comps, c)
	}
	if spec.MCFrac > 0 {
		c := traffic.MCCorners(mesh)
		c.Weight = spec.MCFrac
		comps = append(comps, c)
	}
	app := traffic.AppTraffic{App: spec.App, Nodes: nodes, Components: comps}
	if spec.PacketRate > 0 {
		app.PacketRate = spec.PacketRate
	} else {
		app.PacketRate = spec.LoadFrac * harness.SatEfficiency *
			traffic.SaturationRate(mesh, app, 1000, 0xfeed)
	}
	s.apps = append(s.apps, app)
	return nil
}

// AttachPARSEC replaces synthetic applications with the PARSEC-proxy
// workloads over the Table 1 memory system: application i of the layout
// runs workload.Profiles()[i mod 4].
func (s *Simulation) AttachPARSEC() error {
	if len(s.apps) > 0 {
		return fmt.Errorf("rair: cannot mix AttachPARSEC with AddApp")
	}
	if s.cfg.Classes != 0 && s.cfg.Classes < int(msg.NumClasses) {
		return fmt.Errorf("rair: PARSEC workloads need %d message classes", msg.NumClasses)
	}
	if s.lbdrRestricted() {
		return fmt.Errorf("rair: LBDR routing cannot express the memory system's inter-region traffic")
	}
	s.rcfg = router.DefaultConfig(int(msg.NumClasses))
	s.parsec = true
	return nil
}

// AddAdversary injects chip-wide uniform-random traffic at the given rate
// in flits per node per cycle under an application id owned by no region.
func (s *Simulation) AddAdversary(flitRate float64) error {
	if flitRate <= 0 {
		return fmt.Errorf("rair: adversary rate must be positive")
	}
	if s.lbdrRestricted() {
		return fmt.Errorf("rair: LBDR routing cannot express chip-wide adversarial traffic")
	}
	s.adversary = flitRate
	return nil
}

// Report is the outcome of a run.
type Report struct {
	// APL is the average packet latency over all measured packets.
	APL float64
	// PerApp maps application id to its APL.
	PerApp map[int]float64
	// RegionalAPL and GlobalAPL split APL by traffic kind.
	RegionalAPL, GlobalAPL float64
	// Packets is the measured packet count; Throughput the delivered
	// flits per node per cycle.
	Packets    int64
	Throughput float64
	// P95, P99 are latency percentiles.
	P95, P99 float64
	// AvgHops is the mean router-traversal count.
	AvgHops float64
	// Workers is the resolved tick-engine shard count the run actually
	// used (Config.Workers <= 1 collapses to one serial shard).
	Workers int
	// LatencyHistogram is an ASCII histogram of the measured latencies.
	LatencyHistogram string
	// Heatmap is an ASCII map of per-router link utilization.
	Heatmap string
	// Telemetry holds the instrumentation collector when Config.Telemetry
	// was set (nil otherwise): use Telemetry.Report() for the aggregated
	// counters and Telemetry.WriteChromeTrace for the lifecycle trace.
	Telemetry *telemetry.Collector
	// Engine is the tick engine's self-profile when Config.Profile was set
	// (nil otherwise).
	Engine *network.EngineProfile
	// Faults summarizes fault-injection outcomes when Config.Faults was
	// set (nil otherwise).
	Faults *FaultReport
}

// FaultReport is the aggregated fault-injection outcome of a run.
type FaultReport struct {
	DroppedFlits      int64 `json:"droppedFlits"`
	CorruptedFlits    int64 `json:"corruptedFlits"`
	Retransmits       int64 `json:"retransmits"`
	LostFlits         int64 `json:"lostFlits"`
	CreditLeaks       int64 `json:"creditLeaks"`
	ReconciledCredits int64 `json:"reconciledCredits"`
	StallCycles       int64 `json:"stallCycles"`
	StalledRouters    int   `json:"stalledRouters"`
}

func (fr *FaultReport) String() string {
	return fmt.Sprintf("faults: %d dropped, %d corrupted, %d retransmits, %d lost; %d credit leaks, %d reconciled; %d stall cycles on %d routers",
		fr.DroppedFlits, fr.CorruptedFlits, fr.Retransmits, fr.LostFlits,
		fr.CreditLeaks, fr.ReconciledCredits, fr.StallCycles, fr.StalledRouters)
}

func (r *Report) String() string {
	out := fmt.Sprintf("APL %.2f cycles (p95 %.1f, p99 %.1f) over %d packets, %.3f flits/node/cycle, %.2f hops\n",
		r.APL, r.P95, r.P99, r.Packets, r.Throughput, r.AvgHops)
	for app := 0; app < 16; app++ {
		if apl, ok := r.PerApp[app]; ok {
			out += fmt.Sprintf("  app %d: APL %.2f\n", app, apl)
		}
	}
	if r.RegionalAPL > 0 || r.GlobalAPL > 0 {
		out += fmt.Sprintf("  regional %.2f / global %.2f\n", r.RegionalAPL, r.GlobalAPL)
	}
	return out
}

// Run executes the simulation and collects statistics over the measurement
// window. It is deterministic for a fixed Config.Seed.
func (s *Simulation) Run(ph Phases) (*Report, error) {
	if ph.Warmup < 0 || ph.Measure <= 0 {
		return nil, fmt.Errorf("rair: need a positive measurement window")
	}
	if !s.parsec && len(s.apps) == 0 {
		return nil, fmt.Errorf("rair: no traffic attached (AddApp, AttachPARSEC)")
	}
	col := stats.NewCollector(ph.Warmup, ph.Warmup+ph.Measure)
	mesh := s.regions.Mesh()

	var sys *memsys.System
	adversaryApp := s.regions.NumApps() + 64 // foreign everywhere
	alg := s.alg
	if alg == nil {
		alg = s.scheme.Alg(mesh)
	}
	var tel *telemetry.Collector
	if s.cfg.Telemetry || s.cfg.Attribution {
		tel = telemetry.NewCollector(telemetry.Config{
			Window:      s.cfg.TelemetryWindow,
			TraceEvery:  s.cfg.TelemetryTraceEvery,
			Attribution: s.cfg.Attribution,
		})
	}
	var fcfg *faults.Config
	if fs := s.cfg.Faults; fs != nil {
		seed := fs.Seed
		if seed == 0 {
			seed = s.cfg.Seed
		}
		fcfg = &faults.Config{
			Seed: seed,
			Link: faults.LinkProfile{
				DropProb:       fs.DropProb,
				CorruptProb:    fs.CorruptProb,
				CreditLeakProb: fs.CreditLeakProb,
			},
			Router:         faults.RouterProfile{StallProb: fs.StallProb, StallLen: fs.StallLen},
			MaxRetries:     fs.MaxRetries,
			DropTimeout:    fs.DropTimeout,
			NackLatency:    fs.NackLatency,
			ReconcileEvery: fs.ReconcileEvery,
		}
		if err := fcfg.Validate(); err != nil {
			return nil, err
		}
	}
	var icfg *invariant.Config
	if s.cfg.CheckInvariants {
		icfg = &invariant.Config{Mode: invariant.ModeCollect}
	}
	// Synthetic traffic recycles packets through a freelist: the stats
	// collector copies what it needs at ejection, so nothing retains the
	// pointer. The memory system does (requests live across protocol
	// round-trips), so PARSEC runs allocate normally.
	var pool *msg.Pool
	var recycle func(*msg.Packet)
	if !s.parsec {
		pool = msg.NewPool()
		recycle = pool.Put
	}
	net := network.New(network.Params{
		Router:  s.rcfg,
		Regions: s.regions,
		Alg:     alg,
		Sel:     s.scheme.Sel(s.regions, s.rcfg),
		Policy:  s.scheme.Policy,
		OnEject: func(p *msg.Packet, now int64) {
			if sys != nil {
				sys.HandleEject(p, now)
			}
			if p.App != adversaryApp {
				col.OnEject(p, now)
			}
		},
		Recycle:   recycle,
		Workers:   s.cfg.Workers,
		Telemetry: tel,
		Faults:    fcfg,
		Check:     icfg,
		Profile:   s.cfg.Profile,
	})
	defer net.Close()
	inject := func(node int, p *msg.Packet, now int64) { net.NI(node).Inject(p, now) }

	var tickers []func(now int64)
	if s.parsec {
		profiles := workload.Profiles()
		streams := make([]memsys.AddressStream, mesh.N())
		for node := range streams {
			app := s.regions.AppAt(node)
			if app >= 0 {
				streams[node] = workload.NewStream(profiles[app%len(profiles)], app, node)
			}
		}
		sys = memsys.New(memsys.DefaultSystemConfig(), s.regions, streams, s.cfg.Seed, inject)
		sys.Prewarm(harness.PrewarmAccesses)
		tickers = append(tickers, sys.Tick)
	}
	end := ph.Warmup + ph.Measure
	if len(s.apps) > 0 {
		gen := traffic.NewGenerator(s.apps, s.cfg.Seed, inject)
		gen.Until = end
		gen.Pool = pool
		tickers = append(tickers, gen.Tick)
	}
	if s.adversary > 0 {
		adv := traffic.NewGenerator(
			[]traffic.AppTraffic{traffic.Adversary(mesh, adversaryApp, s.adversary/3)},
			s.cfg.Seed^0xadadad, inject)
		adv.Until = end
		adv.Pool = pool
		tickers = append(tickers, adv.Tick)
	}

	eng := sim.NewEngine()
	for _, t := range tickers {
		eng.Register(sim.TickFunc(t))
	}
	eng.Register(net)
	if srv := s.obsSrv; srv != nil {
		every := s.obsEvery
		// Runs on the coordinating goroutine after the tick completes, so
		// reading telemetry and the engine profile is race-free.
		eng.OnCycle(func(cycle int64) {
			if cycle%every == 0 {
				srv.Publish(obs.Snap(cycle, tel, net.EngineProfile()))
			}
		})
	}
	eng.Run(end)
	// Drain: generators self-stop at Until; the memory system keeps
	// ticking so in-flight protocol actions complete.
	eng.RunUntil(net.Drained, ph.Drain)

	rep := &Report{
		APL:              col.APL(),
		PerApp:           map[int]float64{},
		RegionalAPL:      col.Regional().Mean(),
		GlobalAPL:        col.Global().Mean(),
		Packets:          col.Packets(),
		Throughput:       col.FlitThroughput(mesh.N()),
		P95:              col.Total().Percentile(95),
		P99:              col.Total().Percentile(99),
		AvgHops:          col.Hops().Mean(),
		Workers:          net.Workers(),
		LatencyHistogram: col.Total().Histogram(12),
		Heatmap:          net.UtilizationHeatmap(end),
		Telemetry:        tel,
		Engine:           net.EngineProfile(),
	}
	if srv := s.obsSrv; srv != nil {
		srv.Publish(obs.Snap(eng.Now(), tel, rep.Engine))
	}
	if inj := net.Faults(); inj != nil {
		fr := inj.Report()
		rep.Faults = &FaultReport{
			DroppedFlits:      fr.Totals.DroppedFlits,
			CorruptedFlits:    fr.Totals.CorruptedFlits,
			Retransmits:       fr.Totals.Retransmits,
			LostFlits:         fr.Totals.LostFlits,
			CreditLeaks:       fr.Totals.CreditLeaks,
			ReconciledCredits: fr.Totals.ReconciledCredits,
			StallCycles:       fr.StallCycles,
			StalledRouters:    fr.StalledRouters,
		}
	}
	for _, app := range col.Apps() {
		rep.PerApp[app] = col.App(app).Mean()
	}
	if chk := net.Checker(); chk != nil {
		if err := chk.Err(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// BatchResult summarizes one replication of RunBatch.
type BatchResult struct {
	Seed    uint64
	Packets int64
	APL     float64
	P99     float64
}

// RunBatch executes the simulation's scenario once per seed, keeping up to
// width replications resident and advancing them in lockstep (one pass of
// the cycle loop steps every live replication by one cycle). Results are
// bit-identical to running each seed through Run; the lockstep only changes
// the order the process visits the replications in, which keeps the
// instruction cache warm across a seed axis. See internal/harness.RunBatch
// for the scheduling contract.
//
// Only plain synthetic-traffic simulations batch: PARSEC workloads,
// adversarial traffic, routing overrides, telemetry, fault injection and
// invariant collection all carry per-run state the batch runner does not
// thread through, and are rejected.
func (s *Simulation) RunBatch(ph Phases, seeds []uint64, width int) ([]BatchResult, error) {
	if ph.Warmup < 0 || ph.Measure <= 0 {
		return nil, fmt.Errorf("rair: need a positive measurement window")
	}
	if len(s.apps) == 0 {
		return nil, fmt.Errorf("rair: no traffic attached (AddApp)")
	}
	if s.parsec || s.adversary > 0 || s.alg != nil ||
		s.cfg.Telemetry || s.cfg.Attribution || s.cfg.Profile ||
		s.cfg.Faults != nil || s.cfg.CheckInvariants {
		return nil, fmt.Errorf("rair: RunBatch supports only plain synthetic-traffic simulations")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("rair: RunBatch needs at least one seed")
	}
	rcs := make([]harness.RunConfig, len(seeds))
	for i, seed := range seeds {
		if seed == 0 {
			return nil, fmt.Errorf("rair: RunBatch seeds must be >= 1")
		}
		rcs[i] = harness.RunConfig{
			Regions: s.regions,
			Router:  s.rcfg,
			Apps:    s.apps,
			Scheme:  s.scheme,
			Dur:     harness.Durations{Warmup: ph.Warmup, Measure: ph.Measure, Drain: ph.Drain},
			Seed:    seed,
			Workers: s.cfg.Workers,
		}
	}
	cols := harness.RunBatch(rcs, width)
	out := make([]BatchResult, len(seeds))
	for i, col := range cols {
		out[i] = BatchResult{
			Seed:    seeds[i],
			Packets: col.Packets(),
			APL:     col.APL(),
			P99:     col.Total().Percentile(99),
		}
	}
	return out, nil
}
