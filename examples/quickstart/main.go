// Quickstart: simulate two applications sharing an 8×8 mesh NoC — a
// low-intensity app on the left half that sends half of its traffic into
// the other region, and a near-saturation app on the right half — and
// compare the round-robin baseline with RAIR.
package main

import (
	"fmt"
	"log"

	"rair"
)

func main() {
	for _, scheme := range []string{"RO_RR", "RA_RAIR"} {
		sim, err := rair.New(rair.Config{
			Layout: rair.LayoutHalves,
			Scheme: scheme,
			Seed:   42,
		})
		if err != nil {
			log.Fatal(err)
		}
		// App 0: 10% of saturation, half of it crossing into app 1's
		// region ("global traffic").
		if err := sim.AddApp(rair.AppSpec{App: 0, LoadFrac: 0.10, GlobalFrac: 0.5}); err != nil {
			log.Fatal(err)
		}
		// App 1: 90% of saturation, all intra-region.
		if err := sim.AddApp(rair.AppSpec{App: 1, LoadFrac: 0.90}); err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run(rair.Phases{Warmup: 2000, Measure: 20000, Drain: 10000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s\n%s\n", scheme, rep)
	}
	fmt.Println("RAIR prioritizes app 0's low-intensity inter-region traffic over")
	fmt.Println("app 1's heavy intra-region traffic, cutting app 0's latency at")
	fmt.Println("almost no cost to app 1.")
}
