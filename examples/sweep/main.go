// Sweep: two parameter studies printed as CSV for plotting —
//
//  1. the latency-load curve of chip-wide uniform random traffic (where the
//     network saturates), and
//  2. the inter-region-fraction sweep of the paper's Figure 9: a
//     low-intensity app whose traffic increasingly crosses into a
//     near-saturation neighbor region, under RO_RR and RAIR.
package main

import (
	"fmt"
	"log"

	"rair"
)

func latencyLoad() {
	fmt.Println("# latency-load curve, chip-wide uniform random, RO_RR")
	fmt.Println("load_frac,apl,throughput_flits_per_node_cycle")
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		sim, err := rair.New(rair.Config{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.AddApp(rair.AppSpec{App: 0, LoadFrac: frac}); err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run(rair.Phases{Warmup: 2000, Measure: 8000, Drain: 10000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f,%.2f,%.4f\n", frac, rep.APL, rep.Throughput)
	}
}

func interRegion() {
	fmt.Println("\n# inter-region fraction sweep (Figure 9 scenario)")
	fmt.Println("scheme,p,apl_app0,apl_app1")
	for _, scheme := range []string{"RO_RR", "RA_RAIR"} {
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			sim, err := rair.New(rair.Config{Layout: rair.LayoutHalves, Scheme: scheme, Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			if err := sim.AddApp(rair.AppSpec{App: 0, LoadFrac: 0.10, GlobalFrac: p}); err != nil {
				log.Fatal(err)
			}
			if err := sim.AddApp(rair.AppSpec{App: 1, LoadFrac: 0.90}); err != nil {
				log.Fatal(err)
			}
			rep, err := sim.Run(rair.Phases{Warmup: 2000, Measure: 8000, Drain: 10000})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s,%.2f,%.2f,%.2f\n", scheme, p, rep.PerApp[0], rep.PerApp[1])
		}
	}
}

func main() {
	latencyLoad()
	interRegion()
}
