// Adversarial: the server-consolidation protection story of the paper —
// four PARSEC-proxy applications run on quadrants (one "virtual machine"
// per region) while a malicious or buggy injector floods the chip with
// uniform traffic. The example reports how much each application's packet
// latency degrades under every interference-reduction technique; RAIR
// identifies the flood as foreign traffic everywhere and keeps the
// applications near their undisturbed latency.
package main

import (
	"fmt"
	"log"

	"rair"
)

// adversaryRate is the malicious load in flits per node per cycle,
// calibrated to sit at the round-robin baseline's capacity knee (the
// paper's 0.4 corresponds to its simulator's knee; see EXPERIMENTS.md).
const adversaryRate = 0.16

var apps = []string{"blackscholes", "swaptions", "fluidanimate", "raytrace"}

func run(scheme string, adversary bool) map[int]float64 {
	sim, err := rair.New(rair.Config{
		Layout: rair.LayoutQuadrants,
		Scheme: scheme,
		Ranks:  []int{0, 1, 2, 3}, // PARSEC proxies, least intensive first
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.AttachPARSEC(); err != nil {
		log.Fatal(err)
	}
	if adversary {
		if err := sim.AddAdversary(adversaryRate); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := sim.Run(rair.Phases{Warmup: 3000, Measure: 10000, Drain: 10000})
	if err != nil {
		log.Fatal(err)
	}
	return rep.PerApp
}

func main() {
	fmt.Printf("adversarial chip-wide traffic at %.2f flits/node/cycle\n\n", adversaryRate)
	fmt.Printf("%-9s", "scheme")
	for _, a := range apps {
		fmt.Printf("  %12s", a)
	}
	fmt.Println("  avg slowdown")
	for _, s := range []string{"RO_RR", "RA_DBAR", "RO_Rank", "RA_RAIR"} {
		base := run(s, false)
		adv := run(s, true)
		fmt.Printf("%-9s", s)
		sum := 0.0
		for app := range apps {
			sd := adv[app] / base[app]
			sum += sd
			fmt.Printf("  %12.2f", sd)
		}
		fmt.Printf("  %.2f\n", sum/float64(len(apps)))
	}
}
