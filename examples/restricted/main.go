// Restricted: why the paper rejects restriction-based interference
// reduction. LBDR (Section III.B) confines every packet to its region,
// which (1) makes many application-to-core mappings invalid — each region
// must contain a memory controller — and (2) makes inter-region workloads
// inexpressible. RAIR places no such restrictions: the same workloads run
// unchanged.
package main

import (
	"fmt"

	"rair"
)

func main() {
	// 1. An invalid mapping: a middle band of the chip holds no corner
	// MC, so LBDR rejects the configuration outright (Figure 3(b)).
	_, err := rair.New(rair.Config{
		Layout:  rair.LayoutCustom,
		Routing: "lbdr",
		Rects: []rair.Rect{
			{X0: 0, Y0: 0, X1: 2, Y1: 8},
			{X0: 2, Y0: 0, X1: 6, Y1: 8}, // middle band: no corner MC
			{X0: 6, Y0: 0, X1: 8, Y1: 8},
		},
	})
	fmt.Println("LBDR with an MC-less middle region:", err)
	fmt.Println("(the paper computes that only ≈14% of mappings survive this rule)")
	fmt.Println()

	// 2. A valid quadrant mapping — but the six-app style workload with
	// inter-region traffic cannot even be expressed.
	lbdr, err := rair.New(rair.Config{Layout: rair.LayoutQuadrants, Routing: "lbdr"})
	if err != nil {
		panic(err)
	}
	err = lbdr.AddApp(rair.AppSpec{App: 0, LoadFrac: 0.3, GlobalFrac: 0.2})
	fmt.Println("LBDR with 20% inter-region traffic:", err)
	fmt.Println()

	// 3. Intra-region-only traffic works under LBDR...
	for app := 0; app < 4; app++ {
		if err := lbdr.AddApp(rair.AppSpec{App: app, LoadFrac: 0.3}); err != nil {
			panic(err)
		}
	}
	rep, err := lbdr.Run(rair.Phases{Warmup: 1000, Measure: 8000, Drain: 8000})
	if err != nil {
		panic(err)
	}
	fmt.Printf("LBDR, intra-region-only workload: APL %.2f over %d packets\n\n", rep.APL, rep.Packets)

	// ...while RAIR runs the full regionalized workload, inter-region
	// traffic included, with no validity constraints on the mapping.
	full, err := rair.New(rair.Config{Layout: rair.LayoutQuadrants, Scheme: "RA_RAIR"})
	if err != nil {
		panic(err)
	}
	for app := 0; app < 4; app++ {
		if err := full.AddApp(rair.AppSpec{App: app, LoadFrac: 0.3, GlobalFrac: 0.2, MCFrac: 0.05}); err != nil {
			panic(err)
		}
	}
	rep, err = full.Run(rair.Phases{Warmup: 1000, Measure: 8000, Drain: 8000})
	if err != nil {
		panic(err)
	}
	fmt.Printf("RA_RAIR, full workload (20%% inter-region + 5%% MC): APL %.2f over %d packets\n", rep.APL, rep.Packets)
	fmt.Printf("  regional %.2f / global %.2f\n", rep.RegionalAPL, rep.GlobalAPL)
}
