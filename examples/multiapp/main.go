// Multiapp: the paper's generic regionalized-NoC scenario — six
// applications with heterogeneous loads on a 3×2 region grid, each sending
// 75% intra-region traffic, 20% inter-region traffic and 5% memory
// controller traffic — compared across all four interference-reduction
// techniques.
package main

import (
	"fmt"
	"log"

	"rair"
)

// Load fractions per application (apps 1 and 5 are network-heavy).
var loads = []float64{0.10, 0.90, 0.20, 0.30, 0.15, 0.90}

// ranksByLoad builds the oracle STC ranking (least intensive first).
func ranksByLoad() []int {
	ranks := make([]int, len(loads))
	for a := range loads {
		for b := range loads {
			if loads[b] < loads[a] || (loads[b] == loads[a] && b < a) {
				ranks[a]++
			}
		}
	}
	return ranks
}

func run(scheme string) map[int]float64 {
	sim, err := rair.New(rair.Config{
		Layout: rair.LayoutSixGrid,
		Scheme: scheme,
		Ranks:  ranksByLoad(),
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for app, load := range loads {
		err := sim.AddApp(rair.AppSpec{
			App:      app,
			LoadFrac: load,
			// 75% intra-region / 20% inter-region / 5% MC corners.
			GlobalFrac: 0.20,
			MCFrac:     0.05,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	rep, err := sim.Run(rair.Phases{Warmup: 2000, Measure: 20000, Drain: 10000})
	if err != nil {
		log.Fatal(err)
	}
	return rep.PerApp
}

func main() {
	schemes := []string{"RO_RR", "RA_DBAR", "RO_Rank", "RA_RAIR"}
	baseline := run(schemes[0])

	fmt.Printf("%-9s", "scheme")
	for app := range loads {
		fmt.Printf("  app%d(%.0f%%)", app, loads[app]*100)
	}
	fmt.Println("  avg reduction")
	for _, s := range schemes {
		apl := baseline
		if s != schemes[0] {
			apl = run(s)
		}
		fmt.Printf("%-9s", s)
		sum := 0.0
		for app := range loads {
			fmt.Printf("  %8.2f", apl[app])
			sum += (baseline[app] - apl[app]) / baseline[app]
		}
		fmt.Printf("  %+.1f%%\n", 100*sum/float64(len(loads)))
	}
}
