package rair_test

import (
	"fmt"

	"rair"
)

// The smallest useful simulation: one region, uniform random traffic at a
// third of saturation, round-robin arbitration.
func ExampleNew() {
	sim, err := rair.New(rair.Config{Seed: 7})
	if err != nil {
		panic(err)
	}
	if err := sim.AddApp(rair.AppSpec{App: 0, LoadFrac: 0.33}); err != nil {
		panic(err)
	}
	rep, err := sim.Run(rair.Phases{Warmup: 500, Measure: 4000, Drain: 8000})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Packets > 0 && rep.APL > 0)
	// Output: true
}

// Comparing RAIR against the round-robin baseline on a regionalized
// workload: two halves, one light app with inter-region traffic, one heavy.
func ExampleSimulation_Run() {
	apl := func(scheme string) float64 {
		sim, err := rair.New(rair.Config{Layout: rair.LayoutHalves, Scheme: scheme, Seed: 7})
		if err != nil {
			panic(err)
		}
		sim.AddApp(rair.AppSpec{App: 0, LoadFrac: 0.10, GlobalFrac: 1.0})
		sim.AddApp(rair.AppSpec{App: 1, LoadFrac: 0.90})
		rep, err := sim.Run(rair.Phases{Warmup: 1000, Measure: 8000, Drain: 8000})
		if err != nil {
			panic(err)
		}
		return rep.PerApp[0]
	}
	// RAIR accelerates the light app's inter-region traffic.
	fmt.Println(apl("RA_RAIR") < apl("RO_RR"))
	// Output: true
}

// Every figure of the paper is reproducible by name.
func ExampleExperiments() {
	for _, e := range rair.Experiments() {
		if e.Name == "lbdr" {
			fmt.Println(e.Name)
		}
	}
	// Output: lbdr
}
