package harness

import (
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/policy"
	"rair/internal/stats"
	"rair/internal/traffic"
)

// RankDynInterval is the measured-STC re-ranking interval in cycles (Das et
// al. re-rank periodically; the paper's RO_Rank idealizes this away).
const RankDynInterval = 2000

// RunDynRank executes the six-application scenario under the measured
// (non-oracle) STC: application ranks are recomputed every
// RankDynInterval cycles from observed injection counts.
func RunDynRank(dur Durations, seed uint64) *stats.Collector {
	regs, apps := Fig14Scenario("UR")
	state := policy.NewRankState(regs.NumApps(), RankDynInterval)
	s := Scheme{Name: "RO_RankDyn", Policy: policy.NewDynRankFactory(state)}
	col := stats.NewCollector(dur.Warmup, dur.Warmup+dur.Measure)
	net := network.New(network.Params{
		Router:  synthCfg(),
		Regions: regs,
		Alg:     s.Alg(regs.Mesh()),
		Sel:     s.Sel(regs, synthCfg()),
		Policy:  s.Policy,
		OnEject: col.OnEject,
	})
	gen := newObservedGenerator(apps, seed, state, net)
	end := dur.Warmup + dur.Measure
	gen.Until = end
	for now := int64(0); now < end; now++ {
		state.Advance(now)
		gen.Tick(now)
		net.Tick(now)
	}
	for now := end; now < end+dur.Drain && !net.Drained(); now++ {
		net.Tick(now)
	}
	return col
}

// RankDynResult compares the oracle and measured STC variants against
// RO_RR on the six-application scenario.
type RankDynResult struct {
	Apps []int
	// APL[variant][app]: 0 = RO_RR, 1 = oracle RO_Rank, 2 = RO_RankDyn.
	APL [][]float64
}

// Names are the compared variants in APL order.
func (r *RankDynResult) Names() []string { return []string{"RO_RR", "RO_Rank(oracle)", "RO_RankDyn"} }

// Table renders the comparison.
func (r *RankDynResult) Table() *Table {
	t := &Table{
		Title:  "Oracle vs measured STC ranking (six-application scenario)",
		Header: []string{"scheme", "avg reduction vs RO_RR"},
	}
	base := r.APL[0]
	for vi, name := range r.Names() {
		if vi == 0 {
			t.AddRow(name, "-")
			continue
		}
		sum := 0.0
		for ai := range r.Apps {
			sum += stats.Reduction(base[ai], r.APL[vi][ai])
		}
		t.AddRow(name, pct(sum/float64(len(r.Apps))))
	}
	return t
}

// AblateRankOracle quantifies what the paper's "optimal ranking" assumption
// is worth: oracle RO_Rank vs the measured interval-based ranking.
func AblateRankOracle(dur Durations, seed uint64) *RankDynResult {
	regs, apps := Fig14Scenario("UR")
	fig := runFig("", regs, apps, synthCfg(),
		[]Scheme{RORR(), RORank(SixAppRanks())}, dur, seed)
	dyn := RunDynRank(dur, seed)
	res := &RankDynResult{Apps: fig.Apps}
	res.APL = append(res.APL, fig.APL[0], fig.APL[1])
	dynRow := make([]float64, len(fig.Apps))
	for ai, a := range fig.Apps {
		dynRow[ai] = dyn.App(a).Mean()
	}
	res.APL = append(res.APL, dynRow)
	return res
}

// newObservedGenerator builds the traffic generator with an injector that
// also reports every injection to the ranking state.
func newObservedGenerator(apps []traffic.AppTraffic, seed uint64, state *policy.RankState, net *network.Network) *traffic.Generator {
	return traffic.NewGenerator(apps, seed, func(node int, p *msg.Packet, now int64) {
		state.Observe(p.App)
		net.NI(node).Inject(p, now)
	})
}
