package harness

import (
	"fmt"
	"runtime"

	"rair/internal/region"
	"rair/internal/stats"
	"rair/internal/topology"
	"rair/internal/traffic"
)

// ChipletQuad is the standard chiplet evaluation topology: a 2×2 package of
// 4×4 tiles (64 routers), one RAIR region per chiplet.
func ChipletQuad() *topology.Chiplets { return topology.NewChiplets(2, 2, 4) }

// ChipletRegions maps one region per chiplet. region.Grid's row-major
// rectangle numbering matches Chiplets.ChipOf, so app i occupies chip i
// (asserted by TestChipletRegionAlignment).
func ChipletRegions(cs *topology.Chiplets) *region.Map {
	return region.Grid(cs.Mesh(), cs.ChipsX, cs.ChipsY)
}

// ChipletScenario builds the cross-boundary co-run: the victim application
// on chiplet 0 running intra-tile uniform-random, and an aggressor per
// remaining chiplet at aggrFrac of saturation sending 30% of its traffic at
// the victim nodes farthest from the victim's gateway — traffic that must
// cross the package switch, enter chiplet 0 through its gateway, and then
// traverse the long diagonal of the victim tile, the interference path
// RAIR's boundary gating is supposed to contain. (Targeting the far corner
// rather than the whole tile keeps the foreign flits on victim links for
// many hops; a gateway-adjacent target would barely touch the tile.)
func ChipletScenario(cs *topology.Chiplets, aggrFrac float64) (*region.Map, []traffic.AppTraffic) {
	mesh := cs.Mesh()
	regs := ChipletRegions(cs)
	gw := cs.Gateway(0)
	var far []int
	for _, v := range regs.Nodes(0) {
		if mesh.Distance(gw, v) >= cs.K {
			far = append(far, v)
		}
	}
	n := regs.NumApps()
	apps := make([]traffic.AppTraffic, n)
	for a := 0; a < n; a++ {
		nodes := regs.Nodes(a)
		var app traffic.AppTraffic
		if a == 0 {
			app = traffic.AppTraffic{
				App: a, Nodes: nodes,
				Components: []traffic.Component{traffic.IntraUR(nodes)},
			}
			// 0.15 rather than the heavier loads of the mesh scenarios:
			// the DPA flips native-high only while foreign occupancy
			// exceeds native occupancy by the hysteresis margin, and the
			// gateway funnel admits at most one foreign flit per cycle —
			// a lightly loaded victim keeps OVC_n low enough for the
			// boundary routers to detect and gate the foreign flood.
			app.PacketRate = rate(mesh, app, 0.15)
		} else {
			app = traffic.AppTraffic{
				App: a, Nodes: nodes,
				Components: []traffic.Component{
					{Weight: 0.7, Draw: traffic.IntraUR(nodes).Draw},
					{Weight: 0.3, Draw: traffic.DirectedTo(far).Draw},
				},
			}
			app.PacketRate = rate(mesh, app, aggrFrac)
		}
		apps[a] = app
	}
	return regs, apps
}

// ChipletAggrFrac is the aggressor operating point of the chiplet co-run:
// low enough that the aggregate foreign influx stays within the victim
// gateway's serialization bandwidth (the experiment measures boundary
// interference, not an overdriven crossbar queue), high enough that the
// foreign flits contend measurably inside the victim tile.
const ChipletAggrFrac = 0.45

// ChipletResult holds the chiplet boundary-interference comparison: per
// scheme, the victim's APL alone and under cross-chiplet aggression.
type ChipletResult struct {
	Title   string
	Schemes []string
	Base    []float64 // victim APL, victim alone
	Co      []float64 // victim APL, aggressors on the other chiplets
	P99     []float64 // victim p99 total latency in the co-run
}

// Slowdown is the victim APL slowdown under scheme si.
func (r *ChipletResult) Slowdown(si int) float64 {
	return stats.Slowdown(r.Base[si], r.Co[si])
}

// Table renders the comparison.
func (r *ChipletResult) Table() *Table {
	t := &Table{
		Title:  r.Title,
		Header: []string{"scheme", "base apl", "co apl", "slowdown", "co p99"},
	}
	for si, s := range r.Schemes {
		// Slowdown gets three decimals: the calibrated boundary-gating
		// margin the chiplet-smoke guards check is below the 0.01
		// resolution the other tables round to.
		t.AddRow(s, f2(r.Base[si]), f2(r.Co[si]), fmt.Sprintf("%.3f", r.Slowdown(si)), f2(r.P99[si]))
	}
	return t
}

// ChipletSynth runs the chiplet co-run across the scheme panel: per scheme,
// the victim alone on chiplet 0 (base) and the victim under the three
// cross-boundary aggressors (co), all points in parallel.
func ChipletSynth(dur Durations, seed uint64) *ChipletResult {
	cs := ChipletQuad()
	regs, apps := ChipletScenario(cs, ChipletAggrFrac)
	schemes := []Scheme{RORR(), RORRDBAR("RA_DBAR"), RORank([]int{0, 1, 2, 3}), RAIR("RA_RAIR")}
	res := &ChipletResult{
		Title: fmt.Sprintf("Chiplet boundary co-run (%dx%d package of %dx%d tiles): victim on chiplet 0",
			cs.ChipsX, cs.ChipsY, cs.K, cs.K),
	}
	var rcs []RunConfig
	for _, s := range schemes {
		base := RunConfig{Regions: regs, Router: synthCfg(), Apps: apps[:1],
			Scheme: s, Dur: dur, Seed: seed, Chiplets: cs}
		co := base
		co.Apps = apps
		rcs = append(rcs, base, co)
	}
	cols := RunParallel(rcs)
	for si, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
		res.Base = append(res.Base, cols[2*si].App(0).Mean())
		res.Co = append(res.Co, cols[2*si+1].App(0).Mean())
		res.P99 = append(res.P99, cols[2*si+1].App(0).Percentile(99))
	}
	return res
}

// ScaleBigMesh extends the Section VI scalability study to large meshes: a
// 4×4 region grid at each mesh size, run on the sharded tick engine (the
// serial engine would dominate wall clock at 4096 routers).
func ScaleBigMesh(ks []int, dur Durations, seed uint64) *ScaleResult {
	res := &ScaleResult{Title: "Scalability: big meshes (16-region grid, sharded engine)"}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	for _, k := range ks {
		mesh := topology.NewMesh(k, k)
		regs, apps := gridScenario(mesh, 4, 4)
		res.Points = append(res.Points,
			scalePointW(fmt.Sprintf("%dx%d", k, k), regs, apps, dur, seed, workers))
	}
	return res
}
