package harness

import (
	"fmt"
	"testing"

	"rair/internal/invariant"
)

// TestChipletRegionAlignment: the one-region-per-chiplet mapping relies on
// region.Grid's row-major rectangle numbering agreeing with Chiplets.ChipOf;
// if either numbering changes, the victim/aggressor roles of the chiplet
// scenario silently shuffle.
func TestChipletRegionAlignment(t *testing.T) {
	cs := ChipletQuad()
	regs := ChipletRegions(cs)
	for id := 0; id < cs.Mesh().N(); id++ {
		if got, want := regs.AppAt(id), cs.ChipOf(id); got != want {
			t.Fatalf("node %d: region app %d, chip %d", id, got, want)
		}
	}
}

// TestChipletScenarioShape: the co-run must actually cross the package
// boundary — every aggressor carries a component directed at victim nodes,
// and the directed targets sit in the far half of the victim tile (the
// calibration depends on foreign flits traversing many victim links).
func TestChipletScenarioShape(t *testing.T) {
	cs := ChipletQuad()
	regs, apps := ChipletScenario(cs, ChipletAggrFrac)
	if len(apps) != 4 {
		t.Fatalf("apps = %d, want 4", len(apps))
	}
	gw := cs.Gateway(0)
	victim := map[int]bool{}
	for _, v := range regs.Nodes(0) {
		victim[v] = true
	}
	for a := 1; a < len(apps); a++ {
		if len(apps[a].Components) != 2 {
			t.Fatalf("aggressor %d has %d components, want 2", a, len(apps[a].Components))
		}
	}
	// The directed component's reachable destinations: sample draws.
	mesh := cs.Mesh()
	for _, v := range regs.Nodes(0) {
		if mesh.Distance(gw, v) >= cs.K && !victim[v] {
			t.Fatalf("far target %d outside victim tile", v)
		}
	}
}

// TestChipletRunDeterminism: the chiplet co-run — eject-and-reinject bridge,
// package crossbar, per-chiplet regions — must produce bit-identical victim
// statistics across tick-engine worker counts, with the panic-mode invariant
// checker (mask shadows, quiescence audit, conservation) live. This is the
// determinism-matrix entry for the two-level topology.
func TestChipletRunDeterminism(t *testing.T) {
	cs := ChipletQuad()
	regs, apps := ChipletScenario(cs, ChipletAggrFrac)
	mkRC := func(workers int) RunConfig {
		return RunConfig{
			Regions: regs, Router: synthCfg(), Apps: apps,
			Scheme: RAIR("RA_RAIR"), Dur: testDur(), Seed: 7,
			Workers: workers, Chiplets: cs,
			Check: &invariant.Config{Every: 64},
		}
	}
	ref := Run(mkRC(0))
	if ref.Packets() == 0 {
		t.Fatal("reference run delivered nothing")
	}
	want := collectorSurface(ref)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			if s := collectorSurface(Run(mkRC(workers))); s != want {
				t.Fatalf("stats diverge\n got %s\nwant %s", s, want)
			}
		})
	}
}

// TestConcentratedRunDeterminism: a concentrated mesh (two cores per router,
// NI-multiplexed injectors) must deliver traffic and stay bit-identical
// across worker counts — the injector rotation happens on the coordinator.
func TestConcentratedRunDeterminism(t *testing.T) {
	regs, apps := Fig9Scenario(0.5)
	mkRC := func(workers int) RunConfig {
		return RunConfig{
			Regions: regs, Router: synthCfg(), Apps: apps,
			Scheme: RAIR("RA_RAIR"), Dur: testDur(), Seed: 11,
			Workers: workers, Concentration: 2,
			Check: &invariant.Config{Every: 64},
		}
	}
	ref := Run(mkRC(0))
	if ref.Packets() == 0 {
		t.Fatal("reference run delivered nothing")
	}
	want := collectorSurface(ref)
	for _, workers := range []int{2, 4} {
		if s := collectorSurface(Run(mkRC(workers))); s != want {
			t.Fatalf("workers=%d: stats diverge\n got %s\nwant %s", workers, s, want)
		}
	}
}

// TestChipletSynthOrdering locks the calibrated boundary-interference
// signal the chiplet-smoke CI gate depends on: interference is present
// under the baseline, and RAIR's boundary gating contains it.
func TestChipletSynthOrdering(t *testing.T) {
	res := ChipletSynth(QuickDurations(), 1)
	idx := map[string]int{}
	for i, s := range res.Schemes {
		idx[s] = i
	}
	rr, rair := res.Slowdown(idx["RO_RR"]), res.Slowdown(idx["RA_RAIR"])
	if rr < 1.01 {
		t.Fatalf("RO_RR slowdown %.3f: no measurable boundary interference", rr)
	}
	if rair >= rr {
		t.Fatalf("RA_RAIR slowdown %.3f >= RO_RR %.3f: boundary gating not helping", rair, rr)
	}
}
