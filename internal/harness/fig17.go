package harness

import (
	"fmt"
	"rair/internal/policy"

	"rair/internal/memsys"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/stats"
	"rair/internal/traffic"
	"rair/internal/workload"
)

// AdversaryApp is the application number of the adversarial injector; it is
// assigned to no region, so its traffic is foreign everywhere.
const AdversaryApp = 4

// AdversaryFlitRate is the malicious load of Section V.G, calibrated to
// reproduce the paper's operating point rather than its absolute number.
// The paper injects 0.4 flits/cycle/node of chip-wide uniform traffic and
// still measures finite (≈2x) slowdowns, i.e. the flood sits right at the
// baseline's capacity knee. Our router's achieved saturation is lower
// (≈75% of the ideal channel bound) and the warmed PARSEC proxies leave a
// different headroom, so the equivalent knee sits at 0.16 flits/cycle/node:
// the round-robin baseline is pushed past its knee while the protective
// schemes still keep the applications close to their undisturbed latency —
// exactly the regime Figure 17 reports. See EXPERIMENTS.md for the
// calibration sweep.
const AdversaryFlitRate = 0.16

// PARSECScenario builds the four-application setup of Figure 16: the PARSEC
// proxies on the quadrants of the 8×8 mesh (blackscholes, swaptions,
// fluidanimate, raytrace in quadrant order), driven through the Table 1
// memory system.
func PARSECScenario() (*region.Map, []memsys.AddressStream) {
	regs := region.Quadrants(Mesh8())
	profiles := workload.Profiles()
	streams := make([]memsys.AddressStream, regs.Mesh().N())
	for node := range streams {
		app := regs.AppAt(node)
		streams[node] = workload.NewStream(profiles[app], app, node)
	}
	return regs, streams
}

// PARSECRanks is the oracle STC ranking of the PARSEC proxies by network
// intensity (blackscholes least intensive). The adversary is unranked and
// therefore bottom-priority, matching the paper's optimally-ranked RO_Rank.
func PARSECRanks() []int { return []int{0, 1, 2, 3} }

// Fig17Result holds the per-application APL slowdown caused by adversarial
// traffic under each scheme.
type Fig17Result struct {
	Title   string
	Schemes []string
	Apps    []string
	// Base/Adv APL [scheme][app]; Slowdown = Adv/Base.
	Base [][]float64
	Adv  [][]float64
}

// Slowdown returns the APL slowdown of app ai under scheme si.
func (r *Fig17Result) Slowdown(si, ai int) float64 {
	return stats.Slowdown(r.Base[si][ai], r.Adv[si][ai])
}

// AvgSlowdown returns the mean per-app slowdown of scheme si.
func (r *Fig17Result) AvgSlowdown(si int) float64 {
	sum := 0.0
	for ai := range r.Apps {
		sum += r.Slowdown(si, ai)
	}
	return sum / float64(len(r.Apps))
}

// Table renders the slowdown matrix.
func (r *Fig17Result) Table() *Table {
	title := r.Title
	if title == "" {
		title = "APL slowdown under adversarial traffic (PARSEC proxies)"
	}
	t := &Table{
		Title:  title,
		Header: append(append([]string{"scheme"}, r.Apps...), "average"),
	}
	for si, s := range r.Schemes {
		row := []string{s}
		for ai := range r.Apps {
			row = append(row, f2(r.Slowdown(si, ai)))
		}
		row = append(row, f2(r.AvgSlowdown(si)))
		t.AddRow(row...)
	}
	return t
}

// MemsysRouterConfig is the two-class router configuration for the
// application experiments (requests and responses on disjoint VC sets).
func MemsysRouterConfig() router.Config { return router.DefaultConfig(int(msg.NumClasses)) }

// RunPARSEC executes one PARSEC-proxy simulation under a scheme, optionally
// with the adversarial injector, and returns the latency collector
// (covering the applications' packets only; adversarial packets are
// excluded from statistics, as the paper reports slowdown of the normal
// applications).
func RunPARSEC(s Scheme, withAdversary bool, dur Durations, seed uint64) *stats.Collector {
	regs, streams := PARSECScenario()
	mesh := regs.Mesh()
	cfg := MemsysRouterConfig()

	col := stats.NewCollector(dur.Warmup, dur.Warmup+dur.Measure)
	var sys *memsys.System
	net := network.New(network.Params{
		Router:  cfg,
		Regions: regs,
		Alg:     s.Alg(mesh),
		Sel:     s.Sel(regs, cfg),
		Policy:  s.Policy,
		OnEject: func(p *msg.Packet, now int64) {
			sys.HandleEject(p, now)
			if p.App != AdversaryApp {
				col.OnEject(p, now)
			}
		},
	})
	inject := func(node int, p *msg.Packet, now int64) { net.NI(node).Inject(p, now) }
	sys = memsys.New(memsys.DefaultSystemConfig(), regs, streams, seed, inject)
	sys.Prewarm(PrewarmAccesses)

	var adv *traffic.Generator
	if withAdversary {
		app := traffic.Adversary(mesh, AdversaryApp, AdversaryFlitRate/3)
		adv = traffic.NewGenerator([]traffic.AppTraffic{app}, seed^0xadadad, inject)
		adv.Until = dur.Warmup + dur.Measure
	}

	end := dur.Warmup + dur.Measure
	for now := int64(0); now < end; now++ {
		sys.Tick(now)
		if adv != nil {
			adv.Tick(now)
		}
		net.Tick(now)
	}
	for now := end; now < end+dur.Drain && !net.Drained(); now++ {
		sys.Tick(now)
		net.Tick(now)
	}
	return col
}

// fig17Schemes mirrors the Figures 14-17 comparison with PARSEC ranks for
// RO_Rank.
func fig17Schemes() []Scheme {
	return []Scheme{RORR(), RORRDBAR("RA_DBAR"), RORank(PARSECRanks()), RAIR("RA_RAIR")}
}

// Fig17Adversarial reproduces Figure 17: APL slowdown of the four PARSEC
// proxies when chip-wide adversarial traffic is added, per scheme.
func Fig17Adversarial(dur Durations, seed uint64) *Fig17Result {
	res := adversarialRun(fig17Schemes(), dur, seed)
	res.Title = "Figure 17: APL slowdown under adversarial traffic (PARSEC proxies)"
	return res
}

// AblateAgeBased contrasts the oldest-first baseline (Abts & Weisser, the
// other region-oblivious technique of Section III.A) with RO_RR and RAIR
// under the adversarial flood. Aging both drains the deprioritized flood
// (avoiding buffer hogging) and imposes a global FIFO-like order — where
// the balance lands is an empirical question this ablation answers.
func AblateAgeBased(dur Durations, seed uint64) *Fig17Result {
	schemes := []Scheme{
		RORR(),
		{Name: "RO_Age", Policy: policy.NewAge},
		RAIR("RA_RAIR"),
	}
	res := adversarialRun(schemes, dur, seed)
	res.Title = "Oldest-first arbitration under the adversarial flood"
	return res
}

// AblateBatching sweeps RO_Rank's batching interval under the adversarial
// flood: fine batches drain the deprioritized flood steadily, coarse
// batches let it hog VC buffers — the balance Section III.A alludes to.
func AblateBatching(intervals []int64, dur Durations, seed uint64) *Fig17Result {
	schemes := make([]Scheme, 0, len(intervals))
	for _, iv := range intervals {
		schemes = append(schemes, Scheme{
			Name:   fmt.Sprintf("RO_Rank_B%d", iv),
			Policy: policy.NewRankFactoryInterval(PARSECRanks(), iv),
		})
	}
	res := adversarialRun(schemes, dur, seed)
	res.Title = "STC batching-interval ablation under the adversarial flood"
	return res
}

func adversarialRun(schemes []Scheme, dur Durations, seed uint64) *Fig17Result {
	res := &Fig17Result{}
	for _, p := range workload.Profiles() {
		res.Apps = append(res.Apps, p.Name)
	}
	type job struct {
		scheme Scheme
		adv    bool
	}
	var jobs []job
	for _, s := range schemes {
		jobs = append(jobs, job{s, false}, job{s, true})
	}
	cols := make([]*stats.Collector, len(jobs))
	// PARSEC runs are heavyweight; reuse the generic pool semantics by
	// running sequentially on a single CPU and concurrently otherwise.
	done := make(chan int)
	running := 0
	for i, j := range jobs {
		go func(i int, j job) {
			cols[i] = RunPARSEC(j.scheme, j.adv, dur, seed)
			done <- i
		}(i, j)
		running++
	}
	for ; running > 0; running-- {
		<-done
	}
	for si, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
		base := make([]float64, len(res.Apps))
		adv := make([]float64, len(res.Apps))
		for ai := range res.Apps {
			base[ai] = cols[2*si].App(ai).Mean()
			adv[ai] = cols[2*si+1].App(ai).Mean()
		}
		res.Base = append(res.Base, base)
		res.Adv = append(res.Adv, adv)
	}
	return res
}

// String renders a short summary line used by logs.
func (r *Fig17Result) String() string {
	out := ""
	for si, s := range r.Schemes {
		out += fmt.Sprintf("%s=%.2f ", s, r.AvgSlowdown(si))
	}
	return out
}

// PrewarmAccesses is how many address-stream accesses each core runs
// through the cache hierarchy before timing starts (functional cache
// warmup, mirroring the paper's full-system methodology). Large enough to
// fill every proxy's working set several times over.
const PrewarmAccesses = 60000
