package harness

import (
	"strings"
	"testing"
)

// testDur keeps test runs short; orderings are stable at this size.
func testDur() Durations { return Durations{Warmup: 1000, Measure: 6000, Drain: 8000} }

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"RO_RR", "RO_Rank", "RA_DBAR", "RA_RAIR", "RAIR_DBAR", "RAIR_VA", "RAIR_NativeH", "RAIR_ForeignH"} {
		s, err := SchemeByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("SchemeByName(%q) = %+v, %v", name, s, err)
		}
		if s.Policy == nil {
			t.Fatalf("%s has no policy", name)
		}
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestDurations(t *testing.T) {
	p := PaperDurations()
	if p.Warmup != 10000 || p.Measure != 100000 {
		t.Fatalf("paper durations %+v", p)
	}
	q := QuickDurations()
	if q.Measure >= p.Measure {
		t.Fatal("quick not quicker")
	}
}

func TestRunParallelPreservesOrder(t *testing.T) {
	regs, apps := UniformScenario(0.2)
	regs2, apps2 := UniformScenario(0.9)
	rcs := []RunConfig{
		{Regions: regs, Router: synthCfg(), Apps: apps, Scheme: RORR(), Dur: testDur(), Seed: 1},
		{Regions: regs2, Router: synthCfg(), Apps: apps2, Scheme: RORR(), Dur: testDur(), Seed: 1},
	}
	cols := RunParallel(rcs)
	if len(cols) != 2 {
		t.Fatal("missing collectors")
	}
	// The 90% run must be slower than the 20% run: order preserved.
	if cols[0].APL() >= cols[1].APL() {
		t.Fatalf("order not preserved: %.2f vs %.2f", cols[0].APL(), cols[1].APL())
	}
}

func TestRunDeterministicAcrossParallel(t *testing.T) {
	regs, apps := Fig9Scenario(0.5)
	rc := RunConfig{Regions: regs, Router: synthCfg(), Apps: apps, Scheme: RAIR("RA_RAIR"), Dur: testDur(), Seed: 42}
	a := Run(rc)
	b := RunParallel([]RunConfig{rc, rc})
	if a.APL() != b[0].APL() || b[0].APL() != b[1].APL() {
		t.Fatalf("nondeterministic: %v %v %v", a.APL(), b[0].APL(), b[1].APL())
	}
}

// Figure 9 shape: MSP cuts the low-intensity app's latency with little cost
// to the heavy app, more so with MSP at both VA and SA, and latency grows
// with the inter-region fraction.
func TestFig9Shape(t *testing.T) {
	res := Fig9MSP(testDur(), []float64{0, 1.0}, 1)
	rr, va, vasa := res.APL[0], res.APL[1], res.APL[2]
	// APL grows with p for every scheme.
	if rr[1][0] <= rr[0][0] || vasa[1][0] <= vasa[0][0] {
		t.Fatalf("App0 APL must grow with p: %v %v", rr, vasa)
	}
	// At p=100%, RAIR VA+SA helps App0 more than VA-only; both beat RO_RR.
	if !(vasa[1][0] < va[1][0] && va[1][0] < rr[1][0]) {
		t.Fatalf("App0 APL ordering wrong: RO_RR %.2f, VA %.2f, VA+SA %.2f",
			rr[1][0], va[1][0], vasa[1][0])
	}
	// App1 pays less than 5%.
	if vasa[1][1] > rr[1][1]*1.05 {
		t.Fatalf("App1 penalty too high: %.2f vs %.2f", vasa[1][1], rr[1][1])
	}
}

// Figure 12 shape: ForeignH wins scenario (a), NativeH wins scenario (b),
// and DPA tracks the winner in both.
func TestFig12Shape(t *testing.T) {
	a := Fig12DPA(Fig12A, testDur(), 1)
	// Schemes: RO_RR, NativeH, ForeignH, DPA.
	if !(a.AvgReduction(2) > a.AvgReduction(1)) {
		t.Fatalf("(a): ForeignH %.3f must beat NativeH %.3f", a.AvgReduction(2), a.AvgReduction(1))
	}
	if a.AvgReduction(3) < a.AvgReduction(2)-0.03 {
		t.Fatalf("(a): DPA %.3f must track ForeignH %.3f", a.AvgReduction(3), a.AvgReduction(2))
	}
	b := Fig12DPA(Fig12B, testDur(), 1)
	if !(b.AvgReduction(1) > b.AvgReduction(2)) {
		t.Fatalf("(b): NativeH %.3f must beat ForeignH %.3f", b.AvgReduction(1), b.AvgReduction(2))
	}
	if b.AvgReduction(3) < b.AvgReduction(2) {
		t.Fatalf("(b): DPA %.3f must beat the losing static mode %.3f", b.AvgReduction(3), b.AvgReduction(2))
	}
}

// Figure 14 shape: RAIR improves every low/medium-load application over
// RO_RR while the heavy apps pay only a bounded cost.
func TestFig14Shape(t *testing.T) {
	res := Fig14SixApp(testDur(), 1)
	rairIdx := len(res.Schemes) - 1
	for ai, app := range res.Apps {
		if app == 1 || app == 5 { // heavy apps: bounded cost
			if res.Reduction(rairIdx, ai) < -0.10 {
				t.Errorf("hot app %d degrades too much: %+.1f%%", app, 100*res.Reduction(rairIdx, ai))
			}
			continue
		}
		if res.Reduction(rairIdx, ai) <= 0 {
			t.Errorf("low app %d not improved: %+.1f%%", app, 100*res.Reduction(rairIdx, ai))
		}
	}
}

// Figure 17 shape: RAIR protects the applications from adversarial traffic
// better than the round-robin baseline.
func TestFig17Shape(t *testing.T) {
	res := Fig17Adversarial(testDur(), 1)
	if !(res.AvgSlowdown(3) < res.AvgSlowdown(0)) {
		t.Fatalf("RAIR slowdown %.2f must beat RO_RR %.2f", res.AvgSlowdown(3), res.AvgSlowdown(0))
	}
	for si := range res.Schemes {
		if res.AvgSlowdown(si) < 1 {
			t.Errorf("%s slowdown %.2f below 1: adversary helped?", res.Schemes[si], res.AvgSlowdown(si))
		}
	}
	if s := res.String(); !strings.Contains(s, "RA_RAIR") {
		t.Fatal("summary string incomplete")
	}
}

func TestScenarioConstruction(t *testing.T) {
	regs, apps := Fig9Scenario(0.5)
	if regs.NumApps() != 2 || len(apps) != 2 {
		t.Fatal("Fig9 scenario wrong")
	}
	if apps[0].PacketRate <= 0 || apps[1].PacketRate <= apps[0].PacketRate {
		t.Fatalf("rates wrong: %v %v", apps[0].PacketRate, apps[1].PacketRate)
	}
	for _, v := range []Fig12Variant{Fig12A, Fig12B} {
		regs, apps = Fig12Scenario(v)
		if regs.NumApps() != 4 || len(apps) != 4 {
			t.Fatal("Fig12 scenario wrong")
		}
	}
	regs, apps = Fig14Scenario("HS")
	if regs.NumApps() != 6 || len(apps) != 6 {
		t.Fatal("Fig14 scenario wrong")
	}
	ranks := SixAppRanks()
	if ranks[0] != 0 || ranks[1] < 4 || ranks[5] < 4 {
		t.Fatalf("six-app ranks wrong: %v", ranks)
	}
	regsP, streams := PARSECScenario()
	if regsP.NumApps() != 4 || len(streams) != 64 {
		t.Fatal("PARSEC scenario wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "b"}}
	tab.AddRow("x", "1.00")
	tab.AddRow("longer", "2.00")
	s := tab.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "longer") {
		t.Fatalf("table:\n%s", s)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n") || !strings.Contains(csv, "longer,2.00") {
		t.Fatalf("csv:\n%s", csv)
	}
	tab.AddRow(`quo"te`, "with,comma")
	if !strings.Contains(tab.CSV(), `"quo""te","with,comma"`) {
		t.Fatalf("csv quoting:\n%s", tab.CSV())
	}
}

func TestResultTables(t *testing.T) {
	res := Fig9MSP(Durations{Warmup: 200, Measure: 1500, Drain: 3000}, []float64{0.5}, 1)
	if s := res.Table().String(); !strings.Contains(s, "RAIR_VA+SA") {
		t.Fatalf("sweep table:\n%s", s)
	}
	fig := Fig12DPA(Fig12A, Durations{Warmup: 200, Measure: 1500, Drain: 3000}, 1)
	if s := fig.Table().String(); !strings.Contains(s, "avg reduction") {
		t.Fatalf("fig table:\n%s", s)
	}
}

func TestLatencyLoadCurveMonotone(t *testing.T) {
	pts := LatencyLoadCurve([]float64{0.2, 0.9}, testDur(), 1)
	if len(pts) != 2 {
		t.Fatal("missing points")
	}
	if pts[1].APL <= pts[0].APL {
		t.Fatalf("APL must grow with load: %v", pts)
	}
	if pts[1].Throughput <= pts[0].Throughput {
		t.Fatalf("throughput must grow below saturation: %v", pts)
	}
}

func TestAblations(t *testing.T) {
	d := AblateDelta([]float64{0, 0.2}, Durations{Warmup: 500, Measure: 2500, Drain: 4000}, 1)
	if len(d.AvgReduction) != 2 {
		t.Fatal("delta ablation size")
	}
	if s := d.Table().String(); !strings.Contains(s, "0.20") {
		t.Fatalf("delta table:\n%s", s)
	}
	v := AblateVCSplit([]int{1, 3}, Durations{Warmup: 500, Measure: 2500, Drain: 4000}, 1)
	if len(v.AvgReduction) != 2 {
		t.Fatal("vc split ablation size")
	}
	if s := v.Table().String(); !strings.Contains(s, "regional VCs") {
		t.Fatalf("vc split table:\n%s", s)
	}
}

func TestScaleStudies(t *testing.T) {
	dur := Durations{Warmup: 500, Measure: 2500, Drain: 5000}
	cores := ScaleCores(dur, 1)
	if len(cores.Points) != 4 || cores.Points[0].Nodes != 16 || cores.Points[3].Nodes != 256 {
		t.Fatalf("scale-cores points: %+v", cores.Points)
	}
	regions := ScaleRegions(dur, 1)
	if len(regions.Points) != 4 || regions.Points[3].Regions != 16 {
		t.Fatalf("scale-regions points: %+v", regions.Points)
	}
	for _, p := range regions.Points {
		if p.RORRAPL <= 0 || p.RAIRAPL <= 0 {
			t.Fatalf("empty measurement at %s", p.Label)
		}
	}
	if s := cores.Table().String(); !strings.Contains(s, "16x16") {
		t.Fatalf("table:\n%s", s)
	}
}

func TestHeatmapDriver(t *testing.T) {
	out, err := Heatmap("RO_RR", Durations{Warmup: 200, Measure: 1500, Drain: 0}, 1)
	if err != nil || !strings.Contains(out, "utilization") {
		t.Fatalf("heatmap: %v\n%s", err, out)
	}
	if _, err := Heatmap("NOPE", QuickDurations(), 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestFig17TraceReplay(t *testing.T) {
	dur := Durations{Warmup: 1000, Measure: 5000, Drain: 5000}
	res := Fig17Trace(dur, 1)
	if len(res.Schemes) != 4 || len(res.Apps) != 4 {
		t.Fatalf("shape: %v %v", res.Schemes, res.Apps)
	}
	for si := range res.Schemes {
		for ai := range res.Apps {
			if res.Base[si][ai] <= 0 || res.Adv[si][ai] <= 0 {
				t.Fatalf("empty measurement %s/%s", res.Schemes[si], res.Apps[ai])
			}
		}
		if res.AvgSlowdown(si) < 0.9 {
			t.Fatalf("%s slowdown %.2f implausible", res.Schemes[si], res.AvgSlowdown(si))
		}
	}
	if !strings.Contains(res.Table().String(), "trace-driven") {
		t.Fatal("title missing")
	}
}

func TestRecordPARSECTraceValid(t *testing.T) {
	tr := RecordPARSECTrace(3000, 1)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if err := tr.Validate(64); err != nil {
		t.Fatal(err)
	}
}

func TestCharacterizeWorkloads(t *testing.T) {
	res := CharacterizeWorkloads(30000, 1)
	if len(res.Rows) != 13 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]WorkloadRow{}
	for _, r := range res.Rows {
		if r.IssueRate <= 0 || r.MissFlux <= 0 || r.FlitDemand != r.MissFlux*6 {
			t.Fatalf("bad row %+v", r)
		}
		byName[r.Name] = r
	}
	// The paper's headline ordering must hold in the full suite too.
	if !(byName["blackscholes"].MissFlux < byName["swaptions"].MissFlux &&
		byName["swaptions"].MissFlux < byName["fluidanimate"].MissFlux &&
		byName["fluidanimate"].MissFlux < byName["raytrace"].MissFlux) {
		t.Fatal("headline intensity ordering broken")
	}
	if !strings.Contains(res.Table().String(), "canneal") {
		t.Fatal("table incomplete")
	}
}

func TestRankOracleAblation(t *testing.T) {
	res := AblateRankOracle(Durations{Warmup: 500, Measure: 3000, Drain: 5000}, 1)
	if len(res.APL) != 3 || len(res.Apps) != 6 {
		t.Fatalf("shape %dx%d", len(res.APL), len(res.Apps))
	}
	for vi := range res.APL {
		for ai := range res.Apps {
			if res.APL[vi][ai] <= 0 {
				t.Fatalf("empty APL at %d/%d", vi, ai)
			}
		}
	}
	if s := res.Table().String(); !strings.Contains(s, "RO_RankDyn") {
		t.Fatalf("table:\n%s", s)
	}
}

func TestInterferenceMatrix(t *testing.T) {
	m, err := MeasureInterference("RO_RR", Durations{Warmup: 500, Measure: 3000, Drain: 5000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Apps) != 6 || len(m.Slowdown) != 6 {
		t.Fatalf("matrix shape %dx%d", len(m.Apps), len(m.Slowdown))
	}
	for vi := range m.Apps {
		if m.Slowdown[vi][vi] != 0 {
			t.Fatal("diagonal must be empty")
		}
		for ci := range m.Apps {
			if vi != ci && (m.Slowdown[vi][ci] < 0.5 || m.Slowdown[vi][ci] > 10) {
				t.Fatalf("implausible slowdown %v at (%d,%d)", m.Slowdown[vi][ci], vi, ci)
			}
		}
	}
	if m.MaxOffDiagonal() <= 1.0 {
		t.Fatalf("no interference detected at all: max %v", m.MaxOffDiagonal())
	}
	if s := m.Table().String(); !strings.Contains(s, "victim") {
		t.Fatalf("table:\n%s", s)
	}
	if _, err := MeasureInterference("NOPE", QuickDurations(), 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
