package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"rair/internal/collective"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/region"
	"rair/internal/stats"
	"rair/internal/telemetry"
	"rair/internal/topology"
)

// collEvent is one observed collective action: a send (issue=true) or a
// delivery, attributed to the acting rank.
type collEvent struct {
	issue bool
	rank  int
	j     int // per-rank send index (sends only)
	cycle int64
}

// traceCollective runs one collective alone on a 4x4 quadrant network and
// returns the send/delivery event sequence in observation order.
func traceCollective(t *testing.T, op collective.Op, workers int, chunk int) []collEvent {
	t.Helper()
	mesh := topology.NewMesh(4, 4)
	regs := region.Quadrants(mesh)
	nodes := regs.Nodes(3)
	ranks := collective.Ranks(mesh, nodes)
	rankOf := map[int]int{}
	for r, node := range ranks {
		rankOf[node] = r
	}
	scheme := RAIR("RA_RAIR")
	cfg := synthCfg()

	var events []collEvent
	sent := make([]int, len(ranks))
	var src *collective.Source
	net := network.New(network.Params{
		Router:  cfg,
		Regions: regs,
		Alg:     scheme.Alg(mesh),
		Sel:     scheme.Sel(regs, cfg),
		Policy:  scheme.Policy,
		Workers: workers,
		OnEject: func(p *msg.Packet, now int64) {
			events = append(events, collEvent{rank: rankOf[p.Dst], cycle: now})
			src.Deliver(p, now)
		},
	})
	defer net.Close()
	src = collective.NewSource(collective.Spec{
		Op: op, App: 3, Nodes: nodes, Mesh: mesh,
		ChunkPackets: chunk, Rounds: 2, Jitter: 4, Gap: 8,
	}, 9, func(node int, p *msg.Packet, now int64) {
		r := rankOf[node]
		events = append(events, collEvent{issue: true, rank: r, j: sent[r], cycle: now})
		sent[r]++
		net.NI(node).Inject(p, now)
	})
	for now := int64(0); now < 20000 && src.Progress().Rounds < 2; now++ {
		src.Tick(now)
		net.Tick(now)
	}
	if prog := src.Progress(); prog.Rounds != 2 {
		t.Fatalf("op %v workers %d: %d rounds completed, want 2 (%+v)", op, workers, prog.Rounds, prog)
	}
	return events
}

// TestCollectiveDependencyOrder drives each collective through a real
// network at workers 1, 2 and 4 and checks, from the outside, that every
// send respects its dependency threshold — a rank has received at least
// need(j) packets strictly before the cycle it issues packet j — and that
// the whole event sequence is bit-identical across worker counts.
func TestCollectiveDependencyOrder(t *testing.T) {
	const chunk = 2
	n := 4 // quadrant of a 4x4 mesh
	need := func(op collective.Op, rank, j int) int {
		switch op {
		case collective.TreeBroadcast:
			if rank == 0 {
				return 0
			}
			return j/len(collective.TreeChildren(n, rank)) + 1
		default: // ring and shuffle: one chunk of lookahead
			return j - chunk + 1
		}
	}
	for _, op := range []collective.Op{collective.RingAllReduce, collective.TreeBroadcast, collective.AllToAll} {
		t.Run(op.String(), func(t *testing.T) {
			ref := traceCollective(t, op, 1, chunk)
			recvBefore := make(map[int]int) // rank -> deliveries seen so far
			var lastCycle int64
			for _, ev := range ref {
				if ev.cycle < lastCycle {
					t.Fatalf("events out of order: cycle %d after %d", ev.cycle, lastCycle)
				}
				lastCycle = ev.cycle
				if !ev.issue {
					recvBefore[ev.rank]++
					continue
				}
				// Deliveries at the send's own cycle happen after Tick, so
				// they must not be needed for this send; but recvBefore may
				// include same-cycle deliveries already recorded. Guard by
				// only counting deliveries from strictly earlier cycles:
				// same-cycle deliveries are ejections of net.Tick(now),
				// which runs after src.Tick(now) issued this send.
				if got := recvBefore[ev.rank] - sameCycleDeliveries(ref, ev); got < need(op, ev.rank, ev.j) {
					t.Fatalf("rank %d sent packet %d at cycle %d with only %d deliveries, need %d",
						ev.rank, ev.j, ev.cycle, got, need(op, ev.rank, ev.j))
				}
			}
			wholeRound := 0
			for _, ev := range ref {
				if !ev.issue {
					wholeRound++
				}
			}
			if wholeRound == 0 {
				t.Fatal("no deliveries observed")
			}
			for _, workers := range []int{2, 4} {
				got := traceCollective(t, op, workers, chunk)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("op %v: event sequence at workers=%d diverges from serial", op, workers)
				}
			}
		})
	}
}

// sameCycleDeliveries counts deliveries to ev.rank recorded at ev.cycle
// before ev appears in the trace — impossible by construction (sends happen
// in src.Tick, deliveries in the later net.Tick), so a nonzero count means
// the coordinator ordering contract broke.
func sameCycleDeliveries(events []collEvent, ev collEvent) int {
	n := 0
	for _, e := range events {
		if e == ev {
			break
		}
		if !e.issue && e.rank == ev.rank && e.cycle == ev.cycle {
			n++
		}
	}
	return n
}

// collectorSurface summarizes the comparable surface of a victim collector.
func collectorSurface(c *stats.Collector) string {
	s := fmt.Sprintf("pkts=%d apl=%v net=%v p99=%v", c.Packets(), c.APL(), c.Network().Mean(), c.Total().Percentile(99))
	for _, app := range c.Apps() {
		s += fmt.Sprintf(" app%d=%v", app, c.App(app).Mean())
	}
	return s
}

// TestCollectiveRunDeterminism: a co-run with a collective must produce
// bit-identical victim statistics and collective progress across tick-engine
// worker counts and lockstep batch widths — the determinism-matrix entry for
// the closed-loop source.
func TestCollectiveRunDeterminism(t *testing.T) {
	regs, apps, spec := CollectiveScenario(collective.RingAllReduce)
	var refProg collective.Progress
	mkRC := func(workers int, prog *collective.Progress) RunConfig {
		return RunConfig{
			Regions: regs, Router: synthCfg(), Apps: apps,
			Scheme: RAIR("RA_RAIR"), Dur: testDur(), Seed: 7, Workers: workers,
			Collective:     &spec,
			CollectiveDone: func(p collective.Progress) { *prog = p },
		}
	}
	ref := Run(mkRC(0, &refProg))
	if ref.Packets() == 0 {
		t.Fatal("reference run delivered no victim packets")
	}
	if refProg.Rounds == 0 || refProg.Delivered() == 0 {
		t.Fatalf("reference collective made no progress: %+v", refProg)
	}
	want := collectorSurface(ref)

	for _, workers := range []int{2, 4} {
		var prog collective.Progress
		got := Run(mkRC(workers, &prog))
		if s := collectorSurface(got); s != want {
			t.Fatalf("workers=%d: victim stats diverge\n got %s\nwant %s", workers, s, want)
		}
		if !reflect.DeepEqual(prog, refProg) {
			t.Fatalf("workers=%d: collective progress diverges\n got %+v\nwant %+v", workers, prog, refProg)
		}
	}
	for _, width := range []int{1, 4} {
		progs := make([]collective.Progress, 3)
		var rcs []RunConfig
		for i := range progs {
			rcs = append(rcs, mkRC(0, &progs[i]))
		}
		cols := RunBatch(rcs, width)
		for i, c := range cols {
			if s := collectorSurface(c); s != want {
				t.Fatalf("width=%d sim %d: victim stats diverge\n got %s\nwant %s", width, i, s, want)
			}
			if !reflect.DeepEqual(progs[i], refProg) {
				t.Fatalf("width=%d sim %d: collective progress diverges", width, i)
			}
		}
	}
}

// TestCollectiveAttributionConservation: with a collective as the foreign
// aggressor and attribution telemetry on, the decomposition rows must
// balance exactly (inject + zero-load + cause buckets == total), the report
// must be byte-identical across worker counts, and the collective's own
// per-phase blame decomposition must be populated.
func TestCollectiveAttributionConservation(t *testing.T) {
	regs, apps, spec := CollectiveScenario(collective.RingAllReduce)
	run := func(workers int) []byte {
		tel := telemetry.NewCollector(telemetry.Config{Window: 128, Attribution: true})
		Run(RunConfig{
			Regions: regs, Router: synthCfg(), Apps: apps,
			Scheme: RORR(), Dur: testDur(), Seed: 13, Workers: workers,
			Telemetry: tel, Collective: &spec,
		})
		rep := tel.Report()
		if rep.Attribution == nil {
			t.Fatal("no attribution report")
		}
		if err := rep.Attribution.Conservation(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Collective == nil {
			t.Fatal("no collective report attached")
		}
		sawApp := false
		for _, row := range rep.Attribution.Rows {
			if row.App == spec.App {
				sawApp = true
			}
		}
		if !sawApp {
			t.Fatal("attribution has no row for the collective's app")
		}
		var blame int64
		for _, ph := range rep.Collective.Phases {
			if ph.Delivered == 0 {
				t.Fatalf("phase %s delivered nothing", ph.Phase)
			}
			blame += ph.NativeCycles + ph.ForeignCycles + ph.EscapeCycles + ph.FaultCycles
		}
		if blame == 0 {
			t.Fatal("collective phases carry no blame cycles")
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(0)
	for _, workers := range []int{2, 4} {
		if got := run(workers); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: telemetry report differs from serial", workers)
		}
	}
}
