package harness

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "t", Header: []string{"scheme", "APL"}}
	t.AddRow("RO_RR", "47.78")
	t.AddRow("RA_RAIR", "42.98")
	return t
}

func TestTableJSONStable(t *testing.T) {
	a, err := sampleTable().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleTable().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equal tables serialized differently:\n%s\n%s", a, b)
	}
	want := `{"title":"t","header":["scheme","APL"],"rows":[["RO_RR","47.78"],["RA_RAIR","42.98"]]}` + "\n"
	if a != want {
		t.Errorf("JSON = %q, want %q", a, want)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow(`x,y`, `he said "hi"`)
	csv := tbl.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"he said ""hi"""`) {
		t.Errorf("CSV quoting broken: %q", csv)
	}
}
