package harness

import (
	"fmt"

	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/stats"
	"rair/internal/traffic"
)

// synthCfg is the router configuration for the synthetic-traffic
// experiments: one message class, Table 1 VC parameters.
func synthCfg() router.Config { return router.DefaultConfig(1) }

// SweepResult holds APL per scheme per sweep point per application: the
// common shape of Figures 9 and 10.
type SweepResult struct {
	Title   string
	XLabel  string
	Xs      []float64
	Schemes []string
	// APL[scheme][xIdx][app].
	APL [][][]float64
}

// Table renders the sweep as one row per (scheme, x).
func (r *SweepResult) Table() *Table {
	t := &Table{Title: r.Title, Header: []string{"scheme", r.XLabel, "APL App0", "APL App1"}}
	for si, s := range r.Schemes {
		for xi, x := range r.Xs {
			row := []string{s, fmt.Sprintf("%.0f%%", 100*x)}
			for _, apl := range r.APL[si][xi] {
				row = append(row, f2(apl))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// runSweep executes scheme × p-point simulations of a two-app scenario in
// parallel.
func runSweep(title string, schemes []Scheme, ps []float64, dur Durations, seed uint64,
	scenario func(p float64) (*region.Map, []traffic.AppTraffic), apps int) *SweepResult {
	var rcs []RunConfig
	for _, s := range schemes {
		for _, p := range ps {
			regs, tr := scenario(p)
			rcs = append(rcs, RunConfig{
				Regions: regs, Router: synthCfg(), Apps: tr,
				Scheme: s, Dur: dur, Seed: seed,
			})
		}
	}
	cols := RunParallel(rcs)
	res := &SweepResult{Title: title, XLabel: "p", Xs: ps}
	i := 0
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
		perX := make([][]float64, len(ps))
		for xi := range ps {
			perApp := make([]float64, apps)
			for a := 0; a < apps; a++ {
				perApp[a] = cols[i].App(a).Mean()
			}
			perX[xi] = perApp
			i++
		}
		res.APL = append(res.APL, perX)
	}
	return res
}

// Fig9MSP reproduces Figure 9: the impact of multi-stage prioritization in
// the two-application scenario, sweeping the inter-region fraction p.
// Schemes: RO_RR, RAIR with MSP at VA only, RAIR with MSP at VA+SA.
func Fig9MSP(dur Durations, ps []float64, seed uint64) *SweepResult {
	schemes := []Scheme{RORR(), RAIRVA(), RAIR("RAIR_VA+SA")}
	return runSweep("Figure 9: impact of MSP (APL vs inter-region fraction p)",
		schemes, ps, dur, seed, Fig9Scenario, 2)
}

// Fig10Routing reproduces Figure 10: the impact of the routing algorithm.
// Schemes: RO_RR and RAIR, each with local adaptive selection and DBAR.
func Fig10Routing(dur Durations, ps []float64, seed uint64) *SweepResult {
	schemes := []Scheme{
		RORR(),                 // RO_RR_Local
		RAIR("RAIR_Local"),     // RAIR + local selection
		RORRDBAR("RO_RR_DBAR"), // DBAR routing alone
		RAIRDBAR("RAIR_DBAR"),  // RAIR + DBAR
	}
	return runSweep("Figure 10: impact of routing algorithm (APL vs p)",
		schemes, ps, dur, seed, Fig9Scenario, 2)
}

// FigResult holds APL per scheme per application plus reductions versus the
// first scheme (the RO_RR baseline): the shape of Figures 12 and 14.
type FigResult struct {
	Title   string
	Schemes []string
	Apps    []int
	// APL[scheme][app].
	APL [][]float64
}

// Reduction returns the APL reduction of scheme si for app ai versus the
// baseline scheme 0.
func (r *FigResult) Reduction(si, ai int) float64 {
	return stats.Reduction(r.APL[0][ai], r.APL[si][ai])
}

// AvgReduction returns the mean per-app APL reduction of scheme si versus
// the baseline.
func (r *FigResult) AvgReduction(si int) float64 {
	sum := 0.0
	for ai := range r.Apps {
		sum += r.Reduction(si, ai)
	}
	return sum / float64(len(r.Apps))
}

// Table renders APLs and reductions versus the baseline.
func (r *FigResult) Table() *Table {
	t := &Table{Title: r.Title}
	t.Header = []string{"scheme"}
	for _, a := range r.Apps {
		t.Header = append(t.Header, fmt.Sprintf("App%d APL", a))
	}
	t.Header = append(t.Header, "avg reduction vs "+r.Schemes[0])
	for si, s := range r.Schemes {
		row := []string{s}
		for ai := range r.Apps {
			row = append(row, f2(r.APL[si][ai]))
		}
		if si == 0 {
			row = append(row, "-")
		} else {
			row = append(row, pct(r.AvgReduction(si)))
		}
		t.AddRow(row...)
	}
	return t
}

// runFig executes one scenario under several schemes in parallel.
func runFig(title string, regs *region.Map, apps []traffic.AppTraffic, cfg router.Config,
	schemes []Scheme, dur Durations, seed uint64) *FigResult {
	rcs := make([]RunConfig, len(schemes))
	for i, s := range schemes {
		rcs[i] = RunConfig{Regions: regs, Router: cfg, Apps: apps, Scheme: s, Dur: dur, Seed: seed}
	}
	cols := RunParallel(rcs)
	res := figFromCols(regs, apps, schemes, cols)
	res.Title = title
	return res
}

// figFromCols assembles a FigResult from already-run collectors (one per
// scheme, in scheme order).
func figFromCols(regs *region.Map, apps []traffic.AppTraffic, schemes []Scheme, cols []*stats.Collector) *FigResult {
	res := &FigResult{}
	for a := range apps {
		res.Apps = append(res.Apps, apps[a].App)
	}
	for i, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
		perApp := make([]float64, len(res.Apps))
		for ai, a := range res.Apps {
			perApp[ai] = cols[i].App(a).Mean()
		}
		res.APL = append(res.APL, perApp)
	}
	return res
}

// Fig12DPA reproduces Figure 12: the need for dynamic priority adaptation,
// on both load-heterogeneity scenarios of Figure 11.
func Fig12DPA(v Fig12Variant, dur Durations, seed uint64) *FigResult {
	regs, apps := Fig12Scenario(v)
	name := "(a) low apps send into App3"
	if v == Fig12B {
		name = "(b) App3 sends out"
	}
	schemes := []Scheme{RORR(), RAIRNativeH(), RAIRForeignH(), RAIR("RAIR_DPA")}
	return runFig("Figure 12"+name, regs, apps, synthCfg(), schemes, dur, seed)
}

// fig14Schemes are the four techniques compared in Figures 14-17.
func fig14Schemes() []Scheme {
	return []Scheme{RORR(), RORRDBAR("RA_DBAR"), RORank(SixAppRanks()), RAIR("RA_RAIR")}
}

// Fig14SixApp reproduces Figure 14: the six-application generic RNoC with
// uniform-random global traffic.
func Fig14SixApp(dur Durations, seed uint64) *FigResult {
	regs, apps := Fig14Scenario("UR")
	return runFig("Figure 14: six-application scenario (UR global traffic)",
		regs, apps, synthCfg(), fig14Schemes(), dur, seed)
}

// PatternResult holds the average APL reduction versus RO_RR per global
// traffic pattern (Figure 15).
type PatternResult struct {
	Patterns []string
	Schemes  []string // excluding the RO_RR baseline
	// AvgReduction[pattern][scheme].
	AvgReduction [][]float64
}

// Table renders the pattern sweep.
func (r *PatternResult) Table() *Table {
	t := &Table{
		Title:  "Figure 15: average APL reduction vs RO_RR per global traffic pattern",
		Header: append([]string{"pattern"}, r.Schemes...),
	}
	for pi, p := range r.Patterns {
		row := []string{p}
		for si := range r.Schemes {
			row = append(row, pct(r.AvgReduction[pi][si]))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig15Patterns reproduces Figure 15: the six-application scenario across
// the four synthetic global-traffic patterns.
func Fig15Patterns(dur Durations, seed uint64) *PatternResult {
	patterns := []string{"UR", "TP", "BC", "HS"}
	res := &PatternResult{Patterns: patterns}
	for _, s := range fig14Schemes()[1:] {
		res.Schemes = append(res.Schemes, s.Name)
	}
	for _, p := range patterns {
		regs, apps := Fig14Scenario(p)
		fig := runFig("", regs, apps, synthCfg(), fig14Schemes(), dur, seed)
		perScheme := make([]float64, 0, len(res.Schemes))
		for si := 1; si < len(fig.Schemes); si++ {
			perScheme = append(perScheme, fig.AvgReduction(si))
		}
		res.AvgReduction = append(res.AvgReduction, perScheme)
	}
	return res
}

// DeltaResult is the Section IV.C hysteresis ablation: average APL
// reduction versus RO_RR as a function of Δ.
type DeltaResult struct {
	Deltas       []float64
	AvgReduction []float64
}

// Table renders the Δ sweep.
func (r *DeltaResult) Table() *Table {
	t := &Table{
		Title:  "DPA hysteresis ablation: avg APL reduction vs RO_RR per Δ",
		Header: []string{"delta", "avg reduction"},
	}
	for i, d := range r.Deltas {
		t.AddRow(fmt.Sprintf("%.2f", d), pct(r.AvgReduction[i]))
	}
	return t
}

// AblateDelta sweeps the DPA hysteresis width on the six-application
// scenario; the paper observes Δ between 0.1 and 0.3 works best, peaking
// around 0.2.
func AblateDelta(deltas []float64, dur Durations, seed uint64) *DeltaResult {
	regs, apps := Fig14Scenario("UR")
	schemes := []Scheme{RORR()}
	for _, d := range deltas {
		schemes = append(schemes, RAIRDelta(d))
	}
	fig := runFig("", regs, apps, synthCfg(), schemes, dur, seed)
	res := &DeltaResult{Deltas: deltas}
	for si := 1; si < len(fig.Schemes); si++ {
		res.AvgReduction = append(res.AvgReduction, fig.AvgReduction(si))
	}
	return res
}

// VCSplitResult is the Section VI ablation over the regional/global VC
// split.
type VCSplitResult struct {
	GlobalVCs    []int
	AvgReduction []float64
}

// Table renders the VC split ablation.
func (r *VCSplitResult) Table() *Table {
	t := &Table{
		Title:  "VC regionalization split ablation (of 4 adaptive VCs)",
		Header: []string{"global VCs", "regional VCs", "avg reduction vs RO_RR"},
	}
	for i, g := range r.GlobalVCs {
		t.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%d", 4-g), pct(r.AvgReduction[i]))
	}
	return t
}

// AblateVCSplit varies how many of the four adaptive VCs are tagged global
// on the six-application scenario. The paper argues a roughly even split
// supports generic traffic best.
func AblateVCSplit(splits []int, dur Durations, seed uint64) *VCSplitResult {
	regs, apps := Fig14Scenario("UR")
	var rcs []RunConfig
	base := RunConfig{Regions: regs, Router: synthCfg(), Apps: apps, Scheme: RORR(), Dur: dur, Seed: seed}
	rcs = append(rcs, base)
	for _, g := range splits {
		cfg := synthCfg()
		cfg.GlobalVCs = g
		rcs = append(rcs, RunConfig{
			Regions: regs, Router: cfg, Apps: apps,
			Scheme: RAIRVCSplit(fmt.Sprintf("RAIR_G%d", g)), Dur: dur, Seed: seed,
		})
	}
	cols := RunParallel(rcs)
	avg := func(c *stats.Collector) float64 {
		sum := 0.0
		for a := range apps {
			sum += stats.Reduction(cols[0].App(apps[a].App).Mean(), c.App(apps[a].App).Mean())
		}
		return sum / float64(len(apps))
	}
	res := &VCSplitResult{GlobalVCs: splits}
	for i := range splits {
		res.AvgReduction = append(res.AvgReduction, avg(cols[i+1]))
	}
	return res
}

// Heatmap runs the six-application scenario under a scheme and renders the
// per-router link-utilization heatmap — a visual check that congestion
// concentrates where the scenario intends (the heavy regions and the MC
// corners).
func Heatmap(schemeName string, dur Durations, seed uint64) (string, error) {
	s, err := SchemeByName(schemeName)
	if err != nil {
		return "", err
	}
	regs, apps := Fig14Scenario("UR")
	col := stats.NewCollector(dur.Warmup, dur.Warmup+dur.Measure)
	net := network.New(network.Params{
		Router:  synthCfg(),
		Regions: regs,
		Alg:     s.Alg(regs.Mesh()),
		Sel:     s.Sel(regs, synthCfg()),
		Policy:  s.Policy,
		OnEject: col.OnEject,
	})
	gen := traffic.NewGenerator(apps, seed, func(node int, p *msg.Packet, now int64) {
		net.NI(node).Inject(p, now)
	})
	end := dur.Warmup + dur.Measure
	gen.Until = end
	for now := int64(0); now < end; now++ {
		gen.Tick(now)
		net.Tick(now)
	}
	return fmt.Sprintf("%s under %s (APL %.2f)\n%s",
		net.UtilizationHeatmap(end), s.Name, col.APL(),
		"regions: 3x2 grid; apps 1 (top middle) and 5 (bottom right) heavy; MCs at corners\n"), nil
}

// CurvePoint is one latency-load measurement.
type CurvePoint struct {
	Frac       float64 // fraction of saturation
	APL        float64
	Throughput float64 // flits/node/cycle
}

// LatencyLoadCurve measures the latency-load curve of chip-wide uniform
// random traffic under RO_RR (the supporting saturation characterization).
func LatencyLoadCurve(fracs []float64, dur Durations, seed uint64) []CurvePoint {
	var rcs []RunConfig
	for _, f := range fracs {
		regs, apps := UniformScenario(f)
		rcs = append(rcs, RunConfig{Regions: regs, Router: synthCfg(), Apps: apps,
			Scheme: RORR(), Dur: dur, Seed: seed})
	}
	cols := RunParallel(rcs)
	out := make([]CurvePoint, len(fracs))
	for i, f := range fracs {
		out[i] = CurvePoint{Frac: f, APL: cols[i].APL(), Throughput: cols[i].FlitThroughput(64)}
	}
	return out
}
