package harness

import (
	"fmt"
	"testing"

	"rair/internal/invariant"
	"rair/internal/region"
	"rair/internal/routing"
	"rair/internal/stats"
	"rair/internal/traffic"
)

// TestSchemeCongestionGating: schemes on DBAR selection must keep the
// network's congestion propagation enabled, while local-selection schemes
// let the network skip it entirely.
func TestSchemeCongestionGating(t *testing.T) {
	regs, _ := Fig9Scenario(0.5)
	for _, s := range []Scheme{RORRDBAR("RA_DBAR"), RAIRDBAR("RAIR_DBAR")} {
		if !routing.ConsumesCongestion(s.Sel(regs, synthCfg())) {
			t.Errorf("%s uses DBAR selection but would not propagate congestion", s.Name)
		}
	}
	for _, s := range []Scheme{RORR(), RAIR("RA_RAIR")} {
		if routing.ConsumesCongestion(s.Sel(regs, synthCfg())) {
			t.Errorf("%s uses local selection but still pays for congestion propagation", s.Name)
		}
	}
}

// TestShardedRunDeterminism: for the same seed, a simulation advanced by the
// sharded tick engine must produce statistics identical to the serial engine
// — across scheme families (round-robin baseline, RAIR core, DBAR selection)
// and region layouts. Identity is checked on the full collector surface:
// packet count, average latency, per-app means and tail percentiles.
func TestShardedRunDeterminism(t *testing.T) {
	scenarios := []struct {
		name string
		mk   func() (*region.Map, []traffic.AppTraffic)
	}{
		{"fig9", func() (*region.Map, []traffic.AppTraffic) { return Fig9Scenario(0.5) }},
		{"fig14", func() (*region.Map, []traffic.AppTraffic) { return Fig14Scenario("UR") }},
	}
	schemes := []Scheme{RORR(), RAIR("RA_RAIR"), RAIRDBAR("RAIR_DBAR")}
	for _, sc := range scenarios {
		for _, scheme := range schemes {
			t.Run(sc.name+"/"+scheme.Name, func(t *testing.T) {
				regs, apps := sc.mk()
				// The panic-mode checker audits the datapath's bitmasks
				// against a slow reference scan at every barrier, so a
				// mask desync in any scheme/engine combination fails
				// loudly rather than silently skewing results.
				rc := RunConfig{Regions: regs, Router: synthCfg(), Apps: apps,
					Scheme: scheme, Dur: testDur(), Seed: 7,
					Check: &invariant.Config{Every: 64}}
				serial := Run(rc)
				rc.Workers = 4
				sharded := Run(rc)
				if serial.Packets() == 0 {
					t.Fatal("serial run delivered nothing")
				}
				if serial.Packets() != sharded.Packets() {
					t.Fatalf("packets: serial %d, sharded %d", serial.Packets(), sharded.Packets())
				}
				if serial.APL() != sharded.APL() {
					t.Fatalf("APL: serial %v, sharded %v", serial.APL(), sharded.APL())
				}
				if serial.Network().Mean() != sharded.Network().Mean() {
					t.Fatalf("network latency: serial %v, sharded %v",
						serial.Network().Mean(), sharded.Network().Mean())
				}
				if serial.Total().Percentile(99) != sharded.Total().Percentile(99) {
					t.Fatalf("p99: serial %v, sharded %v",
						serial.Total().Percentile(99), sharded.Total().Percentile(99))
				}
				for _, app := range serial.Apps() {
					if serial.App(app).Mean() != sharded.App(app).Mean() {
						t.Fatalf("app %d mean: serial %v, sharded %v",
							app, serial.App(app).Mean(), sharded.App(app).Mean())
					}
				}
			})
		}
	}
}

// TestBatchRunDeterminism: lockstep batching is a scheduling change only.
// For every worker count, a seed axis run at batch width 1, at width 4, and
// through plain Run must agree on the full collector surface — with the
// panic-mode invariant checker (mask shadows, quiescence audit, conservation)
// live inside the batched runs, so a batch-only datapath desync fails loudly.
func TestBatchRunDeterminism(t *testing.T) {
	regs, apps := Fig9Scenario(0.5)
	for _, workers := range []int{0, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var rcs []RunConfig
			for seed := uint64(1); seed <= 3; seed++ {
				rcs = append(rcs, RunConfig{Regions: regs, Router: synthCfg(), Apps: apps,
					Scheme: RAIR("RA_RAIR"), Dur: testDur(), Seed: seed, Workers: workers,
					Check: &invariant.Config{Every: 64}})
			}
			w1 := RunBatch(rcs, 1)
			w4 := RunBatch(rcs, 4)
			for i := range rcs {
				ref := Run(rcs[i])
				if ref.Packets() == 0 {
					t.Fatalf("seed %d delivered nothing", rcs[i].Seed)
				}
				for wi, got := range []*stats.Collector{w1[i], w4[i]} {
					width := []int{1, 4}[wi]
					if got.Packets() != ref.Packets() {
						t.Fatalf("seed %d width %d: packets %d, want %d",
							rcs[i].Seed, width, got.Packets(), ref.Packets())
					}
					if got.APL() != ref.APL() {
						t.Fatalf("seed %d width %d: APL %v, want %v",
							rcs[i].Seed, width, got.APL(), ref.APL())
					}
					if got.Network().Mean() != ref.Network().Mean() {
						t.Fatalf("seed %d width %d: network mean %v, want %v",
							rcs[i].Seed, width, got.Network().Mean(), ref.Network().Mean())
					}
					if got.Total().Percentile(99) != ref.Total().Percentile(99) {
						t.Fatalf("seed %d width %d: p99 %v, want %v",
							rcs[i].Seed, width, got.Total().Percentile(99), ref.Total().Percentile(99))
					}
					for _, app := range ref.Apps() {
						if got.App(app).Mean() != ref.App(app).Mean() {
							t.Fatalf("seed %d width %d: app %d mean %v, want %v",
								rcs[i].Seed, width, app, got.App(app).Mean(), ref.App(app).Mean())
						}
					}
				}
			}
		})
	}
}
