package harness

import (
	"fmt"

	"rair/internal/stats"
	"rair/internal/traffic"
)

// InterferenceMatrix quantifies pairwise interference in the
// six-application scenario by leave-one-out runs: entry (victim, culprit)
// is the victim's APL slowdown attributable to the culprit's presence
// (APL with everyone ÷ APL with the culprit removed). The diagonal is
// empty. This is the quantity interference-reduction exists to manage;
// comparing the matrix under RO_RR and RA_RAIR shows where RAIR removes
// coupling.
type InterferenceMatrix struct {
	Scheme string
	Apps   []int
	// Slowdown[victim][culprit]; 0 on the diagonal.
	Slowdown [][]float64
}

// Table renders the matrix.
func (m *InterferenceMatrix) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Pairwise interference under %s (victim rows, culprit columns; APL slowdown)", m.Scheme),
		Header: []string{"victim \\ culprit"},
	}
	for _, a := range m.Apps {
		t.Header = append(t.Header, fmt.Sprintf("app%d", a))
	}
	for vi, v := range m.Apps {
		row := []string{fmt.Sprintf("app%d", v)}
		for ci := range m.Apps {
			if vi == ci {
				row = append(row, "-")
				continue
			}
			row = append(row, f2(m.Slowdown[vi][ci]))
		}
		t.AddRow(row...)
	}
	return t
}

// MaxOffDiagonal reports the strongest pairwise coupling.
func (m *InterferenceMatrix) MaxOffDiagonal() float64 {
	max := 0.0
	for vi := range m.Apps {
		for ci := range m.Apps {
			if vi != ci && m.Slowdown[vi][ci] > max {
				max = m.Slowdown[vi][ci]
			}
		}
	}
	return max
}

// MeasureInterference builds the leave-one-out interference matrix of the
// six-application scenario under the named scheme.
func MeasureInterference(schemeName string, dur Durations, seed uint64) (*InterferenceMatrix, error) {
	s, err := SchemeByName(schemeName)
	if err != nil {
		return nil, err
	}
	regs, apps := Fig14Scenario("UR")
	n := len(apps)

	// Full run plus one run per removed culprit, all in parallel.
	rcs := make([]RunConfig, 0, n+1)
	rcs = append(rcs, RunConfig{Regions: regs, Router: synthCfg(), Apps: apps, Scheme: s, Dur: dur, Seed: seed})
	for culprit := 0; culprit < n; culprit++ {
		reduced := make([]traffic.AppTraffic, 0, n-1)
		for i, a := range apps {
			if i != culprit {
				reduced = append(reduced, a)
			}
		}
		rcs = append(rcs, RunConfig{Regions: regs, Router: synthCfg(), Apps: reduced, Scheme: s, Dur: dur, Seed: seed})
	}
	cols := RunParallel(rcs)

	m := &InterferenceMatrix{Scheme: s.Name}
	for i := range apps {
		m.Apps = append(m.Apps, apps[i].App)
	}
	full := cols[0]
	m.Slowdown = make([][]float64, n)
	for vi := range m.Apps {
		m.Slowdown[vi] = make([]float64, n)
		for ci := range m.Apps {
			if vi == ci {
				continue
			}
			without := cols[ci+1]
			m.Slowdown[vi][ci] = stats.Slowdown(without.App(m.Apps[vi]).Mean(), full.App(m.Apps[vi]).Mean())
		}
	}
	return m, nil
}
