package harness

import (
	"fmt"

	"rair/internal/region"
	"rair/internal/topology"
	"rair/internal/traffic"
)

// ScalePoint is one measurement of the scalability study.
type ScalePoint struct {
	Label        string
	Nodes        int
	Regions      int
	RORRAPL      float64
	RAIRAPL      float64
	AvgReduction float64 // mean per-app APL reduction of RAIR vs RO_RR
}

// ScaleResult collects the Section VI scalability study.
type ScaleResult struct {
	Title  string
	Points []ScalePoint
}

// Table renders the study.
func (r *ScaleResult) Table() *Table {
	t := &Table{Title: r.Title, Header: []string{"config", "nodes", "regions", "RO_RR APL", "RA_RAIR APL", "avg reduction"}}
	for _, p := range r.Points {
		t.AddRow(p.Label, fmt.Sprintf("%d", p.Nodes), fmt.Sprintf("%d", p.Regions),
			f2(p.RORRAPL), f2(p.RAIRAPL), pct(p.AvgReduction))
	}
	return t
}

// gridScenario builds a cols×rows region grid on the mesh in the shape of
// the Figure 11(a) heterogeneity scenario, which generalizes to any region
// count: region 0 runs a heavy intra-region application (90% of
// saturation), every other region a light one (20%) that sends 30% of its
// traffic into region 0 — the inter-region criticality RAIR's DPA exists to
// protect.
func gridScenario(mesh *topology.Mesh, cols, rows int) (*region.Map, []traffic.AppTraffic) {
	regs := region.Grid(mesh, cols, rows)
	n := regs.NumApps()
	apps := make([]traffic.AppTraffic, n)
	for a := 0; a < n; a++ {
		nodes := regs.Nodes(a)
		var app traffic.AppTraffic
		if a == 0 {
			app = traffic.AppTraffic{
				App: a, Nodes: nodes,
				Components: []traffic.Component{traffic.IntraUR(nodes)},
			}
			// 0.80 rather than the scenario-default 0.90: the heavy
			// region must stay below its knee at every mesh size, or
			// the comparison measures saturation behavior instead of
			// interference reduction (larger regions have longer
			// intra-region paths and hit the knee sooner).
			app.PacketRate = rate(mesh, app, 0.80)
		} else {
			app = traffic.AppTraffic{
				App: a, Nodes: nodes,
				Components: []traffic.Component{
					{Weight: 0.7, Draw: traffic.IntraUR(nodes).Draw},
					{Weight: 0.3, Draw: traffic.DirectedTo(regs.Nodes(0)).Draw},
				},
			}
			// Normalize the aggregate influx into region 0 across
			// region counts so every point sits at a comparable
			// operating point (3 light regions' worth).
			frac := 0.20
			if n-1 > 3 {
				frac *= 3 / float64(n-1)
			}
			app.PacketRate = rate(mesh, app, frac)
		}
		apps[a] = app
	}
	return regs, apps
}

// ScaleCores studies Section VI's first scalability dimension: mesh sizes
// from 4×4 to 16×16 with four quadrant regions. RAIR keeps per-router state
// constant, so its benefit should persist as the chip grows.
func ScaleCores(dur Durations, seed uint64) *ScaleResult {
	res := &ScaleResult{Title: "Scalability: mesh size (4 quadrant regions)"}
	for _, k := range []int{4, 8, 12, 16} {
		mesh := topology.NewMesh(k, k)
		regs, apps := gridScenario(mesh, 2, 2)
		res.Points = append(res.Points, scalePoint(fmt.Sprintf("%dx%d", k, k), regs, apps, dur, seed))
	}
	return res
}

// ScaleRegions studies the second dimension: region counts from 2 to 16 on
// the 8×8 mesh. Each router tracks only two flows (native/foreign), so the
// region count should not erode the benefit.
func ScaleRegions(dur Durations, seed uint64) *ScaleResult {
	res := &ScaleResult{Title: "Scalability: region count (8x8 mesh)"}
	for _, g := range [][2]int{{2, 1}, {2, 2}, {4, 2}, {4, 4}} {
		mesh := Mesh8()
		regs, apps := gridScenario(mesh, g[0], g[1])
		label := fmt.Sprintf("%d regions", g[0]*g[1])
		res.Points = append(res.Points, scalePoint(label, regs, apps, dur, seed))
	}
	return res
}

func scalePoint(label string, regs *region.Map, apps []traffic.AppTraffic, dur Durations, seed uint64) ScalePoint {
	return scalePointW(label, regs, apps, dur, seed, 0)
}

// scalePointW is scalePoint with an explicit tick-engine worker count per
// run (0 = serial); big-mesh points shard the engine instead of relying on
// cross-run parallelism.
func scalePointW(label string, regs *region.Map, apps []traffic.AppTraffic, dur Durations, seed uint64, workers int) ScalePoint {
	schemes := []Scheme{RORR(), RAIR("RA_RAIR")}
	rcs := make([]RunConfig, len(schemes))
	for i, s := range schemes {
		rcs[i] = RunConfig{Regions: regs, Router: synthCfg(), Apps: apps,
			Scheme: s, Dur: dur, Seed: seed, Workers: workers}
	}
	cols := RunParallel(rcs)
	fig := figFromCols(regs, apps, schemes, cols)
	p := ScalePoint{
		Label:        label,
		Nodes:        regs.Mesh().N(),
		Regions:      regs.NumApps(),
		AvgReduction: fig.AvgReduction(1),
	}
	for ai := range fig.Apps {
		p.RORRAPL += fig.APL[0][ai]
		p.RAIRAPL += fig.APL[1][ai]
	}
	p.RORRAPL /= float64(len(fig.Apps))
	p.RAIRAPL /= float64(len(fig.Apps))
	return p
}
