package harness

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a simple aligned text table with CSV export, used for every
// figure/table reproduction report.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (fields quoted if
// needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// JSON renders the table as a stable structured document: fixed field
// order, no timestamps or host state, so equal tables serialize to equal
// bytes — the property result stores and golden comparisons rely on.
func (t *Table) JSON() (string, error) {
	doc := struct {
		Title  string     `json:"title,omitempty"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.Title, t.Header, t.Rows}
	buf, err := json.Marshal(&doc)
	if err != nil {
		return "", err
	}
	return string(buf) + "\n", nil
}

// f2 formats a float with two decimals; pct as a signed percentage.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", 100*v) }
