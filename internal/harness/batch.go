package harness

import (
	"rair/internal/collective"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/sim"
	"rair/internal/stats"
	"rair/internal/traffic"
)

// DefaultBatchWidth is how many simulations RunBatch keeps resident when the
// caller doesn't choose. Note that widths above 1 trade cache locality for
// residency: a full 64-node network's state slabs exceed L2, so interleaving
// W such networks per tick measurably slows each of them (see RunParallel's
// width-1 delegation). Width > 1 pays off for small meshes or when the
// caller wants the whole replication set resident for other reasons.
const DefaultBatchWidth = 4

// batchSim is one live replication of a lockstep batch: a fully built
// simulation plus the remainder of its two-phase schedule (the fixed-length
// warmup+measure run, then the bounded drain).
type batchSim struct {
	idx   int // position in the caller's rcs slice
	rc    RunConfig
	eng   *sim.Engine
	net   *network.Network
	col   *stats.Collector
	src   *collective.Source // nil without a co-running collective
	run   int64              // fixed-phase cycles left
	drain int64              // drain-phase cycle budget left
}

// startBatchSim builds the simulation for rc exactly as Run does, but leaves
// the cycle loop to the caller.
func startBatchSim(idx int, rc RunConfig) *batchSim {
	col := stats.NewCollector(rc.Dur.Warmup, rc.Dur.Warmup+rc.Dur.Measure)
	mesh := rc.Regions.Mesh()
	pool := msg.NewPool()
	var src *collective.Source
	onEject := col.OnEject
	if rc.Collective != nil {
		onEject = func(p *msg.Packet, now int64) {
			if p.App == rc.Collective.App {
				src.Deliver(p, now)
				return
			}
			col.OnEject(p, now)
		}
	}
	rcfg := rc.routerConfig()
	net := network.New(network.Params{
		Router:    rcfg,
		Regions:   rc.Regions,
		Alg:       rc.Scheme.Alg(mesh),
		Sel:       rc.Scheme.Sel(rc.Regions, rcfg),
		Policy:    rc.Scheme.Policy,
		OnEject:   onEject,
		Recycle:   pool.Put,
		Workers:   rc.Workers,
		Telemetry: rc.Telemetry,
		Faults:    rc.Faults,
		Check:     rc.Check,
		Chiplets:  rc.Chiplets,
		XBar:      rc.XBar,
	})
	inject := func(node int, p *msg.Packet, now int64) {
		net.Inject(p, now)
	}
	gen := traffic.NewGenerator(rc.Apps, rc.Seed, inject)
	gen.Pool = pool
	end := rc.Dur.Warmup + rc.Dur.Measure
	gen.Until = end

	eng := sim.NewEngine()
	eng.Register(gen)
	if rc.Collective != nil {
		src = collective.NewSource(*rc.Collective, rc.Seed, inject)
		src.Pool = pool
		src.Until = end
		eng.Register(src)
	}
	eng.Register(net)
	return &batchSim{idx: idx, rc: rc, eng: eng, net: net, col: col, src: src,
		run: end, drain: rc.Dur.Drain}
}

// step advances the simulation one cycle along Run's exact schedule — the
// fixed run phase, then drain steps each gated on a prior Drained check,
// mirroring Engine.Run + Engine.RunUntil — and reports false once the
// simulation has finished (drained, or drain budget exhausted).
func (s *batchSim) step() bool {
	if s.run > 0 {
		s.eng.Step()
		s.run--
		return true
	}
	if s.drain <= 0 || s.net.Drained() {
		return false
	}
	s.eng.Step()
	s.drain--
	return true
}

// BatchStats describes how one RunBatch execution used its lockstep window:
// how many cycle-loop passes ran, how many per-simulation steps they
// executed, and the window-occupancy histogram. It is pure scheduler
// observation — recording it cannot influence any simulation.
type BatchStats struct {
	// Width is the requested window width; Sims the configurations run.
	Width int `json:"width"`
	Sims  int `json:"sims"`
	// Passes counts cycle-loop passes; Steps the individual simulation
	// steps those passes executed (Steps/Passes is the mean occupancy).
	Passes int64 `json:"passes"`
	Steps  int64 `json:"steps"`
	// Occupancy[k] counts passes that stepped exactly k live simulations
	// (k from 1 to Width; index 0 is never hit — an empty window ends the
	// loop). The tail of a batch shows up as mass below Width.
	Occupancy []int64 `json:"occupancy"`
}

// MeanOccupancy is the average live-window size across passes (0 when no
// pass ran).
func (b *BatchStats) MeanOccupancy() float64 {
	if b == nil || b.Passes == 0 {
		return 0
	}
	return float64(b.Steps) / float64(b.Passes)
}

// RunBatch executes every configuration with up to width simulations
// resident at once, advanced in lockstep: each pass of the cycle loop steps
// every live simulation by one cycle, in input order. A finished simulation
// retires and its slot back-fills from the remaining configurations, so the
// window stays full until the tail.
//
// Every simulation sees exactly the cycle schedule Run gives it and shares
// no state with its batch mates, so per-point results are bit-identical to
// Run (and to RunBatch at any other width). What the batch changes is purely
// which simulation the process works on from one step to the next: one
// goroutine drives the whole window instead of a semaphore-throttled
// goroutine per point. Whether interleaving (width > 1) helps is a cache
// question — see DefaultBatchWidth.
func RunBatch(rcs []RunConfig, width int) []*stats.Collector {
	out, _ := RunBatchStats(rcs, width)
	return out
}

// RunBatchStats is RunBatch plus the scheduler's window-occupancy record
// (the harness half of the engine self-profiling story; see
// network.EngineProfile for the per-shard half).
func RunBatchStats(rcs []RunConfig, width int) ([]*stats.Collector, *BatchStats) {
	out := make([]*stats.Collector, len(rcs))
	if width < 1 {
		width = 1
	}
	bs := &BatchStats{Width: width, Sims: len(rcs), Occupancy: make([]int64, width+1)}
	live := make([]*batchSim, 0, width)
	next := 0
	fill := func() {
		for len(live) < width && next < len(rcs) {
			live = append(live, startBatchSim(next, rcs[next]))
			next++
		}
	}
	for fill(); len(live) > 0; fill() {
		bs.Passes++
		bs.Steps += int64(len(live))
		bs.Occupancy[len(live)]++
		kept := live[:0]
		for _, s := range live {
			if s.step() {
				kept = append(kept, s)
				continue
			}
			out[s.idx] = s.col
			if s.src != nil {
				finishCollective(s.rc, s.src)
			}
			s.net.Close()
		}
		live = kept
	}
	return out, bs
}
