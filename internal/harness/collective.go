package harness

import (
	"fmt"

	"rair/internal/collective"
	"rair/internal/memsys"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/region"
	"rair/internal/stats"
	"rair/internal/traffic"
	"rair/internal/workload"
)

// CollectiveApp is the application number (and quadrant) the co-run
// experiments place the collective in; apps 0-2 are the victims.
const CollectiveApp = 3

// NewCollectiveSpec parameterizes a collective workload on app's region at
// the operating point the co-run experiments use: eight packets per chunk
// (several long packets per ring hop in flight, enough to saturate the
// region), a small seeded start jitter so distinct seeds produce distinct
// streams, and a short inter-round gap.
func NewCollectiveSpec(op collective.Op, regs *region.Map, app int, class msg.Class) collective.Spec {
	return collective.Spec{
		Op:    op,
		App:   app,
		Nodes: regs.Nodes(app),
		Mesh:  regs.Mesh(),
		// ChunkPackets scales offered load: the dependency window lets a
		// rank run a full chunk ahead of its inbound step, so 8 long
		// packets per chunk keeps the region past its capacity knee.
		ChunkPackets: 8,
		Jitter:       8,
		Gap:          16,
		Class:        class,
	}
}

// CollectiveScenario builds the synthetic co-run point: quadrants on the
// 8×8 mesh, victim apps 0-2 at 20% of saturation with 30% of their traffic
// directed into the collective's region (the Figure 12(a) structure — light
// apps sending into a hot region), and the collective on quadrant 3.
func CollectiveScenario(op collective.Op) (*region.Map, []traffic.AppTraffic, collective.Spec) {
	mesh := Mesh8()
	regs := region.Quadrants(mesh)
	apps := make([]traffic.AppTraffic, 3)
	for a := 0; a < 3; a++ {
		nodes := regs.Nodes(a)
		app := traffic.AppTraffic{
			App: a, Nodes: nodes,
			Components: []traffic.Component{
				{Weight: 0.7, Draw: traffic.IntraUR(nodes).Draw},
				{Weight: 0.3, Draw: traffic.DirectedTo(regs.Nodes(CollectiveApp)).Draw},
			},
		}
		app.PacketRate = rate(mesh, app, 0.20)
		apps[a] = app
	}
	return regs, apps, NewCollectiveSpec(op, regs, CollectiveApp, msg.ClassRequest)
}

// CollResult holds one collective co-run comparison: per scheme, the victim
// applications' APL without and with the collective, and the collective's
// completion statistics from the co-run.
type CollResult struct {
	Title   string
	Schemes []string
	Apps    []string // victim app names
	// Base/Co APL [scheme][victim app]; Slowdown = Co/Base.
	Base [][]float64
	Co   [][]float64
	// CCT is the mean collective completion time (cycles per round) and
	// Rounds the completed rounds, both from the co-run.
	CCT    []float64
	Rounds []int64
}

// Slowdown returns the APL slowdown of victim ai under scheme si.
func (r *CollResult) Slowdown(si, ai int) float64 {
	return stats.Slowdown(r.Base[si][ai], r.Co[si][ai])
}

// AvgSlowdown returns the mean victim slowdown of scheme si.
func (r *CollResult) AvgSlowdown(si int) float64 {
	sum := 0.0
	for ai := range r.Apps {
		sum += r.Slowdown(si, ai)
	}
	return sum / float64(len(r.Apps))
}

// Table renders the comparison: victim slowdowns, their average, and the
// collective's completion time and round count per scheme.
func (r *CollResult) Table() *Table {
	t := &Table{
		Title:  r.Title,
		Header: append(append([]string{"scheme"}, r.Apps...), "avg slowdown", "cct", "rounds"),
	}
	for si, s := range r.Schemes {
		row := []string{s}
		for ai := range r.Apps {
			row = append(row, f2(r.Slowdown(si, ai)))
		}
		row = append(row, f2(r.AvgSlowdown(si)),
			fmt.Sprintf("%.1f", r.CCT[si]), fmt.Sprintf("%d", r.Rounds[si]))
		t.AddRow(row...)
	}
	return t
}

// collectiveSchemes is the scheme panel of the co-run experiments; ranks
// order the victims above the collective (the oracle STC ranking: the
// throughput-bound collective is the most network-intensive application).
func collectiveSchemes() []Scheme {
	return []Scheme{RORR(), RORRDBAR("RA_DBAR"), RORank([]int{0, 1, 2, 3}), RAIR("RA_RAIR")}
}

// CollectiveSynth runs the synthetic collective co-run across the scheme
// panel: per scheme, the victims alone (base) and the victims with the
// collective in quadrant 3 (co-run), all points in parallel through the
// standard runner.
func CollectiveSynth(op collective.Op, dur Durations, seed uint64) *CollResult {
	regs, apps, spec := CollectiveScenario(op)
	schemes := collectiveSchemes()
	res := &CollResult{
		Title: fmt.Sprintf("Collective co-run (synthetic victims): %v in quadrant 3", op),
		Apps:  []string{"app0", "app1", "app2"},
	}
	progs := make([]collective.Progress, len(schemes))
	var rcs []RunConfig
	for i, s := range schemes {
		base := RunConfig{Regions: regs, Router: synthCfg(), Apps: apps,
			Scheme: s, Dur: dur, Seed: seed}
		co := base
		co.Collective = &spec
		si := i
		co.CollectiveDone = func(p collective.Progress) { progs[si] = p }
		rcs = append(rcs, base, co)
	}
	cols := RunParallel(rcs)
	for si, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
		base := make([]float64, len(res.Apps))
		co := make([]float64, len(res.Apps))
		for ai := range res.Apps {
			base[ai] = cols[2*si].App(ai).Mean()
			co[ai] = cols[2*si+1].App(ai).Mean()
		}
		res.Base = append(res.Base, base)
		res.Co = append(res.Co, co)
		res.CCT = append(res.CCT, progs[si].CompletionTime())
		res.Rounds = append(res.Rounds, progs[si].Rounds)
	}
	return res
}

// CollSharedFrac is the out-of-region home fraction the PARSEC co-run uses.
// The Table 1 default (0.10) models mostly-partitioned applications, which
// barely touch the collective's quadrant at all; the co-run question is
// about applications that do share data across the chip, so the experiment
// raises the fraction until a meaningful share of victim cache traffic is
// homed in (and must round-trip through) the aggressor's region.
const CollSharedFrac = 0.40

// RunCollectivePARSEC executes one PARSEC/collective co-run point: the
// PARSEC proxies (blackscholes, swaptions, fluidanimate) on quadrants 0-2
// through the Table 1 memory system with CollSharedFrac shared homes, and —
// when op is non-nil — the collective on quadrant 3. The returned collector
// covers the victim applications only; the collective's own outcome is the
// returned progress (zero-valued when op is nil).
func RunCollectivePARSEC(s Scheme, op *collective.Op, dur Durations, seed uint64) (*stats.Collector, collective.Progress) {
	mesh := Mesh8()
	regs := region.Quadrants(mesh)
	profiles := workload.Profiles()
	streams := make([]memsys.AddressStream, mesh.N())
	for node := 0; node < mesh.N(); node++ {
		if app := regs.AppAt(node); app != CollectiveApp {
			streams[node] = workload.NewStream(profiles[app], app, node)
		}
	}
	cfg := MemsysRouterConfig()

	col := stats.NewCollector(dur.Warmup, dur.Warmup+dur.Measure)
	var sys *memsys.System
	var src *collective.Source
	net := network.New(network.Params{
		Router:  cfg,
		Regions: regs,
		Alg:     s.Alg(mesh),
		Sel:     s.Sel(regs, cfg),
		Policy:  s.Policy,
		OnEject: func(p *msg.Packet, now int64) {
			if src != nil && p.App == CollectiveApp {
				src.Deliver(p, now)
				return
			}
			sys.HandleEject(p, now)
			col.OnEject(p, now)
		},
	})
	inject := func(node int, p *msg.Packet, now int64) { net.NI(node).Inject(p, now) }
	mcfg := memsys.DefaultSystemConfig()
	mcfg.SharedFrac = CollSharedFrac
	sys = memsys.New(mcfg, regs, streams, seed, inject)
	sys.Prewarm(PrewarmAccesses)

	end := dur.Warmup + dur.Measure
	if op != nil {
		// Long data packets ride the response class, like the memory
		// system's own data replies.
		src = collective.NewSource(NewCollectiveSpec(*op, regs, CollectiveApp, msg.ClassResponse), seed, inject)
		src.Until = end
	}
	for now := int64(0); now < end; now++ {
		sys.Tick(now)
		if src != nil {
			src.Tick(now)
		}
		net.Tick(now)
	}
	for now := end; now < end+dur.Drain && !net.Drained(); now++ {
		sys.Tick(now)
		net.Tick(now)
	}
	var prog collective.Progress
	if src != nil {
		prog = src.Progress()
	}
	return col, prog
}

// CollectivePARSEC runs the PARSEC co-run comparison for one collective
// operation across the scheme panel: per scheme, the proxies alone and the
// proxies with the collective in quadrant 3 — the paper's interference
// question with a phase-structured aggressor instead of a Bernoulli flood.
func CollectivePARSEC(op collective.Op, dur Durations, seed uint64) *CollResult {
	schemes := collectiveSchemes()
	res := &CollResult{
		Title: fmt.Sprintf("Collective co-run (PARSEC victims): %v in quadrant 3", op),
	}
	for _, p := range workload.Profiles()[:3] {
		res.Apps = append(res.Apps, p.Name)
	}
	type out struct {
		col  *stats.Collector
		prog collective.Progress
	}
	jobs := make([]out, 2*len(schemes))
	done := make(chan struct{})
	for i, s := range schemes {
		go func(i int, s Scheme) {
			c, _ := RunCollectivePARSEC(s, nil, dur, seed)
			jobs[2*i] = out{col: c}
			done <- struct{}{}
		}(i, s)
		go func(i int, s Scheme) {
			o := op
			c, p := RunCollectivePARSEC(s, &o, dur, seed)
			jobs[2*i+1] = out{col: c, prog: p}
			done <- struct{}{}
		}(i, s)
	}
	for range jobs {
		<-done
	}
	for si, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
		base := make([]float64, len(res.Apps))
		co := make([]float64, len(res.Apps))
		for ai := range res.Apps {
			base[ai] = jobs[2*si].col.App(ai).Mean()
			co[ai] = jobs[2*si+1].col.App(ai).Mean()
		}
		res.Base = append(res.Base, base)
		res.Co = append(res.Co, co)
		res.CCT = append(res.CCT, jobs[2*si+1].prog.CompletionTime())
		res.Rounds = append(res.Rounds, jobs[2*si+1].prog.Rounds)
	}
	return res
}
