package harness

import (
	"rair/internal/memsys"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/stats"
	"rair/internal/trace"
	"rair/internal/traffic"
	"rair/internal/workload"
)

// RecordPARSECTrace captures the PARSEC-proxy scenario's packet injections
// over a neutral (RO_RR) network for the given horizon — the trace-capture
// step of the paper's methodology (SIMICS+GEMS traces fed to GARNET).
func RecordPARSECTrace(cycles int64, seed uint64) *trace.Trace {
	regs, streams := PARSECScenario()
	s := RORR()
	cfg := MemsysRouterConfig()
	var rec trace.Recorder
	var sys *memsys.System
	net := network.New(network.Params{
		Router: cfg, Regions: regs,
		Alg: s.Alg(regs.Mesh()), Sel: s.Sel(regs, cfg), Policy: s.Policy,
		OnEject: func(p *msg.Packet, now int64) { sys.HandleEject(p, now) },
	})
	sys = memsys.New(memsys.DefaultSystemConfig(), regs, streams, seed,
		func(node int, p *msg.Packet, now int64) {
			rec.Capture(node, p, now)
			net.NI(node).Inject(p, now)
		})
	sys.Prewarm(PrewarmAccesses)
	for now := int64(0); now < cycles; now++ {
		sys.Tick(now)
		net.Tick(now)
	}
	rec.T.Sort()
	return &rec.T
}

// TraceAdversaryFlitRate is the adversarial load for the trace-replay
// variant, kept equal to the closed-loop experiment for comparability.
// Replay is open-loop — recorded injections keep coming regardless of
// congestion, with no MSHR backpressure — so queueing integrates over the
// horizon and the *absolute* slowdowns are much larger and
// window-dependent; the scheme comparison (who protects the applications)
// is the meaningful output.
const TraceAdversaryFlitRate = AdversaryFlitRate

// ReplayPARSEC replays a captured trace under a scheme, with an optional
// adversarial injector at advRate flits/node/cycle (0 = none), returning
// the latency collector for the applications' packets. Unlike the
// closed-loop RunPARSEC, replay holds the traffic identical across schemes
// — the paper's trace-driven comparison.
func ReplayPARSEC(t *trace.Trace, s Scheme, advRate float64, warmup int64, seed uint64) *stats.Collector {
	regs, _ := PARSECScenario()
	mesh := regs.Mesh()
	cfg := MemsysRouterConfig()
	col := stats.NewCollector(warmup, t.Duration())
	net := network.New(network.Params{
		Router: cfg, Regions: regs,
		Alg: s.Alg(mesh), Sel: s.Sel(regs, cfg), Policy: s.Policy,
		OnEject: func(p *msg.Packet, now int64) {
			if p.App != AdversaryApp {
				col.OnEject(p, now)
			}
		},
	})
	inject := func(node int, p *msg.Packet, now int64) { net.NI(node).Inject(p, now) }
	player := trace.NewPlayer(t, inject)
	var adv *traffic.Generator
	if advRate > 0 {
		app := traffic.Adversary(mesh, AdversaryApp, advRate/3)
		adv = traffic.NewGenerator([]traffic.AppTraffic{app}, seed^0xadadad, inject)
		adv.Until = t.Duration()
	}
	limit := t.Duration() + 100000
	for now := int64(0); now < limit; now++ {
		player.Tick(now)
		if adv != nil {
			adv.Tick(now)
		}
		net.Tick(now)
		if player.Done() && (adv == nil || now >= t.Duration()) && net.Drained() {
			break
		}
	}
	return col
}

// Fig17Trace is the trace-driven variant of Figure 17: one PARSEC trace is
// captured once and replayed identically under every scheme, with and
// without the adversarial flood.
func Fig17Trace(dur Durations, seed uint64) *Fig17Result {
	t := RecordPARSECTrace(dur.Warmup+dur.Measure, seed)
	schemes := fig17Schemes()
	res := &Fig17Result{Title: "Figure 17 (trace-driven replay variant)"}
	for _, p := range workload.Profiles() {
		res.Apps = append(res.Apps, p.Name)
	}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name)
		base := ReplayPARSEC(t, s, 0, dur.Warmup, seed)
		adv := ReplayPARSEC(t, s, TraceAdversaryFlitRate, dur.Warmup, seed)
		bRow := make([]float64, len(res.Apps))
		aRow := make([]float64, len(res.Apps))
		for ai := range res.Apps {
			bRow[ai] = base.App(ai).Mean()
			aRow[ai] = adv.App(ai).Mean()
		}
		res.Base = append(res.Base, bRow)
		res.Adv = append(res.Adv, aRow)
	}
	return res
}
