package harness

import (
	"fmt"

	"rair/internal/memsys"
	"rair/internal/sim"
	"rair/internal/workload"
)

// WorkloadRow characterizes one PARSEC proxy.
type WorkloadRow struct {
	Name       string
	IssueRate  float64 // accesses per cycle per core
	L1MissRate float64
	MissFlux   float64 // L1 misses per cycle per core
	FlitDemand float64 // flits/cycle/core the misses imply (req + data)
}

// WorkloadResult is the PARSEC-proxy characterization table.
type WorkloadResult struct {
	Rows []WorkloadRow
}

// Table renders the characterization. Streams are block-granular (one
// touch per 64 B block, the granularity the NoC sees), so the miss rate is
// per block touch — word-level L1 hits inside a block are not modeled and
// the rates read far higher than per-instruction L1 miss rates.
func (r *WorkloadResult) Table() *Table {
	t := &Table{
		Title:  "PARSEC 2.0 proxy characterization (block-granular streams vs Table 1 L1, per core)",
		Header: []string{"application", "block touches/cycle", "block miss rate", "misses/cycle", "flit demand/cycle"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, f2(row.IssueRate), fmt.Sprintf("%.3f", row.L1MissRate),
			fmt.Sprintf("%.4f", row.MissFlux), fmt.Sprintf("%.3f", row.FlitDemand))
	}
	return t
}

// CharacterizeWorkloads measures every PARSEC 2.0 proxy against the Table 1
// L1 over the given horizon, reporting the open-loop network intensity each
// would generate. This is the suite-wide view behind the paper's statement
// that its infrastructure supports all 13 applications (it presents four
// spanning the intensity range).
func CharacterizeWorkloads(cycles int, seed uint64) *WorkloadResult {
	res := &WorkloadResult{}
	for _, p := range workload.AllProfiles() {
		l1 := memsys.NewCache(32<<10, 2, 64)
		s := workload.NewStream(p, 0, 0)
		rng := sim.NewRNG(seed)
		issued, misses := 0, 0
		for i := 0; i < cycles; i++ {
			a, ok := s.Next(rng)
			if !ok {
				continue
			}
			issued++
			if !l1.Access(a.Addr) {
				misses++
			}
		}
		row := WorkloadRow{
			Name:      p.Name,
			IssueRate: float64(issued) / float64(cycles),
			MissFlux:  float64(misses) / float64(cycles),
		}
		if issued > 0 {
			row.L1MissRate = float64(misses) / float64(issued)
		}
		// Each miss produces a 1-flit request and a 5-flit data reply.
		row.FlitDemand = row.MissFlux * 6
		res.Rows = append(res.Rows, row)
	}
	return res
}
