// Package harness configures and runs the paper's experiments: it builds
// scenarios (region layouts + per-application traffic at fractions of
// saturation), runs each (scheme × scenario) simulation on its own
// goroutine, and collects the per-figure tables reported in EXPERIMENTS.md.
package harness

import (
	"runtime"
	"sync"

	"rair/internal/collective"
	"rair/internal/faults"
	"rair/internal/invariant"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/sim"
	"rair/internal/stats"
	"rair/internal/telemetry"
	"rair/internal/topology"
	"rair/internal/traffic"
)

// Durations holds the simulation phases in cycles. The paper warms up for
// 10K cycles and measures over 100K; Quick returns a shorter setting for
// tests and smoke runs.
type Durations struct {
	Warmup  int64
	Measure int64
	// Drain bounds the post-measurement drain phase; measured packets
	// still in flight when it expires are simply not counted.
	Drain int64
}

// PaperDurations is the evaluation setting of Section V.A.
func PaperDurations() Durations { return Durations{Warmup: 10000, Measure: 100000, Drain: 20000} }

// QuickDurations is a reduced setting for tests and benchmarks; latency
// averages are noisier but ordering-stable.
func QuickDurations() Durations { return Durations{Warmup: 2000, Measure: 10000, Drain: 10000} }

// RunConfig is one simulation point.
type RunConfig struct {
	Regions *region.Map
	Router  router.Config
	Apps    []traffic.AppTraffic
	Scheme  Scheme
	Dur     Durations
	Seed    uint64
	// Workers selects the network's tick-engine shard count (<= 1 serial).
	// Results are identical either way; see network.Params.Workers.
	Workers int
	// Telemetry, if non-nil, instruments the network's routers and NIs;
	// see network.Params.Telemetry.
	Telemetry *telemetry.Collector
	// Faults, if non-nil and enabled, injects deterministic link/router
	// faults; see network.Params.Faults.
	Faults *faults.Config
	// Check, if non-nil, runs the runtime invariant checker at every tick
	// barrier; see network.Params.Check.
	Check *invariant.Config
	// Collective, if non-nil, co-runs a collective workload alongside the
	// Bernoulli apps: its packets are delivered back to the collective
	// source (driving the phase dependency barriers) instead of the
	// statistics collector, so Apps' latency figures measure the victim
	// applications only, the way RunPARSEC excludes the adversary.
	Collective *collective.Spec
	// CollectiveDone, if set, receives the collective's final progress
	// snapshot when the run (including drain) finishes.
	CollectiveDone func(collective.Progress)
	// Chiplets, if non-nil, builds the mesh as a two-level chiplet system
	// joined by the XBar crossbar; see network.Params.Chiplets. The grid
	// must span the Regions mesh.
	Chiplets *topology.Chiplets
	// XBar configures the inter-chiplet crossbar (zero value = defaults).
	XBar network.XBarConfig
	// Concentration puts that many cores behind every router (a
	// concentrated mesh): the router config gets that many NI injector
	// slots and injections rotate across them. Values <= 1 mean one core
	// per router. Scenario builders model the extra cores by duplicating
	// app Nodes entries, so per-router load scales with the factor.
	Concentration int
}

// routerConfig is rc.Router with the concentration factor applied to the
// NI's injector-slot count.
func (rc RunConfig) routerConfig() router.Config {
	cfg := rc.Router
	if rc.Concentration > 1 {
		cfg.Injectors = rc.Concentration
	}
	return cfg
}

// Run executes one simulation point and returns its statistics collector.
func Run(rc RunConfig) *stats.Collector {
	col := stats.NewCollector(rc.Dur.Warmup, rc.Dur.Warmup+rc.Dur.Measure)
	mesh := rc.Regions.Mesh()
	// The collector copies packet fields at ejection and nothing else
	// observes packets, so every run can recycle them through a freelist.
	pool := msg.NewPool()
	// The collective source (when configured) consumes its own deliveries
	// through OnEject, which the network runs on the ticking goroutine in
	// node order — the dependency barriers are deterministic at any worker
	// count. src is bound after the network exists; no ejection can occur
	// before the first Tick.
	var src *collective.Source
	onEject := col.OnEject
	if rc.Collective != nil {
		onEject = func(p *msg.Packet, now int64) {
			if p.App == rc.Collective.App {
				src.Deliver(p, now)
				return
			}
			col.OnEject(p, now)
		}
	}
	rcfg := rc.routerConfig()
	net := network.New(network.Params{
		Router:    rcfg,
		Regions:   rc.Regions,
		Alg:       rc.Scheme.Alg(mesh),
		Sel:       rc.Scheme.Sel(rc.Regions, rcfg),
		Policy:    rc.Scheme.Policy,
		OnEject:   onEject,
		Recycle:   pool.Put,
		Workers:   rc.Workers,
		Telemetry: rc.Telemetry,
		Faults:    rc.Faults,
		Check:     rc.Check,
		Chiplets:  rc.Chiplets,
		XBar:      rc.XBar,
	})
	defer net.Close()
	inject := func(node int, p *msg.Packet, now int64) {
		net.Inject(p, now)
	}
	gen := traffic.NewGenerator(rc.Apps, rc.Seed, inject)
	gen.Pool = pool
	end := rc.Dur.Warmup + rc.Dur.Measure
	gen.Until = end

	eng := sim.NewEngine()
	eng.Register(gen)
	if rc.Collective != nil {
		src = collective.NewSource(*rc.Collective, rc.Seed, inject)
		src.Pool = pool
		src.Until = end
		eng.Register(src)
	}
	eng.Register(net)
	eng.Run(end)
	// Drain: the generator self-stops at Until, so ticking it is a no-op.
	eng.RunUntil(net.Drained, rc.Dur.Drain)
	if src != nil {
		finishCollective(rc, src)
	}
	return col
}

// finishCollective publishes a finished run's collective progress: into the
// telemetry collector's report (when instrumented) and to the caller's
// CollectiveDone hook.
func finishCollective(rc RunConfig, src *collective.Source) {
	prog := src.Progress()
	if rc.Telemetry != nil {
		rc.Telemetry.AttachCollective(prog.Telemetry(rc.Collective.App))
	}
	if rc.CollectiveDone != nil {
		rc.CollectiveDone(prog)
	}
}

// RunParallel executes every configuration concurrently and returns
// collectors in input order. Each simulation is fully deterministic in
// isolation, so results are identical to a serial run.
//
// The concurrency budget is GOMAXPROCS goroutines total: a run configured
// with tick-engine shards (Workers > 1) occupies that many slots, so runs
// with intra-simulation parallelism don't multiply into CPU oversubscription.
// The semaphore is acquired before the goroutine spawns, bounding live
// goroutines (not merely running ones) for arbitrarily long rcs slices.
// When the budget collapses to a single slot the whole slice is handed to
// RunBatch instead — same results, no goroutine churn.
func RunParallel(rcs []RunConfig) []*stats.Collector {
	out := make([]*stats.Collector, len(rcs))
	maxW := 1
	for _, rc := range rcs {
		if rc.Workers > maxW {
			maxW = rc.Workers
		}
	}
	slots := runtime.GOMAXPROCS(0) / maxW
	if slots < 1 {
		slots = 1
	}
	if slots == 1 && len(rcs) > 1 {
		// One goroutine's worth of budget means no concurrency to exploit:
		// run the points through the batch runner at width 1, which produces
		// the same collectors without per-run goroutine and channel churn.
		// Width is deliberately 1, not DefaultBatchWidth: a 64-node network's
		// state slabs are larger than L2, so interleaving W networks per tick
		// evicts each other's working set (measured +12% wall at width 2,
		// +34% at width 4 on the saturated fig9 point) — lockstep widths
		// above 1 only pay off when the interleaved working sets fit cache.
		return RunBatch(rcs, 1)
	}
	sem := make(chan struct{}, slots)
	var wg sync.WaitGroup
	for i := range rcs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = Run(rcs[i])
		}(i)
	}
	wg.Wait()
	return out
}
