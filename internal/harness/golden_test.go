package harness

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rair/internal/invariant"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/sim"
	"rair/internal/stats"
	"rair/internal/traffic"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace under testdata/")

const goldenPath = "testdata/golden_trace.txt"

// goldenRun executes the pinned scenario — the Figure 9 two-app layout at
// 0.5 load under RA_RAIR, seed 11 — and returns one line per ejected packet
// in ejection order.
func goldenRun() []string {
	regs, apps := Fig9Scenario(0.5)
	rc := RunConfig{
		Regions: regs, Router: synthCfg(), Apps: apps,
		Scheme: RAIR("RA_RAIR"),
		Dur:    Durations{Warmup: 500, Measure: 3000, Drain: 6000},
		Seed:   11,
	}
	var lines []string
	col := stats.NewCollector(rc.Dur.Warmup, rc.Dur.Warmup+rc.Dur.Measure)
	mesh := rc.Regions.Mesh()
	net := network.New(network.Params{
		Router:  rc.Router,
		Regions: rc.Regions,
		Alg:     rc.Scheme.Alg(mesh),
		Sel:     rc.Scheme.Sel(rc.Regions, rc.Router),
		Policy:  rc.Scheme.Policy,
		// Panic-mode invariant checking: the golden run doubles as the
		// mask-shadow cross-check, auditing every incrementally-maintained
		// bitmask against a slow reference scan at the checking barriers.
		Check: &invariant.Config{Every: 64},
		OnEject: func(p *msg.Packet, now int64) {
			col.OnEject(p, now)
			lines = append(lines, fmt.Sprintf("pkt %d app %d %d>%d flits %d eject %d lat %d hops %d",
				p.ID, p.App, p.Src, p.Dst, p.Size, p.EjectedAt, p.TotalLatency(), p.Hops))
		},
	})
	defer net.Close()
	gen := traffic.NewGenerator(rc.Apps, rc.Seed, func(node int, p *msg.Packet, now int64) {
		net.NI(node).Inject(p, now)
	})
	end := rc.Dur.Warmup + rc.Dur.Measure
	gen.Until = end
	eng := sim.NewEngine()
	eng.Register(gen)
	eng.Register(net)
	eng.Run(end)
	eng.RunUntil(net.Drained, rc.Dur.Drain)
	return lines
}

// renderGolden formats the trace file: a header, the first 64 ejections
// verbatim, then the ejection total and an FNV-64a digest of every line (so
// drift anywhere in the run fails the comparison, not just in the prefix).
func renderGolden(lines []string) string {
	return renderTrace([]string{
		"# Golden ejection trace: Fig9 scenario, 0.5 load, RA_RAIR, seed 11.",
		"# Regenerate with: go test ./internal/harness -run TestGoldenTrace -update",
	}, lines)
}

// renderTrace formats any golden trace file: header comment lines, the
// first 64 ejections verbatim, then the total and whole-run digest.
func renderTrace(header, lines []string) string {
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	var b strings.Builder
	for _, l := range header {
		b.WriteString(l)
		b.WriteString("\n")
	}
	n := len(lines)
	if n > 64 {
		n = 64
	}
	for _, l := range lines[:n] {
		b.WriteString(l)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "total %d fnv64a %016x\n", len(lines), h.Sum64())
	return b.String()
}

// TestGoldenTrace locks down the simulator's exact behavior: the per-packet
// ejection order and latencies of a seeded run must match the committed
// trace bit for bit. Any change to routing, arbitration, pipeline timing or
// RNG consumption shows up here; if the change is intended, regenerate with
// -update and review the diff.
func TestGoldenTrace(t *testing.T) {
	got := renderGolden(goldenRun())
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden trace (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("golden trace drift at line %d:\n  got:  %s\n  want: %s\n(regenerate with -update if intended)",
				i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("golden trace length drift: got %d lines, want %d (regenerate with -update if intended)",
		len(gl), len(wl))
}

// TestGoldenTraceStable guards the golden scenario itself: two in-process
// runs must agree, otherwise the trace file would churn on every regen.
func TestGoldenTraceStable(t *testing.T) {
	if testing.Short() {
		t.Skip("second golden run in -short mode")
	}
	a, b := goldenRun(), goldenRun()
	if len(a) != len(b) {
		t.Fatalf("rerun ejected %d packets, first run %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rerun diverges at ejection %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}
