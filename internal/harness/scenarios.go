package harness

import (
	"rair/internal/region"
	"rair/internal/topology"
	"rair/internal/traffic"
)

// satSamples is the Monte Carlo sample count per node for saturation
// estimation; estimates are deterministic for a fixed seed.
const satSamples = 1000

// satSeed keeps saturation estimation independent of simulation seeds.
const satSeed = 0xfeed

// SatEfficiency calibrates the analytic channel-capacity bound to the
// saturation throughput the router actually achieves: separable VA/SA
// allocation and finite VC counts deliver ~75-80% of ideal channel
// bandwidth (measured with LatencyLoadCurve: chip-wide UR latency diverges
// between 0.7 and 0.8 of the bound, plateauing at ≈0.40 of the ideal 0.50
// flits/node/cycle). Scenario loads quoted as "x% of saturation" are
// fractions of the achieved saturation, as in the paper.
const SatEfficiency = 0.70

// rate returns frac × the achieved saturation rate of app, in packets per
// node per cycle.
func rate(mesh *topology.Mesh, app traffic.AppTraffic, frac float64) float64 {
	return frac * SatEfficiency * traffic.SaturationRate(mesh, app, satSamples, satSeed)
}

// Mesh8 is the evaluation topology: a 64-node mesh (Section V.A).
func Mesh8() *topology.Mesh { return topology.NewMesh(8, 8) }

// Fig9Scenario builds the two-application MSP scenario (Figure 8): App 0 on
// the left half at 10% of saturation with fraction p of its traffic
// inter-region (uniform into the right half), App 1 on the right half at
// 90% of saturation, all intra-region.
func Fig9Scenario(p float64) (*region.Map, []traffic.AppTraffic) {
	mesh := Mesh8()
	regs := region.Halves(mesh)
	left, right := regs.Nodes(0), regs.Nodes(1)

	app0 := traffic.AppTraffic{
		App: 0, Nodes: left,
		Components: []traffic.Component{
			{Weight: 1 - p, Draw: traffic.IntraUR(left).Draw},
			{Weight: p, Draw: traffic.DirectedTo(right).Draw},
		},
	}
	app0.PacketRate = rate(mesh, app0, 0.10)

	app1 := traffic.AppTraffic{
		App: 1, Nodes: right,
		Components: []traffic.Component{traffic.IntraUR(right)},
	}
	app1.PacketRate = rate(mesh, app1, 0.90)

	return regs, []traffic.AppTraffic{app0, app1}
}

// Fig12Variant selects between the two contrasting DPA scenarios of
// Figure 11.
type Fig12Variant int

const (
	// Fig12A: App 0-2 low load, 30% of their traffic inter-region toward
	// App 3's region; App 3 high load, all intra-region.
	Fig12A Fig12Variant = iota
	// Fig12B: App 0-2 low load, all intra-region; App 3 high load with
	// 30% inter-region uniformly toward the other applications.
	Fig12B
)

// Fig12Scenario builds the four-application load-heterogeneity scenario on
// quadrants. Low load is 20% of saturation, high load 90% (the paper states
// low/high without exact fractions).
func Fig12Scenario(v Fig12Variant) (*region.Map, []traffic.AppTraffic) {
	mesh := Mesh8()
	regs := region.Quadrants(mesh)
	apps := make([]traffic.AppTraffic, 4)
	for a := 0; a < 4; a++ {
		nodes := regs.Nodes(a)
		var comps []traffic.Component
		frac := 0.20
		switch {
		case a == 3 && v == Fig12A:
			frac = 0.90
			comps = []traffic.Component{traffic.IntraUR(nodes)}
		case a == 3 && v == Fig12B:
			frac = 0.90
			others := make([]int, 0, 48)
			for b := 0; b < 3; b++ {
				others = append(others, regs.Nodes(b)...)
			}
			comps = []traffic.Component{
				{Weight: 0.7, Draw: traffic.IntraUR(nodes).Draw},
				{Weight: 0.3, Draw: traffic.DirectedTo(others).Draw},
			}
		case v == Fig12A:
			comps = []traffic.Component{
				{Weight: 0.7, Draw: traffic.IntraUR(nodes).Draw},
				{Weight: 0.3, Draw: traffic.DirectedTo(regs.Nodes(3)).Draw},
			}
		default: // Fig12B low apps: all intra
			comps = []traffic.Component{traffic.IntraUR(nodes)}
		}
		app := traffic.AppTraffic{App: a, Nodes: nodes, Components: comps}
		app.PacketRate = rate(mesh, app, frac)
		apps[a] = app
	}
	return regs, apps
}

// SixAppLoads are the load fractions of the six-application scenario
// (Figure 13): apps 0, 2, 3, 4 at low-to-medium loads between 10% and 30%
// of saturation, apps 1 and 5 at 90%.
var SixAppLoads = [6]float64{0.10, 0.90, 0.20, 0.30, 0.15, 0.90}

// Fig14Scenario builds the generic six-application RNoC scenario: per app,
// 75% intra-region uniform random + 20% inter-region global traffic with
// the given pattern ("UR", "TP", "BC", "HS") + 5% memory-controller traffic
// to/from the four corners.
func Fig14Scenario(globalPattern string) (*region.Map, []traffic.AppTraffic) {
	mesh := Mesh8()
	regs := region.SixGrid(mesh)
	base := traffic.PatternByName(globalPattern, mesh)
	apps := make([]traffic.AppTraffic, 6)
	for a := 0; a < 6; a++ {
		nodes := regs.Nodes(a)
		app := traffic.AppTraffic{
			App: a, Nodes: nodes,
			Components: []traffic.Component{
				{Weight: 0.75, Draw: traffic.IntraUR(nodes).Draw},
				{Weight: 0.20, Draw: traffic.InterPattern(regs, base).Draw},
				{Weight: 0.05, Draw: traffic.MCCorners(mesh).Draw},
			},
		}
		app.PacketRate = rate(mesh, app, SixAppLoads[a])
		apps[a] = app
	}
	return regs, apps
}

// SixAppRanks is the oracle STC ranking for the six-application scenario:
// applications ordered by configured load (least intensive first), which is
// exactly the optimal ranking the paper grants RO_Rank.
func SixAppRanks() []int {
	return ranksFromLoads(SixAppLoads[:])
}

// ranksFromLoads converts load fractions to ranks (0 = lowest load).
func ranksFromLoads(loads []float64) []int {
	ranks := make([]int, len(loads))
	for a := range loads {
		r := 0
		for b := range loads {
			if loads[b] < loads[a] || (loads[b] == loads[a] && b < a) {
				r++
			}
		}
		ranks[a] = r
	}
	return ranks
}

// UniformScenario builds a single-region chip-wide uniform-random workload
// at the given fraction of saturation (latency-load curves and smoke tests).
func UniformScenario(frac float64) (*region.Map, []traffic.AppTraffic) {
	mesh := Mesh8()
	regs := region.Single(mesh)
	nodes := regs.Nodes(0)
	app := traffic.AppTraffic{App: 0, Nodes: nodes,
		Components: []traffic.Component{traffic.IntraUR(nodes)}}
	app.PacketRate = rate(mesh, app, frac)
	return regs, []traffic.AppTraffic{app}
}
