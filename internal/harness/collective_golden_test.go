package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rair/internal/collective"
	"rair/internal/invariant"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/sim"
	"rair/internal/stats"
	"rair/internal/traffic"
)

const goldenCollectivePath = "testdata/golden_collective.txt"

// goldenCollectiveRun executes the pinned collective co-run — the synthetic
// victim scenario with a ring AllReduce in quadrant 3 under RA_RAIR, seed 11
// — and returns one line per ejected packet (victim and collective streams
// both) in ejection order. Collective packets are recognizable by their
// offset ID space and app 3.
func goldenCollectiveRun() []string {
	regs, apps, spec := CollectiveScenario(collective.RingAllReduce)
	dur := Durations{Warmup: 500, Measure: 3000, Drain: 6000}
	scheme := RAIR("RA_RAIR")
	cfg := synthCfg()
	mesh := regs.Mesh()

	var lines []string
	col := stats.NewCollector(dur.Warmup, dur.Warmup+dur.Measure)
	var src *collective.Source
	net := network.New(network.Params{
		Router:  cfg,
		Regions: regs,
		Alg:     scheme.Alg(mesh),
		Sel:     scheme.Sel(regs, cfg),
		Policy:  scheme.Policy,
		Check:   &invariant.Config{Every: 64},
		OnEject: func(p *msg.Packet, now int64) {
			lines = append(lines, fmt.Sprintf("pkt %d app %d %d>%d flits %d eject %d lat %d hops %d",
				p.ID, p.App, p.Src, p.Dst, p.Size, p.EjectedAt, p.TotalLatency(), p.Hops))
			if p.App == spec.App {
				src.Deliver(p, now)
				return
			}
			col.OnEject(p, now)
		},
	})
	defer net.Close()
	inject := func(node int, p *msg.Packet, now int64) { net.NI(node).Inject(p, now) }
	gen := traffic.NewGenerator(apps, 11, inject)
	end := dur.Warmup + dur.Measure
	gen.Until = end
	src = collective.NewSource(spec, 11, inject)
	src.Until = end
	eng := sim.NewEngine()
	eng.Register(gen)
	eng.Register(src)
	eng.Register(net)
	eng.Run(end)
	eng.RunUntil(net.Drained, dur.Drain)
	return lines
}

// TestGoldenCollectiveTrace locks down the collective co-run's exact
// behavior the way TestGoldenTrace does for the open-loop generator: the
// interleaved ejection order of victim and collective packets of a seeded
// run must match the committed trace bit for bit. The closed-loop source
// makes this a stronger check than the open-loop golden — any timing drift
// feeds back into the collective's send schedule and amplifies.
func TestGoldenCollectiveTrace(t *testing.T) {
	lines := goldenCollectiveRun()
	got := renderTrace([]string{
		"# Golden collective co-run trace: synthetic victims + ring AllReduce in quadrant 3, RA_RAIR, seed 11.",
		"# Regenerate with: go test ./internal/harness -run TestGoldenCollectiveTrace -update",
	}, lines)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenCollectivePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCollectivePath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenCollectivePath)
		return
	}
	want, err := os.ReadFile(goldenCollectivePath)
	if err != nil {
		t.Fatalf("missing golden collective trace (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("golden collective trace drift at line %d:\n  got:  %s\n  want: %s\n(regenerate with -update if intended)",
				i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("golden collective trace length drift: got %d lines, want %d (regenerate with -update if intended)",
		len(gl), len(wl))
}
