package harness

import (
	"bytes"
	"testing"

	"rair/internal/telemetry"
)

// TestAttributionDeterministicUnderBatch extends the attribution
// determinism contract to the lockstep batch runner: a run's telemetry
// report (decompositions included) is byte-identical whether it executes
// alone through Run or interleaved with a batch mate through RunBatch.
func TestAttributionDeterministicUnderBatch(t *testing.T) {
	regs, apps := Fig9Scenario(0.5)
	mkRC := func(tel *telemetry.Collector) RunConfig {
		return RunConfig{
			Regions: regs, Router: synthCfg(), Apps: apps,
			Scheme: RAIR("RA_RAIR"), Dur: testDur(), Seed: 42, Telemetry: tel,
		}
	}
	report := func(tel *telemetry.Collector) []byte {
		var buf bytes.Buffer
		if err := tel.Report().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	solo := telemetry.NewCollector(telemetry.Config{Window: 128, Attribution: true})
	Run(mkRC(solo))
	want := report(solo)
	if solo.Attribution() == nil {
		t.Fatal("solo run produced no attribution")
	}

	telA := telemetry.NewCollector(telemetry.Config{Window: 128, Attribution: true})
	telB := telemetry.NewCollector(telemetry.Config{Window: 128, Attribution: true})
	_, bs := RunBatchStats([]RunConfig{mkRC(telA), mkRC(telB)}, 2)
	for i, tel := range []*telemetry.Collector{telA, telB} {
		if got := report(tel); !bytes.Equal(got, want) {
			t.Fatalf("batched run %d: telemetry report differs from solo run", i)
		}
	}

	if bs == nil || bs.Passes == 0 {
		t.Fatalf("no batch stats recorded: %+v", bs)
	}
	var steps, passes int64
	for k, c := range bs.Occupancy {
		passes += c
		steps += int64(k) * c
	}
	if bs.Occupancy[0] != 0 {
		t.Fatal("occupancy histogram counted an empty pass")
	}
	if passes != bs.Passes || steps != bs.Steps {
		t.Fatalf("occupancy histogram (%d passes, %d steps) disagrees with totals (%d, %d)",
			passes, steps, bs.Passes, bs.Steps)
	}
	if m := bs.MeanOccupancy(); m <= 0 || m > float64(bs.Width) {
		t.Fatalf("mean occupancy %v out of (0, %d]", m, bs.Width)
	}
	// Two identical configurations run in lockstep finish together, so the
	// window stays full for every pass.
	if m := bs.MeanOccupancy(); m != 2 {
		t.Fatalf("mean occupancy %v, want 2 for twin simulations", m)
	}
}
