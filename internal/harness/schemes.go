package harness

import (
	"fmt"

	"rair/internal/core"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/topology"
)

// SelectorKind names the output-selection function of a scheme.
type SelectorKind int

const (
	// SelLocal is credit-based local selection.
	SelLocal SelectorKind = iota
	// SelDBAR is region-clipped non-local congestion selection.
	SelDBAR
)

// Scheme is one interference-reduction technique under evaluation: an
// arbitration policy plus a routing algorithm/selector combination. All the
// paper's schemes use minimal adaptive routing with Duato escape VCs
// (Section V.A); they differ in policy and selection function.
type Scheme struct {
	Name     string
	Policy   policy.Factory
	Selector SelectorKind
}

// Alg returns the scheme's routing algorithm for a mesh.
func (s Scheme) Alg(mesh *topology.Mesh) routing.Algorithm {
	return routing.MinimalAdaptive{Mesh: mesh}
}

// Sel returns the scheme's selection function.
func (s Scheme) Sel(regions *region.Map, cfg router.Config) routing.Selector {
	if s.Selector == SelDBAR {
		return routing.DBARSelector{Mesh: regions.Mesh(), Regions: regions, Depth: cfg.Depth * cfg.VCsPerPort()}
	}
	return routing.LocalSelector{}
}

// RORR is the region-oblivious round-robin baseline with local selection.
func RORR() Scheme {
	return Scheme{Name: "RO_RR", Policy: policy.NewRoundRobin}
}

// RORRDBAR is round-robin arbitration over DBAR routing (RO_RR_DBAR in
// Figure 10, RA_DBAR in Figures 14-17: DBAR's region-aware selection is the
// interference-reduction mechanism).
func RORRDBAR(name string) Scheme {
	return Scheme{Name: name, Policy: policy.NewRoundRobin, Selector: SelDBAR}
}

// RORank is the idealized STC with the given oracle ranking (rank 0 =
// least network-intensive = highest priority).
func RORank(ranks []int) Scheme {
	return Scheme{Name: "RO_Rank", Policy: policy.NewRankFactory(ranks)}
}

// RAIR is the full technique (DPA + MSP at VA and SA) with local selection.
func RAIR(name string) Scheme {
	return Scheme{Name: name, Policy: core.NewFactory(core.Config{Label: name})}
}

// RAIRDBAR is the full technique over DBAR routing (RAIR_DBAR in Figure 10).
func RAIRDBAR(name string) Scheme {
	return Scheme{Name: name, Policy: core.NewFactory(core.Config{Label: name}), Selector: SelDBAR}
}

// RAIRVA is the Figure 9 ablation with MSP enforced only at the VA stage.
func RAIRVA() Scheme {
	return Scheme{Name: "RAIR_VA", Policy: core.NewFactory(core.Config{VAOnly: true})}
}

// RAIRNativeH / RAIRForeignH are the Figure 12 ablations without DPA.
func RAIRNativeH() Scheme {
	return Scheme{Name: "RAIR_NativeH", Policy: core.NewFactory(core.Config{Mode: core.ModeNativeHigh})}
}

// RAIRForeignH statically favors foreign traffic.
func RAIRForeignH() Scheme {
	return Scheme{Name: "RAIR_ForeignH", Policy: core.NewFactory(core.Config{Mode: core.ModeForeignHigh})}
}

// RAIRDelta is RAIR with a specific DPA hysteresis width (the Section IV.C
// Δ ablation). delta = 0 means genuinely no hysteresis (core.Config treats
// zero as "use default", so it is mapped to a negligible width here).
func RAIRDelta(delta float64) Scheme {
	if delta == 0 {
		delta = 1e-12
	}
	return Scheme{Name: "RAIR", Policy: core.NewFactory(core.Config{Delta: delta})}
}

// RAIRVCSplit is RAIR with a custom regional/global VC split; the router
// configuration itself carries the split, so this just names the scheme.
func RAIRVCSplit(name string) Scheme {
	return Scheme{Name: name, Policy: core.NewFactory(core.Config{Label: name})}
}

// SchemeByName resolves the evaluation schemes by their report names.
// RO_Rank gets the identity ranking over 8 apps unless built explicitly
// with RORank.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "RO_RR":
		return RORR(), nil
	case "RO_Rank":
		ranks := make([]int, 8)
		for i := range ranks {
			ranks[i] = i
		}
		return RORank(ranks), nil
	case "RA_DBAR", "RO_RR_DBAR":
		return RORRDBAR(name), nil
	case "RA_RAIR", "RAIR", "RAIR_Local", "RAIR_VA+SA":
		return RAIR(name), nil
	case "RAIR_DBAR":
		return RAIRDBAR(name), nil
	case "RAIR_VA":
		return RAIRVA(), nil
	case "RAIR_NativeH":
		return RAIRNativeH(), nil
	case "RAIR_ForeignH":
		return RAIRForeignH(), nil
	}
	return Scheme{}, fmt.Errorf("harness: unknown scheme %q", name)
}
