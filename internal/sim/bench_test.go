package sim

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Intn(64)
	}
}

func BenchmarkBoundedPushPop(b *testing.B) {
	q := NewBounded[int](5)
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

// BenchmarkDelayLineShift measures the per-cycle cost of advancing a link
// wire in its two steady shapes: "empty" is the idle-path floor every
// quiescent-but-recently-active link pays, "occupied" the full shift with a
// value entering and leaving every cycle.
func BenchmarkDelayLineShift(b *testing.B) {
	b.Run("empty", func(b *testing.B) {
		d := NewDelayLine[int](3)
		for i := 0; i < b.N; i++ {
			d.Shift()
		}
	})
	b.Run("occupied", func(b *testing.B) {
		d := NewDelayLine[int](3)
		for i := 0; i < b.N; i++ {
			if d.CanPush() {
				d.Push(i)
			}
			d.Shift()
		}
	})
}
