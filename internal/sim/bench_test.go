package sim

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Intn(64)
	}
}

func BenchmarkBoundedPushPop(b *testing.B) {
	q := NewBounded[int](5)
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}
