package sim

// Tickable is implemented by every component that advances one cycle at a
// time. Components must interact only through state that is latched across
// cycles (delay lines, next-cycle registers) so that the relative tick order
// of independent components cannot change results.
type Tickable interface {
	Tick(cycle int64)
}

// TickFunc adapts a plain function to the Tickable interface.
type TickFunc func(cycle int64)

// Tick implements Tickable.
func (f TickFunc) Tick(cycle int64) { f(cycle) }

// Engine drives a set of Tickables through simulated cycles. It is a thin,
// deterministic scheduler: components are ticked in registration order every
// cycle.
type Engine struct {
	now   int64
	parts []Tickable
	hooks []func(cycle int64)
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current cycle (the number of completed cycles).
func (e *Engine) Now() int64 { return e.now }

// Register adds a component; it will be ticked every cycle in registration
// order.
func (e *Engine) Register(t Tickable) { e.parts = append(e.parts, t) }

// OnCycle registers a hook invoked after all components have ticked in a
// cycle. Hooks run in registration order; they are used for statistics
// sampling and invariant checks.
func (e *Engine) OnCycle(f func(cycle int64)) { e.hooks = append(e.hooks, f) }

// Step advances the simulation by one cycle.
func (e *Engine) Step() {
	c := e.now
	for _, t := range e.parts {
		t.Tick(c)
	}
	for _, h := range e.hooks {
		h(c)
	}
	e.now++
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		e.Step()
	}
}

// RunUntil advances cycles until done returns true or limit cycles elapse.
// It reports whether done was satisfied.
func (e *Engine) RunUntil(done func() bool, limit int64) bool {
	for i := int64(0); i < limit; i++ {
		if done() {
			return true
		}
		e.Step()
	}
	return done()
}
