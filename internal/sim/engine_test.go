package sim

import "testing"

type recorder struct {
	id    int
	trace *[]int
}

func (r *recorder) Tick(int64) { *r.trace = append(*r.trace, r.id) }

func TestEngineTickOrder(t *testing.T) {
	e := NewEngine()
	var trace []int
	for i := 0; i < 3; i++ {
		e.Register(&recorder{id: i, trace: &trace})
	}
	e.Run(2)
	want := []int{0, 1, 2, 0, 1, 2}
	if len(trace) != len(want) {
		t.Fatalf("trace len %d, want %d", len(trace), len(want))
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %d, want %d", i, trace[i], want[i])
		}
	}
	if e.Now() != 2 {
		t.Fatalf("Now = %d, want 2", e.Now())
	}
}

func TestEngineHooksRunAfterComponents(t *testing.T) {
	e := NewEngine()
	var trace []int
	e.Register(&recorder{id: 1, trace: &trace})
	e.OnCycle(func(int64) { trace = append(trace, 99) })
	e.Run(3)
	for i := 0; i < len(trace); i += 2 {
		if trace[i] != 1 || trace[i+1] != 99 {
			t.Fatalf("hook ordering broken: %v", trace)
		}
	}
}

func TestEngineHookSeesCycle(t *testing.T) {
	e := NewEngine()
	var cycles []int64
	e.OnCycle(func(c int64) { cycles = append(cycles, c) })
	e.Run(4)
	for i, c := range cycles {
		if c != int64(i) {
			t.Fatalf("hook cycle %d = %d", i, c)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	e.OnCycle(func(int64) { n++ })
	if !e.RunUntil(func() bool { return n >= 5 }, 100) {
		t.Fatal("RunUntil failed to satisfy condition")
	}
	if n != 5 {
		t.Fatalf("ran %d cycles, want 5", n)
	}
	if e.RunUntil(func() bool { return false }, 10) {
		t.Fatal("RunUntil reported success for impossible condition")
	}
}
