package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	var or uint64
	for i := 0; i < 64; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("zero seed produced an all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(7)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d far from expectation %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v far from 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(5)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if f := float64(hits) / trials; math.Abs(f-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", f)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8 % 50)
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a, b := NewRNG(11), NewRNG(11)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("split children of identical parents diverged")
		}
	}
}
