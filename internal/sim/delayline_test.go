package sim

import (
	"testing"
	"testing/quick"
)

func TestDelayLineLatency(t *testing.T) {
	for _, lat := range []int{1, 2, 3, 7} {
		d := NewDelayLine[int](lat)
		d.Push(42)
		for c := 0; c < lat-1; c++ {
			if _, ok := d.Shift(); ok {
				t.Fatalf("lat=%d: value emerged after %d shifts", lat, c+1)
			}
		}
		if v, ok := d.Shift(); !ok || v != 42 {
			t.Fatalf("lat=%d: value did not emerge after %d shifts", lat, lat)
		}
	}
}

func TestDelayLineOnePerCycle(t *testing.T) {
	d := NewDelayLine[int](3)
	if !d.CanPush() {
		t.Fatal("fresh line refuses push")
	}
	d.Push(1)
	if d.CanPush() {
		t.Fatal("second push in the same cycle allowed")
	}
	d.Shift()
	if !d.CanPush() {
		t.Fatal("push refused after Shift")
	}
}

func TestDelayLinePipelining(t *testing.T) {
	// A latency-2 line should sustain one value per cycle.
	d := NewDelayLine[int](2)
	var got []int
	for c := 0; c < 10; c++ {
		if v, ok := d.Shift(); ok {
			got = append(got, v)
		}
		if d.CanPush() {
			d.Push(c)
		} else {
			t.Fatalf("cycle %d: pipeline stalled", c)
		}
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out-of-order delivery: got[%d]=%d", i, v)
		}
	}
	if len(got) != 8 { // values 0..7 have emerged by cycle 9
		t.Fatalf("delivered %d values, want 8", len(got))
	}
}

func TestDelayLineBusyDrain(t *testing.T) {
	d := NewDelayLine[int](4)
	if d.Busy() {
		t.Fatal("fresh line busy")
	}
	d.Push(1)
	d.Shift()
	d.Push(2)
	if !d.Busy() {
		t.Fatal("line with in-flight values not busy")
	}
	if n := d.Drain(); n != 2 {
		t.Fatalf("Drain = %d, want 2", n)
	}
	if d.Busy() {
		t.Fatal("busy after drain")
	}
}

func TestDelayLineZeroLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDelayLine[int](0)
}

// Property: values always emerge exactly latency cycles after the push, in
// push order.
func TestDelayLineExactLatency(t *testing.T) {
	if err := quick.Check(func(lat8 uint8, pattern []bool) bool {
		lat := int(lat8%5) + 1
		d := NewDelayLine[int](lat)
		pushCycle := map[int]int{}
		next := 0
		for c := 0; c < len(pattern)+lat+1; c++ {
			if v, ok := d.Shift(); ok {
				if c != pushCycle[v]+lat {
					return false
				}
			}
			if c < len(pattern) && pattern[c] && d.CanPush() {
				pushCycle[next] = c
				d.Push(next)
				next++
			}
		}
		return !d.Busy()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
