// Package sim provides the deterministic simulation kernel shared by all
// subsystems: a seedable pseudo-random number generator, fixed-capacity
// queues, fixed-latency delay lines and the cycle engine.
//
// Every stochastic decision in the simulator flows through RNG so that a
// simulation is a pure function of its configuration and seed; the harness
// exploits this to run parameter sweeps on parallel goroutines while keeping
// each data point exactly reproducible.
package sim

// RNG is a xoshiro256** pseudo-random number generator seeded through
// SplitMix64. It is deliberately not safe for concurrent use: each simulation
// owns its generators and runs on a single goroutine.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator whose stream is fully determined by seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed using SplitMix64, which
// guarantees a well-mixed non-zero internal state for any seed value.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := (-uint64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from this one. The child stream is
// a deterministic function of the parent state, so splitting is itself
// reproducible.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}
