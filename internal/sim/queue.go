package sim

// Queue is a growable FIFO backed by a ring buffer. The zero value is ready
// to use. It is the building block for source queues and flit buffers.
type Queue[T any] struct {
	buf        []T
	head, size int
}

// NewQueue returns a queue with capacity pre-allocated for n elements.
func NewQueue[T any](n int) *Queue[T] {
	if n < 1 {
		n = 1
	}
	return &Queue[T]{buf: make([]T, n)}
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return q.size }

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return q.size == 0 }

// Push appends v at the tail, growing the ring if needed.
func (q *Queue[T]) Push(v T) {
	if q.size == len(q.buf) {
		q.grow()
	}
	i := q.head + q.size
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = v
	q.size++
}

func (q *Queue[T]) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 4
	}
	nb := make([]T, n)
	for i := 0; i < q.size; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// Pop removes and returns the head element. ok is false on an empty queue.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	if q.head++; q.head == len(q.buf) {
		q.head = 0
	}
	q.size--
	return v, true
}

// Peek returns the head element without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// At returns the i-th element from the head (0 = head). It panics if i is
// out of range.
func (q *Queue[T]) At(i int) T {
	if i < 0 || i >= q.size {
		panic("sim: Queue.At out of range")
	}
	if i += q.head; i >= len(q.buf) {
		i -= len(q.buf)
	}
	return q.buf[i]
}

// Clear drops all elements, retaining the allocation.
func (q *Queue[T]) Clear() {
	var zero T
	for i := 0; i < q.size; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head, q.size = 0, 0
}

// Bounded is a fixed-capacity FIFO ring used for hardware buffers whose
// depth models a real resource (e.g. a VC flit buffer). Push on a full
// Bounded panics: in a credit-correct simulation that is a logic error, and
// failing loudly catches flow-control bugs immediately.
type Bounded[T any] struct {
	buf        []T
	head, size int
}

// NewBounded returns a ring of exactly depth slots.
func NewBounded[T any](depth int) *Bounded[T] {
	if depth < 1 {
		panic("sim: Bounded depth must be >= 1")
	}
	return &Bounded[T]{buf: make([]T, depth)}
}

// MakeBounded returns a ring of exactly depth slots by value, for embedding
// directly in a larger struct (keeping the element storage one indirection
// away instead of two).
func MakeBounded[T any](depth int) Bounded[T] {
	if depth < 1 {
		panic("sim: Bounded depth must be >= 1")
	}
	return Bounded[T]{buf: make([]T, depth)}
}

// BoundedOver returns a ring whose element storage is the caller-supplied
// slice (len(buf) slots). The network uses it to carve every VC flit buffer
// out of one contiguous per-shard slab.
func BoundedOver[T any](buf []T) Bounded[T] {
	if len(buf) < 1 {
		panic("sim: Bounded depth must be >= 1")
	}
	return Bounded[T]{buf: buf}
}

// Cap reports the fixed capacity.
func (b *Bounded[T]) Cap() int { return len(b.buf) }

// Len reports the number of buffered elements.
func (b *Bounded[T]) Len() int { return b.size }

// Empty reports whether the ring holds no elements.
func (b *Bounded[T]) Empty() bool { return b.size == 0 }

// Full reports whether the ring is at capacity.
func (b *Bounded[T]) Full() bool { return b.size == len(b.buf) }

// Push appends v; it panics if the ring is full.
func (b *Bounded[T]) Push(v T) {
	if b.Full() {
		panic("sim: Bounded overflow (flow-control violation)")
	}
	i := b.head + b.size
	if i >= len(b.buf) {
		i -= len(b.buf)
	}
	b.buf[i] = v
	b.size++
}

// Pop removes and returns the head element.
func (b *Bounded[T]) Pop() (v T, ok bool) {
	if b.size == 0 {
		return v, false
	}
	v = b.buf[b.head]
	var zero T
	b.buf[b.head] = zero
	if b.head++; b.head == len(b.buf) {
		b.head = 0
	}
	b.size--
	return v, true
}

// Peek returns the head element without removing it.
func (b *Bounded[T]) Peek() (v T, ok bool) {
	if b.size == 0 {
		return v, false
	}
	return b.buf[b.head], true
}

// At returns the i-th element from the head (0 = head). It panics if i is
// out of range.
func (b *Bounded[T]) At(i int) T {
	if i < 0 || i >= b.size {
		panic("sim: Bounded.At out of range")
	}
	if i += b.head; i >= len(b.buf) {
		i -= len(b.buf)
	}
	return b.buf[i]
}
