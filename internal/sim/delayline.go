package sim

// DelayLine models a fixed-latency pipeline register chain (a link, a credit
// return wire). A value pushed at cycle t pops out exactly latency cycles
// later. The line must be advanced exactly once per simulated cycle via
// Shift; a cheap occupancy counter lets idle links skip work.
//
// At most one value may enter per cycle, matching a single-flit-wide link.
//
// The ring indices are maintained with conditional wraps instead of modulo
// arithmetic: Shift and CanPush sit on the simulator's hottest path (every
// busy link, every cycle) and an integer division per call is measurable.
type DelayLine[T any] struct {
	slots  []slot[T]
	head   int // index shifted out next
	tail   int // entry register: index pushes land in
	count  int
	pushed bool // guards one-push-per-cycle
	full   bool // shadows slots[tail].valid so CanPush reads no slot memory

	// arr is inline ring storage: lines of latency <= len(arr) point slots
	// at it, so short wires (the common case — credit wires are latency 1,
	// flit wires default to 2) live in the same cache lines as the header
	// and cost no separate allocation. Because slots then aliases arr, an
	// initialized DelayLine must never be copied by value; Init only runs
	// against the line's final address.
	arr [4]slot[T]
}

type slot[T any] struct {
	v     T
	valid bool
}

// NewDelayLine returns a line of the given latency (>= 1).
func NewDelayLine[T any](latency int) *DelayLine[T] {
	d := &DelayLine[T]{}
	d.Init(latency)
	return d
}

// Init initializes d in place with the given latency (>= 1), using the
// inline ring when the latency fits. d must already sit at its final
// address and must not be copied afterwards.
func (d *DelayLine[T]) Init(latency int) {
	if latency < 1 {
		panic("sim: DelayLine latency must be >= 1")
	}
	*d = DelayLine[T]{tail: latency - 1}
	if latency <= len(d.arr) {
		d.slots = d.arr[:latency:latency]
	} else {
		d.slots = make([]slot[T], latency)
	}
}

// Latency reports the configured latency in cycles.
func (d *DelayLine[T]) Latency() int { return len(d.slots) }

// Busy reports whether any value is in flight.
func (d *DelayLine[T]) Busy() bool { return d.count > 0 }

// CanPush reports whether a value may enter this cycle (one per cycle, and
// the entry register must be free).
func (d *DelayLine[T]) CanPush() bool {
	return !d.pushed && !d.full
}

// Push inserts v at the entry register. It panics if CanPush is false.
func (d *DelayLine[T]) Push(v T) {
	if !d.CanPush() {
		panic("sim: DelayLine double push or entry occupied")
	}
	d.slots[d.tail] = slot[T]{v: v, valid: true}
	d.count++
	d.pushed = true
	d.full = true
}

// Shift advances the line one cycle and returns the value (if any) that has
// completed its traversal. Call exactly once per cycle, before any Push for
// that cycle.
func (d *DelayLine[T]) Shift() (v T, ok bool) {
	d.pushed = false
	out := d.slots[d.head]
	var zero slot[T]
	d.slots[d.head] = zero
	// The new entry register is the just-vacated head slot.
	d.tail = d.head
	d.full = false
	if d.head++; d.head == len(d.slots) {
		d.head = 0
	}
	if out.valid {
		d.count--
		return out.v, true
	}
	return v, false
}

// Len reports how many values are in flight.
func (d *DelayLine[T]) Len() int { return d.count }

// Each calls fn for every in-flight value, oldest (next to exit) first. It
// is a read-only audit hook for invariant checking.
func (d *DelayLine[T]) Each(fn func(T)) {
	for i := 0; i < len(d.slots); i++ {
		s := d.slots[(d.head+i)%len(d.slots)]
		if s.valid {
			fn(s.v)
		}
	}
}

// Drain empties the line, returning how many in-flight values were dropped.
func (d *DelayLine[T]) Drain() int {
	n := d.count
	for i := range d.slots {
		var zero slot[T]
		d.slots[i] = zero
	}
	d.count = 0
	d.pushed = false
	d.full = false
	return n
}
