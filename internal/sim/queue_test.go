package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](2)
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
}

func TestQueuePeekAt(t *testing.T) {
	q := NewQueue[string](1)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty reported ok")
	}
	q.Push("a")
	q.Push("b")
	q.Push("c")
	q.Pop() // force wrap later
	q.Push("d")
	if v, _ := q.Peek(); v != "b" {
		t.Fatalf("Peek = %q", v)
	}
	if v := q.At(2); v != "d" {
		t.Fatalf("At(2) = %q", v)
	}
}

func TestQueueAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue[int](1).At(0)
}

func TestQueueClear(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	q.Clear()
	if !q.Empty() {
		t.Fatal("not empty after Clear")
	}
	q.Push(7)
	if v, _ := q.Pop(); v != 7 {
		t.Fatal("queue unusable after Clear")
	}
}

// Property: an interleaved push/pop sequence behaves like a reference slice
// implementation.
func TestQueueMatchesReference(t *testing.T) {
	if err := quick.Check(func(ops []int16) bool {
		q := NewQueue[int16](1)
		var ref []int16
		for _, op := range ops {
			if op%3 == 0 && len(ref) > 0 { // pop
				want := ref[0]
				ref = ref[1:]
				got, ok := q.Pop()
				if !ok || got != want {
					return false
				}
			} else { // push
				ref = append(ref, op)
				q.Push(op)
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedCapacityAndOrder(t *testing.T) {
	b := NewBounded[int](3)
	if b.Cap() != 3 || !b.Empty() {
		t.Fatal("bad initial state")
	}
	b.Push(1)
	b.Push(2)
	b.Push(3)
	if !b.Full() {
		t.Fatal("should be full")
	}
	for want := 1; want <= 3; want++ {
		v, ok := b.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
}

func TestBoundedOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	b := NewBounded[int](1)
	b.Push(1)
	b.Push(2)
}

func TestBoundedWrap(t *testing.T) {
	b := NewBounded[int](2)
	for i := 0; i < 50; i++ {
		b.Push(i)
		if v, ok := b.Pop(); !ok || v != i {
			t.Fatalf("wrap iteration %d", i)
		}
	}
}

func TestBoundedDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for depth 0")
		}
	}()
	NewBounded[int](0)
}
