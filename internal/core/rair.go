// Package core implements RAIR, the paper's region-aware interference
// reduction technique, as a router arbitration policy composed of its three
// mechanisms:
//
//   - VC regionalization: output VCs are tagged global or regional; foreign
//     traffic always outranks native traffic on global VCs, while the
//     priority on regional VCs follows the DPA state (Section IV.A).
//   - Multi-stage prioritization (MSP): the same native/foreign priority is
//     enforced at VA output arbitration and, unless configured VA-only, at
//     both SA arbitration steps (Section IV.B).
//   - Dynamic priority adaptation (DPA): per-router occupied-VC registers
//     for native (OVC_n) and foreign (OVC_f) traffic drive a hysteresis
//     state machine on the ratio r = OVC_f/OVC_n with band (1-Δ, 1+Δ);
//     native traffic is high priority only while foreign intensity exceeds
//     native intensity (Section IV.C, Figure 7). Priority computed in one
//     cycle is used in the next, keeping DPA off the critical path.
//
// Starvation freedom comes from DPA's negative feedback: a flow that
// accumulates VC occupancy loses priority (Section IV.D); see the network
// integration tests for the empirical check.
package core

import "rair/internal/policy"

// PriorityMode selects how the native/foreign priority on regional VCs and
// in the SA stage is determined.
type PriorityMode int

const (
	// ModeDPA adapts the priority dynamically (the full RAIR mechanism).
	ModeDPA PriorityMode = iota
	// ModeNativeHigh statically favors native traffic (the paper's
	// RAIR_NativeH ablation).
	ModeNativeHigh
	// ModeForeignHigh statically favors foreign traffic (RAIR_ForeignH).
	ModeForeignHigh
)

func (m PriorityMode) String() string {
	switch m {
	case ModeDPA:
		return "DPA"
	case ModeNativeHigh:
		return "NativeH"
	case ModeForeignHigh:
		return "ForeignH"
	}
	return "Mode(?)"
}

// Config parameterizes the RAIR policy, mostly for the paper's ablations.
type Config struct {
	// Mode selects DPA or the static ablation priorities. Default DPA.
	Mode PriorityMode
	// VAOnly restricts MSP to the VA stage (the RAIR_VA ablation of
	// Figure 9); SA arbitration falls back to round-robin.
	VAOnly bool
	// Delta is the DPA hysteresis width Δ; the paper observes 0.1-0.3
	// works well with the best value around 0.2 (the default).
	Delta float64
	// Label overrides the reported name (e.g. "RAIR_VA", "RA_RAIR").
	Label string
}

// DefaultDelta is the hysteresis width the paper settles on.
const DefaultDelta = 0.2

// RAIR is the per-router policy state.
type RAIR struct {
	cfg Config
	// nativeHigh is the DPA state: whether native traffic currently has
	// the high priority. The paper's default is foreign-high (global
	// traffic is typically more critical), so the state starts false.
	nativeHigh bool

	// Duty-cycle instrumentation: cycles spent in each state (ablation
	// reports and tests).
	nativeHighCycles int64
	totalCycles      int64

	// Priority lookup tables (the policy.Tabular facet), rewritten on
	// every DPA state change: saTab by native, vaTab by [class][native].
	saTab [2]int8
	vaTab [3][2]int8
}

// New returns a RAIR policy instance for one router.
func New(cfg Config) *RAIR {
	if cfg.Delta == 0 {
		cfg.Delta = DefaultDelta
	}
	if cfg.Delta < 0 {
		panic("core: negative DPA hysteresis")
	}
	p := &RAIR{cfg: cfg}
	p.refreshTables()
	return p
}

// PriorityTables implements policy.Tabular: RAIR's priorities depend only
// on (native, class, DPA state), so they tabulate exactly.
func (p *RAIR) PriorityTables() (*[2]int8, *[3][2]int8) { return &p.saTab, &p.vaTab }

// refreshTables re-derives the lookup tables from the current DPA state.
// It must mirror VAOutPriority/SAPriority exactly; TestTablesMatchInterface
// cross-checks the two.
func (p *RAIR) refreshTables() {
	for nat := 0; nat < 2; nat++ {
		r := policy.Requestor{Native: nat == 1}
		p.saTab[nat] = int8(p.SAPriority(r, 0))
		for cls := 0; cls < 3; cls++ {
			p.vaTab[cls][nat] = int8(p.VAOutPriority(r, policy.VCClass(cls), 0))
		}
	}
}

// NewFactory returns a policy.Factory producing one RAIR instance per
// router (DPA state is per-router).
func NewFactory(cfg Config) policy.Factory {
	return func(node, app int) policy.Policy { return New(cfg) }
}

// Name implements policy.Policy.
func (p *RAIR) Name() string {
	if p.cfg.Label != "" {
		return p.cfg.Label
	}
	switch {
	case p.cfg.VAOnly:
		return "RAIR_VA"
	case p.cfg.Mode == ModeNativeHigh:
		return "RAIR_NativeH"
	case p.cfg.Mode == ModeForeignHigh:
		return "RAIR_ForeignH"
	}
	return "RA_RAIR"
}

// DutyCycle reports the fraction of cycles spent with native traffic at
// high priority (0 if the policy has not run).
func (p *RAIR) DutyCycle() float64 {
	if p.totalCycles == 0 {
		return 0
	}
	return float64(p.nativeHighCycles) / float64(p.totalCycles)
}

// NativeHigh exposes the current DPA state (for tests and ablation
// instrumentation).
func (p *RAIR) NativeHigh() bool {
	switch p.cfg.Mode {
	case ModeNativeHigh:
		return true
	case ModeForeignHigh:
		return false
	}
	return p.nativeHigh
}

// VAOutPriority implements policy.Policy: the VC regionalization rules.
// On global VCs foreign traffic always has priority; on regional VCs the
// DPA state decides; escape VCs stay fair (they are a deadlock-safety
// resource outside the regional/global classification).
func (p *RAIR) VAOutPriority(r policy.Requestor, cls policy.VCClass, _ int64) int {
	switch cls {
	case policy.VCGlobal:
		if !r.Native {
			return 1
		}
		return 0
	case policy.VCRegional:
		return p.priorityOf(r)
	}
	return 0
}

// SAPriority implements policy.Policy: MSP at SA_in/SA_out, using the same
// DPA-produced priority as VA for consistency across stages (Section IV.B).
func (p *RAIR) SAPriority(r policy.Requestor, _ int64) int {
	if p.cfg.VAOnly {
		return 0
	}
	return p.priorityOf(r)
}

func (p *RAIR) priorityOf(r policy.Requestor) int {
	if p.NativeHigh() == r.Native {
		return 1
	}
	return 0
}

// Update implements policy.Policy: the DPA hysteresis transition of
// Figure 7. The ratio r = OVC_f / OVC_n is compared against (1±Δ); the
// native priority rises only once foreign occupancy exceeds native
// occupancy by the hysteresis margin, and falls symmetrically. A zero
// OVC_n with nonzero OVC_f is an infinite ratio (native high); when both
// registers are zero the state holds (nothing to adapt to).
func (p *RAIR) Update(ovcNative, ovcForeign int) {
	p.totalCycles++
	if p.NativeHigh() {
		p.nativeHighCycles++
	}
	if p.cfg.Mode != ModeDPA {
		return
	}
	n, f := float64(ovcNative), float64(ovcForeign)
	if !p.nativeHigh {
		if f > (1+p.cfg.Delta)*n && ovcForeign > 0 {
			p.nativeHigh = true
			p.refreshTables()
		}
	} else {
		if f < (1-p.cfg.Delta)*n {
			p.nativeHigh = false
			p.refreshTables()
		}
	}
}
