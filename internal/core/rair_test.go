package core

import (
	"testing"
	"testing/quick"

	"rair/internal/policy"
)

var (
	native  = policy.Requestor{App: 0, Native: true}
	foreign = policy.Requestor{App: 1, Native: false, Global: true}
)

func TestNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "RA_RAIR"},
		{Config{VAOnly: true}, "RAIR_VA"},
		{Config{Mode: ModeNativeHigh}, "RAIR_NativeH"},
		{Config{Mode: ModeForeignHigh}, "RAIR_ForeignH"},
		{Config{Label: "custom"}, "custom"},
	}
	for _, c := range cases {
		if got := New(c.cfg).Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestGlobalVCAlwaysForeignFirst(t *testing.T) {
	// On global VCs foreign traffic outranks native regardless of DPA
	// state or mode (Section IV.A).
	for _, mode := range []PriorityMode{ModeDPA, ModeNativeHigh, ModeForeignHigh} {
		p := New(Config{Mode: mode})
		p.Update(0, 10) // try to flip DPA state
		nf := p.VAOutPriority(native, policy.VCGlobal, 0)
		ff := p.VAOutPriority(foreign, policy.VCGlobal, 0)
		if ff <= nf {
			t.Errorf("mode %v: foreign %d <= native %d on global VC", mode, ff, nf)
		}
	}
}

func TestEscapeVCFlat(t *testing.T) {
	p := New(Config{})
	if p.VAOutPriority(native, policy.VCEscape, 0) != p.VAOutPriority(foreign, policy.VCEscape, 0) {
		t.Fatal("escape VCs must stay fair")
	}
}

func TestDefaultForeignHigh(t *testing.T) {
	// The DPA default is foreign-high (global traffic is typically more
	// critical).
	p := New(Config{})
	if p.NativeHigh() {
		t.Fatal("fresh DPA state must be foreign-high")
	}
	if p.SAPriority(foreign, 0) <= p.SAPriority(native, 0) {
		t.Fatal("foreign must win SA by default")
	}
	if p.VAOutPriority(foreign, policy.VCRegional, 0) <= p.VAOutPriority(native, policy.VCRegional, 0) {
		t.Fatal("foreign must win regional VCs by default")
	}
}

func TestDPAHysteresisTransitions(t *testing.T) {
	p := New(Config{Delta: 0.2})
	// Ratio must exceed 1.2 to raise native priority.
	p.Update(10, 11) // r = 1.1, inside band
	if p.NativeHigh() {
		t.Fatal("transition inside hysteresis band")
	}
	p.Update(10, 13) // r = 1.3 > 1.2
	if !p.NativeHigh() {
		t.Fatal("no transition above band")
	}
	// Falling back requires dropping below 0.8.
	p.Update(10, 9) // r = 0.9, inside band: hold
	if !p.NativeHigh() {
		t.Fatal("dropped priority inside band")
	}
	p.Update(10, 7) // r = 0.7 < 0.8
	if p.NativeHigh() {
		t.Fatal("no fallback below band")
	}
}

func TestDPAZeroEdges(t *testing.T) {
	p := New(Config{})
	p.Update(0, 0) // nothing occupied: hold default
	if p.NativeHigh() {
		t.Fatal("state changed with empty registers")
	}
	p.Update(0, 3) // infinite ratio: native high
	if !p.NativeHigh() {
		t.Fatal("zero native occupancy must give native priority")
	}
	p.Update(0, 0) // hold again
	if !p.NativeHigh() {
		t.Fatal("state must hold when both registers are zero")
	}
	p.Update(5, 0) // r = 0: back to foreign-high
	if p.NativeHigh() {
		t.Fatal("zero foreign occupancy must give foreign priority")
	}
}

func TestStaticModesIgnoreUpdate(t *testing.T) {
	nh := New(Config{Mode: ModeNativeHigh})
	fh := New(Config{Mode: ModeForeignHigh})
	for i := 0; i < 5; i++ {
		nh.Update(0, 100)
		fh.Update(100, 0)
	}
	if !nh.NativeHigh() || fh.NativeHigh() {
		t.Fatal("static modes must not adapt")
	}
	if nh.SAPriority(native, 0) <= nh.SAPriority(foreign, 0) {
		t.Fatal("NativeH must favor native")
	}
	if fh.SAPriority(foreign, 0) <= fh.SAPriority(native, 0) {
		t.Fatal("ForeignH must favor foreign")
	}
}

func TestVAOnlyDisablesSA(t *testing.T) {
	p := New(Config{VAOnly: true})
	if p.SAPriority(native, 0) != p.SAPriority(foreign, 0) {
		t.Fatal("VA-only RAIR must leave SA flat")
	}
	// VA rules still apply.
	if p.VAOutPriority(foreign, policy.VCGlobal, 0) <= p.VAOutPriority(native, policy.VCGlobal, 0) {
		t.Fatal("VA rules must still hold")
	}
}

func TestSAConsistentWithRegionalVA(t *testing.T) {
	// Section IV.B: the same DPA priority is used for VA_out, SA_in and
	// SA_out at a given time.
	p := New(Config{})
	check := func() {
		for _, r := range []policy.Requestor{native, foreign} {
			if p.SAPriority(r, 0) != p.VAOutPriority(r, policy.VCRegional, 0) {
				t.Fatal("SA and regional-VC priorities diverged")
			}
		}
	}
	check()
	p.Update(1, 10)
	check()
}

// Property: the DPA state machine is a pure function of the update history;
// with ratio far outside the band it always lands in the matching state.
func TestDPAConvergence(t *testing.T) {
	if err := quick.Check(func(updates []bool) bool {
		p := New(Config{})
		for _, up := range updates {
			if up {
				p.Update(1, 10)
			} else {
				p.Update(10, 1)
			}
		}
		if len(updates) == 0 {
			return !p.NativeHigh()
		}
		return p.NativeHigh() == updates[len(updates)-1]
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DPA acts as negative feedback — the flow with more occupancy
// never holds the high priority (outside the hysteresis band).
func TestDPANegativeFeedback(t *testing.T) {
	if err := quick.Check(func(n8, f8 uint8) bool {
		n, f := int(n8%40), int(f8%40)
		p := New(Config{Delta: 0.2})
		p.Update(n, f)
		switch {
		case float64(f) > 1.2*float64(n) && f > 0:
			return p.NativeHigh() // foreign dominates: native protected
		case float64(f) < 0.8*float64(n):
			return !p.NativeHigh() // native dominates: foreign protected
		default:
			return !p.NativeHigh() // inside band: initial state holds
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaDefaultAndValidation(t *testing.T) {
	p := New(Config{})
	if p.cfg.Delta != DefaultDelta {
		t.Fatalf("default delta = %v", p.cfg.Delta)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delta")
		}
	}()
	New(Config{Delta: -0.1})
}

func TestFactoryProducesIndependentInstances(t *testing.T) {
	f := NewFactory(Config{})
	a, b := f(0, 0), f(1, 1)
	a.Update(0, 10)
	ra := a.(*RAIR)
	rb := b.(*RAIR)
	if !ra.NativeHigh() || rb.NativeHigh() {
		t.Fatal("router DPA states must be independent")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeDPA.String() != "DPA" || ModeNativeHigh.String() != "NativeH" ||
		ModeForeignHigh.String() != "ForeignH" || PriorityMode(9).String() != "Mode(?)" {
		t.Fatal("mode strings")
	}
}

// TestTablesMatchInterface cross-checks the Tabular fast path against the
// interface methods it shortcuts: for every mode, in both DPA states, the
// lookup tables must return exactly what SAPriority/VAOutPriority return
// for every (native, class) combination. refreshTables and the interface
// methods are maintained by hand in parallel; this is the guard that keeps
// them from drifting.
func TestTablesMatchInterface(t *testing.T) {
	for _, cfg := range []Config{
		{}, {VAOnly: true}, {Mode: ModeNativeHigh}, {Mode: ModeForeignHigh},
	} {
		p := New(cfg)
		check := func(state string) {
			saTab, vaTab := p.PriorityTables()
			for nat := 0; nat < 2; nat++ {
				r := policy.Requestor{Native: nat == 1}
				if got, want := int(saTab[nat]), p.SAPriority(r, 0); got != want {
					t.Errorf("%s %s: saTab[%d]=%d, SAPriority=%d", p.Name(), state, nat, got, want)
				}
				for cls := 0; cls < 3; cls++ {
					if got, want := int(vaTab[cls][nat]), p.VAOutPriority(r, policy.VCClass(cls), 0); got != want {
						t.Errorf("%s %s: vaTab[%d][%d]=%d, VAOutPriority=%d", p.Name(), state, cls, nat, got, want)
					}
				}
			}
		}
		check("initial")
		// Drive the DPA through both states (no-op for the static modes,
		// which must also leave the tables untouched).
		p.Update(1, 100)
		check("foreign-heavy")
		p.Update(100, 1)
		check("native-heavy")
	}
}
