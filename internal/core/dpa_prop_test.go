package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rair/internal/policy"
)

// TestDPAHysteresisTable walks the Figure 7 transitions at the default
// Δ=0.2 band explicitly.
func TestDPAHysteresisTable(t *testing.T) {
	steps := []struct {
		ovcN, ovcF int
		wantHigh   bool
		why        string
	}{
		{4, 4, false, "ratio 1.0 inside band, stays foreign-high"},
		{4, 5, true, "ratio 1.25 > 1.2, native goes high"},
		{4, 4, true, "ratio 1.0 inside band, holds"},
		{5, 4, true, "ratio 0.8 not strictly below 0.8, holds"},
		{5, 3, false, "ratio 0.6 < 0.8, native drops"},
		{5, 6, false, "ratio 1.2 not strictly above 1.2, holds"},
		{0, 1, true, "infinite ratio (OVC_n=0, OVC_f>0), native goes high"},
		{0, 0, true, "both registers zero, nothing to adapt to, holds"},
		{1, 0, false, "ratio 0 < 0.8, native drops"},
		{0, 0, false, "both zero again, holds low"},
	}
	p := New(Config{})
	if p.NativeHigh() {
		t.Fatal("DPA must start foreign-high")
	}
	for i, s := range steps {
		p.Update(s.ovcN, s.ovcF)
		if got := p.NativeHigh(); got != s.wantHigh {
			t.Fatalf("step %d (OVC_n=%d OVC_f=%d): NativeHigh=%v, want %v (%s)",
				i, s.ovcN, s.ovcF, got, s.wantHigh, s.why)
		}
	}
}

// TestDPAHysteresisProperty drives random occupancy sequences through the
// DPA state machine and asserts the hysteresis laws on every step:
//
//   - the priority visible to arbitration during a cycle is computed from
//     the previous cycle's ratio (the state before Update);
//   - the state never transitions while the ratio sits strictly inside the
//     band (1-Δ, 1+Δ);
//   - every transition is justified: up only when OVC_f > (1+Δ)·OVC_n with
//     foreign occupancy present, down only when OVC_f < (1-Δ)·OVC_n.
func TestDPAHysteresisProperty(t *testing.T) {
	check := func(seed int64, dRaw uint8) bool {
		// Δ in (0, 0.5]: the paper's useful range, never zero.
		delta := float64(dRaw%50+1) / 100
		p := New(Config{Delta: delta})
		rng := rand.New(rand.NewSource(seed))
		native := policy.Requestor{Native: true}
		for step := 0; step < 500; step++ {
			ovcN, ovcF := rng.Intn(9), rng.Intn(9)
			before := p.NativeHigh()

			// Previous-cycle property: arbitration this cycle sees the
			// state set by last cycle's Update, no matter what the
			// registers read now.
			wantPrio := 0
			if before {
				wantPrio = 1
			}
			if got := p.VAOutPriority(native, policy.VCRegional, int64(step)); got != wantPrio {
				t.Errorf("seed %d step %d: VA priority %d disagrees with pre-Update state %v",
					seed, step, got, before)
				return false
			}

			p.Update(ovcN, ovcF)
			after := p.NativeHigh()
			n, f := float64(ovcN), float64(ovcF)
			inBand := f > (1-delta)*n && f < (1+delta)*n
			if inBand && after != before {
				t.Errorf("seed %d step %d: transition %v->%v with ratio %v/%v inside (1±%v) band",
					seed, step, before, after, f, n, delta)
				return false
			}
			switch {
			case !before && after:
				if !(f > (1+delta)*n && ovcF > 0) {
					t.Errorf("seed %d step %d: rose with OVC_f=%d OVC_n=%d Δ=%v", seed, step, ovcF, ovcN, delta)
					return false
				}
			case before && !after:
				if !(f < (1-delta)*n) {
					t.Errorf("seed %d step %d: fell with OVC_f=%d OVC_n=%d Δ=%v", seed, step, ovcF, ovcN, delta)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

// TestDPAStaticModesIgnoreOccupancy: the ablation modes pin the priority
// regardless of what Update observes.
func TestDPAStaticModesIgnoreOccupancy(t *testing.T) {
	nh := New(Config{Mode: ModeNativeHigh})
	fh := New(Config{Mode: ModeForeignHigh})
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 100; step++ {
		ovcN, ovcF := rng.Intn(9), rng.Intn(9)
		nh.Update(ovcN, ovcF)
		fh.Update(ovcN, ovcF)
		if !nh.NativeHigh() {
			t.Fatal("ModeNativeHigh lost native priority")
		}
		if fh.NativeHigh() {
			t.Fatal("ModeForeignHigh gained native priority")
		}
	}
}
