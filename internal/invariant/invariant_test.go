package invariant_test

import (
	"strings"
	"testing"

	"rair/internal/faults"
	"rair/internal/invariant"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/topology"
)

// build wires a 4x4 single-region network with the given checker and fault
// configurations.
func build(t testing.TB, chk *invariant.Config, fl *faults.Config) *network.Network {
	t.Helper()
	regions := region.Single(topology.NewMesh(4, 4))
	mesh := regions.Mesh()
	return network.New(network.Params{
		Router:  router.DefaultConfig(1),
		Regions: regions,
		Alg:     routing.MinimalAdaptive{Mesh: mesh},
		Sel:     routing.LocalSelector{},
		Policy:  policy.NewRoundRobin,
		Check:   chk,
		Faults:  fl,
	})
}

func inject(n *network.Network, id uint64, src, dst, size int, now int64) {
	n.NI(src).Inject(&msg.Packet{ID: id, Src: src, Dst: dst, Size: size, Class: msg.ClassRequest}, now)
}

// TestCleanRun: a healthy network under load never violates an invariant.
func TestCleanRun(t *testing.T) {
	n := build(t, &invariant.Config{Mode: invariant.ModeCollect}, nil)
	defer n.Close()
	id := uint64(0)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s != d {
				id++
				inject(n, id, s, d, 3, 0)
			}
		}
	}
	for c := int64(0); c < 20000 && !n.Drained(); c++ {
		n.Tick(c)
	}
	if !n.Drained() {
		t.Fatal("network did not drain")
	}
	if err := n.Checker().Err(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
}

// TestWatchdogTrips: a router whose pipeline never unfreezes wedges its
// traffic; the no-forward-progress watchdog must trip exactly once, naming
// the in-flight count.
func TestWatchdogTrips(t *testing.T) {
	fl := &faults.Config{
		Seed:      1,
		PerRouter: map[int]faults.RouterProfile{10: {StallProb: 1, StallLen: 1 << 30}},
	}
	n := build(t, &invariant.Config{Watchdog: 100, Mode: invariant.ModeCollect}, fl)
	defer n.Close()
	inject(n, 1, 0, 10, 3, 0)
	for c := int64(0); c < 1000; c++ {
		n.Tick(c)
	}
	vs := n.Checker().Violations()
	if len(vs) != 1 {
		t.Fatalf("watchdog violations = %d, want exactly 1: %v", len(vs), n.Checker().Err())
	}
	v := vs[0]
	if v.Check != "watchdog" {
		t.Fatalf("violation check = %q, want watchdog", v.Check)
	}
	if !strings.Contains(v.Msg, "no flit ejected") || !strings.Contains(v.Msg, "in flight") {
		t.Errorf("watchdog message lacks diagnosis: %q", v.Msg)
	}
}

// TestWatchdogDisabled: a negative Watchdog turns the deadlock check off
// even with wedged traffic.
func TestWatchdogDisabled(t *testing.T) {
	fl := &faults.Config{
		Seed:      1,
		PerRouter: map[int]faults.RouterProfile{10: {StallProb: 1, StallLen: 1 << 30}},
	}
	n := build(t, &invariant.Config{Watchdog: -1, Mode: invariant.ModeCollect}, fl)
	defer n.Close()
	inject(n, 1, 0, 10, 3, 0)
	for c := int64(0); c < 1000; c++ {
		n.Tick(c)
	}
	if err := n.Checker().Err(); err != nil {
		t.Fatalf("disabled watchdog still reported: %v", err)
	}
}

// TestCheckingPeriod: with Every=8, a seeded bug is only observed at a
// checking barrier ((cycle+1) divisible by 8).
func TestCheckingPeriod(t *testing.T) {
	n := build(t, &invariant.Config{Every: 8, Mode: invariant.ModeCollect}, nil)
	defer n.Close()
	inject(n, 1, 0, 15, 3, 0)
	for c := int64(0); c < 10; c++ {
		n.Tick(c)
	}
	n.Router(5).DebugDropCredit(topology.East, 0)
	for c := int64(10); c < 40; c++ {
		n.Tick(c)
	}
	vs := n.Checker().Violations()
	if len(vs) == 0 {
		t.Fatal("seeded bug not caught")
	}
	for _, v := range vs {
		if (v.Cycle+1)%8 != 0 {
			t.Fatalf("violation observed at cycle %d, off the Every=8 barrier", v.Cycle)
		}
	}
}

// TestCollectLimit: ModeCollect stops recording at Limit.
func TestCollectLimit(t *testing.T) {
	n := build(t, &invariant.Config{Mode: invariant.ModeCollect, Limit: 3}, nil)
	defer n.Close()
	n.Router(5).DebugDropCredit(topology.East, 0)
	for c := int64(0); c < 50; c++ {
		n.Tick(c)
	}
	if got := len(n.Checker().Violations()); got != 3 {
		t.Fatalf("recorded %d violations with Limit 3", got)
	}
	if err := n.Checker().Err(); err == nil || !strings.Contains(err.Error(), "3 invariant violation(s)") {
		t.Fatalf("Err() = %v", err)
	}
}

// TestPanicMode: the default mode panics on the first violation.
func TestPanicMode(t *testing.T) {
	n := build(t, &invariant.Config{}, nil)
	defer n.Close()
	n.Router(5).DebugDropCredit(topology.East, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic from ModePanic on a seeded bug")
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "credit-accounting") {
			t.Fatalf("panic value %v, want a credit-accounting violation", r)
		}
	}()
	n.Tick(0)
}

// TestHopBound: an artificially tight MaxHops flags legitimate multi-hop
// packets, proving the hop audit observes in-flight traffic.
func TestHopBound(t *testing.T) {
	n := build(t, &invariant.Config{MaxHops: 1, Mode: invariant.ModeCollect}, nil)
	defer n.Close()
	inject(n, 1, 0, 15, 3, 0) // 6 router hops corner to corner
	for c := int64(0); c < 200 && !n.Drained(); c++ {
		n.Tick(c)
	}
	found := false
	for _, v := range n.Checker().Violations() {
		if v.Check == "hop-progress" && strings.Contains(v.Msg, "> bound 1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no hop-bound violation with MaxHops=1: %v", n.Checker().Err())
	}
}

// TestViolationError checks the rendered forms used by logs and panics.
func TestViolationError(t *testing.T) {
	v := invariant.Violation{Cycle: 42, Check: "credit-accounting", Msg: "link r0>r1 vc 2: sum 7 != depth 8"}
	want := "invariant: cycle 42: credit-accounting: link r0>r1 vc 2: sum 7 != depth 8"
	if got := v.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}

// TestCheckerCatchesMaskDesync: the mask-shadow audit must catch a datapath
// whose incrementally-maintained bitmasks drift from the authoritative
// per-VC state. The seeded desync flips one creditMask bit without touching
// the credit counter — invisible to credit accounting, caught only by the
// reference rescan.
func TestCheckerCatchesMaskDesync(t *testing.T) {
	n := build(t, &invariant.Config{Mode: invariant.ModeCollect}, nil)
	defer n.Close()
	n.Router(5).DebugCorruptMask(topology.East, 0)
	n.Tick(0)
	found := false
	for _, v := range n.Checker().Violations() {
		if v.Check == "mask-shadow" && strings.Contains(v.Msg, "creditMask") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded mask desync not caught: %v", n.Checker().Err())
	}
}
