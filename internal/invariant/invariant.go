// Package invariant is the opt-in runtime checker for the NoC pipeline: at
// tick barriers it audits the wired network read-only and validates the
// correctness properties the router model promises by construction —
//
//   - global flit conservation: every flit an NI pushed into the network is
//     either still inside (a router buffer, an ST register, a link wire, a
//     retransmission queue), consumed by its destination NI, or permanently
//     dropped by the fault injector;
//   - per-link credit/buffer accounting: for every (link, VC), sender
//     credits + flits holding a credit (ST register, wire, retransmission
//     queue, receiver buffer) + credits returning on the wire + leaked and
//     lost credits sum exactly to the buffer depth;
//   - atomic VC allocation: an unowned input VC is empty and idle, every
//     buffered flit belongs to the VC's owner, an unowned output VC holds
//     its full credit stock, and the per-port allocation counters agree
//     with the owners visible in the VC state;
//   - monotone hop progress: a packet's hop count never decreases between
//     observations and never exceeds the configured bound;
//   - forward progress: a no-ejection watchdog trips when traffic is in
//     flight but nothing reaches any NI for a configured window, dumping
//     the pipeline state of the routers holding packets (and the telemetry
//     counter totals when a collector is attached).
//
// The checker never mutates simulation state and keeps its own bookkeeping
// out of the simulation's, so enabling it cannot change results: runs with
// the checker on and off are bit-identical (asserted by the determinism
// test matrix in internal/network).
package invariant

import (
	"encoding/json"
	"fmt"
	"strings"

	"rair/internal/faults"
	"rair/internal/msg"
	"rair/internal/router"
	"rair/internal/telemetry"
	"rair/internal/topology"
)

// Mode selects how violations surface.
type Mode int

const (
	// ModePanic stops the simulation on the first violation (default):
	// invariants are definitions of correctness, and continuing past a
	// break only obscures the root cause.
	ModePanic Mode = iota
	// ModeCollect records violations (up to Config.Limit) and lets the run
	// continue; Err surfaces them afterwards. Tests asserting that a seeded
	// bug is caught use this mode.
	ModeCollect
)

// Config parameterizes a Checker.
type Config struct {
	// Every is the checking period in cycles (default 1: every barrier).
	Every int64
	// Watchdog is the no-forward-progress window in cycles: if packets are
	// in flight but no flit reaches any NI for Watchdog cycles, the
	// deadlock watchdog trips. 0 picks the default (10000); negative
	// disables the watchdog.
	Watchdog int64
	// MaxHops bounds any packet's hop count; 0 derives a bound from the
	// mesh (2*(W+H)+8, generous for minimal routing with escape detours).
	MaxHops int
	// Mode selects panic-on-first versus collect (default ModePanic).
	Mode Mode
	// Limit caps collected violations in ModeCollect (default 64).
	Limit int
}

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = 1
	}
	if c.Watchdog == 0 {
		c.Watchdog = 10000
	}
	if c.Limit <= 0 {
		c.Limit = 64
	}
	return c
}

// LinkRef locates one link in the wired network: the sender side (a router
// output port, or an NI when SrcNI) and the receiver side (a router input
// port, or an NI when DstNI). The network builds one per link while wiring.
type LinkRef struct {
	L      *router.Link
	Src    int
	SrcDir topology.Dir
	SrcNI  bool
	Dst    int
	DstDir topology.Dir
	DstNI  bool
}

// Key renders the link's wiring key (matching faults.LinkKey/NIKey).
func (ref LinkRef) Key() string {
	switch {
	case ref.SrcNI:
		return fmt.Sprintf("ni%d>r%d", ref.Src, ref.Dst)
	case ref.DstNI:
		return fmt.Sprintf("r%d>ni%d", ref.Src, ref.Dst)
	default:
		return fmt.Sprintf("r%d>r%d", ref.Src, ref.Dst)
	}
}

// Target is the audited network: the network package assembles it while
// wiring and hands it to NewChecker.
type Target struct {
	Depth   int
	VCs     int
	Mesh    *topology.Mesh
	Routers []*router.Router
	NIs     []*router.NI
	Links   []LinkRef
	// Faults is the run's injector (nil when fault-free); its loss and
	// retransmission state closes the conservation and credit identities.
	Faults *faults.Injector
	// Telemetry, when attached, is snapshotted into the watchdog dump.
	Telemetry *telemetry.Collector
	// Quiesce, when non-nil, audits the tick engine's quiescence machinery
	// (wake bitmaps, work mirrors, dirty-wire bitmaps) against ground
	// truth: anything skipped must truly be idle.
	Quiesce func() error
}

// Violation is one failed check.
type Violation struct {
	Cycle int64
	Check string
	Msg   string
}

func (v Violation) Error() string {
	return fmt.Sprintf("invariant: cycle %d: %s: %s", v.Cycle, v.Check, v.Msg)
}

// Checker audits a Target at tick barriers. It must be driven from the
// coordinating goroutine only.
type Checker struct {
	cfg Config
	t   Target

	// hops and hopsPrev alternate between checks: observations of packets
	// currently owning input VCs, compared against the previous sweep.
	hops, hopsPrev map[uint64]int

	// Watchdog state: the last flit-ejection total and the cycle it last
	// advanced.
	lastEjected  int64
	lastProgress int64
	tripped      bool

	violations []Violation

	// scratch per-VC tallies reused across links.
	wireFlits, wireCreds, stHold, recvBuf, sendCred []int
}

// NewChecker builds a checker over t with cfg's zero fields defaulted.
func NewChecker(cfg Config, t Target) *Checker {
	cfg = cfg.withDefaults()
	if cfg.MaxHops == 0 {
		cfg.MaxHops = 2*(t.Mesh.W+t.Mesh.H) + 8
	}
	return &Checker{
		cfg: cfg, t: t,
		hops: make(map[uint64]int), hopsPrev: make(map[uint64]int),
		wireFlits: make([]int, t.VCs), wireCreds: make([]int, t.VCs),
		stHold: make([]int, t.VCs), recvBuf: make([]int, t.VCs),
		sendCred: make([]int, t.VCs),
	}
}

// Violations returns the recorded violations (ModeCollect).
func (c *Checker) Violations() []Violation { return c.violations }

// Err summarizes recorded violations as an error, nil when the run was
// clean.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s):", len(c.violations))
	for i, v := range c.violations {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(c.violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v.Error())
	}
	return fmt.Errorf("%s", b.String())
}

func (c *Checker) report(now int64, check, format string, args ...any) {
	v := Violation{Cycle: now, Check: check, Msg: fmt.Sprintf(format, args...)}
	if c.cfg.Mode == ModePanic {
		panic(v.Error())
	}
	if len(c.violations) < c.cfg.Limit {
		c.violations = append(c.violations, v)
	}
}

// Check runs every due audit for the barrier at cycle now. It panics on a
// violation in ModePanic and records it in ModeCollect.
func (c *Checker) Check(now int64) {
	if (now+1)%c.cfg.Every == 0 {
		c.checkConservation(now)
		c.checkCredits(now)
		c.checkAllocation(now)
		c.checkMasks(now)
		c.checkHops(now)
		c.checkQuiescence(now)
	}
	if c.cfg.Watchdog > 0 {
		c.checkProgress(now)
	}
}

// checkQuiescence delegates to the target's engine-level quiescence audit.
func (c *Checker) checkQuiescence(now int64) {
	if c.t.Quiesce == nil {
		return
	}
	if err := c.t.Quiesce(); err != nil {
		c.report(now, "quiescence", "%v", err)
	}
}

// checkConservation validates the global flit identity: NI-injected flits
// equal NI-consumed flits plus everything still inside the network plus
// fault-lost flits.
func (c *Checker) checkConservation(now int64) {
	var injected, consumed int64
	for _, ni := range c.t.NIs {
		injected += ni.FlitsOut()
		consumed += ni.FlitsIn()
	}
	var inside int64
	for _, r := range c.t.Routers {
		inside += int64(r.BufferedFlits())
	}
	for _, ref := range c.t.Links {
		inside += int64(ref.L.InFlightFlits())
	}
	var lost, retx int64
	if c.t.Faults != nil {
		lost = c.t.Faults.LostFlits()
		retx = int64(c.t.Faults.PendingRetransmits())
	}
	if injected != consumed+inside+retx+lost {
		c.report(now, "conservation",
			"injected %d != consumed %d + inside %d + retransmit-queued %d + fault-lost %d",
			injected, consumed, inside, retx, lost)
	}
}

// checkCredits validates the per-(link,VC) credit identity. Ejection links
// carry no credits (the NI sink accepts unconditionally) and are skipped.
func (c *Checker) checkCredits(now int64) {
	for _, ref := range c.t.Links {
		if ref.DstNI {
			continue
		}
		for vc := 0; vc < c.t.VCs; vc++ {
			c.wireFlits[vc], c.wireCreds[vc], c.stHold[vc], c.recvBuf[vc], c.sendCred[vc] = 0, 0, 0, 0, 0
		}
		ref.L.AuditFlits(func(f msg.Flit) { c.wireFlits[f.VC]++ })
		ref.L.AuditCredits(func(vc int) { c.wireCreds[vc]++ })
		if ref.SrcNI {
			ni := c.t.NIs[ref.Src]
			for vc := 0; vc < c.t.VCs; vc++ {
				c.sendCred[vc] = ni.CreditCount(vc)
			}
		} else {
			sr := c.t.Routers[ref.Src]
			sr.AuditOutputVCs(ref.SrcDir, func(s router.OutputVCState) { c.sendCred[s.VC] = s.Credits })
			if f, ok := sr.STRegister(ref.SrcDir); ok {
				c.stHold[f.VC]++
			}
		}
		c.t.Routers[ref.Dst].AuditInputVCs(ref.DstDir, func(s router.InputVCState) {
			c.recvBuf[s.VC] = s.Buffered
		})
		fs := ref.L.Faults()
		for vc := 0; vc < c.t.VCs; vc++ {
			var retx, leaked, lost int
			if fs != nil {
				retx, leaked, lost = fs.PendingForVC(vc), fs.LeakedFor(vc), fs.LostFor(vc)
			}
			sum := c.sendCred[vc] + c.stHold[vc] + c.wireFlits[vc] + retx +
				c.recvBuf[vc] + c.wireCreds[vc] + leaked + lost
			if sum != c.t.Depth {
				c.report(now, "credit-accounting",
					"link %s vc %d: sum %d != depth %d (sender credits %d, st %d, wire flits %d, retransmit %d, receiver buffered %d, wire credits %d, leaked %d, lost %d)",
					ref.Key(), vc, sum, c.t.Depth,
					c.sendCred[vc], c.stHold[vc], c.wireFlits[vc], retx,
					c.recvBuf[vc], c.wireCreds[vc], leaked, lost)
			}
		}
	}
}

// checkAllocation validates atomic VC allocation at every router.
func (c *Checker) checkAllocation(now int64) {
	for _, r := range c.t.Routers {
		node := r.Node()
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			r.AuditInputVCs(d, func(s router.InputVCState) {
				if s.Owner == nil {
					if s.Allocated || s.Buffered != 0 {
						c.report(now, "vc-alloc",
							"router %d input %s vc %d unowned but allocated=%v buffered=%d",
							node, d, s.VC, s.Allocated, s.Buffered)
					}
					return
				}
				owner, vc := s.Owner, s.VC
				r.AuditInputFlits(d, vc, func(f msg.Flit) {
					if f.Pkt != owner {
						c.report(now, "vc-alloc",
							"router %d input %s vc %d owned by packet %d buffers flit of packet %d",
							node, d, vc, owner.ID, f.Pkt.ID)
					}
				})
			})
			owners := 0
			r.AuditOutputVCs(d, func(s router.OutputVCState) {
				if s.Owner != nil {
					owners++
					return
				}
				if s.Credits != c.t.Depth {
					c.report(now, "vc-alloc",
						"router %d output %s vc %d unallocated but credits %d != depth %d",
						node, d, s.VC, s.Credits, c.t.Depth)
				}
				if s.TailSent {
					c.report(now, "vc-alloc",
						"router %d output %s vc %d unallocated with tailSent", node, d, s.VC)
				}
			})
			if got := r.OutputAllocated(d); got != owners {
				c.report(now, "vc-alloc",
					"router %d output %s allocation counter %d != owned VCs %d", node, d, got, owners)
			}
		}
	}
}

// checkMasks cross-checks the datapath's incrementally-maintained occupancy
// bitmasks and stage counters against a slow reference scan of the
// authoritative per-VC state (the representation the masks replaced). A
// divergence means the fast path and the reference disagree about which VCs
// are in which pipeline stage — caught here at the barrier rather than as a
// silent arbitration change.
func (c *Checker) checkMasks(now int64) {
	for _, r := range c.t.Routers {
		node := r.Node()
		r.AuditMasks(func(desc string) {
			c.report(now, "mask-shadow", "router %d: %s", node, desc)
		})
	}
	for _, ni := range c.t.NIs {
		node := ni.Node()
		ni.AuditMasks(func(desc string) {
			c.report(now, "mask-shadow", "node %d: %s", node, desc)
		})
	}
}

// checkHops validates monotone, bounded per-packet hop progress over the
// packets currently owning input VCs.
func (c *Checker) checkHops(now int64) {
	cur := c.hops
	for k := range cur {
		delete(cur, k)
	}
	for _, r := range c.t.Routers {
		node := r.Node()
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			r.AuditInputVCs(d, func(s router.InputVCState) {
				if s.Owner == nil {
					return
				}
				h := s.Owner.Hops
				if h > c.cfg.MaxHops {
					c.report(now, "hop-progress",
						"packet %d at router %d input %s vc %d has %d hops > bound %d",
						s.Owner.ID, node, d, s.VC, h, c.cfg.MaxHops)
				}
				if prev, ok := c.hopsPrev[s.Owner.ID]; ok && h < prev {
					c.report(now, "hop-progress",
						"packet %d at router %d input %s vc %d hop count went backwards: %d -> %d",
						s.Owner.ID, node, d, s.VC, prev, h)
				}
				if seen, ok := cur[s.Owner.ID]; !ok || h > seen {
					cur[s.Owner.ID] = h
				}
			})
		}
	}
	c.hops, c.hopsPrev = c.hopsPrev, cur
}

// checkProgress is the deadlock watchdog: flit ejections must advance while
// packets are in flight.
func (c *Checker) checkProgress(now int64) {
	var consumed, created, ejected int64
	for _, ni := range c.t.NIs {
		consumed += ni.FlitsIn()
		created += ni.Created()
		ejected += ni.Ejected()
	}
	if consumed != c.lastEjected {
		c.lastEjected = consumed
		c.lastProgress = now
		return
	}
	if created == ejected || c.tripped {
		c.lastProgress = now
		return
	}
	if now-c.lastProgress <= c.cfg.Watchdog {
		return
	}
	c.tripped = true
	c.report(now, "watchdog",
		"no flit ejected for %d cycles with %d packet(s) in flight\n%s",
		now-c.lastProgress, created-ejected, c.dump())
}

// dump renders the pipeline state of routers holding packets (bounded) plus
// the telemetry counter totals when a collector is attached.
func (c *Checker) dump() string {
	var b strings.Builder
	shown := 0
	for _, r := range c.t.Routers {
		if r.OldestOwner() == nil {
			continue
		}
		if shown == 8 {
			b.WriteString("... further stuck routers elided\n")
			break
		}
		b.WriteString(r.DebugState())
		shown++
	}
	if c.t.Telemetry != nil {
		if js, err := json.Marshal(c.t.Telemetry.Report().Totals); err == nil {
			fmt.Fprintf(&b, "telemetry totals: %s\n", js)
		}
	}
	return b.String()
}
