package topology

import "testing"

func TestChipletsChipOf(t *testing.T) {
	cs := NewChiplets(2, 2, 4) // 8x8 global mesh, 4 tiles
	m := cs.Mesh()
	if m.W != 8 || m.H != 8 {
		t.Fatalf("global mesh = %dx%d, want 8x8", m.W, m.H)
	}
	if got := cs.Chips(); got != 4 {
		t.Fatalf("Chips() = %d, want 4", got)
	}
	// Row-major tile numbering over the package grid.
	cases := []struct {
		x, y, chip int
	}{
		{0, 0, 0}, {3, 3, 0}, {4, 0, 1}, {7, 3, 1},
		{0, 4, 2}, {3, 7, 2}, {4, 4, 3}, {7, 7, 3},
	}
	for _, c := range cases {
		id := m.ID(Coord{X: c.x, Y: c.y})
		if got := cs.ChipOf(id); got != c.chip {
			t.Errorf("ChipOf(%d,%d) = %d, want %d", c.x, c.y, got, c.chip)
		}
	}
	if !cs.SameChip(m.ID(Coord{X: 0, Y: 0}), m.ID(Coord{X: 3, Y: 3})) {
		t.Error("(0,0) and (3,3) should share a chip")
	}
	if cs.SameChip(m.ID(Coord{X: 3, Y: 0}), m.ID(Coord{X: 4, Y: 0})) {
		t.Error("(3,0) and (4,0) straddle a tile edge")
	}
}

func TestChipletsGateway(t *testing.T) {
	cs := NewChiplets(2, 2, 4)
	m := cs.Mesh()
	// Each tile's gateway is its corner nearest the package center: for a
	// 2x2 package of 4x4 tiles those are the four nodes around (3.5, 3.5).
	want := []Coord{{X: 3, Y: 3}, {X: 4, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}}
	for chip, w := range want {
		gw := cs.Gateway(chip)
		if got := m.Coord(gw); got != w {
			t.Errorf("Gateway(%d) = %v, want %v", chip, got, w)
		}
		if cs.ChipOf(gw) != chip {
			t.Errorf("Gateway(%d) lies outside its own tile", chip)
		}
	}
	// Asymmetric package: gateways still land inside their own tiles.
	wide := NewChiplets(3, 1, 5)
	for chip := 0; chip < wide.Chips(); chip++ {
		if wide.ChipOf(wide.Gateway(chip)) != chip {
			t.Errorf("3x1 package: Gateway(%d) outside its tile", chip)
		}
	}
}

func TestChipletsTileOrigin(t *testing.T) {
	cs := NewChiplets(3, 2, 4)
	for chip := 0; chip < cs.Chips(); chip++ {
		o := cs.TileOrigin(chip)
		if o.X%cs.K != 0 || o.Y%cs.K != 0 {
			t.Errorf("TileOrigin(%d) = %v not tile-aligned", chip, o)
		}
		if got := cs.ChipOf(cs.Mesh().ID(o)); got != chip {
			t.Errorf("TileOrigin(%d) maps to chip %d", chip, got)
		}
	}
}

func TestChipletsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewChiplets(0, 1, 4) },
		func() { NewChiplets(1, 1, 4) }, // one tile is just a mesh
		func() { NewChiplets(2, 2, 1) }, // 1x1 tile has no network
		func() { NewChiplets(2, 2, 4).Gateway(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestConcentrated(t *testing.T) {
	cm := NewConcentrated(NewMesh(4, 4), 4)
	if got := cm.Cores(); got != 64 {
		t.Fatalf("Cores() = %d, want 64", got)
	}
	for core := 0; core < cm.Cores(); core++ {
		r, s := cm.RouterOf(core), cm.SlotOf(core)
		if back := cm.Core(r, s); back != core {
			t.Fatalf("Core(RouterOf, SlotOf) round trip: %d -> (%d,%d) -> %d", core, r, s, back)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for slot out of range")
			}
		}()
		cm.Core(0, 4)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for concentration < 1")
			}
		}()
		NewConcentrated(NewMesh(2, 2), 0)
	}()
}
