package topology

import "fmt"

// Chiplets describes a two-level scale-out system: a ChipsX×ChipsY package
// of chiplet tiles, each an internal K×K mesh, joined by an inter-chip
// crossbar switch. Node ids live in the single (ChipsX·K)×(ChipsY·K) global
// mesh, so region maps, statistics and the tick engine keep their flat node
// space; mesh links that would cross a tile edge are simply never built.
// Inter-chiplet packets instead leave through their tile's gateway router,
// cross the switch, and re-enter the destination tile at its gateway (see
// network.Crossbar and DESIGN.md "Scale-out topologies").
type Chiplets struct {
	// ChipsX, ChipsY are the package grid dimensions; K the tile mesh side.
	ChipsX, ChipsY int
	K              int
	mesh           *Mesh
}

// NewChiplets builds a chiplet system of chipsX×chipsY tiles, each a K×K
// mesh. A system needs at least two tiles (one tile is just a mesh) and
// tiles of at least 2×2 (a 1×1 tile has no intra-tile network).
func NewChiplets(chipsX, chipsY, k int) *Chiplets {
	if chipsX < 1 || chipsY < 1 || k < 2 {
		panic(fmt.Sprintf("topology: bad chiplet grid %dx%d of K=%d (need tiles >= 1x1, K >= 2)",
			chipsX, chipsY, k))
	}
	if chipsX*chipsY < 2 {
		panic("topology: a chiplet system needs at least two tiles")
	}
	return &Chiplets{ChipsX: chipsX, ChipsY: chipsY, K: k, mesh: NewMesh(chipsX*k, chipsY*k)}
}

// Mesh returns the global node space: the (ChipsX·K)×(ChipsY·K) mesh whose
// cross-tile links are never wired.
func (c *Chiplets) Mesh() *Mesh { return c.mesh }

// Chips reports the number of chiplet tiles.
func (c *Chiplets) Chips() int { return c.ChipsX * c.ChipsY }

// ChipOf returns the chiplet index of a global node id. Tiles are numbered
// row-major over the package grid, matching region.Grid's region numbering
// so that "one chiplet = one RAIR region" maps make chip i region i.
func (c *Chiplets) ChipOf(node int) int {
	co := c.mesh.Coord(node)
	return (co.Y/c.K)*c.ChipsX + co.X/c.K
}

// SameChip reports whether two nodes share a tile (their packets never
// touch the crossbar).
func (c *Chiplets) SameChip(a, b int) bool { return c.ChipOf(a) == c.ChipOf(b) }

// TileOrigin returns the global coordinate of chip's northwest node.
func (c *Chiplets) TileOrigin(chip int) Coord {
	c.checkChip(chip)
	return Coord{X: (chip % c.ChipsX) * c.K, Y: (chip / c.ChipsX) * c.K}
}

// Gateway returns chip's boundary router: the tile corner nearest the
// center of the package, where the chip-to-chip PHY sits. All of the tile's
// outbound inter-chiplet traffic ejects here into the crossbar, and foreign
// traffic from other chiplets re-enters the tile here — the single point
// where RAIR's boundary routers gate foreign traffic.
func (c *Chiplets) Gateway(chip int) int {
	o := c.TileOrigin(chip)
	return c.mesh.ID(Coord{
		X: nearerToCenter(o.X, o.X+c.K-1, c.mesh.W),
		Y: nearerToCenter(o.Y, o.Y+c.K-1, c.mesh.H),
	})
}

// nearerToCenter picks whichever of a or b lies closer to the center of a
// span of the given width (ties break toward a, which callers pass as the
// lower coordinate, keeping the choice deterministic).
func nearerToCenter(a, b, span int) int {
	if abs(2*b-(span-1)) < abs(2*a-(span-1)) {
		return b
	}
	return a
}

func (c *Chiplets) checkChip(chip int) {
	if chip < 0 || chip >= c.Chips() {
		panic(fmt.Sprintf("topology: chip %d out of range [0,%d)", chip, c.Chips()))
	}
}

// Concentrated couples C cores to every router of a base mesh (a
// "concentrated mesh"): the network keeps one router and one NI per mesh
// node, and the NI multiplexes C injector slots so each core owns an
// independent injection queue set (router.Config.Injectors). Core ids are
// router-major: core = router·C + slot.
type Concentrated struct {
	Mesh *Mesh
	C    int
}

// NewConcentrated wraps mesh with concentration factor c (>= 1).
func NewConcentrated(m *Mesh, c int) *Concentrated {
	if c < 1 {
		panic("topology: concentration factor must be >= 1")
	}
	return &Concentrated{Mesh: m, C: c}
}

// Cores reports the total core count.
func (cm *Concentrated) Cores() int { return cm.Mesh.N() * cm.C }

// RouterOf returns the router a core attaches to.
func (cm *Concentrated) RouterOf(core int) int { return core / cm.C }

// SlotOf returns the injector slot a core owns on its router's NI.
func (cm *Concentrated) SlotOf(core int) int { return core % cm.C }

// Core returns the core id at (router, slot).
func (cm *Concentrated) Core(router, slot int) int {
	if slot < 0 || slot >= cm.C {
		panic(fmt.Sprintf("topology: slot %d out of range [0,%d)", slot, cm.C))
	}
	return router*cm.C + slot
}
