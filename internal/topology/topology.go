// Package topology describes the physical structure of the on-chip network:
// node coordinates, port directions and the 2D mesh used throughout the
// paper's evaluation (an 8×8 mesh of 64 nodes).
package topology

import "fmt"

// Dir identifies a router port. Local is the injection/ejection port; the
// four cardinal directions connect to neighboring routers.
type Dir int

// Port directions in canonical order. The order is load-bearing: arbiters
// iterate ports in this order, so it must be stable.
const (
	Local Dir = iota
	North
	East
	South
	West
	NumDirs
)

var dirNames = [...]string{"Local", "North", "East", "South", "West"}

func (d Dir) String() string {
	if d < 0 || int(d) >= len(dirNames) {
		return fmt.Sprintf("Dir(%d)", int(d))
	}
	return dirNames[d]
}

// Opposite returns the facing direction (North↔South, East↔West). The Local
// port has no opposite; Opposite panics on it.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	panic("topology: Opposite of non-cardinal direction")
}

// Coord is a node position; X grows eastward, Y grows southward, with (0,0)
// the northwest corner.
type Coord struct{ X, Y int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Add returns c displaced one hop in direction d.
func (c Coord) Add(d Dir) Coord {
	switch d {
	case North:
		return Coord{c.X, c.Y - 1}
	case South:
		return Coord{c.X, c.Y + 1}
	case East:
		return Coord{c.X + 1, c.Y}
	case West:
		return Coord{c.X - 1, c.Y}
	}
	return c
}

// Mesh is a W×H 2D mesh. Node IDs are assigned in row-major order:
// id = y*W + x.
type Mesh struct {
	W, H int
}

// NewMesh returns a mesh of the given dimensions (each >= 1).
func NewMesh(w, h int) *Mesh {
	if w < 1 || h < 1 {
		panic("topology: mesh dimensions must be >= 1")
	}
	return &Mesh{W: w, H: h}
}

// N reports the number of nodes.
func (m *Mesh) N() int { return m.W * m.H }

// Coord returns the coordinate of node id.
func (m *Mesh) Coord(id int) Coord {
	if id < 0 || id >= m.N() {
		panic(fmt.Sprintf("topology: node %d out of range", id))
	}
	return Coord{X: id % m.W, Y: id / m.W}
}

// ID returns the node id at coordinate c.
func (m *Mesh) ID(c Coord) int {
	if !m.Contains(c) {
		panic(fmt.Sprintf("topology: coord %v out of range", c))
	}
	return c.Y*m.W + c.X
}

// Contains reports whether c lies within the mesh.
func (m *Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.W && c.Y >= 0 && c.Y < m.H
}

// Neighbor returns the node one hop from id in direction d, or -1 if the hop
// leaves the mesh (or d is Local).
func (m *Mesh) Neighbor(id int, d Dir) int {
	if d == Local {
		return -1
	}
	c := m.Coord(id).Add(d)
	if !m.Contains(c) {
		return -1
	}
	return m.ID(c)
}

// Distance returns the Manhattan (minimal hop) distance between nodes a and b.
func (m *Mesh) Distance(a, b int) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// MinimalDirs returns the productive directions from cur toward dst: the set
// of cardinal hops that strictly reduce Manhattan distance. It returns an
// empty slice when cur == dst. At most two directions are ever productive in
// a mesh; out is appended to and returned to let callers avoid allocation.
func (m *Mesh) MinimalDirs(cur, dst int, out []Dir) []Dir {
	cc, cd := m.Coord(cur), m.Coord(dst)
	if cd.X > cc.X {
		out = append(out, East)
	} else if cd.X < cc.X {
		out = append(out, West)
	}
	if cd.Y > cc.Y {
		out = append(out, South)
	} else if cd.Y < cc.Y {
		out = append(out, North)
	}
	return out
}

// XYDir returns the single dimension-ordered (X first, then Y) direction
// from cur toward dst, or Local when cur == dst. XY routing is the escape
// path of the Duato-style adaptive algorithms.
func (m *Mesh) XYDir(cur, dst int) Dir {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cd.X > cc.X:
		return East
	case cd.X < cc.X:
		return West
	case cd.Y > cc.Y:
		return South
	case cd.Y < cc.Y:
		return North
	}
	return Local
}

// Transpose maps (x,y) to (y,x). It is only defined for square meshes.
func (m *Mesh) Transpose(id int) int {
	if m.W != m.H {
		panic("topology: transpose on non-square mesh")
	}
	c := m.Coord(id)
	return m.ID(Coord{X: c.Y, Y: c.X})
}

// BitComplement maps node i to N-1-i, the standard bit-complement pattern
// for power-of-two node counts.
func (m *Mesh) BitComplement(id int) int {
	if id < 0 || id >= m.N() {
		panic("topology: node out of range")
	}
	return m.N() - 1 - id
}

// Corners returns the four corner node ids (NW, NE, SW, SE); the evaluation
// places memory controllers there.
func (m *Mesh) Corners() [4]int {
	return [4]int{
		m.ID(Coord{0, 0}),
		m.ID(Coord{m.W - 1, 0}),
		m.ID(Coord{0, m.H - 1}),
		m.ID(Coord{m.W - 1, m.H - 1}),
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
