package topology

import (
	"testing"
	"testing/quick"
)

func TestCoordIDRoundTrip(t *testing.T) {
	m := NewMesh(8, 8)
	for id := 0; id < m.N(); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Fatalf("round trip %d -> %d", id, got)
		}
	}
}

func TestRowMajorLayout(t *testing.T) {
	m := NewMesh(4, 3)
	if m.N() != 12 {
		t.Fatalf("N = %d", m.N())
	}
	if c := m.Coord(5); c != (Coord{1, 1}) {
		t.Fatalf("Coord(5) = %v", c)
	}
	if id := m.ID(Coord{3, 2}); id != 11 {
		t.Fatalf("ID(3,2) = %d", id)
	}
}

func TestNeighborEdges(t *testing.T) {
	m := NewMesh(3, 3)
	// center node 4 has all four neighbors
	if m.Neighbor(4, North) != 1 || m.Neighbor(4, South) != 7 ||
		m.Neighbor(4, East) != 5 || m.Neighbor(4, West) != 3 {
		t.Fatal("center neighbors wrong")
	}
	// corner 0 lacks north/west
	if m.Neighbor(0, North) != -1 || m.Neighbor(0, West) != -1 {
		t.Fatal("corner should lack north/west neighbors")
	}
	if m.Neighbor(0, Local) != -1 {
		t.Fatal("Local has no neighbor")
	}
}

func TestNeighborSymmetry(t *testing.T) {
	m := NewMesh(5, 4)
	for id := 0; id < m.N(); id++ {
		for _, d := range []Dir{North, East, South, West} {
			n := m.Neighbor(id, d)
			if n == -1 {
				continue
			}
			if back := m.Neighbor(n, d.Opposite()); back != id {
				t.Fatalf("asymmetric link %d --%v--> %d --%v--> %d", id, d, n, d.Opposite(), back)
			}
		}
	}
}

func TestOppositePanicsOnLocal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Local.Opposite()
}

func TestDistance(t *testing.T) {
	m := NewMesh(8, 8)
	if d := m.Distance(0, 63); d != 14 {
		t.Fatalf("corner distance = %d", d)
	}
	if d := m.Distance(10, 10); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

// Property: following any minimal direction decreases distance by exactly 1.
func TestMinimalDirsDecreaseDistance(t *testing.T) {
	m := NewMesh(8, 8)
	if err := quick.Check(func(a, b uint8) bool {
		cur, dst := int(a)%64, int(b)%64
		dirs := m.MinimalDirs(cur, dst, nil)
		if cur == dst {
			return len(dirs) == 0
		}
		if len(dirs) == 0 || len(dirs) > 2 {
			return false
		}
		for _, d := range dirs {
			n := m.Neighbor(cur, d)
			if n == -1 || m.Distance(n, dst) != m.Distance(cur, dst)-1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: repeatedly following XYDir reaches the destination in exactly
// Distance hops, never leaving the mesh.
func TestXYDirReachesDestination(t *testing.T) {
	m := NewMesh(8, 8)
	if err := quick.Check(func(a, b uint8) bool {
		cur, dst := int(a)%64, int(b)%64
		steps := 0
		for cur != dst {
			d := m.XYDir(cur, dst)
			if d == Local {
				return false
			}
			cur = m.Neighbor(cur, d)
			if cur == -1 {
				return false
			}
			steps++
			if steps > 14 {
				return false
			}
		}
		return steps == m.Distance(int(a)%64, dst)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXYOrdering(t *testing.T) {
	m := NewMesh(8, 8)
	// From (0,0) to (3,3): X must be corrected first.
	if d := m.XYDir(0, m.ID(Coord{3, 3})); d != East {
		t.Fatalf("XYDir = %v, want East", d)
	}
	// Same column: go south.
	if d := m.XYDir(0, m.ID(Coord{0, 3})); d != South {
		t.Fatalf("XYDir = %v, want South", d)
	}
	if d := m.XYDir(5, 5); d != Local {
		t.Fatalf("XYDir self = %v", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := NewMesh(8, 8)
	for id := 0; id < m.N(); id++ {
		if m.Transpose(m.Transpose(id)) != id {
			t.Fatalf("transpose not an involution at %d", id)
		}
	}
	if m.Transpose(m.ID(Coord{2, 5})) != m.ID(Coord{5, 2}) {
		t.Fatal("transpose mapping wrong")
	}
}

func TestTransposePanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMesh(4, 2).Transpose(0)
}

func TestBitComplementInvolution(t *testing.T) {
	m := NewMesh(8, 8)
	for id := 0; id < m.N(); id++ {
		if m.BitComplement(m.BitComplement(id)) != id {
			t.Fatalf("bit complement not an involution at %d", id)
		}
	}
	if m.BitComplement(0) != 63 {
		t.Fatal("BitComplement(0) != 63")
	}
}

func TestCorners(t *testing.T) {
	m := NewMesh(8, 8)
	c := m.Corners()
	want := [4]int{0, 7, 56, 63}
	if c != want {
		t.Fatalf("Corners = %v, want %v", c, want)
	}
}

func TestDirStrings(t *testing.T) {
	if Local.String() != "Local" || West.String() != "West" {
		t.Fatal("Dir.String wrong")
	}
	if Dir(9).String() != "Dir(9)" {
		t.Fatal("out-of-range Dir.String wrong")
	}
}
