package network

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rair/internal/faults"
	"rair/internal/invariant"
	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/telemetry"
	"rair/internal/topology"
)

// buildFaulty returns a test network with fault injection and/or the
// invariant checker attached.
func buildFaulty(t testing.TB, regions *region.Map, p Params) (*Network, *[]*msg.Packet) {
	t.Helper()
	mesh := regions.Mesh()
	var delivered []*msg.Packet
	p.Router = router.DefaultConfig(1)
	p.Regions = regions
	p.Alg = routing.MinimalAdaptive{Mesh: mesh}
	p.Sel = routing.LocalSelector{}
	p.Policy = policy.NewRoundRobin
	p.OnEject = func(p *msg.Packet, now int64) { delivered = append(delivered, p) }
	n := New(p)
	return n, &delivered
}

// moderateFaults is the standard fault dose for these tests: every fault
// kind active at rates a default retry budget absorbs.
func moderateFaults() *faults.Config {
	return &faults.Config{
		Seed:           5,
		Link:           faults.LinkProfile{DropProb: 0.002, CorruptProb: 0.002, CreditLeakProb: 0.002},
		Router:         faults.RouterProfile{StallProb: 0.002, StallLen: 6},
		ReconcileEvery: 256,
	}
}

// injectAllPairs injects one packet for every (src, dst) pair at cycle 0 and
// returns the count.
func injectAllPairs(n *Network) int {
	id := uint64(0)
	mesh := n.Mesh()
	for s := 0; s < mesh.N(); s++ {
		for d := 0; d < mesh.N(); d++ {
			if s == d {
				continue
			}
			id++
			n.NI(s).Inject(&msg.Packet{ID: id, Src: s, Dst: d, Size: 3, Class: msg.ClassRequest}, 0)
		}
	}
	return int(id)
}

// TestFaultyDeliveryAndInvariants is the acceptance scenario: with drops,
// corruptions, credit leaks and router stalls all active, every packet is
// still delivered exactly once, the network drains, and the invariant
// checker (panic mode) stays silent throughout.
func TestFaultyDeliveryAndInvariants(t *testing.T) {
	n, delivered := buildFaulty(t, mesh4(), Params{
		Faults: moderateFaults(),
		Check:  &invariant.Config{}, // ModePanic: any violation fails the test
	})
	defer n.Close()
	want := injectAllPairs(n)
	for c := int64(0); c < 100000 && !n.Drained(); c++ {
		n.Tick(c)
	}
	if !n.Drained() {
		t.Fatal("network did not drain under faults")
	}
	if got := len(*delivered); got != want {
		t.Fatalf("delivered %d of %d packets under faults", got, want)
	}
	seen := map[uint64]bool{}
	for _, p := range *delivered {
		if seen[p.ID] {
			t.Fatalf("duplicate delivery of packet %d", p.ID)
		}
		seen[p.ID] = true
	}
	n.CheckDrained()

	rep := n.Faults().Report()
	if rep.Totals.DroppedFlits == 0 || rep.Totals.CorruptedFlits == 0 {
		t.Errorf("fault dose produced no flit faults: %s", rep)
	}
	// Leaks after the last reconcile boundary are still outstanding at
	// drain; a final explicit sweep must account for every one.
	n.Faults().ReconcileAll()
	rep = n.Faults().Report()
	if rep.Totals.CreditLeaks == 0 || rep.Totals.ReconciledCredits != rep.Totals.CreditLeaks {
		t.Errorf("leaked %d credits, reconciled %d; every leak must be accounted for",
			rep.Totals.CreditLeaks, rep.Totals.ReconciledCredits)
	}
	if rep.Totals.LostFlits != 0 {
		t.Errorf("lost %d flits permanently at these rates", rep.Totals.LostFlits)
	}
	if rep.StallCycles == 0 || rep.StalledRouters == 0 {
		t.Errorf("no router stalls recorded: %s", rep)
	}
}

// TestPerLinkProfileOverride: a per-link profile confines faults to that
// link; all other links stay clean.
func TestPerLinkProfileOverride(t *testing.T) {
	n, delivered := buildFaulty(t, mesh4(), Params{
		Faults: &faults.Config{
			Seed:    9,
			PerLink: map[string]faults.LinkProfile{faults.LinkKey(0, 1): {DropProb: 0.2}},
		},
		Check: &invariant.Config{},
	})
	defer n.Close()
	want := injectAllPairs(n)
	for c := int64(0); c < 100000 && !n.Drained(); c++ {
		n.Tick(c)
	}
	if got := len(*delivered); got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
	rep := n.Faults().Report()
	if rep.Totals.DroppedFlits == 0 {
		t.Fatal("override link dropped nothing")
	}
	for _, lr := range rep.Links {
		if lr.Key != "r0>r1" {
			t.Errorf("link %s has fault events %+v; only r0>r1 is configured", lr.Key, lr.Counters)
		}
	}
}

// TestCheckerCatchesSeededCreditLeak is the seeded-bug acceptance test: a
// credit stolen behind the fault injector's back (DebugDropCredit) must be
// caught by the credit-accounting check, naming the router, port and VC.
func TestCheckerCatchesSeededCreditLeak(t *testing.T) {
	n, _ := buildFaulty(t, mesh4(), Params{
		Check: &invariant.Config{Mode: invariant.ModeCollect},
	})
	defer n.Close()
	injectAllPairs(n)
	for c := int64(0); c < 50; c++ {
		n.Tick(c)
	}
	chk := n.Checker()
	if len(chk.Violations()) != 0 {
		t.Fatalf("violations before the seeded bug: %v", chk.Err())
	}
	// Steal one credit from router 5's east output port (the sender side of
	// link r5>r6), VC 0.
	n.Router(5).DebugDropCredit(topology.East, 0)
	for c := int64(50); c < 60; c++ {
		n.Tick(c)
	}
	vs := chk.Violations()
	if len(vs) == 0 {
		t.Fatal("checker missed the seeded credit leak")
	}
	found := false
	for _, v := range vs {
		if v.Check == "credit-accounting" && strings.Contains(v.Msg, "r5>r6") && strings.Contains(v.Msg, "vc 0") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no credit-accounting violation naming r5>r6 vc 0; got %v", chk.Err())
	}
	if err := chk.Err(); err == nil || !strings.Contains(err.Error(), "invariant violation") {
		t.Fatalf("Err() = %v", err)
	}
}

// faultMatrixRun executes the standard faulty scenario at a given worker
// count with the checker on or off, and returns the ejection sequence plus
// the telemetry report rendered as JSON.
func faultMatrixRun(t *testing.T, workers int, check bool) (seq []string, telJSON string) {
	t.Helper()
	col := telemetry.NewCollector(telemetry.Config{Window: 512})
	var chk *invariant.Config
	if check {
		chk = &invariant.Config{} // panic mode: a violation fails loudly
	}
	n, delivered := buildFaulty(t, mesh4(), Params{
		Faults:    moderateFaults(),
		Check:     chk,
		Workers:   workers,
		Telemetry: col,
	})
	defer n.Close()

	// A deterministic random workload: same seed, same injections.
	rng := sim.NewRNG(77)
	id := uint64(0)
	for c := int64(0); c < 4000; c++ {
		if c < 2000 && rng.Bool(0.25) {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				id++
				size := 1
				if rng.Bool(0.5) {
					size = 5
				}
				n.NI(src).Inject(&msg.Packet{ID: id, Src: src, Dst: dst, Size: size, Class: msg.ClassRequest}, c)
			}
		}
		n.Tick(c)
	}
	for c := int64(4000); c < 100000 && !n.Drained(); c++ {
		n.Tick(c)
	}
	if got := len(*delivered); got != int(id) {
		t.Fatalf("workers=%d check=%v: delivered %d of %d", workers, check, got, id)
	}
	for _, p := range *delivered {
		seq = append(seq, fmt.Sprintf("%d@%d", p.ID, p.EjectedAt))
	}
	var buf bytes.Buffer
	if err := col.Report().WriteJSON(&buf); err != nil {
		t.Fatalf("telemetry report: %v", err)
	}
	return seq, buf.String()
}

// TestFaultDeterminismMatrix: the checker being enabled or disabled and any
// tick-engine worker count must not change results — all six combinations
// produce bit-identical ejection sequences and telemetry reports.
func TestFaultDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	refSeq, refTel := faultMatrixRun(t, 0, false)
	if len(refSeq) == 0 {
		t.Fatal("reference run delivered nothing")
	}
	for _, workers := range []int{1, 2, 4} {
		for _, check := range []bool{false, true} {
			if workers <= 1 && !check {
				continue // the reference configuration
			}
			seq, tel := faultMatrixRun(t, workers, check)
			if len(seq) != len(refSeq) {
				t.Fatalf("workers=%d check=%v: %d ejections, reference %d",
					workers, check, len(seq), len(refSeq))
			}
			for i := range seq {
				if seq[i] != refSeq[i] {
					t.Fatalf("workers=%d check=%v: ejection %d = %s, reference %s",
						workers, check, i, seq[i], refSeq[i])
				}
			}
			if tel != refTel {
				t.Errorf("workers=%d check=%v: telemetry report differs from reference",
					workers, check)
			}
		}
	}
}
