package network

import (
	"testing"

	"rair/internal/core"
	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/telemetry"
	"rair/internal/topology"
)

// BenchmarkNetworkTick measures raw cycle throughput of a loaded 8x8 mesh
// under RAIR (the simulator's core inner loop).
func BenchmarkNetworkTick(b *testing.B) {
	regions := region.Quadrants(topology.NewMesh(8, 8))
	n := New(Params{
		Router:  router.DefaultConfig(1),
		Regions: regions,
		Alg:     routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Sel:     routing.LocalSelector{},
		Policy:  core.NewFactory(core.Config{}),
	})
	rng := sim.NewRNG(1)
	var id uint64
	var c int64
	// Pre-load to steady state.
	for ; c < 500; c++ {
		inject(n, regions, rng, &id, c)
		n.Tick(c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject(n, regions, rng, &id, c)
		n.Tick(c)
		c++
	}
}

func inject(n *Network, regions *region.Map, rng *sim.RNG, id *uint64, c int64) {
	nodes := n.Mesh().N()
	for node := 0; node < nodes; node++ {
		if !rng.Bool(0.05) {
			continue
		}
		dst := rng.Intn(nodes)
		if dst == node {
			continue
		}
		*id++
		n.NI(node).Inject(&msg.Packet{ID: *id, App: regions.AppAt(node),
			Src: node, Dst: dst, Size: 1 + 4*rng.Intn(2), Class: msg.ClassRequest}, c)
	}
}

// BenchmarkTickEngine compares the serial tick path against the sharded
// engine at several worker counts on a 16x16 mesh (large enough that a shard
// amortizes its barrier cost). On a single-core host the sharded variants
// only measure coordination overhead; on multi-core they show the scaling.
func BenchmarkTickEngine(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 0}, {"workers=1", 1}, {"workers=2", 2}, {"workers=4", 4}, {"workers=8", 8},
	} {
		b.Run(tc.name, func(b *testing.B) {
			regions := region.Quadrants(topology.NewMesh(16, 16))
			n := New(Params{
				Router:  router.DefaultConfig(1),
				Regions: regions,
				Alg:     routing.MinimalAdaptive{Mesh: regions.Mesh()},
				Sel:     routing.LocalSelector{},
				Policy:  core.NewFactory(core.Config{}),
				Workers: tc.workers,
			})
			defer n.Close()
			rng := sim.NewRNG(1)
			var id uint64
			var c int64
			for ; c < 500; c++ {
				inject(n, regions, rng, &id, c)
				n.Tick(c)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inject(n, regions, rng, &id, c)
				n.Tick(c)
				c++
			}
		})
	}
}

// BenchmarkTelemetry measures the instrumentation overhead on the loaded
// 8x8 RAIR mesh: "off" must track BenchmarkNetworkTick (nil-probe guards
// only), "on" shows the full counter + window-sampling cost.
func BenchmarkTelemetry(b *testing.B) {
	for _, tc := range []struct {
		name string
		tel  func() *telemetry.Collector
	}{
		{"off", func() *telemetry.Collector { return nil }},
		{"on", func() *telemetry.Collector {
			return telemetry.NewCollector(telemetry.Config{})
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			regions := region.Quadrants(topology.NewMesh(8, 8))
			n := New(Params{
				Router:    router.DefaultConfig(1),
				Regions:   regions,
				Alg:       routing.MinimalAdaptive{Mesh: regions.Mesh()},
				Sel:       routing.LocalSelector{},
				Policy:    core.NewFactory(core.Config{}),
				Telemetry: tc.tel(),
			})
			defer n.Close()
			rng := sim.NewRNG(1)
			var id uint64
			var c int64
			for ; c < 500; c++ {
				inject(n, regions, rng, &id, c)
				n.Tick(c)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inject(n, regions, rng, &id, c)
				n.Tick(c)
				c++
			}
		})
	}
}
