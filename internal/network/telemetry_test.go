package network

import (
	"bytes"
	"encoding/json"
	"testing"

	"rair/internal/core"
	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/telemetry"
	"rair/internal/topology"
)

// telemetryRun drives a deterministic loaded RAIR mesh and returns the
// delivery trace (packet id + ejection cycle in callback order) plus the
// collector (nil when telemetry is off).
func telemetryRun(t *testing.T, workers int, tel *telemetry.Collector) []uint64 {
	t.Helper()
	regions := region.Quadrants(topology.NewMesh(8, 8))
	var deliveries []uint64
	n := New(Params{
		Router:  router.DefaultConfig(1),
		Regions: regions,
		Alg:     routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Sel:     routing.LocalSelector{},
		Policy:  core.NewFactory(core.Config{}),
		OnEject: func(p *msg.Packet, now int64) {
			deliveries = append(deliveries, p.ID, uint64(now))
		},
		Workers:   workers,
		Telemetry: tel,
	})
	defer n.Close()
	rng := sim.NewRNG(7)
	var id uint64
	var c int64
	for ; c < 3000; c++ {
		inject(n, regions, rng, &id, c)
		n.Tick(c)
	}
	for ; !n.Drained() && c < 6000; c++ {
		n.Tick(c)
	}
	n.CheckDrained()
	return deliveries
}

// TestTelemetryDeterminism is the shard-safety contract: the delivery trace
// must be bit-identical with telemetry off and on, at 1, 2 and 4 workers,
// and the telemetry report itself must not depend on the worker count.
func TestTelemetryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := telemetryRun(t, 0, nil)
	if len(base) == 0 {
		t.Fatal("no deliveries")
	}
	var baseReport []byte
	for _, workers := range []int{1, 2, 4} {
		tel := telemetry.NewCollector(telemetry.Config{Window: 128, TraceEvery: 64})
		got := telemetryRun(t, workers, tel)
		if len(got) != len(base) {
			t.Fatalf("workers=%d telemetry on: %d delivery records, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d telemetry on: delivery trace diverged at record %d", workers, i)
			}
		}
		var buf bytes.Buffer
		if err := tel.Report().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if baseReport == nil {
			baseReport = buf.Bytes()
		} else if !bytes.Equal(baseReport, buf.Bytes()) {
			t.Fatalf("workers=%d: telemetry report differs from workers=1", workers)
		}
	}
}

// TestTelemetryCountersUnderRAIR checks that a cross-region RAIR run feeds
// every counter family the mechanisms live in.
func TestTelemetryCountersUnderRAIR(t *testing.T) {
	tel := telemetry.NewCollector(telemetry.Config{Window: 128})
	telemetryRun(t, 0, tel)
	r := tel.Report()
	tot := r.Totals
	if tot.VAGrantNative == 0 || tot.VAGrantForeign == 0 {
		t.Fatalf("VA grants missing: %+v", tot)
	}
	if tot.SAInGrantNative == 0 || tot.SAOutGrantNative == 0 {
		t.Fatalf("SA grants missing: %+v", tot)
	}
	if tot.DPAToNativeHigh == 0 || tot.DPAToForeignHigh == 0 {
		t.Fatalf("no DPA transitions recorded: %+v", tot)
	}
	if tot.LinkFlits == 0 {
		t.Fatal("no link flits recorded")
	}
	sawOcc := false
	for _, rr := range r.Routers {
		if len(rr.Windows) == 0 {
			t.Fatalf("node %d has no window samples", rr.Node)
		}
		for _, w := range rr.Windows {
			if w.OVCNative > 0 || w.OVCForeign > 0 {
				sawOcc = true
			}
		}
	}
	if !sawOcc {
		t.Fatal("no window sample ever observed VC occupancy")
	}
}

// TestTelemetryCreditStalls shrinks the VC buffers below the packet size so
// multi-flit packets must stall on credits mid-stream.
func TestTelemetryCreditStalls(t *testing.T) {
	regions := region.Single(topology.NewMesh(4, 4))
	cfg := router.DefaultConfig(1)
	cfg.Depth = 2
	tel := telemetry.NewCollector(telemetry.Config{})
	n := New(Params{
		Router:    cfg,
		Regions:   regions,
		Alg:       routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Sel:       routing.LocalSelector{},
		Policy:    core.NewFactory(core.Config{}),
		Telemetry: tel,
	})
	defer n.Close()
	rng := sim.NewRNG(3)
	var id uint64
	for c := int64(0); c < 2000; c++ {
		nodes := n.Mesh().N()
		for node := 0; node < nodes; node++ {
			if !rng.Bool(0.2) {
				continue
			}
			dst := rng.Intn(nodes)
			if dst == node {
				continue
			}
			id++
			n.NI(node).Inject(&msg.Packet{ID: id, App: regions.AppAt(node),
				Src: node, Dst: dst, Size: 5, Class: msg.ClassRequest}, c)
		}
		n.Tick(c)
	}
	if tot := tel.Report().Totals; tot.CreditStalls == 0 {
		t.Fatalf("no credit stalls with 2-deep buffers and 5-flit packets: %+v", tot)
	}
}

// TestTelemetryChromeTraceEndToEnd sends one traced packet across the mesh
// and checks the exported Chrome trace carries one span per pipeline stage
// per router hop.
func TestTelemetryChromeTraceEndToEnd(t *testing.T) {
	regions := region.Single(topology.NewMesh(4, 4))
	tel := telemetry.NewCollector(telemetry.Config{TraceEvery: 1})
	n := New(Params{
		Router:    router.DefaultConfig(1),
		Regions:   regions,
		Alg:       routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Sel:       routing.LocalSelector{},
		Policy:    core.NewFactory(core.Config{}),
		Telemetry: tel,
	})
	defer n.Close()
	p := &msg.Packet{ID: 4, Src: 0, Dst: 15, Size: 5, Class: msg.ClassRequest}
	n.NI(0).Inject(p, 0)
	for c := int64(0); c < 200; c++ {
		n.Tick(c)
	}
	n.CheckDrained()
	hops := n.Mesh().Distance(0, 15) + 1 // routers traversed

	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   uint64 `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	spans := map[string]int{}
	instants := map[string]int{}
	for _, e := range out.TraceEvents {
		if e.PID != p.ID {
			t.Fatalf("unexpected packet %d in trace", e.PID)
		}
		switch e.Phase {
		case "X":
			spans[e.Name]++
		case "i":
			instants[e.Name]++
		}
	}
	for _, stage := range []string{"RC", "VA", "SA", "ST"} {
		if spans[stage] != hops {
			t.Fatalf("stage %s: %d spans, want one per hop (%d); spans=%v", stage, spans[stage], hops, spans)
		}
	}
	if spans["LT"] != hops-1 {
		t.Fatalf("LT spans = %d, want %d (inter-router links)", spans["LT"], hops-1)
	}
	if instants["Inject"] != 1 || instants["Eject"] != 1 {
		t.Fatalf("instants = %v, want one Inject and one Eject", instants)
	}
}
