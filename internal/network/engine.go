// The sharded parallel tick engine. The mesh is partitioned into contiguous
// node-range shards; each shard beyond the first gets a persistent worker
// goroutine, and every cycle advances in barrier-separated phases that mirror
// the register-latched two-phase semantics the serial network always had:
//
//	phase 1 (links):   shard-local link shift and flit/credit delivery
//	phase 2 (compute): router and NI pipelines tick
//	phase 3 (cong):    DBAR congestion fill, then a separate swap phase
//
// Sharding is bit-exact because all cross-component communication flows
// through latched links, and each delay line is touched by exactly one shard
// per phase: a link's flit wire belongs to the shard of its receiver (which
// shifts and delivers it in phase 1 and is the only pusher of its credit wire
// in phase 2), and its credit wire belongs to the shard of its sender
// (symmetrically). The congestion fill reads neighbor state that phase 2 no
// longer mutates and writes only shard-own next-tables; the swap is again
// shard-own. Within a phase, shards share no mutable state.
package network

import (
	"sync"

	"rair/internal/faults"
	"rair/internal/msg"
	"rair/internal/router"
	"rair/internal/topology"
)

type enginePhase uint8

const (
	phaseLinks enginePhase = iota
	phaseCompute
	phaseCongFill
	phaseCongSwap
)

// The typed bindings replace the seed's closure dispatch: one small struct
// per (link wire, receiver) pair, devirtualized into four flat slices per
// shard so phase 1 is a tight loop of direct struct calls.
type routerFlitBinding struct {
	link *router.Link
	r    *router.Router
	dir  topology.Dir // input port at r
}

type niFlitBinding struct {
	link *router.Link
	ni   *router.NI
}

type routerCreditBinding struct {
	link *router.Link
	r    *router.Router
	dir  topology.Dir // output port at r
}

type niCreditBinding struct {
	link *router.Link
	ni   *router.NI
}

// ejection buffers one delivered packet so OnEject callbacks run on the
// coordinating goroutine in deterministic node order, never concurrently.
type ejection struct {
	pkt *msg.Packet
	now int64
}

// shard owns a contiguous node range: its routers and NIs, plus every link
// wire whose receiver lives in the range.
type shard struct {
	routers []*router.Router
	nis     []*router.NI

	rFlit []routerFlitBinding
	nFlit []niFlitBinding
	rCred []routerCreditBinding
	nCred []niCreditBinding

	// active is rebuilt every compute phase: the routers that actually
	// ticked. Drain detection is O(len(active)) instead of O(mesh).
	active []*router.Router

	// ejections buffers OnEject calls made during phase 1 (only allocated
	// when the network has an OnEject observer).
	ejections []ejection
}

// engine drives the shards. It deliberately holds no reference back to the
// Network so that worker goroutines (which capture the engine) never keep an
// abandoned Network alive; the Network's finalizer can then stop them.
type engine struct {
	mesh    *topology.Mesh
	routers []*router.Router
	shards  []*shard
	now     int64

	// faults, when non-nil, stalls routers in the compute phase. Stall
	// decisions are pure hashes of (node, cycle), and the per-node stall
	// state is only touched by the node's owning shard, so fault injection
	// preserves the engine's bit-exactness across worker counts.
	faults *faults.Injector

	// cmd[i] feeds shard i+1's worker; shard 0 runs on the coordinator.
	cmd  []chan enginePhase
	done chan struct{}
	stop sync.Once
}

// newEngine partitions nodes into max(1, workers) contiguous shards (capped
// at the node count) and starts one persistent worker per shard beyond the
// first.
func newEngine(mesh *topology.Mesh, routers []*router.Router, nis []*router.NI, workers int) *engine {
	n := mesh.N()
	s := workers
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	e := &engine{mesh: mesh, routers: routers, shards: make([]*shard, s)}
	for i := range e.shards {
		lo, hi := i*n/s, (i+1)*n/s
		e.shards[i] = &shard{routers: routers[lo:hi], nis: nis[lo:hi]}
	}
	if s > 1 {
		e.cmd = make([]chan enginePhase, s-1)
		e.done = make(chan struct{}, s-1)
		for i := range e.cmd {
			e.cmd[i] = make(chan enginePhase)
			go e.worker(e.cmd[i], e.shards[i+1])
		}
	}
	return e
}

// shardOf returns the shard owning node id (the inverse of the partition in
// newEngine).
func (e *engine) shardOf(id int) *shard {
	s, n := len(e.shards), e.mesh.N()
	i := id * s / n
	// Integer partition boundaries don't invert exactly; walk the (at most
	// one-off) error out.
	for i > 0 && id < i*n/s {
		i--
	}
	for i < s-1 && id >= (i+1)*n/s {
		i++
	}
	return e.shards[i]
}

func (e *engine) worker(cmd chan enginePhase, sh *shard) {
	for ph := range cmd {
		e.exec(sh, ph)
		e.done <- struct{}{}
	}
}

// run executes one phase across all shards and waits for the barrier. The
// coordinator handles shard 0 itself while the workers run theirs.
func (e *engine) run(ph enginePhase) {
	for _, c := range e.cmd {
		c <- ph
	}
	e.exec(e.shards[0], ph)
	for range e.cmd {
		<-e.done
	}
}

// close stops the worker goroutines. Idempotent; the Network calls it from
// Close and from its finalizer.
func (e *engine) close() {
	e.stop.Do(func() {
		for _, c := range e.cmd {
			close(c)
		}
	})
}

func (e *engine) exec(sh *shard, ph enginePhase) {
	switch ph {
	case phaseLinks:
		// Quiescent wires are skipped before the shift call: an idle
		// DelayLine cannot deliver and has no pending push, so not shifting
		// it is exactly equivalent to shifting it (FlitsBusy folds in queued
		// retransmissions, which must re-enter an otherwise idle wire).
		now := e.now
		for _, b := range sh.rFlit {
			if !b.link.FlitsBusy() {
				continue
			}
			if f, ok := b.link.ShiftFlits(now); ok {
				b.r.DeliverFlit(b.dir, f)
			}
		}
		for _, b := range sh.nFlit {
			if !b.link.FlitsBusy() {
				continue
			}
			if f, ok := b.link.ShiftFlits(now); ok {
				b.ni.DeliverFlit(f, now)
			}
		}
		for _, b := range sh.rCred {
			if !b.link.CreditsBusy() {
				continue
			}
			if vc, ok := b.link.ShiftCredits(now); ok {
				b.r.DeliverCredit(b.dir, vc)
			}
		}
		for _, b := range sh.nCred {
			if !b.link.CreditsBusy() {
				continue
			}
			if vc, ok := b.link.ShiftCredits(now); ok {
				b.ni.DeliverCredit(vc)
			}
		}
	case phaseCompute:
		now := e.now
		sh.active = sh.active[:0]
		for _, r := range sh.routers {
			if r.Active() {
				// A stalled router's pipeline freezes for the cycle; it
				// stays in the active set so drain detection still sees
				// its buffered state.
				if e.faults == nil || !e.faults.RouterStalled(r.Node(), now) {
					r.Tick(now)
				}
				sh.active = append(sh.active, r)
			}
		}
		for _, ni := range sh.nis {
			if ni.Active() {
				ni.Tick(now)
			}
		}
	case phaseCongFill:
		// Every router relays, active or not: congestion values travel one
		// hop per cycle through quiet routers too.
		for _, r := range sh.routers {
			id := r.Node()
			for d := topology.North; d < topology.NumDirs; d++ {
				next := r.CongNextRow(d)
				nb := e.mesh.Neighbor(id, d)
				if nb == -1 {
					for k := range next {
						next[k] = 0
					}
					continue
				}
				nr := e.routers[nb]
				next[0] = nr.InPortOccupancy(d)
				prev := nr.CongRow(d)
				copy(next[1:], prev[:len(next)-1])
			}
		}
	case phaseCongSwap:
		for _, r := range sh.routers {
			r.SwapCong()
		}
	}
}
