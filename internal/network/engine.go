// The sharded parallel tick engine. The mesh is partitioned into contiguous
// node-range shards; each shard beyond the first gets a persistent worker
// goroutine, and every cycle advances in barrier-separated phases that mirror
// the register-latched two-phase semantics the serial network always had:
//
//	phase 1 (links):   shard-local link shift and flit/credit delivery
//	phase 2 (compute): router and NI pipelines tick
//	phase 3 (cong):    DBAR congestion fill, then a separate swap phase
//
// Sharding is bit-exact because all cross-component communication flows
// through latched links, and each delay line is touched by exactly one shard
// per phase: a link's flit wire belongs to the shard of its receiver (which
// shifts and delivers it in phase 1 and is the only pusher of its credit wire
// in phase 2), and its credit wire belongs to the shard of its sender
// (symmetrically). The congestion fill reads neighbor state that phase 2 no
// longer mutates and writes only shard-own next-tables; the swap is again
// shard-own. Within a phase, shards share no mutable state.
package network

import (
	"math/bits"
	"sync"
	"time"

	"rair/internal/faults"
	"rair/internal/msg"
	"rair/internal/router"
	"rair/internal/topology"
)

type enginePhase uint8

const (
	phaseLinks enginePhase = iota
	phaseCompute
	phaseCongFill
	phaseCongSwap
)

// The typed bindings replace the seed's closure dispatch: one small struct
// per (link wire, receiver) pair, devirtualized into four flat slices per
// shard so phase 1 is a tight loop of direct struct calls.
type routerFlitBinding struct {
	link *router.Link
	r    *router.Router
	dir  topology.Dir // input port at r
	// foreign marks a wire whose pusher lives on a different shard than
	// this (owning) shard. Foreign wires carry no dirty-bitmap wake mark
	// (the pusher must never write another shard's bitmap) and are polled
	// every cycle from the shard's foreign list instead. Only mesh-boundary
	// wires between shards are foreign — O(mesh width) of them per shard.
	foreign bool
}

type niFlitBinding struct {
	link *router.Link
	ni   *router.NI
}

type routerCreditBinding struct {
	link    *router.Link
	r       *router.Router
	dir     topology.Dir // output port at r
	foreign bool
}

type niCreditBinding struct {
	link *router.Link
	ni   *router.NI
}

// ejection buffers one delivered packet so OnEject callbacks run on the
// coordinating goroutine in deterministic node order, never concurrently.
type ejection struct {
	pkt *msg.Packet
	now int64
}

// shard owns a contiguous node range: its routers and NIs, plus every link
// wire whose receiver lives in the range.
type shard struct {
	idx     int // position in engine.shards (self-profiling index)
	routers []*router.Router
	nis     []*router.NI

	rFlit []routerFlitBinding
	nFlit []niFlitBinding
	rCred []routerCreditBinding
	nCred []niCreditBinding

	// soa is the shard's dense state store (see router.SoA); lo the first
	// node id of the shard's contiguous range.
	soa *router.SoA
	lo  int

	// Dirty-wire bitmaps, allocated by finalize once all bindings exist.
	// flitDirty indexes [rFlit | nFlit] (nFlit at offset len(rFlit)),
	// credDirty indexes [rCred | nCred]. A push onto a shard-local wire
	// sets its bit through the link's wake mark; the phase-1 sweep clears
	// a bit once the wire is idle after processing. Cross-shard wires are
	// kept on the foreign lists and polled unconditionally.
	flitDirty []uint64
	credDirty []uint64

	foreignFlit []int32 // rFlit indices fed by another shard
	foreignCred []int32 // rCred indices fed by another shard

	// ejections buffers OnEject calls made during phase 1 (only allocated
	// when the network has an OnEject observer).
	ejections []ejection
}

// engine drives the shards. It deliberately holds no reference back to the
// Network so that worker goroutines (which capture the engine) never keep an
// abandoned Network alive; the Network's finalizer can then stop them.
type engine struct {
	mesh    *topology.Mesh
	routers []*router.Router
	shards  []*shard
	now     int64

	// neigh answers adjacency for the congestion relay. Defaults to the
	// mesh's Neighbor; chiplet systems override it to clip tile edges so
	// DBAR congestion never propagates across links that were never wired.
	neigh func(id int, d topology.Dir) int

	// faults, when non-nil, stalls routers in the compute phase. Stall
	// decisions are pure hashes of (node, cycle), and the per-node stall
	// state is only touched by the node's owning shard, so fault injection
	// preserves the engine's bit-exactness across worker counts.
	faults *faults.Injector

	// prof, when non-nil, records the engine's self-profile (per-shard
	// phase timings, barrier waits, sweep sizes); see profile.go.
	prof *engineProf

	// cmd[i] feeds shard i+1's worker; shard 0 runs on the coordinator.
	cmd  []chan enginePhase
	done chan struct{}
	stop sync.Once
}

// newEngine partitions nodes into max(1, workers) contiguous shards (capped
// at the node count) and starts one persistent worker per shard beyond the
// first.
func newEngine(mesh *topology.Mesh, routers []*router.Router, nis []*router.NI, workers int, soas []*router.SoA) *engine {
	n := mesh.N()
	s := shardCount(n, workers)
	e := &engine{mesh: mesh, routers: routers, shards: make([]*shard, s), neigh: mesh.Neighbor}
	for i := range e.shards {
		lo, hi := i*n/s, (i+1)*n/s
		e.shards[i] = &shard{idx: i, routers: routers[lo:hi], nis: nis[lo:hi], soa: soas[i], lo: lo}
	}
	if s > 1 {
		e.cmd = make([]chan enginePhase, s-1)
		e.done = make(chan struct{}, s-1)
		for i := range e.cmd {
			e.cmd[i] = make(chan enginePhase)
			go e.worker(e.cmd[i], e.shards[i+1])
		}
	}
	return e
}

// shardCount returns the number of shards a mesh of n nodes is split into
// for the requested worker count (the partition itself is i*n/s slices).
func shardCount(n, workers int) int {
	s := workers
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	return s
}

// finalize sizes the dirty-wire bitmaps now that every binding exists,
// attaches each shard-local wire's wake mark, and collects cross-shard
// wires into the always-polled foreign lists.
func (e *engine) finalize() {
	for _, sh := range e.shards {
		sh.flitDirty = make([]uint64, (len(sh.rFlit)+len(sh.nFlit)+63)/64)
		sh.credDirty = make([]uint64, (len(sh.rCred)+len(sh.nCred)+63)/64)
		for i := range sh.rFlit {
			if sh.rFlit[i].foreign {
				sh.foreignFlit = append(sh.foreignFlit, int32(i))
				continue
			}
			sh.rFlit[i].link.SetFlitWake(&sh.flitDirty[i>>6], 1<<(uint(i)&63))
		}
		for j := range sh.nFlit {
			i := len(sh.rFlit) + j
			sh.nFlit[j].link.SetFlitWake(&sh.flitDirty[i>>6], 1<<(uint(i)&63))
		}
		for i := range sh.rCred {
			if sh.rCred[i].foreign {
				sh.foreignCred = append(sh.foreignCred, int32(i))
				continue
			}
			sh.rCred[i].link.SetCreditWake(&sh.credDirty[i>>6], 1<<(uint(i)&63))
		}
		for j := range sh.nCred {
			i := len(sh.rCred) + j
			sh.nCred[j].link.SetCreditWake(&sh.credDirty[i>>6], 1<<(uint(i)&63))
		}
	}
}

// shardOf returns the shard owning node id (the inverse of the partition in
// newEngine).
func (e *engine) shardOf(id int) *shard {
	s, n := len(e.shards), e.mesh.N()
	i := id * s / n
	// Integer partition boundaries don't invert exactly; walk the (at most
	// one-off) error out.
	for i > 0 && id < i*n/s {
		i--
	}
	for i < s-1 && id >= (i+1)*n/s {
		i++
	}
	return e.shards[i]
}

func (e *engine) worker(cmd chan enginePhase, sh *shard) {
	for ph := range cmd {
		e.exec(sh, ph)
		e.done <- struct{}{}
	}
}

// run executes one phase across all shards and waits for the barrier. The
// coordinator handles shard 0 itself while the workers run theirs. With
// profiling on, the time the coordinator spends draining worker completions
// after finishing its own shard — the imbalance cost of the partition — is
// recorded as the phase's barrier wait.
func (e *engine) run(ph enginePhase) {
	for _, c := range e.cmd {
		c <- ph
	}
	e.exec(e.shards[0], ph)
	if e.prof != nil && len(e.cmd) > 0 {
		start := time.Now()
		for range e.cmd {
			<-e.done
		}
		e.prof.recordBarrier(ph, time.Since(start))
		return
	}
	for range e.cmd {
		<-e.done
	}
}

// close stops the worker goroutines. Idempotent; the Network calls it from
// Close and from its finalizer.
func (e *engine) close() {
	e.stop.Do(func() {
		for _, c := range e.cmd {
			close(c)
		}
	})
}

// exec runs one phase on one shard, wrapping execPhase with wall-time
// accounting when profiling is on. The timed path is taken by the shard's
// own goroutine (worker or coordinator), so the counter write stays within
// the ownership discipline.
func (e *engine) exec(sh *shard, ph enginePhase) {
	if e.prof == nil {
		e.execPhase(sh, ph)
		return
	}
	start := time.Now()
	e.execPhase(sh, ph)
	e.prof.shards[sh.idx].phaseNS[ph] += time.Since(start).Nanoseconds()
}

func (e *engine) execPhase(sh *shard, ph enginePhase) {
	switch ph {
	case phaseLinks:
		// Dirty-wire sweep: only wires with something in flight have their
		// bit set (pushes set it through the link's wake mark), so quiescent
		// wires cost nothing — not even the FlitsBusy probe. A bit is
		// cleared once its wire is idle after processing; retransmission
		// state keeps a wire busy and therefore dirty. Bits are walked in
		// ascending index order, which preserves the pre-bitmap processing
		// order (in particular nFlit ejection order, which statistics
		// replay depends on). Cross-shard wires are polled from the foreign
		// lists exactly as before; their deliveries only add to commutative
		// per-port state, so processing them after the dirty wires of the
		// same kind cannot change results.
		now := e.now
		nrf := len(sh.rFlit)
		// Sweep-size counters; folded into the shard's profile block only
		// when profiling is on (register increments otherwise).
		var dirtyFlit, dirtyCred int64
		for wi, w := range sh.flitDirty {
			if w == 0 {
				continue
			}
			keep := uint64(0)
			base := wi << 6
			for m := w; m != 0; m &= m - 1 {
				i := base + bits.TrailingZeros64(m)
				dirtyFlit++
				var l *router.Link
				if i < nrf {
					b := &sh.rFlit[i]
					l = b.link
					if f, ok := l.ShiftFlits(now); ok {
						b.r.DeliverFlit(b.dir, f)
					}
				} else {
					b := &sh.nFlit[i-nrf]
					l = b.link
					if f, ok := l.ShiftFlits(now); ok {
						b.ni.DeliverFlit(f, now)
					}
				}
				if l.FlitsBusy() {
					keep |= 1 << (uint(i) & 63)
				}
			}
			sh.flitDirty[wi] = keep
		}
		for _, i := range sh.foreignFlit {
			b := &sh.rFlit[i]
			if !b.link.FlitsBusy() {
				continue
			}
			if f, ok := b.link.ShiftFlits(now); ok {
				b.r.DeliverFlit(b.dir, f)
			}
		}
		nrc := len(sh.rCred)
		for wi, w := range sh.credDirty {
			if w == 0 {
				continue
			}
			keep := uint64(0)
			base := wi << 6
			for m := w; m != 0; m &= m - 1 {
				i := base + bits.TrailingZeros64(m)
				dirtyCred++
				var l *router.Link
				if i < nrc {
					b := &sh.rCred[i]
					l = b.link
					if vc, ok := l.ShiftCredits(now); ok {
						b.r.DeliverCredit(b.dir, vc)
					}
				} else {
					b := &sh.nCred[i-nrc]
					l = b.link
					if vc, ok := l.ShiftCredits(now); ok {
						b.ni.DeliverCredit(vc)
					}
				}
				if l.CreditsBusy() {
					keep |= 1 << (uint(i) & 63)
				}
			}
			sh.credDirty[wi] = keep
		}
		for _, i := range sh.foreignCred {
			b := &sh.rCred[i]
			if !b.link.CreditsBusy() {
				continue
			}
			if vc, ok := b.link.ShiftCredits(now); ok {
				b.r.DeliverCredit(b.dir, vc)
			}
		}
		if p := e.prof; p != nil {
			sp := &p.shards[sh.idx]
			sp.dirtyFlit += dirtyFlit
			sp.dirtyCred += dirtyCred
		}
	case phaseCompute:
		// Armed-component sweep: a router's wake bit is set by flit arrival
		// (phase 1, this shard) and cleared here once its work counter hits
		// zero; an NI's is set at injection. A stalled router keeps its bit
		// (its work cannot drain while frozen), so fault windows never
		// detach a busy router from the sweep.
		now := e.now
		soa := sh.soa
		var armedR, armedN int64
		for wi, w := range soa.ArmedR {
			if w == 0 {
				continue
			}
			keep := uint64(0)
			base := wi << 6
			for m := w; m != 0; m &= m - 1 {
				li := base + bits.TrailingZeros64(m)
				armedR++
				r := sh.routers[li]
				if e.faults == nil || !e.faults.RouterStalled(r.Node(), now) {
					r.Tick(now)
				}
				if soa.Work[li] > 0 {
					keep |= 1 << (uint(li) & 63)
				}
			}
			soa.ArmedR[wi] = keep
		}
		for wi, w := range soa.ArmedN {
			if w == 0 {
				continue
			}
			keep := uint64(0)
			base := wi << 6
			for m := w; m != 0; m &= m - 1 {
				li := base + bits.TrailingZeros64(m)
				armedN++
				sh.nis[li].Tick(now)
				if soa.NIWork[li] > 0 {
					keep |= 1 << (uint(li) & 63)
				}
			}
			soa.ArmedN[wi] = keep
		}
		if p := e.prof; p != nil {
			sp := &p.shards[sh.idx]
			sp.routerTicks += armedR
			sp.niTicks += armedN
		}
	case phaseCongFill:
		// Every router relays, active or not: congestion values travel one
		// hop per cycle through quiet routers too.
		for _, r := range sh.routers {
			id := r.Node()
			for d := topology.North; d < topology.NumDirs; d++ {
				next := r.CongNextRow(d)
				nb := e.neigh(id, d)
				if nb == -1 {
					for k := range next {
						next[k] = 0
					}
					continue
				}
				nr := e.routers[nb]
				next[0] = nr.InPortOccupancy(d)
				prev := nr.CongRow(d)
				copy(next[1:], prev[:len(next)-1])
			}
		}
	case phaseCongSwap:
		for _, r := range sh.routers {
			r.SwapCong()
		}
	}
}
