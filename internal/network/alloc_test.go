package network

import (
	"testing"

	"rair/internal/core"
	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/topology"
)

// TestSteadyStateTickAllocs is the zero-allocation gate for the simulator's
// hot loop: with telemetry off and a packet pool recycling ejected packets,
// a loaded 8x8 RAIR mesh must tick without touching the heap. Every
// transient the datapath needs (flit rings, arbiter scratch, ejection
// replay buffers, source queues) is either pre-sized at construction or
// reaches its high-water capacity during warmup, so a regression here means
// a new allocation crept onto the per-cycle path.
func TestSteadyStateTickAllocs(t *testing.T) {
	regions := region.Quadrants(topology.NewMesh(8, 8))
	pool := msg.NewPool()
	// Seed the freelist with more packets than the mesh can hold in
	// flight, so the measured window can never out-draw the warmup peak.
	for i := 0; i < 512; i++ {
		pool.Put(&msg.Packet{})
	}
	n := New(Params{
		Router:  router.DefaultConfig(1),
		Regions: regions,
		Alg:     routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Sel:     routing.LocalSelector{},
		Policy:  core.NewFactory(core.Config{}),
		Recycle: pool.Put,
	})
	rng := sim.NewRNG(1)
	nodes := n.Mesh().N()
	var id uint64
	var c int64
	injectPooled := func() {
		for node := 0; node < nodes; node++ {
			if !rng.Bool(0.05) {
				continue
			}
			dst := rng.Intn(nodes)
			if dst == node {
				continue
			}
			id++
			p := pool.Get()
			p.ID, p.App, p.Src, p.Dst = id, regions.AppAt(node), node, dst
			p.Size = 1 + 4*rng.Intn(2)
			p.Class = msg.ClassRequest
			n.NI(node).Inject(p, c)
		}
	}
	for ; c < 2000; c++ {
		injectPooled()
		n.Tick(c)
	}
	allocs := testing.AllocsPerRun(200, func() {
		injectPooled()
		n.Tick(c)
		c++
	})
	if allocs != 0 {
		t.Errorf("steady-state tick allocated %.1f objects/op, want 0", allocs)
	}
}
