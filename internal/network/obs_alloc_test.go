package network

import (
	"testing"

	"rair/internal/core"
	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/telemetry"
	"rair/internal/topology"
)

// TestObsOffTickAllocs is the observability layer's zero-cost-when-off
// gate: with telemetry collecting (so probes are live and windows sample)
// but attribution and engine profiling off, the steady-state tick must
// still never touch the heap. The attribution charge sites sit on the
// router's hottest paths behind cached nil-probe guards; a regression here
// means one of them started doing work while disabled.
func TestObsOffTickAllocs(t *testing.T) {
	regions := region.Quadrants(topology.NewMesh(8, 8))
	pool := msg.NewPool()
	for i := 0; i < 512; i++ {
		pool.Put(&msg.Packet{})
	}
	// WindowCap bounds the ring so sampling reaches its high-water mark
	// during warmup; Attribution stays off — that is the gate.
	tel := telemetry.NewCollector(telemetry.Config{Window: 64, WindowCap: 4})
	n := New(Params{
		Router:    router.DefaultConfig(1),
		Regions:   regions,
		Alg:       routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Sel:       routing.LocalSelector{},
		Policy:    core.NewFactory(core.Config{}),
		Recycle:   pool.Put,
		Telemetry: tel,
	})
	rng := sim.NewRNG(1)
	nodes := n.Mesh().N()
	var id uint64
	var c int64
	injectPooled := func() {
		for node := 0; node < nodes; node++ {
			if !rng.Bool(0.05) {
				continue
			}
			dst := rng.Intn(nodes)
			if dst == node {
				continue
			}
			id++
			p := pool.Get()
			p.ID, p.App, p.Src, p.Dst = id, regions.AppAt(node), node, dst
			p.Size = 1 + 4*rng.Intn(2)
			p.Class = msg.ClassRequest
			n.NI(node).Inject(p, c)
		}
	}
	for ; c < 2000; c++ {
		injectPooled()
		n.Tick(c)
	}
	allocs := testing.AllocsPerRun(200, func() {
		injectPooled()
		n.Tick(c)
		c++
	})
	if allocs != 0 {
		t.Errorf("steady-state tick with telemetry on / obs off allocated %.1f objects/op, want 0", allocs)
	}
}
