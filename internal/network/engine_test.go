package network

import (
	"fmt"
	"testing"

	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/topology"
)

// buildWorkers builds an 8x8 quadrant network with the given worker count and
// selector, recording every delivered packet in order.
func buildWorkers(t testing.TB, workers int, sel func(*region.Map) routing.Selector) (*Network, *[]*msg.Packet) {
	t.Helper()
	regions := region.Quadrants(topology.NewMesh(8, 8))
	var delivered []*msg.Packet
	s := sel(regions)
	n := New(Params{
		Router:  router.DefaultConfig(1),
		Regions: regions,
		Alg:     routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Sel:     s,
		Policy:  policy.NewRoundRobin,
		OnEject: func(p *msg.Packet, now int64) { delivered = append(delivered, p) },
		Workers: workers,
	})
	t.Cleanup(n.Close)
	return n, &delivered
}

func localSel(*region.Map) routing.Selector { return routing.LocalSelector{} }

func dbarSel(regions *region.Map) routing.Selector {
	cfg := router.DefaultConfig(1)
	return routing.DBARSelector{Mesh: regions.Mesh(), Regions: regions, Depth: cfg.Depth * cfg.VCsPerPort()}
}

// driveRandom injects a reproducible random workload and runs to drain,
// returning a full trace of deliveries (packet identity, order, timestamps).
func driveRandom(t *testing.T, n *Network, delivered *[]*msg.Packet) []string {
	t.Helper()
	rng := sim.NewRNG(0x5eed)
	mesh := n.Mesh()
	id := uint64(0)
	var c int64
	for ; c < 600; c++ {
		for i := 0; i < 3; i++ {
			src := int(uint64(rng.Intn(mesh.N())))
			dst := int(uint64(rng.Intn(mesh.N())))
			if src == dst {
				continue
			}
			id++
			n.NI(src).Inject(&msg.Packet{
				ID: id, App: n.Regions().AppAt(src), Src: src, Dst: dst,
				Size: 1 + rng.Intn(5), Class: msg.ClassRequest,
			}, c)
		}
		n.Tick(c)
	}
	for ; c < 100000 && !n.Drained(); c++ {
		n.Tick(c)
	}
	n.CheckDrained()
	trace := make([]string, 0, len(*delivered))
	for _, p := range *delivered {
		trace = append(trace, fmt.Sprintf("%d:%d->%d@%d/%d hops=%d", p.ID, p.Src, p.Dst, p.InjectedAt, p.EjectedAt, p.Hops))
	}
	return trace
}

// TestEngineDeterminism: the sharded engine must produce a bit-identical
// delivery trace (same packets, same cycle stamps, same callback order) as
// the serial path, for any worker count, with and without DBAR propagation.
func TestEngineDeterminism(t *testing.T) {
	for _, sel := range []struct {
		name string
		mk   func(*region.Map) routing.Selector
	}{{"Local", localSel}, {"DBAR", dbarSel}} {
		t.Run(sel.name, func(t *testing.T) {
			nSerial, dSerial := buildWorkers(t, 0, sel.mk)
			ref := driveRandom(t, nSerial, dSerial)
			if len(ref) == 0 {
				t.Fatal("no packets delivered in reference run")
			}
			for _, workers := range []int{2, 3, 4, 8} {
				n, d := buildWorkers(t, workers, sel.mk)
				got := driveRandom(t, n, d)
				if len(got) != len(ref) {
					t.Fatalf("workers=%d delivered %d packets, serial %d", workers, len(got), len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("workers=%d trace diverges at %d:\n serial  %s\n sharded %s", workers, i, ref[i], got[i])
					}
				}
			}
		})
	}
}

// TestEngineShardPartition: every node maps to exactly one shard and shardOf
// inverts the partition for awkward mesh/worker combinations.
func TestEngineShardPartition(t *testing.T) {
	for _, tc := range []struct{ nodes, workers int }{
		{16, 1}, {16, 2}, {16, 3}, {16, 5}, {16, 16}, {16, 64}, {9, 2}, {64, 7},
	} {
		mesh := topology.NewMesh(tc.nodes, 1)
		e := newEngine(mesh, make([]*router.Router, tc.nodes), make([]*router.NI, tc.nodes), tc.workers,
			make([]*router.SoA, shardCount(tc.nodes, tc.workers)))
		total := 0
		for _, sh := range e.shards {
			total += len(sh.routers)
		}
		if total != tc.nodes {
			t.Fatalf("nodes=%d workers=%d: shards cover %d nodes", tc.nodes, tc.workers, total)
		}
		for id := 0; id < tc.nodes; id++ {
			sh := e.shardOf(id)
			found := false
			lo := 0
			for _, cand := range e.shards {
				hi := lo + len(cand.routers)
				if cand == sh {
					found = id >= lo && id < hi
				}
				lo = hi
			}
			if !found {
				t.Fatalf("nodes=%d workers=%d: shardOf(%d) returned wrong shard", tc.nodes, tc.workers, id)
			}
		}
		e.close()
	}
}

// TestCongestionGating: propagation runs iff the selector consumes the
// signal (or the mode forces it).
func TestCongestionGating(t *testing.T) {
	regions := mesh4()
	base := Params{
		Router:  router.DefaultConfig(1),
		Regions: regions,
		Alg:     routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Policy:  policy.NewRoundRobin,
	}
	for _, tc := range []struct {
		name string
		sel  routing.Selector
		mode CongestionMode
		want bool
	}{
		{"local-auto", routing.LocalSelector{}, CongestionAuto, false},
		{"dbar-auto", dbarSel(regions), CongestionAuto, true},
		{"local-forced-on", routing.LocalSelector{}, CongestionOn, true},
		{"dbar-forced-off", dbarSel(regions), CongestionOff, false},
	} {
		p := base
		p.Sel = tc.sel
		p.Congestion = tc.mode
		if got := New(p).CongestionEnabled(); got != tc.want {
			t.Errorf("%s: CongestionEnabled() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDrainedActiveSets: Drained must go false the moment a packet is
// injected, stay false while any flit or credit is outstanding, and become
// true again after delivery — under both serial and sharded engines.
func TestDrainedActiveSets(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			n, delivered := buildWorkers(t, workers, localSel)
			if !n.Drained() {
				t.Fatal("fresh network not drained")
			}
			n.NI(0).Inject(&msg.Packet{ID: 1, Src: 0, Dst: 63, Size: 5, Class: msg.ClassRequest}, 0)
			if n.Drained() {
				t.Fatal("drained with a queued packet")
			}
			var c int64
			for ; c < 1000 && !n.Drained(); c++ {
				n.Tick(c)
			}
			if len(*delivered) != 1 {
				t.Fatalf("delivered %d packets", len(*delivered))
			}
			// After delivery, credits are still flowing back for a few
			// cycles; Drained must have stayed false until the network was
			// genuinely idle. Verify against the exhaustive definition.
			if inside, inflight := n.FlitConservation(); inside != 0 || inflight != 0 {
				t.Fatalf("Drained() true with inside=%d inflight=%d", inside, inflight)
			}
			n.CheckDrained()
		})
	}
}

// TestStuckPacketDiagnostics: the drain watchdog must still identify a wedged
// packet. A one-node region map with a destination outside any app's
// reachable set isn't constructible, so wedge the network by never ticking
// past injection: the packet sits queued, Drained stays false, and
// StuckPacket names it once its residence exceeds the limit.
func TestStuckPacketDiagnostics(t *testing.T) {
	n, _ := buildWorkers(t, 2, localSel)
	p := &msg.Packet{ID: 7, Src: 0, Dst: 63, Size: 5, Class: msg.ClassRequest}
	n.NI(0).Inject(p, 0)
	// Run a handful of cycles so the packet enters the router, then stop
	// ticking the consumer side by checking the watchdog far in the future.
	for c := int64(0); c < 3; c++ {
		n.Tick(c)
	}
	if n.Drained() {
		t.Fatal("drained with an in-flight packet")
	}
	if got := n.StuckPacket(100000, 1000); got == nil {
		t.Fatal("StuckPacket failed to report the wedged packet")
	} else if got.ID != 7 {
		t.Fatalf("StuckPacket returned %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CheckDrained did not panic on an undrained network")
		}
	}()
	n.CheckDrained()
}
