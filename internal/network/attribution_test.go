package network

import (
	"bytes"
	"testing"

	"rair/internal/msg"
	"rair/internal/telemetry"
)

func attributionCollector() *telemetry.Collector {
	return telemetry.NewCollector(telemetry.Config{Window: 128, Attribution: true})
}

// TestAttributionConservation is the accountant's books-balance contract on
// a fully drained run: every row's cause buckets plus inject-queue and
// zero-load cycles sum exactly to its measured packet latency total, the
// zero-load residual is never negative (no packet was double-charged in any
// cycle), and the folded per-row buckets sum to the charge-site counters
// (no charge was lost or folded twice).
func TestAttributionConservation(t *testing.T) {
	tel := attributionCollector()
	telemetryRun(t, 0, tel)

	rep := tel.Attribution()
	if rep == nil || len(rep.Rows) == 0 {
		t.Fatal("attribution on, but no decomposition rows")
	}
	if err := rep.Conservation(); err != nil {
		t.Fatal(err)
	}

	var native, foreign, escape, fault int64
	for _, r := range rep.Rows {
		native += r.NativeCycles
		foreign += r.ForeignCycles
		escape += r.EscapeCycles
		fault += r.FaultCycles
	}
	tot := tel.Totals()
	if native != tot.AttrNativeCycles || foreign != tot.AttrForeignCycles ||
		escape != tot.AttrEscapeCycles || fault != tot.AttrFaultCycles {
		t.Fatalf("folded buckets (n=%d f=%d e=%d x=%d) != charged counters (n=%d f=%d e=%d x=%d)",
			native, foreign, escape, fault,
			tot.AttrNativeCycles, tot.AttrForeignCycles, tot.AttrEscapeCycles, tot.AttrFaultCycles)
	}
	// The quadrant workload contends across regions, so the headline signal
	// must actually fire: some foreign-region interference was observed.
	if foreign == 0 {
		t.Fatal("no foreign-region interference charged on a cross-region workload")
	}
	if fault != 0 {
		t.Fatalf("fault cycles charged on a fault-free run: %d", fault)
	}
	if rep.Total.TotalCycles == 0 || rep.Total.Packets == 0 {
		t.Fatalf("empty total row: %+v", rep.Total)
	}
}

// TestAttributionObserverOnly is the never-perturb contract: the delivery
// trace with attribution enabled is bit-identical to the bare run, at every
// worker count.
func TestAttributionObserverOnly(t *testing.T) {
	base := telemetryRun(t, 0, nil)
	if len(base) == 0 {
		t.Fatal("no deliveries")
	}
	for _, workers := range []int{1, 2, 4} {
		got := telemetryRun(t, workers, attributionCollector())
		if len(got) != len(base) {
			t.Fatalf("workers=%d attribution on: %d delivery records, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d attribution on: delivery trace diverged at record %d", workers, i)
			}
		}
	}
}

// TestAttributionDeterministicAcrossWorkers pins the probe-ownership
// discipline: the full telemetry report — decompositions, windowed blame
// series, counters — is byte-identical at 1, 2 and 4 workers.
func TestAttributionDeterministicAcrossWorkers(t *testing.T) {
	var baseReport []byte
	for _, workers := range []int{1, 2, 4} {
		tel := attributionCollector()
		telemetryRun(t, workers, tel)
		var buf bytes.Buffer
		if err := tel.Report().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if baseReport == nil {
			baseReport = buf.Bytes()
			continue
		}
		if !bytes.Equal(baseReport, buf.Bytes()) {
			t.Fatalf("attribution report differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestAttributionWindowSeries checks the windowed interference-ratio series
// materializes: at least one window carries blame, and every window's ratio
// is consistent with its blame buckets.
func TestAttributionWindowSeries(t *testing.T) {
	tel := attributionCollector()
	telemetryRun(t, 0, tel)
	rep := tel.Report()
	seen := false
	for _, rt := range rep.Routers {
		for _, w := range rt.Windows {
			total := w.BlameNative + w.BlameForeign + w.BlameEscape + w.BlameFault
			if total == 0 {
				if w.InterferenceRatio != 0 {
					t.Fatalf("node %d: ratio %v with no blame", rt.Node, w.InterferenceRatio)
				}
				continue
			}
			seen = true
			want := float64(w.BlameForeign) / float64(total)
			if w.InterferenceRatio != want {
				t.Fatalf("node %d: ratio %v, want %v", rt.Node, w.InterferenceRatio, want)
			}
		}
	}
	if !seen {
		t.Fatal("no window carried blame on a contended workload")
	}
}

// TestAttributionOffLeavesNoTrace checks the off path stays invisible:
// with a collector but attribution off, no blame counters move, no
// decomposition materializes, and window samples stay blame-free.
func TestAttributionOffLeavesNoTrace(t *testing.T) {
	tel := telemetry.NewCollector(telemetry.Config{Window: 128})
	telemetryRun(t, 0, tel)
	tot := tel.Totals()
	if tot.AttrNativeCycles|tot.AttrForeignCycles|tot.AttrEscapeCycles|tot.AttrFaultCycles != 0 {
		t.Fatalf("blame counters moved with attribution off: %+v", tot)
	}
	if rep := tel.Attribution(); rep != nil {
		t.Fatalf("decomposition materialized with attribution off: %+v", rep)
	}
}

// TestBlameNames pins the cause-bucket naming used by exports.
func TestBlameNames(t *testing.T) {
	want := map[int]string{
		msg.BlameNative:  "native",
		msg.BlameForeign: "foreign",
		msg.BlameEscape:  "escape",
		msg.BlameFault:   "fault",
	}
	for b, name := range want {
		if got := msg.BlameName(b); got != name {
			t.Fatalf("BlameName(%d) = %q, want %q", b, got, name)
		}
	}
}
