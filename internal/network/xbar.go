package network

import (
	"fmt"

	"rair/internal/msg"
	"rair/internal/sim"
	"rair/internal/topology"
)

// XBarConfig fixes the inter-chiplet crossbar parameters. The switch joins
// every chiplet's gateway PHY; its aggregate lane pool is partitioned
// DQ-pin style into one independent channel per source chiplet (e.g. 64
// lanes over 4 chiplets = 16 lanes each), so one chiplet saturating its
// channel cannot steal serialization bandwidth from another — the switch
// extends RAIR's isolation story across the package.
type XBarConfig struct {
	// Lanes is the total pin/lane pool of the switch, split evenly into
	// one channel per source chiplet. Default 64.
	Lanes int
	// PhitsPerFlit is how many lane-cycles (phits) one flit occupies on a
	// full-width channel of Lanes lanes; narrower per-chiplet channels
	// serialize proportionally longer. Default 16 (128-bit flit over
	// 8-bit lanes).
	PhitsPerFlit int
	// Latency is the fixed switch+PHY crossing time in cycles, on top of
	// serialization. Default 8.
	Latency int
}

func (c XBarConfig) withDefaults() XBarConfig {
	if c.Lanes == 0 {
		c.Lanes = 64
	}
	if c.PhitsPerFlit == 0 {
		c.PhitsPerFlit = 16
	}
	if c.Latency == 0 {
		c.Latency = 8
	}
	return c
}

func (c XBarConfig) validate(chips int) error {
	switch {
	case c.Lanes < 1:
		return fmt.Errorf("network: crossbar needs at least one lane")
	case c.PhitsPerFlit < 1:
		return fmt.Errorf("network: PhitsPerFlit must be >= 1")
	case c.Latency < 1:
		return fmt.Errorf("network: crossbar latency must be >= 1")
	case chips < 2:
		return fmt.Errorf("network: crossbar needs at least two chiplets")
	}
	return nil
}

// flitCycles is the serialization time of one flit on a per-chiplet channel
// after the lane pool is split chips ways.
func (c XBarConfig) flitCycles(chips int) int64 {
	perChan := c.Lanes / chips
	if perChan < 1 {
		perChan = 1
	}
	return int64((c.PhitsPerFlit + perChan - 1) / perChan)
}

// xbarFlight is a packet crossing the switch: granted at grant, occupying
// its source channel until chanFree and its destination port until outFree,
// delivered at due.
type xbarFlight struct {
	pkt     *msg.Packet
	created int64 // CreatedAt of the first leg, restored after re-injection
	due     int64
}

// Crossbar is the inter-chiplet switch. Each source chiplet owns a
// bandwidth-partitioned ingress channel (an unbounded FIFO draining at the
// channel's serialization rate); each destination chiplet owns one output
// port granted round-robin over the sources. Packets arrive via Submit when
// their first leg ejects at the source gateway and are handed to deliver
// (re-injection at the destination gateway) when their crossing completes.
//
// The crossbar ticks on the coordinator after ejection replay, so it is
// bit-exact across worker counts by construction.
type Crossbar struct {
	cfg   XBarConfig
	chips *topology.Chiplets

	holdPerFlit int64 // serialization cycles per flit on a partitioned channel

	ingress  []*sim.Queue[xbarFlight] // per source chiplet
	chanFree []int64                  // cycle each source channel frees up
	outFree  []int64                  // cycle each destination port frees up
	rr       []int                    // per-destination round-robin source cursor

	flights []xbarFlight // granted, in flight through the switch

	deliver func(f xbarFlight, now int64)

	// OnGrant observes every grant: src/dst chiplets, grant cycle and the
	// serialization hold. Test hook for the channel-partitioning property
	// (never two grants on one source channel overlapping in time).
	OnGrant func(src, dst int, now, hold int64)

	submitted, delivered         int64
	flitsSubmitted, flitsCrossed int64
}

// NewCrossbar builds the switch for a chiplet system. deliver is called on
// the coordinator when a packet finishes crossing.
func NewCrossbar(cfg XBarConfig, chips *topology.Chiplets, deliver func(f xbarFlight, now int64)) (*Crossbar, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(chips.Chips()); err != nil {
		return nil, err
	}
	n := chips.Chips()
	x := &Crossbar{
		cfg:         cfg,
		chips:       chips,
		holdPerFlit: cfg.flitCycles(n),
		ingress:     make([]*sim.Queue[xbarFlight], n),
		chanFree:    make([]int64, n),
		outFree:     make([]int64, n),
		rr:          make([]int, n),
		deliver:     deliver,
	}
	for i := range x.ingress {
		x.ingress[i] = sim.NewQueue[xbarFlight](4)
	}
	return x, nil
}

// Submit hands the crossbar a packet whose first leg just ejected at its
// source gateway. created preserves the leg-1 CreatedAt stamp so end-to-end
// latency spans both legs.
func (x *Crossbar) Submit(p *msg.Packet, created, now int64) {
	src := x.chips.ChipOf(p.Dst) // leg-1 Dst is the source gateway
	x.ingress[src].Push(xbarFlight{pkt: p, created: created})
	x.submitted++
	x.flitsSubmitted += int64(p.Size)
}

// Tick advances the switch one cycle: completed crossings deliver first (in
// grant order), then each destination port considers one new grant,
// round-robin over source channels with a waiting head packet.
func (x *Crossbar) Tick(now int64) {
	// Deliver due flights. Grants are appended in deterministic scan order
	// and due times are monotone per (src,dst) pair, so a single in-order
	// compaction pass suffices.
	if len(x.flights) > 0 {
		keep := x.flights[:0]
		for _, f := range x.flights {
			if f.due <= now {
				x.delivered++
				x.flitsCrossed += int64(f.pkt.Size)
				x.deliver(f, now)
				continue
			}
			keep = append(keep, f)
		}
		x.flights = keep
	}
	// Grant scan: one new packet per destination port per cycle, sources
	// polled round-robin. A grant occupies the source channel and the
	// destination port for the packet's full serialization hold, so two
	// chiplets can never drive one channel in the same cycle.
	n := len(x.ingress)
	for dst := 0; dst < n; dst++ {
		if x.outFree[dst] > now {
			continue
		}
		for i := 0; i < n; i++ {
			src := (x.rr[dst] + i) % n
			if x.chanFree[src] > now {
				continue
			}
			head, ok := x.ingress[src].Peek()
			if !ok || x.chips.ChipOf(head.pkt.FinalDst) != dst {
				continue
			}
			x.ingress[src].Pop()
			hold := x.holdPerFlit * int64(head.pkt.Size)
			x.chanFree[src] = now + hold
			x.outFree[dst] = now + hold
			head.due = now + int64(x.cfg.Latency) + hold
			x.flights = append(x.flights, head)
			if x.OnGrant != nil {
				x.OnGrant(src, dst, now, hold)
			}
			x.rr[dst] = (src + 1) % n
			break
		}
	}
}

// Idle reports whether the switch holds no queued or in-flight packets.
func (x *Crossbar) Idle() bool {
	if len(x.flights) > 0 {
		return false
	}
	for _, q := range x.ingress {
		if !q.Empty() {
			return false
		}
	}
	return true
}

// Pending reports packets inside the switch (queued plus crossing).
func (x *Crossbar) Pending() int {
	n := len(x.flights)
	for _, q := range x.ingress {
		n += q.Len()
	}
	return n
}

// FlitCyclesPerFlit exposes the per-flit serialization hold of a
// partitioned channel (observability and tests).
func (x *Crossbar) FlitCyclesPerFlit() int64 { return x.holdPerFlit }

// Counters reports lifetime packet and flit totals through the switch.
func (x *Crossbar) Counters() (submitted, delivered, flitsSubmitted, flitsCrossed int64) {
	return x.submitted, x.delivered, x.flitsSubmitted, x.flitsCrossed
}
