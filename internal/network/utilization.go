package network

import (
	"fmt"
	"strings"

	"rair/internal/topology"
)

// FlitsSent reports the flits pushed by node's router onto its output link
// at dir since construction.
func (n *Network) FlitsSent(node int, dir topology.Dir) int64 {
	return n.routers[node].FlitsSent(dir)
}

// MaxLinkUtilization returns the highest per-link utilization (flits per
// cycle) over the given cycle count, excluding injection/ejection links.
func (n *Network) MaxLinkUtilization(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	var max int64
	for _, r := range n.routers {
		for d := topology.North; d < topology.NumDirs; d++ {
			if f := r.FlitsSent(d); f > max {
				max = f
			}
		}
	}
	return float64(max) / float64(cycles)
}

// UtilizationHeatmap renders an ASCII heatmap of each router's busiest
// output link over the given cycle count: '.' for idle through '9' for a
// link at ≥90% utilization. A quick visual check of where congestion
// concentrates (hot regions, MC corners).
func (n *Network) UtilizationHeatmap(cycles int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-router max output-link utilization over %d cycles\n", cycles)
	for y := 0; y < n.mesh.H; y++ {
		for x := 0; x < n.mesh.W; x++ {
			r := n.routers[n.mesh.ID(topology.Coord{X: x, Y: y})]
			var max int64
			for d := topology.North; d < topology.NumDirs; d++ {
				if f := r.FlitsSent(d); f > max {
					max = f
				}
			}
			u := 0.0
			if cycles > 0 {
				u = float64(max) / float64(cycles)
			}
			switch {
			case u < 0.05:
				b.WriteByte('.')
			case u >= 0.95:
				b.WriteByte('9')
			default:
				b.WriteByte(byte('0' + int(u*10)))
			}
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
