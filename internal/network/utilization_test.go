package network

import (
	"strings"
	"testing"

	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/topology"
)

func routerCfg() router.Config { return router.DefaultConfig(1) }

func TestLinkUtilizationCounts(t *testing.T) {
	n, _ := build(t, mesh4(), policy.NewRoundRobin, nil)
	// A single packet 0 -> 3 travels east along the top row only.
	n.NI(0).Inject(&msg.Packet{ID: 1, Src: 0, Dst: 3, Size: 5, Class: msg.ClassRequest}, 0)
	run(n, 0, 200)
	if f := n.FlitsSent(0, topology.East); f != 5 {
		t.Fatalf("node 0 east sent %d flits, want 5", f)
	}
	if f := n.FlitsSent(0, topology.South); f != 0 {
		t.Fatalf("node 0 south sent %d flits, want 0", f)
	}
	if f := n.FlitsSent(3, topology.Local); f != 5 {
		t.Fatalf("ejection link sent %d flits, want 5", f)
	}
	if n.MaxLinkUtilization(200) <= 0 {
		t.Fatal("utilization must be positive")
	}
	if n.MaxLinkUtilization(0) != 0 {
		t.Fatal("zero-cycle utilization must be 0")
	}
}

func TestHeatmapRendering(t *testing.T) {
	n, _ := build(t, mesh4(), policy.NewRoundRobin, nil)
	for i := 0; i < 50; i++ {
		n.NI(0).Inject(&msg.Packet{ID: uint64(i + 1), Src: 0, Dst: 3, Size: 5, Class: msg.ClassRequest}, 0)
	}
	run(n, 0, 400)
	hm := n.UtilizationHeatmap(400)
	lines := strings.Split(strings.TrimSpace(hm), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("heatmap shape:\n%s", hm)
	}
	// Top row must show activity; the bottom row must be idle.
	if !strings.ContainsAny(lines[1], "123456789") {
		t.Fatalf("top row idle:\n%s", hm)
	}
	if strings.ContainsAny(lines[4], "123456789") {
		t.Fatalf("bottom row active:\n%s", hm)
	}
}

func TestWestFirstDeliversEverything(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	regions := region.Single(mesh)
	var delivered int
	n := New(Params{
		Router:  routerCfg(),
		Regions: regions,
		Alg:     routing.WestFirst{Mesh: mesh},
		Sel:     routing.LocalSelector{},
		Policy:  policy.NewRoundRobin,
		OnEject: func(p *msg.Packet, now int64) { delivered++ },
	})
	id := uint64(0)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			id++
			n.NI(s).Inject(&msg.Packet{ID: id, Src: s, Dst: d, Size: 3, Class: msg.ClassRequest}, 0)
		}
	}
	for c := int64(0); c < 20000 && !n.Drained(); c++ {
		n.Tick(c)
	}
	if delivered != int(id) {
		t.Fatalf("west-first delivered %d of %d", delivered, id)
	}
}

func TestAgePolicyDeliversEverything(t *testing.T) {
	n, delivered := build(t, mesh4(), policy.NewAge, nil)
	id := uint64(0)
	for s := 0; s < 16; s++ {
		id++
		n.NI(s).Inject(&msg.Packet{ID: id, Src: s, Dst: 15 - s, Size: 5, Class: msg.ClassRequest}, 0)
	}
	run(n, 0, 3000)
	if len(*delivered) != int(id) {
		t.Fatalf("age policy delivered %d of %d", len(*delivered), id)
	}
}

func TestLBDRIntraRegionNetwork(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	regions := region.Quadrants(mesh)
	corners := mesh.Corners()
	alg, err := routing.NewLBDR(regions, corners[:])
	if err != nil {
		t.Fatal(err)
	}
	var delivered int
	n := New(Params{
		Router:  routerCfg(),
		Regions: regions,
		Alg:     alg,
		Sel:     routing.LocalSelector{},
		Policy:  policy.NewRoundRobin,
		OnEject: func(p *msg.Packet, now int64) { delivered++ },
	})
	// Intra-quadrant traffic only (LBDR's restriction).
	id := uint64(0)
	for app := 0; app < 4; app++ {
		nodes := regions.Nodes(app)
		for i, s := range nodes {
			d := nodes[(i+3)%len(nodes)]
			if s == d {
				continue
			}
			id++
			n.NI(s).Inject(&msg.Packet{ID: id, App: app, Src: s, Dst: d, Size: 3, Class: msg.ClassRequest}, 0)
		}
	}
	for c := int64(0); c < 20000 && !n.Drained(); c++ {
		n.Tick(c)
	}
	if delivered != int(id) {
		t.Fatalf("LBDR delivered %d of %d", delivered, id)
	}
}

// DBAR's systolic congestion propagation: sustained eastbound traffic along
// the top row must become visible in upstream routers' path-occupancy view
// of the East direction, while quiet directions read zero.
func TestCongestionPropagation(t *testing.T) {
	// Local selection doesn't consume the signal, so force propagation on to
	// exercise the systolic machinery itself.
	regions := mesh4()
	n := New(Params{
		Router:     routerCfg(),
		Regions:    regions,
		Alg:        routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Sel:        routing.LocalSelector{},
		Policy:     policy.NewRoundRobin,
		Congestion: CongestionOn,
	})
	// Saturate the 0->3 row.
	id := uint64(0)
	for c := int64(0); c < 300; c++ {
		for i := 0; i < 2; i++ {
			id++
			n.NI(0).Inject(&msg.Packet{ID: id, Src: 0, Dst: 3, Size: 5, Class: msg.ClassRequest}, c)
		}
		n.Tick(c)
	}
	r0 := n.Router(0)
	if occ := r0.PathOccupancy(topology.East, 3); occ <= 0 {
		t.Fatalf("east path occupancy %d, want > 0", occ)
	}
	if occ := r0.PathOccupancy(topology.South, 3); occ != 0 {
		t.Fatalf("south path occupancy %d, want 0", occ)
	}
	// The one-hop view must match the neighbor's actual input-port state
	// (one cycle stale, but under steady load both are positive).
	if n.Router(1).InPortOccupancy(topology.East) <= 0 {
		t.Fatal("neighbor input port unexpectedly empty under sustained load")
	}
}

// Golden determinism canary: a fixed scenario must reproduce this exact
// latency forever. If a deliberate behavioral change moves it, update the
// constant and note the change in the commit; an unexplained move means a
// regression in cycle-level behavior.
func TestGoldenDeterminism(t *testing.T) {
	n, delivered := build(t, mesh4(), policy.NewRoundRobin, nil)
	rng := sim.NewRNG(0xfeedbeef)
	var id uint64
	for c := int64(0); c < 2000; c++ {
		if c < 1500 && rng.Bool(0.2) {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				id++
				n.NI(src).Inject(&msg.Packet{ID: id, Src: src, Dst: dst,
					Size: 1 + 4*rng.Intn(2), Class: msg.ClassRequest}, c)
			}
		}
		n.Tick(c)
	}
	var sum int64
	for _, p := range *delivered {
		sum += p.TotalLatency()
	}
	const wantPackets = 297
	const wantLatencySum = 6696
	if len(*delivered) != wantPackets || sum != wantLatencySum {
		t.Fatalf("golden run moved: %d packets, latency sum %d (want %d, %d)",
			len(*delivered), sum, wantPackets, wantLatencySum)
	}
}

func TestFlitConservation(t *testing.T) {
	n, _ := build(t, mesh4(), policy.NewRoundRobin, nil)
	n.NI(0).Inject(&msg.Packet{ID: 1, Src: 0, Dst: 15, Size: 5, Class: msg.ClassRequest}, 0)
	// Mid-flight: material inside and one packet in flight.
	for c := int64(0); c < 10; c++ {
		n.Tick(c)
	}
	inside, inflight := n.FlitConservation()
	if inflight != 1 || inside == 0 {
		t.Fatalf("mid-flight: inside=%d inflight=%d", inside, inflight)
	}
	for c := int64(10); c < 300; c++ {
		n.Tick(c)
	}
	inside, inflight = n.FlitConservation()
	if inside != 0 || inflight != 0 {
		t.Fatalf("after drain: inside=%d inflight=%d", inside, inflight)
	}
}
