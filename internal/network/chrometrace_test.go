package network

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rair/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// chromeEvent mirrors the trace_event JSON shape for validation; unknown
// fields are deliberately dropped so the check pins semantics, not layout.
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`
	Dur   int64  `json:"dur"`
	PID   uint64 `json:"pid"`
	TID   int64  `json:"tid"`
}

type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// validateChromeTrace checks the export is loadable and well-formed: valid
// JSON, every event carries a name/phase, durations are positive, and each
// packet's events are in non-decreasing time order (chrome://tracing
// renders out-of-order spans as garbage silently).
func validateChromeTrace(t *testing.T, raw []byte) {
	t.Helper()
	var ct chromeTraceFile
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	lastTS := map[uint64]int64{}
	for i, e := range ct.TraceEvents {
		if e.Name == "" || e.Phase == "" {
			t.Fatalf("event %d missing name or phase: %+v", i, e)
		}
		if e.TS < 0 {
			t.Fatalf("event %d has negative timestamp: %+v", i, e)
		}
		if e.Phase == "X" && e.Dur < 1 {
			t.Fatalf("event %d is a span with non-positive duration: %+v", i, e)
		}
		if last, ok := lastTS[e.PID]; ok && e.TS < last {
			t.Fatalf("event %d goes backwards in time for packet %d: %d < %d", i, e.PID, e.TS, last)
		}
		lastTS[e.PID] = e.TS
	}
}

// TestChromeTraceGolden is the export-stability contract: the Chrome trace
// of a fixed small workload is byte-identical at 1, 2 and 4 workers and to
// the committed golden (refresh with `go test ./internal/network -run
// ChromeTraceGolden -update`), and validates clean.
func TestChromeTraceGolden(t *testing.T) {
	var base []byte
	for _, workers := range []int{1, 2, 4} {
		tel := telemetry.NewCollector(telemetry.Config{Window: 128, TraceEvery: 257})
		telemetryRun(t, workers, tel)
		var buf bytes.Buffer
		if err := tel.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = buf.Bytes()
			continue
		}
		if !bytes.Equal(base, buf.Bytes()) {
			t.Fatalf("chrome trace differs between workers=1 and workers=%d", workers)
		}
	}
	validateChromeTrace(t, base)

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, base, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(base))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(base, want) {
		t.Fatalf("chrome trace diverged from %s (%d bytes vs %d); rerun with -update if the change is intended",
			golden, len(base), len(want))
	}
}
