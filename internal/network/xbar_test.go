package network

import (
	"testing"
	"testing/quick"

	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/topology"
)

// grantRec is one OnGrant observation.
type grantRec struct {
	src, dst  int
	now, hold int64
}

// TestCrossbarPartitioningProperty: across random switch geometries and
// packet mixes, the DQ-pin channel partitioning must (a) conserve packets
// and flits end to end, and (b) never grant two packets on one source
// channel — or into one destination port — with overlapping serialization
// holds. Property (b) is exactly "one chiplet cannot steal another's
// serialization bandwidth": a channel busy-interval collision would mean
// two sources driving the same lanes in the same cycle.
func TestCrossbarPartitioningProperty(t *testing.T) {
	chips := topology.NewChiplets(2, 2, 4)
	prop := func(seed uint64, lanes, phits, lat, npk uint8) bool {
		cfg := XBarConfig{
			Lanes:        1 + int(lanes)%96,
			PhitsPerFlit: 1 + int(phits)%24,
			Latency:      1 + int(lat)%12,
		}
		rng := sim.NewRNG(seed*2 + 1)
		var grants []grantRec
		var gotPkts, gotFlits int64
		xb, err := NewCrossbar(cfg, chips, func(f xbarFlight, now int64) {
			gotPkts++
			gotFlits += int64(f.pkt.Size)
		})
		if err != nil {
			t.Fatalf("NewCrossbar(%+v): %v", cfg, err)
		}
		xb.OnGrant = func(src, dst int, now, hold int64) {
			grants = append(grants, grantRec{src, dst, now, hold})
		}

		n := 1 + int(npk)%60
		var wantFlits int64
		submitted := 0
		for now := int64(0); submitted < n || !xb.Idle(); now++ {
			if now > int64(n)*2000 {
				t.Fatalf("crossbar did not drain: %d pending after %d cycles", xb.Pending(), now)
			}
			// Random burst of submissions this cycle.
			for submitted < n && rng.Bool(0.4) {
				src := rng.Intn(chips.Chips())
				dst := rng.Intn(chips.Chips())
				if dst == src {
					dst = (dst + 1) % chips.Chips()
				}
				size := msg.ShortPacketFlits
				if rng.Bool(0.5) {
					size = msg.LongPacketFlits
				}
				p := &msg.Packet{
					ID: uint64(submitted + 1), Src: chips.Gateway(src),
					Dst: chips.Gateway(src), FinalDst: chips.Gateway(dst),
					Size: size,
				}
				xb.Submit(p, now, now)
				wantFlits += int64(size)
				submitted++
			}
			xb.Tick(now)
		}

		subP, delP, subF, delF := xb.Counters()
		if subP != int64(n) || delP != int64(n) || subF != wantFlits || delF != wantFlits {
			return false
		}
		if gotPkts != int64(n) || gotFlits != wantFlits {
			return false
		}
		// Busy intervals per source channel and per destination port must
		// not overlap: a grant at g occupies [g.now, g.now+g.hold).
		last := map[[2]int]int64{} // {axis, index} -> busy-until
		for _, g := range grants {
			if g.hold < 1 {
				return false
			}
			for _, key := range [][2]int{{0, g.src}, {1, g.dst}} {
				if until, ok := last[key]; ok && g.now < until {
					return false
				}
				if last[key] < g.now+g.hold {
					last[key] = g.now + g.hold
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCrossbarSerializationHold: the partitioned-channel serialization math —
// 64 lanes over 4 chiplets is 16 lanes per channel, so a 16-phit flit takes
// one cycle full-width but ceil(16/16)=1... and a narrower pool serializes
// proportionally longer.
func TestCrossbarSerializationHold(t *testing.T) {
	chips := topology.NewChiplets(2, 2, 4)
	cases := []struct {
		cfg  XBarConfig
		want int64
	}{
		{XBarConfig{}, 1},                                        // 64/4=16 lanes, 16 phits -> 1 cycle
		{XBarConfig{Lanes: 16}, 4},                               // 4 lanes/chan, 16 phits -> 4
		{XBarConfig{Lanes: 4, PhitsPerFlit: 16}, 16},             // 1 lane/chan
		{XBarConfig{Lanes: 2, PhitsPerFlit: 7, Latency: 1}, 7},   // sub-chip pool clamps to 1 lane
		{XBarConfig{Lanes: 64, PhitsPerFlit: 33, Latency: 2}, 3}, // ceil(33/16)
	}
	for _, c := range cases {
		xb, err := NewCrossbar(c.cfg, chips, func(xbarFlight, int64) {})
		if err != nil {
			t.Fatalf("NewCrossbar(%+v): %v", c.cfg, err)
		}
		if got := xb.FlitCyclesPerFlit(); got != c.want {
			t.Errorf("cfg %+v: hold %d, want %d", c.cfg, got, c.want)
		}
	}
}

// TestChipletNetworkEndToEnd: a full chiplet network — mesh legs, bridge
// ejection, crossbar crossing, gateway re-injection — delivers every
// packet with its FinalDst restored and its latency spanning both legs,
// and drains clean under the conservation checks.
func TestChipletNetworkEndToEnd(t *testing.T) {
	chips := topology.NewChiplets(2, 2, 4)
	mesh := chips.Mesh()
	regs := region.Grid(mesh, 2, 2)
	var delivered []*msg.Packet
	n := New(Params{
		Router:   router.DefaultConfig(1),
		Regions:  regs,
		Alg:      routing.MinimalAdaptive{Mesh: mesh},
		Sel:      routing.LocalSelector{},
		Policy:   policy.NewRoundRobin,
		Chiplets: chips,
		OnEject:  func(p *msg.Packet, now int64) { delivered = append(delivered, p) },
	})

	// One packet from every node to its mirror: most pairs cross chiplets,
	// the rest exercise the unchanged local path.
	var want, cross int
	for id := 0; id < mesh.N(); id++ {
		dst := mesh.N() - 1 - id
		size := msg.ShortPacketFlits
		if id%2 == 1 {
			size = msg.LongPacketFlits
		}
		p := &msg.Packet{ID: uint64(id + 1), App: regs.AppAt(id), Src: id, Dst: dst,
			Class: msg.ClassRequest, Size: size}
		n.Inject(p, int64(id%8))
		want++
		if !chips.SameChip(id, dst) {
			cross++
		}
	}
	for c := int64(0); c < 5000 && len(delivered) < want; c++ {
		n.Tick(c)
	}
	if len(delivered) != want {
		t.Fatalf("delivered %d of %d packets", len(delivered), want)
	}
	for _, p := range delivered {
		if p.Dst != p.FinalDst {
			t.Fatalf("packet %d ejected at Dst %d != FinalDst %d", p.ID, p.Dst, p.FinalDst)
		}
		if p.EjectedAt < p.CreatedAt {
			t.Fatalf("packet %d: EjectedAt %d before CreatedAt %d", p.ID, p.EjectedAt, p.CreatedAt)
		}
		if !chips.SameChip(p.Src, p.Dst) && p.TotalLatency() <= int64(n.xbar.cfg.Latency) {
			t.Fatalf("cross-chiplet packet %d latency %d does not span the crossing", p.ID, p.TotalLatency())
		}
	}
	subP, delP, subF, delF := n.Crossbar().Counters()
	if subP != int64(cross) || delP != int64(cross) {
		t.Fatalf("crossbar carried %d/%d packets, want %d", subP, delP, cross)
	}
	if subF != delF {
		t.Fatalf("crossbar flits: submitted %d, crossed %d", subF, delF)
	}
	if !n.Drained() {
		t.Fatal("network not drained")
	}
	n.CheckDrained()
}
