package network

import (
	"testing"

	"rair/internal/core"
	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/topology"
)

// profileRun drives the deterministic loaded mesh with self-profiling
// configured and returns the delivery trace plus the profile.
func profileRun(t *testing.T, workers int, profile bool) ([]uint64, *EngineProfile) {
	t.Helper()
	regions := region.Quadrants(topology.NewMesh(8, 8))
	var deliveries []uint64
	n := New(Params{
		Router:  router.DefaultConfig(1),
		Regions: regions,
		Alg:     routing.MinimalAdaptive{Mesh: regions.Mesh()},
		Sel:     routing.LocalSelector{},
		Policy:  core.NewFactory(core.Config{}),
		OnEject: func(p *msg.Packet, now int64) {
			deliveries = append(deliveries, p.ID, uint64(now))
		},
		Workers: workers,
		Profile: profile,
	})
	defer n.Close()
	rng := sim.NewRNG(7)
	var id uint64
	var c int64
	for ; c < 2000; c++ {
		inject(n, regions, rng, &id, c)
		n.Tick(c)
	}
	for ; !n.Drained() && c < 5000; c++ {
		n.Tick(c)
	}
	n.CheckDrained()
	return deliveries, n.EngineProfile()
}

func TestEngineProfileSerial(t *testing.T) {
	_, prof := profileRun(t, 0, true)
	if prof == nil {
		t.Fatal("Profile on, EngineProfile nil")
	}
	if prof.Cycles == 0 || prof.Workers != 1 || len(prof.Shards) != 1 {
		t.Fatalf("unexpected shape: %+v", prof)
	}
	if len(prof.Barrier) != 0 {
		t.Fatalf("serial engine has no barriers, got %d entries", len(prof.Barrier))
	}
	sh := prof.Shards[0]
	if sh.Nodes != 64 || sh.RouterTicks == 0 || sh.NITicks == 0 {
		t.Fatalf("empty shard profile: %+v", sh)
	}
	if sh.DirtyFlitWires == 0 || sh.DirtyCredWires == 0 {
		t.Fatalf("no dirty-wire sweeps recorded: %+v", sh)
	}
	for _, q := range []float64{sh.RouterQuiescence, sh.NIQuiescence} {
		if q < 0 || q > 1 {
			t.Fatalf("quiescence %v out of [0,1]", q)
		}
	}
	// A loaded-then-drained run must skip some slots and tick some.
	if sh.RouterQuiescence == 0 || sh.RouterQuiescence == 1 {
		t.Fatalf("implausible router quiescence %v", sh.RouterQuiescence)
	}
	var phaseNS int64
	for _, ns := range sh.PhaseNS {
		phaseNS += ns
	}
	if phaseNS <= 0 {
		t.Fatalf("no phase time recorded: %+v", sh.PhaseNS)
	}
	// A loaded run includes uncontended streaming phases, so the fast
	// path must have engaged somewhere — and it can never exceed the
	// armed router visits it is a subset of.
	if sh.FastPathTicks == 0 || sh.FastPathTicks > sh.RouterTicks {
		t.Fatalf("implausible fast-path engagement: %d of %d router ticks",
			sh.FastPathTicks, sh.RouterTicks)
	}
}

func TestEngineProfileParallel(t *testing.T) {
	_, prof := profileRun(t, 2, true)
	if prof == nil || prof.Workers != 2 || len(prof.Shards) != 2 {
		t.Fatalf("unexpected shape: %+v", prof)
	}
	if len(prof.Barrier) != int(numPhases) {
		t.Fatalf("want %d barrier entries, got %d", numPhases, len(prof.Barrier))
	}
	for _, bp := range prof.Barrier {
		// The congestion phases only run under a congestion-aware
		// selector, so their barrier counts may be zero here; the links
		// and compute barriers drain every cycle.
		if bp.Phase == "links" || bp.Phase == "compute" {
			if bp.Waits != prof.Cycles {
				t.Fatalf("phase %s: %d waits over %d cycles", bp.Phase, bp.Waits, prof.Cycles)
			}
		} else if bp.Waits != 0 && bp.Waits != prof.Cycles {
			t.Fatalf("phase %s: %d waits over %d cycles", bp.Phase, bp.Waits, prof.Cycles)
		}
		var hist int64
		for _, c := range bp.Hist {
			hist += c
		}
		if hist != bp.Waits {
			t.Fatalf("phase %s: histogram mass %d != waits %d", bp.Phase, hist, bp.Waits)
		}
	}
}

// TestProfileObserverOnly is the never-perturb contract for self-profiling:
// the delivery trace is bit-identical with profiling on or off, serial and
// sharded.
func TestProfileObserverOnly(t *testing.T) {
	base, off := profileRun(t, 0, false)
	if off != nil {
		t.Fatal("Profile off, EngineProfile non-nil")
	}
	if len(base) == 0 {
		t.Fatal("no deliveries")
	}
	for _, workers := range []int{0, 2, 4} {
		got, _ := profileRun(t, workers, true)
		if len(got) != len(base) {
			t.Fatalf("workers=%d profiled: %d delivery records, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d profiled: delivery trace diverged at record %d", workers, i)
			}
		}
	}
}
