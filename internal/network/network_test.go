package network

import (
	"testing"

	"rair/internal/core"
	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/topology"
)

// build returns a small test network collecting delivered packets.
func build(t testing.TB, regions *region.Map, pf policy.Factory, sel routing.Selector) (*Network, *[]*msg.Packet) {
	t.Helper()
	mesh := regions.Mesh()
	var delivered []*msg.Packet
	if sel == nil {
		sel = routing.LocalSelector{}
	}
	n := New(Params{
		Router:  router.DefaultConfig(1),
		Regions: regions,
		Alg:     routing.MinimalAdaptive{Mesh: mesh},
		Sel:     sel,
		Policy:  pf,
		OnEject: func(p *msg.Packet, now int64) { delivered = append(delivered, p) },
	})
	return n, &delivered
}

func run(n *Network, from, cycles int64) {
	for c := from; c < from+cycles; c++ {
		n.Tick(c)
	}
}

func mesh4() *region.Map { return region.Single(topology.NewMesh(4, 4)) }

func TestSinglePacketDelivery(t *testing.T) {
	n, delivered := build(t, mesh4(), policy.NewRoundRobin, nil)
	p := &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 15, Class: msg.ClassRequest, Size: 5}
	n.NI(0).Inject(p, 0)
	run(n, 0, 200)
	if len(*delivered) != 1 {
		t.Fatalf("delivered %d packets", len(*delivered))
	}
	got := (*delivered)[0]
	if got != p || got.EjectedAt < 0 {
		t.Fatal("wrong packet or missing ejection stamp")
	}
	if got.Hops != n.Mesh().Distance(0, 15)+1 {
		t.Fatalf("hops = %d, want %d", got.Hops, n.Mesh().Distance(0, 15)+1)
	}
	n.CheckDrained()
}

func TestZeroLoadLatency(t *testing.T) {
	// One packet across an idle network: latency must match the pipeline
	// model. Per hop: RC+VA+SA (3 cycles in router) + ST/LT (LinkLatency).
	// Plus injection link and the final ejection link.
	n, delivered := build(t, mesh4(), policy.NewRoundRobin, nil)
	cfg := router.DefaultConfig(1)
	src, dst := 0, 3 // 3 hops east
	p := &msg.Packet{ID: 1, Src: src, Dst: dst, Size: 1, Class: msg.ClassRequest}
	n.NI(src).Inject(p, 0)
	run(n, 0, 100)
	if len(*delivered) != 1 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	hops := n.Mesh().Distance(src, dst) + 1 // routers traversed
	perHop := 3 + cfg.LinkLatency           // RC+VA+SA in-router, ST/LT on the link
	want := int64(cfg.LinkLatency + hops*perHop)
	if lat := p.TotalLatency(); lat != want {
		t.Fatalf("zero-load latency = %d, want %d (hops=%d)", lat, want, hops)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	// Every (src,dst) pair eventually delivers, exercising all turns.
	n, delivered := build(t, mesh4(), policy.NewRoundRobin, nil)
	id := uint64(0)
	now := int64(0)
	mesh := n.Mesh()
	for s := 0; s < mesh.N(); s++ {
		for d := 0; d < mesh.N(); d++ {
			if s == d {
				continue
			}
			id++
			n.NI(s).Inject(&msg.Packet{ID: id, Src: s, Dst: d, Size: 3, Class: msg.ClassRequest}, now)
		}
	}
	for c := int64(0); c < 20000 && !n.Drained(); c++ {
		n.Tick(c)
	}
	if got := len(*delivered); got != int(id) {
		t.Fatalf("delivered %d of %d", got, id)
	}
	n.CheckDrained()
}

func TestPacketLossAndDuplication(t *testing.T) {
	n, delivered := build(t, mesh4(), policy.NewRoundRobin, nil)
	rng := sim.NewRNG(1)
	var injected int
	for c := int64(0); c < 3000; c++ {
		if c < 2000 && rng.Bool(0.3) {
			src := rng.Intn(16)
			dst := rng.Intn(16)
			if dst != src {
				injected++
				size := 1
				if rng.Bool(0.5) {
					size = 5
				}
				n.NI(src).Inject(&msg.Packet{ID: uint64(injected), Src: src, Dst: dst, Size: size, Class: msg.ClassRequest}, c)
			}
		}
		n.Tick(c)
	}
	seen := map[uint64]bool{}
	for _, p := range *delivered {
		if seen[p.ID] {
			t.Fatalf("duplicate delivery of packet %d", p.ID)
		}
		seen[p.ID] = true
	}
	if len(*delivered) != injected {
		t.Fatalf("delivered %d of %d", len(*delivered), injected)
	}
}

func TestMinimalHops(t *testing.T) {
	// Adaptive minimal routing must never exceed the Manhattan distance.
	n, delivered := build(t, mesh4(), policy.NewRoundRobin, nil)
	rng := sim.NewRNG(2)
	for c := int64(0); c < 2000; c++ {
		if c < 1500 && rng.Bool(0.2) {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				n.NI(src).Inject(&msg.Packet{Src: src, Dst: dst, Size: 1, Class: msg.ClassRequest}, c)
			}
		}
		n.Tick(c)
	}
	for _, p := range *delivered {
		if p.Hops != n.Mesh().Distance(p.Src, p.Dst)+1 {
			t.Fatalf("packet %d->%d took %d router hops (distance %d)", p.Src, p.Dst, p.Hops, n.Mesh().Distance(p.Src, p.Dst))
		}
	}
}

func TestDeterminism(t *testing.T) {
	trace := func() []int64 {
		n, delivered := build(t, mesh4(), policy.NewRoundRobin, nil)
		rng := sim.NewRNG(7)
		var id uint64
		for c := int64(0); c < 2000; c++ {
			if c < 1500 && rng.Bool(0.4) {
				src, dst := rng.Intn(16), rng.Intn(16)
				if src != dst {
					id++
					n.NI(src).Inject(&msg.Packet{ID: id, Src: src, Dst: dst, Size: 5, Class: msg.ClassRequest}, c)
				}
			}
			n.Tick(c)
		}
		var out []int64
		for _, p := range *delivered {
			out = append(out, int64(p.ID)<<20|p.EjectedAt)
		}
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at delivery %d", i)
		}
	}
}

// Near-saturation sustained load with RAIR: nothing deadlocks, no packet
// starves in the network, and everything drains.
func TestNoDeadlockOrStarvationUnderRAIR(t *testing.T) {
	regions := region.Quadrants(topology.NewMesh(8, 8))
	sel := routing.DBARSelector{Mesh: regions.Mesh(), Regions: regions, Depth: 5}
	n, delivered := build(t, regions, core.NewFactory(core.Config{}), sel)
	rng := sim.NewRNG(3)
	var id uint64
	for c := int64(0); c < 12000; c++ {
		if c < 4000 {
			for node := 0; node < 64; node++ {
				if !rng.Bool(0.08) { // ~0.24 flits/node/cycle: around saturation
					continue
				}
				dst := rng.Intn(64)
				if dst == node {
					continue
				}
				id++
				n.NI(node).Inject(&msg.Packet{
					ID: id, App: regions.AppAt(node), Src: node, Dst: dst,
					Size: 1 + 4*rng.Intn(2), Class: msg.ClassRequest,
				}, c)
			}
		}
		n.Tick(c)
		if c%500 == 499 {
			if p := n.StuckPacket(c, 3000); p != nil {
				t.Fatalf("cycle %d: packet stuck since %d: %v\n%s", c, p.InjectedAt, p, n.Router(p.Src).DebugState())
			}
		}
		if c > 4000 && n.Drained() {
			break
		}
	}
	if int(id) != len(*delivered) {
		t.Fatalf("delivered %d of %d under sustained load", len(*delivered), id)
	}
	n.CheckDrained()
}

// Far beyond saturation the network must keep full throughput and drain once
// injection stops: locally-fair arbitration means individual packets can
// wait a long time under 4x overload, but global progress never stalls.
func TestOverloadDrains(t *testing.T) {
	regions := region.Quadrants(topology.NewMesh(8, 8))
	sel := routing.DBARSelector{Mesh: regions.Mesh(), Regions: regions, Depth: 5}
	n, delivered := build(t, regions, core.NewFactory(core.Config{}), sel)
	rng := sim.NewRNG(3)
	var id uint64
	drained := false
	for c := int64(0); c < 40000; c++ {
		if c < 2000 {
			for node := 0; node < 64; node++ {
				if !rng.Bool(0.35) { // ~4x saturation
					continue
				}
				dst := rng.Intn(64)
				if dst == node {
					continue
				}
				id++
				n.NI(node).Inject(&msg.Packet{
					ID: id, App: regions.AppAt(node), Src: node, Dst: dst,
					Size: 1 + 4*rng.Intn(2), Class: msg.ClassRequest,
				}, c)
			}
		}
		n.Tick(c)
		if c > 2000 && n.Drained() {
			drained = true
			break
		}
	}
	if !drained {
		t.Fatalf("network failed to drain after overload: inflight=%d", n.InFlight())
	}
	if int(id) != len(*delivered) {
		t.Fatalf("delivered %d of %d", len(*delivered), id)
	}
}

// Foreign and native traffic must both make progress under every RAIR mode
// (starvation avoidance, Section IV.D).
func TestRAIRModesDeliverEverything(t *testing.T) {
	for _, cfg := range []core.Config{
		{},
		{Mode: core.ModeNativeHigh},
		{Mode: core.ModeForeignHigh},
		{VAOnly: true},
	} {
		regions := region.Halves(topology.NewMesh(4, 4))
		n, delivered := build(t, regions, core.NewFactory(cfg), nil)
		rng := sim.NewRNG(11)
		var id uint64
		for c := int64(0); c < 5000; c++ {
			if c < 3000 && rng.Bool(0.6) {
				src := rng.Intn(16)
				dst := rng.Intn(16)
				if src != dst {
					id++
					n.NI(src).Inject(&msg.Packet{
						ID: id, App: regions.AppAt(src), Src: src, Dst: dst,
						Size: 5, Class: msg.ClassRequest,
					}, c)
				}
			}
			n.Tick(c)
		}
		if len(*delivered) != int(id) {
			t.Fatalf("%v: delivered %d of %d", core.New(cfg).Name(), len(*delivered), id)
		}
	}
}

func TestTwoClassesShareNetwork(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	regions := region.Single(mesh)
	var delivered []*msg.Packet
	n := New(Params{
		Router:  router.DefaultConfig(2),
		Regions: regions,
		Alg:     routing.MinimalAdaptive{Mesh: mesh},
		Sel:     routing.LocalSelector{},
		Policy:  policy.NewRoundRobin,
		OnEject: func(p *msg.Packet, now int64) { delivered = append(delivered, p) },
	})
	rng := sim.NewRNG(5)
	var id uint64
	for c := int64(0); c < 3000; c++ {
		if c < 2000 && rng.Bool(0.3) {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src != dst {
				id++
				cls := msg.ClassRequest
				if rng.Bool(0.5) {
					cls = msg.ClassResponse
				}
				n.NI(src).Inject(&msg.Packet{ID: id, Src: src, Dst: dst, Size: msg.SizeFor(cls), Class: cls}, c)
			}
		}
		n.Tick(c)
	}
	if len(delivered) != int(id) {
		t.Fatalf("delivered %d of %d", len(delivered), id)
	}
}

func TestGlobalFlagStamped(t *testing.T) {
	regions := region.Halves(topology.NewMesh(4, 4))
	n, delivered := build(t, regions, policy.NewRoundRobin, nil)
	intra := &msg.Packet{ID: 1, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	inter := &msg.Packet{ID: 2, Src: 0, Dst: 3, Size: 1, Class: msg.ClassRequest}
	n.NI(0).Inject(intra, 0)
	n.NI(0).Inject(inter, 0)
	run(n, 0, 200)
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	if intra.Global || !inter.Global {
		t.Fatalf("global stamping wrong: intra=%v inter=%v", intra.Global, inter.Global)
	}
}

func TestXYRoutingWorksToo(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	regions := region.Single(mesh)
	var delivered []*msg.Packet
	n := New(Params{
		Router:  router.DefaultConfig(1),
		Regions: regions,
		Alg:     routing.XY{Mesh: mesh},
		Sel:     routing.LocalSelector{},
		Policy:  policy.NewRoundRobin,
		OnEject: func(p *msg.Packet, now int64) { delivered = append(delivered, p) },
	})
	for s := 0; s < 16; s++ {
		n.NI(s).Inject(&msg.Packet{ID: uint64(s + 1), Src: s, Dst: 15 - s, Size: 5, Class: msg.ClassRequest}, 0)
	}
	run(n, 0, 2000)
	if len(delivered) != 16 {
		t.Fatalf("delivered %d of 16", len(delivered))
	}
}
