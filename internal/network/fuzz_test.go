package network

import (
	"testing"
	"testing/quick"

	"rair/internal/core"
	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/sim"
	"rair/internal/topology"
)

// TestConfigFuzz drives randomized (but reproducible) combinations of mesh
// shape, VC configuration, region layout, policy and routing through a
// short load burst, checking the simulator's global invariants: every
// packet delivered exactly once, minimal hop counts, full drain, and no
// internal panics (credit violations, buffer overflows and misrouted flits
// all panic in the router).
func TestConfigFuzz(t *testing.T) {
	cfgCheck := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		w := 2 + rng.Intn(6)
		h := 2 + rng.Intn(6)
		mesh := topology.NewMesh(w, h)

		var regs *region.Map
		switch rng.Intn(3) {
		case 0:
			regs = region.Single(mesh)
		case 1:
			regs = region.Grid(mesh, 1+rng.Intn(2), 1+rng.Intn(2))
		default:
			regs = region.Grid(mesh, 1+rng.Intn(min(3, w)), 1+rng.Intn(min(3, h)))
		}

		cfg := router.Config{
			Classes:     1 + rng.Intn(2),
			AdaptiveVCs: 1 + rng.Intn(4),
			EscapeVCs:   1,
			Depth:       1 + rng.Intn(6),
			LinkLatency: 1 + rng.Intn(3),
		}
		cfg.GlobalVCs = rng.Intn(cfg.AdaptiveVCs + 1)

		var pf policy.Factory
		switch rng.Intn(4) {
		case 0:
			pf = policy.NewRoundRobin
		case 1:
			pf = policy.NewAge
		case 2:
			pf = policy.NewRankFactory([]int{0, 1, 2, 3})
		default:
			pf = core.NewFactory(core.Config{Mode: core.PriorityMode(rng.Intn(3))})
		}

		var alg routing.Algorithm
		switch rng.Intn(3) {
		case 0:
			alg = routing.XY{Mesh: mesh}
		case 1:
			alg = routing.MinimalAdaptive{Mesh: mesh}
		default:
			alg = routing.WestFirst{Mesh: mesh}
		}
		var sel routing.Selector = routing.LocalSelector{}
		if rng.Intn(2) == 1 {
			sel = routing.DBARSelector{Mesh: mesh, Regions: regs, Depth: cfg.Depth * cfg.VCsPerPort()}
		}

		delivered := map[uint64]bool{}
		n := New(Params{
			Router: cfg, Regions: regs, Alg: alg, Sel: sel, Policy: pf,
			OnEject: func(p *msg.Packet, now int64) {
				if delivered[p.ID] {
					t.Errorf("seed %d: duplicate delivery of %v", seed, p)
				}
				delivered[p.ID] = true
				if p.Hops != mesh.Distance(p.Src, p.Dst)+1 {
					t.Errorf("seed %d: non-minimal route for %v: %d hops", seed, p, p.Hops)
				}
			},
		})

		var id uint64
		horizon := int64(1500)
		for c := int64(0); c < horizon; c++ {
			if c < 600 {
				for node := 0; node < mesh.N(); node++ {
					if !rng.Bool(0.05) {
						continue
					}
					dst := rng.Intn(mesh.N())
					if dst == node {
						continue
					}
					id++
					cls := msg.Class(rng.Intn(cfg.Classes))
					size := 1
					if rng.Bool(0.5) {
						size = 5
					}
					n.NI(node).Inject(&msg.Packet{
						ID: id, App: regs.AppAt(node), Src: node, Dst: dst,
						Class: cls, Size: size,
					}, c)
				}
			}
			n.Tick(c)
			if c > 600 && n.Drained() {
				break
			}
		}
		// Allow extra drain time for tiny/deep configurations.
		for c := horizon; c < horizon+20000 && !n.Drained(); c++ {
			n.Tick(c)
		}
		if !n.Drained() {
			t.Errorf("seed %d: failed to drain (%d in flight of %d)", seed, n.InFlight(), id)
			return false
		}
		if uint64(len(delivered)) != id {
			t.Errorf("seed %d: delivered %d of %d", seed, len(delivered), id)
			return false
		}
		return true
	}
	if err := quick.Check(cfgCheck, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
