// Package network assembles routers, network interfaces and links into a
// complete mesh NoC and advances them cycle by cycle. All inter-component
// communication goes through links that are shifted once per cycle before
// any component ticks, so results are independent of iteration order.
//
// Cycles are advanced by a sharded tick engine (see engine.go): the serial
// configuration runs all phases inline on one shard, while Params.Workers
// splits the mesh across persistent worker goroutines with barrier-separated
// phases, producing bit-identical results.
//
// The network also runs the systolic congestion propagation DBAR relies on:
// each cycle a router learns its neighbor's occupancy (one cycle old) and
// the neighbor's view of the routers beyond it (one more cycle old per
// hop). Propagation only runs when the configured selection function
// actually consumes the signal (routing.CongestionConsumer), so schemes on
// local selection don't pay for it.
package network

import (
	"fmt"
	"runtime"

	"rair/internal/faults"
	"rair/internal/invariant"
	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/telemetry"
	"rair/internal/topology"
)

// CongestionMode gates the per-cycle DBAR congestion propagation.
type CongestionMode int

const (
	// CongestionAuto enables propagation iff the selector consumes it
	// (routing.ConsumesCongestion).
	CongestionAuto CongestionMode = iota
	// CongestionOn forces propagation every cycle.
	CongestionOn
	// CongestionOff disables propagation; PathOccupancy reads zeros.
	CongestionOff
)

// Params configures a network build.
type Params struct {
	// Router is the microarchitecture configuration shared by all nodes.
	Router router.Config
	// Regions assigns applications to nodes (also provides the mesh).
	Regions *region.Map
	// Alg is the routing algorithm; Sel the selection function used when
	// the algorithm returns several candidates.
	Alg routing.Algorithm
	Sel routing.Selector
	// Policy builds the per-router interference-reduction policy.
	Policy policy.Factory
	// OnEject, if non-nil, observes every delivered packet. Callbacks run
	// on the goroutine calling Tick, in ascending node order within a
	// cycle, regardless of Workers.
	OnEject func(*msg.Packet, int64)
	// Recycle, if non-nil, receives every delivered packet after OnEject
	// has observed it, under the same coordinator-goroutine node-order
	// guarantee. It exists to return packets to a freelist (msg.Pool), so
	// it must only be set when no observer retains packet pointers past
	// the OnEject callback.
	Recycle func(*msg.Packet)
	// Workers is the number of tick-engine shards. Values <= 1 run
	// serially on the calling goroutine; higher values partition the mesh
	// across Workers-1 persistent worker goroutines plus the caller. Call
	// Close when done with a parallel network (a finalizer backstops it).
	Workers int
	// Congestion gates DBAR propagation (default CongestionAuto).
	Congestion CongestionMode
	// Telemetry, if non-nil, instruments every router and NI with a
	// per-node probe from the collector. Probes are written only by the
	// owning shard during the compute phase; the window sampler and all
	// cross-probe aggregation run on the goroutine calling Tick, so
	// simulation results are bit-identical with telemetry on or off, at
	// any worker count.
	Telemetry *telemetry.Collector
	// Faults, if non-nil and enabled, attaches the deterministic fault
	// injector: per-link drop/corrupt/credit-leak state and per-router
	// stall windows, all keyed by pure hashes so results stay bit-identical
	// across worker counts. See internal/faults.
	Faults *faults.Config
	// Check, if non-nil, runs the runtime invariant checker at every tick
	// barrier on the coordinating goroutine (read-only audits; enabling it
	// cannot change simulation results). See internal/invariant.
	Check *invariant.Config
	// Profile enables engine self-profiling: per-shard phase wall times,
	// coordinator barrier-wait histograms, armed-component and dirty-wire
	// sweep counts. Purely observational (wall-clock and visit counts, no
	// simulation state), so results are bit-identical with it on or off.
	// Read the result with EngineProfile. See profile.go.
	Profile bool
	// Chiplets, if non-nil, builds the mesh as a two-level chiplet system:
	// its tile edges are left unwired and inter-chiplet packets cross the
	// bandwidth-partitioned crossbar between tile gateways. The chiplet
	// grid must span exactly the Regions mesh. Injection must then go
	// through Network.Inject (which plans the gateway legs); direct NI
	// injection would strand inter-chiplet packets at an unwired edge.
	Chiplets *topology.Chiplets
	// XBar configures the inter-chiplet crossbar (zero value = defaults).
	// Ignored unless Chiplets is set.
	XBar XBarConfig
}

// Network is a fully wired mesh NoC.
type Network struct {
	params  Params
	mesh    *topology.Mesh
	routers []*router.Router
	nis     []*router.NI
	links   []*router.Link // every link, for conservation accounting
	eng     *engine
	cong    bool
	tel     *telemetry.Collector
	probes  []*telemetry.Probe // per node, nil when telemetry is off
	faults  *faults.Injector   // nil when fault-free
	check   *invariant.Checker // nil when unchecked
	refs    []invariant.LinkRef
	now     int64

	chiplets   *topology.Chiplets // nil for plain meshes
	xbar       *Crossbar          // nil for plain meshes
	injSlot    []int              // per-node injector-slot rotation (concentrated meshes)
	bridgeSlot int                // NI slot reserved for crossbar re-injection (-1 without chiplets)
	appSlots   int                // injector slots available to applications
}

// New builds and wires the network.
func New(p Params) *Network {
	if err := p.Router.Validate(); err != nil {
		panic(err)
	}
	if p.Regions == nil || p.Alg == nil || p.Sel == nil || p.Policy == nil {
		panic("network: incomplete params")
	}
	mesh := p.Regions.Mesh()
	bridgeSlot := -1
	if p.Chiplets != nil {
		cm := p.Chiplets.Mesh()
		if cm.W != mesh.W || cm.H != mesh.H {
			panic(fmt.Sprintf("network: chiplet grid spans %dx%d but regions mesh is %dx%d",
				cm.W, cm.H, mesh.W, mesh.H))
		}
		// The chip-to-chip PHY has its own NI ingress queue: crossbar
		// re-injections use a dedicated injector slot, so a gateway node's
		// own traffic never queues behind the foreign backlog (the NI's
		// claim scan interleaves the slots round-robin).
		bridgeSlot = p.Router.InjectorCount()
		p.Router.Injectors = bridgeSlot + 1
	}
	n := &Network{
		params:     p,
		mesh:       mesh,
		routers:    make([]*router.Router, mesh.N()),
		nis:        make([]*router.NI, mesh.N()),
		chiplets:   p.Chiplets,
		bridgeSlot: bridgeSlot,
		appSlots:   p.Router.InjectorCount(),
	}
	if bridgeSlot >= 0 {
		n.appSlots = bridgeSlot
	}
	if n.appSlots > 1 {
		n.injSlot = make([]int, mesh.N())
	}
	switch p.Congestion {
	case CongestionAuto:
		n.cong = routing.ConsumesCongestion(p.Sel)
	case CongestionOn:
		n.cong = true
	case CongestionOff:
		n.cong = false
	default:
		panic(fmt.Sprintf("network: unknown congestion mode %d", p.Congestion))
	}
	if p.Telemetry != nil {
		n.tel = p.Telemetry
		n.probes = make([]*telemetry.Probe, mesh.N())
	}
	// One dense state store per shard: routers and NIs are built as views
	// into their shard's store (struct-of-arrays slabs + work mirrors).
	nshards := shardCount(mesh.N(), p.Workers)
	soas := make([]*router.SoA, nshards)
	for i := range soas {
		lo, hi := i*mesh.N()/nshards, (i+1)*mesh.N()/nshards
		soas[i] = router.NewSoA(p.Router, hi-lo)
	}
	for id := 0; id < mesh.N(); id++ {
		app := p.Regions.AppAt(id)
		si := id * nshards / mesh.N()
		for si > 0 && id < si*mesh.N()/nshards {
			si--
		}
		for si < nshards-1 && id >= (si+1)*mesh.N()/nshards {
			si++
		}
		li := id - si*mesh.N()/nshards
		n.routers[id] = router.NewInStore(p.Router, id, app, mesh, p.Regions, p.Alg, p.Sel, p.Policy(id, app), soas[si], li)
		if n.tel != nil {
			n.probes[id] = n.tel.ProbeFor(id, app)
			n.routers[id].SetTelemetry(n.probes[id])
		}
	}
	if p.Faults != nil && p.Faults.Enabled() {
		inj, err := faults.NewInjector(*p.Faults, mesh.N())
		if err != nil {
			panic(err)
		}
		n.faults = inj
		if n.tel != nil {
			for id := range n.probes {
				inj.SetStallProbe(id, n.probes[id])
			}
		}
	}
	n.eng = newEngine(mesh, n.routers, n.nis, p.Workers, soas)
	n.eng.faults = n.faults
	if cs := p.Chiplets; cs != nil {
		// Clip the congestion relay at tile edges: those links don't exist.
		n.eng.neigh = func(id int, d topology.Dir) int {
			nb := mesh.Neighbor(id, d)
			if nb != -1 && !cs.SameChip(id, nb) {
				return -1
			}
			return nb
		}
	}
	if p.Profile {
		n.eng.prof = newEngineProf(len(n.eng.shards))
	}
	// Inter-router links (one per direction per adjacent pair). In a
	// chiplet system, pairs straddling a tile edge are never wired — the
	// crossbar is the only path between tiles.
	for id := 0; id < mesh.N(); id++ {
		for _, d := range []topology.Dir{topology.East, topology.South} {
			nb := mesh.Neighbor(id, d)
			if nb == -1 {
				continue
			}
			if p.Chiplets != nil && !p.Chiplets.SameChip(id, nb) {
				continue
			}
			n.wire(id, d, nb)
			n.wire(nb, d.Opposite(), id)
		}
	}
	// NI links. Built in ascending node order so per-cycle ejection
	// callbacks replay in node order.
	for id := 0; id < mesh.N(); id++ {
		r := n.routers[id]
		inj := router.NewLink(p.Router.LinkLatency)
		ej := router.NewLink(p.Router.LinkLatency)
		n.links = append(n.links, inj, ej)
		var onEject func(*msg.Packet, int64)
		if p.OnEject != nil || p.Recycle != nil || p.Chiplets != nil {
			sh := n.eng.shardOf(id)
			onEject = func(pkt *msg.Packet, now int64) {
				sh.ejections = append(sh.ejections, ejection{pkt, now})
			}
		}
		ni := router.NewNIInStore(p.Router, id, p.Regions, inj, ej, onEject,
			n.eng.shardOf(id).soa, id-n.eng.shardOf(id).lo)
		if n.tel != nil {
			ni.SetTelemetry(n.probes[id])
		}
		n.nis[id] = ni
		if n.faults != nil {
			// Injection link: the router side receives flits, the NI side
			// receives (and may leak) credits; reconciled credits return to
			// the NI's counter.
			ils := n.faults.RegisterLink(faults.NIKey(id, true), ni.DeliverCredit, false)
			inj.SetFaults(ils)
			// Ejection link: no credit wire in use; restore never fires.
			els := n.faults.RegisterLink(faults.NIKey(id, false), nil, true)
			ej.SetFaults(els)
			if n.tel != nil {
				n.faults.SetLinkProbes(ils, n.probes[id], n.probes[id])
				n.faults.SetLinkProbes(els, n.probes[id], n.probes[id])
			}
		}
		n.refs = append(n.refs,
			invariant.LinkRef{L: inj, Src: id, SrcNI: true, Dst: id, DstDir: topology.Local},
			invariant.LinkRef{L: ej, Src: id, SrcDir: topology.Local, Dst: id, DstNI: true},
		)
		r.ConnectIn(topology.Local, inj)
		r.ConnectOut(topology.Local, ej)
		sh := n.eng.shardOf(id)
		// Injection link: flits flow NI -> router, credits router -> NI.
		sh.rFlit = append(sh.rFlit, routerFlitBinding{link: inj, r: r, dir: topology.Local})
		sh.nCred = append(sh.nCred, niCreditBinding{link: inj, ni: ni})
		// Ejection link: flits flow router -> NI; the ejection port never
		// returns credits, but the wire is kept for symmetry.
		sh.nFlit = append(sh.nFlit, niFlitBinding{link: ej, ni: ni})
		sh.rCred = append(sh.rCred, routerCreditBinding{link: ej, r: r, dir: topology.Local})
	}
	n.eng.finalize()
	if p.Chiplets != nil {
		x, err := NewCrossbar(p.XBar, p.Chiplets, n.xbarDeliver)
		if err != nil {
			panic(err)
		}
		n.xbar = x
	}
	if p.Check != nil {
		n.check = invariant.NewChecker(*p.Check, invariant.Target{
			Depth: p.Router.Depth, VCs: p.Router.VCsPerPort(), Mesh: mesh,
			Routers: n.routers, NIs: n.nis, Links: n.refs,
			Faults: n.faults, Telemetry: n.tel,
			Quiesce: n.auditQuiescence,
		})
	}
	if p.Workers > 1 {
		runtime.SetFinalizer(n, (*Network).Close)
	}
	return n
}

// wire connects src's output port at dir to dst's opposite input port. The
// flit wire is owned (shifted and delivered) by dst's shard, the credit wire
// by src's shard.
func (n *Network) wire(src int, dir topology.Dir, dst int) {
	l := router.NewLink(n.params.Router.LinkLatency)
	n.links = append(n.links, l)
	sr, dr := n.routers[src], n.routers[dst]
	sr.ConnectOut(dir, l)
	dr.ConnectIn(dir.Opposite(), l)
	// The flit wire's pusher is src's shard; the credit wire's is dst's. A
	// wire whose pusher is a different shard than its owner is foreign: it
	// gets no wake mark and is polled from the owner's foreign list.
	dsh := n.eng.shardOf(dst)
	ssh := n.eng.shardOf(src)
	dsh.rFlit = append(dsh.rFlit, routerFlitBinding{link: l, r: dr, dir: dir.Opposite(), foreign: dsh != ssh})
	ssh.rCred = append(ssh.rCred, routerCreditBinding{link: l, r: sr, dir: dir, foreign: ssh != dsh})
	if n.faults != nil {
		ls := n.faults.RegisterLink(faults.LinkKey(src, dst),
			func(vc int) { sr.DeliverCredit(dir, vc) }, false)
		l.SetFaults(ls)
		if n.tel != nil {
			n.faults.SetLinkProbes(ls, n.probes[dst], n.probes[src])
		}
	}
	n.refs = append(n.refs, invariant.LinkRef{
		L: l, Src: src, SrcDir: dir, Dst: dst, DstDir: dir.Opposite(),
	})
}

// Close stops the tick engine's worker goroutines. Safe to call multiple
// times; a no-op for serial networks.
func (n *Network) Close() {
	runtime.SetFinalizer(n, nil)
	n.eng.close()
}

// Workers reports the number of tick-engine shards actually in use.
func (n *Network) Workers() int { return len(n.eng.shards) }

// CongestionEnabled reports whether DBAR congestion propagation runs.
func (n *Network) CongestionEnabled() bool { return n.cong }

// Mesh returns the topology.
func (n *Network) Mesh() *topology.Mesh { return n.mesh }

// Regions returns the region map.
func (n *Network) Regions() *region.Map { return n.params.Regions }

// NI returns node's network interface.
func (n *Network) NI(node int) *router.NI { return n.nis[node] }

// Router returns node's router.
func (n *Network) Router(node int) *router.Router { return n.routers[node] }

// Faults returns the run's fault injector (nil when fault-free).
func (n *Network) Faults() *faults.Injector { return n.faults }

// Chiplets returns the chiplet system (nil for plain meshes).
func (n *Network) Chiplets() *topology.Chiplets { return n.chiplets }

// Crossbar returns the inter-chiplet switch (nil for plain meshes).
func (n *Network) Crossbar() *Crossbar { return n.xbar }

// Checker returns the run's invariant checker (nil when unchecked).
func (n *Network) Checker() *invariant.Checker { return n.check }

// Now reports the cycle of the last Tick.
func (n *Network) Now() int64 { return n.now }

// Tick advances the whole network one cycle through the engine's
// barrier-separated phases.
func (n *Network) Tick(now int64) {
	n.now = now
	n.eng.now = now
	if n.eng.prof != nil {
		n.eng.prof.cycles++
	}
	// Phase 1: links deliver.
	n.eng.run(phaseLinks)
	// Phase 2: routers and NIs compute.
	n.eng.run(phaseCompute)
	// Phase 3: propagate congestion one hop (only if anything reads it).
	if n.cong {
		n.eng.run(phaseCongFill)
		n.eng.run(phaseCongSwap)
	}
	// Periodic credit reconciliation runs on this goroutine after all
	// barriers: leaked credits are audited and restored directly to their
	// sender-side counters, deterministically in link-registration order.
	if n.faults != nil && n.faults.ReconcileDue(now) {
		n.faults.ReconcileAll()
	}
	// Sample telemetry windows on this goroutine after all barriers: every
	// probe is quiescent (its owning shard finished the compute phase), so
	// the read is race-free and deterministic.
	if n.tel != nil && n.tel.Advance(now) {
		// A linear sweep over the shard stores' dense occupancy arrays.
		for _, sh := range n.eng.shards {
			for j := range sh.routers {
				n.probes[sh.lo+j].Sample(now, int(sh.soa.NativeOcc[j]), int(sh.soa.ForeignOcc[j]))
			}
		}
	}
	// Audit the quiescent network. The checker is read-only, so running it
	// (or not) cannot change simulation results.
	if n.check != nil {
		n.check.Check(now)
	}
	// Replay buffered ejections in node order on this goroutine: observers
	// first, then the recycler reclaims the packet. In a chiplet system a
	// packet ejecting at a gateway short of its final destination is not
	// delivered — it enters the crossbar for its second leg.
	if n.params.OnEject != nil || n.params.Recycle != nil || n.chiplets != nil {
		for _, sh := range n.eng.shards {
			for _, e := range sh.ejections {
				if n.chiplets != nil && e.pkt.FinalDst != e.pkt.Dst {
					n.xbar.Submit(e.pkt, e.pkt.CreatedAt, e.now)
					continue
				}
				if n.params.OnEject != nil {
					n.params.OnEject(e.pkt, e.now)
				}
				if n.params.Recycle != nil {
					n.params.Recycle(e.pkt)
				}
			}
			sh.ejections = sh.ejections[:0]
		}
	}
	// The crossbar ticks after replay so same-cycle submissions are
	// visible; it runs on this goroutine, keeping chiplet systems
	// bit-exact across worker counts.
	if n.xbar != nil {
		n.xbar.Tick(now)
	}
}

// Inject introduces a packet into the network at cycle now. It is the
// canonical injection entry: plain meshes forward to the source NI; chiplet
// systems plan the gateway legs (Dst becomes the source tile's gateway and
// FinalDst the true target) and classify inter-chiplet packets as global
// traffic so RAIR's boundary discipline gates them; concentrated meshes
// rotate injections across the NI's injector slots deterministically.
func (n *Network) Inject(p *msg.Packet, now int64) {
	if n.chiplets == nil || n.chiplets.SameChip(p.Src, p.Dst) {
		p.FinalDst = p.Dst
		n.injectLocal(p.Src, p, now)
		return
	}
	p.FinalDst = p.Dst
	gw := n.chiplets.Gateway(n.chiplets.ChipOf(p.Src))
	p.Dst = gw
	if p.Src == gw {
		// Source sits on the gateway: the first mesh leg is empty, so the
		// packet enters the crossbar directly, stamped as the NI would.
		p.CreatedAt = now
		p.InjectedAt = now
		p.EjectedAt = -1
		p.BatchID = policy.BatchFor(now)
		p.Global = true
		p.Blame = [msg.NumBlame]int32{}
		n.xbar.Submit(p, now, now)
		return
	}
	n.injectLocal(p.Src, p, now)
	// The NI classified the gateway leg from (Src, Dst), which share a
	// region; the packet's journey crosses one, so it is global traffic.
	p.Global = true
}

// injectLocal queues p at its source NI, rotating over the application
// injector slots when the mesh is concentrated (the bridge slot, if any, is
// reserved for crossbar re-injection). The rotation runs on the
// coordinator, so slot assignment is deterministic at any worker count.
func (n *Network) injectLocal(node int, p *msg.Packet, now int64) {
	if n.appSlots == 1 {
		n.nis[node].Inject(p, now)
		return
	}
	slot := n.injSlot[node]
	n.injSlot[node] = (slot + 1) % n.appSlots
	n.nis[node].InjectAt(slot, p, now)
}

// xbarDeliver re-introduces a packet that finished crossing the switch:
// it is re-injected at the destination tile's gateway for its second mesh
// leg (or delivered outright when the gateway is the final destination),
// with the first leg's creation stamp restored so end-to-end latency spans
// queueing, both mesh legs and the crossing.
func (n *Network) xbarDeliver(f xbarFlight, now int64) {
	p := f.pkt
	gw := n.chiplets.Gateway(n.chiplets.ChipOf(p.FinalDst))
	p.Src, p.Dst = gw, p.FinalDst
	if gw == p.FinalDst {
		p.EjectedAt = now
		p.CreatedAt = f.created
		if n.params.OnEject != nil {
			n.params.OnEject(p, now)
		}
		if n.params.Recycle != nil {
			n.params.Recycle(p)
		}
		return
	}
	n.nis[gw].InjectAt(n.bridgeSlot, p, now)
	p.CreatedAt = f.created
	// Foreign traffic inside the destination tile stays on the global VCs.
	p.Global = true
}

// InFlight reports packets created but not yet ejected, network-wide.
func (n *Network) InFlight() int64 {
	var created, ejected int64
	for _, ni := range n.nis {
		created += ni.Created()
		ejected += ni.Ejected()
	}
	return created - ejected
}

// BufferedFlits reports flits resident in router buffers and ST registers.
func (n *Network) BufferedFlits() int {
	total := 0
	for _, r := range n.routers {
		total += r.BufferedFlits()
	}
	return total
}

// Drained reports whether nothing is queued, buffered or in flight. Once no
// packets are in flight, flits cannot exist anywhere (a flit belongs to an
// unejected packet, by flit conservation), so the only possible residue is
// credits still traveling upstream — and a credit wire is busy exactly when
// its dirty bit is set (local wires) or its delay line is occupied (foreign
// wires), making the check a few word compares per shard.
func (n *Network) Drained() bool {
	if n.InFlight() != 0 {
		return false
	}
	// Packets crossing the chiplet switch are between legs: their first
	// leg's ejection balanced its creation, so InFlight misses them.
	if n.xbar != nil && !n.xbar.Idle() {
		return false
	}
	for _, sh := range n.eng.shards {
		for _, w := range sh.credDirty {
			if w != 0 {
				return false
			}
		}
		for _, i := range sh.foreignCred {
			if sh.rCred[i].link.CreditsBusy() {
				return false
			}
		}
	}
	return true
}

// auditQuiescence verifies the wake machinery against ground truth: every
// component skipped by the armed sweep must be truly quiescent, every work
// mirror must equal its component's counter sum, and every wire skipped by
// the dirty sweep must be idle. The invariant checker calls it at tick
// barriers; it is read-only.
func (n *Network) auditQuiescence() error {
	for si, sh := range n.eng.shards {
		for li, r := range sh.routers {
			rc, va, act, st := r.WorkCounters()
			sum := rc + va + act + st
			if int(sh.soa.Work[li]) != sum {
				return fmt.Errorf("shard %d router %d: work mirror %d != counter sum %d",
					si, r.Node(), sh.soa.Work[li], sum)
			}
			armed := sh.soa.ArmedRouter(li)
			if armed != (sum > 0) {
				return fmt.Errorf("shard %d router %d: armed=%v with work %d", si, r.Node(), armed, sum)
			}
			if !armed && r.BufferedFlits() > 0 {
				return fmt.Errorf("shard %d router %d: skipped with %d buffered flits",
					si, r.Node(), r.BufferedFlits())
			}
		}
		for li, ni := range sh.nis {
			q, str, drn := ni.WorkCounters()
			sum := q + str + drn
			if int(sh.soa.NIWork[li]) != sum {
				return fmt.Errorf("shard %d NI %d: work mirror %d != counter sum %d",
					si, ni.Node(), sh.soa.NIWork[li], sum)
			}
			if armed := sh.soa.ArmedNI(li); armed != (sum > 0) {
				return fmt.Errorf("shard %d NI %d: armed=%v with work %d", si, ni.Node(), armed, sum)
			}
		}
		nrf := len(sh.rFlit)
		for i := range sh.rFlit {
			if sh.rFlit[i].foreign {
				continue
			}
			if dirty := sh.flitDirty[i>>6]>>(uint(i)&63)&1 == 1; !dirty && sh.rFlit[i].link.FlitsBusy() {
				return fmt.Errorf("shard %d: busy flit wire %d not marked dirty", si, i)
			}
		}
		for j := range sh.nFlit {
			i := nrf + j
			if dirty := sh.flitDirty[i>>6]>>(uint(i)&63)&1 == 1; !dirty && sh.nFlit[j].link.FlitsBusy() {
				return fmt.Errorf("shard %d: busy NI flit wire %d not marked dirty", si, j)
			}
		}
		nrc := len(sh.rCred)
		for i := range sh.rCred {
			if sh.rCred[i].foreign {
				continue
			}
			if dirty := sh.credDirty[i>>6]>>(uint(i)&63)&1 == 1; !dirty && sh.rCred[i].link.CreditsBusy() {
				return fmt.Errorf("shard %d: busy credit wire %d not marked dirty", si, i)
			}
		}
		for j := range sh.nCred {
			i := nrc + j
			if dirty := sh.credDirty[i>>6]>>(uint(i)&63)&1 == 1; !dirty && sh.nCred[j].link.CreditsBusy() {
				return fmt.Errorf("shard %d: busy NI credit wire %d not marked dirty", si, j)
			}
		}
	}
	return nil
}

// StuckPacket returns a packet that has been inside the network for more
// than limit cycles (a deadlock/starvation watchdog), or nil.
func (n *Network) StuckPacket(now, limit int64) *msg.Packet {
	for _, r := range n.routers {
		if p := r.OldestOwner(); p != nil && p.InjectedAt >= 0 && now-p.InjectedAt > limit {
			return p
		}
	}
	return nil
}

// FlitConservation reports material accounted for inside the network
// (flits buffered in routers or ST registers, plus busy links, which carry
// at least one flit or credit each) alongside the in-flight packet count
// (created but not ejected, network-wide). The invariant tests rely on:
// whenever in-flight packets are zero, everything inside must be zero too —
// anything else means flits were lost, duplicated, or stranded.
func (n *Network) FlitConservation() (inside, inflightPackets int64) {
	inside = int64(n.BufferedFlits())
	for _, l := range n.links {
		if l.Busy() {
			inside++
		}
	}
	return inside, n.InFlight()
}

// CheckDrained panics with diagnostics if the network failed to drain; used
// by tests and the harness after a drain phase.
func (n *Network) CheckDrained() {
	if !n.Drained() {
		panic(fmt.Sprintf("network: failed to drain: inflight=%d buffered=%d", n.InFlight(), n.BufferedFlits()))
	}
}
