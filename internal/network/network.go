// Package network assembles routers, network interfaces and links into a
// complete mesh NoC and advances them cycle by cycle. All inter-component
// communication goes through links that are shifted once per cycle before
// any component ticks, so results are independent of iteration order.
//
// The network also runs the systolic congestion propagation DBAR relies on:
// each cycle a router learns its neighbor's occupancy (one cycle old) and
// the neighbor's view of the routers beyond it (one more cycle old per
// hop).
package network

import (
	"fmt"

	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/router"
	"rair/internal/routing"
	"rair/internal/topology"
)

// Params configures a network build.
type Params struct {
	// Router is the microarchitecture configuration shared by all nodes.
	Router router.Config
	// Regions assigns applications to nodes (also provides the mesh).
	Regions *region.Map
	// Alg is the routing algorithm; Sel the selection function used when
	// the algorithm returns several candidates.
	Alg routing.Algorithm
	Sel routing.Selector
	// Policy builds the per-router interference-reduction policy.
	Policy policy.Factory
	// OnEject, if non-nil, observes every delivered packet.
	OnEject func(*msg.Packet, int64)
}

type flitBinding struct {
	link          *router.Link
	deliverFlit   func(f msg.Flit, now int64)
	deliverCredit func(vc int)
}

// Network is a fully wired mesh NoC.
type Network struct {
	params   Params
	mesh     *topology.Mesh
	routers  []*router.Router
	nis      []*router.NI
	bindings []flitBinding
	now      int64
}

// New builds and wires the network.
func New(p Params) *Network {
	if err := p.Router.Validate(); err != nil {
		panic(err)
	}
	if p.Regions == nil || p.Alg == nil || p.Sel == nil || p.Policy == nil {
		panic("network: incomplete params")
	}
	mesh := p.Regions.Mesh()
	n := &Network{
		params:  p,
		mesh:    mesh,
		routers: make([]*router.Router, mesh.N()),
		nis:     make([]*router.NI, mesh.N()),
	}
	for id := 0; id < mesh.N(); id++ {
		app := p.Regions.AppAt(id)
		n.routers[id] = router.New(p.Router, id, app, mesh, p.Regions, p.Alg, p.Sel, p.Policy(id, app))
	}
	// Inter-router links (one per direction per adjacent pair).
	for id := 0; id < mesh.N(); id++ {
		for _, d := range []topology.Dir{topology.East, topology.South} {
			nb := mesh.Neighbor(id, d)
			if nb == -1 {
				continue
			}
			n.wire(n.routers[id], d, n.routers[nb])
			n.wire(n.routers[nb], d.Opposite(), n.routers[id])
		}
	}
	// NI links.
	for id := 0; id < mesh.N(); id++ {
		r := n.routers[id]
		inj := router.NewLink(p.Router.LinkLatency)
		ej := router.NewLink(p.Router.LinkLatency)
		ni := router.NewNI(p.Router, id, p.Regions, inj, ej, p.OnEject)
		n.nis[id] = ni
		r.ConnectIn(topology.Local, inj)
		r.ConnectOut(topology.Local, ej)
		rr := r
		n.bindings = append(n.bindings,
			flitBinding{
				link:          inj,
				deliverFlit:   func(f msg.Flit, _ int64) { rr.DeliverFlit(topology.Local, f) },
				deliverCredit: ni.DeliverCredit,
			},
			flitBinding{
				link:          ej,
				deliverFlit:   ni.DeliverFlit,
				deliverCredit: func(vc int) { rr.DeliverCredit(topology.Local, vc) },
			},
		)
	}
	return n
}

// wire connects src's output port at dir to dst's opposite input port.
func (n *Network) wire(src *router.Router, dir topology.Dir, dst *router.Router) {
	l := router.NewLink(n.params.Router.LinkLatency)
	src.ConnectOut(dir, l)
	dst.ConnectIn(dir.Opposite(), l)
	in := dir.Opposite()
	n.bindings = append(n.bindings, flitBinding{
		link:          l,
		deliverFlit:   func(f msg.Flit, _ int64) { dst.DeliverFlit(in, f) },
		deliverCredit: func(vc int) { src.DeliverCredit(dir, vc) },
	})
}

// Mesh returns the topology.
func (n *Network) Mesh() *topology.Mesh { return n.mesh }

// Regions returns the region map.
func (n *Network) Regions() *region.Map { return n.params.Regions }

// NI returns node's network interface.
func (n *Network) NI(node int) *router.NI { return n.nis[node] }

// Router returns node's router.
func (n *Network) Router(node int) *router.Router { return n.routers[node] }

// Now reports the cycle of the last Tick.
func (n *Network) Now() int64 { return n.now }

// Tick advances the whole network one cycle.
func (n *Network) Tick(now int64) {
	n.now = now
	// Phase 1: links deliver.
	for _, b := range n.bindings {
		f, fOK, credit, cOK := b.link.Shift()
		if fOK {
			b.deliverFlit(f, now)
		}
		if cOK {
			b.deliverCredit(credit)
		}
	}
	// Phase 2: routers and NIs compute.
	for _, r := range n.routers {
		r.Tick(now)
	}
	for _, ni := range n.nis {
		ni.Tick(now)
	}
	// Phase 3: propagate congestion one hop.
	n.propagateCongestion()
}

func (n *Network) propagateCongestion() {
	for id, r := range n.routers {
		for d := topology.North; d < topology.NumDirs; d++ {
			next := r.CongNextRow(d)
			nb := n.mesh.Neighbor(id, d)
			if nb == -1 {
				for k := range next {
					next[k] = 0
				}
				continue
			}
			nr := n.routers[nb]
			next[0] = nr.InPortOccupancy(d)
			prev := nr.CongRow(d)
			copy(next[1:], prev[:len(next)-1])
		}
	}
	for _, r := range n.routers {
		r.SwapCong()
	}
}

// InFlight reports packets created but not yet ejected, network-wide.
func (n *Network) InFlight() int64 {
	var created, ejected int64
	for _, ni := range n.nis {
		created += ni.Created()
		ejected += ni.Ejected()
	}
	return created - ejected
}

// BufferedFlits reports flits resident in router buffers and ST registers.
func (n *Network) BufferedFlits() int {
	total := 0
	for _, r := range n.routers {
		total += r.BufferedFlits()
	}
	return total
}

// Drained reports whether nothing is queued, buffered or in flight.
func (n *Network) Drained() bool {
	if n.InFlight() != 0 {
		return false
	}
	for _, b := range n.bindings {
		if b.link.Busy() {
			return false
		}
	}
	return n.BufferedFlits() == 0
}

// StuckPacket returns a packet that has been inside the network for more
// than limit cycles (a deadlock/starvation watchdog), or nil.
func (n *Network) StuckPacket(now, limit int64) *msg.Packet {
	for _, r := range n.routers {
		if p := r.OldestOwner(); p != nil && p.InjectedAt >= 0 && now-p.InjectedAt > limit {
			return p
		}
	}
	return nil
}

// FlitConservation reports material accounted for inside the network
// (flits buffered in routers or ST registers, plus busy links, which carry
// at least one flit or credit each) alongside the in-flight packet count
// (created but not ejected, network-wide). The invariant tests rely on:
// whenever in-flight packets are zero, everything inside must be zero too —
// anything else means flits were lost, duplicated, or stranded.
func (n *Network) FlitConservation() (inside, inflightPackets int64) {
	inside = int64(n.BufferedFlits())
	for _, b := range n.bindings {
		if b.link.Busy() {
			inside++
		}
	}
	return inside, n.InFlight()
}

// CheckDrained panics with diagnostics if the network failed to drain; used
// by tests and the harness after a drain phase.
func (n *Network) CheckDrained() {
	if !n.Drained() {
		panic(fmt.Sprintf("network: failed to drain: inflight=%d buffered=%d", n.InFlight(), n.BufferedFlits()))
	}
}
