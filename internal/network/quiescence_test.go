package network

import (
	"testing"
	"testing/quick"

	"rair/internal/msg"
	"rair/internal/sim"
)

// TestQuiescentTickIsNoop is the property the engine's armed-component sweep
// depends on: a component whose wake bit is clear may be skipped because
// ticking it is (after one settle) a fixed point. An unarmed router may
// still carry deferred lazy cleanup — an output VC whose tail departed and
// whose credits all returned stays owned until the next tick's free() pass,
// which always runs before any consumer of the port state — so the property
// is checked as: one forced settle tick (applies the deferred frees, must
// not create work or re-arm), then a second forced tick whose full
// observable surface — pipeline debug rendering, work mirror, DPA occupancy
// registers, occupancy snapshot, wake bit, mask-shadow audit — comes out
// bit-identical. A failure means quiescence elision is not
// semantics-preserving (e.g. a policy whose Update(0,0) is not a fixed
// point) and the sweep would diverge from an always-tick engine.
func TestQuiescentTickIsNoop(t *testing.T) {
	prop := func(seed uint64, workerSel, stopSel uint8) bool {
		workers := int(workerSel%4) + 1
		n, _ := buildWorkers(t, workers, localSel)
		rng := sim.NewRNG(seed)
		mesh := n.Mesh()
		stop := 50 + int64(stopSel) // mid-flight: some routers busy, some not
		id := uint64(0)
		for c := int64(0); c < stop; c++ {
			for i := 0; i < 3; i++ {
				src, dst := rng.Intn(mesh.N()), rng.Intn(mesh.N())
				if src == dst {
					continue
				}
				id++
				n.NI(src).Inject(&msg.Packet{
					ID: id, App: n.Regions().AppAt(src), Src: src, Dst: dst,
					Size: 1 + rng.Intn(5), Class: msg.ClassRequest,
				}, c)
			}
			n.Tick(c)
		}
		checked := 0
		for _, sh := range n.eng.shards {
			for li, r := range sh.routers {
				if sh.soa.ArmedRouter(li) {
					continue
				}
				if sh.soa.Work[li] != 0 {
					t.Errorf("router %d unarmed with Work=%d", r.Node(), sh.soa.Work[li])
					return false
				}
				// Settle tick: applies any deferred output-VC frees. It must
				// not create work or re-arm the router.
				r.Tick(stop)
				if sh.soa.Work[li] != 0 || sh.soa.ArmedRouter(li) {
					t.Errorf("router %d settle tick created work or re-armed", r.Node())
					return false
				}
				before := r.DebugState()
				nat, frn := sh.soa.NativeOcc[li], sh.soa.ForeignOcc[li]
				snap := sh.soa.OccSnap[li]
				r.Tick(stop)
				if after := r.DebugState(); after != before {
					t.Errorf("router %d state changed on quiescent tick:\nbefore:\n%safter:\n%s", r.Node(), before, after)
					return false
				}
				if sh.soa.Work[li] != 0 || sh.soa.ArmedRouter(li) ||
					sh.soa.NativeOcc[li] != nat || sh.soa.ForeignOcc[li] != frn ||
					sh.soa.OccSnap[li] != snap {
					t.Errorf("router %d registers changed on quiescent tick", r.Node())
					return false
				}
				r.AuditMasks(func(desc string) {
					t.Errorf("router %d mask desync after quiescent tick: %s", r.Node(), desc)
				})
				checked++
			}
			for li, ni := range sh.nis {
				if sh.soa.ArmedNI(li) {
					continue
				}
				if sh.soa.NIWork[li] != 0 {
					t.Errorf("NI %d unarmed with NIWork=%d", ni.Node(), sh.soa.NIWork[li])
					return false
				}
				q, s, d := ni.WorkCounters()
				out, ej := ni.FlitsOut(), ni.Ejected()
				ni.Tick(stop)
				q2, s2, d2 := ni.WorkCounters()
				if q2 != q || s2 != s || d2 != d || ni.FlitsOut() != out || ni.Ejected() != ej ||
					sh.soa.NIWork[li] != 0 || sh.soa.ArmedNI(li) {
					t.Errorf("NI %d state changed on quiescent tick", ni.Node())
					return false
				}
				ni.AuditMasks(func(desc string) {
					t.Errorf("NI %d mask desync after quiescent tick: %s", ni.Node(), desc)
				})
				checked++
			}
		}
		if checked == 0 {
			t.Error("workload left no quiescent components to check")
			return false
		}
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestDrainedNetworkTickAllocs gates the quiescent path itself: once the
// network has drained, every wake bitmap is empty and a tick must not only
// skip all components but also touch the heap zero times. Complements
// TestSteadyStateTickAllocs (the loaded-path gate).
func TestDrainedNetworkTickAllocs(t *testing.T) {
	n, _ := buildWorkers(t, 1, localSel)
	rng := sim.NewRNG(1)
	mesh := n.Mesh()
	var c int64
	for ; c < 200; c++ {
		src, dst := rng.Intn(mesh.N()), rng.Intn(mesh.N())
		if src != dst {
			n.NI(src).Inject(&msg.Packet{
				ID: uint64(c + 1), App: n.Regions().AppAt(src), Src: src, Dst: dst,
				Size: 2, Class: msg.ClassRequest,
			}, c)
		}
		n.Tick(c)
	}
	for ; c < 100000 && !n.Drained(); c++ {
		n.Tick(c)
	}
	n.CheckDrained()
	if r, ni := n.eng.shards[0].soa.ArmedCount(); r != 0 || ni != 0 {
		t.Fatalf("drained network still has %d routers / %d NIs armed", r, ni)
	}
	if avg := testing.AllocsPerRun(100, func() {
		n.Tick(c)
		c++
	}); avg != 0 {
		t.Fatalf("quiescent tick allocates %.1f times per cycle, want 0", avg)
	}
}
