package network

import (
	"math/bits"
	"time"
)

// Engine self-profiling (Params.Profile): per-shard wall time per phase,
// coordinator barrier-wait histograms, armed-component visit counts and
// dirty-wire sweep sizes, plus derived quiescence hit rates. All of it is
// observational — the profiled quantities are wall-clock and visit counts,
// never simulation state — so enabling it cannot change results; the
// recording paths are gated so that a network built without Profile pays
// nothing beyond dead register increments inside already-hot loops.
//
// Shard counters are written only by the owning shard during its phase
// (same ownership discipline as telemetry probes) and each shard's counter
// block is padded to a cache line so the writes never false-share. The
// coordinator reads them between ticks, after the phase barrier's
// happens-before edge.

// PhaseNames names the engine's phases in enginePhase order; barrier and
// per-shard phase arrays are indexed the same way.
var PhaseNames = [numPhases]string{"links", "compute", "congFill", "congSwap"}

const numPhases = 4

// barrierHistBuckets is the number of log2-nanosecond barrier-wait buckets:
// bucket k counts waits in [2^(k-1), 2^k) ns, with the last bucket catching
// everything at or above ~65 µs.
const barrierHistBuckets = 18

// EngineProfile is the exported self-profile of one network's tick engine.
type EngineProfile struct {
	// Cycles is the number of Tick calls profiled; Workers the shard count.
	Cycles  int64 `json:"cycles"`
	Workers int   `json:"workers"`

	Shards []ShardProfile `json:"shards"`

	// Barrier holds the coordinator's post-phase barrier waits (time spent
	// draining worker completions after finishing its own shard), one entry
	// per phase. Empty on serial engines, which have no barriers.
	Barrier []BarrierProfile `json:"barrier,omitempty"`
}

// ShardProfile is one shard's slice of the profile.
type ShardProfile struct {
	Shard int `json:"shard"`
	Nodes int `json:"nodes"`

	// PhaseNS is wall time spent executing each phase, in PhaseNames order.
	PhaseNS [numPhases]int64 `json:"phaseNs"`

	// RouterTicks/NITicks count armed-component visits in the compute
	// sweep (a stalled router is visited but not ticked; it still counts —
	// the sweep paid for it).
	RouterTicks int64 `json:"routerTicks"`
	NITicks     int64 `json:"niTicks"`

	// FastPathTicks counts router ticks served by the precomputed
	// streaming fast path (no allocation replay). Read from the routers'
	// own counters at snapshot time, so the hot path pays nothing extra.
	FastPathTicks int64 `json:"fastPathTicks"`

	// DirtyFlitWires/DirtyCredWires count wire visits in the phase-1
	// dirty-bitmap sweeps (foreign wires, polled unconditionally, are not
	// included).
	DirtyFlitWires int64 `json:"dirtyFlitWires"`
	DirtyCredWires int64 `json:"dirtyCredWires"`

	// RouterQuiescence/NIQuiescence are the fraction of (node, cycle)
	// slots the armed sweep skipped — the quiescence hit rate.
	RouterQuiescence float64 `json:"routerQuiescence"`
	NIQuiescence     float64 `json:"niQuiescence"`
}

// BarrierProfile is the coordinator's barrier-wait record for one phase.
type BarrierProfile struct {
	Phase string `json:"phase"`
	// Waits counts barrier drains; WaitNS their total wall time.
	Waits  int64 `json:"waits"`
	WaitNS int64 `json:"waitNs"`
	// Hist is a log2-ns histogram: Hist[k] counts waits below 2^k ns and
	// at or above 2^(k-1) ns (k=0: sub-nanosecond), with the top bucket
	// unbounded.
	Hist [barrierHistBuckets]int64 `json:"hist"`
}

// shardProf is one shard's live counter block, exactly one 64-byte cache
// line so adjacent shards' writes never share a line.
type shardProf struct {
	phaseNS     [numPhases]int64
	routerTicks int64
	niTicks     int64
	dirtyFlit   int64
	dirtyCred   int64
}

type barrierProf struct {
	waitNS int64
	waits  int64
	hist   [barrierHistBuckets]int64
}

type engineProf struct {
	cycles  int64
	shards  []shardProf
	barrier [numPhases]barrierProf
}

func newEngineProf(shards int) *engineProf {
	return &engineProf{shards: make([]shardProf, shards)}
}

// log2Bucket maps a nanosecond wait to its histogram bucket.
func log2Bucket(ns int64) int {
	b := bits.Len64(uint64(ns))
	if b >= barrierHistBuckets {
		b = barrierHistBuckets - 1
	}
	return b
}

// recordBarrier accumulates one coordinator barrier drain.
func (p *engineProf) recordBarrier(ph enginePhase, d time.Duration) {
	bp := &p.barrier[ph]
	ns := d.Nanoseconds()
	bp.waitNS += ns
	bp.waits++
	bp.hist[log2Bucket(ns)]++
}

// EngineProfile snapshots the engine's self-profile, or nil when the
// network was built without Params.Profile. Call between ticks (or after
// the run) on the goroutine driving Tick: the phase barriers order every
// shard's counter writes before the coordinator's read.
func (n *Network) EngineProfile() *EngineProfile {
	prof := n.eng.prof
	if prof == nil {
		return nil
	}
	out := &EngineProfile{Cycles: prof.cycles, Workers: len(n.eng.shards)}
	for i := range prof.shards {
		sp := &prof.shards[i]
		sh := n.eng.shards[i]
		s := ShardProfile{
			Shard:          i,
			Nodes:          len(sh.routers),
			PhaseNS:        sp.phaseNS,
			RouterTicks:    sp.routerTicks,
			NITicks:        sp.niTicks,
			DirtyFlitWires: sp.dirtyFlit,
			DirtyCredWires: sp.dirtyCred,
		}
		for _, r := range sh.routers {
			s.FastPathTicks += r.FastTicks()
		}
		if slots := int64(s.Nodes) * prof.cycles; slots > 0 {
			s.RouterQuiescence = 1 - float64(s.RouterTicks)/float64(slots)
			s.NIQuiescence = 1 - float64(s.NITicks)/float64(slots)
		}
		out.Shards = append(out.Shards, s)
	}
	if len(n.eng.cmd) > 0 {
		for ph := 0; ph < numPhases; ph++ {
			bp := &prof.barrier[ph]
			out.Barrier = append(out.Barrier, BarrierProfile{
				Phase: PhaseNames[ph], Waits: bp.waits, WaitNS: bp.waitNS, Hist: bp.hist,
			})
		}
	}
	return out
}
