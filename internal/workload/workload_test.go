package workload

import (
	"testing"

	"rair/internal/memsys"
	"rair/internal/sim"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"blackscholes", "swaptions", "fluidanimate", "raytrace"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestStreamIssueRate(t *testing.T) {
	s := NewStream(Blackscholes, 0, 0)
	rng := sim.NewRNG(1)
	issued := 0
	const cycles = 20000
	for i := 0; i < cycles; i++ {
		if _, ok := s.Next(rng); ok {
			issued++
		}
	}
	frac := float64(issued) / cycles
	if frac < Blackscholes.IssueProb-0.02 || frac > Blackscholes.IssueProb+0.02 {
		t.Fatalf("issue rate %v, want ≈%v", frac, Blackscholes.IssueProb)
	}
}

func TestStreamsDisjointAddressSpaces(t *testing.T) {
	a := NewStream(Raytrace, 0, 3)
	b := NewStream(Raytrace, 1, 3) // other app
	c := NewStream(Raytrace, 0, 4) // other core, same app
	rng := sim.NewRNG(2)
	seen := map[uint64]string{}
	collect := func(s *Stream, label string, privateOnly bool) {
		for i := 0; i < 3000; i++ {
			acc, ok := s.Next(rng)
			if !ok {
				continue
			}
			// Shared accesses within an app intentionally overlap
			// across cores; tag them by app only.
			key := acc.Addr >> 6
			owner := label
			if acc.Addr&(1<<46) != 0 {
				owner = label[:1] + "-shared"
			}
			if prev, ok := seen[key]; ok && prev != owner {
				t.Fatalf("address %#x shared between %s and %s", acc.Addr, prev, owner)
			}
			seen[key] = owner
		}
	}
	collect(a, "A0c3", true)
	collect(b, "B1c3", true)
	collect(c, "A0c4", true)
}

// The proxies' L1-filtered miss intensity must follow the PARSEC ordering
// the paper relies on: blackscholes < swaptions < fluidanimate < raytrace.
func TestIntensityOrdering(t *testing.T) {
	missFlux := func(p Profile) float64 {
		l1 := memsys.NewCache(32<<10, 2, 64)
		s := NewStream(p, 0, 0)
		rng := sim.NewRNG(7)
		misses := 0
		const cycles = 60000
		for i := 0; i < cycles; i++ {
			a, ok := s.Next(rng)
			if !ok {
				continue
			}
			if !l1.Access(a.Addr) {
				misses++
			}
		}
		return float64(misses) / cycles // misses per cycle
	}
	prev := -1.0
	for _, p := range Profiles() {
		f := missFlux(p)
		t.Logf("%s: %.4f misses/cycle", p.Name, f)
		if f <= prev {
			t.Fatalf("%s intensity %.4f not above previous %.4f", p.Name, f, prev)
		}
		prev = f
	}
}

func TestSpatialLocality(t *testing.T) {
	// Raytrace (RunLen 4) must still produce sequential runs: consecutive
	// block addresses back to back.
	s := NewStream(Raytrace, 0, 0)
	rng := sim.NewRNG(3)
	sequential, total := 0, 0
	var last uint64
	for i := 0; i < 10000; i++ {
		a, ok := s.Next(rng)
		if !ok {
			continue
		}
		if last != 0 && a.Addr == last+64 {
			sequential++
		}
		last = a.Addr
		total++
	}
	if frac := float64(sequential) / float64(total); frac < 0.4 {
		t.Fatalf("sequential fraction %v too low", frac)
	}
}

func TestWriteFraction(t *testing.T) {
	s := NewStream(Fluidanimate, 0, 0)
	rng := sim.NewRNG(4)
	writes, total := 0, 0
	for i := 0; i < 30000; i++ {
		a, ok := s.Next(rng)
		if !ok {
			continue
		}
		if a.Write {
			writes++
		}
		total++
	}
	frac := float64(writes) / float64(total)
	if frac < Fluidanimate.WriteFrac-0.03 || frac > Fluidanimate.WriteFrac+0.03 {
		t.Fatalf("write fraction %v, want ≈%v", frac, Fluidanimate.WriteFrac)
	}
}

func TestAllProfilesComplete(t *testing.T) {
	all := AllProfiles()
	if len(all) != 13 {
		t.Fatalf("PARSEC 2.0 has 13 applications, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if p.Name == "" || seen[p.Name] {
			t.Fatalf("bad or duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.IssueProb <= 0 || p.IssueProb > 1 || p.PrivateBlocks < 1 || p.SharedBlocks < 1 {
			t.Fatalf("implausible parameters for %q: %+v", p.Name, p)
		}
		if p.SharedProb < 0 || p.SharedProb > 1 || p.WriteFrac < 0 || p.WriteFrac > 1 {
			t.Fatalf("bad probabilities for %q", p.Name)
		}
		got, err := ByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("ByName(%q) failed", p.Name)
		}
	}
	// The headline four are part of the suite.
	for _, p := range Profiles() {
		if !seen[p.Name] {
			t.Fatalf("%q missing from AllProfiles", p.Name)
		}
	}
}

func TestAllProfilesStreamAndMiss(t *testing.T) {
	for _, p := range AllProfiles() {
		l1 := memsys.NewCache(32<<10, 2, 64)
		s := NewStream(p, 0, 0)
		rng := sim.NewRNG(11)
		issued := 0
		for i := 0; i < 20000; i++ {
			a, ok := s.Next(rng)
			if !ok {
				continue
			}
			issued++
			l1.Access(a.Addr)
		}
		if issued == 0 {
			t.Fatalf("%s never issues", p.Name)
		}
		if l1.Misses() == 0 {
			t.Fatalf("%s produces no network traffic at all", p.Name)
		}
	}
}
