// Package workload models the four PARSEC applications the evaluation uses
// (blackscholes, swaptions, fluidanimate, raytrace) as parameterized
// address-stream generators for the memsys substrate. The real benchmarks'
// binaries and SIMICS/GEMS traces are not reproducible here; these proxies
// regenerate the property the NoC experiments consume — per-application
// network intensity and locality, spanning low (blackscholes) to high
// (raytrace) traffic — through an L1-filtered working-set model:
//
//   - a per-core private working set (spatial locality via sequential runs)
//   - a shared working set touched with an application-specific probability
//   - an issue probability modeling compute/memory ratio
//
// Working sets larger than the 32 KB L1 raise miss rates and thus network
// intensity; the parameters below were chosen so the relative intensity
// ordering matches the PARSEC characterization (blackscholes < swaptions <
// fluidanimate < raytrace).
package workload

import (
	"fmt"

	"rair/internal/memsys"
	"rair/internal/sim"
)

// Profile parameterizes one application's memory behaviour.
type Profile struct {
	Name string
	// IssueProb is the probability a core issues a memory access in a
	// cycle (compute intensity model).
	IssueProb float64
	// PrivateBlocks is the per-core private working set in cache blocks.
	PrivateBlocks int
	// SharedBlocks is the application-wide shared working set in blocks.
	SharedBlocks int
	// SharedProb is the probability an access touches the shared set.
	SharedProb float64
	// RunLen is the mean sequential run length (spatial locality): after
	// a random jump the stream walks consecutive blocks.
	RunLen int
	// WriteFrac is the fraction of writes.
	WriteFrac float64
}

// The four PARSEC proxies. Intensity comes from working sets relative to
// the 32 KB (512-block) L1 and issue probability.
var (
	// Blackscholes: small per-thread state, compute bound → very low
	// network intensity.
	Blackscholes = Profile{
		Name: "blackscholes", IssueProb: 0.25,
		PrivateBlocks: 320, SharedBlocks: 512, SharedProb: 0.05,
		RunLen: 16, WriteFrac: 0.2,
	}
	// Swaptions: modest working set, low-to-moderate misses.
	Swaptions = Profile{
		Name: "swaptions", IssueProb: 0.30,
		PrivateBlocks: 1024, SharedBlocks: 1024, SharedProb: 0.08,
		RunLen: 12, WriteFrac: 0.25,
	}
	// Fluidanimate: larger grids with neighbor sharing → medium-high
	// intensity. Working sets exceed the 512-block L1 (network traffic)
	// but mostly fit the region's aggregate L2, as the cooperative-cache
	// RNoC premise requires.
	Fluidanimate = Profile{
		Name: "fluidanimate", IssueProb: 0.35,
		PrivateBlocks: 2048, SharedBlocks: 4096, SharedProb: 0.20,
		RunLen: 8, WriteFrac: 0.35,
	}
	// Raytrace: large irregular scene data → high intensity (the largest
	// L1-resident footprint and the most shared traffic).
	Raytrace = Profile{
		Name: "raytrace", IssueProb: 0.40,
		PrivateBlocks: 3072, SharedBlocks: 8192, SharedProb: 0.35,
		RunLen: 4, WriteFrac: 0.1,
	}
)

// The remaining PARSEC 2.0 applications. The paper's infrastructure
// "supports all 13 applications in PARSEC 2.0" and presents four; these
// proxies complete the suite. Parameters are set from the PARSEC
// characterization's relative memory behaviour (working-set class,
// sharing, read/write mix); as with the headline four, only the relative
// network intensity and locality matter to the NoC experiments.
var (
	// Bodytrack: medium working set, mostly-read shared body model.
	Bodytrack = Profile{
		Name: "bodytrack", IssueProb: 0.30,
		PrivateBlocks: 1536, SharedBlocks: 2048, SharedProb: 0.15,
		RunLen: 10, WriteFrac: 0.2,
	}
	// Canneal: huge irregular netlist, cache-hostile pointer chasing.
	Canneal = Profile{
		Name: "canneal", IssueProb: 0.35,
		PrivateBlocks: 4096, SharedBlocks: 8192, SharedProb: 0.45,
		RunLen: 2, WriteFrac: 0.25,
	}
	// Dedup: streaming pipeline with hash tables.
	Dedup = Profile{
		Name: "dedup", IssueProb: 0.35,
		PrivateBlocks: 2048, SharedBlocks: 4096, SharedProb: 0.25,
		RunLen: 12, WriteFrac: 0.35,
	}
	// Facesim: large meshes, regular sweeps.
	Facesim = Profile{
		Name: "facesim", IssueProb: 0.35,
		PrivateBlocks: 3072, SharedBlocks: 4096, SharedProb: 0.15,
		RunLen: 14, WriteFrac: 0.35,
	}
	// Ferret: similarity search pipeline, read-dominated shared tables.
	Ferret = Profile{
		Name: "ferret", IssueProb: 0.30,
		PrivateBlocks: 2048, SharedBlocks: 6144, SharedProb: 0.35,
		RunLen: 6, WriteFrac: 0.15,
	}
	// Freqmine: frequent itemset mining over shared FP-trees.
	Freqmine = Profile{
		Name: "freqmine", IssueProb: 0.30,
		PrivateBlocks: 2560, SharedBlocks: 4096, SharedProb: 0.30,
		RunLen: 5, WriteFrac: 0.3,
	}
	// Streamcluster: streaming k-median; scans large point arrays.
	Streamcluster = Profile{
		Name: "streamcluster", IssueProb: 0.40,
		PrivateBlocks: 3072, SharedBlocks: 6144, SharedProb: 0.25,
		RunLen: 16, WriteFrac: 0.1,
	}
	// Vips: image pipeline, streaming tiles.
	Vips = Profile{
		Name: "vips", IssueProb: 0.30,
		PrivateBlocks: 1536, SharedBlocks: 2048, SharedProb: 0.10,
		RunLen: 16, WriteFrac: 0.3,
	}
	// X264: motion estimation over reference frames.
	X264 = Profile{
		Name: "x264", IssueProb: 0.30,
		PrivateBlocks: 1024, SharedBlocks: 3072, SharedProb: 0.20,
		RunLen: 12, WriteFrac: 0.25,
	}
)

// Profiles returns the four headline proxies in the paper's order
// (blackscholes, swaptions, fluidanimate, raytrace).
func Profiles() []Profile {
	return []Profile{Blackscholes, Swaptions, Fluidanimate, Raytrace}
}

// AllProfiles returns proxies for the full PARSEC 2.0 suite the paper's
// infrastructure supports (13 applications).
func AllProfiles() []Profile {
	return []Profile{
		Blackscholes, Bodytrack, Canneal, Dedup, Facesim, Ferret,
		Fluidanimate, Freqmine, Raytrace, Streamcluster, Swaptions,
		Vips, X264,
	}
}

// ByName resolves a profile by its PARSEC name.
func ByName(name string) (Profile, error) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown application %q", name)
}

// blockBytes matches the Table 1 block size; streams generate
// block-granular addresses.
const blockBytes = 64

// Stream is one core's address stream for a profile. It implements
// memsys.AddressStream.
type Stream struct {
	prof Profile
	app  int
	core int

	run    int    // remaining blocks in the current sequential run
	cur    uint64 // current block address
	shared bool   // current run is in the shared set
	baseP  uint64 // private segment base
	baseS  uint64 // shared segment base
}

// NewStream builds the stream for one core (thread) of an application.
// Address spaces are disjoint per app and per core so streams never alias.
func NewStream(prof Profile, app, core int) *Stream {
	return &Stream{
		prof:  prof,
		app:   app,
		core:  core,
		baseP: (uint64(app+1) << 48) | (uint64(core+1) << 32),
		baseS: (uint64(app+1) << 48) | (1 << 46),
	}
}

// Profile returns the stream's application profile.
func (s *Stream) Profile() Profile { return s.prof }

// Next implements memsys.AddressStream.
func (s *Stream) Next(rng *sim.RNG) (memsys.Access, bool) {
	if !rng.Bool(s.prof.IssueProb) {
		return memsys.Access{}, false
	}
	if s.run <= 0 {
		// Jump to a new run.
		s.shared = rng.Bool(s.prof.SharedProb)
		if s.shared {
			s.cur = s.baseS + uint64(rng.Intn(max(1, s.prof.SharedBlocks)))*blockBytes
		} else {
			s.cur = s.baseP + uint64(rng.Intn(max(1, s.prof.PrivateBlocks)))*blockBytes
		}
		s.run = 1 + rng.Intn(max(1, 2*s.prof.RunLen)) // mean ≈ RunLen
	} else {
		s.cur += blockBytes
	}
	s.run--
	return memsys.Access{Addr: s.cur, Write: rng.Bool(s.prof.WriteFrac)}, true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
