package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Record is one completed job in the result store. Every field is
// deterministic for a fixed job (no timestamps, no wall durations), so a
// store produced by a resumed sweep is byte-identical to one produced by an
// uninterrupted run of the same manifest.
type Record struct {
	Key        string `json:"key"`
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
	// Attempts is omitted from the record on purpose: retry counts depend
	// on transient host conditions and would break store byte-identity.

	// Text is the experiment's human-readable table; CSV its machine-
	// readable rendition (empty for experiments without tabular output).
	Text string `json:"text"`
	CSV  string `json:"csv,omitempty"`
}

// encodeRecord marshals a record as one canonical JSONL line (struct field
// order, no HTML escaping, trailing newline).
func encodeRecord(r *Record) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil // Encode appends the newline
}

// Store is an append-only JSONL result store.
type Store struct {
	f *os.File
}

// CreateStore creates (or truncates, when force is set) a store file.
// Without force an existing non-empty file is an error: starting a fresh
// sweep over a partial store silently discards work — that is what resume
// is for.
func CreateStore(path string, force bool) (*Store, error) {
	if !force {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			return nil, fmt.Errorf("sweep: store %s already exists (%d bytes); use resume to continue it or force to overwrite", path, fi.Size())
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Store{f: f}, nil
}

// OpenStoreAppend opens an existing store for appending (resume). The
// caller is expected to have run RecoverStore first so the tail is a whole
// record.
func OpenStoreAppend(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Store{f: f}, nil
}

// Append writes one record and syncs it to disk, so a kill mid-sweep loses
// at most the record being written (which recovery truncates away).
func (s *Store) Append(r *Record) error {
	line, err := encodeRecord(r)
	if err != nil {
		return err
	}
	if _, err := s.f.Write(line); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close closes the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// LoadStore reads every whole record of a store. A truncated or corrupt
// tail line is an error here; use RecoverStore to truncate it away before
// resuming.
func LoadStore(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, _, err := scanRecords(f)
	return recs, err
}

// RecoverStore reads a store tolerating a truncated tail: records up to the
// last whole line parse as usual, and anything after (a record cut mid-write
// by a kill) is truncated off the file so appends resume from a clean
// record boundary. It returns the surviving records and how many bytes were
// dropped.
func RecoverStore(path string) (recs []Record, dropped int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	recs, good, err := scanRecords(f)
	if err == nil {
		return recs, 0, nil
	}
	fi, err2 := f.Stat()
	if err2 != nil {
		return nil, 0, err2
	}
	dropped = fi.Size() - good
	if terr := f.Truncate(good); terr != nil {
		return nil, 0, fmt.Errorf("sweep: truncating corrupt store tail: %w", terr)
	}
	return recs, dropped, nil
}

// scanRecords parses JSONL records, returning the byte offset just past the
// last whole valid record alongside a parse error for anything beyond it.
func scanRecords(r io.Reader) (recs []Record, good int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr == io.EOF && len(line) == 0 {
			return recs, good, nil
		}
		whole := rerr == nil // a line without trailing newline is a cut-off write
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Key == "" || !whole {
			return recs, good, fmt.Errorf("sweep: store corrupt at byte %d: %d trailing bytes are not a whole record", good, len(line))
		}
		recs = append(recs, rec)
		good += int64(len(line))
		if rerr != nil {
			return recs, good, nil
		}
	}
}

// Keys returns the set of job keys present in the records.
func Keys(recs []Record) map[string]bool {
	out := make(map[string]bool, len(recs))
	for _, r := range recs {
		out[r.Key] = true
	}
	return out
}
