package sweep

import (
	"fmt"
	"io"
	"sort"
)

// WriteSummary renders a store (and optionally its check report) as a
// markdown summary: one section per experiment with the result tables of
// every seed, preceded by the guard verdicts. The nightly CI workflow
// publishes this next to the raw store.
func WriteSummary(w io.Writer, name string, recs []Record, check *CheckReport) error {
	fmt.Fprintf(w, "# Sweep summary: %s\n\n%d results.\n\n", name, len(recs))
	if check != nil {
		fmt.Fprintf(w, "## Shape guards\n\n```\n%s\n```\n\n", check.String())
	}
	byExp := make(map[string][]Record)
	var names []string
	for _, r := range recs {
		if len(byExp[r.Experiment]) == 0 {
			names = append(names, r.Experiment)
		}
		byExp[r.Experiment] = append(byExp[r.Experiment], r)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "## %s\n\n", n)
		for _, r := range byExp[n] {
			dur := "paper"
			if r.Quick {
				dur = "quick"
			}
			fmt.Fprintf(w, "seed %d, %s durations (`%s`):\n\n```\n%s```\n\n", r.Seed, dur, r.Key, r.Text)
		}
	}
	return nil
}
