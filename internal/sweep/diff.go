package sweep

import (
	"fmt"
	"sort"
	"strings"

	"rair/internal/stats"
)

// DiffReport is the statistical comparison of two result stores: for every
// job key present in both, the numeric cells of the CSV payloads are
// compared pairwise and the relative deltas accumulated per experiment.
type DiffReport struct {
	// Experiments maps experiment name -> distribution of |relative delta|
	// over comparable numeric cells.
	Experiments map[string]*stats.Dist
	// Cells counts comparable numeric cell pairs; Mismatched counts keys
	// whose tables differ structurally (shape, labels, non-numeric cells).
	Cells      int
	Mismatched []string // keys with structural differences
	OnlyA      []string // keys only in store A
	OnlyB      []string // keys only in store B
	Common     int
}

// MaxDelta returns the largest |relative delta| across all experiments.
func (r *DiffReport) MaxDelta() float64 {
	m := 0.0
	for _, d := range r.Experiments {
		if v := d.Max(); v > m {
			m = v
		}
	}
	return m
}

// Within reports whether the stores agree within tol everywhere: no
// structural mismatches and every numeric delta <= tol.
func (r *DiffReport) Within(tol float64) bool {
	return len(r.Mismatched) == 0 && r.MaxDelta() <= tol
}

// String renders the per-experiment delta statistics.
func (r *DiffReport) String() string {
	var b strings.Builder
	names := make([]string, 0, len(r.Experiments))
	for n := range r.Experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%-14s %6s %10s %10s %10s\n", "experiment", "cells", "mean|d|", "p95|d|", "max|d|")
	for _, n := range names {
		d := r.Experiments[n]
		fmt.Fprintf(&b, "%-14s %6d %9.4f%% %9.4f%% %9.4f%%\n",
			n, d.Count(), 100*d.Mean(), 100*d.Percentile(95), 100*d.Max())
	}
	fmt.Fprintf(&b, "%d common keys, %d numeric cells compared, max |delta| %.4f%%",
		r.Common, r.Cells, 100*r.MaxDelta())
	if len(r.OnlyA) > 0 || len(r.OnlyB) > 0 {
		fmt.Fprintf(&b, "; %d keys only in A, %d only in B", len(r.OnlyA), len(r.OnlyB))
	}
	if len(r.Mismatched) > 0 {
		fmt.Fprintf(&b, "; %d structural mismatches: %s", len(r.Mismatched), strings.Join(r.Mismatched, ", "))
	}
	return b.String()
}

// DiffStores compares two stores key by key.
func DiffStores(a, b []Record) *DiffReport {
	rep := &DiffReport{Experiments: make(map[string]*stats.Dist)}
	byKeyB := make(map[string]*Record, len(b))
	for i := range b {
		byKeyB[b[i].Key] = &b[i]
	}
	seenA := make(map[string]bool, len(a))
	for i := range a {
		ra := &a[i]
		seenA[ra.Key] = true
		rb, ok := byKeyB[ra.Key]
		if !ok {
			rep.OnlyA = append(rep.OnlyA, ra.Key)
			continue
		}
		rep.Common++
		if err := diffRecord(ra, rb, rep); err != nil {
			rep.Mismatched = append(rep.Mismatched, fmt.Sprintf("%s (%s seed=%d): %v", ra.Key, ra.Experiment, ra.Seed, err))
		}
	}
	for i := range b {
		if !seenA[b[i].Key] {
			rep.OnlyB = append(rep.OnlyB, b[i].Key)
		}
	}
	sort.Strings(rep.OnlyA)
	sort.Strings(rep.OnlyB)
	return rep
}

// diffRecord compares one record pair cell by cell. Cells that parse as
// numbers in both tables contribute |relative delta| samples; cells that
// are numeric in exactly one table, or differing non-numeric cells, are a
// structural mismatch.
func diffRecord(a, b *Record, rep *DiffReport) error {
	ta, err := ParseCSVTable(a.CSV)
	if err != nil {
		return fmt.Errorf("store A: %w", err)
	}
	tb, err := ParseCSVTable(b.CSV)
	if err != nil {
		return fmt.Errorf("store B: %w", err)
	}
	if len(ta.Rows) != len(tb.Rows) {
		return fmt.Errorf("row count %d vs %d", len(ta.Rows), len(tb.Rows))
	}
	dist := rep.Experiments[a.Experiment]
	if dist == nil {
		dist = &stats.Dist{}
		rep.Experiments[a.Experiment] = dist
	}
	rows := append([][]string{ta.Header}, ta.Rows...)
	rowsB := append([][]string{tb.Header}, tb.Rows...)
	for ri := range rows {
		if len(rows[ri]) != len(rowsB[ri]) {
			return fmt.Errorf("row %d width %d vs %d", ri, len(rows[ri]), len(rowsB[ri]))
		}
		for ci := range rows[ri] {
			va, ea := parseCell(rows[ri][ci])
			vb, eb := parseCell(rowsB[ri][ci])
			switch {
			case ea == nil && eb == nil:
				dist.Add(relDelta(va, vb))
				rep.Cells++
			case ea == nil || eb == nil:
				return fmt.Errorf("row %d col %d numeric in one store only (%q vs %q)", ri, ci, rows[ri][ci], rowsB[ri][ci])
			default:
				if rows[ri][ci] != rowsB[ri][ci] {
					return fmt.Errorf("row %d col %d label differs (%q vs %q)", ri, ci, rows[ri][ci], rowsB[ri][ci])
				}
			}
		}
	}
	return nil
}

// relDelta is |a-b| relative to the larger magnitude (0 when both are 0).
func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := a
	if b > den {
		den = b
	}
	if den < 0 {
		den = -den
	}
	if -a > den {
		den = -a
	}
	if -b > den {
		den = -b
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if den == 0 {
		return 0
	}
	return d / den
}
