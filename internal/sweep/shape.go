package sweep

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file encodes the reproduction targets of EXPERIMENTS.md as
// executable shape guards over a result store. The targets are *shapes* —
// who wins, in what order, where the knees sit — not absolute numbers, so
// every guard compares values within one record with calibrated tolerances
// and passes at both quick and paper durations (calibrated against seed 1;
// see EXPERIMENTS.md for the underlying measurements).

// CSVTable is a parsed experiment CSV: a header row and data rows.
type CSVTable struct {
	Header []string
	Rows   [][]string
}

// ParseCSVTable parses a Table.CSV rendition. Experiments that concatenate
// several tables (e.g. matrix) parse as one table with the extra header
// rows kept as data; guards for those index by row label instead.
func ParseCSVTable(s string) (*CSVTable, error) {
	r := csv.NewReader(strings.NewReader(s))
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sweep: parsing result CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("sweep: empty result CSV")
	}
	return &CSVTable{Header: rows[0], Rows: rows[1:]}, nil
}

// Col returns the index of a header column, or an error naming the header.
func (t *CSVTable) Col(name string) (int, error) {
	for i, h := range t.Header {
		if h == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no column %q in header %v", name, t.Header)
}

// Row returns the first row whose first cell equals label.
func (t *CSVTable) Row(label string) ([]string, error) {
	for _, r := range t.Rows {
		if len(r) > 0 && r[0] == label {
			return r, nil
		}
	}
	return nil, fmt.Errorf("no row labeled %q", label)
}

// Value returns the numeric cell at (row label, column name). Percentage
// cells ("+8.2%", "100%") parse as fractions; "-" is an error.
func (t *CSVTable) Value(rowLabel, colName string) (float64, error) {
	ci, err := t.Col(colName)
	if err != nil {
		return 0, err
	}
	row, err := t.Row(rowLabel)
	if err != nil {
		return 0, err
	}
	if ci >= len(row) {
		return 0, fmt.Errorf("row %q has no column %d (%q)", rowLabel, ci, colName)
	}
	return parseCell(row[ci])
}

// parseCell parses a numeric table cell; "12.5%" style cells return 0.125.
func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("cell %q is not numeric", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

// Guard is one shape check applied to every store record of its experiment.
type Guard struct {
	Experiment string
	Name       string // what shape it guards, for reports
	Check      func(t *CSVTable) error
}

// Finding is the outcome of one guard applied to one record.
type Finding struct {
	Key        string
	Experiment string
	Seed       uint64
	Guard      string
	Err        error // nil = passed
}

// CheckReport aggregates guard findings over a store.
type CheckReport struct {
	Findings []Finding
	// Unchecked lists experiments present in the store with no guards.
	Unchecked []string
	// Missing lists guarded experiments absent from the store.
	Missing []string
}

// Passed and Failed count findings.
func (r *CheckReport) Passed() int { return len(r.Findings) - r.Failed() }
func (r *CheckReport) Failed() int {
	n := 0
	for _, f := range r.Findings {
		if f.Err != nil {
			n++
		}
	}
	return n
}

// OK reports whether at least one guard ran and none failed.
func (r *CheckReport) OK() bool { return len(r.Findings) > 0 && r.Failed() == 0 }

// String renders the report, failures first.
func (r *CheckReport) String() string {
	var b strings.Builder
	for _, f := range r.Findings {
		if f.Err != nil {
			fmt.Fprintf(&b, "FAIL %-12s seed=%-3d %s: %v\n", f.Experiment, f.Seed, f.Guard, f.Err)
		}
	}
	for _, f := range r.Findings {
		if f.Err == nil {
			fmt.Fprintf(&b, "ok   %-12s seed=%-3d %s\n", f.Experiment, f.Seed, f.Guard)
		}
	}
	fmt.Fprintf(&b, "%d guard checks: %d passed, %d failed", len(r.Findings), r.Passed(), r.Failed())
	if len(r.Missing) > 0 {
		fmt.Fprintf(&b, "; guarded experiments missing from store: %s", strings.Join(r.Missing, ", "))
	}
	if len(r.Unchecked) > 0 {
		fmt.Fprintf(&b, "; unguarded: %s", strings.Join(r.Unchecked, ", "))
	}
	return b.String()
}

// CheckStore applies every registered guard to every matching record.
func CheckStore(recs []Record) *CheckReport {
	rep := &CheckReport{}
	byExp := make(map[string][]Guard)
	for _, g := range Guards() {
		byExp[g.Experiment] = append(byExp[g.Experiment], g)
	}
	present := make(map[string]bool)
	for _, rec := range recs {
		present[rec.Experiment] = true
		guards := byExp[rec.Experiment]
		if len(guards) == 0 {
			continue
		}
		tbl, perr := ParseCSVTable(rec.CSV)
		for _, g := range guards {
			err := perr
			if err == nil {
				err = g.Check(tbl)
			}
			rep.Findings = append(rep.Findings, Finding{
				Key: rec.Key, Experiment: rec.Experiment, Seed: rec.Seed, Guard: g.Name, Err: err,
			})
		}
	}
	for exp := range byExp {
		if !present[exp] {
			rep.Missing = append(rep.Missing, exp)
		}
	}
	for exp := range present {
		if len(byExp[exp]) == 0 {
			rep.Unchecked = append(rep.Unchecked, exp)
		}
	}
	sort.Strings(rep.Missing)
	sort.Strings(rep.Unchecked)
	return rep
}

// nondecreasing errors if any value drops below its predecessor by more
// than the relative slack.
func nondecreasing(vals []float64, slack float64) error {
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1]*(1-slack) {
			return fmt.Errorf("drops at index %d: %.3f < %.3f (-%.0f%% slack)", i, vals[i], vals[i-1], slack*100)
		}
	}
	return nil
}

// Guards returns the shape-guard registry: the EXPERIMENTS.md reproduction
// targets as code. Tolerances are calibrated so seed-1 quick and paper
// stores both pass with margin; a regression in any reproduced ordering
// fails the corresponding guard.
func Guards() []Guard {
	return []Guard{
		{
			Experiment: "fig9",
			Name:       "APL grows with p; MSP at VA+SA beats VA-only beats RO_RR at p=100%",
			Check: func(t *CSVTable) error {
				// App 0's latency must rise with the inter-region fraction
				// under the baseline (the interference being measured).
				var rr []float64
				for _, row := range t.Rows {
					if row[0] == "RO_RR" {
						v, err := parseCell(row[2])
						if err != nil {
							return err
						}
						rr = append(rr, v)
					}
				}
				if len(rr) < 2 {
					return fmt.Errorf("fewer than 2 RO_RR sweep points")
				}
				if rr[len(rr)-1] <= rr[0]*1.05 {
					return fmt.Errorf("RO_RR App0 APL does not grow with p: %.2f at p=0 vs %.2f at p=max", rr[0], rr[len(rr)-1])
				}
				// At the top of the sweep the scheme ordering is the
				// figure's claim: full MSP < VA-only < baseline.
				top := func(scheme string) (float64, error) {
					var v float64
					found := false
					for _, row := range t.Rows {
						if row[0] == scheme {
							var err error
							if v, err = parseCell(row[2]); err != nil {
								return 0, err
							}
							found = true
						}
					}
					if !found {
						return 0, fmt.Errorf("no rows for scheme %q", scheme)
					}
					return v, nil // last sweep point (p=100%)
				}
				vRR, err := top("RO_RR")
				if err != nil {
					return err
				}
				vVA, err := top("RAIR_VA")
				if err != nil {
					return err
				}
				vBoth, err := top("RAIR_VA+SA")
				if err != nil {
					return err
				}
				if vBoth > vRR*0.97 {
					return fmt.Errorf("RAIR_VA+SA does not improve on RO_RR at p=100%%: %.2f vs %.2f", vBoth, vRR)
				}
				if vBoth > vVA*0.99 {
					return fmt.Errorf("MSP at VA+SA not better than VA-only at p=100%%: %.2f vs %.2f", vBoth, vVA)
				}
				return nil
			},
		},
		{
			Experiment: "fig12a",
			Name:       "low apps sending in: ForeignH >> NativeH and DPA tracks the winner",
			Check: func(t *CSVTable) error {
				col := "avg reduction vs RO_RR"
				nh, err := t.Value("RAIR_NativeH", col)
				if err != nil {
					return err
				}
				fh, err := t.Value("RAIR_ForeignH", col)
				if err != nil {
					return err
				}
				dpa, err := t.Value("RAIR_DPA", col)
				if err != nil {
					return err
				}
				if fh < nh+0.10 {
					return fmt.Errorf("ForeignH (%.1f%%) does not clearly beat NativeH (%.1f%%)", fh*100, nh*100)
				}
				if dpa < fh-0.03 {
					return fmt.Errorf("DPA (%.1f%%) does not track the ForeignH winner (%.1f%%)", dpa*100, fh*100)
				}
				if dpa <= 0 {
					return fmt.Errorf("DPA reduction not positive: %.1f%%", dpa*100)
				}
				return nil
			},
		},
		{
			Experiment: "fig12b",
			Name:       "hot app sending out: NativeH beats ForeignH (so adaptation is necessary)",
			Check: func(t *CSVTable) error {
				col := "avg reduction vs RO_RR"
				nh, err := t.Value("RAIR_NativeH", col)
				if err != nil {
					return err
				}
				fh, err := t.Value("RAIR_ForeignH", col)
				if err != nil {
					return err
				}
				dpa, err := t.Value("RAIR_DPA", col)
				if err != nil {
					return err
				}
				if nh < fh+0.005 {
					return fmt.Errorf("NativeH (%.1f%%) does not beat ForeignH (%.1f%%): static-mode ordering lost", nh*100, fh*100)
				}
				if dpa < fh-0.005 {
					return fmt.Errorf("DPA (%.1f%%) fell below both static modes (ForeignH %.1f%%)", dpa*100, fh*100)
				}
				return nil
			},
		},
		{
			Experiment: "fig14",
			Name:       "six-app RNoC: no scheme harmful, region-oblivious rank beats DBAR",
			Check: func(t *CSVTable) error {
				col := "avg reduction vs RO_RR"
				dbar, err := t.Value("RA_DBAR", col)
				if err != nil {
					return err
				}
				rank, err := t.Value("RO_Rank", col)
				if err != nil {
					return err
				}
				rair, err := t.Value("RA_RAIR", col)
				if err != nil {
					return err
				}
				for n, v := range map[string]float64{"RA_DBAR": dbar, "RO_Rank": rank, "RA_RAIR": rair} {
					if v < -0.02 {
						return fmt.Errorf("%s harmful on average: %.1f%%", n, v*100)
					}
				}
				if rank < dbar+0.005 {
					return fmt.Errorf("RO_Rank (%.1f%%) does not beat RA_DBAR (%.1f%%)", rank*100, dbar*100)
				}
				if rair < -0.01 {
					return fmt.Errorf("RA_RAIR not >= break-even: %.1f%%", rair*100)
				}
				return nil
			},
		},
		{
			Experiment: "fig17",
			Name:       "adversarial slowdown ordering RO_RR > RA_DBAR > RO_Rank >= RA_RAIR",
			Check: func(t *CSVTable) error {
				avg := func(scheme string) (float64, error) { return t.Value(scheme, "average") }
				rr, err := avg("RO_RR")
				if err != nil {
					return err
				}
				dbar, err := avg("RA_DBAR")
				if err != nil {
					return err
				}
				rank, err := avg("RO_Rank")
				if err != nil {
					return err
				}
				rair, err := avg("RA_RAIR")
				if err != nil {
					return err
				}
				if rr < dbar*1.05 {
					return fmt.Errorf("RO_RR (%.2f) not clearly worst vs RA_DBAR (%.2f)", rr, dbar)
				}
				if dbar < rank*1.05 {
					return fmt.Errorf("RA_DBAR (%.2f) not worse than RO_Rank (%.2f)", dbar, rank)
				}
				if rair > rank*1.02 {
					return fmt.Errorf("RA_RAIR (%.2f) not best (RO_Rank %.2f)", rair, rank)
				}
				if rr < rair*1.5 {
					return fmt.Errorf("protection margin lost: RO_RR %.2f vs RA_RAIR %.2f (< 1.5x)", rr, rair)
				}
				return nil
			},
		},
		{
			Experiment: "curve",
			Name:       "latency-load curve monotone with a knee near achieved saturation",
			Check: func(t *CSVTable) error {
				var fracs, apls, tputs []float64
				for _, row := range t.Rows {
					if len(row) < 3 {
						return fmt.Errorf("curve row too short: %v", row)
					}
					f, err1 := parseCell(row[0])
					a, err2 := parseCell(row[1])
					tp, err3 := parseCell(row[2])
					if err1 != nil || err2 != nil || err3 != nil {
						return fmt.Errorf("non-numeric curve row %v", row)
					}
					fracs, apls, tputs = append(fracs, f), append(apls, a), append(tputs, tp)
				}
				if len(apls) < 4 {
					return fmt.Errorf("curve has fewer than 4 points")
				}
				if err := nondecreasing(apls, 0.02); err != nil {
					return fmt.Errorf("APL not monotone nondecreasing in load: %v", err)
				}
				if err := nondecreasing(tputs, 0.02); err != nil {
					return fmt.Errorf("throughput not monotone nondecreasing in load: %v", err)
				}
				if apls[len(apls)-1] < 2*apls[0] {
					return fmt.Errorf("no saturation divergence: APL %.1f at %.2f vs %.1f at %.2f",
						apls[0], fracs[0], apls[len(apls)-1], fracs[len(fracs)-1])
				}
				// Knee location: the first point where APL exceeds 1.5x the
				// low-load APL must sit near achieved saturation (the loads
				// are expressed as fractions of it).
				knee := fracs[len(fracs)-1]
				for i, a := range apls {
					if a > 1.5*apls[0] {
						knee = fracs[i]
						break
					}
				}
				if knee < 0.8 || knee > 1.15 {
					return fmt.Errorf("saturation knee at load fraction %.2f, outside [0.80, 1.15]", knee)
				}
				return nil
			},
		},
		{
			Experiment: "coll-synth",
			Name:       "RAIR protects victims from the collective: RA_RAIR slowdown below RO_RR, interference present",
			Check: func(t *CSVTable) error {
				col := "avg slowdown"
				rr, err := t.Value("RO_RR", col)
				if err != nil {
					return err
				}
				rair, err := t.Value("RA_RAIR", col)
				if err != nil {
					return err
				}
				if rr < 1.04 {
					return fmt.Errorf("no interference to protect against: RO_RR victim slowdown %.3f < 1.04", rr)
				}
				if rair > rr-0.02 {
					return fmt.Errorf("RA_RAIR (%.3f) does not reduce victim slowdown vs RO_RR (%.3f) by >= 0.02", rair, rr)
				}
				if rair < 0.95 {
					return fmt.Errorf("RA_RAIR victim slowdown %.3f implausibly below 0.95", rair)
				}
				return nil
			},
		},
		{
			Experiment: "coll-synth",
			Name:       "bounded collective cost: every scheme completes rounds, RA_RAIR CCT within 1.5x of RO_RR",
			Check: func(t *CSVTable) error {
				var rrCCT, rairCCT float64
				for _, scheme := range []string{"RO_RR", "RA_DBAR", "RO_Rank", "RA_RAIR"} {
					rounds, err := t.Value(scheme, "rounds")
					if err != nil {
						return err
					}
					if rounds < 1 {
						return fmt.Errorf("%s completed no collective rounds", scheme)
					}
					cct, err := t.Value(scheme, "cct")
					if err != nil {
						return err
					}
					if cct <= 0 {
						return fmt.Errorf("%s has nonpositive CCT %.1f", scheme, cct)
					}
					switch scheme {
					case "RO_RR":
						rrCCT = cct
					case "RA_RAIR":
						rairCCT = cct
					}
				}
				if rairCCT > 1.5*rrCCT {
					return fmt.Errorf("protection overpriced: RA_RAIR CCT %.1f > 1.5x RO_RR CCT %.1f", rairCCT, rrCCT)
				}
				return nil
			},
		},
		{
			Experiment: "coll-allreduce",
			Name:       "PARSEC co-run sane: all schemes complete rounds, victim slowdowns bounded",
			Check: func(t *CSVTable) error {
				for _, scheme := range []string{"RO_RR", "RA_DBAR", "RO_Rank", "RA_RAIR"} {
					rounds, err := t.Value(scheme, "rounds")
					if err != nil {
						return err
					}
					if rounds < 1 {
						return fmt.Errorf("%s completed no collective rounds", scheme)
					}
					avg, err := t.Value(scheme, "avg slowdown")
					if err != nil {
						return err
					}
					if avg < 0.90 || avg > 1.50 {
						return fmt.Errorf("%s victim slowdown %.3f outside [0.90, 1.50]", scheme, avg)
					}
				}
				return nil
			},
		},
		{
			Experiment: "chiplet-synth",
			Name:       "boundary gating works: RA_RAIR victim slowdown below RO_RR, interference present",
			Check: func(t *CSVTable) error {
				// Calibrated against seeds 1-3 at quick (RO_RR 1.025-1.046,
				// RA_RAIR 1.017-1.038, margin >= 0.006) and paper durations
				// (RO_RR 1.037, RA_RAIR 1.031): the foreign flood through
				// the victim gateway must measurably slow the victim under
				// round-robin, and RAIR's boundary routers — flipped
				// native-high by the DPA at the gateway — must contain it.
				rr, err := t.Value("RO_RR", "slowdown")
				if err != nil {
					return err
				}
				rair, err := t.Value("RA_RAIR", "slowdown")
				if err != nil {
					return err
				}
				if rr < 1.015 {
					return fmt.Errorf("no boundary interference to gate: RO_RR victim slowdown %.3f < 1.015", rr)
				}
				if rair > rr-0.003 {
					return fmt.Errorf("RA_RAIR (%.3f) does not reduce victim slowdown vs RO_RR (%.3f) by >= 0.003", rair, rr)
				}
				if rair < 0.95 {
					return fmt.Errorf("RA_RAIR victim slowdown %.3f implausibly below 0.95", rair)
				}
				return nil
			},
		},
		{
			Experiment: "chiplet-synth",
			Name:       "chiplet co-run sane: every scheme's victim slowdown bounded, bases agree",
			Check: func(t *CSVTable) error {
				// The base column is the victim running alone: the crossbar
				// never carries a flit, so scheme choice must barely move it
				// (arbitration differences only reshuffle the victim's own
				// packets). A base spread beyond 2% means the co-run column
				// is comparing different baselines.
				var lo, hi float64
				for i, scheme := range []string{"RO_RR", "RA_DBAR", "RO_Rank", "RA_RAIR"} {
					sd, err := t.Value(scheme, "slowdown")
					if err != nil {
						return err
					}
					if sd < 0.95 || sd > 1.5 {
						return fmt.Errorf("%s victim slowdown %.3f outside [0.95, 1.5]", scheme, sd)
					}
					base, err := t.Value(scheme, "base apl")
					if err != nil {
						return err
					}
					if base <= 0 {
						return fmt.Errorf("%s nonpositive base APL %.2f", scheme, base)
					}
					if i == 0 {
						lo, hi = base, base
					} else {
						if base < lo {
							lo = base
						}
						if base > hi {
							hi = base
						}
					}
				}
				if hi > lo*1.02 {
					return fmt.Errorf("victim-alone baselines diverge across schemes: %.2f vs %.2f", lo, hi)
				}
				return nil
			},
		},
		{
			Experiment: "mesh64-scale",
			Name:       "RAIR's benefit survives big meshes: positive reduction at every size",
			Check: func(t *CSVTable) error {
				if len(t.Rows) < 2 {
					return fmt.Errorf("fewer than 2 mesh sizes")
				}
				for _, row := range t.Rows {
					red, err := parseCell(row[len(row)-1])
					if err != nil {
						return err
					}
					if red <= 0 {
						return fmt.Errorf("%s: RAIR does not reduce APL (avg reduction %.1f%%)", row[0], red)
					}
				}
				return nil
			},
		},
		{
			Experiment: "batch",
			Name:       "STC slowdown grows with batching interval (Section III.A weakness)",
			Check: func(t *CSVTable) error {
				var avgs []float64
				for _, row := range t.Rows {
					v, err := parseCell(row[len(row)-1])
					if err != nil {
						return err
					}
					avgs = append(avgs, v)
				}
				if len(avgs) < 3 {
					return fmt.Errorf("fewer than 3 batching intervals")
				}
				if err := nondecreasing(avgs, 0.05); err != nil {
					return fmt.Errorf("slowdown not nondecreasing in interval: %v", err)
				}
				if avgs[len(avgs)-1] < 1.5*avgs[0] {
					return fmt.Errorf("coarse batching not clearly worse: %.2f vs %.2f", avgs[len(avgs)-1], avgs[0])
				}
				return nil
			},
		},
	}
}
