// Package sweep orchestrates experiment sweeps: declarative manifests
// expand into content-hash-keyed jobs, a bounded worker pool executes them
// with per-job timeouts and retries, and completed results append to a
// JSONL store in canonical job order so an interrupted sweep resumes
// bit-exactly. On top of the store sit the shape guards (the reproduction
// targets of EXPERIMENTS.md) and a statistical store-to-store diff.
package sweep

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Manifest declares a sweep: a set of experiments, each expanded over the
// manifest's seed list (or a per-experiment override) at paper or quick
// durations. Expansion order is the canonical job order: experiments in
// listed order, seeds in listed order.
type Manifest struct {
	// Name identifies the manifest in reports and summaries.
	Name string `json:"name"`
	// Quick selects reduced warmup/measurement windows for every job.
	Quick bool `json:"quick"`
	// Seeds is the default seed list applied to every experiment without
	// its own override. Empty means {1}.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Experiments lists the experiment grid.
	Experiments []ExperimentSpec `json:"experiments"`
}

// ExperimentSpec is one experiment entry of a manifest.
type ExperimentSpec struct {
	// Name is the rairbench experiment name (see rairbench -list).
	Name string `json:"name"`
	// Seeds overrides the manifest seed list for this experiment.
	Seeds []uint64 `json:"seeds,omitempty"`
}

// Job is one expanded simulation point. Its content hash keys the result
// store: a job re-expanded from the same manifest always maps to the same
// key, which is how resume skips completed work.
type Job struct {
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
}

// Key returns the job's content-hash key: a stable digest of the fields
// that determine the result (experiment name, seed, durations). 16 hex
// characters of SHA-256 over a versioned canonical encoding.
func (j Job) Key() string {
	canon := fmt.Sprintf("sweepjob/v1|experiment=%s|quick=%t|seed=%d", j.Experiment, j.Quick, j.Seed)
	sum := sha256.Sum256([]byte(canon))
	return fmt.Sprintf("%x", sum[:8])
}

// String renders the job for logs.
func (j Job) String() string {
	d := "paper"
	if j.Quick {
		d = "quick"
	}
	return fmt.Sprintf("%s seed=%d dur=%s [%s]", j.Experiment, j.Seed, d, j.Key())
}

// Expand flattens the manifest into its canonical job list. Duplicate
// (experiment, seed) pairs collapse to one job (first occurrence wins), so
// a manifest is a set, not a multiset.
func (m *Manifest) Expand() []Job {
	defSeeds := m.Seeds
	if len(defSeeds) == 0 {
		defSeeds = []uint64{1}
	}
	var jobs []Job
	seen := make(map[string]bool)
	for _, e := range m.Experiments {
		seeds := e.Seeds
		if len(seeds) == 0 {
			seeds = defSeeds
		}
		for _, s := range seeds {
			j := Job{Experiment: e.Name, Seed: s, Quick: m.Quick}
			if k := j.Key(); !seen[k] {
				seen[k] = true
				jobs = append(jobs, j)
			}
		}
	}
	return jobs
}

// Validate checks the manifest against the set of known experiment names
// (from rair.Experiments) and basic well-formedness.
func (m *Manifest) Validate(known []string) error {
	if len(m.Experiments) == 0 {
		return fmt.Errorf("sweep: manifest %q lists no experiments", m.Name)
	}
	ok := make(map[string]bool, len(known))
	for _, n := range known {
		ok[n] = true
	}
	for _, e := range m.Experiments {
		if e.Name == "" {
			return fmt.Errorf("sweep: manifest %q has an experiment with no name", m.Name)
		}
		if len(known) > 0 && !ok[e.Name] {
			return fmt.Errorf("sweep: manifest %q names unknown experiment %q (known: %v)", m.Name, e.Name, known)
		}
		for _, s := range append(append([]uint64{}, m.Seeds...), e.Seeds...) {
			if s == 0 {
				return fmt.Errorf("sweep: manifest %q uses seed 0 (seeds must be >= 1)", m.Name)
			}
		}
	}
	return nil
}

// LoadManifest reads a manifest from a JSON file.
func LoadManifest(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("sweep: parse manifest %s: %w", path, err)
	}
	return &m, nil
}

// WriteManifest writes the manifest as indented JSON.
func WriteManifest(m *Manifest, path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// NewManifest builds a manifest over the given experiment names, sorted for
// stability, with the given seeds and duration setting.
func NewManifest(name string, names []string, seeds []uint64, quick bool) *Manifest {
	sorted := append([]string{}, names...)
	sort.Strings(sorted)
	m := &Manifest{Name: name, Quick: quick, Seeds: seeds}
	for _, n := range sorted {
		m.Experiments = append(m.Experiments, ExperimentSpec{Name: n})
	}
	return m
}
