package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Runner executes one job and returns the experiment's text and CSV
// outputs. It must be deterministic in the job (the store's resume and
// diff semantics assume a job key maps to exactly one result).
type Runner func(ctx context.Context, job Job) (text, csv string, err error)

// Options configures a sweep run.
type Options struct {
	// Workers bounds concurrently executing jobs (<= 0 means 1).
	Workers int
	// BatchWidth groups up to this many consecutive jobs of the same
	// experiment (a manifest's seed axis) into one dispatch unit, executed
	// back-to-back on one worker. The runner itself batches replications
	// in lockstep (harness.RunBatch), so keeping a seed axis on one worker
	// extends that warmth across jobs instead of interleaving unrelated
	// experiments. <= 1 disables grouping. Results are identical either
	// way — grouping only changes scheduling.
	BatchWidth int
	// Timeout bounds one job attempt (0 = no limit). A timed-out attempt
	// counts as a transient failure and is retried.
	Timeout time.Duration
	// Retries is how many additional attempts a failed job gets before the
	// failure is permanent.
	Retries int
	// Log, if set, receives progress lines.
	Log func(format string, args ...any)
}

// Summary reports what a sweep run did.
type Summary struct {
	Total    int // jobs in the manifest
	Skipped  int // already present in the store
	Ran      int // executed and appended this run
	Retried  int // attempts beyond the first, across all jobs
	Canceled bool
}

// ErrCanceled reports a sweep stopped by context cancellation; the store
// holds a clean resumable prefix.
var ErrCanceled = errors.New("sweep: canceled")

// Execute runs the manifest's jobs over the worker pool, appending each
// result to the store in canonical job order. Jobs whose key is already in
// done are skipped — pass Keys(records) of a recovered store to resume.
//
// Ordering: workers complete out of order, but a sequencer appends result i
// only after results 0..i-1, so the store is always a prefix of the
// canonical order. A killed or canceled sweep therefore leaves a store that
// resume extends to the byte-identical uninterrupted result, and 1-worker
// and N-worker sweeps produce identical stores.
//
// A permanent job failure (after retries) cancels the remaining jobs: the
// sims are deterministic, so rerunning dependents past a hole would only
// bake the hole into the store's order.
func Execute(ctx context.Context, m *Manifest, store *Store, done map[string]bool, run Runner, opts Options) (Summary, error) {
	jobs := m.Expand()
	sum := Summary{Total: len(jobs)}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Pending jobs in canonical order, with their manifest index.
	type task struct {
		idx int
		job Job
	}
	var pending []task
	for i, j := range jobs {
		if done[j.Key()] {
			sum.Skipped++
			continue
		}
		pending = append(pending, task{i, j})
	}
	logf("sweep %s: %d jobs, %d already in store, %d to run, %d workers",
		m.Name, sum.Total, sum.Skipped, len(pending), workers)
	if len(pending) == 0 {
		return sum, nil
	}

	// Group consecutive same-experiment jobs (the seed axis) into dispatch
	// units of at most BatchWidth; each unit runs back-to-back on one
	// worker. groups holds start indices into pending, ascending.
	width := opts.BatchWidth
	if width < 1 {
		width = 1
	}
	var groups []int
	for pos := 0; pos < len(pending); {
		groups = append(groups, pos)
		end := pos + 1
		for end < len(pending) && end-pos < width &&
			pending[end].job.Experiment == pending[pos].job.Experiment &&
			pending[end].job.Quick == pending[pos].job.Quick {
			end++
		}
		pos = end
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		pos      int // position in pending (dense, ordered)
		rec      *Record
		err      error
		attempts int
	}
	results := make(chan result)
	feed := make(chan int) // index into groups
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range feed {
				start := groups[gi]
				end := len(pending)
				if gi+1 < len(groups) {
					end = groups[gi+1]
				}
				for pos := start; pos < end; pos++ {
					t := pending[pos]
					rec, attempts, err := runWithRetry(ctx, t.job, run, opts, logf)
					select {
					case results <- result{pos, rec, err, attempts}:
					case <-ctx.Done():
						return
					}
					if err != nil {
						// The sequencer is about to cancel the sweep; the
						// rest of the group would be dropped anyway.
						return
					}
				}
			}
		}()
	}
	go func() {
		defer close(feed)
		for gi := range groups {
			select {
			case feed <- gi:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Sequencer: buffer out-of-order completions, append the contiguous
	// prefix. Completions past a permanent failure or cancellation are
	// dropped (they rerun on resume), keeping the store canonical.
	buffered := make(map[int]*Record)
	next := 0
	var execErr error
	for next < len(pending) && execErr == nil {
		select {
		case r := <-results:
			sum.Retried += r.attempts - 1
			if r.err != nil {
				execErr = fmt.Errorf("sweep: job %s failed after %d attempt(s): %w", pending[r.pos].job, r.attempts, r.err)
				break
			}
			buffered[r.pos] = r.rec
			for buffered[next] != nil {
				if err := store.Append(buffered[next]); err != nil {
					execErr = fmt.Errorf("sweep: appending %s: %w", pending[next].job, err)
					break
				}
				delete(buffered, next)
				sum.Ran++
				logf("  [%d/%d] %s done", sum.Skipped+sum.Ran, sum.Total, pending[next].job)
				next++
			}
		case <-ctx.Done():
			sum.Canceled = true
			execErr = ErrCanceled
		}
	}
	cancel()
	wg.Wait()
	return sum, execErr
}

// runWithRetry executes one job with the per-attempt timeout and bounded
// retries. Only attempt errors are retried; context cancellation aborts.
func runWithRetry(ctx context.Context, job Job, run Runner, opts Options, logf func(string, ...any)) (rec *Record, attempts int, err error) {
	for attempts = 1; ; attempts++ {
		text, csv, aerr := runAttempt(ctx, job, run, opts.Timeout)
		if aerr == nil {
			return &Record{
				Key: job.Key(), Experiment: job.Experiment, Seed: job.Seed, Quick: job.Quick,
				Text: text, CSV: csv,
			}, attempts, nil
		}
		if ctx.Err() != nil {
			return nil, attempts, ctx.Err()
		}
		err = aerr
		if attempts > opts.Retries {
			return nil, attempts, err
		}
		logf("  %s attempt %d failed (%v), retrying", job, attempts, aerr)
	}
}

// runAttempt runs one attempt under the timeout. The runner itself cannot
// be preempted mid-simulation, so a timed-out attempt's goroutine is
// abandoned (it exits with the process); the orchestrator just stops
// waiting for it.
func runAttempt(ctx context.Context, job Job, run Runner, timeout time.Duration) (text, csv string, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type out struct {
		text, csv string
		err       error
	}
	ch := make(chan out, 1)
	go func() {
		t, c, e := run(ctx, job)
		ch <- out{t, c, e}
	}()
	select {
	case o := <-ch:
		return o.text, o.csv, o.err
	case <-ctx.Done():
		return "", "", fmt.Errorf("attempt timed out or canceled: %w", ctx.Err())
	}
}
