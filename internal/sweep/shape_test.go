package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// The fixtures below mirror the real rairbench -quick -seed 1 outputs (see
// EXPERIMENTS.md): the guards are calibrated against exactly these shapes.

const fig17CSV = `scheme,blackscholes,swaptions,fluidanimate,raytrace,average
RO_RR,5.35,1.67,1.60,1.33,2.49
RA_DBAR,3.31,1.69,1.64,1.30,1.98
RO_Rank,1.39,1.62,1.52,1.53,1.51
RA_RAIR,1.16,1.71,1.53,1.42,1.46
`

const fig9CSV = `scheme,p,APL App0,APL App1
RO_RR,0%,29.12,34.59
RO_RR,50%,38.72,35.50
RO_RR,100%,48.20,36.01
RAIR_VA,0%,29.12,34.59
RAIR_VA,50%,38.22,35.68
RAIR_VA,100%,47.21,36.14
RAIR_VA+SA,0%,29.12,34.59
RAIR_VA+SA,50%,36.27,35.99
RAIR_VA+SA,100%,43.29,36.58
`

const fig12aCSV = `scheme,App0 APL,App1 APL,App2 APL,App3 APL,avg reduction vs RO_RR
RO_RR,36.46,31.92,31.84,46.65,-
RAIR_NativeH,45.22,40.58,38.78,73.46,-32.6%
RAIR_ForeignH,31.74,27.69,27.53,49.83,+8.2%
RAIR_DPA,31.77,27.68,27.49,48.92,+8.7%
`

const fig12bCSV = `scheme,App0 APL,App1 APL,App2 APL,App3 APL,avg reduction vs RO_RR
RO_RR,23.28,23.20,23.26,32.55,-
RAIR_NativeH,22.98,22.86,22.87,32.94,+0.8%
RAIR_ForeignH,23.58,23.57,23.72,32.31,-1.0%
RAIR_DPA,23.39,23.33,23.37,32.66,-0.5%
`

const fig14CSV = `scheme,App0 APL,App1 APL,App2 APL,App3 APL,App4 APL,App5 APL,avg reduction vs RO_RR
RO_RR,27.31,35.29,26.61,27.42,26.62,35.31,-
RA_DBAR,27.33,35.42,26.55,27.49,26.60,34.99,+0.1%
RO_Rank,26.08,35.49,25.19,26.83,25.31,38.00,+1.5%
RA_RAIR,26.43,36.80,25.61,27.20,25.72,36.73,+0.5%
`

const curveCSV = `load_frac,apl,throughput
0.10,35.732,0.0332
0.50,37.347,0.1656
0.80,41.046,0.2649
0.90,44.158,0.2977
1.00,51.144,0.3303
1.10,3068.794,0.3631
`

const batchCSV = `scheme,blackscholes,swaptions,fluidanimate,raytrace,average
RO_Rank_B125,1.32,1.58,1.47,1.49,1.46
RO_Rank_B250,1.39,1.62,1.52,1.53,1.51
RO_Rank_B1000,4.20,2.40,2.21,1.96,2.69
RO_Rank_B4000,17.65,6.13,4.70,4.75,8.31
`

const collSynthCSV = `scheme,app0,app1,app2,avg slowdown,cct,rounds
RO_RR,1.07,1.07,1.09,1.08,1477.6,8
RA_DBAR,1.07,1.08,1.09,1.08,1466.1,8
RO_Rank,1.03,1.05,1.04,1.04,1475.6,8
RA_RAIR,1.02,1.02,1.02,1.02,1484.0,8
`

const chipletSynthCSV = `scheme,base apl,co apl,slowdown,co p99
RO_RR,22.62,23.66,1.046,43.00
RA_DBAR,22.63,23.67,1.046,43.00
RO_Rank,22.62,24.55,1.085,51.00
RA_RAIR,22.62,23.47,1.038,43.00
`

const mesh64ScaleCSV = `config,nodes,regions,RO_RR APL,RA_RAIR APL,avg reduction
16x16,256,16,42.14,39.32,+6.7%
32x32,1024,16,68.90,66.73,+3.1%
`

const collAllreduceCSV = `scheme,blackscholes,swaptions,fluidanimate,avg slowdown,cct,rounds
RO_RR,1.04,1.00,1.01,1.02,1863.0,6
RA_DBAR,1.03,1.03,1.02,1.03,1910.7,6
RO_Rank,1.04,0.99,1.00,1.01,1971.0,6
RA_RAIR,1.00,1.00,1.00,1.00,1931.3,6
`

func goodRecords() []Record {
	recs := []Record{
		{Experiment: "fig9", CSV: fig9CSV},
		{Experiment: "fig12a", CSV: fig12aCSV},
		{Experiment: "fig12b", CSV: fig12bCSV},
		{Experiment: "fig14", CSV: fig14CSV},
		{Experiment: "fig17", CSV: fig17CSV},
		{Experiment: "curve", CSV: curveCSV},
		{Experiment: "batch", CSV: batchCSV},
		{Experiment: "coll-synth", CSV: collSynthCSV},
		{Experiment: "coll-allreduce", CSV: collAllreduceCSV},
		{Experiment: "chiplet-synth", CSV: chipletSynthCSV},
		{Experiment: "mesh64-scale", CSV: mesh64ScaleCSV},
	}
	for i := range recs {
		recs[i].Seed = 1
		recs[i].Quick = true
		recs[i].Key = Job{recs[i].Experiment, 1, true}.Key()
		recs[i].Text = recs[i].Experiment + " table\n"
	}
	return recs
}

func TestGuardsPassOnReferenceShapes(t *testing.T) {
	rep := CheckStore(goodRecords())
	if !rep.OK() {
		t.Fatalf("reference store failed guards:\n%s", rep)
	}
	if len(rep.Findings) != len(Guards()) {
		t.Errorf("ran %d guards, want %d (every guard covered by the fixtures)", len(rep.Findings), len(Guards()))
	}
	if len(rep.Missing) != 0 {
		t.Errorf("guarded experiments missing from full fixture set: %v", rep.Missing)
	}
}

// TestGuardsCatchPerturbedOrdering is the acceptance case: swapping the
// fig17 scheme ordering (RAIR made worst, RO_RR best) must fail check.
func TestGuardsCatchPerturbedOrdering(t *testing.T) {
	recs := goodRecords()
	for i := range recs {
		if recs[i].Experiment == "fig17" {
			recs[i].CSV = strings.NewReplacer("RO_RR,", "XX,", "RA_RAIR,", "RO_RR,").Replace(recs[i].CSV)
			recs[i].CSV = strings.Replace(recs[i].CSV, "XX,", "RA_RAIR,", 1)
		}
	}
	rep := CheckStore(recs)
	if rep.OK() {
		t.Fatalf("perturbed fig17 ordering passed the guards:\n%s", rep)
	}
	failed := false
	for _, f := range rep.Findings {
		if f.Experiment == "fig17" && f.Err != nil {
			failed = true
		}
	}
	if !failed {
		t.Error("the failure was not attributed to the fig17 guard")
	}
}

func TestGuardsCatchBrokenShapes(t *testing.T) {
	cases := []struct {
		name, experiment, from, to string
	}{
		// fig12a: hogging collapse wins — NativeH suddenly best.
		{"fig12a inversion", "fig12a", "-32.6%", "+20.0%"},
		// fig12b: NativeH loses its edge.
		{"fig12b inversion", "fig12b", "+0.8%", "-3.0%"},
		// fig9: MSP stops helping at p=100%.
		{"fig9 no MSP win", "fig9", "RAIR_VA+SA,100%,43.29", "RAIR_VA+SA,100%,48.10"},
		// curve: latency collapses at high load (non-monotone).
		{"curve non-monotone", "curve", "1.00,51.144", "1.00,20.000"},
		// batch: coarse batching suddenly fine.
		{"batch flat", "batch", "RO_Rank_B4000,17.65,6.13,4.70,4.75,8.31", "RO_Rank_B4000,1.30,1.30,1.30,1.30,1.30"},
		// fig14: RAIR harmful on average.
		{"fig14 harmful", "fig14", ",+0.5%", ",-6.0%"},
		// coll-synth: RAIR loses its protection edge over the baseline.
		{"coll-synth no protection", "coll-synth", "RA_RAIR,1.02,1.02,1.02,1.02", "RA_RAIR,1.08,1.08,1.08,1.08"},
		// coll-synth: protection bought with an unbounded collective stall.
		{"coll-synth cct blowup", "coll-synth", "RA_RAIR,1.02,1.02,1.02,1.02,1484.0", "RA_RAIR,1.02,1.02,1.02,1.02,9484.0"},
		// coll-synth: a scheme stops completing rounds entirely.
		{"coll-synth no rounds", "coll-synth", "RO_Rank,1.03,1.05,1.04,1.04,1475.6,8", "RO_Rank,1.03,1.05,1.04,1.04,0.0,0"},
		// coll-allreduce: victim slowdown outside the sanity band.
		{"coll-allreduce runaway slowdown", "coll-allreduce", "RA_DBAR,1.03,1.03,1.02,1.03", "RA_DBAR,1.03,1.03,1.02,1.93"},
		// chiplet-synth: RAIR's boundary gating stops beating the baseline.
		{"chiplet no gating edge", "chiplet-synth", "RA_RAIR,22.62,23.47,1.038", "RA_RAIR,22.62,23.71,1.048"},
		// chiplet-synth: the baseline stops showing boundary interference at all.
		{"chiplet no interference", "chiplet-synth", "RO_RR,22.62,23.66,1.046", "RO_RR,22.62,22.71,1.004"},
		// chiplet-synth: a scheme's slowdown leaves the sanity band.
		{"chiplet runaway slowdown", "chiplet-synth", "RO_Rank,22.62,24.55,1.085", "RO_Rank,22.62,38.00,1.680"},
		// chiplet-synth: the base (victim-alone) points stop agreeing across schemes.
		{"chiplet base drift", "chiplet-synth", "RA_DBAR,22.63", "RA_DBAR,25.80"},
		// mesh64-scale: RAIR turns harmful at a big mesh size.
		{"mesh64 harmful", "mesh64-scale", "32x32,1024,16,68.90,66.73,+3.1%", "32x32,1024,16,68.90,71.30,-3.5%"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs := goodRecords()
			changed := false
			for i := range recs {
				if recs[i].Experiment == tc.experiment {
					mut := strings.Replace(recs[i].CSV, tc.from, tc.to, 1)
					changed = mut != recs[i].CSV
					recs[i].CSV = mut
				}
			}
			if !changed {
				t.Fatalf("fixture does not contain %q", tc.from)
			}
			if rep := CheckStore(recs); rep.OK() {
				t.Errorf("perturbation passed the guards:\n%s", rep)
			}
		})
	}
}

func TestCheckStoreReportsCoverage(t *testing.T) {
	recs := []Record{
		{Key: "k1", Experiment: "fig17", Seed: 1, CSV: fig17CSV},
		{Key: "k2", Experiment: "heatmap", Seed: 1, Text: "art"},
	}
	rep := CheckStore(recs)
	if !rep.OK() {
		t.Fatalf("partial store failed: %s", rep)
	}
	if len(rep.Missing) == 0 {
		t.Error("missing guarded experiments not reported")
	}
	if len(rep.Unchecked) != 1 || rep.Unchecked[0] != "heatmap" {
		t.Errorf("Unchecked = %v, want [heatmap]", rep.Unchecked)
	}
	if empty := CheckStore(nil); empty.OK() {
		t.Error("empty store must not pass")
	}
}

func TestParseCell(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42.5", 42.5, true}, {"+8.2%", 0.082, true}, {"-32.6%", -0.326, true},
		{"100%", 1.0, true}, {"-", 0, false}, {"RO_RR", 0, false},
	} {
		got, err := parseCell(tc.in)
		if (err == nil) != tc.ok || (tc.ok && (got < tc.want-1e-9 || got > tc.want+1e-9)) {
			t.Errorf("parseCell(%q) = %v, %v; want %v ok=%t", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestDiffStores(t *testing.T) {
	a := goodRecords()
	b := goodRecords()
	rep := DiffStores(a, b)
	if !rep.Within(0) {
		t.Fatalf("identical stores diff non-zero: %s", rep)
	}
	if rep.Common != len(a) || rep.Cells == 0 {
		t.Errorf("Common=%d Cells=%d, want %d common and > 0 cells", rep.Common, rep.Cells, len(a))
	}

	// Perturb one fig17 value by ~2%: caught at tol 0, passes at tol 0.05.
	for i := range b {
		if b[i].Experiment == "fig17" {
			b[i].CSV = strings.Replace(b[i].CSV, "2.49", "2.54", 1)
		}
	}
	rep = DiffStores(a, b)
	if rep.Within(0) {
		t.Error("2% perturbation passed exact diff")
	}
	if !rep.Within(0.05) {
		t.Errorf("2%% perturbation failed 5%% tolerance: max %f", rep.MaxDelta())
	}

	// A structural change (renamed scheme) is a mismatch at any tolerance.
	for i := range b {
		if b[i].Experiment == "fig14" {
			b[i].CSV = strings.Replace(b[i].CSV, "RO_Rank", "RO_Renamed", 1)
		}
	}
	rep = DiffStores(a, b)
	if rep.Within(1) {
		t.Error("structural mismatch passed diff")
	}

	// Disjoint keys are reported, not compared.
	only := DiffStores(a[:1], a[1:])
	if len(only.OnlyA) != 1 || len(only.OnlyB) != len(a)-1 || only.Common != 0 {
		t.Errorf("disjoint diff: OnlyA=%d OnlyB=%d Common=%d", len(only.OnlyA), len(only.OnlyB), only.Common)
	}
}

func TestWriteSummary(t *testing.T) {
	recs := goodRecords()
	rep := CheckStore(recs)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, "golden", recs, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Sweep summary: golden", "## Shape guards", "## fig17", "seed 1, quick durations"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
