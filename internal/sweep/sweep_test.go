package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// stubRunner is a deterministic fake experiment: output depends only on the
// job, like the real registry.
func stubRunner(_ context.Context, job Job) (string, string, error) {
	text := fmt.Sprintf("result of %s seed %d quick %t\n", job.Experiment, job.Seed, job.Quick)
	csv := fmt.Sprintf("scheme,value\n%s,%d\n", job.Experiment, job.Seed*3)
	return text, csv, nil
}

func testManifest() *Manifest {
	return &Manifest{
		Name:  "t",
		Quick: true,
		Seeds: []uint64{1, 2},
		Experiments: []ExperimentSpec{
			{Name: "alpha"},
			{Name: "beta", Seeds: []uint64{7}},
			{Name: "gamma"},
		},
	}
}

func TestManifestExpansion(t *testing.T) {
	jobs := testManifest().Expand()
	want := []Job{
		{"alpha", 1, true}, {"alpha", 2, true},
		{"beta", 7, true},
		{"gamma", 1, true}, {"gamma", 2, true},
	}
	if len(jobs) != len(want) {
		t.Fatalf("expanded %d jobs, want %d: %v", len(jobs), len(want), jobs)
	}
	for i, j := range jobs {
		if j != want[i] {
			t.Errorf("job %d = %+v, want %+v", i, j, want[i])
		}
	}
	// Default seed list when none given.
	m := &Manifest{Experiments: []ExperimentSpec{{Name: "x"}}}
	if jobs := m.Expand(); len(jobs) != 1 || jobs[0].Seed != 1 {
		t.Errorf("default-seed expansion = %v, want one job with seed 1", jobs)
	}
}

func TestJobKeyingAndDedup(t *testing.T) {
	a := Job{"fig9", 1, true}
	if a.Key() != (Job{"fig9", 1, true}).Key() {
		t.Error("identical jobs must share a key")
	}
	distinct := []Job{a, {"fig9", 2, true}, {"fig9", 1, false}, {"fig14", 1, true}}
	seen := map[string]Job{}
	for _, j := range distinct {
		if prev, dup := seen[j.Key()]; dup {
			t.Errorf("key collision between %+v and %+v", prev, j)
		}
		seen[j.Key()] = j
	}
	// A manifest repeating (experiment, seed) collapses to one job.
	m := &Manifest{Quick: true, Seeds: []uint64{1},
		Experiments: []ExperimentSpec{{Name: "alpha"}, {Name: "alpha"}, {Name: "alpha", Seeds: []uint64{1, 1}}}}
	if jobs := m.Expand(); len(jobs) != 1 {
		t.Errorf("duplicate specs expanded to %d jobs, want 1: %v", len(jobs), jobs)
	}
}

func TestManifestValidate(t *testing.T) {
	m := testManifest()
	if err := m.Validate([]string{"alpha", "beta", "gamma"}); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
	if err := m.Validate([]string{"alpha", "beta"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := (&Manifest{Name: "e"}).Validate(nil); err == nil {
		t.Error("empty manifest accepted")
	}
	bad := &Manifest{Experiments: []ExperimentSpec{{Name: "alpha", Seeds: []uint64{0}}}}
	if err := bad.Validate(nil); err == nil {
		t.Error("seed 0 accepted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	m := testManifest()
	if err := WriteManifest(m, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.Quick != m.Quick || len(got.Experiments) != len(m.Experiments) {
		t.Errorf("round trip lost fields: %+v vs %+v", got, m)
	}
}

// runSweepToFile executes the test manifest into path and returns the bytes.
func runSweepToFile(t *testing.T, path string, workers int, run Runner, done map[string]bool, resume bool) []byte {
	t.Helper()
	var store *Store
	var err error
	if resume {
		store, err = OpenStoreAppend(path)
	} else {
		store, err = CreateStore(path, false)
	}
	if err != nil {
		t.Fatal(err)
	}
	_, err = Execute(context.Background(), testManifest(), store, done, run, Options{Workers: workers})
	store.Close()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestWorkerCountDeterminism(t *testing.T) {
	dir := t.TempDir()
	one := runSweepToFile(t, filepath.Join(dir, "w1.jsonl"), 1, stubRunner, nil, false)
	four := runSweepToFile(t, filepath.Join(dir, "w4.jsonl"), 4, stubRunner, nil, false)
	if !bytes.Equal(one, four) {
		t.Errorf("1-worker and 4-worker stores differ:\n--- w1\n%s--- w4\n%s", one, four)
	}
}

func TestResumeAfterKillByteIdentical(t *testing.T) {
	dir := t.TempDir()
	full := runSweepToFile(t, filepath.Join(dir, "full.jsonl"), 3, stubRunner, nil, false)

	// Simulate a kill: keep two whole records plus half of the third.
	lines := bytes.SplitAfter(full, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("want >= 4 store lines, got %d", len(lines))
	}
	partial := append([]byte{}, bytes.Join(lines[:2], nil)...)
	partial = append(partial, lines[2][:len(lines[2])/2]...) // mid-record truncation
	killed := filepath.Join(dir, "killed.jsonl")
	if err := os.WriteFile(killed, partial, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, dropped, err := RecoverStore(killed)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	if dropped != int64(len(lines[2])/2) {
		t.Errorf("dropped %d bytes, want %d", dropped, len(lines[2])/2)
	}
	resumed := runSweepToFile(t, killed, 2, stubRunner, Keys(recs), true)
	if !bytes.Equal(resumed, full) {
		t.Errorf("resumed store differs from uninterrupted run:\n--- resumed\n%s--- full\n%s", resumed, full)
	}
}

func TestRecoverCleanStoreIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	full := runSweepToFile(t, path, 2, stubRunner, nil, false)
	recs, dropped, err := RecoverStore(path)
	if err != nil || dropped != 0 {
		t.Fatalf("recover clean store: recs=%d dropped=%d err=%v", len(recs), dropped, err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(after, full) {
		t.Error("recovery modified a clean store")
	}
}

func TestCreateStoreRefusesOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	runSweepToFile(t, path, 1, stubRunner, nil, false)
	if _, err := CreateStore(path, false); err == nil {
		t.Error("CreateStore overwrote an existing non-empty store without force")
	}
	s, err := CreateStore(path, true)
	if err != nil {
		t.Fatalf("CreateStore with force: %v", err)
	}
	s.Close()
}

func TestRetryTransientFailure(t *testing.T) {
	var calls atomic.Int64
	flaky := func(ctx context.Context, job Job) (string, string, error) {
		if job.Experiment == "beta" && calls.Add(1) == 1 {
			return "", "", errors.New("transient")
		}
		return stubRunner(ctx, job)
	}
	path := filepath.Join(t.TempDir(), "s.jsonl")
	store, err := CreateStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Execute(context.Background(), testManifest(), store, nil, flaky, Options{Workers: 2, Retries: 2})
	store.Close()
	if err != nil {
		t.Fatalf("sweep failed despite retry budget: %v", err)
	}
	if sum.Retried != 1 {
		t.Errorf("Retried = %d, want 1", sum.Retried)
	}
	recs, err := LoadStore(path)
	if err != nil || len(recs) != 5 {
		t.Fatalf("store has %d records (err %v), want 5", len(recs), err)
	}
}

func TestPermanentFailureStopsSweep(t *testing.T) {
	broken := func(ctx context.Context, job Job) (string, string, error) {
		if job.Experiment == "beta" {
			return "", "", errors.New("deterministic failure")
		}
		return stubRunner(ctx, job)
	}
	path := filepath.Join(t.TempDir(), "s.jsonl")
	store, err := CreateStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Execute(context.Background(), testManifest(), store, nil, broken, Options{Workers: 2, Retries: 1})
	store.Close()
	if err == nil {
		t.Fatal("sweep succeeded with a permanently failing job")
	}
	// The store must hold only the canonical prefix before the failure so
	// a fixed binary resumes into a byte-identical store.
	recs, lerr := LoadStore(path)
	if lerr != nil {
		t.Fatal(lerr)
	}
	for _, r := range recs {
		if r.Experiment != "alpha" {
			t.Errorf("record %s past the failed job leaked into the store", r.Experiment)
		}
	}
}

func TestTimeoutRetriesThenFails(t *testing.T) {
	var calls atomic.Int64
	slow := func(ctx context.Context, job Job) (string, string, error) {
		if job.Experiment == "alpha" && job.Seed == 1 {
			calls.Add(1)
			select {
			case <-time.After(5 * time.Second):
			case <-ctx.Done():
				return "", "", ctx.Err()
			}
		}
		return stubRunner(ctx, job)
	}
	path := filepath.Join(t.TempDir(), "s.jsonl")
	store, err := CreateStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Execute(context.Background(), testManifest(), store, nil, slow, Options{
		Workers: 2, Retries: 1, Timeout: 30 * time.Millisecond,
	})
	store.Close()
	if err == nil {
		t.Fatal("sweep succeeded despite every alpha attempt timing out")
	}
	if got := calls.Load(); got != 2 { // first attempt + one retry
		t.Errorf("alpha seed-1 attempts = %d, want 2 (timeout then retry)", got)
	}
}

func TestCancellationLeavesResumableStore(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	gate := func(c context.Context, job Job) (string, string, error) {
		if job.Experiment != "alpha" {
			// Block until canceled: only alpha results can land.
			<-c.Done()
			return "", "", c.Err()
		}
		<-release
		return stubRunner(c, job)
	}
	path := filepath.Join(t.TempDir(), "s.jsonl")
	store, err := CreateStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		close(release)
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err = Execute(ctx, testManifest(), store, nil, gate, Options{Workers: 2})
	store.Close()
	if err == nil {
		t.Fatal("canceled sweep reported success")
	}
	recs, _, rerr := RecoverStore(path)
	if rerr != nil {
		t.Fatalf("store not recoverable after cancel: %v", rerr)
	}
	for _, r := range recs {
		if r.Experiment != "alpha" {
			t.Errorf("unexpected record %q in canceled store", r.Experiment)
		}
	}
}

// TestBatchWidthDeterminism: grouping a seed axis into per-worker dispatch
// units is a scheduling change only — the store must stay byte-identical to
// an ungrouped sweep for any (workers, width) combination.
func TestBatchWidthDeterminism(t *testing.T) {
	dir := t.TempDir()
	var ref []byte
	for _, workers := range []int{1, 4} {
		for _, width := range []int{1, 2, 8} {
			path := filepath.Join(dir, fmt.Sprintf("w%db%d.jsonl", workers, width))
			store, err := CreateStore(path, false)
			if err != nil {
				t.Fatal(err)
			}
			_, err = Execute(context.Background(), testManifest(), store, nil, stubRunner,
				Options{Workers: workers, BatchWidth: width})
			store.Close()
			if err != nil {
				t.Fatal(err)
			}
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = buf
			} else if !bytes.Equal(ref, buf) {
				t.Errorf("workers=%d width=%d store differs from reference", workers, width)
			}
		}
	}
}
