package config

import (
	"os"
	"path/filepath"
	"testing"
)

const sample = `{
  "config": {"layout": "halves", "scheme": "RA_RAIR", "seed": 7},
  "apps": [
    {"app": 0, "loadFrac": 0.1, "globalFrac": 0.5},
    {"app": 1, "loadFrac": 0.5}
  ],
  "phases": {"warmup": 200, "measure": 1000, "drain": 3000}
}`

func TestParseAndRun(t *testing.T) {
	f, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Config.Layout != "halves" || len(f.Apps) != 2 {
		t.Fatalf("parsed %+v", f)
	}
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packets == 0 {
		t.Fatal("no packets measured")
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		`{`, // invalid JSON
		`{"config": {}, "phases": {"measure": 100}}`, // no traffic
		`{"config": {}, "apps": [{"app":0,"loadFrac":0.1}], "parsec": true,
		  "phases": {"measure": 100}}`, // both traffic kinds
		`{"config": {}, "apps": [{"app":0,"loadFrac":0.1}], "phases": {"measure": 0}}`, // no window
		`{"config": {}, "apps": [{"app":0,"loadFrac":0.1}], "typo": 1,
		  "phases": {"measure": 100}}`, // unknown field
	}
	for i, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBuildErrorsSurface(t *testing.T) {
	f, err := Parse([]byte(`{
	  "config": {"scheme": "NOPE"},
	  "apps": [{"app": 0, "loadFrac": 0.1}],
	  "phases": {"measure": 100}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Build(); err == nil {
		t.Fatal("bad scheme accepted at build")
	}
}

func TestLoadFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sim.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Phases.Measure != 1000 {
		t.Fatalf("phases %+v", f.Phases)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParsecFile(t *testing.T) {
	f, err := Parse([]byte(`{
	  "config": {"layout": "quadrants", "scheme": "RA_RAIR"},
	  "parsec": true,
	  "adversaryFlitRate": 0.1,
	  "phases": {"warmup": 100, "measure": 500, "drain": 2000}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packets == 0 {
		t.Fatal("no packets")
	}
}
