// Package config defines the JSON experiment-file schema consumed by the
// rairsim command: a simulation configuration, traffic description and run
// phases in one document.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"rair"
)

// File is one simulation description.
//
// Example:
//
//	{
//	  "config":   {"layout": "halves", "scheme": "RA_RAIR", "seed": 7},
//	  "apps":     [{"app": 0, "loadFrac": 0.1, "globalFrac": 0.5},
//	               {"app": 1, "loadFrac": 0.9}],
//	  "phases":   {"warmup": 10000, "measure": 100000, "drain": 20000}
//	}
type File struct {
	Config rair.Config `json:"config"`
	// Apps are synthetic applications; mutually exclusive with PARSEC.
	Apps []App `json:"apps,omitempty"`
	// PARSEC runs the PARSEC-proxy workloads over the memory system.
	PARSEC bool `json:"parsec,omitempty"`
	// AdversaryFlitRate adds chip-wide adversarial traffic (flits per
	// node per cycle).
	AdversaryFlitRate float64 `json:"adversaryFlitRate,omitempty"`
	Phases            Phases  `json:"phases"`
}

// App mirrors rair.AppSpec with JSON tags.
type App struct {
	App           int     `json:"app"`
	LoadFrac      float64 `json:"loadFrac,omitempty"`
	PacketRate    float64 `json:"packetRate,omitempty"`
	GlobalFrac    float64 `json:"globalFrac,omitempty"`
	GlobalPattern string  `json:"globalPattern,omitempty"`
	MCFrac        float64 `json:"mcFrac,omitempty"`
}

// Phases mirrors rair.Phases with JSON tags.
type Phases struct {
	Warmup  int64 `json:"warmup"`
	Measure int64 `json:"measure"`
	Drain   int64 `json:"drain"`
}

// Load reads and decodes a simulation file.
func Load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw)
}

// Parse decodes a simulation document, rejecting unknown fields so typos
// fail loudly.
func Parse(raw []byte) (*File, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if f.PARSEC && len(f.Apps) > 0 {
		return nil, fmt.Errorf("config: apps and parsec are mutually exclusive")
	}
	if !f.PARSEC && len(f.Apps) == 0 {
		return nil, fmt.Errorf("config: no traffic (set apps or parsec)")
	}
	if f.Phases.Measure <= 0 {
		return nil, fmt.Errorf("config: phases.measure must be positive")
	}
	return &f, nil
}

// Build constructs the configured simulation.
func (f *File) Build() (*rair.Simulation, error) {
	sim, err := rair.New(f.Config)
	if err != nil {
		return nil, err
	}
	if f.PARSEC {
		if err := sim.AttachPARSEC(); err != nil {
			return nil, err
		}
	}
	for _, a := range f.Apps {
		if err := sim.AddApp(rair.AppSpec{
			App: a.App, LoadFrac: a.LoadFrac, PacketRate: a.PacketRate,
			GlobalFrac: a.GlobalFrac, GlobalPattern: a.GlobalPattern, MCFrac: a.MCFrac,
		}); err != nil {
			return nil, err
		}
	}
	if f.AdversaryFlitRate > 0 {
		if err := sim.AddAdversary(f.AdversaryFlitRate); err != nil {
			return nil, err
		}
	}
	return sim, nil
}

// Run builds and executes the file's simulation.
func (f *File) Run() (*rair.Report, error) {
	sim, err := f.Build()
	if err != nil {
		return nil, err
	}
	return sim.Run(rair.Phases{Warmup: f.Phases.Warmup, Measure: f.Phases.Measure, Drain: f.Phases.Drain})
}
