package router

import (
	"fmt"
	"math/bits"

	"rair/internal/msg"
	"rair/internal/sim"
	"rair/internal/topology"
)

// vcStage is the per-input-VC pipeline state machine. A VC owns one packet
// at a time (atomic allocation): the head flit walks RC → VA → Active, and
// body/tail flits inherit the allocation while the VC is Active.
type vcStage uint8

const (
	stageIdle vcStage = iota
	stageRC
	stageVA
	stageActive
)

// vcMask is a VC-index bitmask (bit i ↔ VC i of one port). Config.Validate
// caps VCsPerPort at 64 so a whole port always fits one word; the pipeline
// then selects per-stage candidate sets by mask intersection and walks them
// with bits.TrailingZeros64 instead of scanning VC slices. Iteration order
// is ascending VC index, which all arbitration downstream is insensitive to
// (requests are filed into index-addressed rows and granted by the
// arbiters' own rotation order).
type vcMask = uint64

// allVCs returns the mask with bits [0, v) set.
func allVCs(v int) vcMask { return ^vcMask(0) >> (64 - uint(v)) }

// inputVC is one virtual channel of an input port. VCs are stored by value
// in the port's slice (and the flit ring is embedded) so the pipeline's
// per-VC state is contiguous in memory rather than a pointer chase per VC.
type inputVC struct {
	idx   int
	buf   sim.Bounded[msg.Flit]
	owner *msg.Packet
	stage vcStage

	// Route allocation, valid while Active.
	outPort topology.Dir
	outVC   int

	// vaAttempts counts failed VA tries; every other attempt is forced
	// onto the escape (DOR) direction so the Duato escape path is always
	// eventually requested under congestion.
	vaAttempts int

	// headPending is true from head arrival until SA pops the head flit —
	// the window in which stall attribution may charge this VC's packet.
	// A packet's un-popped head sits in exactly one VC network-wide, so
	// gating charges on it bounds attribution to one cycle per packet per
	// cycle. Maintained unconditionally (two bool stores per packet per
	// hop); read only when attribution is on.
	headPending bool
}

// InputPort is one input of the router: a set of VC buffers plus the
// upstream link credits are returned on. The per-stage occupancy masks are
// maintained incrementally at head arrival, VA grant and tail departure, so
// the pipeline visits only the VCs actually in each stage — candidate
// selection is a mask intersection, and removals are single bit clears
// instead of slice splices.
type InputPort struct {
	dir      topology.Dir
	vcs      []inputVC
	link     *Link // upstream link; nil on unconnected mesh-edge ports
	bufFlits int   // buffered flits across the port's VCs (congestion metric)

	rcMask     vcMask // VCs whose head arrived (stageRC)
	vaMask     vcMask // VCs waiting for a VC allocation (stageVA)
	activeMask vcMask // VCs streaming flits (stageActive)
	occMask    vcMask // VCs with a non-empty flit buffer

	// saElig is the persistent SA_in candidate set: Active VCs with a
	// buffered flit and a downstream credit (or an ejection output). The
	// predicate is deliberately ST-blind — the ST register toggles every
	// busy cycle and is filtered per candidate inside SA instead — so the
	// bit moves only on occupancy and credit edges: body-flit arrival,
	// credit return onto a dry streamed output VC, VA grant, and the SA
	// pop itself. SA walks only this set instead of rescanning every
	// active VC, making a cycle's allocation cost proportional to the
	// VCs that can actually move.
	saElig vcMask
}

// deliver accepts a flit arriving from the upstream link.
func (p *InputPort) deliver(f msg.Flit) {
	vc := &p.vcs[f.VC]
	if f.Type.IsHead() {
		if vc.owner != nil {
			panic(fmt.Sprintf("router: head flit of %v arrived on busy VC %d (%s port, owner %v)",
				f.Pkt, f.VC, p.dir, vc.owner))
		}
		vc.owner = f.Pkt
		vc.stage = stageRC
		vc.vaAttempts = 0
		vc.headPending = true
		p.rcMask |= 1 << uint(f.VC)
	} else if vc.owner != f.Pkt {
		panic(fmt.Sprintf("router: body flit of %v on VC %d owned by %v", f.Pkt, f.VC, vc.owner))
	}
	vc.buf.Push(f)
	p.occMask |= 1 << uint(f.VC)
	p.bufFlits++
}

// outputVC is one virtual channel of an output port: the credit counter for
// the downstream buffer and the atomic allocation state.
type outputVC struct {
	idx      int
	credits  int
	owner    *msg.Packet
	tailSent bool

	// Reverse map to the input VC streaming into this output VC, valid
	// while the port's streamMask bit is set. Atomic allocation makes the
	// map single-valued: an output VC is owned by exactly one packet,
	// which occupies exactly one upstream input VC until its tail pops.
	inPort int8
	inVC   int8
}

// OutputPort is one output of the router: per-VC credit/allocation state,
// the downstream link, and the ST pipeline register holding the flit that
// won SA last cycle.
//
// Three credit-derived masks shadow the per-VC counters so the hot-path
// queries are single-bit tests: creditMask (credits > 0, read by SA_in's
// eligibility check), fullMask (credits == Depth, the atomic-reuse release
// condition), and freeMask (owner == nil, VA_in's free-VC search window).
// drainMask marks owned VCs whose tail has been sent, awaiting full credit
// return.
type OutputPort struct {
	dir      topology.Dir
	vcs      []outputVC
	link     *Link // downstream link; nil on unconnected mesh-edge ports
	ejection bool  // Local port: the sink accepts unconditionally

	st      msg.Flit
	stValid bool

	allocated  int    // owned VCs (bookkeeping invariant)
	creditSum  int    // total credits across the port's VCs
	freeMask   vcMask // VCs with no owner (VA_in candidates)
	creditMask vcMask // VCs with at least one downstream credit
	fullMask   vcMask // VCs with the full credit stock
	drainMask  vcMask // owned VCs with tail sent, awaiting credit return
	streamMask vcMask // owned VCs whose tail has NOT been sent (live input streams)
}

// deliverCredit accepts a returned credit from the downstream router. The
// overflow panic lives in a separate function so deliverCredit stays within
// the inlining budget.
func (p *OutputPort) deliverCredit(vc int, depth int) {
	v := &p.vcs[vc]
	v.credits++
	if v.credits > depth {
		p.creditOverflow(vc)
	}
	p.creditSum++
	p.creditMask |= 1 << uint(vc)
	if v.credits == depth {
		p.fullMask |= 1 << uint(vc)
	}
}

//go:noinline
func (p *OutputPort) creditOverflow(vc int) {
	panic(fmt.Sprintf("router: credit overflow on %s VC %d", p.dir, vc))
}

// free releases output VCs whose packets have fully drained downstream:
// tail sent and every credit returned (atomic VC reuse condition). Ejection
// VCs never consume credits, so they free as soon as the tail is sent. The
// releasable set is exactly drainMask ∩ fullMask — a two-word intersection,
// visited only when the router saw a credit arrival or a sent tail on this
// port since the last scan (the router-level freeable port mask).
func (p *OutputPort) free() {
	m := p.drainMask & p.fullMask
	if m == 0 {
		return
	}
	p.drainMask &^= m
	p.freeMask |= m
	for ; m != 0; m &= m - 1 {
		v := &p.vcs[bits.TrailingZeros64(m)]
		v.owner = nil
		v.tailSent = false
		p.allocated--
	}
}

// freeCredits reports the total credits available across the port (the
// local congestion signal for selection functions), maintained incrementally
// at credit arrival and flit departure.
func (p *OutputPort) freeCredits() int { return p.creditSum }
