package router

import (
	"fmt"

	"rair/internal/msg"
	"rair/internal/sim"
	"rair/internal/topology"
)

// vcStage is the per-input-VC pipeline state machine. A VC owns one packet
// at a time (atomic allocation): the head flit walks RC → VA → Active, and
// body/tail flits inherit the allocation while the VC is Active.
type vcStage uint8

const (
	stageIdle vcStage = iota
	stageRC
	stageVA
	stageActive
)

// inputVC is one virtual channel of an input port.
type inputVC struct {
	idx   int
	buf   *sim.Bounded[msg.Flit]
	owner *msg.Packet
	stage vcStage

	// Route allocation, valid while Active.
	outPort topology.Dir
	outVC   int

	// vaAttempts counts failed VA tries; every other attempt is forced
	// onto the escape (DOR) direction so the Duato escape path is always
	// eventually requested under congestion.
	vaAttempts int
}

// InputPort is one input of the router: a set of VC buffers plus the
// upstream link credits are returned on.
type InputPort struct {
	dir      topology.Dir
	vcs      []*inputVC
	link     *Link // upstream link; nil on unconnected mesh-edge ports
	bufFlits int   // buffered flits across the port's VCs (congestion metric)
}

func newInputPort(cfg Config, dir topology.Dir, link *Link) *InputPort {
	p := &InputPort{dir: dir, link: link, vcs: make([]*inputVC, cfg.VCsPerPort())}
	for i := range p.vcs {
		p.vcs[i] = &inputVC{idx: i, buf: sim.NewBounded[msg.Flit](cfg.Depth)}
	}
	return p
}

// deliver accepts a flit arriving from the upstream link.
func (p *InputPort) deliver(f msg.Flit) {
	vc := p.vcs[f.VC]
	if f.Type.IsHead() {
		if vc.owner != nil {
			panic(fmt.Sprintf("router: head flit of %v arrived on busy VC %d (%s port, owner %v)",
				f.Pkt, f.VC, p.dir, vc.owner))
		}
		vc.owner = f.Pkt
		vc.stage = stageRC
		vc.vaAttempts = 0
	} else if vc.owner != f.Pkt {
		panic(fmt.Sprintf("router: body flit of %v on VC %d owned by %v", f.Pkt, f.VC, vc.owner))
	}
	vc.buf.Push(f)
	p.bufFlits++
}

// outputVC is one virtual channel of an output port: the credit counter for
// the downstream buffer and the atomic allocation state.
type outputVC struct {
	idx      int
	credits  int
	owner    *msg.Packet
	tailSent bool
}

// OutputPort is one output of the router: per-VC credit/allocation state,
// the downstream link, and the ST pipeline register holding the flit that
// won SA last cycle.
type OutputPort struct {
	dir      topology.Dir
	vcs      []*outputVC
	link     *Link // downstream link; nil on unconnected mesh-edge ports
	ejection bool  // Local port: the sink accepts unconditionally

	st      msg.Flit
	stValid bool

	allocated int // owned VCs; lets idle ports skip the free() scan
}

func newOutputPort(cfg Config, dir topology.Dir, link *Link, ejection bool) *OutputPort {
	p := &OutputPort{dir: dir, link: link, ejection: ejection, vcs: make([]*outputVC, cfg.VCsPerPort())}
	for i := range p.vcs {
		p.vcs[i] = &outputVC{idx: i, credits: cfg.Depth}
	}
	return p
}

// deliverCredit accepts a returned credit from the downstream router.
func (p *OutputPort) deliverCredit(vc int, depth int) {
	v := p.vcs[vc]
	v.credits++
	if v.credits > depth {
		panic(fmt.Sprintf("router: credit overflow on %s VC %d", p.dir, vc))
	}
}

// free releases output VCs whose packets have fully drained downstream:
// tail sent and every credit returned (atomic VC reuse condition). Ejection
// VCs never consume credits, so they free as soon as the tail is sent.
func (p *OutputPort) free(depth int) {
	if p.allocated == 0 {
		return
	}
	for _, v := range p.vcs {
		if v.owner != nil && v.tailSent && v.credits == depth {
			v.owner = nil
			v.tailSent = false
			p.allocated--
		}
	}
}

// freeCredits reports the total credits available across the port (the
// local congestion signal for selection functions).
func (p *OutputPort) freeCredits() int {
	sum := 0
	for _, v := range p.vcs {
		sum += v.credits
	}
	return sum
}
