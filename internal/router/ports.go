package router

import (
	"fmt"

	"rair/internal/msg"
	"rair/internal/sim"
	"rair/internal/topology"
)

// vcStage is the per-input-VC pipeline state machine. A VC owns one packet
// at a time (atomic allocation): the head flit walks RC → VA → Active, and
// body/tail flits inherit the allocation while the VC is Active.
type vcStage uint8

const (
	stageIdle vcStage = iota
	stageRC
	stageVA
	stageActive
)

// inputVC is one virtual channel of an input port.
type inputVC struct {
	idx   int
	buf   *sim.Bounded[msg.Flit]
	owner *msg.Packet
	stage vcStage

	// Route allocation, valid while Active.
	outPort topology.Dir
	outVC   int

	// vaAttempts counts failed VA tries; every other attempt is forced
	// onto the escape (DOR) direction so the Duato escape path is always
	// eventually requested under congestion.
	vaAttempts int
}

// InputPort is one input of the router: a set of VC buffers plus the
// upstream link credits are returned on. The per-stage index lists let the
// pipeline visit only the VCs actually in each stage instead of scanning
// every VC every cycle.
type InputPort struct {
	dir      topology.Dir
	vcs      []*inputVC
	link     *Link // upstream link; nil on unconnected mesh-edge ports
	bufFlits int   // buffered flits across the port's VCs (congestion metric)

	rcPend []int // VC indices whose head arrived (stageRC)
	vaPend []int // VC indices waiting for a VC allocation (stageVA)
	active []int // VC indices streaming flits (stageActive)
}

func newInputPort(cfg Config, dir topology.Dir, link *Link) *InputPort {
	v := cfg.VCsPerPort()
	p := &InputPort{
		dir: dir, link: link, vcs: make([]*inputVC, v),
		rcPend: make([]int, 0, v), vaPend: make([]int, 0, v), active: make([]int, 0, v),
	}
	for i := range p.vcs {
		p.vcs[i] = &inputVC{idx: i, buf: sim.NewBounded[msg.Flit](cfg.Depth)}
	}
	return p
}

// deliver accepts a flit arriving from the upstream link.
func (p *InputPort) deliver(f msg.Flit) {
	vc := p.vcs[f.VC]
	if f.Type.IsHead() {
		if vc.owner != nil {
			panic(fmt.Sprintf("router: head flit of %v arrived on busy VC %d (%s port, owner %v)",
				f.Pkt, f.VC, p.dir, vc.owner))
		}
		vc.owner = f.Pkt
		vc.stage = stageRC
		vc.vaAttempts = 0
		p.rcPend = append(p.rcPend, f.VC)
	} else if vc.owner != f.Pkt {
		panic(fmt.Sprintf("router: body flit of %v on VC %d owned by %v", f.Pkt, f.VC, vc.owner))
	}
	vc.buf.Push(f)
	p.bufFlits++
}

// outputVC is one virtual channel of an output port: the credit counter for
// the downstream buffer and the atomic allocation state.
type outputVC struct {
	idx      int
	credits  int
	owner    *msg.Packet
	tailSent bool
}

// OutputPort is one output of the router: per-VC credit/allocation state,
// the downstream link, and the ST pipeline register holding the flit that
// won SA last cycle.
type OutputPort struct {
	dir      topology.Dir
	vcs      []*outputVC
	link     *Link // downstream link; nil on unconnected mesh-edge ports
	ejection bool  // Local port: the sink accepts unconditionally

	st      msg.Flit
	stValid bool

	allocated int   // owned VCs (bookkeeping invariant)
	draining  []int // VC indices with tail sent, awaiting credit return
	freeable  bool  // a credit arrived or a tail was sent since the last free() scan
}

func newOutputPort(cfg Config, dir topology.Dir, link *Link, ejection bool) *OutputPort {
	p := &OutputPort{dir: dir, link: link, ejection: ejection, vcs: make([]*outputVC, cfg.VCsPerPort())}
	for i := range p.vcs {
		p.vcs[i] = &outputVC{idx: i, credits: cfg.Depth}
	}
	return p
}

// deliverCredit accepts a returned credit from the downstream router.
func (p *OutputPort) deliverCredit(vc int, depth int) {
	v := p.vcs[vc]
	v.credits++
	if v.credits > depth {
		panic(fmt.Sprintf("router: credit overflow on %s VC %d", p.dir, vc))
	}
	p.freeable = true
}

// free releases output VCs whose packets have fully drained downstream:
// tail sent and every credit returned (atomic VC reuse condition). Ejection
// VCs never consume credits, so they free as soon as the tail is sent.
// Only the draining list (VCs whose tail has been sent) is visited, and only
// when something happened that could newly satisfy the release condition (a
// returned credit or a sent tail), so busy ports don't rescan every VC every
// cycle.
func (p *OutputPort) free(depth int) {
	if len(p.draining) == 0 || !p.freeable {
		return
	}
	p.freeable = false
	kept := p.draining[:0]
	for _, i := range p.draining {
		v := p.vcs[i]
		if v.credits == depth {
			v.owner = nil
			v.tailSent = false
			p.allocated--
		} else {
			kept = append(kept, i)
		}
	}
	p.draining = kept
}

// freeCredits reports the total credits available across the port (the
// local congestion signal for selection functions).
func (p *OutputPort) freeCredits() int {
	sum := 0
	for _, v := range p.vcs {
		sum += v.credits
	}
	return sum
}
