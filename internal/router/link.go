package router

import (
	"rair/internal/msg"
	"rair/internal/sim"
)

// Link is a unidirectional flit channel with its paired reverse credit
// wire. Flits flow downstream with the configured link latency; credits
// (identified by VC index) flow upstream with a one-cycle delay.
//
// Links are the only coupling between routers (and between NIs and
// routers): they are shifted exactly once per cycle by the network before
// any component ticks, which makes the whole simulation independent of
// component iteration order.
type Link struct {
	flits   *sim.DelayLine[msg.Flit]
	credits *sim.DelayLine[int]
}

// NewLink returns a link with the given downstream flit latency.
func NewLink(latency int) *Link {
	return &Link{
		flits:   sim.NewDelayLine[msg.Flit](latency),
		credits: sim.NewDelayLine[int](1),
	}
}

// Shift advances both directions one cycle, returning any arrivals.
func (l *Link) Shift() (f msg.Flit, fOK bool, credit int, cOK bool) {
	f, fOK = l.flits.Shift()
	credit, cOK = l.credits.Shift()
	return
}

// ShiftFlits advances only the downstream flit wire. The tick engine shifts
// the two directions of a link from different shards (the flit wire belongs
// to the receiver's shard, the credit wire to the sender's), so each wire
// must advance independently. An idle wire is skipped entirely: a DelayLine
// with nothing in flight cannot have a pending push either, so not shifting
// it is exactly equivalent to shifting it.
func (l *Link) ShiftFlits() (f msg.Flit, ok bool) {
	if !l.flits.Busy() {
		return f, false
	}
	return l.flits.Shift()
}

// ShiftCredits advances only the upstream credit wire (see ShiftFlits).
func (l *Link) ShiftCredits() (vc int, ok bool) {
	if !l.credits.Busy() {
		return 0, false
	}
	return l.credits.Shift()
}

// FlitsBusy reports whether any flit is in flight downstream.
func (l *Link) FlitsBusy() bool { return l.flits.Busy() }

// CreditsBusy reports whether any credit is in flight upstream.
func (l *Link) CreditsBusy() bool { return l.credits.Busy() }

// SendFlit pushes a flit downstream. At most one flit per cycle may enter
// (the link is one flit wide); the router's ST stage guarantees this.
func (l *Link) SendFlit(f msg.Flit) { l.flits.Push(f) }

// CanSendFlit reports whether the downstream wire can accept a flit this
// cycle.
func (l *Link) CanSendFlit() bool { return l.flits.CanPush() }

// SendCredit pushes a credit for vc upstream.
func (l *Link) SendCredit(vc int) { l.credits.Push(vc) }

// CanSendCredit reports whether the upstream wire can accept a credit this
// cycle. One credit per cycle matches one flit dequeued per input port per
// cycle (SA_in grants at most one).
func (l *Link) CanSendCredit() bool { return l.credits.CanPush() }

// Busy reports whether anything is in flight in either direction.
func (l *Link) Busy() bool { return l.flits.Busy() || l.credits.Busy() }
