package router

import (
	"rair/internal/faults"
	"rair/internal/msg"
	"rair/internal/sim"
)

// Link is a unidirectional flit channel with its paired reverse credit
// wire. Flits flow downstream with the configured link latency; credits
// (identified by VC index) flow upstream with a one-cycle delay.
//
// Links are the only coupling between routers (and between NIs and
// routers): they are shifted exactly once per cycle by the network before
// any component ticks, which makes the whole simulation independent of
// component iteration order.
//
// A link may carry fault-injection state (SetFaults): arriving flits are
// then filtered through the injector's drop/corrupt verdicts, failed flits
// re-enter the wire from the retransmission queue, and arriving credits may
// leak. The fault path lives entirely inside ShiftFlits/ShiftCredits so the
// router and NI on either end never see a faulty event — only delayed
// delivery.
type Link struct {
	flits   sim.DelayLine[msg.Flit]
	credits sim.DelayLine[int]
	faults  *faults.LinkState

	// Wake marks: the tick engine's per-shard dirty-wire bitmaps. A push
	// onto a wire sets the wire's bit in the bitmap of the shard that owns
	// (shifts and delivers) it, so quiescent wires are never even visited.
	// A wire whose pusher lives on a different shard than its owner carries
	// no mark (the owner polls it instead); both marks are nil outside an
	// engine (router-level tests drive links directly).
	flitWake wakeMark
	credWake wakeMark
}

// wakeMark addresses one bit of a dirty bitmap.
type wakeMark struct {
	word *uint64
	bit  uint64
}

func (w wakeMark) set() {
	if w.word != nil {
		*w.word |= w.bit
	}
}

// NewLink returns a link with the given downstream flit latency.
func NewLink(latency int) *Link {
	l := &Link{}
	InitLink(l, latency)
	return l
}

// InitLink initializes a zero Link in place with the given downstream flit
// latency; the network uses it to carve links out of a contiguous slab.
func InitLink(l *Link, latency int) {
	l.flits.Init(latency)
	l.credits.Init(1)
}

// SetFlitWake attaches the dirty-bitmap mark set by SendFlit (nil word
// detaches: the wire is then polled by its owner instead).
func (l *Link) SetFlitWake(word *uint64, bit uint64) { l.flitWake = wakeMark{word, bit} }

// SetCreditWake attaches the dirty-bitmap mark set by SendCredit.
func (l *Link) SetCreditWake(word *uint64, bit uint64) { l.credWake = wakeMark{word, bit} }

// SetFaults attaches fault-injection state; nil detaches it.
func (l *Link) SetFaults(fs *faults.LinkState) { l.faults = fs }

// Faults returns the link's fault state (nil when fault-free).
func (l *Link) Faults() *faults.LinkState { return l.faults }

// Shift advances both directions one cycle, returning any arrivals. It is
// the single-threaded convenience used by router-level tests and bypasses
// fault injection; the network's tick engine always uses the split
// ShiftFlits/ShiftCredits.
func (l *Link) Shift() (f msg.Flit, fOK bool, credit int, cOK bool) {
	f, fOK = l.flits.Shift()
	credit, cOK = l.credits.Shift()
	return
}

// ShiftFlits advances only the downstream flit wire. The tick engine shifts
// the two directions of a link from different shards (the flit wire belongs
// to the receiver's shard, the credit wire to the sender's), so each wire
// must advance independently. An idle wire is skipped entirely: a DelayLine
// with nothing in flight cannot have a pending push either, so not shifting
// it is exactly equivalent to shifting it — unless retransmissions are
// queued, which must re-enter an otherwise idle wire.
//
// With fault state attached, an arriving flit may be dropped or corrupted
// (ok=false; it re-enters later from the retransmission queue), and one
// eligible queued flit is pushed back onto the just-vacated entry register.
// The sender's same-cycle CanSendFlit then reads false, which is exactly
// the backpressure a busy retransmitting wire should exert.
func (l *Link) ShiftFlits(now int64) (f msg.Flit, ok bool) {
	fi := l.faults
	if fi == nil {
		if !l.flits.Busy() {
			return f, false
		}
		return l.flits.Shift()
	}
	if !l.flits.Busy() && !fi.Pending() {
		return f, false
	}
	f, ok = l.flits.Shift()
	if ok && !fi.Arrive(f, now) {
		f, ok = msg.Flit{}, false
	}
	if rf, rok := fi.Retransmit(now); rok {
		l.flits.Push(rf)
	}
	return f, ok
}

// ShiftCredits advances only the upstream credit wire (see ShiftFlits).
// With fault state attached an arriving credit may leak (ok=false); leaked
// credits are restored only by reconciliation.
func (l *Link) ShiftCredits(now int64) (vc int, ok bool) {
	if !l.credits.Busy() {
		return 0, false
	}
	vc, ok = l.credits.Shift()
	if ok && l.faults != nil && !l.faults.CreditArrive(vc, now) {
		return 0, false
	}
	return vc, ok
}

// FlitsBusy reports whether any flit is in flight downstream, including
// flits waiting in the retransmission queue.
func (l *Link) FlitsBusy() bool {
	return l.flits.Busy() || (l.faults != nil && l.faults.Pending())
}

// CreditsBusy reports whether any credit is in flight upstream.
func (l *Link) CreditsBusy() bool { return l.credits.Busy() }

// SendFlit pushes a flit downstream. At most one flit per cycle may enter
// (the link is one flit wide); the router's ST stage guarantees this.
func (l *Link) SendFlit(f msg.Flit) {
	l.flits.Push(f)
	l.flitWake.set()
}

// CanSendFlit reports whether the downstream wire can accept a flit this
// cycle.
func (l *Link) CanSendFlit() bool { return l.flits.CanPush() }

// SendCredit pushes a credit for vc upstream.
func (l *Link) SendCredit(vc int) {
	l.credits.Push(vc)
	l.credWake.set()
}

// CanSendCredit reports whether the upstream wire can accept a credit this
// cycle. One credit per cycle matches one flit dequeued per input port per
// cycle (SA_in grants at most one).
func (l *Link) CanSendCredit() bool { return l.credits.CanPush() }

// Busy reports whether anything is in flight in either direction, including
// queued retransmissions.
func (l *Link) Busy() bool {
	return l.flits.Busy() || l.credits.Busy() || (l.faults != nil && l.faults.Pending())
}

// InFlightFlits reports flits on the downstream wire (excluding the
// retransmission queue; see Faults().PendingFlits for those).
func (l *Link) InFlightFlits() int { return l.flits.Len() }

// InFlightCredits reports credits on the upstream wire.
func (l *Link) InFlightCredits() int { return l.credits.Len() }

// AuditFlits calls fn for every in-flight downstream flit, oldest first
// (read-only invariant-checker hook; barrier-only).
func (l *Link) AuditFlits(fn func(msg.Flit)) { l.flits.Each(fn) }

// AuditCredits calls fn for every in-flight upstream credit's VC index
// (read-only invariant-checker hook; barrier-only).
func (l *Link) AuditCredits(fn func(int)) { l.credits.Each(fn) }
