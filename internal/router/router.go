package router

import (
	"fmt"
	"math/bits"

	"rair/internal/arbiter"
	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/routing"
	"rair/internal/telemetry"
	"rair/internal/topology"
)

// fastStream is one armed stream of the fast path: the input VC whose
// flits are being pumped, its ports, and the output direction (for the
// flits-sent counter and stList bookkeeping on unlatch).
type fastStream struct {
	ivc    *inputVC
	inp    *InputPort
	out    *OutputPort
	outDir topology.Dir
}

// routeEntry is one cached route: the algorithm's candidate directions for
// a destination and the single deadlock-free escape direction.
type routeEntry struct {
	dirs [4]topology.Dir
	n    uint8
	esc  topology.Dir
}

// dpaPolicy is the optional policy facet exposing the DPA priority state;
// telemetry uses it to count transitions without widening policy.Policy.
type dpaPolicy interface {
	NativeHigh() bool
}

// Router is one node's pipelined VC router. Each router is tagged with the
// application number assigned to its node (Figure 5); packets carry their
// own application number, and the match classifies them as native or
// foreign traffic for the policy.
type Router struct {
	cfg     Config
	node    int
	app     int
	mesh    *topology.Mesh
	regions *region.Map
	alg     routing.Algorithm
	sel     routing.Selector
	pol     policy.Policy

	// soa is the shard-owned dense store this router is a view into; li
	// its local index there. The ports below point into the store's
	// slabs, and the occupancy/work registers live in its flat arrays.
	soa *SoA
	li  int

	// saTab/vaTab are the policy's lookup tables when it implements
	// policy.Tabular (nil otherwise): priority reads become array cells
	// instead of interface calls.
	saTab *[2]int8
	vaTab *[3][2]int8

	in  [topology.NumDirs]*InputPort
	out [topology.NumDirs]*OutputPort

	// nvc caches cfg.VCsPerPort() for the hot paths (the accessor
	// multiplies three config fields on every call).
	nvc int

	vaArb    []*arbiter.Prioritized // per global output VC index
	saInArb  [topology.NumDirs]*arbiter.Prioritized
	saOutArb [topology.NumDirs]*arbiter.Prioritized

	// VA scratch state, reused every cycle.
	vaReq     [][]bool
	vaPrio    [][]int
	vaTouched []int
	dirBuf    []topology.Dir

	// SA scratch state.
	saReq    []bool
	saPrio   []int
	saOutVC  [topology.NumDirs]*inputVC // SA_in winner per input port
	saOutReq [topology.NumDirs][topology.NumDirs]bool
	saOutPri [topology.NumDirs][topology.NumDirs]int

	// Per-output-VC request count and (when single) the lone requestor,
	// letting VA_out bypass the wide arbiter scan in the common
	// uncontended case.
	vaReqN   []int
	vaSingle []int

	// stList holds the output ports with an occupied ST register, so ST
	// only visits ports with a flit to send.
	stList []topology.Dir

	// saPorts marks input ports with a non-empty saElig set, so SA_in
	// visits only ports that actually have a candidate this cycle.
	saPorts uint8

	// Event-driven flit streaming. When a cycle's allocation resolves
	// with no arbitration (every granted port had a single candidate, no
	// SA_out contention, no held ST, no candidate left waiting), the
	// winning streams are recorded in fastPlan and fastArmed is set: the
	// next Tick pumps each stream through a fused ST+SA path without
	// re-running arbitration — legal because the arbiter pointers are
	// already parked past the sole requestor (GrantSingle is idempotent
	// for a repeating single winner), so replaying the slow path would
	// reproduce exactly this outcome. Any event that could change the
	// outcome (a new SA candidate appearing, a VA grant, a tail, a credit
	// dry-up, a link hold) clears fastArmed and the slow path re-derives
	// everything from the masks, which are kept exact in both modes.
	fastArmed bool
	fastN     int
	fastPlan  [topology.NumDirs]fastStream
	fastTicks int64

	// DBAR congestion tables: cong[d][k] is the (k+1)-cycle-old occupancy
	// of the router k+1 hops away in direction d. The network fills
	// congNext from neighbors each cycle and swaps.
	cong     [topology.NumDirs][]int
	congNext [topology.NumDirs][]int

	// Stage population counters let idle routers skip whole pipeline
	// stages; stPending counts occupied ST registers. Their sum is
	// mirrored into soa.Work at every transition so the engine's armed
	// sweep never touches the Router struct. The DPA occupancy registers
	// live in the store (soa.NativeOcc/ForeignOcc).
	rcCount     int
	vaCount     int
	activeCount int
	stPending   int

	// freeablePorts marks output ports where a credit arrived or a tail
	// was sent since the last output-VC release scan; Tick visits only
	// those ports instead of re-running free() on all of them.
	freeablePorts uint8

	// vcKind caches cfg.KindOf for every VC index (hot in VA_in).
	vcKind []policy.VCClass

	// routes caches the routing algorithm's per-destination outputs
	// (candidate directions and escape direction), which are pure
	// functions of (node, dst). Entries fill lazily on first use —
	// restricted algorithms like LBDR reject destinations they cannot
	// route, so only destinations actually seen are ever computed.
	// n == 0 marks an unfilled entry (a legal route has ≥ 1 candidate).
	routes []routeEntry

	// classWindow[c] masks the VC indices of message class c; escapeMask,
	// globalMask and regionalMask partition the VC indices by kind. All
	// pre-compute the VA_in search windows: the free-VC choice is then a
	// preference-ordered sequence of mask intersections instead of a
	// per-candidate loop.
	classWindow  []vcMask
	escapeMask   vcMask
	globalMask   vcMask
	regionalMask vcMask

	// flitsSent counts flits pushed onto each output link (utilization
	// instrumentation).
	flitsSent [topology.NumDirs]int64

	// tel is the node's telemetry probe; nil when telemetry is disabled,
	// and every hot-path use is guarded on that. telDPA is the policy's
	// optional DPA facet, telNativeHigh the last observed priority state.
	tel           *telemetry.Probe
	telDPA        dpaPolicy
	telNativeHigh bool

	// attr caches tel.AttributionOn() at wiring so every blame charge site
	// is a single predictable branch when attribution is off. allMask is
	// the all-VCs mask of one port (blame-site scratch).
	attr    bool
	allMask vcMask

	now int64
}

// New creates a router for node (application app, or -1 when unassigned)
// backed by a private single-slot store. Links are attached afterwards with
// ConnectIn/ConnectOut.
func New(cfg Config, node, app int, mesh *topology.Mesh, regions *region.Map,
	alg routing.Algorithm, sel routing.Selector, pol policy.Policy) *Router {
	return NewInStore(cfg, node, app, mesh, regions, alg, sel, pol, NewSoA(cfg, 1), 0)
}

// NewInStore creates a router as a view over slot li of the shard store
// soa: its ports and VC state are carved from the store's slabs and its
// work/occupancy registers are the store's flat arrays.
func NewInStore(cfg Config, node, app int, mesh *topology.Mesh, regions *region.Map,
	alg routing.Algorithm, sel routing.Selector, pol policy.Policy, soa *SoA, li int) *Router {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := &Router{
		cfg: cfg, node: node, app: app, mesh: mesh, regions: regions,
		alg: alg, sel: sel, pol: pol, soa: soa, li: li,
	}
	if t, ok := pol.(policy.Tabular); ok {
		r.saTab, r.vaTab = t.PriorityTables()
	}
	v := cfg.VCsPerPort()
	r.nvc = v
	nOut := int(topology.NumDirs) * v
	nIn := int(topology.NumDirs) * v
	r.vaArb = make([]*arbiter.Prioritized, nOut)
	r.vaReq = make([][]bool, nOut)
	r.vaPrio = make([][]int, nOut)
	for i := range r.vaArb {
		r.vaArb[i] = arbiter.NewPrioritized(nIn)
		r.vaReq[i] = make([]bool, nIn)
		r.vaPrio[i] = make([]int, nIn)
	}
	r.saReq = make([]bool, v)
	r.saPrio = make([]int, v)
	r.vaReqN = make([]int, nOut)
	r.vaSingle = make([]int, nOut)
	r.stList = make([]topology.Dir, 0, topology.NumDirs)
	r.vcKind = make([]policy.VCClass, v)
	for i := range r.vcKind {
		r.vcKind[i] = cfg.KindOf(i)
		switch r.vcKind[i] {
		case policy.VCEscape:
			r.escapeMask |= 1 << uint(i)
		case policy.VCGlobal:
			r.globalMask |= 1 << uint(i)
		default:
			r.regionalMask |= 1 << uint(i)
		}
	}
	r.classWindow = make([]vcMask, cfg.Classes)
	for c := range r.classWindow {
		base := cfg.ClassBase(msg.Class(c))
		r.classWindow[c] = allVCs(cfg.VCsPerClass()) << uint(base)
	}
	r.allMask = allVCs(v)
	r.routes = make([]routeEntry, mesh.N())
	rowLen := mesh.W
	if mesh.H > rowLen {
		rowLen = mesh.H
	}
	rowLen--
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		r.in[d] = &soa.Ins[li*int(topology.NumDirs)+int(d)]
		r.out[d] = &soa.Outs[li*int(topology.NumDirs)+int(d)]
		r.saInArb[d] = arbiter.NewPrioritized(v)
		r.saOutArb[d] = arbiter.NewPrioritized(int(topology.NumDirs))
		r.cong[d] = make([]int, rowLen)
		r.congNext[d] = make([]int, rowLen)
	}
	return r
}

// Node returns the router's node id.
func (r *Router) Node() int { return r.node }

// App returns the application assigned to the router's node (-1 if none).
func (r *Router) App() int { return r.app }

// Policy returns the router's interference-reduction policy instance.
func (r *Router) Policy() policy.Policy { return r.pol }

// SetTelemetry attaches a telemetry probe (nil detaches). When the policy
// exposes a DPA state (NativeHigh), transitions are counted from its
// current value.
func (r *Router) SetTelemetry(p *telemetry.Probe) {
	r.tel = p
	r.attr = p.AttributionOn()
	r.telDPA = nil
	if p != nil {
		if d, ok := r.pol.(dpaPolicy); ok {
			r.telDPA = d
			r.telNativeHigh = d.NativeHigh()
		}
	}
}

// OccupancyByKind reports the router's DPA occupancy registers: input VCs
// held by native vs. foreign traffic at the end of the last cycle.
func (r *Router) OccupancyByKind() (native, foreign int) {
	return int(r.soa.NativeOcc[r.li]), int(r.soa.ForeignOcc[r.li])
}

// Store returns the shard store this router is a view into and its local
// index there (engine and audit hooks).
func (r *Router) Store() (*SoA, int) { return r.soa, r.li }

// WorkCounters returns the individual stage-population counters; the
// invariant checker audits their sum against the store's Work mirror.
func (r *Router) WorkCounters() (rc, va, active, st int) {
	return r.rcCount, r.vaCount, r.activeCount, r.stPending
}

// ConnectIn attaches the upstream link feeding the input port at dir.
func (r *Router) ConnectIn(dir topology.Dir, l *Link) { r.in[dir].link = l }

// ConnectOut attaches the downstream link driven by the output port at dir.
func (r *Router) ConnectOut(dir topology.Dir, l *Link) { r.out[dir].link = l }

// DeliverFlit accepts a flit arriving on the input port at dir. The network
// calls it when the attached link's delay elapses. A body/tail flit landing
// in an Active VC's empty buffer can complete SA eligibility, so the
// candidate bit is re-derived (heads enter through RC/VA instead, and the
// VA grant re-derives the bit when the stream goes Active).
func (r *Router) DeliverFlit(dir topology.Dir, f msg.Flit) {
	in := r.in[dir]
	in.deliver(f)
	if f.Type.IsHead() {
		r.rcCount++
		r.soa.Work[r.li]++
		r.soa.armR(r.li)
		if r.app >= 0 && f.Pkt.App == r.app {
			r.soa.NativeOcc[r.li]++
		} else {
			r.soa.ForeignOcc[r.li]++
		}
	} else if in.activeMask>>uint(f.VC)&1 == 1 && in.saElig>>uint(f.VC)&1 == 0 {
		// The arrival fills an Active VC's empty buffer; with a credit
		// downstream the stream is a fresh SA candidate (0→1 edges also
		// invalidate any armed fast plan).
		vc := &in.vcs[f.VC]
		out := r.out[vc.outPort]
		if out.ejection || out.creditMask>>uint(vc.outVC)&1 == 1 {
			in.saElig |= 1 << uint(f.VC)
			r.saPorts |= 1 << uint(dir)
			r.fastArmed = false
		}
	}
}

// DeliverCredit accepts a credit returned on the output port at dir. The
// port joins the release scan only if something is actually draining there:
// a credit arriving while drainMask is clear cannot complete an atomic-reuse
// condition (the tail-send that starts a drain marks the port itself). A
// credit refilling a dry VC with a live input stream can complete that
// stream's SA eligibility; the reverse map locates the input VC without a
// scan. Credits landing on top of a non-zero stock cannot change
// eligibility and skip the re-derivation.
func (r *Router) DeliverCredit(dir topology.Dir, vc int) {
	p := r.out[dir]
	wasDry := p.vcs[vc].credits == 0
	p.deliverCredit(vc, r.cfg.Depth)
	if p.drainMask != 0 {
		r.freeablePorts |= 1 << uint(dir)
	}
	if wasDry && p.streamMask>>uint(vc)&1 == 1 {
		// The refill completes eligibility for the stream feeding this
		// output VC (located through the reverse map; streamMask implies
		// the input VC is Active) when it has a flit waiting.
		ov := &p.vcs[vc]
		in := r.in[ov.inPort]
		if in.occMask>>uint(ov.inVC)&1 == 1 && in.saElig>>uint(ov.inVC)&1 == 0 {
			in.saElig |= 1 << uint(ov.inVC)
			r.saPorts |= 1 << uint(ov.inPort)
			r.fastArmed = false
		}
	}
}

// Active reports whether ticking the router this cycle can have any effect:
// some input VC holds a packet mid-pipeline (RC, VA or active streaming), or
// an ST register still holds a flit awaiting link traversal. An inactive
// router's Tick is a no-op by construction — every stage is gated on one of
// these counters, deferred output-VC release is re-run before the next VA,
// and the policy update is idempotent at zero occupancy — so the tick engine
// skips it entirely.
func (r *Router) Active() bool {
	return r.rcCount+r.vaCount+r.activeCount+r.stPending > 0
}

// BusyCreditWires reports whether any credit this router returned upstream
// is still in flight on one of its input links. Drain detection uses it:
// once no packets are in flight, the only possible residual activity is
// credits pushed by routers that ticked last cycle.
func (r *Router) BusyCreditWires() bool {
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if l := r.in[d].link; l != nil && l.CreditsBusy() {
			return true
		}
	}
	return false
}

// Occupancy reports the occupied-input-VC count at the end of the last
// cycle.
func (r *Router) Occupancy() int { return int(r.soa.OccSnap[r.li]) }

// InPortOccupancy reports the buffered flits at the input port facing
// direction d: the congestion a packet traveling in direction d meets when
// it enters this router. This per-direction value is what DBAR propagates.
func (r *Router) InPortOccupancy(d topology.Dir) int {
	return r.in[d.Opposite()].bufFlits
}

// CongRow returns the current congestion table for direction d (read-only).
func (r *Router) CongRow(d topology.Dir) []int { return r.cong[d] }

// CongNextRow returns the next-cycle congestion table for direction d; the
// network fills it before calling SwapCong.
func (r *Router) CongNextRow(d topology.Dir) []int { return r.congNext[d] }

// SwapCong publishes the next-cycle congestion tables.
func (r *Router) SwapCong() {
	for d := range r.cong {
		r.cong[d], r.congNext[d] = r.congNext[d], r.cong[d]
	}
}

// OutputFree implements routing.CongestionView.
func (r *Router) OutputFree(d topology.Dir) int { return r.out[d].freeCredits() }

// PathOccupancy implements routing.CongestionView.
func (r *Router) PathOccupancy(d topology.Dir, hops int) int {
	row := r.cong[d]
	if hops > len(row) {
		hops = len(row)
	}
	sum := 0
	for k := 0; k < hops; k++ {
		sum += row[k]
	}
	return sum
}

// Tick advances the router one cycle. Stages run in reverse pipeline order
// (ST, SA, VA, RC) over latched state, so each flit advances at most one
// stage per cycle.
func (r *Router) Tick(now int64) {
	r.now = now
	for m := r.freeablePorts; m != 0; m &= m - 1 {
		r.out[bits.TrailingZeros8(m)].free()
	}
	r.freeablePorts = 0
	if r.fastArmed {
		r.fastTick()
	} else {
		r.switchTraversal()
		r.switchAllocation()
	}
	r.vcAllocation()
	r.routeCompute()
	r.updatePolicy()
}

// saPriority returns the policy's SA priority for a packet, through the
// lookup table when the policy tabulates (bypassing Requestor construction
// and the interface call).
func (r *Router) saPriority(p *msg.Packet) int {
	if t := r.saTab; t != nil {
		return int(t[b2i(r.app >= 0 && p.App == r.app)])
	}
	return r.pol.SAPriority(policy.FromPacket(p, r.app), r.now)
}

// vaPriority is saPriority's VA_out counterpart.
func (r *Router) vaPriority(p *msg.Packet, cls policy.VCClass) int {
	if t := r.vaTab; t != nil {
		return int(t[cls][b2i(r.app >= 0 && p.App == r.app)])
	}
	return r.pol.VAOutPriority(policy.FromPacket(p, r.app), cls, r.now)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// chargeLoss attributes one stalled cycle of an arbitration loser to the
// winner's region class: same application (RAIR: same region) is native
// contention, anything else is foreign interference.
func (r *Router) chargeLoss(loser, winner *msg.Packet) {
	if winner.App == loser.App {
		r.tel.Charge(loser, msg.BlameNative)
	} else {
		r.tel.Charge(loser, msg.BlameForeign)
	}
}

// chargeBlocked attributes one stalled cycle of pkt to the owners of the
// occupied output VCs blocking it: foreign wins over native as soon as any
// blocker belongs to another application ("any-foreign wins"); def covers
// the no-visible-blocker case (site-specific, see callers).
func (r *Router) chargeBlocked(pkt *msg.Packet, out *OutputPort, occupied vcMask, def int) {
	cause := -1
	for m := occupied; m != 0; m &= m - 1 {
		o := out.vcs[bits.TrailingZeros64(m)].owner
		if o == nil || o == pkt {
			continue
		}
		if o.App != pkt.App {
			cause = msg.BlameForeign
			break
		}
		cause = msg.BlameNative
	}
	if cause < 0 {
		cause = def
	}
	r.tel.Charge(pkt, cause)
}

// chargeSAStall attributes one cycle of a head-pending VC that failed SA_in
// eligibility. Precedence: a held ST register means fault (fault-free links
// drain ST every cycle); waiting on the escape VC's credit is escape
// serialization; otherwise a credit stall charged to the co-resident owners
// of the output port's VCs, defaulting to native when none are visible
// (downstream congestion the local router cannot classify).
func (r *Router) chargeSAStall(vc *inputVC, out *OutputPort) {
	switch {
	case out.stValid:
		r.tel.Charge(vc.owner, msg.BlameFault)
	case r.vcKind[vc.outVC] == policy.VCEscape:
		r.tel.Charge(vc.owner, msg.BlameEscape)
	default:
		occ := (r.allMask &^ out.freeMask) &^ (1 << uint(vc.outVC))
		r.chargeBlocked(vc.owner, out, occ, msg.BlameNative)
	}
}

// switchTraversal moves last cycle's SA winners onto their links (ST + LT),
// visiting only the output ports whose ST register is occupied.
func (r *Router) switchTraversal() {
	if r.stPending == 0 {
		return
	}
	kept := r.stList[:0]
	for _, d := range r.stList {
		out := r.out[d]
		if out.link != nil && out.link.CanSendFlit() {
			out.link.SendFlit(out.st)
			out.stValid = false
			r.stPending--
			r.soa.Work[r.li]--
			r.flitsSent[d]++
			if r.tel != nil {
				r.tel.LinkFlit()
				if out.st.Type.IsHead() && r.tel.Traced(out.st.Pkt.ID) {
					r.tel.Lifecycle(out.st.Pkt.ID, telemetry.StageST, r.now)
				}
			}
		} else {
			kept = append(kept, d)
			if r.attr && out.st.Type.IsHead() {
				// Fault-free links always accept the ST flit after the
				// link phase, so a head pinned here can only be a faulty
				// link's retransmission hold.
				r.tel.Charge(out.st.Pkt, msg.BlameFault)
			}
		}
	}
	r.stList = kept
}

// FlitsSent reports the flits this router has pushed onto the output link
// at dir since construction (link-utilization instrumentation).
func (r *Router) FlitsSent(dir topology.Dir) int64 { return r.flitsSent[dir] }

// FastTicks reports how many cycles the router advanced through the
// event-driven streaming fast path (engine self-profiling).
func (r *Router) FastTicks() int64 { return r.fastTicks }

// fastTick advances each armed stream one flit through a fused ST+SA step:
// send the latched flit, then pop the stream's next flit straight into the
// just-drained ST register, skipping re-arbitration. Bit-exact with the
// slow path by construction: the plan only arms when the previous cycle's
// allocation was forced (single candidate per port, no contention, no held
// ST), GrantSingle is idempotent for a repeating sole winner, and every
// event that could change the outcome disarms back to the slow path. The
// ST register stays logically occupied across the pump (stValid, stPending,
// Work and stList are all net-unchanged), exactly as a send-then-relatch
// cycle of the slow path leaves them.
func (r *Router) fastTick() {
	r.fastTicks++
	if r.tel != nil {
		r.saStallScan()
	}
	for k := 0; k < r.fastN; k++ {
		s := &r.fastPlan[k]
		out := s.out
		if out.link == nil || !out.link.CanSendFlit() {
			// Link hold (faulty-link retransmission): keep the ST flit,
			// charge as the slow keep path would, and fall back — the held
			// register changes next cycle's allocation outcome.
			if r.attr && out.st.Type.IsHead() {
				r.tel.Charge(out.st.Pkt, msg.BlameFault)
			}
			r.fastArmed = false
			continue
		}
		out.link.SendFlit(out.st)
		r.flitsSent[s.outDir]++
		if r.tel != nil {
			r.tel.LinkFlit()
			if out.st.Type.IsHead() && r.tel.Traced(out.st.Pkt.ID) {
				r.tel.Lifecycle(out.st.Pkt.ID, telemetry.StageST, r.now)
			}
		}
		vc := s.ivc
		if vc.buf.Empty() {
			r.fastUnlatch(s)
			continue
		}
		ov := &out.vcs[vc.outVC]
		if !out.ejection && ov.credits == 0 {
			// The stream ran dry downstream: this cycle's slow path would
			// have found the VC ineligible after draining ST (one credit
			// stall), so release the register and re-arm the slow path.
			if r.tel != nil {
				r.tel.CreditStall()
			}
			r.fastUnlatch(s)
			continue
		}
		// Fused SA pop. The flit can never be a head (heads enter through
		// RC/VA/allocate, which disarms), so none of the head-only
		// bookkeeping of the slow transfer applies.
		f, _ := vc.buf.Pop()
		s.inp.bufFlits--
		if vc.buf.Empty() {
			s.inp.occMask &^= 1 << uint(vc.idx)
		}
		f.VC = vc.outVC
		out.st = f
		if r.tel != nil {
			native := r.regions.Native(r.node, vc.owner.App)
			r.tel.SAInGrant(native)
			r.tel.SAOutGrant(native)
		}
		if !out.ejection {
			ov.credits--
			out.creditSum--
			out.fullMask &^= 1 << uint(vc.outVC)
			if ov.credits == 0 {
				out.creditMask &^= 1 << uint(vc.outVC)
			}
		}
		if s.inp.link != nil {
			if !s.inp.link.CanSendCredit() {
				panic("router: credit wire busy (more than one dequeue per port per cycle)")
			}
			s.inp.link.SendCredit(vc.idx)
		}
		if f.Type.IsTail() {
			if r.app >= 0 && vc.owner.App == r.app {
				r.soa.NativeOcc[r.li]--
			} else {
				r.soa.ForeignOcc[r.li]--
			}
			vc.stage = stageIdle
			vc.owner = nil
			ov.tailSent = true
			out.drainMask |= 1 << uint(vc.outVC)
			out.streamMask &^= 1 << uint(vc.outVC)
			r.freeablePorts |= 1 << uint(vc.outPort)
			r.activeCount--
			r.soa.Work[r.li]--
			s.inp.activeMask &^= 1 << uint(vc.idx)
			// The latched tail goes out through the next slow ST pass
			// (stList still carries the port).
			r.fastArmed = false
		}
		// Keep the candidate bit exact across the pop: clear it when the
		// buffer emptied, the last credit drained, or a tail retired the
		// stream (the clear-only mirror of the slow transfer's update).
		if f.Type.IsTail() || vc.buf.Empty() || (!out.ejection && ov.credits == 0) {
			if s.inp.saElig>>uint(vc.idx)&1 == 1 {
				s.inp.saElig &^= 1 << uint(vc.idx)
				if s.inp.saElig == 0 {
					r.saPorts &^= 1 << uint(s.inp.dir)
				}
			}
		}
	}
}

// fastUnlatch retires an armed stream's ST register: the flit just left and
// the stream has nothing to chain (empty buffer or dry credits), so release
// the latch exactly as the slow ST stage would have and fall back to the
// slow path.
func (r *Router) fastUnlatch(s *fastStream) {
	s.out.stValid = false
	r.stPending--
	r.soa.Work[r.li]--
	for i := range r.stList {
		if r.stList[i] == s.outDir {
			r.stList = append(r.stList[:i], r.stList[i+1:]...)
			break
		}
	}
	r.fastArmed = false
}

// saStallScan replays the per-cycle stall telemetry the old full rescan
// produced as a side effect: every active, non-empty VC missing from the
// candidate set failed eligibility this cycle — a credit stall (unless its
// output ST is held, which attribution classifies as a fault hold). The
// counters are order-insensitive sums within a cycle, so emitting them from
// a separate scan is bit-identical to emitting them inline. Only runs with
// telemetry attached; with it off, stalled VCs cost nothing.
func (r *Router) saStallScan() {
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		in := r.in[d]
		for m := in.activeMask & in.occMask &^ in.saElig; m != 0; m &= m - 1 {
			vc := &in.vcs[bits.TrailingZeros64(m)]
			out := r.out[vc.outPort]
			if !out.stValid {
				r.tel.CreditStall()
			}
			if r.attr && vc.headPending {
				r.chargeSAStall(vc, out)
			}
		}
	}
}

// switchAllocation performs SA_in (one candidate VC per input port) and
// SA_out (one winner per output port), both under the policy's SA priority
// (MSP, Section IV.B). The winning flit is dequeued, its buffer credit is
// returned upstream, and it is latched into the ST register.
//
// The candidate sets are not rescanned here: SA_in walks the persistent
// per-port saElig masks (maintained at the eligibility event sites), so a
// cycle's cost is proportional to the VCs that can actually move, not the
// VCs provisioned. When the whole cycle resolves without arbitration, the
// granted streams are recorded as a fast plan for event-driven streaming
// (see fastTick).
func (r *Router) switchAllocation() {
	if r.activeCount == 0 {
		return
	}
	if r.tel != nil {
		r.saStallScan()
	}
	if r.saPorts == 0 {
		return
	}
	v := r.nvc
	// fastOK tracks whether this cycle's outcome was forced — no choice
	// made by an arbiter anywhere, no ST register still held from last
	// cycle — so replaying it is trivially deterministic. Only then may
	// the granted streams arm the fast path.
	fastOK := r.stPending == 0
	r.fastN = 0
	// nomMask marks input ports whose SA_in nomination survived; only
	// those r.saOutVC entries are live this cycle (stale pointers from
	// earlier cycles are never read, so the array is not cleared).
	var nomMask uint8
	// SA_in: nominate one VC per input port, visiting only ports with a
	// candidate and only the candidate VCs themselves (the persistent
	// saElig sets). The one eligibility term the sets do not carry — the
	// output ST register, which toggles every busy cycle — is filtered
	// here per candidate; a held register means the last send was pinned
	// by a faulty link, so the branch is almost never taken. Ports with a
	// single surviving candidate skip priority computation and the
	// arbiter scan (the outcome cannot depend on either). r.saReq stays
	// all-false between ports: only the multi-candidate branch sets
	// entries, and it clears them after use.
	for pm := r.saPorts; pm != 0; pm &= pm - 1 {
		d := topology.Dir(bits.TrailingZeros8(pm))
		in := r.in[d]
		var elig vcMask
		first, n := 0, 0
		for m := in.saElig; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			vc := &in.vcs[i]
			if r.out[vc.outPort].stValid {
				if r.attr && vc.headPending {
					r.chargeSAStall(vc, r.out[vc.outPort])
				}
				continue
			}
			elig |= 1 << uint(i)
			if n == 0 {
				first = i
			}
			n++
		}
		switch n {
		case 0:
		case 1:
			r.saInArb[d].GrantSingle(first)
			r.saOutVC[d] = &in.vcs[first]
			nomMask |= 1 << uint(d)
			if r.tel != nil {
				r.tel.SAInGrant(r.regions.Native(r.node, in.vcs[first].owner.App))
			}
		default:
			fastOK = false
			for c := elig; c != 0; c &= c - 1 {
				i := bits.TrailingZeros64(c)
				r.saReq[i] = true
				r.saPrio[i] = r.saPriority(in.vcs[i].owner)
			}
			w := r.saInArb[d].Grant(r.saReq[:v], r.saPrio[:v])
			if w != arbiter.None {
				r.saOutVC[d] = &in.vcs[w]
				nomMask |= 1 << uint(d)
			}
			if r.tel != nil {
				for c := elig; c != 0; c &= c - 1 {
					i := bits.TrailingZeros64(c)
					native := r.regions.Native(r.node, in.vcs[i].owner.App)
					if i == w {
						r.tel.SAInGrant(native)
					} else {
						r.tel.SAInDeny(native)
					}
				}
			}
			if r.attr && w >= 0 {
				winner := in.vcs[w].owner
				for c := elig; c != 0; c &= c - 1 {
					i := bits.TrailingZeros64(c)
					if i != w && in.vcs[i].headPending {
						r.chargeLoss(in.vcs[i].owner, winner)
					}
				}
			}
			for c := elig; c != 0; c &= c - 1 {
				r.saReq[bits.TrailingZeros64(c)] = false
			}
		}
	}
	// SA_out: arbitrate nominated VCs per output port. Only output ports
	// that actually received a nomination are visited; an uncontended
	// nomination (the common case) bypasses the request-row build and the
	// arbiter scan with the exact same outcome.
	var doneMask uint8
	for nm := nomMask; nm != 0; nm &= nm - 1 {
		id := topology.Dir(bits.TrailingZeros8(nm))
		vc := r.saOutVC[id]
		od := vc.outPort
		if doneMask>>uint(od)&1 == 1 {
			continue
		}
		doneMask |= 1 << uint(od)
		contended := false
		for nm2 := nm & (nm - 1); nm2 != 0; nm2 &= nm2 - 1 {
			if r.saOutVC[bits.TrailingZeros8(nm2)].outPort == od {
				contended = true
				break
			}
		}
		if !contended {
			r.saOutArb[od].GrantSingle(int(id))
			if r.tel != nil {
				r.tel.SAOutGrant(r.regions.Native(r.node, vc.owner.App))
			}
			if r.transfer(id, vc) {
				fastOK = false
			} else if fastOK {
				r.fastPlan[r.fastN] = fastStream{ivc: vc, inp: r.in[id], out: r.out[od], outDir: od}
				r.fastN++
			}
			continue
		}
		fastOK = false
		for id2 := topology.Dir(0); id2 < topology.NumDirs; id2++ {
			req := nomMask>>uint(id2)&1 == 1 && r.saOutVC[id2].outPort == od
			r.saOutReq[od][id2] = req
			if req {
				r.saOutPri[od][id2] = r.saPriority(r.saOutVC[id2].owner)
			}
		}
		w := r.saOutArb[od].Grant(r.saOutReq[od][:], r.saOutPri[od][:])
		if r.tel != nil {
			for id2 := topology.Dir(0); id2 < topology.NumDirs; id2++ {
				if !r.saOutReq[od][id2] {
					continue
				}
				native := r.regions.Native(r.node, r.saOutVC[id2].owner.App)
				if int(id2) == w {
					r.tel.SAOutGrant(native)
				} else {
					r.tel.SAOutDeny(native)
				}
			}
		}
		if r.attr && w >= 0 {
			winner := r.saOutVC[w].owner
			for id2 := topology.Dir(0); id2 < topology.NumDirs; id2++ {
				if r.saOutReq[od][id2] && int(id2) != w && r.saOutVC[id2].headPending {
					r.chargeLoss(r.saOutVC[id2].owner, winner)
				}
			}
		}
		if w == arbiter.None {
			continue
		}
		r.transfer(topology.Dir(w), r.saOutVC[w])
	}
	// Arm the fast path when this cycle's outcome was forced end to end:
	// no ST held over, every port had a single candidate, nothing
	// contended, no tails — and each granted output port carries exactly
	// one live stream. The last condition keeps the fast-mode stall scan
	// exact: a second stream stalled against a planned port would be
	// classified against a latched ST register that the slow replay
	// would already have drained. Single-stream ports rule such
	// co-residents out, and new streams arrive only through allocate,
	// which disarms unconditionally.
	if fastOK && r.fastN > 0 {
		armed := true
		for k := 0; k < r.fastN; k++ {
			if bits.OnesCount64(r.fastPlan[k].out.streamMask) != 1 {
				armed = false
				break
			}
		}
		r.fastArmed = armed
	}
}

// transfer dequeues one flit from vc and latches it into the ST register of
// its allocated output port. It reports whether the flit was the packet's
// tail (a tail retires the stream, which forbids fast-path arming).
func (r *Router) transfer(inDir topology.Dir, vc *inputVC) bool {
	out := r.out[vc.outPort]
	ov := &out.vcs[vc.outVC]
	f, ok := vc.buf.Pop()
	if !ok {
		panic("router: SA granted an empty VC")
	}
	in := r.in[inDir]
	in.bufFlits--
	if vc.buf.Empty() {
		in.occMask &^= 1 << uint(vc.idx)
	}
	f.VC = vc.outVC
	if f.Type.IsHead() {
		f.Pkt.Hops++
		vc.headPending = false
		if r.tel != nil && r.tel.Traced(f.Pkt.ID) {
			r.tel.Lifecycle(f.Pkt.ID, telemetry.StageSA, r.now)
		}
	}
	if out.stValid {
		panic("router: ST register collision")
	}
	out.st = f
	out.stValid = true
	r.stPending++
	r.soa.Work[r.li]++
	r.stList = append(r.stList, vc.outPort)
	if !out.ejection {
		if ov.credits <= 0 {
			panic("router: SA granted without credit")
		}
		ov.credits--
		out.creditSum--
		out.fullMask &^= 1 << uint(vc.outVC)
		if ov.credits == 0 {
			out.creditMask &^= 1 << uint(vc.outVC)
		}
	}
	if in.link != nil {
		if !in.link.CanSendCredit() {
			panic("router: credit wire busy (more than one dequeue per port per cycle)")
		}
		in.link.SendCredit(vc.idx)
	}
	tail := f.Type.IsTail()
	if tail {
		if r.app >= 0 && vc.owner.App == r.app {
			r.soa.NativeOcc[r.li]--
		} else {
			r.soa.ForeignOcc[r.li]--
		}
		vc.stage = stageIdle
		vc.owner = nil
		ov.tailSent = true
		out.drainMask |= 1 << uint(vc.outVC)
		out.streamMask &^= 1 << uint(vc.outVC)
		r.freeablePorts |= 1 << uint(vc.outPort)
		r.activeCount--
		r.soa.Work[r.li]--
		in.activeMask &^= 1 << uint(vc.idx)
	}
	// The pop can only shrink the candidate set: drop the bit when the
	// buffer emptied, the last credit drained, or a tail retired the
	// stream. All three terms are already in registers here, so the
	// update is branch-plus-mask instead of a re-derivation.
	if tail || vc.buf.Empty() || (!out.ejection && ov.credits == 0) {
		if in.saElig>>uint(vc.idx)&1 == 1 {
			in.saElig &^= 1 << uint(vc.idx)
			if in.saElig == 0 {
				r.saPorts &^= 1 << uint(inDir)
			}
		}
		return tail
	}
	return false
}

// vcAllocation performs VA for every input VC in the VA stage: the
// contention-free VA_in step picks one output VC request per input VC, and
// the VA_out step arbitrates per output VC under the policy's VC
// regionalization priorities.
func (r *Router) vcAllocation() {
	if r.vaCount == 0 {
		return
	}
	v := r.nvc
	r.vaTouched = r.vaTouched[:0]
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		in := r.in[d]
		for m := in.vaMask; m != 0; m &= m - 1 {
			vc := &in.vcs[bits.TrailingZeros64(m)]
			outGlobal, cls := r.vaInput(vc)
			if outGlobal < 0 {
				continue
			}
			inGlobal := int(d)*v + vc.idx
			if r.vaReqN[outGlobal] == 0 {
				r.vaTouched = append(r.vaTouched, outGlobal)
			}
			r.vaReqN[outGlobal]++
			r.vaSingle[outGlobal] = inGlobal
			r.vaReq[outGlobal][inGlobal] = true
			r.vaPrio[outGlobal][inGlobal] = r.vaPriority(vc.owner, cls)
		}
	}
	for _, og := range r.vaTouched {
		if r.vaReqN[og] == 1 {
			// Uncontended output VC: grant directly, clearing only the
			// one filed request instead of rescanning the whole row.
			w := r.vaArb[og].GrantSingle(r.vaSingle[og])
			r.vaReq[og][w] = false
			r.vaReqN[og] = 0
			r.allocate(og, w)
			continue
		}
		w := r.vaArb[og].Grant(r.vaReq[og], r.vaPrio[og])
		if r.tel != nil {
			for i, req := range r.vaReq[og] {
				if req && i != w {
					lost := &r.in[topology.Dir(i/v)].vcs[i%v]
					r.tel.VADeny(r.regions.Native(r.node, lost.owner.App))
				}
			}
		}
		if r.attr && w >= 0 {
			// Losers of a VA_out arbitration: serialized on the escape VC
			// when that is what they competed for, otherwise blocked by
			// the winner's region class.
			escape := r.vcKind[og%v] == policy.VCEscape
			winner := r.in[topology.Dir(w/v)].vcs[w%v].owner
			for i, req := range r.vaReq[og] {
				if !req || i == w {
					continue
				}
				loser := r.in[topology.Dir(i/v)].vcs[i%v].owner
				if escape {
					r.tel.Charge(loser, msg.BlameEscape)
				} else {
					r.chargeLoss(loser, winner)
				}
			}
		}
		if w != arbiter.None {
			r.allocate(og, w)
		}
		for i := range r.vaReq[og] {
			r.vaReq[og][i] = false
		}
		r.vaReqN[og] = 0
	}
}

// vaInput is the VA_in step for one input VC: route computation candidates,
// the selection function (or the forced escape direction on every other
// attempt, which guarantees the Duato escape path is requested under
// sustained congestion), then the choice of one free output VC. It returns
// the global output VC index requested (or -1) and its class.
func (r *Router) vaInput(vc *inputVC) (int, policy.VCClass) {
	pkt := vc.owner
	re := &r.routes[pkt.Dst]
	if re.n == 0 {
		r.dirBuf = r.alg.Candidates(r.node, pkt.Dst, r.dirBuf[:0])
		if len(r.dirBuf) > len(re.dirs) {
			panic(fmt.Sprintf("router: %d route candidates exceed the cache width", len(r.dirBuf)))
		}
		re.n = uint8(copy(re.dirs[:], r.dirBuf))
		re.esc = r.alg.EscapeDir(r.node, pkt.Dst)
	}
	escDir := re.esc
	var port topology.Dir
	switch {
	case re.n == 1:
		port = re.dirs[0]
	case vc.vaAttempts%2 == 1:
		port = escDir
	default:
		port = r.sel.Select(r.node, pkt.Dst, re.dirs[:re.n], r)
	}
	vc.vaAttempts++
	out := r.out[port]
	if out.link == nil && !out.ejection {
		panic(fmt.Sprintf("router %d: route to unconnected port %v", r.node, port))
	}
	// Free-VC search: the candidate window is the intersection of the
	// port's free-VC mask with the packet class's VC range; escape VCs
	// are masked out unless the request targets the escape direction.
	// Within the window, traffic prefers the VC class matching its nature
	// (global traffic → global VCs), falls back to the other adaptive
	// class, and takes the escape VC last; any traffic may use any class
	// (VC regionalization partitions by priority, not by admission —
	// Section IV.A), so no VC sits idle while traffic waits. Each
	// preference tier is one mask intersection, lowest index first (the
	// same VC the old per-candidate minimum scan chose).
	free := out.freeMask & r.classWindow[pkt.Class]
	if port != escDir {
		free &^= r.escapeMask
	}
	if free == 0 {
		if r.attr {
			// No output VC to request: blocked by whoever owns the VCs of
			// this packet's class window. With no visible owner the only
			// candidate was the masked-out escape VC — escape
			// serialization by definition.
			occ := r.classWindow[pkt.Class] &^ out.freeMask
			r.chargeBlocked(pkt, out, occ, msg.BlameEscape)
		}
		return -1, 0
	}
	first, second := r.regionalMask, r.globalMask
	firstCls, secondCls := policy.VCRegional, policy.VCGlobal
	if pkt.Global {
		first, second = second, first
		firstCls, secondCls = secondCls, firstCls
	}
	var chosen int
	var chosenCls policy.VCClass
	switch {
	case free&first != 0:
		chosen, chosenCls = bits.TrailingZeros64(free&first), firstCls
	case free&second != 0:
		chosen, chosenCls = bits.TrailingZeros64(free&second), secondCls
	default:
		chosen, chosenCls = bits.TrailingZeros64(free), policy.VCEscape
	}
	return int(port)*r.nvc + chosen, chosenCls
}

// allocate commits a VA_out grant: output VC og to the input VC with global
// index w.
func (r *Router) allocate(og, w int) {
	v := r.nvc
	port := topology.Dir(og / v)
	ovIdx := og % v
	in := r.in[topology.Dir(w/v)]
	vc := &in.vcs[w%v]
	out := r.out[port]
	ov := &out.vcs[ovIdx]
	if ov.owner != nil {
		panic("router: VA granted an occupied output VC")
	}
	if ov.credits != r.cfg.Depth {
		panic("router: output VC allocated before credits drained")
	}
	if r.tel != nil {
		r.tel.VAGrant(r.regions.Native(r.node, vc.owner.App))
		if r.tel.Traced(vc.owner.ID) {
			r.tel.Lifecycle(vc.owner.ID, telemetry.StageVA, r.now)
		}
	}
	ov.owner = vc.owner
	ov.tailSent = false
	ov.inPort = int8(w / v)
	ov.inVC = int8(w % v)
	out.allocated++
	out.freeMask &^= 1 << uint(ovIdx)
	out.streamMask |= 1 << uint(ovIdx)
	vc.outPort = port
	vc.outVC = ovIdx
	vc.stage = stageActive
	r.vaCount--
	r.activeCount++
	in.vaMask &^= 1 << uint(vc.idx)
	in.activeMask |= 1 << uint(vc.idx)
	// The new stream is always an immediate SA candidate: its head is
	// still buffered (pops require Active) and the output VC's credit
	// stock is full (asserted above). The newcomer must re-enter
	// arbitration, so any armed fast plan is invalidated.
	in.saElig |= 1 << uint(vc.idx)
	r.saPorts |= 1 << uint(w/v)
	r.fastArmed = false
}

// routeCompute advances heads that arrived last cycle into the VA stage.
func (r *Router) routeCompute() {
	if r.rcCount == 0 {
		return
	}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		in := r.in[d]
		m := in.rcMask
		if m == 0 {
			continue
		}
		in.rcMask = 0
		in.vaMask |= m
		for ; m != 0; m &= m - 1 {
			vc := &in.vcs[bits.TrailingZeros64(m)]
			vc.stage = stageVA
			r.vaCount++
			r.rcCount--
			if r.tel != nil && r.tel.Traced(vc.owner.ID) {
				r.tel.Lifecycle(vc.owner.ID, telemetry.StageRC, r.now)
			}
		}
	}
}

// updatePolicy feeds the DPA registers: occupied VCs held by native vs
// foreign traffic across the whole router (Section IV.C counts all VCs, not
// just one port). The counts are maintained incrementally at head arrival
// and tail departure; the policy applies the new state next cycle.
func (r *Router) updatePolicy() {
	nat, frn := r.soa.NativeOcc[r.li], r.soa.ForeignOcc[r.li]
	r.pol.Update(int(nat), int(frn))
	r.soa.OccSnap[r.li] = nat + frn
	if r.telDPA != nil {
		if nh := r.telDPA.NativeHigh(); nh != r.telNativeHigh {
			r.tel.DPATransition(nh)
			r.telNativeHigh = nh
		}
	}
}

// BufferedFlits reports the total flits buffered in all input VCs (used by
// drain detection and tests).
func (r *Router) BufferedFlits() int {
	n := 0
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		for i := range r.in[d].vcs {
			n += r.in[d].vcs[i].buf.Len()
		}
	}
	for _, out := range r.out {
		if out.stValid {
			n++
		}
	}
	return n
}

// OldestOwner returns the earliest-created packet currently holding any
// input VC, or nil. The network's starvation watchdog uses it.
func (r *Router) OldestOwner() *msg.Packet {
	var oldest *msg.Packet
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		for i := range r.in[d].vcs {
			vc := &r.in[d].vcs[i]
			if vc.owner != nil && (oldest == nil || vc.owner.CreatedAt < oldest.CreatedAt) {
				oldest = vc.owner
			}
		}
	}
	return oldest
}
