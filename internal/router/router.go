package router

import (
	"fmt"

	"rair/internal/arbiter"
	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/routing"
	"rair/internal/topology"
)

// Router is one node's pipelined VC router. Each router is tagged with the
// application number assigned to its node (Figure 5); packets carry their
// own application number, and the match classifies them as native or
// foreign traffic for the policy.
type Router struct {
	cfg     Config
	node    int
	app     int
	mesh    *topology.Mesh
	regions *region.Map
	alg     routing.Algorithm
	sel     routing.Selector
	pol     policy.Policy

	in  [topology.NumDirs]*InputPort
	out [topology.NumDirs]*OutputPort

	vaArb    []*arbiter.Prioritized // per global output VC index
	saInArb  [topology.NumDirs]*arbiter.Prioritized
	saOutArb [topology.NumDirs]*arbiter.Prioritized

	// VA scratch state, reused every cycle.
	vaReq     [][]bool
	vaPrio    [][]int
	vaTouched []int
	dirBuf    []topology.Dir

	// SA scratch state.
	saReq    []bool
	saPrio   []int
	saOutVC  [topology.NumDirs]*inputVC // SA_in winner per input port
	saOutReq [topology.NumDirs][topology.NumDirs]bool
	saOutPri [topology.NumDirs][topology.NumDirs]int

	// DBAR congestion tables: cong[d][k] is the (k+1)-cycle-old occupancy
	// of the router k+1 hops away in direction d. The network fills
	// congNext from neighbors each cycle and swaps.
	cong     [topology.NumDirs][]int
	congNext [topology.NumDirs][]int
	occSnap  int

	// Stage population counters let idle routers skip whole pipeline
	// stages; occupancy counters make the per-cycle DPA update O(1).
	rcCount     int
	vaCount     int
	activeCount int
	nativeOcc   int
	foreignOcc  int

	// flitsSent counts flits pushed onto each output link (utilization
	// instrumentation).
	flitsSent [topology.NumDirs]int64

	now int64
}

// New creates a router for node (application app, or -1 when unassigned).
// Links are attached afterwards with ConnectIn/ConnectOut.
func New(cfg Config, node, app int, mesh *topology.Mesh, regions *region.Map,
	alg routing.Algorithm, sel routing.Selector, pol policy.Policy) *Router {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := &Router{
		cfg: cfg, node: node, app: app, mesh: mesh, regions: regions,
		alg: alg, sel: sel, pol: pol,
	}
	v := cfg.VCsPerPort()
	nOut := int(topology.NumDirs) * v
	nIn := int(topology.NumDirs) * v
	r.vaArb = make([]*arbiter.Prioritized, nOut)
	r.vaReq = make([][]bool, nOut)
	r.vaPrio = make([][]int, nOut)
	for i := range r.vaArb {
		r.vaArb[i] = arbiter.NewPrioritized(nIn)
		r.vaReq[i] = make([]bool, nIn)
		r.vaPrio[i] = make([]int, nIn)
	}
	r.saReq = make([]bool, v)
	r.saPrio = make([]int, v)
	rowLen := mesh.W
	if mesh.H > rowLen {
		rowLen = mesh.H
	}
	rowLen--
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		r.in[d] = newInputPort(cfg, d, nil)
		r.out[d] = newOutputPort(cfg, d, nil, d == topology.Local)
		r.saInArb[d] = arbiter.NewPrioritized(v)
		r.saOutArb[d] = arbiter.NewPrioritized(int(topology.NumDirs))
		r.cong[d] = make([]int, rowLen)
		r.congNext[d] = make([]int, rowLen)
	}
	return r
}

// Node returns the router's node id.
func (r *Router) Node() int { return r.node }

// App returns the application assigned to the router's node (-1 if none).
func (r *Router) App() int { return r.app }

// Policy returns the router's interference-reduction policy instance.
func (r *Router) Policy() policy.Policy { return r.pol }

// ConnectIn attaches the upstream link feeding the input port at dir.
func (r *Router) ConnectIn(dir topology.Dir, l *Link) { r.in[dir].link = l }

// ConnectOut attaches the downstream link driven by the output port at dir.
func (r *Router) ConnectOut(dir topology.Dir, l *Link) { r.out[dir].link = l }

// DeliverFlit accepts a flit arriving on the input port at dir. The network
// calls it when the attached link's delay elapses.
func (r *Router) DeliverFlit(dir topology.Dir, f msg.Flit) {
	r.in[dir].deliver(f)
	if f.Type.IsHead() {
		r.rcCount++
		if r.regions.Native(r.node, f.Pkt.App) {
			r.nativeOcc++
		} else {
			r.foreignOcc++
		}
	}
}

// DeliverCredit accepts a credit returned on the output port at dir.
func (r *Router) DeliverCredit(dir topology.Dir, vc int) {
	r.out[dir].deliverCredit(vc, r.cfg.Depth)
}

// Occupancy reports the occupied-input-VC count at the end of the last
// cycle.
func (r *Router) Occupancy() int { return r.occSnap }

// InPortOccupancy reports the buffered flits at the input port facing
// direction d: the congestion a packet traveling in direction d meets when
// it enters this router. This per-direction value is what DBAR propagates.
func (r *Router) InPortOccupancy(d topology.Dir) int {
	return r.in[d.Opposite()].bufFlits
}

// CongRow returns the current congestion table for direction d (read-only).
func (r *Router) CongRow(d topology.Dir) []int { return r.cong[d] }

// CongNextRow returns the next-cycle congestion table for direction d; the
// network fills it before calling SwapCong.
func (r *Router) CongNextRow(d topology.Dir) []int { return r.congNext[d] }

// SwapCong publishes the next-cycle congestion tables.
func (r *Router) SwapCong() {
	for d := range r.cong {
		r.cong[d], r.congNext[d] = r.congNext[d], r.cong[d]
	}
}

// OutputFree implements routing.CongestionView.
func (r *Router) OutputFree(d topology.Dir) int { return r.out[d].freeCredits() }

// PathOccupancy implements routing.CongestionView.
func (r *Router) PathOccupancy(d topology.Dir, hops int) int {
	row := r.cong[d]
	if hops > len(row) {
		hops = len(row)
	}
	sum := 0
	for k := 0; k < hops; k++ {
		sum += row[k]
	}
	return sum
}

// Tick advances the router one cycle. Stages run in reverse pipeline order
// (ST, SA, VA, RC) over latched state, so each flit advances at most one
// stage per cycle.
func (r *Router) Tick(now int64) {
	r.now = now
	for _, out := range r.out {
		out.free(r.cfg.Depth)
	}
	r.switchTraversal()
	r.switchAllocation()
	r.vcAllocation()
	r.routeCompute()
	r.updatePolicy()
}

// switchTraversal moves last cycle's SA winners onto their links (ST + LT).
func (r *Router) switchTraversal() {
	for d, out := range r.out {
		if !out.stValid || out.link == nil {
			continue
		}
		if out.link.CanSendFlit() {
			out.link.SendFlit(out.st)
			out.stValid = false
			r.flitsSent[d]++
		}
	}
}

// FlitsSent reports the flits this router has pushed onto the output link
// at dir since construction (link-utilization instrumentation).
func (r *Router) FlitsSent(dir topology.Dir) int64 { return r.flitsSent[dir] }

// switchAllocation performs SA_in (one candidate VC per input port) and
// SA_out (one winner per output port), both under the policy's SA priority
// (MSP, Section IV.B). The winning flit is dequeued, its buffer credit is
// returned upstream, and it is latched into the ST register.
func (r *Router) switchAllocation() {
	if r.activeCount == 0 {
		return
	}
	v := r.cfg.VCsPerPort()
	// SA_in: nominate one VC per input port.
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		in := r.in[d]
		r.saOutVC[d] = nil
		any := false
		for i, vc := range in.vcs {
			ok := vc.stage == stageActive && !vc.buf.Empty()
			if ok {
				out := r.out[vc.outPort]
				ov := out.vcs[vc.outVC]
				ok = !out.stValid && (out.ejection || ov.credits > 0)
			}
			r.saReq[i] = ok
			if ok {
				r.saPrio[i] = r.pol.SAPriority(policy.FromPacket(vc.owner, r.app), r.now)
				any = true
			}
		}
		if !any {
			continue
		}
		if w := r.saInArb[d].Grant(r.saReq[:v], r.saPrio[:v]); w != arbiter.None {
			r.saOutVC[d] = in.vcs[w]
		}
	}
	// SA_out: arbitrate nominated VCs per output port.
	for od := topology.Dir(0); od < topology.NumDirs; od++ {
		any := false
		for id := topology.Dir(0); id < topology.NumDirs; id++ {
			vc := r.saOutVC[id]
			req := vc != nil && vc.outPort == od
			r.saOutReq[od][id] = req
			if req {
				r.saOutPri[od][id] = r.pol.SAPriority(policy.FromPacket(vc.owner, r.app), r.now)
				any = true
			}
		}
		if !any {
			continue
		}
		w := r.saOutArb[od].Grant(r.saOutReq[od][:], r.saOutPri[od][:])
		if w == arbiter.None {
			continue
		}
		r.transfer(topology.Dir(w), r.saOutVC[w])
	}
}

// transfer dequeues one flit from vc and latches it into the ST register of
// its allocated output port.
func (r *Router) transfer(inDir topology.Dir, vc *inputVC) {
	out := r.out[vc.outPort]
	ov := out.vcs[vc.outVC]
	f, ok := vc.buf.Pop()
	if !ok {
		panic("router: SA granted an empty VC")
	}
	r.in[inDir].bufFlits--
	f.VC = vc.outVC
	if f.Type.IsHead() {
		f.Pkt.Hops++
	}
	if out.stValid {
		panic("router: ST register collision")
	}
	out.st = f
	out.stValid = true
	if !out.ejection {
		if ov.credits <= 0 {
			panic("router: SA granted without credit")
		}
		ov.credits--
	}
	if in := r.in[inDir]; in.link != nil {
		if !in.link.CanSendCredit() {
			panic("router: credit wire busy (more than one dequeue per port per cycle)")
		}
		in.link.SendCredit(vc.idx)
	}
	if f.Type.IsTail() {
		if r.regions.Native(r.node, vc.owner.App) {
			r.nativeOcc--
		} else {
			r.foreignOcc--
		}
		vc.stage = stageIdle
		vc.owner = nil
		ov.tailSent = true
		r.activeCount--
	}
}

// vcAllocation performs VA for every input VC in the VA stage: the
// contention-free VA_in step picks one output VC request per input VC, and
// the VA_out step arbitrates per output VC under the policy's VC
// regionalization priorities.
func (r *Router) vcAllocation() {
	if r.vaCount == 0 {
		return
	}
	v := r.cfg.VCsPerPort()
	r.vaTouched = r.vaTouched[:0]
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		for _, vc := range r.in[d].vcs {
			if vc.stage != stageVA {
				continue
			}
			outGlobal, cls := r.vaInput(vc)
			if outGlobal < 0 {
				continue
			}
			inGlobal := int(d)*v + vc.idx
			if r.rowEmpty(outGlobal) {
				r.vaTouched = append(r.vaTouched, outGlobal)
			}
			r.vaReq[outGlobal][inGlobal] = true
			r.vaPrio[outGlobal][inGlobal] = r.pol.VAOutPriority(policy.FromPacket(vc.owner, r.app), cls, r.now)
		}
	}
	for _, og := range r.vaTouched {
		w := r.vaArb[og].Grant(r.vaReq[og], r.vaPrio[og])
		if w != arbiter.None {
			r.allocate(og, w)
		}
		for i := range r.vaReq[og] {
			r.vaReq[og][i] = false
		}
	}
}

// rowEmpty reports whether no request has been filed yet for output VC og
// this cycle (used to track which arbiters must run).
func (r *Router) rowEmpty(og int) bool {
	for _, b := range r.vaReq[og] {
		if b {
			return false
		}
	}
	return true
}

// vaInput is the VA_in step for one input VC: route computation candidates,
// the selection function (or the forced escape direction on every other
// attempt, which guarantees the Duato escape path is requested under
// sustained congestion), then the choice of one free output VC. It returns
// the global output VC index requested (or -1) and its class.
func (r *Router) vaInput(vc *inputVC) (int, policy.VCClass) {
	pkt := vc.owner
	escDir := r.alg.EscapeDir(r.node, pkt.Dst)
	r.dirBuf = r.alg.Candidates(r.node, pkt.Dst, r.dirBuf[:0])
	var port topology.Dir
	switch {
	case len(r.dirBuf) == 1:
		port = r.dirBuf[0]
	case vc.vaAttempts%2 == 1:
		port = escDir
	default:
		port = r.sel.Select(r.node, pkt.Dst, r.dirBuf, r)
	}
	vc.vaAttempts++
	out := r.out[port]
	if out.link == nil && !out.ejection {
		panic(fmt.Sprintf("router %d: route to unconnected port %v", r.node, port))
	}
	base := r.cfg.ClassBase(pkt.Class)
	chosen := -1
	var chosenCls policy.VCClass
	bestPref := 3
	for i := base; i < base+r.cfg.VCsPerClass(); i++ {
		ov := out.vcs[i]
		if ov.owner != nil {
			continue
		}
		cls := r.cfg.KindOf(i)
		if cls == policy.VCEscape && port != escDir {
			continue
		}
		pref := r.preference(pkt, cls)
		if pref < bestPref {
			bestPref, chosen, chosenCls = pref, i, cls
		}
	}
	if chosen < 0 {
		return -1, 0
	}
	return int(port)*r.cfg.VCsPerPort() + chosen, chosenCls
}

// preference orders VA_in's choice among free output VCs: traffic prefers
// the VC class matching its nature (global traffic → global VCs), falls
// back to the other adaptive class, and takes the escape VC last. Any
// traffic may use any class (VC regionalization partitions by priority, not
// by admission — Section IV.A), so no VC sits idle while traffic waits.
func (r *Router) preference(pkt *msg.Packet, cls policy.VCClass) int {
	switch cls {
	case policy.VCEscape:
		return 2
	case policy.VCGlobal:
		if pkt.Global {
			return 0
		}
		return 1
	default: // regional
		if pkt.Global {
			return 1
		}
		return 0
	}
}

// allocate commits a VA_out grant: output VC og to the input VC with global
// index w.
func (r *Router) allocate(og, w int) {
	v := r.cfg.VCsPerPort()
	port := topology.Dir(og / v)
	ovIdx := og % v
	in := r.in[topology.Dir(w/v)]
	vc := in.vcs[w%v]
	out := r.out[port]
	ov := out.vcs[ovIdx]
	if ov.owner != nil {
		panic("router: VA granted an occupied output VC")
	}
	if ov.credits != r.cfg.Depth {
		panic("router: output VC allocated before credits drained")
	}
	ov.owner = vc.owner
	ov.tailSent = false
	out.allocated++
	vc.outPort = port
	vc.outVC = ovIdx
	vc.stage = stageActive
	r.vaCount--
	r.activeCount++
}

// routeCompute advances heads that arrived last cycle into the VA stage.
func (r *Router) routeCompute() {
	if r.rcCount == 0 {
		return
	}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		for _, vc := range r.in[d].vcs {
			if vc.stage == stageRC {
				vc.stage = stageVA
				r.vaCount++
				r.rcCount--
				if r.rcCount == 0 {
					return
				}
			}
		}
	}
}

// updatePolicy feeds the DPA registers: occupied VCs held by native vs
// foreign traffic across the whole router (Section IV.C counts all VCs, not
// just one port). The counts are maintained incrementally at head arrival
// and tail departure; the policy applies the new state next cycle.
func (r *Router) updatePolicy() {
	r.pol.Update(r.nativeOcc, r.foreignOcc)
	r.occSnap = r.nativeOcc + r.foreignOcc
}

// BufferedFlits reports the total flits buffered in all input VCs (used by
// drain detection and tests).
func (r *Router) BufferedFlits() int {
	n := 0
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		for _, vc := range r.in[d].vcs {
			n += vc.buf.Len()
		}
	}
	for _, out := range r.out {
		if out.stValid {
			n++
		}
	}
	return n
}

// OldestOwner returns the earliest-created packet currently holding any
// input VC, or nil. The network's starvation watchdog uses it.
func (r *Router) OldestOwner() *msg.Packet {
	var oldest *msg.Packet
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		for _, vc := range r.in[d].vcs {
			if vc.owner != nil && (oldest == nil || vc.owner.CreatedAt < oldest.CreatedAt) {
				oldest = vc.owner
			}
		}
	}
	return oldest
}
