// Package router implements the cycle-accurate virtual-channel wormhole
// router modeled in the paper (Figure 5): a canonical pipeline of routing
// computation (RC), VC allocation (VA, split into the contention-free
// VA input step and the policy-controlled VA output step), switch
// allocation (SA input and SA output, both policy-controlled under MSP),
// switch traversal (ST) and link traversal (LT), with credit-based flow
// control and atomic VC allocation.
//
// The interference-reduction policy (round-robin, STC-style ranking, or
// RAIR) is injected as a policy.Policy; the routing algorithm and its
// selection function come from the routing package. The router itself knows
// nothing about which policy it runs — it only supplies requestor contexts
// and VC class tags.
package router

import (
	"fmt"

	"rair/internal/msg"
	"rair/internal/policy"
)

// Config fixes the router microarchitecture parameters. The defaults follow
// Table 1 of the paper: 4 VCs per protocol class (atomic), 5 flits per VC,
// 128-bit links (one flit per cycle).
type Config struct {
	// Classes is the number of protocol message classes; each class has
	// its own disjoint VC set (protocol-level deadlock freedom).
	Classes int
	// AdaptiveVCs is the number of freely-routed VCs per class. Under
	// RAIR's VC regionalization these are split into global and regional
	// VCs; region-oblivious policies simply ignore the tags.
	AdaptiveVCs int
	// GlobalVCs is how many of the AdaptiveVCs are tagged global. The
	// paper configures regional and global VCs "roughly the same"
	// (Section VI); default is half.
	GlobalVCs int
	// EscapeVCs is the number of Duato escape VCs per class (XY-routed).
	EscapeVCs int
	// Depth is the flit capacity of each VC buffer.
	Depth int
	// LinkLatency is the flit delay of every link in cycles. The default
	// of 2 models ST→LT pipelining so that the zero-load per-hop latency
	// is the canonical 5 cycles (RC, VA, SA, ST, LT).
	LinkLatency int
	// Injectors is the number of injection slots the NI multiplexes onto
	// the local port — the concentration factor of a concentrated mesh,
	// where each of the c cores behind a router owns its own per-class
	// source queues. Zero means 1 (plain mesh, one core per router).
	Injectors int
}

// DefaultConfig returns the Table 1 configuration for the given number of
// message classes: 4 adaptive VCs (2 global / 2 regional) + 1 escape VC per
// class, 5-flit buffers.
func DefaultConfig(classes int) Config {
	return Config{
		Classes:     classes,
		AdaptiveVCs: 4,
		GlobalVCs:   2,
		EscapeVCs:   1,
		Depth:       5,
		LinkLatency: 2,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Classes < 1:
		return fmt.Errorf("router: need at least one message class")
	case c.AdaptiveVCs < 1:
		return fmt.Errorf("router: need at least one adaptive VC per class")
	case c.GlobalVCs < 0 || c.GlobalVCs > c.AdaptiveVCs:
		return fmt.Errorf("router: GlobalVCs %d outside [0,%d]", c.GlobalVCs, c.AdaptiveVCs)
	case c.EscapeVCs < 1:
		return fmt.Errorf("router: need at least one escape VC per class for deadlock freedom")
	case c.Depth < 1:
		return fmt.Errorf("router: VC depth must be >= 1")
	case c.LinkLatency < 1:
		return fmt.Errorf("router: link latency must be >= 1")
	case c.Injectors < 0:
		return fmt.Errorf("router: Injectors must be >= 0 (0 means 1)")
	case c.VCsPerPort() > 64:
		// The datapath tracks per-port VC occupancy in single-word bitmasks.
		return fmt.Errorf("router: %d VCs per port exceeds the bitmask limit of 64", c.VCsPerPort())
	}
	return nil
}

// InjectorCount reports the effective number of NI injection slots,
// treating the zero value as one.
func (c Config) InjectorCount() int {
	if c.Injectors < 1 {
		return 1
	}
	return c.Injectors
}

// VCsPerClass reports the total VCs per message class.
func (c Config) VCsPerClass() int { return c.AdaptiveVCs + c.EscapeVCs }

// VCsPerPort reports the total VCs per port across all classes.
func (c Config) VCsPerPort() int { return c.Classes * c.VCsPerClass() }

// ClassOf returns the message class a VC index belongs to.
func (c Config) ClassOf(vc int) msg.Class {
	c.checkVC(vc)
	return msg.Class(vc / c.VCsPerClass())
}

// KindOf returns the RAIR VC classification of a VC index. Within each
// class the layout is [escape... | global... | regional...].
func (c Config) KindOf(vc int) policy.VCClass {
	c.checkVC(vc)
	off := vc % c.VCsPerClass()
	switch {
	case off < c.EscapeVCs:
		return policy.VCEscape
	case off < c.EscapeVCs+c.GlobalVCs:
		return policy.VCGlobal
	default:
		return policy.VCRegional
	}
}

// ClassBase returns the first VC index of a message class.
func (c Config) ClassBase(cl msg.Class) int { return int(cl) * c.VCsPerClass() }

func (c Config) checkVC(vc int) {
	if vc < 0 || vc >= c.VCsPerPort() {
		panic(fmt.Sprintf("router: VC index %d out of range [0,%d)", vc, c.VCsPerPort()))
	}
}
