package router

import (
	"testing"

	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/topology"
)

func testNI(cfg Config) (*NI, *Link, *Link, *[]*msg.Packet) {
	mesh := topology.NewMesh(2, 1)
	regs := region.Single(mesh)
	inj := NewLink(cfg.LinkLatency)
	ej := NewLink(cfg.LinkLatency)
	var ejected []*msg.Packet
	ni := NewNI(cfg, 0, regs, inj, ej, func(p *msg.Packet, now int64) {
		ejected = append(ejected, p)
	})
	return ni, inj, ej, &ejected
}

func TestNIStreamsFlitsInOrder(t *testing.T) {
	cfg := DefaultConfig(1)
	ni, inj, _, _ := testNI(cfg)
	p := &msg.Packet{ID: 1, Src: 0, Dst: 1, Size: 3, Class: msg.ClassRequest}
	ni.Inject(p, 0)
	if ni.Created() != 1 || ni.QueueLen() != 1 {
		t.Fatal("queue accounting wrong")
	}
	var got []msg.Flit
	for c := int64(0); c < 10; c++ {
		if f, ok, _, _ := inj.Shift(); ok {
			got = append(got, f)
		}
		ni.Tick(c)
	}
	if len(got) != 3 {
		t.Fatalf("sent %d flits, want 3", len(got))
	}
	for i, f := range got {
		if f.Seq != i || f.Pkt != p {
			t.Fatalf("flit %d out of order: %+v", i, f)
		}
		if f.VC != got[0].VC {
			t.Fatal("flits switched VCs mid-packet")
		}
	}
	if p.InjectedAt < 0 {
		t.Fatal("InjectedAt not stamped")
	}
	if ni.Pending() {
		t.Fatal("NI still pending after streaming")
	}
}

func TestNIStampsPacket(t *testing.T) {
	cfg := DefaultConfig(1)
	mesh := topology.NewMesh(4, 1)
	regs := region.New(mesh)
	regs.Assign(0, 0)
	regs.Assign(1, 0)
	regs.Assign(2, 1)
	regs.Assign(3, 1)
	ni := NewNI(cfg, 0, regs, NewLink(1), NewLink(1), nil)
	intra := &msg.Packet{ID: 1, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	inter := &msg.Packet{ID: 2, Src: 0, Dst: 3, Size: 1, Class: msg.ClassRequest}
	ni.Inject(intra, 42)
	ni.Inject(inter, 43)
	if intra.CreatedAt != 42 || intra.Global || !inter.Global {
		t.Fatalf("stamping wrong: %+v %+v", intra, inter)
	}
	if intra.EjectedAt != -1 || intra.InjectedAt != -1 {
		t.Fatal("latency stamps must start unset")
	}
}

func TestNIRejectsWrongNodeOrClass(t *testing.T) {
	cfg := DefaultConfig(1)
	ni, _, _, _ := testNI(cfg)
	for _, p := range []*msg.Packet{
		{ID: 1, Src: 1, Dst: 0, Size: 1, Class: msg.ClassRequest},  // wrong node
		{ID: 2, Src: 0, Dst: 1, Size: 1, Class: msg.ClassResponse}, // unconfigured class
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("packet %v accepted", p)
				}
			}()
			ni.Inject(p, 0)
		}()
	}
}

func TestNIRespectsCredits(t *testing.T) {
	cfg := DefaultConfig(1) // depth 5
	ni, inj, _, _ := testNI(cfg)
	// 7-flit packet: only Depth flits may go out before credits return.
	p := &msg.Packet{ID: 1, Src: 0, Dst: 1, Size: 7, Class: msg.ClassRequest}
	ni.Inject(p, 0)
	sent := 0
	for c := int64(0); c < 20; c++ {
		if _, ok, _, _ := inj.Shift(); ok {
			sent++
		}
		ni.Tick(c)
	}
	if sent != cfg.Depth {
		t.Fatalf("sent %d flits without credits, want %d", sent, cfg.Depth)
	}
	// Return two credits: exactly two more flits flow.
	vc := 0
	for i, s := range ni.streams {
		if s.pkt != nil {
			vc = i
		}
	}
	ni.DeliverCredit(vc)
	ni.DeliverCredit(vc)
	for c := int64(20); c < 40; c++ {
		if _, ok, _, _ := inj.Shift(); ok {
			sent++
		}
		ni.Tick(c)
	}
	if sent != cfg.Depth+2 {
		t.Fatalf("sent %d flits after 2 credits, want %d", sent, cfg.Depth+2)
	}
}

func TestNIInterleavesTwoVCs(t *testing.T) {
	cfg := DefaultConfig(1)
	ni, inj, _, _ := testNI(cfg)
	a := &msg.Packet{ID: 1, Src: 0, Dst: 1, Size: 4, Class: msg.ClassRequest}
	b := &msg.Packet{ID: 2, Src: 0, Dst: 1, Size: 4, Class: msg.ClassRequest}
	ni.Inject(a, 0)
	ni.Inject(b, 0)
	seen := map[uint64]int{}
	for c := int64(0); c < 30; c++ {
		if f, ok, _, _ := inj.Shift(); ok {
			seen[f.Pkt.ID]++
		}
		ni.Tick(c)
	}
	if seen[1] != 4 || seen[2] != 4 {
		t.Fatalf("flit counts %v", seen)
	}
}

func TestNIVCReuseAfterDrain(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.AdaptiveVCs = 1
	cfg.GlobalVCs = 0 // two VCs total: 1 escape + 1 regional
	ni, inj, _, _ := testNI(cfg)
	// Three packets through two VCs: requires freeing drained VCs.
	for i := 1; i <= 3; i++ {
		ni.Inject(&msg.Packet{ID: uint64(i), Src: 0, Dst: 1, Size: 2, Class: msg.ClassRequest}, 0)
	}
	sent := 0
	for c := int64(0); c < 60; c++ {
		if f, ok, _, _ := inj.Shift(); ok {
			sent++
			ni.DeliverCredit(f.VC) // instant credit return
		}
		ni.Tick(c)
	}
	if sent != 6 {
		t.Fatalf("sent %d flits, want 6 (VCs not recycled?)", sent)
	}
}

func TestNIEjection(t *testing.T) {
	cfg := DefaultConfig(1)
	ni, _, _, ejected := testNI(cfg)
	p := &msg.Packet{ID: 9, Src: 1, Dst: 0, Size: 2, Class: msg.ClassRequest}
	fs := msg.Flits(p)
	ni.DeliverFlit(fs[0], 100)
	if len(*ejected) != 0 {
		t.Fatal("ejected before tail")
	}
	ni.DeliverFlit(fs[1], 101)
	if len(*ejected) != 1 || p.EjectedAt != 101 || ni.Ejected() != 1 {
		t.Fatalf("ejection bookkeeping wrong: %+v", p)
	}
}

func TestNIEjectionWrongDestPanics(t *testing.T) {
	cfg := DefaultConfig(1)
	ni, _, _, _ := testNI(cfg)
	p := &msg.Packet{ID: 9, Src: 1, Dst: 1, Size: 1, Class: msg.ClassRequest}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ni.DeliverFlit(msg.Flits(p)[0], 0)
}

func TestNIPerClassQueues(t *testing.T) {
	cfg := DefaultConfig(2)
	ni, inj, _, _ := testNI(cfg)
	req := &msg.Packet{ID: 1, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	rsp := &msg.Packet{ID: 2, Src: 0, Dst: 1, Size: 5, Class: msg.ClassResponse}
	ni.Inject(req, 0)
	ni.Inject(rsp, 0)
	classes := map[msg.Class]bool{}
	for c := int64(0); c < 20; c++ {
		if f, ok, _, _ := inj.Shift(); ok {
			classes[cfg.ClassOf(f.VC)] = true
		}
		ni.Tick(c)
	}
	if !classes[msg.ClassRequest] || !classes[msg.ClassResponse] {
		t.Fatalf("classes on the wire: %v", classes)
	}
}
