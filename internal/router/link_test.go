package router

import (
	"testing"

	"rair/internal/msg"
)

func TestLinkFlitLatency(t *testing.T) {
	l := NewLink(2)
	p := &msg.Packet{ID: 1, Size: 1}
	l.SendFlit(msg.Flit{Pkt: p, Type: msg.HeadTail})
	if _, ok, _, _ := l.Shift(); ok {
		t.Fatal("flit arrived one cycle early")
	}
	f, ok, _, _ := l.Shift()
	if !ok || f.Pkt != p {
		t.Fatal("flit did not arrive after latency")
	}
	if l.Busy() {
		t.Fatal("link busy after delivery")
	}
}

func TestLinkCreditLatencyOne(t *testing.T) {
	l := NewLink(3)
	l.SendCredit(4)
	_, _, credit, ok := l.Shift()
	if !ok || credit != 4 {
		t.Fatal("credit must arrive after exactly one cycle")
	}
}

func TestLinkFullDuplex(t *testing.T) {
	l := NewLink(1)
	p := &msg.Packet{ID: 1, Size: 1}
	for c := 0; c < 10; c++ {
		f, fOK, credit, cOK := l.Shift()
		if c > 0 {
			if !fOK || f.Seq != c-1 {
				t.Fatalf("cycle %d: flit %v %v", c, f, fOK)
			}
			if !cOK || credit != c-1 {
				t.Fatalf("cycle %d: credit %d %v", c, credit, cOK)
			}
		}
		if !l.CanSendFlit() || !l.CanSendCredit() {
			t.Fatalf("cycle %d: link refused traffic", c)
		}
		l.SendFlit(msg.Flit{Pkt: p, Seq: c})
		l.SendCredit(c)
	}
}

func TestLinkOneFlitPerCycle(t *testing.T) {
	l := NewLink(2)
	l.SendFlit(msg.Flit{})
	if l.CanSendFlit() {
		t.Fatal("second flit in one cycle allowed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double send")
		}
	}()
	l.SendFlit(msg.Flit{})
}
