package router

import (
	"testing"

	"rair/internal/msg"
	"rair/internal/policy"
)

func TestDefaultConfigValid(t *testing.T) {
	for classes := 1; classes <= 3; classes++ {
		cfg := DefaultConfig(classes)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("classes=%d: %v", classes, err)
		}
		if cfg.VCsPerClass() != 5 {
			t.Fatalf("VCsPerClass = %d", cfg.VCsPerClass())
		}
		if cfg.VCsPerPort() != 5*classes {
			t.Fatalf("VCsPerPort = %d", cfg.VCsPerPort())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Classes: 0, AdaptiveVCs: 4, EscapeVCs: 1, Depth: 5, LinkLatency: 1},
		{Classes: 1, AdaptiveVCs: 0, EscapeVCs: 1, Depth: 5, LinkLatency: 1},
		{Classes: 1, AdaptiveVCs: 4, GlobalVCs: 5, EscapeVCs: 1, Depth: 5, LinkLatency: 1},
		{Classes: 1, AdaptiveVCs: 4, GlobalVCs: -1, EscapeVCs: 1, Depth: 5, LinkLatency: 1},
		{Classes: 1, AdaptiveVCs: 4, EscapeVCs: 0, Depth: 5, LinkLatency: 1},
		{Classes: 1, AdaptiveVCs: 4, EscapeVCs: 1, Depth: 0, LinkLatency: 1},
		{Classes: 1, AdaptiveVCs: 4, EscapeVCs: 1, Depth: 5, LinkLatency: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestVCLayout(t *testing.T) {
	cfg := DefaultConfig(2) // per class: [escape, global, global, regional, regional]
	wantKinds := []policy.VCClass{
		policy.VCEscape, policy.VCGlobal, policy.VCGlobal, policy.VCRegional, policy.VCRegional,
		policy.VCEscape, policy.VCGlobal, policy.VCGlobal, policy.VCRegional, policy.VCRegional,
	}
	for vc, want := range wantKinds {
		if got := cfg.KindOf(vc); got != want {
			t.Errorf("KindOf(%d) = %v, want %v", vc, got, want)
		}
		wantClass := msg.ClassRequest
		if vc >= 5 {
			wantClass = msg.ClassResponse
		}
		if got := cfg.ClassOf(vc); got != wantClass {
			t.Errorf("ClassOf(%d) = %v, want %v", vc, got, wantClass)
		}
	}
	if cfg.ClassBase(msg.ClassResponse) != 5 {
		t.Fatalf("ClassBase = %d", cfg.ClassBase(msg.ClassResponse))
	}
}

func TestVCLayoutCounts(t *testing.T) {
	cfg := DefaultConfig(1)
	counts := map[policy.VCClass]int{}
	for vc := 0; vc < cfg.VCsPerPort(); vc++ {
		counts[cfg.KindOf(vc)]++
	}
	if counts[policy.VCEscape] != 1 || counts[policy.VCGlobal] != 2 || counts[policy.VCRegional] != 2 {
		t.Fatalf("kind counts %v", counts)
	}
}

func TestKindOfOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultConfig(1).KindOf(5)
}

func TestAsymmetricVCSplit(t *testing.T) {
	// Section VI ablation: more regional than global VCs.
	cfg := DefaultConfig(1)
	cfg.GlobalVCs = 1
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[policy.VCClass]int{}
	for vc := 0; vc < cfg.VCsPerPort(); vc++ {
		counts[cfg.KindOf(vc)]++
	}
	if counts[policy.VCGlobal] != 1 || counts[policy.VCRegional] != 3 {
		t.Fatalf("kind counts %v", counts)
	}
}
