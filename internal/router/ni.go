package router

import (
	"fmt"
	"math/bits"

	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/sim"
	"rair/internal/telemetry"
)

// NI is a node's network interface. It owns the per-class source queues
// (unbounded, so injection pressure is visible as queueing latency), claims
// free VCs on the router's local input port, streams flits at the link rate
// of one per cycle, and consumes ejected flits from the router's local
// output port.
//
// The NI mirrors the local input port's VC state through the credit wire:
// a VC it has claimed is known free again once every flit has been sent and
// every credit has returned (the same atomic-VC condition routers use).
//
// Streams are value slots (a packet pointer plus a cursor) whose flits are
// synthesized on the fly with msg.FlitAt, so claiming and streaming a
// packet allocates nothing. VC state is shadowed by the same kind of
// occupancy bitmasks the router datapath uses: streamMask (claimed and
// still sending), drainMask (sent, awaiting credits), creditMask
// (credits > 0) and fullMask (credits == Depth).
type NI struct {
	cfg     Config
	node    int
	regions *region.Map

	// soa/li: the shard store slot mirroring this NI's activity counter
	// (soa.NIWork) and wake bit; see Router.soa.
	soa *SoA
	li  int

	inj *Link // NI -> router local input port
	ej  *Link // router local output port -> NI

	// queues holds one source queue per (injector slot, message class)
	// pair, indexed slot*Classes+class. Plain meshes have one slot;
	// concentrated meshes give each of the c cores behind the router its
	// own slot so cores queue independently (cfg.Injectors).
	queues []*sim.Queue[*msg.Packet]

	streams []stream // per local-input VC; pkt nil when not streaming
	credits []int

	streamMask vcMask // VCs with a live stream
	drainMask  vcMask // VCs with all flits sent, waiting for credits
	creditMask vcMask // VCs with at least one credit
	fullMask   vcMask // VCs with the full credit stock

	rrVC int
	rrQ  int // rotating start of the claim() scan over source queues

	// Activity counters: queued packets, live streams and draining VCs.
	// When all three are zero the NI's Tick is a no-op and the tick engine
	// skips it.
	queued    int
	streaming int
	drainingN int

	kinds []policy.VCClass // cached cfg.KindOf per VC index

	// escMask marks escape VCs; classWindow[c] the VC range of class c
	// (the freeVC search operates on mask intersections).
	escMask     vcMask
	classWindow []vcMask

	onEject func(*msg.Packet, int64)

	// tel is the node's telemetry probe (shared with the router); nil when
	// telemetry is disabled. attr caches tel.AttributionOn() at wiring.
	tel  *telemetry.Probe
	attr bool

	created, injected, ejected int64
	flitsOut, flitsIn          int64
}

type stream struct {
	pkt  *msg.Packet
	next int
}

// NewNI builds the interface for node, backed by a private single-slot
// store. onEject is invoked when a packet's tail is consumed (may be nil).
func NewNI(cfg Config, node int, regions *region.Map, inj, ej *Link, onEject func(*msg.Packet, int64)) *NI {
	return NewNIInStore(cfg, node, regions, inj, ej, onEject, NewSoA(cfg, 1), 0)
}

// NewNIInStore builds the interface for node as a view over slot li of the
// shard store soa (shared with the node's router; the NI uses the NIWork
// mirror and ArmedN wake bitmap).
func NewNIInStore(cfg Config, node int, regions *region.Map, inj, ej *Link,
	onEject func(*msg.Packet, int64), soa *SoA, li int) *NI {
	v := cfg.VCsPerPort()
	ni := &NI{
		cfg: cfg, node: node, regions: regions, inj: inj, ej: ej, soa: soa, li: li,
		queues:     make([]*sim.Queue[*msg.Packet], cfg.Classes*cfg.InjectorCount()),
		streams:    make([]stream, v),
		credits:    make([]int, v),
		creditMask: allVCs(v),
		fullMask:   allVCs(v),
		onEject:    onEject,
	}
	for i := range ni.queues {
		ni.queues[i] = sim.NewQueue[*msg.Packet](16)
	}
	for i := range ni.credits {
		ni.credits[i] = cfg.Depth
	}
	ni.kinds = make([]policy.VCClass, v)
	for i := range ni.kinds {
		ni.kinds[i] = cfg.KindOf(i)
		if ni.kinds[i] == policy.VCEscape {
			ni.escMask |= 1 << uint(i)
		}
	}
	ni.classWindow = make([]vcMask, cfg.Classes)
	for c := range ni.classWindow {
		ni.classWindow[c] = allVCs(cfg.VCsPerClass()) << uint(cfg.ClassBase(msg.Class(c)))
	}
	return ni
}

// Active reports whether ticking the NI this cycle can have any effect:
// packets queued for injection, flits still streaming, or claimed VCs
// waiting for their credits to drain back.
func (ni *NI) Active() bool {
	return ni.queued+ni.streaming+ni.drainingN > 0
}

// Node returns the NI's node id.
func (ni *NI) Node() int { return ni.node }

// SetTelemetry attaches a telemetry probe (nil detaches).
func (ni *NI) SetTelemetry(p *telemetry.Probe) {
	ni.tel = p
	ni.attr = p.AttributionOn()
}

// Inject queues a packet for injection at cycle now, stamping its creation
// time, batch and regional/global classification. It is InjectAt on slot 0.
func (ni *NI) Inject(p *msg.Packet, now int64) { ni.InjectAt(0, p, now) }

// InjectAt queues a packet on injector slot's source queue for its class.
// Slots model the cores of a concentrated mesh: each owns independent
// queues, and claim() arbitrates across all of them round-robin.
func (ni *NI) InjectAt(slot int, p *msg.Packet, now int64) {
	if p.Src != ni.node {
		panic(fmt.Sprintf("router: packet %v injected at node %d", p, ni.node))
	}
	if int(p.Class) >= ni.cfg.Classes {
		panic(fmt.Sprintf("router: packet class %v exceeds configured classes", p.Class))
	}
	if slot < 0 || slot >= ni.cfg.InjectorCount() {
		panic(fmt.Sprintf("router: injector slot %d out of range [0,%d)", slot, ni.cfg.InjectorCount()))
	}
	p.CreatedAt = now
	p.BatchID = policy.BatchFor(now)
	p.Global = ni.regions.Global(p.Src, p.Dst)
	p.EjectedAt = -1
	p.InjectedAt = -1
	// Unconditional (branchless) so pool-recycled and protocol-reused
	// packets always start with a clean blame vector.
	p.Blame = [msg.NumBlame]int32{}
	ni.queues[slot*ni.cfg.Classes+int(p.Class)].Push(p)
	ni.queued++
	ni.soa.NIWork[ni.li]++
	ni.soa.armN(ni.li)
	ni.created++
}

// Store returns the shard store this NI is a view into and its local index
// there (engine and audit hooks).
func (ni *NI) Store() (*SoA, int) { return ni.soa, ni.li }

// WorkCounters returns the individual activity counters; the invariant
// checker audits their sum against the store's NIWork mirror.
func (ni *NI) WorkCounters() (queued, streaming, draining int) {
	return ni.queued, ni.streaming, ni.drainingN
}

// QueueLen reports the total packets waiting in the source queues.
func (ni *NI) QueueLen() int {
	n := 0
	for _, q := range ni.queues {
		n += q.Len()
	}
	return n
}

// Pending reports packets created but not yet ejected at this NI (note:
// ejections are counted at the destination NI, so network-wide accounting
// belongs to the network).
func (ni *NI) Pending() bool {
	return ni.QueueLen() > 0 || ni.streamMask != 0
}

// Created reports how many packets this NI has accepted.
func (ni *NI) Created() int64 { return ni.created }

// Ejected reports how many packets this NI has consumed.
func (ni *NI) Ejected() int64 { return ni.ejected }

// FlitsOut reports how many flits the NI has pushed onto its injection
// link (the "injected" term of the flit-conservation invariant).
func (ni *NI) FlitsOut() int64 { return ni.flitsOut }

// FlitsIn reports how many flits the NI has consumed from its ejection
// link (the "ejected" term of the flit-conservation invariant).
func (ni *NI) FlitsIn() int64 { return ni.flitsIn }

// CreditCount reports the NI's sender-side credit counter for local-input
// VC vc (read-only invariant-checker hook).
func (ni *NI) CreditCount(vc int) int { return ni.credits[vc] }

// DeliverFlit consumes a flit arriving from the router's local output port.
func (ni *NI) DeliverFlit(f msg.Flit, now int64) {
	if f.Pkt.Dst != ni.node {
		panic(fmt.Sprintf("router: %v ejected at node %d", f.Pkt, ni.node))
	}
	ni.flitsIn++
	if f.Type.IsTail() {
		f.Pkt.EjectedAt = now
		ni.ejected++
		if ni.tel != nil && ni.tel.Traced(f.Pkt.ID) {
			ni.tel.Lifecycle(f.Pkt.ID, telemetry.StageEject, now)
		}
		if ni.attr {
			// Fold before onEject: the harness recycles the packet from
			// its OnEject observer, so the blame vector must be consumed
			// first. Runs in the link phase on the shard owning this NI's
			// probe — no other shard touches the packet this phase.
			ni.tel.FoldAttribution(f.Pkt)
		}
		if ni.onEject != nil {
			ni.onEject(f.Pkt, now)
		}
	}
}

// DeliverCredit consumes a credit returned by the router's local input port.
func (ni *NI) DeliverCredit(vc int) {
	ni.credits[vc]++
	if ni.credits[vc] > ni.cfg.Depth {
		panic("router: NI credit overflow")
	}
	ni.creditMask |= 1 << uint(vc)
	if ni.credits[vc] == ni.cfg.Depth {
		ni.fullMask |= 1 << uint(vc)
	}
}

// Tick claims VCs for queued packets and streams one flit.
func (ni *NI) Tick(now int64) {
	if ni.queued > 0 {
		ni.claim()
	}
	if ni.streaming > 0 {
		ni.sendOne(now)
	}
	if ni.drainingN > 0 {
		// Free drained VCs whose credits have all returned.
		if m := ni.drainMask & ni.fullMask; m != 0 {
			ni.drainMask &^= m
			freed := bits.OnesCount64(m)
			ni.drainingN -= freed
			ni.soa.NIWork[ni.li] -= int32(freed)
		}
	}
}

// claim assigns one queued packet to a free local-input VC of its class per
// cycle (one VC allocation per cycle, like a router's VA), rotating over the
// (slot, class) source queues so concentrated-mesh cores share the local
// port fairly. With one injector slot the scan degenerates to the per-class
// rotation a plain mesh always had.
func (ni *NI) claim() {
	nq := len(ni.queues)
	for i := 0; i < nq; i++ {
		qi := (ni.rrQ + i) % nq
		q := ni.queues[qi]
		if q.Empty() {
			continue
		}
		cls := qi % ni.cfg.Classes
		vc := ni.freeVC(msg.Class(cls))
		if vc < 0 {
			if ni.tel != nil {
				ni.tel.InjectStall()
			}
			continue
		}
		p, _ := q.Pop()
		ni.streams[vc] = stream{pkt: p}
		ni.streamMask |= 1 << uint(vc)
		ni.queued--
		ni.streaming++
		ni.rrQ = (qi + 1) % nq
		return
	}
}

// freeVC finds a free local-input VC for class cls, preferring adaptive VCs
// over the escape VC (the escape VC is a deadlock-safety resource; keeping
// it lightly used at injection helps congested traffic fall back to it).
// A VC is free when it has no stream, is not draining, and holds its full
// credit stock — the intersection of three masks with the class window.
func (ni *NI) freeVC(cls msg.Class) int {
	free := ni.classWindow[cls] &^ (ni.streamMask | ni.drainMask) & ni.fullMask
	if adaptive := free &^ ni.escMask; adaptive != 0 {
		return bits.TrailingZeros64(adaptive)
	}
	if free != 0 {
		return bits.TrailingZeros64(free)
	}
	return -1
}

// sendOne pushes at most one flit onto the injection link, round-robin over
// the active streams with credits. The rotating scan is a pair of mask
// lookups: the first candidate at or after rrVC, else the first candidate
// below it.
func (ni *NI) sendOne(now int64) {
	if !ni.inj.CanSendFlit() {
		return
	}
	m := ni.streamMask & ni.creditMask
	if m == 0 {
		return
	}
	vc := 0
	if hi := m >> uint(ni.rrVC) << uint(ni.rrVC); hi != 0 {
		vc = bits.TrailingZeros64(hi)
	} else {
		vc = bits.TrailingZeros64(m)
	}
	s := &ni.streams[vc]
	f := msg.FlitAt(s.pkt, s.next)
	f.VC = vc
	if f.Type.IsHead() {
		f.Pkt.InjectedAt = now
		ni.injected++
		if ni.tel != nil && ni.tel.Traced(f.Pkt.ID) {
			ni.tel.Lifecycle(f.Pkt.ID, telemetry.StageInject, now)
		}
	}
	ni.inj.SendFlit(f)
	ni.flitsOut++
	ni.credits[vc]--
	ni.fullMask &^= 1 << uint(vc)
	if ni.credits[vc] == 0 {
		ni.creditMask &^= 1 << uint(vc)
	}
	s.next++
	if s.next == s.pkt.Size {
		ni.streams[vc] = stream{}
		ni.streamMask &^= 1 << uint(vc)
		ni.drainMask |= 1 << uint(vc)
		ni.streaming--
		ni.drainingN++
	}
	ni.rrVC = vc + 1
	if ni.rrVC == len(ni.streams) {
		ni.rrVC = 0
	}
}
