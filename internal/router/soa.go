package router

import (
	"math/bits"

	"rair/internal/msg"
	"rair/internal/sim"
	"rair/internal/topology"
)

// SoA is a struct-of-arrays state store shared by a contiguous range of
// routers and NIs — one per tick-engine shard. The per-component structs
// (Router, NI) are index-based views into it: their ports, VC state and
// flit-buffer storage are carved out of the dense slabs below, and the
// per-cycle activity/occupancy registers live in flat arrays so the engine's
// armed-component sweep and the telemetry occupancy sample are linear passes
// over contiguous memory instead of pointer chases through component objects.
//
// Indexing is by local index li in [0, N): component li owns
// Ins[li*NumDirs:(li+1)*NumDirs], its VC slabs, and element li of every flat
// array. The store itself performs no synchronization: exactly one shard owns
// it, and the engine's barrier phases serialize all access.
type SoA struct {
	cfg Config
	n   int

	// Work[li] mirrors router li's pipeline population
	// (rcCount+vaCount+activeCount+stPending); NIWork[li] mirrors NI li's
	// (queued+streaming+draining). The engine skips any component whose
	// entry is zero, and the invariant checker audits the mirrors against
	// the component counters.
	Work   []int32
	NIWork []int32

	// ArmedR/ArmedN are the wake bitmaps: bit li set iff Work[li] > 0
	// (resp. NIWork[li] > 0). Flit arrival and injection set bits; the
	// engine clears a bit once the component's work counter reaches zero
	// after a tick.
	ArmedR []uint64
	ArmedN []uint64

	// DPA occupancy registers and the end-of-cycle snapshot, per router.
	NativeOcc  []int32
	ForeignOcc []int32
	OccSnap    []int32

	// Dense component slabs.
	Ins     []InputPort
	Outs    []OutputPort
	inVCs   []inputVC
	outVCs  []outputVC
	flitBuf []msg.Flit
}

// NewSoA returns a store for n routers/NIs sharing one configuration.
func NewSoA(cfg Config, n int) *SoA {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	v := cfg.VCsPerPort()
	nd := int(topology.NumDirs)
	words := (n + 63) / 64
	s := &SoA{
		cfg: cfg, n: n,
		Work:       make([]int32, n),
		NIWork:     make([]int32, n),
		ArmedR:     make([]uint64, words),
		ArmedN:     make([]uint64, words),
		NativeOcc:  make([]int32, n),
		ForeignOcc: make([]int32, n),
		OccSnap:    make([]int32, n),
		Ins:        make([]InputPort, n*nd),
		Outs:       make([]OutputPort, n*nd),
		inVCs:      make([]inputVC, n*nd*v),
		outVCs:     make([]outputVC, n*nd*v),
		flitBuf:    make([]msg.Flit, n*nd*v*cfg.Depth),
	}
	for li := 0; li < n; li++ {
		for d := 0; d < nd; d++ {
			p := li*nd + d
			ivcs := s.inVCs[p*v : (p+1)*v : (p+1)*v]
			for i := range ivcs {
				buf := s.flitBuf[(p*v+i)*cfg.Depth : (p*v+i+1)*cfg.Depth : (p*v+i+1)*cfg.Depth]
				ivcs[i] = inputVC{idx: i, buf: sim.BoundedOver(buf)}
			}
			s.Ins[p] = InputPort{dir: topology.Dir(d), vcs: ivcs}
			ovcs := s.outVCs[p*v : (p+1)*v : (p+1)*v]
			for i := range ovcs {
				ovcs[i] = outputVC{idx: i, credits: cfg.Depth}
			}
			s.Outs[p] = OutputPort{
				dir: topology.Dir(d), ejection: topology.Dir(d) == topology.Local,
				vcs: ovcs, creditSum: v * cfg.Depth,
				freeMask: allVCs(v), creditMask: allVCs(v), fullMask: allVCs(v),
			}
		}
	}
	return s
}

// N reports the number of component slots in the store.
func (s *SoA) N() int { return s.n }

// armR marks router li armed (its Work just became nonzero).
func (s *SoA) armR(li int) { s.ArmedR[uint(li)>>6] |= 1 << (uint(li) & 63) }

// armN marks NI li armed.
func (s *SoA) armN(li int) { s.ArmedN[uint(li)>>6] |= 1 << (uint(li) & 63) }

// ArmedRouter reports whether router li's wake bit is set (audit hook).
func (s *SoA) ArmedRouter(li int) bool { return s.ArmedR[uint(li)>>6]>>(uint(li)&63)&1 == 1 }

// ArmedNI reports whether NI li's wake bit is set (audit hook).
func (s *SoA) ArmedNI(li int) bool { return s.ArmedN[uint(li)>>6]>>(uint(li)&63)&1 == 1 }

// ArmedCount reports the set bits in both wake bitmaps (benchmark hook).
func (s *SoA) ArmedCount() (routers, nis int) {
	for _, w := range s.ArmedR {
		routers += bits.OnesCount64(w)
	}
	for _, w := range s.ArmedN {
		nis += bits.OnesCount64(w)
	}
	return
}
