package router

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/topology"
)

// TestIncrementalCandidateEquivalence is the testing/quick property for the
// persistent SA candidate sets: random event sequences — packet starts,
// staggered flit arrivals, delayed credit returns, fault-style stall
// cycles — drive a router while AuditMasks recomputes every incremental
// structure (saElig/saPorts, streamMask, the output reverse maps, the
// armed fast plan) from authoritative per-VC state after every cycle. Any
// divergence between the event-maintained sets and the full reference
// rescan fails the property with the offending seed.
func TestIncrementalCandidateEquivalence(t *testing.T) {
	var sent, fast int64
	prop := func(seed uint64) bool {
		return equivalenceScenario(t, int64(seed), &sent, &fast)
	}
	qc := &quick.Config{MaxCount: 40}
	if testing.Short() {
		qc.MaxCount = 8
	}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
	// Guard against a vacuous pass: the random episodes must actually
	// move flits and engage the streaming fast path somewhere.
	if sent == 0 || fast == 0 {
		t.Fatalf("episodes too quiet to prove anything: %d flits sent, %d fast ticks", sent, fast)
	}
}

// equivalenceScenario runs one ~300-cycle random episode on a 2×1-mesh
// router with an east output link (credited) and a local ejection link
// (uncredited), auditing every incremental mask against its reference
// recomputation after every cycle. Reports whether every audit was clean.
func equivalenceScenario(t *testing.T, seed int64, sent, fast *int64) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := DefaultConfig(1)
	r, east := testRouter(cfg, policy.NewRoundRobin(0, 0))
	local := NewLink(cfg.LinkLatency)
	r.ConnectOut(topology.Local, local)

	// Upstream traffic models for the two linkless source ports: one
	// in-flight packet per (port, VC), delivered one flit per port per
	// cycle at random (staggered arrivals create occupancy edges).
	type feed struct {
		pkt  *msg.Packet
		next int
	}
	srcPorts := []topology.Dir{topology.North, topology.South}
	feeds := map[topology.Dir][]*feed{}
	nvc := cfg.VCsPerPort()
	for _, d := range srcPorts {
		feeds[d] = make([]*feed, nvc)
	}
	// Arrival VCs mirror what an upstream allocator could legally hand
	// this router: mostly regional VCs, occasionally the escape VC.
	arrivalVC := func() int {
		var m vcMask
		if rng.Intn(100) < 20 {
			m = r.escapeMask
		} else {
			m = r.regionalMask
		}
		choices := make([]int, 0, nvc)
		for i := 0; i < nvc; i++ {
			if m>>uint(i)&1 == 1 {
				choices = append(choices, i)
			}
		}
		return choices[rng.Intn(len(choices))]
	}

	// Credits for flits that left eastwards are returned out of order and
	// with random delay, driving the credit-dry/credit-refill events.
	var heldCredits []int
	nextID := uint64(1)
	var now int64
	clean := true
	audit := func() {
		r.AuditMasks(func(desc string) {
			t.Logf("seed %d cycle %d: %s", seed, now, desc)
			clean = false
		})
	}

	for cycle := 0; cycle < 300 && clean; cycle++ {
		// Link phase by hand: drain both output wires, bank the east
		// flit's credit, deliver any credit already in flight.
		if f, fok, cr, cok := east.Shift(); true {
			if cok {
				r.DeliverCredit(topology.East, cr)
			}
			if fok {
				heldCredits = append(heldCredits, f.VC)
			}
		}
		local.Shift()
		if len(heldCredits) > 0 && rng.Intn(100) < 70 {
			i := rng.Intn(len(heldCredits))
			east.SendCredit(heldCredits[i])
			heldCredits = append(heldCredits[:i], heldCredits[i+1:]...)
		}

		// Injection phase: per source port, continue or start at most one
		// upstream stream (one flit per port wire per cycle).
		for _, d := range srcPorts {
			if rng.Intn(100) >= 70 {
				continue
			}
			in := r.in[d]
			// Prefer continuing a random in-flight feed with buffer room.
			order := rng.Perm(nvc)
			delivered := false
			for _, v := range order {
				fd := feeds[d][v]
				if fd == nil || in.vcs[v].buf.Len() >= cfg.Depth {
					continue
				}
				fl := msg.FlitAt(fd.pkt, fd.next)
				fl.VC = v
				r.DeliverFlit(d, fl)
				fd.next++
				if fd.next == fd.pkt.Size {
					feeds[d][v] = nil
				}
				delivered = true
				break
			}
			if delivered {
				continue
			}
			// Otherwise start a new packet on a free VC.
			v := arrivalVC()
			if feeds[d][v] != nil || in.vcs[v].owner != nil {
				continue
			}
			dst := 0
			if rng.Intn(100) < 60 {
				dst = 1
			}
			pkt := &msg.Packet{
				ID: nextID, App: 0, Src: 0, Dst: dst,
				Size: 1 + rng.Intn(8), Class: msg.ClassRequest,
			}
			nextID++
			fd := &feed{pkt: pkt}
			fl := msg.FlitAt(pkt, 0)
			fl.VC = v
			r.DeliverFlit(d, fl)
			fd.next = 1
			if fd.next < pkt.Size {
				feeds[d][v] = fd
			}
		}

		// Compute phase, with fault-style stall cycles: the engine visits
		// a stalled router without ticking it, while links keep moving.
		if rng.Intn(100) < 10 {
			audit()
			continue
		}
		r.Tick(now)
		now++
		audit()
	}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		*sent += r.FlitsSent(d)
	}
	*fast += r.FastTicks()
	return clean
}
