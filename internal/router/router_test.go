package router

import (
	"testing"

	"rair/internal/core"
	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/region"
	"rair/internal/routing"
	"rair/internal/topology"
)

// testRouter builds a router for node 0 (app 0) of a 2×1 mesh with node 1
// foreign, wired with an east output link, under the given policy and VC
// configuration.
func testRouter(cfg Config, pol policy.Policy) (*Router, *Link) {
	mesh := topology.NewMesh(2, 1)
	regs := region.New(mesh)
	regs.Assign(0, 0)
	regs.Assign(1, 1)
	r := New(cfg, 0, 0, mesh, regs,
		routing.MinimalAdaptive{Mesh: mesh}, routing.LocalSelector{}, pol)
	east := NewLink(cfg.LinkLatency)
	r.ConnectOut(topology.East, east)
	r.ConnectIn(topology.West, NewLink(cfg.LinkLatency))
	r.ConnectIn(topology.Local, NewLink(cfg.LinkLatency))
	return r, east
}

// oneVCConfig leaves a single regional adaptive VC (plus the escape VC), so
// two competing packets must arbitrate at VA_out.
func oneVCConfig() Config {
	cfg := DefaultConfig(1)
	cfg.AdaptiveVCs = 1
	cfg.GlobalVCs = 0
	return cfg
}

func headFlit(p *msg.Packet, vc int) msg.Flit {
	f := msg.Flits(p)[0]
	f.VC = vc
	return f
}

// Under RAIR (foreign-high default), a foreign head must win the contended
// output VC against a native head that arrived the same cycle.
func TestVAOutPrefersForeignUnderRAIR(t *testing.T) {
	cfg := oneVCConfig()
	r, _ := testRouter(cfg, core.New(core.Config{Mode: core.ModeForeignHigh}))
	nativePkt := &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	foreignPkt := &msg.Packet{ID: 2, App: 1, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest, Global: true}
	// Native on the Local port VC1 (the regional VC), foreign on West VC1.
	r.DeliverFlit(topology.Local, headFlit(nativePkt, 1))
	r.DeliverFlit(topology.West, headFlit(foreignPkt, 1))
	r.Tick(0) // RC
	r.Tick(1) // VA: both request the single regional output VC
	win := r.in[topology.West].vcs[1]
	lose := r.in[topology.Local].vcs[1]
	if win.stage != stageActive {
		t.Fatalf("foreign VC stage %v, want Active", win.stage)
	}
	if lose.stage == stageActive {
		// The loser may have taken the escape VC (East is its DOR
		// direction) — that is legal and still respects the priority;
		// both being Active is only wrong if they share the out VC.
		if lose.outVC == win.outVC {
			t.Fatal("both packets allocated the same output VC")
		}
	}
	if r.out[topology.East].vcs[win.outVC].owner != foreignPkt {
		t.Fatal("output VC not owned by the foreign packet")
	}
}

// Under RO_RR both heads are equal: the single regional VC goes to exactly
// one of them (round-robin), never both.
func TestVAOutAtomicAllocation(t *testing.T) {
	cfg := oneVCConfig()
	r, _ := testRouter(cfg, policy.NewRoundRobin(0, 0))
	a := &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	b := &msg.Packet{ID: 2, App: 1, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	r.DeliverFlit(topology.Local, headFlit(a, 1))
	r.DeliverFlit(topology.West, headFlit(b, 1))
	r.Tick(0)
	r.Tick(1)
	owners := map[*msg.Packet]int{}
	for _, ov := range r.out[topology.East].vcs {
		if ov.owner != nil {
			owners[ov.owner]++
		}
	}
	if owners[a]+owners[b] == 0 {
		t.Fatal("nobody won VA")
	}
	for p, n := range owners {
		if n > 1 {
			t.Fatalf("packet %v owns %d output VCs", p, n)
		}
	}
}

// With MSP at SA, a foreign flit must traverse the switch ahead of a native
// flit queued at a different input port for the same output port.
func TestSAOutPrefersForeignUnderRAIR(t *testing.T) {
	cfg := DefaultConfig(1) // plenty of VCs: no VA contention
	r, east := testRouter(cfg, core.New(core.Config{Mode: core.ModeForeignHigh}))
	nativePkt := &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	foreignPkt := &msg.Packet{ID: 2, App: 1, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest, Global: true}
	r.DeliverFlit(topology.Local, headFlit(nativePkt, 3))
	r.DeliverFlit(topology.West, headFlit(foreignPkt, 3))
	r.Tick(0) // RC
	r.Tick(1) // VA: distinct output VCs, both Active
	r.Tick(2) // SA: one winner for the East port
	if !r.out[topology.East].stValid {
		t.Fatal("no flit won SA")
	}
	if r.out[topology.East].st.Pkt != foreignPkt {
		t.Fatalf("ST holds %v, want the foreign packet", r.out[topology.East].st.Pkt)
	}
	r.Tick(3) // ST: flit onto the link
	f, ok, _, _ := east.Shift()
	_ = f
	if ok {
		t.Fatal("flit arrived before link latency")
	}
}

// Credits must flow back on the input port's link when a flit is dequeued.
func TestCreditReturn(t *testing.T) {
	cfg := DefaultConfig(1)
	r, _ := testRouter(cfg, policy.NewRoundRobin(0, 0))
	west := r.in[topology.West].link
	p := &msg.Packet{ID: 1, App: 1, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	r.DeliverFlit(topology.West, headFlit(p, 2))
	gotCredit := -1
	for c := int64(0); c < 6; c++ {
		if _, _, credit, ok := west.Shift(); ok {
			gotCredit = credit
		}
		r.Tick(c)
	}
	// The flit was dequeued at SA; its credit must have crossed the wire.
	if gotCredit != 2 {
		t.Fatalf("credit = %d, want VC 2", gotCredit)
	}
}

// The DPA registers must reflect arrivals and departures exactly.
func TestOccupancyTracking(t *testing.T) {
	cfg := DefaultConfig(1)
	r, east := testRouter(cfg, policy.NewRoundRobin(0, 0))
	nativePkt := &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	foreignPkt := &msg.Packet{ID: 2, App: 1, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	r.DeliverFlit(topology.Local, headFlit(nativePkt, 1))
	r.DeliverFlit(topology.West, headFlit(foreignPkt, 1))
	if nat, frn := r.OccupancyByKind(); nat != 1 || frn != 1 {
		t.Fatalf("occupancy %d/%d after arrivals", nat, frn)
	}
	for c := int64(0); c < 10; c++ {
		east.Shift() // drain the output wire so ST never stalls
		r.Tick(c)
	}
	if nat, frn := r.OccupancyByKind(); nat != 0 || frn != 0 {
		t.Fatalf("occupancy %d/%d after drain", nat, frn)
	}
	if r.BufferedFlits() != 0 {
		t.Fatal("flits left behind")
	}
}

// OldestOwner surfaces the earliest-created resident packet.
func TestOldestOwner(t *testing.T) {
	cfg := DefaultConfig(1)
	r, _ := testRouter(cfg, policy.NewRoundRobin(0, 0))
	if r.OldestOwner() != nil {
		t.Fatal("empty router has an owner")
	}
	young := &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 1, Size: 5, Class: msg.ClassRequest, CreatedAt: 50}
	old := &msg.Packet{ID: 2, App: 1, Src: 0, Dst: 1, Size: 5, Class: msg.ClassRequest, CreatedAt: 10}
	r.DeliverFlit(topology.Local, headFlit(young, 1))
	r.DeliverFlit(topology.West, headFlit(old, 1))
	if got := r.OldestOwner(); got != old {
		t.Fatalf("OldestOwner = %v", got)
	}
}

// DebugState must mention resident packets (diagnostic plumbing).
func TestDebugState(t *testing.T) {
	cfg := DefaultConfig(1)
	r, _ := testRouter(cfg, policy.NewRoundRobin(0, 0))
	p := &msg.Packet{ID: 7, App: 0, Src: 0, Dst: 1, Size: 1, Class: msg.ClassRequest}
	r.DeliverFlit(topology.Local, headFlit(p, 1))
	if s := r.DebugState(); len(s) == 0 || !containsPkt(s) {
		t.Fatalf("debug state:\n%s", s)
	}
}

func containsPkt(s string) bool {
	for i := 0; i+4 < len(s); i++ {
		if s[i:i+4] == "pkt#" {
			return true
		}
	}
	return false
}
