package router

import (
	"fmt"
	"strings"

	"rair/internal/topology"
)

// DebugDropCredit steals one downstream credit from output port d's VC vc,
// as if the credit had been lost without the fault injector's bookkeeping.
// It exists only so tests can seed a genuine accounting bug and assert the
// invariant checker reports it; nothing in the simulator calls it. The
// shadow masks are kept consistent with the counter — the seeded bug is a
// conservation violation, not a datapath desync.
func (r *Router) DebugDropCredit(d topology.Dir, vc int) {
	p := r.out[d]
	v := &p.vcs[vc]
	if v.credits == 0 {
		panic("router: DebugDropCredit on empty credit counter")
	}
	v.credits--
	p.creditSum--
	p.fullMask &^= 1 << uint(vc)
	if v.credits == 0 {
		p.creditMask &^= 1 << uint(vc)
	}
}

// DebugCorruptMask flips output port d's creditMask bit for VC vc without
// touching the credit counter, desynchronizing the mask shadow from the
// authoritative state. Exists only so tests can assert the invariant
// checker's mask audit catches datapath desyncs.
func (r *Router) DebugCorruptMask(d topology.Dir, vc int) {
	r.out[d].creditMask ^= 1 << uint(vc)
}

// DebugState renders the router's pipeline state for diagnostics (watchdog
// reports, deadlock triage).
func (r *Router) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "router %d (app %d)\n", r.node, r.app)
	stages := [...]string{"Idle", "RC", "VA", "Active"}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		for i := range r.in[d].vcs {
			vc := &r.in[d].vcs[i]
			if vc.owner == nil && vc.buf.Empty() {
				continue
			}
			fmt.Fprintf(&b, "  in %-5s vc%-2d %-6s buf=%d attempts=%d", d, vc.idx, stages[vc.stage], vc.buf.Len(), vc.vaAttempts)
			if vc.owner != nil {
				fmt.Fprintf(&b, " owner=%v", vc.owner)
				if vc.stage == stageActive {
					fmt.Fprintf(&b, " -> %s vc%d", vc.outPort, vc.outVC)
				}
			}
			b.WriteByte('\n')
		}
	}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		out := r.out[d]
		for i := range out.vcs {
			ov := &out.vcs[i]
			if ov.owner == nil {
				continue
			}
			fmt.Fprintf(&b, "  out %-5s vc%-2d credits=%d tailSent=%v owner=%v\n", d, ov.idx, ov.credits, ov.tailSent, ov.owner)
		}
		if out.stValid {
			fmt.Fprintf(&b, "  out %-5s ST=%v flit %v seq=%d\n", d, out.st.Pkt, out.st.Type, out.st.Seq)
		}
	}
	return b.String()
}
