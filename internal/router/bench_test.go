package router

import (
	"testing"

	"rair/internal/msg"
	"rair/internal/policy"
	"rair/internal/topology"
)

// benchFeed puts a packet's head plus enough body flits to fill the VC
// buffer onto input port dir VC 1 of r, and runs RC and VA so the VC is
// actively streaming. The input port must have no upstream link attached
// (so transfers don't accumulate credits on an unshifted wire).
func benchFeed(b *testing.B, r *Router, dir topology.Dir, pkt *msg.Packet, now *int64) {
	b.Helper()
	head := msg.FlitAt(pkt, 0)
	head.VC = 1
	r.DeliverFlit(dir, head)
	for i := 1; i < r.cfg.Depth; i++ {
		f := msg.FlitAt(pkt, i)
		f.VC = 1
		r.DeliverFlit(dir, f)
	}
	r.Tick(*now) // RC
	*now++
	r.Tick(*now) // VA
	*now++
	if r.in[dir].vcs[1].stage != stageActive {
		b.Fatalf("setup: VC on %s did not reach the active stage", dir)
	}
}

// BenchmarkSwitchAllocation measures SA in its two steady shapes: "stalled"
// is the pure candidate scan with every VC blocked behind an occupied ST
// register (the no-op path an interfered router spins on), "grant" is the
// uncontended single-candidate fast path through SA_in, SA_out and the
// flit transfer into the ST register.
func BenchmarkSwitchAllocation(b *testing.B) {
	b.Run("stalled", func(b *testing.B) {
		cfg := DefaultConfig(1)
		r, _ := testRouter(cfg, policy.NewRoundRobin(0, 0))
		var now int64
		// Two streams from linkless input ports, both bound for East.
		benchFeed(b, r, topology.East, &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 1, Size: 4096, Class: msg.ClassRequest}, &now)
		benchFeed(b, r, topology.North, &msg.Packet{ID: 2, App: 0, Src: 0, Dst: 1, Size: 4096, Class: msg.ClassRequest}, &now)
		// Two more ticks: the first SA winner traverses onto the east
		// link; the link is never shifted, so the next winner sticks in
		// the ST register and every later SA pass scans and stalls.
		r.Tick(now)
		now++
		r.Tick(now)
		now++
		if !r.out[topology.East].stValid {
			b.Fatal("setup: ST register did not latch")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.switchAllocation()
		}
	})
	b.Run("rescan", func(b *testing.B) {
		// The old path: rederive every port's SA_in candidate set from
		// the stage and credit masks (refSAElig is the shadow-audit
		// reference implementation of the rescan the persistent saElig
		// sets replaced), in the same stalled two-stream state the
		// "stalled" case walks incrementally.
		cfg := DefaultConfig(1)
		r, _ := testRouter(cfg, policy.NewRoundRobin(0, 0))
		var now int64
		benchFeed(b, r, topology.East, &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 1, Size: 4096, Class: msg.ClassRequest}, &now)
		benchFeed(b, r, topology.North, &msg.Packet{ID: 2, App: 0, Src: 0, Dst: 1, Size: 4096, Class: msg.ClassRequest}, &now)
		r.Tick(now)
		now++
		r.Tick(now)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var m vcMask
			for d := topology.Dir(0); d < topology.NumDirs; d++ {
				m |= r.refSAElig(d)
			}
			benchSink = m
		}
	})
	b.Run("grant", func(b *testing.B) {
		cfg := DefaultConfig(1)
		r, _ := testRouter(cfg, policy.NewRoundRobin(0, 0))
		var now int64
		// A stream ejecting at the local port: the sink consumes no
		// credits, so the transfer path runs every cycle.
		benchFeed(b, r, topology.East, &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 0, Size: 1 << 30, Class: msg.ClassRequest}, &now)
		r.Tick(now) // SA latches the first flit into the local ST register
		out := r.out[topology.Local]
		if !out.stValid {
			b.Fatal("setup: local ST register did not latch")
		}
		in := r.in[topology.East]
		vc := &in.vcs[1]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Recycle the ST register and the consumed flit so every
			// iteration runs the grant + transfer path from the same
			// state.
			f := out.st
			out.stValid = false
			r.stPending--
			r.stList = r.stList[:0]
			vc.buf.Push(f)
			in.occMask |= 1 << 1
			in.bufFlits++
			r.switchAllocation()
		}
	})
}

// benchSink defeats dead-code elimination in the rescan benchmark.
var benchSink vcMask

// BenchmarkFlitStreaming pumps one very long packet eastwards with the
// link drained and its credit returned every cycle — the steady shape the
// event-driven fast path targets. "fast" lets the plan arm and measures
// the fused fastTick pump; "slow" disarms before every tick, forcing the
// full allocation replay the fast path skips. The delta is the per-cycle
// cost of re-deriving an outcome that no event changed.
func BenchmarkFlitStreaming(b *testing.B) {
	run := func(b *testing.B, disarm bool) {
		cfg := DefaultConfig(1)
		r, east := testRouter(cfg, policy.NewRoundRobin(0, 0))
		var now int64
		pkt := &msg.Packet{ID: 1, App: 0, Src: 0, Dst: 1, Size: 1 << 30, Class: msg.ClassRequest}
		benchFeed(b, r, topology.North, pkt, &now)
		in := r.in[topology.North]
		vc := &in.vcs[1]
		seq := cfg.Depth
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if disarm {
				r.fastArmed = false
			}
			// Play the engine's link phase by hand: drain the east wire,
			// recycle the consumed flit's credit, top the input VC back up.
			f, fok, cr, cok := east.Shift()
			if cok {
				r.DeliverCredit(topology.East, cr)
			}
			if fok {
				east.SendCredit(f.VC)
			}
			if vc.buf.Len() < cfg.Depth {
				nf := msg.FlitAt(pkt, seq)
				nf.VC = 1
				r.DeliverFlit(topology.North, nf)
				seq++
			}
			r.Tick(now)
			now++
		}
		b.StopTimer()
		if sent := r.FlitsSent(topology.East); b.N > 100 && sent < int64(b.N)/2 {
			b.Fatalf("stream stalled: %d flits sent over %d cycles", sent, b.N)
		}
		if !disarm && b.N > 100 && r.FastTicks() == 0 {
			b.Fatal("fast path never engaged")
		}
	}
	b.Run("fast", func(b *testing.B) { run(b, false) })
	b.Run("slow", func(b *testing.B) { run(b, true) })
}
