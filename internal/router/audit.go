package router

import (
	"rair/internal/msg"
	"rair/internal/topology"
)

// The audit surface exposes read-only snapshots of the router's pipeline
// state for the runtime invariant checker (internal/invariant). Every
// method here must be called only between tick barriers, from the
// coordinating goroutine, and must not mutate any state — the checker's
// presence may not perturb the simulation.

// InputVCState is a read-only snapshot of one input VC.
type InputVCState struct {
	VC int
	// Owner is the packet atomically holding the VC (nil when idle);
	// Allocated mirrors the stage machine (any stage past Idle).
	Owner     *msg.Packet
	Allocated bool
	// Buffered is the VC's buffer occupancy in flits.
	Buffered int
}

// OutputVCState is a read-only snapshot of one output VC.
type OutputVCState struct {
	VC       int
	Owner    *msg.Packet
	Credits  int
	TailSent bool
}

// AuditInputVCs calls fn for every VC of input port d.
func (r *Router) AuditInputVCs(d topology.Dir, fn func(InputVCState)) {
	for _, vc := range r.in[d].vcs {
		fn(InputVCState{
			VC: vc.idx, Owner: vc.owner,
			Allocated: vc.stage != stageIdle,
			Buffered:  vc.buf.Len(),
		})
	}
}

// AuditInputFlits calls fn for every buffered flit of input port d's VC vc,
// head first.
func (r *Router) AuditInputFlits(d topology.Dir, vc int, fn func(msg.Flit)) {
	buf := r.in[d].vcs[vc].buf
	for i := 0; i < buf.Len(); i++ {
		fn(buf.At(i))
	}
}

// AuditOutputVCs calls fn for every VC of output port d.
func (r *Router) AuditOutputVCs(d topology.Dir, fn func(OutputVCState)) {
	for _, v := range r.out[d].vcs {
		fn(OutputVCState{VC: v.idx, Owner: v.owner, Credits: v.credits, TailSent: v.tailSent})
	}
}

// OutputAllocated reports output port d's allocated-VC bookkeeping counter
// (must equal the owned VCs visible via AuditOutputVCs).
func (r *Router) OutputAllocated(d topology.Dir) int { return r.out[d].allocated }

// STRegister returns the flit parked in output port d's switch-traversal
// register, if occupied. An ST flit has already consumed a downstream
// credit but is not yet on the wire, so credit accounting must count it.
func (r *Router) STRegister(d topology.Dir) (msg.Flit, bool) {
	return r.out[d].st, r.out[d].stValid
}

// STPending reports how many ST registers are occupied across the router.
func (r *Router) STPending() int { return r.stPending }

// InLink returns input port d's upstream link (nil on mesh-edge ports).
func (r *Router) InLink(d topology.Dir) *Link { return r.in[d].link }

// OutLink returns output port d's downstream link (nil on mesh-edge ports).
func (r *Router) OutLink(d topology.Dir) *Link { return r.out[d].link }
