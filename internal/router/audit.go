package router

import (
	"fmt"
	"math/bits"

	"rair/internal/msg"
	"rair/internal/topology"
)

// The audit surface exposes read-only snapshots of the router's pipeline
// state for the runtime invariant checker (internal/invariant). Every
// method here must be called only between tick barriers, from the
// coordinating goroutine, and must not mutate any state — the checker's
// presence may not perturb the simulation.

// InputVCState is a read-only snapshot of one input VC.
type InputVCState struct {
	VC int
	// Owner is the packet atomically holding the VC (nil when idle);
	// Allocated mirrors the stage machine (any stage past Idle).
	Owner     *msg.Packet
	Allocated bool
	// Buffered is the VC's buffer occupancy in flits.
	Buffered int
}

// OutputVCState is a read-only snapshot of one output VC.
type OutputVCState struct {
	VC       int
	Owner    *msg.Packet
	Credits  int
	TailSent bool
}

// AuditInputVCs calls fn for every VC of input port d.
func (r *Router) AuditInputVCs(d topology.Dir, fn func(InputVCState)) {
	for i := range r.in[d].vcs {
		vc := &r.in[d].vcs[i]
		fn(InputVCState{
			VC: vc.idx, Owner: vc.owner,
			Allocated: vc.stage != stageIdle,
			Buffered:  vc.buf.Len(),
		})
	}
}

// AuditInputFlits calls fn for every buffered flit of input port d's VC vc,
// head first.
func (r *Router) AuditInputFlits(d topology.Dir, vc int, fn func(msg.Flit)) {
	buf := &r.in[d].vcs[vc].buf
	for i := 0; i < buf.Len(); i++ {
		fn(buf.At(i))
	}
}

// AuditOutputVCs calls fn for every VC of output port d.
func (r *Router) AuditOutputVCs(d topology.Dir, fn func(OutputVCState)) {
	for i := range r.out[d].vcs {
		v := &r.out[d].vcs[i]
		fn(OutputVCState{VC: v.idx, Owner: v.owner, Credits: v.credits, TailSent: v.tailSent})
	}
}

// OutputAllocated reports output port d's allocated-VC bookkeeping counter
// (must equal the owned VCs visible via AuditOutputVCs).
func (r *Router) OutputAllocated(d topology.Dir) int { return r.out[d].allocated }

// STRegister returns the flit parked in output port d's switch-traversal
// register, if occupied. An ST flit has already consumed a downstream
// credit but is not yet on the wire, so credit accounting must count it.
func (r *Router) STRegister(d topology.Dir) (msg.Flit, bool) {
	return r.out[d].st, r.out[d].stValid
}

// STPending reports how many ST registers are occupied across the router.
func (r *Router) STPending() int { return r.stPending }

// AuditMasks recomputes every incrementally-maintained occupancy bitmask
// and stage counter from the authoritative per-VC state (the slow reference
// scan the masks replaced) and reports each discrepancy through fn. A clean
// datapath reports nothing. Read-only; called between tick barriers by the
// invariant checker.
func (r *Router) AuditMasks(fn func(desc string)) {
	var rcN, vaN, activeN, stN int
	var saPortsRef uint8
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		in := r.in[d]
		var rcM, vaM, activeM, occM vcMask
		flits := 0
		for i := range in.vcs {
			vc := &in.vcs[i]
			bit := vcMask(1) << uint(vc.idx)
			switch vc.stage {
			case stageRC:
				rcM |= bit
			case stageVA:
				vaM |= bit
			case stageActive:
				activeM |= bit
			}
			if !vc.buf.Empty() {
				occM |= bit
			}
			flits += vc.buf.Len()
		}
		rcN += bits.OnesCount64(rcM)
		vaN += bits.OnesCount64(vaM)
		activeN += bits.OnesCount64(activeM)
		reportMask(fn, "in", d, "rcMask", in.rcMask, rcM)
		reportMask(fn, "in", d, "vaMask", in.vaMask, vaM)
		reportMask(fn, "in", d, "activeMask", in.activeMask, activeM)
		reportMask(fn, "in", d, "occMask", in.occMask, occM)
		reportMask(fn, "in", d, "saElig", in.saElig, r.refSAElig(d))
		if in.saElig != 0 {
			saPortsRef |= 1 << uint(d)
		}
		if in.bufFlits != flits {
			fn(fmt.Sprintf("in %s bufFlits=%d, buffers hold %d", d, in.bufFlits, flits))
		}
	}
	if r.saPorts != saPortsRef {
		fn(fmt.Sprintf("saPorts=%#x, per-port saElig sets give %#x", r.saPorts, saPortsRef))
	}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		out := r.out[d]
		var freeM, creditM, fullM, drainM, streamM vcMask
		credits := 0
		for i := range out.vcs {
			v := &out.vcs[i]
			bit := vcMask(1) << uint(v.idx)
			if v.owner == nil {
				freeM |= bit
			}
			if v.credits > 0 {
				creditM |= bit
			}
			if v.credits == r.cfg.Depth {
				fullM |= bit
			}
			if v.owner != nil && v.tailSent {
				drainM |= bit
			}
			if v.owner != nil && !v.tailSent {
				streamM |= bit
			}
			credits += v.credits
		}
		reportMask(fn, "out", d, "freeMask", out.freeMask, freeM)
		reportMask(fn, "out", d, "creditMask", out.creditMask, creditM)
		reportMask(fn, "out", d, "fullMask", out.fullMask, fullM)
		reportMask(fn, "out", d, "drainMask", out.drainMask, drainM)
		reportMask(fn, "out", d, "streamMask", out.streamMask, streamM)
		// Reverse-map audit: every live stream must point back at the one
		// input VC feeding it (atomic allocation makes the map single-
		// valued), and that input VC must agree on the forward route.
		for m := out.streamMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			v := &out.vcs[i]
			if int(v.inPort) >= int(topology.NumDirs) || int(v.inVC) >= len(r.in[v.inPort].vcs) {
				fn(fmt.Sprintf("out %s VC %d reverse map (%d,%d) out of range", d, i, v.inPort, v.inVC))
				continue
			}
			ivc := &r.in[v.inPort].vcs[v.inVC]
			if ivc.stage != stageActive || ivc.outPort != d || ivc.outVC != i || ivc.owner != v.owner {
				fn(fmt.Sprintf("out %s VC %d reverse map (%d,%d) disagrees with input VC (stage=%d outPort=%s outVC=%d)",
					d, i, v.inPort, v.inVC, ivc.stage, ivc.outPort, ivc.outVC))
			}
		}
		if out.creditSum != credits {
			fn(fmt.Sprintf("out %s creditSum=%d, counters hold %d", d, out.creditSum, credits))
		}
		if out.stValid {
			stN++
		}
	}
	if r.fastArmed {
		if r.fastN == 0 {
			fn("fast path armed with an empty plan")
		}
		for k := 0; k < r.fastN; k++ {
			s := &r.fastPlan[k]
			switch {
			case !s.out.stValid:
				fn(fmt.Sprintf("fast plan %d: output %s armed without a latched ST flit", k, s.outDir))
			case bits.OnesCount64(s.out.streamMask) != 1:
				fn(fmt.Sprintf("fast plan %d: output %s carries %d streams, fast path requires exactly 1",
					k, s.outDir, bits.OnesCount64(s.out.streamMask)))
			case s.ivc.stage != stageActive:
				fn(fmt.Sprintf("fast plan %d: input VC no longer active", k))
			}
		}
	}
	if r.rcCount != rcN {
		fn(fmt.Sprintf("rcCount=%d, stage scan finds %d", r.rcCount, rcN))
	}
	if r.vaCount != vaN {
		fn(fmt.Sprintf("vaCount=%d, stage scan finds %d", r.vaCount, vaN))
	}
	if r.activeCount != activeN {
		fn(fmt.Sprintf("activeCount=%d, stage scan finds %d", r.activeCount, activeN))
	}
	if r.stPending != stN {
		fn(fmt.Sprintf("stPending=%d, ST registers hold %d", r.stPending, stN))
	}
}

// refSAElig recomputes input port d's SA_in candidate set from the
// authoritative per-VC state — the full per-cycle rescan the incremental
// saElig mask replaced. The predicate is ST-blind, matching the mask's
// contract (SA_in filters the ST register per candidate). It is the shadow
// reference for the invariant checker, the equivalence property test, and
// the old-path micro-benchmark.
func (r *Router) refSAElig(d topology.Dir) vcMask {
	in := r.in[d]
	var elig vcMask
	for m := in.activeMask & in.occMask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		vc := &in.vcs[i]
		out := r.out[vc.outPort]
		if !out.ejection && out.creditMask>>uint(vc.outVC)&1 == 0 {
			continue
		}
		elig |= 1 << uint(i)
	}
	return elig
}

func reportMask(fn func(string), side string, d topology.Dir, name string, got, want vcMask) {
	if got != want {
		fn(fmt.Sprintf("%s %s %s=%#x, reference scan gives %#x", side, d, name, got, want))
	}
}

// AuditMasks recomputes the NI's VC shadow masks and activity counters from
// the authoritative stream and credit state, reporting discrepancies through
// fn (the NI-side counterpart of Router.AuditMasks).
func (ni *NI) AuditMasks(fn func(desc string)) {
	var streamM, creditM, fullM vcMask
	streaming := 0
	for i := range ni.streams {
		if ni.streams[i].pkt != nil {
			streamM |= 1 << uint(i)
			streaming++
		}
	}
	for i, c := range ni.credits {
		if c > 0 {
			creditM |= 1 << uint(i)
		}
		if c == ni.cfg.Depth {
			fullM |= 1 << uint(i)
		}
	}
	if ni.streamMask != streamM {
		fn(fmt.Sprintf("NI streamMask=%#x, stream scan gives %#x", ni.streamMask, streamM))
	}
	if ni.creditMask != creditM {
		fn(fmt.Sprintf("NI creditMask=%#x, credit scan gives %#x", ni.creditMask, creditM))
	}
	if ni.fullMask != fullM {
		fn(fmt.Sprintf("NI fullMask=%#x, credit scan gives %#x", ni.fullMask, fullM))
	}
	if ni.streaming != streaming {
		fn(fmt.Sprintf("NI streaming=%d, stream scan finds %d", ni.streaming, streaming))
	}
	if d := bits.OnesCount64(ni.drainMask); ni.drainingN != d {
		fn(fmt.Sprintf("NI drainingN=%d, drainMask holds %d", ni.drainingN, d))
	}
	queued := 0
	for _, q := range ni.queues {
		queued += q.Len()
	}
	if ni.queued != queued {
		fn(fmt.Sprintf("NI queued=%d, queues hold %d", ni.queued, queued))
	}
	if ni.streamMask&ni.drainMask != 0 {
		fn(fmt.Sprintf("NI streamMask %#x overlaps drainMask %#x", ni.streamMask, ni.drainMask))
	}
}

// InLink returns input port d's upstream link (nil on mesh-edge ports).
func (r *Router) InLink(d topology.Dir) *Link { return r.in[d].link }

// OutLink returns output port d's downstream link (nil on mesh-edge ports).
func (r *Router) OutLink(d topology.Dir) *Link { return r.out[d].link }
