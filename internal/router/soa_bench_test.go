package router

import (
	"math/bits"
	"testing"
)

// BenchmarkWakeEnqueue measures arming a component in the shard store's
// wake bitmap — the cost every flit arrival and injection pays.
func BenchmarkWakeEnqueue(b *testing.B) {
	s := NewSoA(DefaultConfig(1), 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.armR(i & 63)
	}
}

// BenchmarkWakeDrain measures the engine's armed-router sweep skeleton
// (word scan, trailing-zeros walk, keep-mask rebuild) at the densities that
// bracket real workloads: a nearly idle shard, a loaded region, and full
// saturation. Work is left zero so every visited bit is dropped — the pure
// drain cost with no component tick mixed in.
func BenchmarkWakeDrain(b *testing.B) {
	for _, armed := range []int{1, 8, 64} {
		b.Run(map[int]string{1: "sparse", 8: "regional", 64: "saturated"}[armed], func(b *testing.B) {
			s := NewSoA(DefaultConfig(1), 64)
			b.ReportAllocs()
			visited := 0
			for i := 0; i < b.N; i++ {
				for li := 0; li < armed; li++ {
					s.armR(li * (64 / armed))
				}
				for wi, w := range s.ArmedR {
					keep := uint64(0)
					base := wi << 6
					for m := w; m != 0; m &= m - 1 {
						li := base + bits.TrailingZeros64(m)
						visited++
						if s.Work[li] > 0 {
							keep |= 1 << (uint(li) & 63)
						}
					}
					s.ArmedR[wi] = keep
				}
			}
			if visited != b.N*armed {
				b.Fatalf("sweep visited %d bits, want %d", visited, b.N*armed)
			}
		})
	}
}
