// Package faults is a deterministic, seeded fault injector for the NoC:
// link-level flit loss and corruption recovered by a CRC-style check with
// go-back-N retransmission (bounded retries, sender-timeout for silent
// drops, NACK latency for detected corruptions), virtual-channel credit
// leaks repaired by periodic credit reconciliation, and transient
// whole-router pipeline stalls.
//
// Every fault decision is a pure hash of (seed, site, event identity) —
// never of wall clock, map order or goroutine schedule — so a faulty run is
// bit-reproducible at any tick-engine worker count. Decisions attach at
// three sites:
//
//   - the flit wire of a link (verdict per arriving flit attempt), owned by
//     the receiver's shard;
//   - the credit wire of a link (leak verdict per arriving credit), owned
//     by the sender's shard;
//   - a router's compute phase (stall windows), owned by the router's
//     shard.
//
// Counter fields follow the same ownership split, so the injector needs no
// locks; cross-link aggregation (Report, Reconcile) runs on the
// coordinating goroutine between tick barriers.
package faults

import (
	"fmt"
	"sort"

	"rair/internal/msg"
	"rair/internal/telemetry"
)

// LinkProfile sets the per-traversal fault probabilities of one link.
type LinkProfile struct {
	// DropProb is the probability a flit is silently lost in flight; the
	// sender detects the loss by timeout (Config.DropTimeout) and
	// retransmits.
	DropProb float64
	// CorruptProb is the probability a flit arrives corrupted. The
	// receiver's CRC-style check detects it, discards the flit and NACKs;
	// the sender retransmits after Config.NackLatency cycles.
	CorruptProb float64
	// CreditLeakProb is the probability a returning credit is lost
	// upstream. Leaked credits are restored only by periodic credit
	// reconciliation (Config.ReconcileEvery).
	CreditLeakProb float64
}

func (p LinkProfile) validate(key string) error {
	for _, v := range [...]struct {
		name string
		p    float64
	}{{"drop", p.DropProb}, {"corrupt", p.CorruptProb}, {"leak", p.CreditLeakProb}} {
		if v.p < 0 || v.p > 1 {
			return fmt.Errorf("faults: %s probability %v for %q outside [0,1]", v.name, v.p, key)
		}
	}
	return nil
}

// RouterProfile sets one router's transient-stall behavior.
type RouterProfile struct {
	// StallProb is the per-cycle probability that an unstalled router
	// enters a stall window (its pipeline freezes; flits still arrive and
	// buffer).
	StallProb float64
	// StallLen is the stall window length in cycles (default
	// DefaultStallLen when StallProb > 0).
	StallLen int
}

// Defaults for the recovery-protocol timing knobs.
const (
	DefaultMaxRetries  = 32
	DefaultDropTimeout = 32
	DefaultNackLatency = 2
	DefaultReconcile   = 1024
	DefaultStallLen    = 16
)

// Config describes the fault model of one run.
type Config struct {
	// Seed drives every fault decision (independent of the traffic seed).
	Seed uint64
	// Link is the default profile applied to every link; PerLink overrides
	// it for individual links, keyed by the wiring key ("r3>r4" for the
	// router-3-to-router-4 flit wire, "ni3>r3" / "r3>ni3" for a node's
	// injection / ejection link).
	Link    LinkProfile
	PerLink map[string]LinkProfile
	// Router is the default stall profile for every router; PerRouter
	// overrides it per node id.
	Router    RouterProfile
	PerRouter map[int]RouterProfile
	// MaxRetries bounds per-flit retransmission attempts; a flit failing
	// more than MaxRetries times is permanently lost (counted, and fed to
	// the invariant checker's conservation and credit accounting).
	MaxRetries int
	// DropTimeout is the sender's loss-detection timeout in cycles.
	DropTimeout int
	// NackLatency is the corruption NACK round-trip in cycles.
	NackLatency int
	// ReconcileEvery is the credit-reconciliation period in cycles: every
	// period, leaked credits on every link are audited and restored to
	// their owner. 0 disables reconciliation (leaked credits are then
	// permanent, and throughput degrades until the network wedges).
	ReconcileEvery int64
}

func (c Config) withDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.DropTimeout == 0 {
		c.DropTimeout = DefaultDropTimeout
	}
	if c.NackLatency == 0 {
		c.NackLatency = DefaultNackLatency
	}
	if c.Router.StallProb > 0 && c.Router.StallLen == 0 {
		c.Router.StallLen = DefaultStallLen
	}
	return c
}

// Validate rejects out-of-range probabilities and negative timing knobs.
func (c Config) Validate() error {
	if err := c.Link.validate("default"); err != nil {
		return err
	}
	for k, p := range c.PerLink {
		if err := p.validate(k); err != nil {
			return err
		}
	}
	if c.Router.StallProb < 0 || c.Router.StallProb > 1 {
		return fmt.Errorf("faults: stall probability %v outside [0,1]", c.Router.StallProb)
	}
	for node, p := range c.PerRouter {
		if p.StallProb < 0 || p.StallProb > 1 {
			return fmt.Errorf("faults: stall probability %v for router %d outside [0,1]", p.StallProb, node)
		}
	}
	if c.MaxRetries < 0 || c.DropTimeout < 0 || c.NackLatency < 0 || c.ReconcileEvery < 0 {
		return fmt.Errorf("faults: negative timing parameter")
	}
	return nil
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	if c.Link != (LinkProfile{}) || c.Router != (RouterProfile{}) {
		return true
	}
	return len(c.PerLink) > 0 || len(c.PerRouter) > 0
}

// LinkKey builds the PerLink key for the flit wire from src to dst; use
// NIKey for the links between a node and its network interface.
func LinkKey(src, dst int) string { return fmt.Sprintf("r%d>r%d", src, dst) }

// NIKey builds the PerLink key for a node's NI links: the injection link
// (inject=true, "niN>rN") or the ejection link ("rN>niN").
func NIKey(node int, inject bool) string {
	if inject {
		return fmt.Sprintf("ni%d>r%d", node, node)
	}
	return fmt.Sprintf("r%d>ni%d", node, node)
}

// splitmix64 is the stateless mixer behind every fault decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Counters are one link's monotonic fault-event counts. The flit-side
// fields (CorruptedFlits..LostFlits) are written only by the receiver's
// shard, CreditLeaks only by the sender's shard, and ReconciledCredits only
// by the coordinator at a tick barrier, so the struct needs no lock.
type Counters struct {
	// CorruptedFlits counts arrivals discarded by the CRC check;
	// DroppedFlits counts flits silently lost in flight (recovered by
	// sender timeout); Retransmits counts flits re-entering the wire,
	// including the in-order go-back-N resends behind a failed flit.
	CorruptedFlits int64 `json:"corruptedFlits"`
	DroppedFlits   int64 `json:"droppedFlits"`
	Retransmits    int64 `json:"retransmits"`
	// LostFlits counts flits that exhausted MaxRetries and are permanently
	// gone (their packet can never be delivered).
	LostFlits int64 `json:"lostFlits"`
	// CreditLeaks counts credits lost upstream; ReconciledCredits counts
	// leaked credits restored by reconciliation.
	CreditLeaks       int64 `json:"creditLeaks"`
	ReconciledCredits int64 `json:"reconciledCredits"`
}

func (c *Counters) add(o *Counters) {
	c.CorruptedFlits += o.CorruptedFlits
	c.DroppedFlits += o.DroppedFlits
	c.Retransmits += o.Retransmits
	c.LostFlits += o.LostFlits
	c.CreditLeaks += o.CreditLeaks
	c.ReconciledCredits += o.ReconciledCredits
}

// flitKey identifies one flit for per-attempt bookkeeping.
type flitKey struct {
	pkt uint64
	seq int
}

// retxEntry is one flit awaiting (re)transmission on a link.
type retxEntry struct {
	f          msg.Flit
	eligibleAt int64
}

// LinkState is the fault state attached to one link. The flit-side methods
// (Arrive, Retransmit, Pending) are called only by the receiver's shard in
// the link phase; CreditArrive only by the sender's shard; Reconcile only
// by the coordinator at a barrier.
type LinkState struct {
	id        uint64
	key       string
	prof      LinkProfile
	cfg       *Config
	noCredits bool // ejection links carry no credits

	// retx is the in-order go-back-N resend queue; attempts tracks
	// per-flit failure counts while a flit is unresolved.
	retx     []retxEntry
	attempts map[flitKey]int
	// resent holds the identities of queued flits currently re-traversing
	// the wire, in push order. The wire is FIFO and Retransmit pushes at
	// most one flit per cycle, so resends arrive in exactly this order;
	// Arrive uses the head to tell a resend (deliverable while the queue is
	// non-empty) from a fresh flit that overtook the queue (held).
	resent []flitKey
	// When a resend itself fails again it re-enters the queue front, and
	// the rehold next resend arrivals (the ones already in flight behind
	// it) must be held again too: they are reinserted right after it, at
	// reinsert, ahead of the older held flits, restoring original wire
	// order. While rehold > 0 no verdict is rolled for resend arrivals, so
	// the count cannot nest.
	rehold   int
	reinsert int

	// leaked[vc] counts credits lost on the wire and not yet reconciled;
	// lost[vc] counts credits of permanently lost flits (never returning).
	leaked  []int
	leakedN int
	lost    []int

	// restore re-delivers a reconciled credit to the wire's sender side.
	restore func(vc int)

	// flitProbe is the receiver node's telemetry probe, credProbe the
	// sender node's (either nil when telemetry is off).
	flitProbe *telemetry.Probe
	credProbe *telemetry.Probe

	c Counters
}

// Key reports the link's wiring key.
func (ls *LinkState) Key() string { return ls.key }

// Counters returns a snapshot of the link's fault counters. Only safe at a
// tick barrier.
func (ls *LinkState) Counters() Counters { return ls.c }

// Pending reports whether retransmissions are queued; the link phase must
// keep servicing the wire while any are.
func (ls *LinkState) Pending() bool { return len(ls.retx) > 0 }

// PendingFlits reports the queued retransmission count (flit-conservation
// accounting).
func (ls *LinkState) PendingFlits() int { return len(ls.retx) }

// PendingForVC reports queued retransmissions bound for downstream VC vc
// (per-VC credit accounting: these flits hold a consumed credit).
func (ls *LinkState) PendingForVC(vc int) int {
	n := 0
	for _, e := range ls.retx {
		if e.f.VC == vc {
			n++
		}
	}
	return n
}

// LeakedFor reports unreconciled leaked credits for vc.
func (ls *LinkState) LeakedFor(vc int) int {
	if vc < len(ls.leaked) {
		return ls.leaked[vc]
	}
	return 0
}

// LostFor reports credits pinned by permanently lost flits for vc.
func (ls *LinkState) LostFor(vc int) int {
	if vc < len(ls.lost) {
		return ls.lost[vc]
	}
	return 0
}

// verdict rolls the deterministic per-attempt fate of a flit.
func (ls *LinkState) verdict(f msg.Flit, attempt int) (drop, corrupt bool) {
	if ls.prof.DropProb == 0 && ls.prof.CorruptProb == 0 {
		return false, false
	}
	h := splitmix64(ls.cfg.Seed ^ ls.id*0x9e3779b97f4a7c15 ^
		splitmix64(f.Pkt.ID^uint64(f.Seq)<<48^uint64(attempt)<<56))
	u := unit(h)
	if u < ls.prof.DropProb {
		return true, false
	}
	if u < ls.prof.DropProb+ls.prof.CorruptProb {
		return false, true
	}
	return false, false
}

// Arrive filters a flit completing its wire traversal at cycle now. It
// returns true when the flit is delivered; otherwise the flit was dropped,
// corrupted, or held for in-order delivery behind an earlier failure, and
// has been queued for retransmission (unless its retry budget is spent).
func (ls *LinkState) Arrive(f msg.Flit, now int64) bool {
	k := flitKey{f.Pkt.ID, f.Seq}
	isResend := len(ls.resent) > 0 && ls.resent[0] == k
	if isResend {
		ls.resent = ls.resent[:copy(ls.resent, ls.resent[1:])]
		if ls.rehold > 0 {
			// An earlier resend failed again while this one was in flight
			// behind it: hold it (no verdict, no retry charge) and slot it
			// back in right after the failed one.
			ls.rehold--
			ls.retx = append(ls.retx, retxEntry{})
			copy(ls.retx[ls.reinsert+1:], ls.retx[ls.reinsert:])
			ls.retx[ls.reinsert] = retxEntry{f: f, eligibleAt: now}
			ls.reinsert++
			return false
		}
	}
	attempt := ls.attempts[k]
	drop, corrupt := ls.verdict(f, attempt)
	if !drop && !corrupt {
		if !isResend && (len(ls.retx) > 0 || len(ls.resent) > 0) {
			// A failed flit is queued ahead of us, or a resend of one is in
			// flight behind us on the wire (this flit overtook it): go-back-N
			// holds this one so delivery stays in original order. No retry is
			// charged; it resends as-is.
			ls.retx = append(ls.retx, retxEntry{f: f, eligibleAt: now})
			return false
		}
		delete(ls.attempts, k)
		return true
	}
	if ls.attempts == nil {
		ls.attempts = make(map[flitKey]int)
	}
	var wait int64
	if drop {
		ls.c.DroppedFlits++
		ls.flitProbe.FaultDroppedFlit()
		wait = int64(ls.cfg.DropTimeout)
	} else {
		ls.c.CorruptedFlits++
		ls.flitProbe.FaultCorruptedFlit()
		wait = int64(ls.cfg.NackLatency)
	}
	if attempt+1 > ls.cfg.MaxRetries {
		// Retry budget exhausted: the flit is permanently lost. Its credit
		// never returns; record it so credit accounting stays closed.
		ls.c.LostFlits++
		ls.flitProbe.FaultLostFlit()
		ls.growVC(f.VC)
		ls.lost[f.VC]++
		delete(ls.attempts, k)
		return false
	}
	ls.attempts[k] = attempt + 1
	e := retxEntry{f: f, eligibleAt: now + wait}
	if isResend {
		// A failed resend retries before the flits held behind it, keeping
		// the queue in original wire order; the resends already in flight
		// behind it re-hold as they arrive.
		ls.retx = append(ls.retx, retxEntry{})
		copy(ls.retx[1:], ls.retx)
		ls.retx[0] = e
		ls.rehold = len(ls.resent)
		ls.reinsert = 1
	} else {
		ls.retx = append(ls.retx, e)
	}
	return false
}

// Retransmit returns the next eligible queued flit, if any. The caller
// pushes it back onto the wire. While a rehold window is open (resends of a
// re-failed flit still in flight) the queue is frozen: popping would race
// the pending reinsertions and reorder the wire.
func (ls *LinkState) Retransmit(now int64) (msg.Flit, bool) {
	if ls.rehold > 0 || len(ls.retx) == 0 || ls.retx[0].eligibleAt > now {
		return msg.Flit{}, false
	}
	f := ls.retx[0].f
	copy(ls.retx, ls.retx[1:])
	ls.retx = ls.retx[:len(ls.retx)-1]
	ls.resent = append(ls.resent, flitKey{f.Pkt.ID, f.Seq})
	ls.c.Retransmits++
	ls.flitProbe.FaultRetransmit()
	return f, true
}

// CreditArrive filters a credit completing its upstream traversal; false
// means the credit leaked.
func (ls *LinkState) CreditArrive(vc int, now int64) bool {
	if ls.noCredits || ls.prof.CreditLeakProb == 0 {
		return true
	}
	h := splitmix64(ls.cfg.Seed ^ (ls.id + 0x1000) ^ uint64(now)*0xd1342543de82ef95 ^ uint64(vc)<<40)
	if unit(h) >= ls.prof.CreditLeakProb {
		return true
	}
	ls.growVC(vc)
	ls.leaked[vc]++
	ls.leakedN++
	ls.c.CreditLeaks++
	ls.credProbe.FaultCreditLeak()
	return false
}

func (ls *LinkState) growVC(vc int) {
	for len(ls.leaked) <= vc {
		ls.leaked = append(ls.leaked, 0)
	}
	for len(ls.lost) <= vc {
		ls.lost = append(ls.lost, 0)
	}
}

// Reconcile restores every leaked credit to the sender side and returns the
// restored count. Coordinator-only, at a tick barrier.
func (ls *LinkState) Reconcile() int {
	if ls.leakedN == 0 {
		return 0
	}
	n := 0
	for vc, k := range ls.leaked {
		for ; k > 0; k-- {
			ls.restore(vc)
			n++
		}
		ls.leaked[vc] = 0
	}
	ls.leakedN = 0
	ls.c.ReconciledCredits += int64(n)
	ls.credProbe.FaultReconciledCredits(int64(n))
	return n
}

// Injector owns a run's fault state: one LinkState per registered link and
// the per-router stall windows.
type Injector struct {
	cfg   Config
	links []*LinkState

	stallUntil  []int64
	stallCycles []int64
	stallProbes []*telemetry.Probe
}

// NewInjector validates cfg, applies defaults and sizes the per-router
// stall state for nodes routers.
func NewInjector(cfg Config, nodes int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg:         cfg.withDefaults(),
		stallUntil:  make([]int64, nodes),
		stallCycles: make([]int64, nodes),
		stallProbes: make([]*telemetry.Probe, nodes),
	}, nil
}

// Config returns the injector's effective (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// RegisterLink creates the fault state for the link named key. restore
// re-delivers reconciled credits to the sender side; noCredits marks links
// whose credit wire is never used (ejection links).
func (in *Injector) RegisterLink(key string, restore func(vc int), noCredits bool) *LinkState {
	prof := in.cfg.Link
	if p, ok := in.cfg.PerLink[key]; ok {
		prof = p
	}
	ls := &LinkState{
		id:        uint64(len(in.links) + 1),
		key:       key,
		prof:      prof,
		cfg:       &in.cfg,
		noCredits: noCredits,
		restore:   restore,
	}
	in.links = append(in.links, ls)
	return ls
}

// SetLinkProbes attaches telemetry probes to a link's fault state: flit for
// the receiver node, cred for the sender node (either may be nil).
func (in *Injector) SetLinkProbes(ls *LinkState, flit, cred *telemetry.Probe) {
	ls.flitProbe, ls.credProbe = flit, cred
}

// SetStallProbe attaches node's telemetry probe for stall-cycle counting.
func (in *Injector) SetStallProbe(node int, p *telemetry.Probe) { in.stallProbes[node] = p }

// routerProf returns node's effective stall profile.
func (in *Injector) routerProf(node int) RouterProfile {
	if p, ok := in.cfg.PerRouter[node]; ok {
		if p.StallProb > 0 && p.StallLen == 0 {
			p.StallLen = DefaultStallLen
		}
		return p
	}
	return in.cfg.Router
}

// RouterStalled reports whether node's pipeline is frozen at cycle now,
// starting a new deterministic stall window when one is due. Call exactly
// once per router per cycle, from the router's owning shard.
func (in *Injector) RouterStalled(node int, now int64) bool {
	if now < in.stallUntil[node] {
		in.stallCycles[node]++
		in.stallProbes[node].FaultStallCycle()
		return true
	}
	prof := in.routerProf(node)
	if prof.StallProb == 0 {
		return false
	}
	h := splitmix64(in.cfg.Seed ^ 0xabcd ^ uint64(node)<<32 ^ uint64(now)*0x2545f4914f6cdd1d)
	if unit(h) >= prof.StallProb {
		return false
	}
	in.stallUntil[node] = now + int64(prof.StallLen)
	in.stallCycles[node]++
	in.stallProbes[node].FaultStallCycle()
	return true
}

// ReconcileDue reports whether the credit-reconciliation period elapses at
// cycle now.
func (in *Injector) ReconcileDue(now int64) bool {
	return in.cfg.ReconcileEvery > 0 && (now+1)%in.cfg.ReconcileEvery == 0
}

// ReconcileAll restores leaked credits on every link (coordinator-only, at
// a barrier); it returns the restored count.
func (in *Injector) ReconcileAll() int {
	n := 0
	for _, ls := range in.links {
		n += ls.Reconcile()
	}
	return n
}

// LostFlits reports flits permanently lost across all links (the
// dropped-by-fault term of the conservation invariant).
func (in *Injector) LostFlits() int64 {
	var n int64
	for _, ls := range in.links {
		n += ls.c.LostFlits
	}
	return n
}

// PendingRetransmits reports flits queued for retransmission across all
// links.
func (in *Injector) PendingRetransmits() int {
	n := 0
	for _, ls := range in.links {
		n += len(ls.retx)
	}
	return n
}

// Report is the aggregated fault outcome of a run.
type Report struct {
	Totals Counters `json:"totals"`
	// StallCycles is the total router-pipeline stall cycles; StalledRouters
	// the number of routers that stalled at least once.
	StallCycles    int64 `json:"stallCycles"`
	StalledRouters int   `json:"stalledRouters"`
	// Links holds the per-link counter blocks of links with at least one
	// event, keyed by wiring key and sorted for stable output.
	Links []LinkReport `json:"links,omitempty"`
}

// LinkReport is one link's slice of the report.
type LinkReport struct {
	Key      string   `json:"key"`
	Counters Counters `json:"counters"`
}

// Report aggregates all fault counters. Only safe at a tick barrier (or
// after the run).
func (in *Injector) Report() *Report {
	r := &Report{}
	for _, ls := range in.links {
		if ls.c == (Counters{}) {
			continue
		}
		r.Totals.add(&ls.c)
		r.Links = append(r.Links, LinkReport{Key: ls.key, Counters: ls.c})
	}
	sort.Slice(r.Links, func(i, j int) bool { return r.Links[i].Key < r.Links[j].Key })
	for _, sc := range in.stallCycles {
		r.StallCycles += sc
		if sc > 0 {
			r.StalledRouters++
		}
	}
	return r
}

func (r *Report) String() string {
	return fmt.Sprintf("faults: %d dropped, %d corrupted, %d retransmits, %d lost; %d credit leaks, %d reconciled; %d stall cycles on %d routers",
		r.Totals.DroppedFlits, r.Totals.CorruptedFlits, r.Totals.Retransmits, r.Totals.LostFlits,
		r.Totals.CreditLeaks, r.Totals.ReconciledCredits, r.StallCycles, r.StalledRouters)
}
