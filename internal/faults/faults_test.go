package faults_test

import (
	"strings"
	"testing"

	"rair/internal/faults"
	"rair/internal/msg"
	"rair/internal/router"
)

// mkInjector builds an injector for n nodes, failing the test on error.
func mkInjector(t *testing.T, cfg faults.Config, nodes int) *faults.Injector {
	t.Helper()
	in, err := faults.NewInjector(cfg, nodes)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	return in
}

func TestConfigValidate(t *testing.T) {
	bad := []faults.Config{
		{Link: faults.LinkProfile{DropProb: -0.1}},
		{Link: faults.LinkProfile{CorruptProb: 1.5}},
		{PerLink: map[string]faults.LinkProfile{"r0>r1": {CreditLeakProb: 2}}},
		{Router: faults.RouterProfile{StallProb: -1}},
		{PerRouter: map[int]faults.RouterProfile{3: {StallProb: 7}}},
		{MaxRetries: -1},
		{DropTimeout: -5},
		{NackLatency: -2},
		{ReconcileEvery: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, c)
		}
	}
	good := faults.Config{Link: faults.LinkProfile{DropProb: 0.5, CorruptProb: 0.5}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid config: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	in := mkInjector(t, faults.Config{Router: faults.RouterProfile{StallProb: 0.1}}, 1)
	cfg := in.Config()
	if cfg.MaxRetries != faults.DefaultMaxRetries {
		t.Errorf("MaxRetries default = %d, want %d", cfg.MaxRetries, faults.DefaultMaxRetries)
	}
	if cfg.DropTimeout != faults.DefaultDropTimeout {
		t.Errorf("DropTimeout default = %d, want %d", cfg.DropTimeout, faults.DefaultDropTimeout)
	}
	if cfg.NackLatency != faults.DefaultNackLatency {
		t.Errorf("NackLatency default = %d, want %d", cfg.NackLatency, faults.DefaultNackLatency)
	}
	if cfg.Router.StallLen != faults.DefaultStallLen {
		t.Errorf("StallLen default = %d, want %d", cfg.Router.StallLen, faults.DefaultStallLen)
	}
}

func TestEnabled(t *testing.T) {
	if (faults.Config{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	cases := []faults.Config{
		{Link: faults.LinkProfile{DropProb: 0.1}},
		{Router: faults.RouterProfile{StallProb: 0.1}},
		{PerLink: map[string]faults.LinkProfile{"r0>r1": {}}},
		{PerRouter: map[int]faults.RouterProfile{0: {}}},
	}
	for i, c := range cases {
		if !c.Enabled() {
			t.Errorf("case %d: config %+v reports disabled", i, c)
		}
	}
}

func TestKeys(t *testing.T) {
	if got := faults.LinkKey(3, 4); got != "r3>r4" {
		t.Errorf("LinkKey(3,4) = %q", got)
	}
	if got := faults.NIKey(5, true); got != "ni5>r5" {
		t.Errorf("NIKey(5,true) = %q", got)
	}
	if got := faults.NIKey(5, false); got != "r5>ni5" {
		t.Errorf("NIKey(5,false) = %q", got)
	}
}

// driveLink pushes every flit of pkts through a faulty link in order, one
// flit per cycle when the wire accepts it, and collects arrivals until the
// link drains. It returns the delivered flits in arrival order.
func driveLink(t *testing.T, l *router.Link, flits []msg.Flit, maxCycles int64) []msg.Flit {
	t.Helper()
	var out []msg.Flit
	next := 0
	for now := int64(0); now < maxCycles; now++ {
		if f, ok := l.ShiftFlits(now); ok {
			out = append(out, f)
		}
		if next < len(flits) && l.CanSendFlit() {
			l.SendFlit(flits[next])
			next++
		}
		if next == len(flits) && !l.FlitsBusy() {
			return out
		}
	}
	t.Fatalf("link did not drain in %d cycles (%d/%d sent, %d delivered)",
		maxCycles, next, len(flits), len(out))
	return nil
}

// makeFlits builds n single-flit packets' worth of flits with distinct ids.
func makeFlits(n int) []msg.Flit {
	fs := make([]msg.Flit, 0, n)
	for i := 0; i < n; i++ {
		p := &msg.Packet{ID: uint64(i + 1), Size: 1}
		fs = append(fs, msg.Flit{Pkt: p, Type: msg.HeadTail, Seq: 0, VC: i % 4})
	}
	return fs
}

// TestLinkDeliveryUnderFaults is the core go-back-N property: every flit is
// delivered exactly once and in order despite drops and corruptions.
func TestLinkDeliveryUnderFaults(t *testing.T) {
	in := mkInjector(t, faults.Config{
		Seed: 42,
		Link: faults.LinkProfile{DropProb: 0.15, CorruptProb: 0.1},
	}, 0)
	ls := in.RegisterLink("r0>r1", nil, false)
	l := router.NewLink(2)
	l.SetFaults(ls)

	flits := makeFlits(400)
	got := driveLink(t, l, flits, 100000)

	if len(got) != len(flits) {
		t.Fatalf("delivered %d flits, want %d", len(got), len(flits))
	}
	for i, f := range got {
		if f.Pkt.ID != flits[i].Pkt.ID || f.Seq != flits[i].Seq {
			t.Fatalf("arrival %d out of order: got pkt %d seq %d, want pkt %d seq %d",
				i, f.Pkt.ID, f.Seq, flits[i].Pkt.ID, flits[i].Seq)
		}
	}
	c := ls.Counters()
	if c.DroppedFlits == 0 || c.CorruptedFlits == 0 {
		t.Errorf("expected both fault kinds at these rates: %+v", c)
	}
	// Every failed flit re-enters the wire, and so does every flit held
	// behind it, so retransmits at least cover the failures.
	if c.Retransmits < c.DroppedFlits+c.CorruptedFlits {
		t.Errorf("retransmits %d < faults %d", c.Retransmits, c.DroppedFlits+c.CorruptedFlits)
	}
	if c.LostFlits != 0 {
		t.Errorf("lost %d flits with a default retry budget", c.LostFlits)
	}
	if ls.Pending() || ls.PendingFlits() != 0 {
		t.Error("retransmission queue not empty after drain")
	}
}

// TestMultiFlitOrderUnderFaults soaks multi-flit packets over longer wires
// across many seeds and send spacings, asserting strict per-wire delivery
// order. Spaced sends (one flit every few cycles, as a router's SA grants
// them) lock down the overtake case: a failed flit's resend re-enters the
// wire behind a fresh flit already in flight, and that fresh flit must be
// held even though the retransmission queue just drained.
func TestMultiFlitOrderUnderFaults(t *testing.T) {
	for _, latency := range []int{1, 2, 3} {
		for _, spacing := range []int64{1, 2, 3, 4} {
			for seed := uint64(1); seed <= 10; seed++ {
				in := mkInjector(t, faults.Config{
					Seed: seed,
					Link: faults.LinkProfile{DropProb: 0.08, CorruptProb: 0.08},
				}, 0)
				ls := in.RegisterLink("r0>r1", nil, false)
				l := router.NewLink(latency)
				l.SetFaults(ls)

				var flits []msg.Flit
				for i := 0; i < 60; i++ {
					p := &msg.Packet{ID: uint64(i + 1), Size: 4}
					flits = append(flits, msg.Flits(p)...)
				}
				var got []msg.Flit
				next := 0
				for now := int64(0); now < 200000; now++ {
					if f, ok := l.ShiftFlits(now); ok {
						got = append(got, f)
					}
					if next < len(flits) && now%spacing == 0 && l.CanSendFlit() {
						l.SendFlit(flits[next])
						next++
					}
					if next == len(flits) && !l.FlitsBusy() {
						break
					}
				}
				if len(got) != len(flits) {
					t.Fatalf("latency %d spacing %d seed %d: delivered %d flits, want %d",
						latency, spacing, seed, len(got), len(flits))
				}
				for i, f := range got {
					if f.Pkt.ID != flits[i].Pkt.ID || f.Seq != flits[i].Seq {
						t.Fatalf("latency %d spacing %d seed %d: arrival %d out of order: got pkt %d seq %d, want pkt %d seq %d",
							latency, spacing, seed, i, f.Pkt.ID, f.Seq, flits[i].Pkt.ID, flits[i].Seq)
					}
				}
			}
		}
	}
}

// TestLinkDeterminism: the same seed reproduces the same arrival schedule;
// a different seed produces a different one.
func TestLinkDeterminism(t *testing.T) {
	trace := func(seed uint64) []int64 {
		in := mkInjector(t, faults.Config{
			Seed: seed,
			Link: faults.LinkProfile{DropProb: 0.2, CorruptProb: 0.1},
		}, 0)
		ls := in.RegisterLink("r0>r1", nil, false)
		l := router.NewLink(1)
		l.SetFaults(ls)
		flits := makeFlits(100)
		var times []int64
		next := 0
		for now := int64(0); now < 100000; now++ {
			if _, ok := l.ShiftFlits(now); ok {
				times = append(times, now)
			}
			if next < len(flits) && l.CanSendFlit() {
				l.SendFlit(flits[next])
				next++
			}
			if next == len(flits) && !l.FlitsBusy() {
				break
			}
		}
		return times
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different arrival counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, arrival %d at cycle %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical arrival schedules")
	}
}

// TestRetryExhaustion: with a certain-failure link and a tiny retry budget
// the flit is permanently lost, its credit is pinned, and the queue empties.
func TestRetryExhaustion(t *testing.T) {
	in := mkInjector(t, faults.Config{
		Seed:        1,
		Link:        faults.LinkProfile{DropProb: 1},
		MaxRetries:  2,
		DropTimeout: 1,
	}, 0)
	ls := in.RegisterLink("r0>r1", nil, false)
	l := router.NewLink(1)
	l.SetFaults(ls)

	p := &msg.Packet{ID: 99, Size: 1}
	l.SendFlit(msg.Flit{Pkt: p, Type: msg.HeadTail, VC: 2})
	for now := int64(0); now < 100 && l.FlitsBusy(); now++ {
		if _, ok := l.ShiftFlits(now); ok {
			t.Fatalf("certain-drop link delivered a flit at cycle %d", now)
		}
	}
	c := ls.Counters()
	if c.LostFlits != 1 {
		t.Fatalf("LostFlits = %d, want 1 (counters %+v)", c.LostFlits, c)
	}
	// Attempts 0..MaxRetries all roll a drop before the flit is abandoned.
	if want := int64(3); c.DroppedFlits != want {
		t.Errorf("DroppedFlits = %d, want %d", c.DroppedFlits, want)
	}
	if ls.LostFor(2) != 1 {
		t.Errorf("LostFor(2) = %d, want 1", ls.LostFor(2))
	}
	if ls.Pending() {
		t.Error("retransmission queue still pending after exhaustion")
	}
	if in.LostFlits() != 1 {
		t.Errorf("Injector.LostFlits = %d, want 1", in.LostFlits())
	}
}

// TestCreditLeakAndReconcile: a certain-leak link loses every credit; the
// restore callback gets them all back at reconciliation.
func TestCreditLeakAndReconcile(t *testing.T) {
	restored := map[int]int{}
	in := mkInjector(t, faults.Config{
		Seed:           3,
		Link:           faults.LinkProfile{CreditLeakProb: 1},
		ReconcileEvery: 8,
	}, 0)
	ls := in.RegisterLink("r0>r1", func(vc int) { restored[vc]++ }, false)
	l := router.NewLink(1)
	l.SetFaults(ls)

	sent := map[int]int{}
	for now := int64(0); now < 6; now++ {
		if _, ok := l.ShiftCredits(now); ok {
			t.Fatalf("certain-leak link delivered a credit at cycle %d", now)
		}
		vc := int(now) % 3
		l.SendCredit(vc)
		sent[vc]++
	}
	l.ShiftCredits(6) // drain the last push
	c := ls.Counters()
	if c.CreditLeaks != 6 {
		t.Fatalf("CreditLeaks = %d, want 6", c.CreditLeaks)
	}
	for vc, n := range sent {
		if ls.LeakedFor(vc) != n {
			t.Errorf("LeakedFor(%d) = %d, want %d", vc, ls.LeakedFor(vc), n)
		}
	}

	if !in.ReconcileDue(7) { // (7+1) % 8 == 0
		t.Error("ReconcileDue(7) = false with period 8")
	}
	if in.ReconcileDue(8) {
		t.Error("ReconcileDue(8) = true with period 8")
	}
	if n := in.ReconcileAll(); n != 6 {
		t.Fatalf("ReconcileAll restored %d credits, want 6", n)
	}
	for vc, n := range sent {
		if restored[vc] != n {
			t.Errorf("restored[%d] = %d, want %d", vc, restored[vc], n)
		}
		if ls.LeakedFor(vc) != 0 {
			t.Errorf("LeakedFor(%d) = %d after reconcile", vc, ls.LeakedFor(vc))
		}
	}
	if ls.Counters().ReconciledCredits != 6 {
		t.Errorf("ReconciledCredits = %d, want 6", ls.Counters().ReconciledCredits)
	}
	if in.ReconcileAll() != 0 {
		t.Error("second ReconcileAll restored credits again")
	}
}

// TestEjectionLinkCreditsImmune: noCredits links never leak (their credit
// wire is unused by construction, so the filter must pass everything).
func TestEjectionLinkCreditsImmune(t *testing.T) {
	in := mkInjector(t, faults.Config{Seed: 3, Link: faults.LinkProfile{CreditLeakProb: 1}}, 0)
	ls := in.RegisterLink("r0>ni0", nil, true)
	for now := int64(0); now < 50; now++ {
		if !ls.CreditArrive(0, now) {
			t.Fatal("noCredits link leaked a credit")
		}
	}
}

// TestStallWindows: stall decisions are deterministic per (node, cycle),
// windows last StallLen cycles, and per-router profiles override the default.
func TestStallWindows(t *testing.T) {
	cfg := faults.Config{
		Seed:      11,
		PerRouter: map[int]faults.RouterProfile{0: {StallProb: 1, StallLen: 4}},
	}
	in := mkInjector(t, cfg, 2)
	// Router 0 stalls every cycle it is asked; router 1 has no profile.
	for now := int64(0); now < 12; now++ {
		if !in.RouterStalled(0, now) {
			t.Fatalf("router 0 not stalled at cycle %d with StallProb 1", now)
		}
		if in.RouterStalled(1, now) {
			t.Fatalf("router 1 stalled at cycle %d with no profile", now)
		}
	}

	// Moderate probability: the pattern reproduces exactly across injectors.
	pattern := func() []bool {
		in := mkInjector(t, faults.Config{Seed: 5, Router: faults.RouterProfile{StallProb: 0.05, StallLen: 3}}, 1)
		var out []bool
		for now := int64(0); now < 2000; now++ {
			out = append(out, in.RouterStalled(0, now))
		}
		return out
	}
	a, b := pattern(), pattern()
	stalls := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stall pattern diverged at cycle %d", i)
		}
		if a[i] {
			stalls++
		}
	}
	if stalls == 0 {
		t.Error("no stalls in 2000 cycles at StallProb 0.05")
	}
}

// TestReport: aggregation covers only links with events, sorted by key, and
// counts stalled routers.
func TestReport(t *testing.T) {
	in := mkInjector(t, faults.Config{
		Seed:       1,
		Link:       faults.LinkProfile{DropProb: 1},
		MaxRetries: 1, DropTimeout: 1,
		PerRouter: map[int]faults.RouterProfile{1: {StallProb: 1, StallLen: 2}},
	}, 3)
	quiet := in.RegisterLink("r0>r1", nil, false)
	noisy := in.RegisterLink("r2>r1", nil, false)
	_ = quiet

	p := &msg.Packet{ID: 7, Size: 1}
	noisy.Arrive(msg.Flit{Pkt: p, Type: msg.HeadTail}, 0)
	in.RouterStalled(1, 0)
	in.RouterStalled(1, 1)

	r := in.Report()
	if len(r.Links) != 1 || r.Links[0].Key != "r2>r1" {
		t.Fatalf("report links = %+v, want only r2>r1", r.Links)
	}
	if r.Totals.DroppedFlits != 1 {
		t.Errorf("Totals.DroppedFlits = %d, want 1", r.Totals.DroppedFlits)
	}
	if r.StallCycles != 2 || r.StalledRouters != 1 {
		t.Errorf("stalls = %d cycles on %d routers, want 2 on 1", r.StallCycles, r.StalledRouters)
	}
	if s := r.String(); !strings.Contains(s, "1 dropped") || !strings.Contains(s, "2 stall cycles") {
		t.Errorf("Report.String() = %q", s)
	}
}

// TestPendingForVC tracks queued retransmissions per downstream VC.
func TestPendingForVC(t *testing.T) {
	in := mkInjector(t, faults.Config{
		Seed: 1, Link: faults.LinkProfile{DropProb: 1},
		MaxRetries: 100, DropTimeout: 50,
	}, 0)
	ls := in.RegisterLink("r0>r1", nil, false)
	p := &msg.Packet{ID: 1, Size: 2}
	ls.Arrive(msg.Flit{Pkt: p, Type: msg.Head, Seq: 0, VC: 1}, 0)
	ls.Arrive(msg.Flit{Pkt: p, Type: msg.Tail, Seq: 1, VC: 1}, 1)
	if got := ls.PendingForVC(1); got != 2 {
		t.Errorf("PendingForVC(1) = %d, want 2", got)
	}
	if got := ls.PendingForVC(0); got != 0 {
		t.Errorf("PendingForVC(0) = %d, want 0", got)
	}
	if got := ls.PendingFlits(); got != 2 {
		t.Errorf("PendingFlits = %d, want 2", got)
	}
}
