package obs

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"rair/internal/harness"
	"rair/internal/network"
	"rair/internal/telemetry"
)

// sampleSnapshot builds a fully populated snapshot by hand so the writers
// are exercised without running a simulation.
func sampleSnapshot() *Snapshot {
	tot := telemetry.Counters{
		LinkFlits: 1000, CreditStalls: 20, InjectStalls: 3,
		AttrNativeCycles: 40, AttrForeignCycles: 60, AttrEscapeCycles: 5, AttrFaultCycles: 0,
	}
	attr := &telemetry.AttributionReport{
		Rows: []telemetry.DecompRow{{
			DecompKey: telemetry.DecompKey{App: 0, Class: 0},
			Decomp: telemetry.Decomp{
				Packets: 10, TotalCycles: 300, InjectQueueCycles: 10,
				ZeroLoadCycles: 185, NativeCycles: 40, ForeignCycles: 60, EscapeCycles: 5,
			},
			InterferenceRatio: 60.0 / 105.0,
		}},
	}
	attr.Total = attr.Rows[0]
	attr.Total.App = -1
	attr.Total.Class = -1
	eng := &network.EngineProfile{
		Cycles: 500, Workers: 2,
		Shards: []network.ShardProfile{
			{Shard: 0, Nodes: 32, RouterTicks: 900, NITicks: 400, RouterQuiescence: 0.5},
			{Shard: 1, Nodes: 32, RouterTicks: 800, NITicks: 300, RouterQuiescence: 0.6},
		},
		Barrier: []network.BarrierProfile{{Phase: "links", Waits: 500, WaitNS: 123456}},
	}
	eng.Barrier[0].Hist[12] = 500
	return &Snapshot{
		Cycle: 500, Totals: &tot, Attribution: attr, Engine: eng,
		Batch: &harness.BatchStats{Width: 2, Sims: 2, Passes: 100, Steps: 190, Occupancy: []int64{0, 10, 90}},
	}
}

var (
	sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9].*$`)
	metaLine   = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
)

// checkPrometheus is a strict-enough text-format check: every line is a
// well-formed sample or HELP/TYPE comment, no (name, labels) series is
// duplicated, and HELP/TYPE for a family appear exactly once, before its
// samples. It returns the set of series names seen.
func checkPrometheus(t *testing.T, text string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	series := map[string]bool{}
	declared := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !metaLine.MatchString(line) {
				t.Fatalf("malformed comment line: %q", line)
			}
			f := strings.Fields(line)
			if f[1] == "TYPE" {
				if declared[f[2]] {
					t.Fatalf("family %s declared twice", f[2])
				}
				declared[f[2]] = true
			}
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		key := line[:strings.LastIndex(line, " ")]
		if series[key] {
			t.Fatalf("duplicate series: %q", key)
		}
		series[key] = true
		names[strings.SplitN(key, "{", 2)[0]] = true
	}
	return names
}

func TestWritePrometheusFull(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	names := checkPrometheus(t, buf.String())
	for _, want := range []string{
		"rair_sim_cycle",
		"rair_interference_ratio",
		"rair_latency_decomp_cycles_total",
		"rair_blame_cycles_total",
		"rair_engine_quiescence_ratio",
		"rair_engine_barrier_wait_seconds_bucket",
		"rair_engine_barrier_wait_seconds_sum",
		"rair_engine_barrier_wait_seconds_count",
		"rair_batch_mean_occupancy",
	} {
		if !names[want] {
			t.Fatalf("missing series %s in:\n%s", want, buf.String())
		}
	}
	if !strings.Contains(buf.String(), `rair_interference_ratio{app="all",class="all"}`) {
		t.Fatal("missing aggregate interference-ratio row")
	}
	// The histogram must be cumulative and capped by its count.
	if !strings.Contains(buf.String(), `rair_engine_barrier_wait_seconds_bucket{phase="links",le="+Inf"} 500`) {
		t.Fatalf("missing +Inf bucket:\n%s", buf.String())
	}
}

// TestWritePrometheusEmpty pins the stable-schema contract: even a zero
// snapshot (nothing enabled, nothing published yet) serves parseable text
// with the interference-ratio gauge and the barrier-wait histogram series
// present, zero-valued — serial engines included.
func TestWritePrometheusEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Snapshot{}).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	names := checkPrometheus(t, buf.String())
	for _, want := range []string{
		"rair_sim_cycle",
		"rair_interference_ratio",
		"rair_engine_barrier_wait_seconds_bucket",
		"rair_engine_barrier_wait_seconds_count",
	} {
		if !names[want] {
			t.Fatalf("missing always-present series %s in:\n%s", want, buf.String())
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "metric,labels,value" {
		t.Fatalf("bad header: %q", lines[0])
	}
	if len(lines) < 20 {
		t.Fatalf("suspiciously short CSV (%d lines)", len(lines))
	}
}

func TestServerEndpoints(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// Before any publish: the stable empty schema.
	checkPrometheus(t, get("/metrics"))
	if !strings.Contains(get("/snapshot"), `"cycle": 0`) {
		t.Fatal("empty snapshot JSON missing cycle")
	}

	srv.Publish(sampleSnapshot())
	metrics := get("/metrics")
	checkPrometheus(t, metrics)
	if !strings.Contains(metrics, "rair_sim_cycle 500") {
		t.Fatalf("published snapshot not served:\n%s", metrics)
	}
	if !strings.Contains(get("/snapshot"), `"cycle": 500`) {
		t.Fatal("snapshot JSON not updated after publish")
	}
}

func TestFmtFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {500, "500"}, {-3, "-3"}, {0.5, "0.5"}, {1.28e-07, "1.28e-07"},
	} {
		if got := fmtFloat(tc.v); got != tc.want {
			t.Fatalf("fmtFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
