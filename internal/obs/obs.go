// Package obs is the export surface of the observability layer: it bundles
// the telemetry collector's counter totals and interference attribution,
// the tick engine's self-profile, and the batch scheduler's window record
// into one Snapshot, and serializes snapshots as Prometheus text
// exposition, indented JSON, or flat CSV. A small HTTP listener (server.go)
// serves the latest snapshot live at /metrics and /snapshot — the first
// concrete slice of the simulation-as-a-service telemetry-streaming story.
//
// The package only ever reads data the simulation layers already produced
// on the coordinating goroutine; it holds no probes and cannot perturb a
// run.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"rair/internal/harness"
	"rair/internal/msg"
	"rair/internal/network"
	"rair/internal/telemetry"
)

// Snapshot is one self-consistent observability capture. Any section may be
// nil (telemetry off, profiling off, not a batch run); writers emit what is
// present plus the always-present core series (cycle, interference ratio,
// barrier-wait histogram) so scrapers see a stable schema.
type Snapshot struct {
	// Cycle is the simulation cycle the snapshot was taken at.
	Cycle int64 `json:"cycle"`

	// Totals is the run-wide telemetry counter block.
	Totals *telemetry.Counters `json:"totals,omitempty"`

	// Attribution is the per-(source app, class) latency decomposition
	// with interference ratios; nil until attribution is on and packets
	// have ejected.
	Attribution *telemetry.AttributionReport `json:"attribution,omitempty"`

	// Engine is the tick engine's self-profile (Params.Profile).
	Engine *network.EngineProfile `json:"engine,omitempty"`

	// Batch is the lockstep batch scheduler's window record, when the run
	// came through harness.RunBatchStats.
	Batch *harness.BatchStats `json:"batch,omitempty"`
}

// Snap captures a snapshot at cycle from whichever sources are live. Call
// on the goroutine driving the simulation (between ticks or after the
// run); both sources are coordinator-owned there.
func Snap(cycle int64, tel *telemetry.Collector, prof *network.EngineProfile) *Snapshot {
	s := &Snapshot{Cycle: cycle, Engine: prof}
	if tel != nil {
		t := tel.Totals()
		s.Totals = &t
		s.Attribution = tel.Attribution()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (the /snapshot payload and
// the -obs-report format for .json paths).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot to path: flat CSV when the path ends in
// .csv, indented JSON otherwise (the -obs-report convention).
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		err = s.WriteCSV(f)
	} else {
		err = s.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// WriteCSV writes the snapshot as flat name,labels,value rows — the same
// series the Prometheus exposition carries, in a spreadsheet-friendly
// shape (the -obs-report format for .csv paths).
func (s *Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "metric,labels,value"); err != nil {
		return err
	}
	var err error
	emit := func(name, labels string, v float64) {
		if err == nil {
			_, err = fmt.Fprintf(w, "%s,%s,%s\n", name, labels, fmtFloat(v))
		}
	}
	s.walk(emit)
	return err
}

// WritePrometheus writes the snapshot in Prometheus text exposition format
// (version 0.0.4) — the /metrics payload.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	header := func(name, help, typ string) {
		if err == nil {
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		}
	}
	emit := func(name, labels string, v float64) {
		if err != nil {
			return
		}
		if labels == "" {
			_, err = fmt.Fprintf(w, "%s %s\n", name, fmtFloat(v))
		} else {
			_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, fmtFloat(v))
		}
	}
	lastFamily := ""
	s.walkWithMeta(func(name, help, typ, labels string, v float64) {
		// Histogram series share one metric family: headers go on the base
		// name, once, with the _bucket/_sum/_count lines grouped under it.
		family := name
		if typ == "histogram" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				family = strings.TrimSuffix(family, suf)
			}
		}
		if family != lastFamily {
			header(family, help, typ)
			lastFamily = family
		}
		emit(name, labels, v)
	})
	return err
}

// fmtFloat renders a metric value: integral values without an exponent,
// everything else in Go's shortest form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// walk emits every series as (name, labels, value), for writers that don't
// need HELP/TYPE metadata.
func (s *Snapshot) walk(emit func(name, labels string, v float64)) {
	s.walkWithMeta(func(name, _, _, labels string, v float64) { emit(name, labels, v) })
}

// walkWithMeta is the single definition of the snapshot's metric schema.
// Series of one name are emitted contiguously (Prometheus requires it).
func (s *Snapshot) walkWithMeta(emit func(name, help, typ, labels string, v float64)) {
	emit("rair_sim_cycle", "Simulation cycle of the last snapshot.", "gauge", "", float64(s.Cycle))

	// Interference ratio: always present so scrapers can rely on it; the
	// aggregate row is app="all" and per-(source app, class) rows follow.
	const irName = "rair_interference_ratio"
	const irHelp = "Foreign-region share of attributed stall cycles (blame accountant)."
	if a := s.Attribution; a != nil {
		emit(irName, irHelp, "gauge", `app="all",class="all"`, a.Total.InterferenceRatio)
		for i := range a.Rows {
			r := &a.Rows[i]
			emit(irName, irHelp, "gauge", rowLabels(r), r.InterferenceRatio)
		}
	} else {
		emit(irName, irHelp, "gauge", `app="all",class="all"`, 0)
	}

	if a := s.Attribution; a != nil {
		const dName = "rair_latency_decomp_cycles_total"
		const dHelp = "Ejected-packet latency decomposition by cause bucket."
		for i := range a.Rows {
			r := &a.Rows[i]
			l := rowLabels(r)
			emit(dName, dHelp, "counter", l+`,bucket="injectQueue"`, float64(r.InjectQueueCycles))
			emit(dName, dHelp, "counter", l+`,bucket="zeroLoad"`, float64(r.ZeroLoadCycles))
			emit(dName, dHelp, "counter", l+`,bucket="native"`, float64(r.NativeCycles))
			emit(dName, dHelp, "counter", l+`,bucket="foreign"`, float64(r.ForeignCycles))
			emit(dName, dHelp, "counter", l+`,bucket="escape"`, float64(r.EscapeCycles))
			emit(dName, dHelp, "counter", l+`,bucket="fault"`, float64(r.FaultCycles))
		}
		const pName = "rair_attributed_packets_total"
		for i := range a.Rows {
			r := &a.Rows[i]
			emit(pName, "Ejected packets folded into the decomposition.", "counter", rowLabels(r), float64(r.Packets))
		}
	}

	if t := s.Totals; t != nil {
		emit("rair_link_flits_total", "Flits pushed onto output links.", "counter", "", float64(t.LinkFlits))
		emit("rair_credit_stalls_total", "SA candidates skipped for lack of a downstream credit.", "counter", "", float64(t.CreditStalls))
		emit("rair_inject_stalls_total", "Cycles an NI held a packet with no claimable VC.", "counter", "", float64(t.InjectStalls))
		const bName = "rair_blame_cycles_total"
		const bHelp = "Stalled-head cycles charged, by cause bucket."
		emit(bName, bHelp, "counter", `cause="native"`, float64(t.AttrNativeCycles))
		emit(bName, bHelp, "counter", `cause="foreign"`, float64(t.AttrForeignCycles))
		emit(bName, bHelp, "counter", `cause="escape"`, float64(t.AttrEscapeCycles))
		emit(bName, bHelp, "counter", `cause="fault"`, float64(t.AttrFaultCycles))
	}

	if e := s.Engine; e != nil {
		const phName = "rair_engine_phase_seconds_total"
		const phHelp = "Wall time per shard per engine phase."
		for i := range e.Shards {
			sh := &e.Shards[i]
			for ph, ns := range sh.PhaseNS {
				emit(phName, phHelp, "counter",
					fmt.Sprintf(`shard="%d",phase=%q`, sh.Shard, network.PhaseNames[ph]), float64(ns)/1e9)
			}
		}
		const tkName = "rair_engine_armed_ticks_total"
		const tkHelp = "Armed-component visits in the compute sweep."
		for i := range e.Shards {
			sh := &e.Shards[i]
			emit(tkName, tkHelp, "counter", fmt.Sprintf(`shard="%d",component="router"`, sh.Shard), float64(sh.RouterTicks))
			emit(tkName, tkHelp, "counter", fmt.Sprintf(`shard="%d",component="ni"`, sh.Shard), float64(sh.NITicks))
		}
		const dwName = "rair_engine_dirty_wires_total"
		const dwHelp = "Wire visits in the phase-1 dirty-bitmap sweeps."
		for i := range e.Shards {
			sh := &e.Shards[i]
			emit(dwName, dwHelp, "counter", fmt.Sprintf(`shard="%d",kind="flit"`, sh.Shard), float64(sh.DirtyFlitWires))
			emit(dwName, dwHelp, "counter", fmt.Sprintf(`shard="%d",kind="credit"`, sh.Shard), float64(sh.DirtyCredWires))
		}
		const qName = "rair_engine_quiescence_ratio"
		const qHelp = "Fraction of (node, cycle) slots skipped by the armed sweep."
		for i := range e.Shards {
			sh := &e.Shards[i]
			emit(qName, qHelp, "gauge", fmt.Sprintf(`shard="%d",component="router"`, sh.Shard), sh.RouterQuiescence)
			emit(qName, qHelp, "gauge", fmt.Sprintf(`shard="%d",component="ni"`, sh.Shard), sh.NIQuiescence)
		}
	}

	// Barrier-wait histogram: always emitted (zero-valued on serial
	// engines or with profiling off) so the series is a stable part of the
	// schema.
	s.walkBarriers(emit)

	if b := s.Batch; b != nil {
		emit("rair_batch_passes_total", "Lockstep batch cycle-loop passes.", "counter", "", float64(b.Passes))
		emit("rair_batch_steps_total", "Per-simulation steps executed by batch passes.", "counter", "", float64(b.Steps))
		emit("rair_batch_mean_occupancy", "Mean live-window size across batch passes.", "gauge", "", b.MeanOccupancy())
		for k, c := range b.Occupancy {
			if k == 0 {
				continue
			}
			emit("rair_batch_occupancy_passes_total", "Batch passes by live-window size.", "counter",
				fmt.Sprintf(`live="%d"`, k), float64(c))
		}
	}
}

// walkBarriers emits the coordinator barrier-wait series as a cumulative
// Prometheus histogram, one per phase, with log2-nanosecond buckets.
func (s *Snapshot) walkBarriers(emit func(name, help, typ, labels string, v float64)) {
	const hName = "rair_engine_barrier_wait_seconds"
	const hHelp = "Coordinator barrier drain time per phase (post-shard worker wait)."
	byPhase := map[string]*network.BarrierProfile{}
	if s.Engine != nil {
		for i := range s.Engine.Barrier {
			byPhase[s.Engine.Barrier[i].Phase] = &s.Engine.Barrier[i]
		}
	}
	for _, phase := range network.PhaseNames {
		bp := byPhase[phase]
		var cum int64
		var hist []int64
		var waits, waitNS int64
		if bp != nil {
			hist, waits, waitNS = bp.Hist[:], bp.Waits, bp.WaitNS
		}
		for k, c := range hist {
			cum += c
			le := float64(int64(1)<<uint(k)) / 1e9
			emit(hName+"_bucket", hHelp, "histogram",
				fmt.Sprintf(`phase=%q,le="%g"`, phase, le), float64(cum))
		}
		emit(hName+"_bucket", hHelp, "histogram", fmt.Sprintf(`phase=%q,le="+Inf"`, phase), float64(waits))
		emit(hName+"_sum", hHelp, "histogram", fmt.Sprintf(`phase=%q`, phase), float64(waitNS)/1e9)
		emit(hName+"_count", hHelp, "histogram", fmt.Sprintf(`phase=%q`, phase), float64(waits))
	}
}

// rowLabels renders a decomposition row's identifying labels.
func rowLabels(r *telemetry.DecompRow) string {
	return fmt.Sprintf(`app="%d",class=%q`, r.App, msg.Class(r.Class).String())
}
