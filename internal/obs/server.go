package obs

import (
	"net"
	"net/http"
	"sync/atomic"
)

// Server is the live observability endpoint: a plain HTTP listener serving
// the most recently published Snapshot as Prometheus text at /metrics and
// as JSON at /snapshot. Publishing is a single atomic pointer store, so the
// simulation loop can publish every N cycles without ever blocking on a
// scraper; handlers read whichever snapshot was current when the request
// arrived.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	snap atomic.Pointer[Snapshot]
}

// NewServer starts serving on addr (e.g. "localhost:9464", or ":0" to let
// the kernel pick a port — see Addr). The listener is live on return.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr is the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Publish makes snap the snapshot served to subsequent requests. The caller
// must not mutate snap afterwards.
func (s *Server) Publish(snap *Snapshot) { s.snap.Store(snap) }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// current returns the latest snapshot, or an empty one before the first
// Publish so both endpoints always answer with the stable schema.
func (s *Server) current() *Snapshot {
	if snap := s.snap.Load(); snap != nil {
		return snap
	}
	return &Snapshot{}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.current().WritePrometheus(w)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.current().WriteJSON(w)
}
