package memsys

import (
	"math"
	"testing"

	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/sim"
	"rair/internal/topology"
)

// fixedStream issues the given accesses round-robin every cycle.
type fixedStream struct {
	accesses []Access
	i        int
}

func (f *fixedStream) Next(*sim.RNG) (Access, bool) {
	a := f.accesses[f.i%len(f.accesses)]
	f.i++
	return a, true
}

// onceStream issues each access exactly once, then goes idle.
type onceStream struct {
	accesses []Access
	i        int
}

func (o *onceStream) Next(*sim.RNG) (Access, bool) {
	if o.i >= len(o.accesses) {
		return Access{}, false
	}
	a := o.accesses[o.i]
	o.i++
	return a, true
}

// idleInjector records injections and can deliver them instantly back.
type recordingNet struct {
	sys      *System
	inflight []*msg.Packet
	count    int
}

func (r *recordingNet) inject(node int, p *msg.Packet, now int64) {
	r.count++
	r.inflight = append(r.inflight, p)
}

// deliverAll hands every in-flight packet to the system as ejected.
func (r *recordingNet) deliverAll(now int64) {
	batch := r.inflight
	r.inflight = nil
	for _, p := range batch {
		r.sys.HandleEject(p, now)
	}
}

func quadSys(streams []AddressStream, cfg SystemConfig) (*System, *recordingNet) {
	regs := region.Quadrants(topology.NewMesh(8, 8))
	rn := &recordingNet{}
	sys := New(cfg, regs, streams, 1, rn.inject)
	rn.sys = sys
	return sys, rn
}

func nilStreams() []AddressStream { return make([]AddressStream, 64) }

func TestHomeBankRegionAffinity(t *testing.T) {
	sys, _ := quadSys(nilStreams(), DefaultSystemConfig())
	regs := region.Quadrants(topology.NewMesh(8, 8))
	in, out := 0, 0
	const blocks = 20000
	for b := 0; b < blocks; b++ {
		home := sys.HomeBank(0, uint64(b)*64)
		if regs.AppAt(home) == 0 {
			in++
		} else {
			out++
		}
	}
	frac := float64(out) / blocks
	// SharedFrac 0.10 sends 10% anywhere; 3/4 of those land outside.
	want := 0.10 * 0.75
	if math.Abs(frac-want) > 0.02 {
		t.Fatalf("out-of-region home fraction %v, want ≈%v", frac, want)
	}
}

func TestHomeBankDeterministic(t *testing.T) {
	sys, _ := quadSys(nilStreams(), DefaultSystemConfig())
	for b := uint64(0); b < 100; b++ {
		if sys.HomeBank(1, b*64) != sys.HomeBank(1, b*64) {
			t.Fatal("home bank not deterministic")
		}
		// Same block, different byte offset: same home.
		if sys.HomeBank(1, b*64) != sys.HomeBank(1, b*64+63) {
			t.Fatal("home bank must be block-granular")
		}
	}
}

func TestHomeBankUnassignedApp(t *testing.T) {
	sys, _ := quadSys(nilStreams(), DefaultSystemConfig())
	for b := uint64(0); b < 100; b++ {
		h := sys.HomeBank(region.Unassigned, b*64)
		if h < 0 || h >= 64 {
			t.Fatalf("home %d out of range", h)
		}
	}
}

func TestNearestMC(t *testing.T) {
	sys, _ := quadSys(nilStreams(), DefaultSystemConfig())
	mesh := topology.NewMesh(8, 8)
	// Node (1,1) is nearest the NW corner (node 0).
	if mc := sys.nearestMC(mesh.ID(topology.Coord{X: 1, Y: 1})); mc != 0 {
		t.Fatalf("nearest MC = %d", mc)
	}
	if mc := sys.nearestMC(mesh.ID(topology.Coord{X: 6, Y: 6})); mc != 63 {
		t.Fatalf("nearest MC = %d", mc)
	}
}

func TestMissProducesRequestAndReply(t *testing.T) {
	streams := nilStreams()
	streams[9] = &fixedStream{accesses: []Access{{Addr: 0x123440}}}
	cfg := DefaultSystemConfig()
	cfg.SharedFrac = 0
	sys, rn := quadSys(streams, cfg)

	sys.Tick(0)
	if rn.count != 1 {
		t.Fatalf("expected 1 request, got %d", rn.count)
	}
	req := rn.inflight[0]
	if req.Class != msg.ClassRequest || req.Size != 1 || req.Src != 9 || req.App != 0 {
		t.Fatalf("bad request %+v", req)
	}
	if sys.Outstanding() != 1 {
		t.Fatal("MSHR not allocated")
	}

	// Deliver the request at the bank (cold L2 -> MC request after L2
	// latency).
	rn.deliverAll(1)
	for c := int64(2); c < 10; c++ {
		sys.Tick(c)
	}
	if len(rn.inflight) != 1 {
		t.Fatalf("expected MC request, inflight=%d", len(rn.inflight))
	}
	mcReq := rn.inflight[0]
	if mcReq.Class != msg.ClassRequest || mcReq.Dst != 0 { // node 9 region: NW corner MC
		t.Fatalf("bad MC request %+v", mcReq)
	}
	rn.deliverAll(10)
	// Data reply after memory latency.
	var data *msg.Packet
	for c := int64(11); c < 11+200; c++ {
		sys.Tick(c)
		if len(rn.inflight) > 0 {
			data = rn.inflight[0]
			break
		}
	}
	if data == nil || data.Class != msg.ClassResponse || data.Size != 5 || data.Dst != 9 {
		t.Fatalf("bad data reply %+v", data)
	}
	rn.deliverAll(150)
	if sys.Outstanding() != 0 {
		t.Fatal("MSHR not released")
	}
	st := sys.Snapshot()
	if st.L2Misses != 1 || st.CompletedMisses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestL2HitSkipsMemory(t *testing.T) {
	streams := nilStreams()
	streams[9] = &onceStream{accesses: []Access{{Addr: 0x40}}}
	cfg := DefaultSystemConfig()
	cfg.SharedFrac = 0
	sys, rn := quadSys(streams, cfg)
	// Warm the home bank with the first block.
	home := sys.HomeBank(0, 0x40)
	sys.banks[home].Access(0x40)

	sys.Tick(0)
	rn.deliverAll(1)
	// L2 hit: data reply directly, no MC traffic.
	var reply *msg.Packet
	for c := int64(2); c < 20; c++ {
		sys.Tick(c)
		if len(rn.inflight) > 0 {
			reply = rn.inflight[0]
			rn.inflight = nil
			break
		}
	}
	if reply == nil || reply.Class != msg.ClassResponse || reply.Src != home {
		t.Fatalf("bad L2 hit reply %+v", reply)
	}
	if st := sys.Snapshot(); st.L2Hits != 1 || st.L2Misses != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	streams := nilStreams()
	// Every access misses (huge stride).
	accs := make([]Access, 64)
	for i := range accs {
		accs[i] = Access{Addr: uint64(i) << 20}
	}
	streams[5] = &fixedStream{accesses: accs}
	cfg := DefaultSystemConfig()
	cfg.MSHRs = 4
	sys, rn := quadSys(streams, cfg)
	for c := int64(0); c < 20; c++ {
		sys.Tick(c)
	}
	if sys.Outstanding() != 4 {
		t.Fatalf("outstanding = %d, want MSHR limit 4", sys.Outstanding())
	}
	if rn.count != 4 {
		t.Fatalf("injected %d requests, want 4", rn.count)
	}
	if sys.Snapshot().StalledCoreCycles == 0 {
		t.Fatal("no stall cycles recorded")
	}
}

func TestMSHRMerge(t *testing.T) {
	streams := nilStreams()
	streams[5] = &fixedStream{accesses: []Access{{Addr: 0x1000}, {Addr: 0x1008}}}
	sys, rn := quadSys(streams, DefaultSystemConfig())
	sys.Tick(0)
	sys.Tick(1) // same block: L1 hit? No - first access allocated it in L1.
	// The second access hits L1 (same block was allocated on miss), so
	// only one request goes out either way; force distinct L1 sets but
	// same L2 block is impossible — instead verify merge via counters.
	if rn.count != 1 {
		t.Fatalf("injected %d, want 1", rn.count)
	}
}

func TestHandleEjectIgnoresForeignPackets(t *testing.T) {
	sys, _ := quadSys(nilStreams(), DefaultSystemConfig())
	// Adversarial packet without memsys payload must be ignored.
	sys.HandleEject(&msg.Packet{ID: 1, App: 9, Src: 0, Dst: 5}, 10)
	if st := sys.Snapshot(); st.L2Hits+st.L2Misses != 0 {
		t.Fatal("foreign packet touched the caches")
	}
}

func TestStreamCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	regs := region.Quadrants(topology.NewMesh(8, 8))
	New(DefaultSystemConfig(), regs, make([]AddressStream, 3), 1, nil)
}
