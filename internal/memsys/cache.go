// Package memsys implements the memory-system substrate of the full-system
// configuration in Table 1: private L1 caches, a shared distributed L2 (one
// bank per node) with region-aware home mapping (the cooperative-cache
// optimization that forms RNoCs), and memory controllers at the four mesh
// corners. Cores drive it with synthetic address streams; every L1 miss
// turns into request/response packets on the NoC, which is how the
// PARSEC-proxy traffic of the application experiments is produced.
package memsys

import "fmt"

// Cache is a set-associative cache with true-LRU replacement. It tracks
// block presence only (no data), which is all traffic generation needs.
type Cache struct {
	sets      [][]line
	ways      int
	setShift  uint // log2(block size)
	setMask   uint64
	hits      uint64
	misses    uint64
	evictions uint64
}

type line struct {
	tag   uint64
	valid bool
}

// NewCache builds a cache of size bytes, the given associativity and block
// size (both powers of two; size must divide evenly into sets).
func NewCache(size, ways, block int) *Cache {
	if size <= 0 || ways <= 0 || block <= 0 {
		panic("memsys: non-positive cache geometry")
	}
	if block&(block-1) != 0 {
		panic("memsys: block size must be a power of two")
	}
	numSets := size / (ways * block)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("memsys: %d sets (size %d / ways %d / block %d) not a power of two",
			numSets, size, ways, block))
	}
	c := &Cache{
		ways:     ways,
		setShift: log2(uint64(block)),
		setMask:  uint64(numSets - 1),
		sets:     make([][]line, numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, 0, ways)
	}
	return c
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Access looks up addr, allocating the block on a miss (write-allocate for
// both reads and writes) and updating LRU order. It reports whether the
// access hit.
func (c *Cache) Access(addr uint64) bool {
	tag := addr >> c.setShift
	idx := tag & c.setMask
	set := c.sets[idx]
	for i, l := range set {
		if l.valid && l.tag == tag {
			// Move to MRU position (front).
			copy(set[1:i+1], set[:i])
			set[0] = l
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set) < c.ways {
		set = append(set, line{})
		c.sets[idx] = set
	} else {
		c.evictions++
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line{tag: tag, valid: true}
	return false
}

// Invalidate drops addr's block if present (coherence invalidation),
// reporting whether it was present.
func (c *Cache) Invalidate(addr uint64) bool {
	tag := addr >> c.setShift
	set := c.sets[tag&c.setMask]
	for i, l := range set {
		if l.valid && l.tag == tag {
			set[i].valid = false
			return true
		}
	}
	return false
}

// Contains reports whether addr's block is present, without touching LRU
// state.
func (c *Cache) Contains(addr uint64) bool {
	tag := addr >> c.setShift
	for _, l := range c.sets[tag&c.setMask] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Hits reports total hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses reports total miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// Evictions reports total LRU evictions.
func (c *Cache) Evictions() uint64 { return c.evictions }

// MissRate reports misses / accesses (0 before any access).
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}
