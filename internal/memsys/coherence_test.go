package memsys

import (
	"testing"

	"rair/internal/msg"
)

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(128, 2, 64)
	c.Access(0x40)
	if !c.Invalidate(0x40) {
		t.Fatal("present block not invalidated")
	}
	if c.Contains(0x40) {
		t.Fatal("block still present")
	}
	if c.Invalidate(0x40) {
		t.Fatal("absent block invalidated")
	}
	if c.Access(0x40) {
		t.Fatal("re-access after invalidation must miss")
	}
}

// Two cores read-share a block; a write by one invalidates the other's L1
// copy and produces exactly one invalidation plus its ack.
func TestWriteSharingInvalidates(t *testing.T) {
	streams := nilStreams()
	cfg := DefaultSystemConfig()
	cfg.SharedFrac = 0
	sys, rn := quadSys(streams, cfg)
	const addr = 0x7700
	home := sys.HomeBank(0, addr)
	reader, writer := 9, 10 // both app 0

	// Reader fetches the block (read): directory records it.
	sys.cores[reader].l1.Access(addr) // simulate the fill the data reply implies
	sys.HandleEject(&msg.Packet{
		App: 0, Src: reader, Dst: home, Class: msg.ClassRequest, Size: 1,
		Payload: payload{kind: l2Request, addr: addr, core: reader},
	}, 0)
	drainDelayed(sys, rn, 20)
	rn.inflight = nil // discard the data reply

	// Writer writes the same block: one invalidation to the reader.
	sys.HandleEject(&msg.Packet{
		App: 0, Src: writer, Dst: home, Class: msg.ClassRequest, Size: 1,
		Payload: payload{kind: l2Request, addr: addr, core: writer, write: true},
	}, 30)
	drainDelayed(sys, rn, 60)

	var inv *msg.Packet
	for _, p := range rn.inflight {
		if pl, ok := p.Payload.(payload); ok && pl.kind == invRequest {
			if inv != nil {
				t.Fatal("more than one invalidation")
			}
			inv = p
		}
	}
	if inv == nil || inv.Dst != reader {
		t.Fatalf("no invalidation to reader; inflight %v", rn.inflight)
	}
	if sys.Snapshot().InvalidationsSent != 1 {
		t.Fatalf("stats %+v", sys.Snapshot())
	}

	// Deliver the invalidation: the reader's L1 copy must vanish and an
	// ack must flow back to the bank.
	rn.inflight = nil
	sys.HandleEject(inv, 70)
	if sys.cores[reader].l1.Contains(addr) {
		t.Fatal("reader's L1 copy survived invalidation")
	}
	drainDelayed(sys, rn, 90)
	var ack *msg.Packet
	for _, p := range rn.inflight {
		if pl, ok := p.Payload.(payload); ok && pl.kind == invAck {
			ack = p
		}
	}
	if ack == nil || ack.Dst != home {
		t.Fatal("no ack to the home bank")
	}
	sys.HandleEject(ack, 100)
	if sys.Snapshot().InvAcksReceived != 1 || sys.Snapshot().L1Invalidated != 1 {
		t.Fatalf("stats %+v", sys.Snapshot())
	}
}

// A write by the only sharer triggers no invalidations.
func TestWriteByOwnerQuiet(t *testing.T) {
	streams := nilStreams()
	cfg := DefaultSystemConfig()
	cfg.SharedFrac = 0
	sys, rn := quadSys(streams, cfg)
	const addr = 0x9900
	home := sys.HomeBank(0, addr)
	for i := 0; i < 3; i++ {
		sys.HandleEject(&msg.Packet{
			App: 0, Src: 9, Dst: home, Class: msg.ClassRequest, Size: 1,
			Payload: payload{kind: l2Request, addr: addr, core: 9, write: true},
		}, int64(i*10))
	}
	drainDelayed(sys, rn, 60)
	if n := sys.Snapshot().InvalidationsSent; n != 0 {
		t.Fatalf("%d invalidations for a private block", n)
	}
}

// Reads never invalidate; the sharer set just grows.
func TestReadSharingQuiet(t *testing.T) {
	streams := nilStreams()
	cfg := DefaultSystemConfig()
	cfg.SharedFrac = 0
	sys, rn := quadSys(streams, cfg)
	const addr = 0xAA00
	home := sys.HomeBank(0, addr)
	for _, core := range []int{8, 9, 10, 11} {
		sys.HandleEject(&msg.Packet{
			App: 0, Src: core, Dst: home, Class: msg.ClassRequest, Size: 1,
			Payload: payload{kind: l2Request, addr: addr, core: core},
		}, 0)
	}
	drainDelayed(sys, rn, 60)
	if n := sys.Snapshot().InvalidationsSent; n != 0 {
		t.Fatalf("%d invalidations from reads", n)
	}
	// A write now invalidates all three other sharers.
	sys.HandleEject(&msg.Packet{
		App: 0, Src: 8, Dst: home, Class: msg.ClassRequest, Size: 1,
		Payload: payload{kind: l2Request, addr: addr, core: 8, write: true},
	}, 100)
	drainDelayed(sys, rn, 160)
	if n := sys.Snapshot().InvalidationsSent; n != 3 {
		t.Fatalf("invalidations = %d, want 3", n)
	}
}

// drainDelayed ticks the system so delayed protocol actions inject.
func drainDelayed(sys *System, rn *recordingNet, until int64) {
	for c := int64(0); c <= until; c++ {
		sys.Tick(c)
	}
}
