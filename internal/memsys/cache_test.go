package memsys

import (
	"testing"
	"testing/quick"
)

func TestCacheGeometry(t *testing.T) {
	c := NewCache(32<<10, 2, 64) // Table 1 L1: 256 sets
	if c.Sets() != 256 {
		t.Fatalf("sets = %d", c.Sets())
	}
	c2 := NewCache(256<<10, 16, 64) // Table 1 L2 bank: 256 sets
	if c2.Sets() != 256 {
		t.Fatalf("L2 sets = %d", c2.Sets())
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(0, 2, 64) },
		func() { NewCache(32<<10, 2, 63) },  // non-power-of-two block
		func() { NewCache(3000, 2, 64) },    // non-power-of-two sets
		func() { NewCache(32<<10, 0, 64) },  // no ways
		func() { NewCache(32<<10, 2, -64) }, // negative block
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(1<<10, 2, 64)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1030) { // same 64B block
		t.Fatal("same-block access missed")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct construction: 2-way, 1 set (128 B cache, 64 B blocks).
	c := NewCache(128, 2, 64)
	a, b, x := uint64(0), uint64(1<<20), uint64(2<<20)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU, b is LRU
	c.Access(x) // evicts b
	if !c.Contains(a) || c.Contains(b) || !c.Contains(x) {
		t.Fatal("LRU eviction order wrong")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}
}

func TestCacheContainsDoesNotTouchLRU(t *testing.T) {
	c := NewCache(128, 2, 64)
	a, b, x := uint64(0), uint64(1<<20), uint64(2<<20)
	c.Access(a)
	c.Access(b)   // order: b (MRU), a (LRU)
	c.Contains(a) // must NOT refresh a
	c.Access(x)   // evicts a
	if c.Contains(a) || !c.Contains(b) {
		t.Fatal("Contains must not update recency")
	}
}

func TestCacheWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := NewCache(32<<10, 2, 64)
	// 256 blocks with 64-block stride per set... simply: sequential 256
	// blocks (half the cache) twice: second pass must be all hits.
	for round := 0; round < 2; round++ {
		for i := 0; i < 256; i++ {
			c.Access(uint64(i * 64))
		}
	}
	if c.Misses() != 256 {
		t.Fatalf("misses = %d, want 256 cold only", c.Misses())
	}
}

// Property: a 1-way (direct-mapped) cache hits iff the previous access to
// the set had the same tag — reference-model equivalence on a tiny cache.
func TestCacheMatchesReferenceModel(t *testing.T) {
	if err := quick.Check(func(addrs []uint16) bool {
		c := NewCache(4*64, 1, 64) // 4 sets, direct mapped
		last := map[uint64]uint64{}
		for _, a16 := range addrs {
			addr := uint64(a16)
			tag := addr >> 6
			set := tag & 3
			want := false
			if prev, ok := last[set]; ok && prev == tag {
				want = true
			}
			if c.Access(addr) != want {
				return false
			}
			last[set] = tag
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRate(t *testing.T) {
	c := NewCache(128, 2, 64)
	if c.MissRate() != 0 {
		t.Fatal("fresh cache miss rate")
	}
	c.Access(0)
	c.Access(0)
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
}
