package memsys

import "testing"

func BenchmarkCacheAccessHit(b *testing.B) {
	c := NewCache(32<<10, 2, 64)
	c.Access(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}

func BenchmarkCacheAccessStream(b *testing.B) {
	c := NewCache(32<<10, 2, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64)
	}
}

func BenchmarkL2Bank16Way(b *testing.B) {
	c := NewCache(256<<10, 16, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%8192) * 64)
	}
}
