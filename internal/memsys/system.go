package memsys

import (
	"fmt"

	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/sim"
)

// SystemConfig is the full-system configuration of Table 1.
type SystemConfig struct {
	// L1Size/L1Ways: private I/D L1 (32 KB, 2-way, 1-cycle).
	L1Size, L1Ways int
	L1Latency      int64
	// L2Size/L2Ways: shared L2 bank per node (256 KB, 16-way, 6-cycle).
	L2Size, L2Ways int
	L2Latency      int64
	// MemLatency is the memory-controller access time (128 cycles).
	MemLatency int64
	// Block is the cache block size (64 B).
	Block int
	// MSHRs bounds outstanding misses per core.
	MSHRs int
	// SharedFrac is the probability that a block's home L2 bank lies
	// outside its application's region (the residual inter-region
	// traffic after the cooperative-cache optimization).
	SharedFrac float64
}

// DefaultSystemConfig returns Table 1's parameters with a 10% out-of-region
// home fraction.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		L1Size: 32 << 10, L1Ways: 2, L1Latency: 1,
		L2Size: 256 << 10, L2Ways: 16, L2Latency: 6,
		MemLatency: 128,
		Block:      64,
		MSHRs:      16,
		SharedFrac: 0.10,
	}
}

// Access is one memory reference from a core.
type Access struct {
	Addr  uint64
	Write bool
}

// AddressStream produces a core's memory reference stream. Implementations
// live in the workload package (the PARSEC proxies).
type AddressStream interface {
	// Next returns the next access. issued reports whether the core
	// issues a memory access this cycle at all (modeling compute gaps);
	// when false the returned Access is ignored.
	Next(rng *sim.RNG) (a Access, issued bool)
}

// reqKind distinguishes protocol messages (carried in packet payloads).
type reqKind uint8

const (
	l2Request  reqKind = iota // core -> home L2 bank
	mcRequest                 // L2 bank -> memory controller
	dataReply                 // bank or MC -> core
	invRequest                // L2 bank -> sharer core (coherence invalidation)
	invAck                    // sharer core -> L2 bank
)

type payload struct {
	kind  reqKind
	addr  uint64
	core  int
	write bool
}

// Injector submits a packet at a node's NI (wired to the network by the
// caller).
type Injector func(node int, p *msg.Packet, now int64)

// System is the chip's memory system: one core+L1+L2-bank per node, memory
// controllers at the corners, all communicating over the NoC. It implements
// sim.Tickable (tick it before the network each cycle) and must also
// receive every ejected packet via HandleEject.
type System struct {
	cfg     SystemConfig
	regions *region.Map
	inject  Injector
	rng     *sim.RNG

	cores []*core
	banks []*Cache
	// dirs is the per-bank sharer directory: block -> bitmask of sharer
	// cores, maintained for blocks resident in the bank. Writes to shared
	// blocks trigger L1 invalidations (a lightweight MSI-style protocol:
	// the substrate's "multiple message classes" of Section IV.D).
	dirs []map[uint64]uint64
	mcs  []int // MC node ids

	// Delayed protocol actions (bank latency, memory latency), bucketed
	// by due cycle.
	delayed map[int64][]pending

	nextID uint64

	// Counters.
	l1Hits, l1Misses   uint64
	l2Hits, l2Misses   uint64
	packetsInjected    uint64
	mergesOnOutstand   uint64
	stalledCoreCycles  uint64
	finishedCoreMisses uint64
	invalidationsSent  uint64
	invAcksReceived    uint64
	l1Invalidated      uint64
}

type pending struct {
	node int
	pkt  *msg.Packet
}

type core struct {
	node        int
	app         int
	l1          *Cache
	stream      AddressStream
	outstanding map[uint64]bool // block-aligned addresses in flight
}

// New builds the memory system over the given region map. streams maps node
// id to that core's address stream; nodes with a nil stream have an idle
// core (their L2 bank still serves requests).
func New(cfg SystemConfig, regions *region.Map, streams []AddressStream, seed uint64, inject Injector) *System {
	mesh := regions.Mesh()
	if len(streams) != mesh.N() {
		panic(fmt.Sprintf("memsys: %d streams for %d nodes", len(streams), mesh.N()))
	}
	corners := mesh.Corners()
	s := &System{
		cfg:     cfg,
		regions: regions,
		inject:  inject,
		rng:     sim.NewRNG(seed),
		banks:   make([]*Cache, mesh.N()),
		mcs:     corners[:],
		delayed: make(map[int64][]pending),
	}
	s.dirs = make([]map[uint64]uint64, mesh.N())
	for n := 0; n < mesh.N(); n++ {
		s.banks[n] = NewCache(cfg.L2Size, cfg.L2Ways, cfg.Block)
		s.dirs[n] = make(map[uint64]uint64)
		s.cores = append(s.cores, &core{
			node:        n,
			app:         regions.AppAt(n),
			l1:          NewCache(cfg.L1Size, cfg.L1Ways, cfg.Block),
			stream:      streams[n],
			outstanding: make(map[uint64]bool),
		})
	}
	return s
}

// HomeBank returns the home L2 bank node of addr for a core of the given
// application: a deterministic hash places the block within the
// application's own region with probability 1-SharedFrac, else anywhere on
// the chip. This is the cooperative-cache / region-aware home mapping that
// turns the NoC into an RNoC.
func (s *System) HomeBank(app int, addr uint64) int {
	block := addr / uint64(s.cfg.Block)
	h := splitmix(block ^ (uint64(app+1) << 56))
	mesh := s.regions.Mesh()
	nodes := s.regions.Nodes(app)
	if app == region.Unassigned || len(nodes) == 0 {
		return int(h % uint64(mesh.N()))
	}
	// Low bits pick the bank; a separate hash slice decides in/out of
	// region so the two choices are independent.
	outOf := float64((h>>32)&0xffff)/65536.0 < s.cfg.SharedFrac
	if outOf {
		return int(h % uint64(mesh.N()))
	}
	return nodes[int(h%uint64(len(nodes)))]
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nearestMC returns the memory controller closest to node (ties broken by
// corner order, matching static MC affinity).
func (s *System) nearestMC(node int) int {
	mesh := s.regions.Mesh()
	best, bestD := s.mcs[0], mesh.Distance(node, s.mcs[0])
	for _, mc := range s.mcs[1:] {
		if d := mesh.Distance(node, mc); d < bestD {
			best, bestD = mc, d
		}
	}
	return best
}

// Prewarm functionally warms the caches: each core's stream is run through
// its L1, the home L2 banks and the sharer directory for the given number
// of accesses, without producing any network traffic or consuming simulated
// time. This mirrors the full-system methodology the paper uses ("with
// sufficient warmup"): timing simulation starts from warm caches, so the
// measured window is steady-state traffic rather than the cold-fill burst
// (which would otherwise saturate the four memory controllers for the whole
// run).
func (s *System) Prewarm(accessesPerCore int) {
	for _, c := range s.cores {
		if c.stream == nil {
			continue
		}
		for i := 0; i < accessesPerCore; i++ {
			a, issued := c.stream.Next(s.rng)
			if !issued {
				continue
			}
			if c.l1.Access(a.Addr) {
				continue
			}
			home := s.HomeBank(c.app, a.Addr)
			s.banks[home].Access(a.Addr)
			if s.regions.Mesh().N() <= 64 {
				block := a.Addr / uint64(s.cfg.Block)
				me := uint64(1) << uint(c.node%64)
				if a.Write {
					s.dirs[home][block] = me
				} else {
					s.dirs[home][block] |= me
				}
			}
		}
	}
}

// Tick advances cores one cycle: fire due protocol actions, then let each
// core issue at most one access.
func (s *System) Tick(now int64) {
	if due, ok := s.delayed[now]; ok {
		delete(s.delayed, now)
		for _, p := range due {
			s.packetsInjected++
			s.inject(p.node, p.pkt, now)
		}
	}
	for _, c := range s.cores {
		if c.stream == nil {
			continue
		}
		if len(c.outstanding) >= s.cfg.MSHRs {
			s.stalledCoreCycles++
			continue
		}
		a, issued := c.stream.Next(s.rng)
		if !issued {
			continue
		}
		if c.l1.Access(a.Addr) {
			s.l1Hits++
			continue
		}
		s.l1Misses++
		block := a.Addr / uint64(s.cfg.Block)
		if c.outstanding[block] {
			s.mergesOnOutstand++ // MSHR merge: request already in flight
			continue
		}
		c.outstanding[block] = true
		home := s.HomeBank(c.app, a.Addr)
		s.send(c.node, now, 0, &msg.Packet{
			App: c.app, Src: c.node, Dst: home,
			Class: msg.ClassRequest, Size: msg.ShortPacketFlits,
			Payload: payload{kind: l2Request, addr: a.Addr, core: c.node, write: a.Write},
		})
	}
}

// send injects a packet after delay cycles (0 = this cycle).
func (s *System) send(node int, now, delay int64, p *msg.Packet) {
	s.nextID++
	p.ID = s.nextID
	if delay <= 0 {
		s.packetsInjected++
		s.inject(node, p, now)
		return
	}
	s.delayed[now+delay] = append(s.delayed[now+delay], pending{node: node, pkt: p})
}

// HandleEject processes a delivered packet: bank lookups, MC fetches and
// core completions. Wire it into the network's OnEject (before or after the
// statistics collector; it does not mutate latency stamps).
func (s *System) HandleEject(p *msg.Packet, now int64) {
	pl, ok := p.Payload.(payload)
	if !ok {
		return // not a memory-system packet (e.g. adversarial traffic)
	}
	switch pl.kind {
	case l2Request:
		bank := s.banks[p.Dst]
		s.updateDirectory(p, pl, now)
		if bank.Access(pl.addr) {
			s.l2Hits++
			s.send(p.Dst, now, s.cfg.L2Latency, &msg.Packet{
				App: p.App, Src: p.Dst, Dst: pl.core,
				Class: msg.ClassResponse, Size: msg.LongPacketFlits,
				Payload: payload{kind: dataReply, addr: pl.addr, core: pl.core},
			})
			return
		}
		s.l2Misses++
		mc := s.nearestMC(p.Dst)
		s.send(p.Dst, now, s.cfg.L2Latency, &msg.Packet{
			App: p.App, Src: p.Dst, Dst: mc,
			Class: msg.ClassRequest, Size: msg.ShortPacketFlits,
			Payload: payload{kind: mcRequest, addr: pl.addr, core: pl.core},
		})
	case mcRequest:
		// Memory access, then data straight to the requesting core (the
		// home bank has already allocated the block).
		s.send(p.Dst, now, s.cfg.MemLatency, &msg.Packet{
			App: p.App, Src: p.Dst, Dst: pl.core,
			Class: msg.ClassResponse, Size: msg.LongPacketFlits,
			Payload: payload{kind: dataReply, addr: pl.addr, core: pl.core},
		})
	case dataReply:
		c := s.cores[pl.core]
		delete(c.outstanding, pl.addr/uint64(s.cfg.Block))
		s.finishedCoreMisses++
	case invRequest:
		// A sharer core drops its L1 copy and acknowledges to the bank.
		if s.cores[p.Dst].l1.Invalidate(pl.addr) {
			s.l1Invalidated++
		}
		s.send(p.Dst, now, 0, &msg.Packet{
			App: p.App, Src: p.Dst, Dst: pl.core, // pl.core carries the bank node
			Class: msg.ClassResponse, Size: msg.ShortPacketFlits,
			Payload: payload{kind: invAck, addr: pl.addr, core: pl.core},
		})
	case invAck:
		s.invAcksReceived++
	}
}

// updateDirectory maintains the sharer bitmask for the requested block at
// the home bank and fires invalidations when a write touches a block other
// cores share.
func (s *System) updateDirectory(p *msg.Packet, pl payload, now int64) {
	if s.regions.Mesh().N() > 64 {
		return // bitmask directory covers up to 64 cores; larger chips skip coherence traffic
	}
	dir := s.dirs[p.Dst]
	block := pl.addr / uint64(s.cfg.Block)
	sharers := dir[block]
	me := uint64(1) << uint(pl.core%64)
	if pl.write {
		others := sharers &^ me
		for node := 0; others != 0; node++ {
			bit := uint64(1) << uint(node)
			if others&bit == 0 {
				continue
			}
			others &^= bit
			s.invalidationsSent++
			s.send(p.Dst, now, s.cfg.L2Latency, &msg.Packet{
				App: p.App, Src: p.Dst, Dst: node,
				Class: msg.ClassRequest, Size: msg.ShortPacketFlits,
				// core carries the bank node so the ack returns home.
				Payload: payload{kind: invRequest, addr: pl.addr, core: p.Dst},
			})
		}
		dir[block] = me
		return
	}
	dir[block] = sharers | me
}

// Stats is a snapshot of the memory system counters.
type Stats struct {
	L1Hits, L1Misses  uint64
	L2Hits, L2Misses  uint64
	PacketsInjected   uint64
	MSHRMerges        uint64
	StalledCoreCycles uint64
	CompletedMisses   uint64
	InvalidationsSent uint64
	InvAcksReceived   uint64
	L1Invalidated     uint64
}

// Snapshot returns current counters.
func (s *System) Snapshot() Stats {
	return Stats{
		L1Hits: s.l1Hits, L1Misses: s.l1Misses,
		L2Hits: s.l2Hits, L2Misses: s.l2Misses,
		PacketsInjected:   s.packetsInjected,
		MSHRMerges:        s.mergesOnOutstand,
		StalledCoreCycles: s.stalledCoreCycles,
		CompletedMisses:   s.finishedCoreMisses,
		InvalidationsSent: s.invalidationsSent,
		InvAcksReceived:   s.invAcksReceived,
		L1Invalidated:     s.l1Invalidated,
	}
}

// L1MissRate reports the aggregate L1 miss rate.
func (s *System) L1MissRate() float64 {
	t := s.l1Hits + s.l1Misses
	if t == 0 {
		return 0
	}
	return float64(s.l1Misses) / float64(t)
}

// Outstanding reports the total in-flight misses across cores.
func (s *System) Outstanding() int {
	n := 0
	for _, c := range s.cores {
		n += len(c.outstanding)
	}
	return n
}
