package stats

import "testing"

// TestDistEmpty: every reader is total on a zero-sample distribution.
func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Count() != 0 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.Mean() != 0 {
		t.Errorf("Mean = %v, want 0", d.Mean())
	}
	for _, p := range []float64{-5, 0, 50, 100, 200} {
		if got := d.Percentile(p); got != 0 {
			t.Errorf("Percentile(%v) = %v, want 0", p, got)
		}
	}
	if d.Max() != 0 {
		t.Errorf("Max = %v, want 0", d.Max())
	}
	if d.StdDev() != 0 {
		t.Errorf("StdDev = %v, want 0", d.StdDev())
	}
	if got := d.Histogram(4); got != "(no samples)\n" {
		t.Errorf("Histogram = %q", got)
	}
}

// TestDistSingleSample: one sample is every percentile, and the variance
// guard (n < 2) holds.
func TestDistSingleSample(t *testing.T) {
	var d Dist
	d.Add(7.5)
	for _, p := range []float64{-1, 0, 25, 50, 99.9, 100, 150} {
		if got := d.Percentile(p); got != 7.5 {
			t.Errorf("Percentile(%v) = %v, want 7.5", p, got)
		}
	}
	if d.Mean() != 7.5 || d.Max() != 7.5 {
		t.Errorf("Mean/Max = %v/%v, want 7.5", d.Mean(), d.Max())
	}
	if d.StdDev() != 0 {
		t.Errorf("StdDev of one sample = %v, want 0", d.StdDev())
	}
}

// TestDistPercentileClamps: out-of-range p values clamp to the extremes
// instead of indexing out of bounds.
func TestDistPercentileClamps(t *testing.T) {
	var d Dist
	for _, v := range []float64{5, 1, 3} {
		d.Add(v)
	}
	if got := d.Percentile(-10); got != 1 {
		t.Errorf("Percentile(-10) = %v, want min 1", got)
	}
	if got := d.Percentile(1000); got != 5 {
		t.Errorf("Percentile(1000) = %v, want max 5", got)
	}
}

// TestDistMergeOverlappingWindows models two collectors whose measurement
// windows overlap: the same latency values appear in both, and the merge
// must keep duplicates (each is a distinct packet observation).
func TestDistMergeOverlappingWindows(t *testing.T) {
	var a, b Dist
	for _, v := range []float64{1, 2, 3} {
		a.Add(v)
	}
	for _, v := range []float64{2, 3, 4} {
		b.Add(v)
	}
	// Prime both sort caches so the merge must invalidate them.
	if a.Percentile(50) != 2 || b.Percentile(50) != 3 {
		t.Fatalf("pre-merge medians %v/%v", a.Percentile(50), b.Percentile(50))
	}
	a.Merge(&b)
	if a.Count() != 6 {
		t.Fatalf("merged count = %d, want 6 (duplicates kept)", a.Count())
	}
	if got, want := a.Mean(), 15.0/6; got != want {
		t.Errorf("merged mean = %v, want %v", got, want)
	}
	// Sorted view [1 2 2 3 3 4]: the median interpolates between the two
	// middle samples 2 and 3.
	if got := a.Percentile(50); got != 2.5 {
		t.Errorf("merged median = %v, want 2.5 (stale sort cache?)", got)
	}
	if a.Percentile(0) != 1 || a.Percentile(100) != 4 {
		t.Errorf("merged extremes = %v..%v, want 1..4", a.Percentile(0), a.Percentile(100))
	}
	// The source's cache and samples survive unchanged.
	if b.Count() != 3 || b.Percentile(50) != 3 {
		t.Errorf("source changed by merge: count=%d median=%v", b.Count(), b.Percentile(50))
	}
}

// TestDistMergeIntoEmpty: merging into a fresh Dist is a copy, and merging
// two empties stays empty.
func TestDistMergeIntoEmpty(t *testing.T) {
	var a, b Dist
	b.Add(4)
	b.Add(2)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 3 || a.Percentile(100) != 4 {
		t.Errorf("merge into empty: count=%d mean=%v max=%v", a.Count(), a.Mean(), a.Percentile(100))
	}
	var c, d Dist
	c.Merge(&d)
	if c.Count() != 0 || c.Percentile(50) != 0 {
		t.Errorf("empty-empty merge: count=%d median=%v", c.Count(), c.Percentile(50))
	}
}

// TestDistMergeThenAdd: appends after a merge keep both the sum and the
// lazily rebuilt sorted view consistent.
func TestDistMergeThenAdd(t *testing.T) {
	var a, b Dist
	a.Add(10)
	b.Add(30)
	a.Merge(&b)
	if a.Percentile(100) != 30 {
		t.Fatalf("max after merge = %v", a.Percentile(100))
	}
	a.Add(20)
	if a.Count() != 3 || a.Mean() != 20 {
		t.Errorf("count/mean after add = %d/%v", a.Count(), a.Mean())
	}
	if got := a.Percentile(50); got != 20 {
		t.Errorf("median after add = %v, want 20", got)
	}
}
