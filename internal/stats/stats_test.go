package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rair/internal/msg"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Count() != 0 || d.Percentile(50) != 0 || d.StdDev() != 0 {
		t.Fatal("empty dist must be all zeros")
	}
	for _, v := range []float64{4, 2, 8, 6} {
		d.Add(v)
	}
	if d.Count() != 4 || d.Mean() != 5 {
		t.Fatalf("count=%d mean=%v", d.Count(), d.Mean())
	}
	if d.Percentile(0) != 2 || d.Max() != 8 {
		t.Fatalf("min=%v max=%v", d.Percentile(0), d.Max())
	}
	if p := d.Percentile(50); p != 5 {
		t.Fatalf("median = %v", p)
	}
}

func TestDistAddAfterPercentile(t *testing.T) {
	var d Dist
	d.Add(1)
	d.Add(3)
	_ = d.Percentile(50)
	d.Add(2)
	if p := d.Percentile(50); p != 2 {
		t.Fatalf("median after re-add = %v", p)
	}
}

func TestDistStdDev(t *testing.T) {
	var d Dist
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Add(v)
	}
	if s := d.StdDev(); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s)
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestDistPercentileMonotone(t *testing.T) {
	if err := quick.Check(func(vals []float64, a, b uint8) bool {
		var d Dist
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d.Add(v)
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		sort.Float64s(clean)
		v1, v2 := d.Percentile(p1), d.Percentile(p2)
		return v1 <= v2 && v1 >= clean[0] && v2 <= clean[len(clean)-1]
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func pkt(app int, created, ejected int64, global bool, size int) *msg.Packet {
	return &msg.Packet{
		App: app, CreatedAt: created, InjectedAt: created + 2, EjectedAt: ejected,
		Global: global, Size: size, Hops: 3, Class: msg.ClassRequest,
	}
}

func TestCollectorWindow(t *testing.T) {
	c := NewCollector(100, 200)
	c.OnEject(pkt(0, 50, 90, false, 1), 90)    // before warmup: dropped
	c.OnEject(pkt(0, 150, 190, false, 1), 190) // inside: counted
	c.OnEject(pkt(0, 250, 300, false, 1), 300) // after window: dropped
	c.OnEject(pkt(0, 199, 400, false, 1), 400) // created inside, late delivery: counted
	if c.Packets() != 2 {
		t.Fatalf("measured %d packets", c.Packets())
	}
	if c.APL() != (40+201)/2.0 {
		t.Fatalf("APL = %v", c.APL())
	}
}

func TestCollectorNoUpperBound(t *testing.T) {
	c := NewCollector(0, 0)
	c.OnEject(pkt(0, 1e6, 1e6+10, false, 1), 1e6+10)
	if c.Packets() != 1 {
		t.Fatal("MeasureEnd=0 must mean unbounded")
	}
}

func TestCollectorBreakdowns(t *testing.T) {
	c := NewCollector(0, 0)
	c.OnEject(pkt(0, 0, 10, false, 1), 10)
	c.OnEject(pkt(0, 0, 20, true, 5), 20)
	c.OnEject(pkt(1, 0, 40, true, 5), 40)
	if got := c.Apps(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("apps %v", got)
	}
	if c.App(0).Mean() != 15 || c.App(1).Mean() != 40 {
		t.Fatalf("per-app means %v %v", c.App(0).Mean(), c.App(1).Mean())
	}
	if c.App(9).Count() != 0 {
		t.Fatal("unknown app must be empty")
	}
	if c.Regional().Count() != 1 || c.Global().Count() != 2 {
		t.Fatal("kind breakdown wrong")
	}
	if c.Class(msg.ClassRequest).Count() != 3 || c.Class(msg.ClassResponse).Count() != 0 {
		t.Fatal("class breakdown wrong")
	}
	if c.Network().Count() != 3 || c.Hops().Mean() != 3 {
		t.Fatal("network/hops dist wrong")
	}
}

func TestFlitThroughput(t *testing.T) {
	c := NewCollector(0, 100)
	c.OnEject(pkt(0, 10, 30, false, 5), 30)
	c.OnEject(pkt(0, 20, 50, false, 5), 50)
	// 10 flits over 100 cycles on a 2-node network = 0.05 flits/node/cycle.
	if tput := c.FlitThroughput(2); tput != 0.05 {
		t.Fatalf("throughput = %v", tput)
	}
	if NewCollector(0, 0).FlitThroughput(2) != 0 {
		t.Fatal("unbounded window has no throughput")
	}
}

func TestReductionAndSlowdown(t *testing.T) {
	if r := Reduction(100, 80); r != 0.2 {
		t.Fatalf("Reduction = %v", r)
	}
	if r := Reduction(0, 5); r != 0 {
		t.Fatal("Reduction with zero baseline")
	}
	if s := Slowdown(50, 100); s != 2 {
		t.Fatalf("Slowdown = %v", s)
	}
	if s := Slowdown(0, 100); s != 0 {
		t.Fatal("Slowdown with zero baseline")
	}
}

func TestCollectorString(t *testing.T) {
	c := NewCollector(0, 0)
	c.OnEject(pkt(0, 0, 10, false, 1), 10)
	if c.String() == "" {
		t.Fatal("empty string")
	}
}

func TestHistogram(t *testing.T) {
	var d Dist
	if h := d.Histogram(5); h != "(no samples)\n" {
		t.Fatalf("empty histogram %q", h)
	}
	d.Add(5)
	d.Add(5)
	if h := d.Histogram(5); !strings.Contains(h, "all 2 samples") {
		t.Fatalf("degenerate histogram:\n%s", h)
	}
	for i := 0; i < 100; i++ {
		d.Add(float64(i))
	}
	h := d.Histogram(10)
	if lines := strings.Count(h, "\n"); lines != 10 {
		t.Fatalf("histogram has %d lines:\n%s", lines, h)
	}
	if !strings.Contains(h, "#") {
		t.Fatalf("no bars:\n%s", h)
	}
	// Clamps.
	if strings.Count(d.Histogram(0), "\n") != 1 {
		t.Fatal("bins not clamped low")
	}
	if strings.Count(d.Histogram(1000), "\n") != 40 {
		t.Fatal("bins not clamped high")
	}
}

// TestPercentileDoesNotReorderSamples pins the isolation of the lazy sort:
// Percentile must never mutate the insertion order that Histogram and other
// sample readers observe.
func TestPercentileDoesNotReorderSamples(t *testing.T) {
	var d Dist
	in := []float64{9, 1, 7, 3, 5}
	for _, v := range in {
		d.Add(v)
	}
	if got := d.Percentile(50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	for i, v := range d.samples {
		if v != in[i] {
			t.Fatalf("Percentile reordered samples: %v (inserted %v)", d.samples, in)
		}
	}
	// The sorted cache goes stale on Add and is rebuilt.
	d.Add(0)
	if got := d.Percentile(0); got != 0 {
		t.Fatalf("p0 after add = %v, want 0", got)
	}
	if d.samples[len(d.samples)-1] != 0 {
		t.Fatalf("samples reordered after stale rebuild: %v", d.samples)
	}
}

func TestDistMerge(t *testing.T) {
	var a, b Dist
	for _, v := range []float64{1, 2, 3} {
		a.Add(v)
	}
	for _, v := range []float64{10, 20} {
		b.Add(v)
	}
	a.Merge(&b)
	if a.Count() != 5 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if got, want := a.Mean(), 36.0/5; got != want {
		t.Fatalf("merged mean = %v, want %v", got, want)
	}
	if got := a.Percentile(100); got != 20 {
		t.Fatalf("merged max = %v, want 20", got)
	}
	// Merge must leave the source untouched.
	if b.Count() != 2 || b.Mean() != 15 {
		t.Fatalf("source modified by merge: count=%d mean=%v", b.Count(), b.Mean())
	}
	// Merging an empty Dist is a no-op.
	var empty Dist
	a.Merge(&empty)
	if a.Count() != 5 {
		t.Fatal("merge of empty dist changed count")
	}
}
