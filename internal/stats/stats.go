// Package stats collects packet-latency statistics with warmup handling,
// broken down per application and per traffic kind (regional vs. global),
// matching the measurements reported in the paper's evaluation (average
// packet latency over a measurement window after warmup).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rair/internal/msg"
)

// Dist accumulates a latency distribution. Samples are retained for exact
// percentiles; evaluation windows are small enough (tens of thousands of
// packets) that this is cheap.
//
// Percentile sorts lazily into a separate copy, so the insertion-ordered
// samples are never reordered: readers iterating the distribution (e.g.
// Histogram) observe samples in Add order regardless of interleaved
// Percentile calls. The sorted copy is cached and rebuilt only when samples
// were added since it was built (samples only ever append, so a length
// mismatch is the exact staleness condition). Building the cache mutates
// the Dist: like Add, Percentile/Max/Histogram need external
// synchronization if the same Dist is shared across goroutines.
type Dist struct {
	samples []float64
	sum     float64
	sorted  []float64 // lazily built sorted copy of samples
}

// Add records one sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sum += v
}

// Merge folds another distribution's samples into d (per-shard or
// per-run distributions combined for aggregate percentiles). The other
// distribution is not modified.
func (d *Dist) Merge(o *Dist) {
	d.samples = append(d.samples, o.samples...)
	d.sum += o.sum
}

// Count reports the number of samples.
func (d *Dist) Count() int { return len(d.samples) }

// Mean reports the sample mean (0 with no samples).
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

// Percentile reports the p-th percentile (p in [0,100]); 0 with no samples.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if len(d.sorted) != len(d.samples) {
		d.sorted = append(d.sorted[:0], d.samples...)
		sort.Float64s(d.sorted)
	}
	if p <= 0 {
		return d.sorted[0]
	}
	if p >= 100 {
		return d.sorted[len(d.sorted)-1]
	}
	idx := p / 100 * float64(len(d.sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	frac := idx - float64(lo)
	return d.sorted[lo]*(1-frac) + d.sorted[hi]*frac
}

// Max reports the largest sample (0 with no samples).
func (d *Dist) Max() float64 { return d.Percentile(100) }

// StdDev reports the sample standard deviation.
func (d *Dist) StdDev() float64 {
	n := len(d.samples)
	if n < 2 {
		return 0
	}
	m := d.Mean()
	var ss float64
	for _, v := range d.samples {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n-1))
}

// Collector subscribes to packet ejections and aggregates latency by
// application and by traffic kind. Only packets created inside
// [Warmup, MeasureEnd) are counted; MeasureEnd <= 0 means no upper bound.
// By design the simulation keeps running (draining) after the measurement
// window so that counted packets complete.
type Collector struct {
	Warmup     int64
	MeasureEnd int64

	total        Dist
	network      Dist
	hops         Dist
	perApp       map[int]*Dist
	perAppGlobal map[int]*Dist
	regional     Dist
	global       Dist
	perClass     map[msg.Class]*Dist

	flits   int64 // delivered flits of measured packets
	packets int64
}

// NewCollector returns a collector measuring packets created in
// [warmup, measureEnd).
func NewCollector(warmup, measureEnd int64) *Collector {
	return &Collector{
		Warmup:       warmup,
		MeasureEnd:   measureEnd,
		perApp:       make(map[int]*Dist),
		perAppGlobal: make(map[int]*Dist),
		perClass:     make(map[msg.Class]*Dist),
	}
}

// OnEject records a delivered packet; wire it as the network's ejection
// callback.
func (c *Collector) OnEject(p *msg.Packet, now int64) {
	if p.CreatedAt < c.Warmup || (c.MeasureEnd > 0 && p.CreatedAt >= c.MeasureEnd) {
		return
	}
	lat := float64(p.TotalLatency())
	c.total.Add(lat)
	c.network.Add(float64(p.NetworkLatency()))
	c.hops.Add(float64(p.Hops))
	app := c.perApp[p.App]
	if app == nil {
		app = &Dist{}
		c.perApp[p.App] = app
	}
	app.Add(lat)
	if p.Global {
		c.global.Add(lat)
		ag := c.perAppGlobal[p.App]
		if ag == nil {
			ag = &Dist{}
			c.perAppGlobal[p.App] = ag
		}
		ag.Add(lat)
	} else {
		c.regional.Add(lat)
	}
	cls := c.perClass[p.Class]
	if cls == nil {
		cls = &Dist{}
		c.perClass[p.Class] = cls
	}
	cls.Add(lat)
	c.flits += int64(p.Size)
	c.packets++
}

// Total returns the all-packets latency distribution.
func (c *Collector) Total() *Dist { return &c.total }

// Network returns the in-network (injection→ejection) latency distribution.
func (c *Collector) Network() *Dist { return &c.network }

// Hops returns the router-hop distribution.
func (c *Collector) Hops() *Dist { return &c.hops }

// App returns the latency distribution of one application (empty Dist if
// the app delivered nothing).
func (c *Collector) App(app int) *Dist {
	if d, ok := c.perApp[app]; ok {
		return d
	}
	return &Dist{}
}

// Apps lists the application ids with at least one measured packet, sorted.
func (c *Collector) Apps() []int {
	out := make([]int, 0, len(c.perApp))
	for a := range c.perApp {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// AppGlobal returns the latency distribution of one application's
// inter-region traffic only.
func (c *Collector) AppGlobal(app int) *Dist {
	if d, ok := c.perAppGlobal[app]; ok {
		return d
	}
	return &Dist{}
}

// Regional returns the intra-region traffic distribution.
func (c *Collector) Regional() *Dist { return &c.regional }

// Global returns the inter-region traffic distribution.
func (c *Collector) Global() *Dist { return &c.global }

// Class returns the latency distribution of a message class.
func (c *Collector) Class(cl msg.Class) *Dist {
	if d, ok := c.perClass[cl]; ok {
		return d
	}
	return &Dist{}
}

// Packets reports the number of measured packets.
func (c *Collector) Packets() int64 { return c.packets }

// FlitThroughput reports measured flits delivered per node per cycle over
// the measurement window of a nodes-node network.
func (c *Collector) FlitThroughput(nodes int) float64 {
	if c.MeasureEnd <= c.Warmup || nodes == 0 {
		return 0
	}
	return float64(c.flits) / float64(c.MeasureEnd-c.Warmup) / float64(nodes)
}

// APL is shorthand for the average total packet latency.
func (c *Collector) APL() float64 { return c.total.Mean() }

// String summarizes the collector for logs.
func (c *Collector) String() string {
	return fmt.Sprintf("packets=%d APL=%.2f p95=%.1f hops=%.2f",
		c.packets, c.APL(), c.total.Percentile(95), c.hops.Mean())
}

// Histogram renders an ASCII histogram of the distribution with the given
// number of equal-width bins between min and max (clamped to [1, 40] bins).
func (d *Dist) Histogram(bins int) string {
	if len(d.samples) == 0 {
		return "(no samples)\n"
	}
	if bins < 1 {
		bins = 1
	}
	if bins > 40 {
		bins = 40
	}
	lo, hi := d.Percentile(0), d.Percentile(100)
	width := (hi - lo) / float64(bins)
	if width <= 0 {
		return fmt.Sprintf("%8.1f | all %d samples\n", lo, len(d.samples))
	}
	counts := make([]int, bins)
	for _, v := range d.samples {
		b := int((v - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for b, c := range counts {
		bar := 0
		if maxCount > 0 {
			bar = c * 50 / maxCount
		}
		fmt.Fprintf(&sb, "%8.1f-%8.1f |%-50s %d\n",
			lo+float64(b)*width, lo+float64(b+1)*width, strings.Repeat("#", bar), c)
	}
	return sb.String()
}

// Reduction reports the relative reduction of b versus baseline a:
// (a-b)/a. Positive means b improved on a.
func Reduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}

// Slowdown reports b/a, the latency slowdown of b relative to a.
func Slowdown(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return b / a
}
