package traffic

import (
	"rair/internal/msg"
	"rair/internal/sim"
	"rair/internal/topology"
)

// SaturationRate estimates the saturation injection rate of an application's
// traffic description, in packets per node per cycle: the rate at which the
// most loaded channel (including injection and ejection channels, which
// bound hotspot traffic) reaches one flit per cycle under XY routing.
//
// The estimate uses Monte Carlo sampling of the app's (src, dst)
// distribution and is the reference the harness uses to configure scenarios
// as "x% of saturation load", the way the paper specifies its workloads.
// Adaptive routing typically saturates slightly later than XY, so fractions
// of this estimate are mildly conservative — which only matters at the 90%
// operating points, where being near (not precisely at) saturation is the
// experimental intent.
func SaturationRate(mesh *topology.Mesh, app AppTraffic, samples int, seed uint64) float64 {
	if samples < 1 || len(app.Nodes) == 0 {
		return 0
	}
	rng := sim.NewRNG(seed)
	// Directed channel load accumulators: [node][dir] for router-to-router
	// channels, plus injection and ejection channels per node.
	chans := make([][]float64, mesh.N())
	for i := range chans {
		chans[i] = make([]float64, topology.NumDirs)
	}
	inj := make([]float64, mesh.N())
	ej := make([]float64, mesh.N())

	avgFlits := float64(msg.ShortPacketFlits)*app.shortFrac() + float64(msg.LongPacketFlits)*(1-app.shortFrac())
	draws := 0
	for _, node := range app.Nodes {
		for s := 0; s < samples; s++ {
			src, dst := app.draw(node, rng)
			draws++
			if src == dst {
				continue
			}
			inj[src] += avgFlits
			ej[dst] += avgFlits
			cur := src
			for cur != dst {
				d := mesh.XYDir(cur, dst)
				chans[cur][d] += avgFlits
				cur = mesh.Neighbor(cur, d)
			}
		}
	}
	// Events occur at rate r per app node per cycle: total event rate is
	// r*len(Nodes); each sampled draw represents a fraction
	// len(Nodes)/draws of that total.
	perDraw := float64(len(app.Nodes)) / float64(draws)
	maxLoad := 0.0
	for n := 0; n < mesh.N(); n++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if l := chans[n][d] * perDraw; l > maxLoad {
				maxLoad = l
			}
		}
		if l := inj[n] * perDraw; l > maxLoad {
			maxLoad = l
		}
		if l := ej[n] * perDraw; l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad == 0 {
		return 0
	}
	return 1 / maxLoad
}
