package traffic

import (
	"math"
	"testing"

	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/sim"
	"rair/internal/topology"
)

func mesh8() *topology.Mesh { return topology.NewMesh(8, 8) }

func TestUniformExcludesSelf(t *testing.T) {
	u := Uniform{Nodes: []int{3, 7}}
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		if d := u.Dest(3, rng); d != 7 {
			t.Fatalf("dest = %d", d)
		}
	}
	// Single-node set can only return that node.
	one := Uniform{Nodes: []int{5}}
	if one.Dest(5, rng) != 5 {
		t.Fatal("single-node set")
	}
	// Empty set returns src (callers skip it).
	if (Uniform{}).Dest(9, rng) != 9 {
		t.Fatal("empty set")
	}
}

func TestUniformCoversNodes(t *testing.T) {
	nodes := []int{0, 1, 2, 3, 4}
	u := Uniform{Nodes: nodes}
	rng := sim.NewRNG(2)
	seen := map[int]int{}
	for i := 0; i < 5000; i++ {
		seen[u.Dest(0, rng)]++
	}
	for _, n := range nodes[1:] {
		if seen[n] < 800 {
			t.Fatalf("node %d drawn %d times", n, seen[n])
		}
	}
	if seen[0] > 100 {
		t.Fatalf("self drawn %d times", seen[0])
	}
}

func TestDeterministicPatterns(t *testing.T) {
	m := mesh8()
	tp := Transpose{Mesh: m}
	if tp.Dest(m.ID(topology.Coord{X: 2, Y: 5}), nil) != m.ID(topology.Coord{X: 5, Y: 2}) {
		t.Fatal("transpose")
	}
	bc := BitComplement{Mesh: m}
	if bc.Dest(0, nil) != 63 {
		t.Fatal("bit complement")
	}
}

func TestHotspot(t *testing.T) {
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	h := Hotspot{Hotspots: []int{0}, Frac: 0.5, Background: Uniform{Nodes: all}}
	rng := sim.NewRNG(3)
	hits := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if h.Dest(30, rng) == 0 {
			hits++
		}
	}
	frac := float64(hits) / trials
	if math.Abs(frac-0.5) > 0.03 { // 0.5 hotspot + tiny UR mass on node 0
		t.Fatalf("hotspot fraction %v", frac)
	}
}

func TestInterRegionAlwaysGlobal(t *testing.T) {
	regs := region.Quadrants(mesh8())
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	p := InterRegion{Base: Uniform{Nodes: all}, Regions: regs}
	rng := sim.NewRNG(4)
	for i := 0; i < 2000; i++ {
		src := rng.Intn(64)
		d := p.Dest(src, rng)
		if d == src || !regs.Global(src, d) {
			t.Fatalf("draw %d: %d->%d not global", i, src, d)
		}
	}
}

func TestInterRegionPreservesCrossPattern(t *testing.T) {
	// Transpose from (1,6) already crosses quadrants; it must be kept.
	m := mesh8()
	regs := region.Quadrants(m)
	p := InterRegion{Base: Transpose{Mesh: m}, Regions: regs}
	src := m.ID(topology.Coord{X: 1, Y: 6})
	rng := sim.NewRNG(5)
	if d := p.Dest(src, rng); d != m.Transpose(src) {
		t.Fatalf("dest = %d, want transpose %d", d, m.Transpose(src))
	}
}

func TestPatternByName(t *testing.T) {
	m := mesh8()
	for _, name := range []string{"UR", "TP", "BC", "HS"} {
		if p := PatternByName(name, m); p == nil || p.Name() == "" {
			t.Fatalf("pattern %s", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name must panic")
		}
	}()
	PatternByName("XX", m)
}

// collectInjector records generated packets.
type collected struct {
	pkts  []*msg.Packet
	nodes []int
}

func (c *collected) inject(node int, p *msg.Packet, now int64) {
	c.pkts = append(c.pkts, p)
	c.nodes = append(c.nodes, node)
}

func TestGeneratorRateAndMix(t *testing.T) {
	regs := region.Halves(mesh8())
	app := AppTraffic{
		App: 0, Nodes: regs.Nodes(0), PacketRate: 0.1,
		Components: []Component{
			{Weight: 0.75, Draw: IntraUR(regs.Nodes(0)).Draw},
			{Weight: 0.25, Draw: InterPattern(regs, PatternByName("UR", regs.Mesh())).Draw},
		},
	}
	var c collected
	g := NewGenerator([]AppTraffic{app}, 42, c.inject)
	const cycles = 5000
	for now := int64(0); now < cycles; now++ {
		g.Tick(now)
	}
	want := 0.1 * 32 * cycles
	if got := float64(len(c.pkts)); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("generated %v packets, want ≈%v", got, want)
	}
	inter, short := 0, 0
	for _, p := range c.pkts {
		if p.App != 0 || p.Src == p.Dst {
			t.Fatalf("bad packet %v", p)
		}
		if regs.Global(p.Src, p.Dst) {
			inter++
		}
		if p.Size == 1 {
			short++
		} else if p.Size != 5 {
			t.Fatalf("packet size %d", p.Size)
		}
	}
	if f := float64(inter) / float64(len(c.pkts)); math.Abs(f-0.25) > 0.03 {
		t.Fatalf("inter-region fraction %v, want ≈0.25", f)
	}
	if f := float64(short) / float64(len(c.pkts)); math.Abs(f-0.5) > 0.03 {
		t.Fatalf("short fraction %v, want ≈0.5", f)
	}
	if g.Created() != uint64(len(c.pkts)) {
		t.Fatal("Created mismatch")
	}
}

func TestGeneratorUntil(t *testing.T) {
	app := AppTraffic{App: 0, Nodes: []int{0, 1}, PacketRate: 1,
		Components: []Component{IntraUR([]int{0, 1})}}
	var c collected
	g := NewGenerator([]AppTraffic{app}, 1, c.inject)
	g.Until = 10
	for now := int64(0); now < 100; now++ {
		g.Tick(now)
	}
	if len(c.pkts) != 20 {
		t.Fatalf("generated %d, want 20", len(c.pkts))
	}
}

func TestGeneratorSplitClasses(t *testing.T) {
	app := AppTraffic{App: 0, Nodes: []int{0, 1, 2, 3}, PacketRate: 1,
		Components: []Component{IntraUR([]int{0, 1, 2, 3})}, SplitClasses: true}
	var c collected
	g := NewGenerator([]AppTraffic{app}, 9, c.inject)
	for now := int64(0); now < 200; now++ {
		g.Tick(now)
	}
	for _, p := range c.pkts {
		if p.Size == 1 && p.Class != msg.ClassRequest {
			t.Fatal("short packet must be request class")
		}
		if p.Size == 5 && p.Class != msg.ClassResponse {
			t.Fatal("long packet must be response class")
		}
	}
}

func TestMCCornersComponent(t *testing.T) {
	m := mesh8()
	comp := MCCorners(m)
	rng := sim.NewRNG(6)
	corners := map[int]bool{0: true, 7: true, 56: true, 63: true}
	toMC, fromMC := 0, 0
	for i := 0; i < 2000; i++ {
		src, dst := comp.Draw(30, rng)
		switch {
		case src == 30 && corners[dst]:
			toMC++
		case corners[src] && dst == 30:
			fromMC++
		default:
			t.Fatalf("draw %d->%d not MC traffic", src, dst)
		}
	}
	if toMC < 800 || fromMC < 800 {
		t.Fatalf("unbalanced MC traffic: %d to, %d from", toMC, fromMC)
	}
}

func TestDirectedTo(t *testing.T) {
	comp := DirectedTo([]int{40, 41})
	rng := sim.NewRNG(7)
	for i := 0; i < 100; i++ {
		src, dst := comp.Draw(3, rng)
		if src != 3 || (dst != 40 && dst != 41) {
			t.Fatalf("draw %d->%d", src, dst)
		}
	}
}

func TestAdversary(t *testing.T) {
	adv := Adversary(mesh8(), 99, 0.13)
	if len(adv.Nodes) != 64 || adv.App != 99 || adv.PacketRate != 0.13 {
		t.Fatalf("adversary %+v", adv)
	}
}

func TestSaturationRateUniform(t *testing.T) {
	// 8x8 UR with XY: the bisection bound gives 0.5 flits/node/cycle
	// (16λ/2 over 8 channels), i.e. ≈0.167 packets/node/cycle at the
	// average 3 flits/packet.
	m := mesh8()
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	app := AppTraffic{App: 0, Nodes: all, Components: []Component{IntraUR(all)}}
	r := SaturationRate(m, app, 2000, 1)
	if r < 0.14 || r > 0.18 {
		t.Fatalf("UR saturation = %v packets/node/cycle, want ≈0.167", r)
	}
}

func TestSaturationRateHotspotLower(t *testing.T) {
	m := mesh8()
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	ur := AppTraffic{App: 0, Nodes: all, Components: []Component{IntraUR(all)}}
	hs := AppTraffic{App: 0, Nodes: all, Components: []Component{
		{Weight: 1, Draw: func(node int, rng *sim.RNG) (int, int) {
			return node, PatternByName("HS", m).Dest(node, rng)
		}},
	}}
	rUR := SaturationRate(m, ur, 2000, 1)
	rHS := SaturationRate(m, hs, 2000, 1)
	if rHS >= rUR {
		t.Fatalf("hotspot saturation %v must be below UR %v", rHS, rUR)
	}
}

func TestSaturationRateRegionHigherThanChip(t *testing.T) {
	// Intra-quadrant UR travels shorter distances: higher saturation rate
	// than chip-wide UR.
	m := mesh8()
	regs := region.Quadrants(m)
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	chip := AppTraffic{App: 0, Nodes: all, Components: []Component{IntraUR(all)}}
	quad := AppTraffic{App: 0, Nodes: regs.Nodes(0), Components: []Component{IntraUR(regs.Nodes(0))}}
	if rq, rc := SaturationRate(m, quad, 2000, 1), SaturationRate(m, chip, 2000, 1); rq <= rc {
		t.Fatalf("region saturation %v must exceed chip %v", rq, rc)
	}
}

func TestSaturationRateEdgeCases(t *testing.T) {
	m := mesh8()
	if SaturationRate(m, AppTraffic{}, 100, 1) != 0 {
		t.Fatal("no nodes must be 0")
	}
	app := AppTraffic{App: 0, Nodes: []int{0}, Components: []Component{IntraUR([]int{0})}}
	if SaturationRate(m, app, 100, 1) != 0 {
		t.Fatal("self-only traffic must be 0")
	}
}

func TestTransposeNonSquare(t *testing.T) {
	// The swapped coordinate wraps into range: every destination is a
	// valid node on any mesh shape, and the square case is the classic
	// transpose.
	for _, dims := range [][2]int{{4, 2}, {2, 4}, {1, 8}, {8, 1}, {3, 5}} {
		m := topology.NewMesh(dims[0], dims[1])
		tp := Transpose{Mesh: m}
		for src := 0; src < m.N(); src++ {
			d := tp.Dest(src, nil)
			if d < 0 || d >= m.N() {
				t.Fatalf("%dx%d: dest(%d) = %d out of range", m.W, m.H, src, d)
			}
			c, dc := m.Coord(src), m.Coord(d)
			if dc.X != c.Y%m.W || dc.Y != c.X%m.H {
				t.Fatalf("%dx%d: dest(%d) = %v, want wrapped transpose of %v", m.W, m.H, src, dc, c)
			}
		}
	}
	m := mesh8()
	for src := 0; src < m.N(); src++ {
		if (Transpose{Mesh: m}).Dest(src, nil) != m.Transpose(src) {
			t.Fatal("square mesh must use the exact transpose")
		}
	}
}

func TestHotspotDedupOnDegenerateMeshes(t *testing.T) {
	for _, dims := range [][2]int{{1, 8}, {8, 1}, {2, 2}, {1, 1}, {1, 4}} {
		m := topology.NewMesh(dims[0], dims[1])
		hs := PatternByName("HS", m).(Hotspot)
		seen := map[int]bool{}
		for _, h := range hs.Hotspots {
			if h < 0 || h >= m.N() {
				t.Fatalf("%dx%d: hotspot %d out of range", m.W, m.H, h)
			}
			if seen[h] {
				t.Fatalf("%dx%d: duplicate hotspot %d", m.W, m.H, h)
			}
			seen[h] = true
		}
		if len(hs.Hotspots) == 0 {
			t.Fatalf("%dx%d: no hotspots", m.W, m.H)
		}
	}
	// A full-size mesh keeps all four quarter-point hotspots.
	if got := len(PatternByName("HS", mesh8()).(Hotspot).Hotspots); got != 4 {
		t.Fatalf("8x8 hotspots = %d, want 4", got)
	}
}

func TestPatternsInRangeOnBoundaryMeshes(t *testing.T) {
	// Every named pattern must return in-range destinations on non-square
	// and 1-wide meshes.
	rng := sim.NewRNG(7)
	for _, dims := range [][2]int{{1, 8}, {8, 1}, {4, 2}, {3, 3}, {1, 1}} {
		m := topology.NewMesh(dims[0], dims[1])
		for _, name := range []string{"UR", "TP", "BC", "HS"} {
			p := PatternByName(name, m)
			for src := 0; src < m.N(); src++ {
				for i := 0; i < 20; i++ {
					if d := p.Dest(src, rng); d < 0 || d >= m.N() {
						t.Fatalf("%dx%d %s: dest(%d) = %d out of range", m.W, m.H, name, src, d)
					}
				}
			}
		}
	}
}

func TestShortFracClamp(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0.5}, {-1, 0}, {-0.001, 0}, {0.25, 0.25}, {1, 1}, {1.5, 1}, {2, 1},
	}
	for _, c := range cases {
		if got := (AppTraffic{ShortFrac: c.in}).shortFrac(); got != c.want {
			t.Fatalf("shortFrac(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// SaturationRate must stay finite and positive with a clamped negative
	// ShortFrac (all-long packets: lower rate than all-short).
	m := mesh8()
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	long := AppTraffic{Nodes: all, Components: []Component{IntraUR(all)}, ShortFrac: -1}
	short := AppTraffic{Nodes: all, Components: []Component{IntraUR(all)}, ShortFrac: 1}
	rl, rs := SaturationRate(m, long, 1000, 1), SaturationRate(m, short, 1000, 1)
	if !(rl > 0 && rs > 0 && rl < rs) {
		t.Fatalf("all-long rate %v must be positive and below all-short %v", rl, rs)
	}
}

// TestPatternsAtScale locks the pattern generators at the big-mesh sizes
// the scale-out experiments run: quarter-point hotspots stay distinct and
// interior, transpose is exact on 32x32 and wrapped on 64x32, and every
// draw lands in range.
func TestPatternsAtScale(t *testing.T) {
	rng := sim.NewRNG(9)
	for _, dims := range [][2]int{{32, 32}, {64, 32}, {64, 64}} {
		m := topology.NewMesh(dims[0], dims[1])
		for _, name := range []string{"UR", "TP", "BC", "HS"} {
			p := PatternByName(name, m)
			for _, src := range []int{0, 1, m.W - 1, m.N() / 2, m.N() - m.W, m.N() - 1} {
				for i := 0; i < 50; i++ {
					if d := p.Dest(src, rng); d < 0 || d >= m.N() {
						t.Fatalf("%dx%d %s: dest(%d) = %d out of range", m.W, m.H, name, src, d)
					}
				}
			}
		}
		hs := PatternByName("HS", m).(Hotspot)
		if len(hs.Hotspots) != 4 {
			t.Fatalf("%dx%d: %d hotspots, want 4", m.W, m.H, len(hs.Hotspots))
		}
		for _, h := range hs.Hotspots {
			c := m.Coord(h)
			if c.X == 0 || c.Y == 0 || c.X == m.W-1 || c.Y == m.H-1 {
				t.Fatalf("%dx%d: hotspot %v on the mesh edge, want interior", m.W, m.H, c)
			}
		}
		bc := BitComplement{Mesh: m}
		for _, src := range []int{0, 1, m.N() - 1} {
			if d := bc.Dest(src, nil); d != m.N()-1-src {
				t.Fatalf("%dx%d BC: dest(%d) = %d, want %d", m.W, m.H, src, d, m.N()-1-src)
			}
		}
	}
	// 32x32 is square: transpose must be the classic exact swap.
	m := topology.NewMesh(32, 32)
	tp := Transpose{Mesh: m}
	for src := 0; src < m.N(); src++ {
		c, dc := m.Coord(src), m.Coord(tp.Dest(src, nil))
		if dc.X != c.Y || dc.Y != c.X {
			t.Fatalf("32x32: dest(%v) = %v, want exact transpose", c, dc)
		}
	}
}

// TestUniformWithConcentratedNodes: concentrated-mesh scenarios model c
// cores per router by repeating router ids in the node list. Uniform must
// keep every draw a member of the list; with src duplicated, self-draws
// are allowed (only one occurrence is excluded) and callers skip them —
// locked here so a dedup "fix" doesn't silently reweight destinations.
func TestUniformWithConcentratedNodes(t *testing.T) {
	rng := sim.NewRNG(3)
	nodes := []int{0, 0, 1, 1, 2, 2, 3, 3} // 4 routers, concentration 2
	member := map[int]bool{}
	for _, v := range nodes {
		member[v] = true
	}
	u := Uniform{Nodes: nodes}
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		d := u.Dest(0, rng)
		if !member[d] {
			t.Fatalf("dest %d not in node list", d)
		}
		counts[d]++
	}
	// src=0 still appears once in the sampled list (its duplicate), so it
	// must draw, but less often than the fully-duplicated routers.
	if counts[0] == 0 {
		t.Fatal("duplicated src never drawn: exclusion removed both copies")
	}
	for _, v := range []int{1, 2, 3} {
		if counts[v] <= counts[0] {
			t.Fatalf("router %d drawn %d times, not above half-excluded src (%d)", v, counts[v], counts[0])
		}
	}
	// Saturation estimation must stay finite and positive on a duplicated
	// node list (the concentrated injection process).
	m := topology.NewMesh(2, 2)
	app := AppTraffic{App: 0, Nodes: nodes, Components: []Component{IntraUR(nodes)}}
	if r := SaturationRate(m, app, 2000, 1); r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		t.Fatalf("SaturationRate on concentrated nodes = %v", r)
	}
}
