package traffic

import (
	"rair/internal/msg"
	"rair/internal/region"
	"rair/internal/sim"
	"rair/internal/topology"
)

// InjectorFunc hands a generated packet to the network at its source NI.
type InjectorFunc func(node int, p *msg.Packet, now int64)

// Component is one weighted traffic component of an application: it draws a
// (src, dst) pair for an event originating at one of the app's nodes. MC
// reply traffic draws src at a corner node, which is why src is drawn
// rather than fixed.
type Component struct {
	Weight float64
	Draw   func(node int, rng *sim.RNG) (src, dst int)
}

// AppTraffic describes one application's synthetic traffic.
type AppTraffic struct {
	// App is the application number carried by generated packets.
	App int
	// Nodes are the injection sites (normally the app's region nodes).
	Nodes []int
	// PacketRate is the per-node packet generation probability per cycle.
	PacketRate float64
	// Components are the weighted traffic components (weights need not
	// sum to one; they are normalized).
	Components []Component
	// ShortFrac is the fraction of 1-flit short packets; the remainder
	// are 5-flit long packets. The paper assigns the two lengths
	// uniformly, so the default (0 ⇒ 0.5) matches it. A negative value
	// means all-long (the explicit spelling of 0, which the default
	// claims); values above 1 clamp to all-short.
	ShortFrac float64
	// SplitClasses routes short packets as ClassRequest and long packets
	// as ClassResponse (for two-class networks); otherwise everything is
	// ClassRequest.
	SplitClasses bool
}

func (a AppTraffic) shortFrac() float64 {
	switch {
	case a.ShortFrac == 0:
		return 0.5
	case a.ShortFrac < 0:
		return 0
	case a.ShortFrac > 1:
		return 1
	}
	return a.ShortFrac
}

func (a AppTraffic) totalWeight() float64 {
	t := 0.0
	for _, c := range a.Components {
		t += c.Weight
	}
	return t
}

// draw picks a component by weight and produces an event.
func (a AppTraffic) draw(node int, rng *sim.RNG) (src, dst int) {
	t := a.totalWeight()
	if t == 0 {
		return node, node
	}
	x := rng.Float64() * t
	for _, c := range a.Components {
		if x < c.Weight {
			return c.Draw(node, rng)
		}
		x -= c.Weight
	}
	last := a.Components[len(a.Components)-1]
	return last.Draw(node, rng)
}

// Generator drives a set of application traffic descriptions, creating and
// injecting packets every cycle. It implements sim.Tickable; register it
// before the network so packets created at cycle t can start injecting at
// cycle t.
type Generator struct {
	apps   []AppTraffic
	rng    *sim.RNG
	inject InjectorFunc
	nextID uint64
	// Until stops generation at this cycle when > 0 (the network then
	// drains).
	Until int64
	// Pool, when non-nil, supplies packet structs instead of the heap. Set
	// it together with network.Params.Recycle so ejected packets flow back;
	// a recycled packet carries the same field values a fresh allocation
	// would, so pooling never changes simulation results.
	Pool *msg.Pool
}

// NewGenerator builds a generator over the given applications.
func NewGenerator(apps []AppTraffic, seed uint64, inject InjectorFunc) *Generator {
	return &Generator{apps: apps, rng: sim.NewRNG(seed), inject: inject}
}

// Created reports the number of packets generated so far.
func (g *Generator) Created() uint64 { return g.nextID }

// Tick implements sim.Tickable.
func (g *Generator) Tick(now int64) {
	if g.Until > 0 && now >= g.Until {
		return
	}
	for ai := range g.apps {
		a := &g.apps[ai]
		for _, node := range a.Nodes {
			if !g.rng.Bool(a.PacketRate) {
				continue
			}
			src, dst := a.draw(node, g.rng)
			if src == dst {
				continue
			}
			size := msg.LongPacketFlits
			cls := msg.ClassRequest
			if g.rng.Bool(a.shortFrac()) {
				size = msg.ShortPacketFlits
			} else if a.SplitClasses {
				cls = msg.ClassResponse
			}
			g.nextID++
			var p *msg.Packet
			if g.Pool != nil {
				p = g.Pool.Get()
			} else {
				p = &msg.Packet{}
			}
			p.ID, p.App, p.Src, p.Dst = g.nextID, a.App, src, dst
			p.Class, p.Size = cls, size
			g.inject(src, p, now)
		}
	}
}

// IntraUR is the intra-region uniform-random component: destinations are
// uniform over the app's own nodes.
func IntraUR(nodes []int) Component {
	u := Uniform{Nodes: nodes}
	return Component{Weight: 1, Draw: func(node int, rng *sim.RNG) (int, int) {
		return node, u.Dest(node, rng)
	}}
}

// InterPattern is the inter-region global-traffic component following a
// chip-wide base pattern, always crossing region boundaries.
func InterPattern(regions *region.Map, base Pattern) Component {
	p := InterRegion{Base: base, Regions: regions}
	return Component{Weight: 1, Draw: func(node int, rng *sim.RNG) (int, int) {
		return node, p.Dest(node, rng)
	}}
}

// DirectedTo sends to a uniformly random node of target (e.g. the DPA
// scenario where low-load apps send into App 3's region).
func DirectedTo(target []int) Component {
	u := Uniform{Nodes: target}
	return Component{Weight: 1, Draw: func(node int, rng *sim.RNG) (int, int) {
		return node, u.Dest(node, rng)
	}}
}

// MCCorners models memory-controller traffic: half the events send from the
// app node to a random corner MC, half are MC replies from a random corner
// back to the app node.
func MCCorners(mesh *topology.Mesh) Component {
	corners := mesh.Corners()
	return Component{Weight: 1, Draw: func(node int, rng *sim.RNG) (int, int) {
		mc := corners[rng.Intn(len(corners))]
		if rng.Bool(0.5) {
			return node, mc
		}
		return mc, node
	}}
}

// Adversary builds the malicious/buggy traffic of Section V.G: chip-wide
// uniform random traffic injected at every node under an application number
// assigned to no region, so it is foreign traffic everywhere. rate is in
// packets per node per cycle.
func Adversary(mesh *topology.Mesh, app int, rate float64) AppTraffic {
	all := make([]int, mesh.N())
	for i := range all {
		all[i] = i
	}
	return AppTraffic{
		App: app, Nodes: all, PacketRate: rate,
		Components: []Component{IntraUR(all)},
	}
}
