// Package traffic generates the synthetic workloads of the evaluation:
// uniform random, transpose, bit complement and hotspot patterns (Dally &
// Towles), composed per application into the regionalized mixes of the
// paper's scenarios (intra-region traffic, inter-region global traffic with
// a configurable pattern, memory-controller traffic to/from the corners,
// and chip-wide adversarial traffic). It also estimates saturation loads so
// scenarios can be specified as fractions of saturation, as the paper does.
package traffic

import (
	"rair/internal/region"
	"rair/internal/sim"
	"rair/internal/topology"
)

// Pattern chooses a destination for a packet from src. Implementations may
// return src; callers resample or skip such draws (self-traffic never
// enters the network).
type Pattern interface {
	Name() string
	Dest(src int, rng *sim.RNG) int
}

// Uniform sends to a uniformly random node of Nodes (excluding src when
// possible).
type Uniform struct {
	Nodes []int
}

// Name implements Pattern.
func (Uniform) Name() string { return "UR" }

// Dest implements Pattern.
func (u Uniform) Dest(src int, rng *sim.RNG) int {
	n := len(u.Nodes)
	if n == 0 {
		return src
	}
	pos := -1
	for i, v := range u.Nodes {
		if v == src {
			pos = i
			break
		}
	}
	if pos < 0 {
		return u.Nodes[rng.Intn(n)]
	}
	if n == 1 {
		return src
	}
	idx := rng.Intn(n - 1)
	if idx >= pos {
		idx++
	}
	return u.Nodes[idx]
}

// Transpose sends (x,y) to (y,x) on a square mesh. On a non-square mesh the
// swapped coordinate can fall off the grid, so each coordinate wraps into
// range ((y mod W, x mod H)); on square meshes this is exactly the classic
// transpose, and everywhere else every destination is still a valid node.
type Transpose struct {
	Mesh *topology.Mesh
}

// Name implements Pattern.
func (Transpose) Name() string { return "TP" }

// Dest implements Pattern.
func (t Transpose) Dest(src int, _ *sim.RNG) int {
	m := t.Mesh
	if m.W == m.H {
		return m.Transpose(src)
	}
	c := m.Coord(src)
	return m.ID(topology.Coord{X: c.Y % m.W, Y: c.X % m.H})
}

// BitComplement sends node i to N-1-i.
type BitComplement struct {
	Mesh *topology.Mesh
}

// Name implements Pattern.
func (BitComplement) Name() string { return "BC" }

// Dest implements Pattern.
func (b BitComplement) Dest(src int, _ *sim.RNG) int { return b.Mesh.BitComplement(src) }

// Hotspot sends to one of the hotspot nodes with probability Frac, else
// defers to Background.
type Hotspot struct {
	Hotspots   []int
	Frac       float64
	Background Pattern
}

// Name implements Pattern.
func (Hotspot) Name() string { return "HS" }

// Dest implements Pattern.
func (h Hotspot) Dest(src int, rng *sim.RNG) int {
	if len(h.Hotspots) > 0 && rng.Bool(h.Frac) {
		return h.Hotspots[rng.Intn(len(h.Hotspots))]
	}
	if h.Background != nil {
		return h.Background.Dest(src, rng)
	}
	return src
}

// InterRegion adapts a chip-wide pattern into inter-region ("global")
// traffic: if the base pattern lands inside src's own region, the draw
// falls back to a uniform choice among out-of-region nodes, so the traffic
// is always global (the paper's global-traffic component) while preserving
// the base pattern's shape everywhere it already crosses regions.
type InterRegion struct {
	Base    Pattern
	Regions *region.Map
}

// Name implements Pattern.
func (p InterRegion) Name() string { return "Inter" + p.Base.Name() }

// Dest implements Pattern.
func (p InterRegion) Dest(src int, rng *sim.RNG) int {
	d := p.Base.Dest(src, rng)
	if p.Regions.Global(src, d) && d != src {
		return d
	}
	mesh := p.Regions.Mesh()
	for i := 0; i < 16; i++ {
		d = rng.Intn(mesh.N())
		if d != src && p.Regions.Global(src, d) {
			return d
		}
	}
	return src
}

// PatternByName builds one of the four synthetic global-traffic patterns
// from the paper's Figure 15 over the given mesh: "UR", "TP", "BC" or "HS".
// Hotspot sends 25% of draws to four interior hotspot nodes (one per
// quadrant, at the quarter points), background uniform random; interior
// hotspots keep the pattern distinct from the corner memory-controller
// traffic every scenario already carries.
func PatternByName(name string, mesh *topology.Mesh) Pattern {
	all := make([]int, mesh.N())
	for i := range all {
		all[i] = i
	}
	switch name {
	case "UR":
		return Uniform{Nodes: all}
	case "TP":
		return Transpose{Mesh: mesh}
	case "BC":
		return BitComplement{Mesh: mesh}
	case "HS":
		// On tiny or 1-wide meshes the quarter points coincide; keep each
		// hotspot once so duplicates don't silently double a node's share
		// of the hotspot draws.
		qx, qy := mesh.W/4, mesh.H/4
		var hs []int
		for _, c := range []topology.Coord{
			{X: qx, Y: qy},
			{X: mesh.W - 1 - qx, Y: qy},
			{X: qx, Y: mesh.H - 1 - qy},
			{X: mesh.W - 1 - qx, Y: mesh.H - 1 - qy},
		} {
			id := mesh.ID(c)
			seen := false
			for _, h := range hs {
				if h == id {
					seen = true
					break
				}
			}
			if !seen {
				hs = append(hs, id)
			}
		}
		return Hotspot{Hotspots: hs, Frac: 0.25, Background: Uniform{Nodes: all}}
	}
	panic("traffic: unknown pattern " + name)
}
