package routing

import "rair/internal/topology"

// WestFirst is the west-first turn-model adaptive routing algorithm: all
// westward hops are taken first (deterministically), after which the packet
// may route adaptively among the remaining productive directions. The turn
// model forbids the turns that close dependency cycles, so west-first is
// deadlock-free on every VC without an escape network — included as an
// alternative substrate to demonstrate RAIR's routing-independence
// (Section IV.D: "virtually any deadlock avoidance routing algorithm can be
// incorporated").
//
// The router still reserves escape VCs (its deadlock safety net is
// algorithm-agnostic); under west-first they are just extra DOR-restricted
// capacity.
type WestFirst struct {
	Mesh *topology.Mesh
}

// Name implements Algorithm.
func (WestFirst) Name() string { return "WestFirst" }

// Candidates implements Algorithm.
func (a WestFirst) Candidates(cur, dst int, out []topology.Dir) []topology.Dir {
	if cur == dst {
		return append(out, topology.Local)
	}
	cc, cd := a.Mesh.Coord(cur), a.Mesh.Coord(dst)
	if cd.X < cc.X {
		// Westward traffic is fully deterministic: west first.
		return append(out, topology.West)
	}
	return a.Mesh.MinimalDirs(cur, dst, out)
}

// EscapeDir implements Algorithm. XY routing never takes a forbidden
// west-first turn (west hops happen before any north/south hop), so the
// escape network is compatible with the turn model.
func (a WestFirst) EscapeDir(cur, dst int) topology.Dir { return a.Mesh.XYDir(cur, dst) }
