package routing

import (
	"testing"
	"testing/quick"

	"rair/internal/region"
	"rair/internal/topology"
)

func TestLBDRValidMapping(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	regs := region.Quadrants(mesh)
	corners := mesh.Corners()
	l, err := NewLBDR(regs, corners[:])
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "LBDR" {
		t.Fatal("name")
	}
	// Each quadrant contains one corner MC: mapping valid.
	if !l.Supports(0, 9) { // both in quadrant 0
		t.Fatal("intra-region must be supported")
	}
	if l.Supports(0, 63) {
		t.Fatal("inter-region must be rejected")
	}
}

func TestLBDRInvalidMapping(t *testing.T) {
	// Middle region without any corner MC (the paper's Figure 3(b) case).
	mesh := topology.NewMesh(8, 8)
	regs, err := region.FromRects(mesh, []region.Rect{
		{X0: 0, Y0: 0, X1: 2, Y1: 8},
		{X0: 2, Y0: 0, X1: 6, Y1: 8}, // middle band: no corner
		{X0: 6, Y0: 0, X1: 8, Y1: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	corners := mesh.Corners()
	if _, err := NewLBDR(regs, corners[:]); err == nil {
		t.Fatal("MC-less region accepted")
	}
}

func TestLBDRInvalidRegionMap(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	m := region.New(mesh)
	m.Assign(0, 2) // apps 0,1 empty
	if _, err := NewLBDR(m, []int{0}); err == nil {
		t.Fatal("broken region map accepted")
	}
}

// Property: LBDR candidates stay inside the packet's region and are
// minimal.
func TestLBDRStaysInRegion(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	regs := region.Quadrants(mesh)
	corners := mesh.Corners()
	l, err := NewLBDR(regs, corners[:])
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(a, b uint8) bool {
		cur, dst := int(a)%64, int(b)%64
		if !l.Supports(cur, dst) {
			return true
		}
		for _, d := range l.Candidates(cur, dst, nil) {
			if d == topology.Local {
				continue
			}
			n := mesh.Neighbor(cur, d)
			if n == -1 || !regs.SameRegion(cur, n) {
				return false
			}
			if mesh.Distance(n, dst) != mesh.Distance(cur, dst)-1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLBDRPanicsOnGlobalTraffic(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	regs := region.Quadrants(mesh)
	corners := mesh.Corners()
	l, _ := NewLBDR(regs, corners[:])
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Candidates(0, 63, nil)
}

func TestWestFirstRules(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	a := WestFirst{Mesh: mesh}
	if a.Name() != "WestFirst" {
		t.Fatal("name")
	}
	// Destination to the south-west: must go west first, only west.
	src := mesh.ID(topology.Coord{X: 5, Y: 2})
	dst := mesh.ID(topology.Coord{X: 2, Y: 6})
	dirs := a.Candidates(src, dst, nil)
	if len(dirs) != 1 || dirs[0] != topology.West {
		t.Fatalf("west-first candidates %v", dirs)
	}
	// Destination east: fully adaptive among minimal dirs.
	dst2 := mesh.ID(topology.Coord{X: 7, Y: 6})
	dirs = a.Candidates(src, dst2, nil)
	if len(dirs) != 2 {
		t.Fatalf("eastward candidates %v", dirs)
	}
	if d := a.Candidates(5, 5, nil); d[0] != topology.Local {
		t.Fatal("self route")
	}
}

// Property: west-first never offers a forbidden turn: once any non-west hop
// is possible, west is not among the candidates unless it is the only one.
func TestWestFirstNeverTurnsBackWest(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	a := WestFirst{Mesh: mesh}
	if err := quick.Check(func(s, d uint8) bool {
		cur, dst := int(s)%64, int(d)%64
		if cur == dst {
			return true
		}
		dirs := a.Candidates(cur, dst, nil)
		hasWest := false
		for _, dir := range dirs {
			if dir == topology.West {
				hasWest = true
			}
		}
		// If west is needed it must be the only candidate (no NS-to-W
		// turns ever offered).
		if hasWest && len(dirs) != 1 {
			return false
		}
		// Escape dir must be one of the candidates.
		esc := a.EscapeDir(cur, dst)
		for _, dir := range dirs {
			if dir == esc {
				return true
			}
		}
		return false
	}, nil); err != nil {
		t.Fatal(err)
	}
}
