package routing

import (
	"testing"
	"testing/quick"

	"rair/internal/region"
	"rair/internal/topology"
)

type fakeView struct {
	free map[topology.Dir]int
	path map[topology.Dir][]int // occupancy per hop distance (1-based)
}

func (v fakeView) OutputFree(d topology.Dir) int { return v.free[d] }

func (v fakeView) PathOccupancy(d topology.Dir, hops int) int {
	sum := 0
	occ := v.path[d]
	for k := 0; k < hops && k < len(occ); k++ {
		sum += occ[k]
	}
	return sum
}

func TestXYAlgorithm(t *testing.T) {
	m := topology.NewMesh(8, 8)
	a := XY{Mesh: m}
	if a.Name() != "XY" {
		t.Fatal("name")
	}
	dirs := a.Candidates(0, 63, nil)
	if len(dirs) != 1 || dirs[0] != topology.East {
		t.Fatalf("XY candidates = %v", dirs)
	}
	if a.EscapeDir(0, 63) != topology.East {
		t.Fatal("escape dir")
	}
	if d := a.Candidates(5, 5, nil); d[0] != topology.Local {
		t.Fatal("self route must be Local")
	}
}

func TestMinimalAdaptiveCandidates(t *testing.T) {
	m := topology.NewMesh(8, 8)
	a := MinimalAdaptive{Mesh: m}
	// 0 -> 63 needs East and South.
	dirs := a.Candidates(0, 63, nil)
	if len(dirs) != 2 {
		t.Fatalf("candidates = %v", dirs)
	}
	has := map[topology.Dir]bool{}
	for _, d := range dirs {
		has[d] = true
	}
	if !has[topology.East] || !has[topology.South] {
		t.Fatalf("candidates = %v", dirs)
	}
	// Same row: only one candidate.
	if dirs := a.Candidates(0, 7, nil); len(dirs) != 1 || dirs[0] != topology.East {
		t.Fatalf("row candidates = %v", dirs)
	}
	if dirs := a.Candidates(9, 9, nil); len(dirs) != 1 || dirs[0] != topology.Local {
		t.Fatalf("self candidates = %v", dirs)
	}
}

// Property: the escape direction is always among a productive direction set
// and XY-consistent, so escape VC hops are minimal and deadlock-free.
func TestEscapeDirAlwaysMinimal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	a := MinimalAdaptive{Mesh: m}
	if err := quick.Check(func(s, d uint8) bool {
		cur, dst := int(s)%64, int(d)%64
		if cur == dst {
			return a.EscapeDir(cur, dst) == topology.Local
		}
		esc := a.EscapeDir(cur, dst)
		for _, dir := range a.Candidates(cur, dst, nil) {
			if dir == esc {
				return true
			}
		}
		return false
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSelectorPicksMostFree(t *testing.T) {
	v := fakeView{free: map[topology.Dir]int{topology.East: 2, topology.South: 7}}
	s := LocalSelector{}
	if s.Name() != "Local" {
		t.Fatal("name")
	}
	got := s.Select(0, 63, []topology.Dir{topology.East, topology.South}, v)
	if got != topology.South {
		t.Fatalf("selected %v", got)
	}
	// Tie prefers the first candidate.
	v.free[topology.South] = 2
	got = s.Select(0, 63, []topology.Dir{topology.East, topology.South}, v)
	if got != topology.East {
		t.Fatalf("tie selected %v", got)
	}
}

func TestDBARUsesPathOccupancy(t *testing.T) {
	m := topology.NewMesh(8, 8)
	s := DBARSelector{Mesh: m, Regions: region.Single(m)}
	// Path east is congested, south clear.
	v := fakeView{
		free: map[topology.Dir]int{},
		path: map[topology.Dir][]int{
			topology.East:  {5, 5, 5},
			topology.South: {0, 0, 0},
		},
	}
	got := s.Select(0, 63, []topology.Dir{topology.East, topology.South}, v)
	if got != topology.South {
		t.Fatalf("selected %v", got)
	}
}

func TestDBARClipsAtRegionBoundary(t *testing.T) {
	m := topology.NewMesh(8, 8)
	regs := region.Halves(m)
	s := DBARSelector{Mesh: m, Regions: regs}
	// Packet at (0,0) heading to (7,7): 7 hops east of which only 3 stay
	// in the left half. Congestion beyond the boundary (hops 4+) must be
	// ignored: east reads as clear even though the far end is loaded.
	v := fakeView{
		free: map[topology.Dir]int{},
		path: map[topology.Dir][]int{
			topology.East:  {0, 0, 0, 9, 9, 9, 9}, // load only beyond boundary
			topology.South: {1, 1, 1, 1, 1, 1, 1},
		},
	}
	got := s.Select(0, 63, []topology.Dir{topology.East, topology.South}, v)
	if got != topology.East {
		t.Fatalf("selected %v: region clipping not applied", got)
	}
	// Without regions (nil), the full path counts and south wins.
	s2 := DBARSelector{Mesh: m}
	got = s2.Select(0, 63, []topology.Dir{topology.East, topology.South}, v)
	if got != topology.South {
		t.Fatalf("unclipped selected %v", got)
	}
}

func TestDBARClipsAtDestinationOffset(t *testing.T) {
	m := topology.NewMesh(8, 8)
	s := DBARSelector{Mesh: m, Regions: region.Single(m)}
	// Destination is 1 hop east, 6 south. Only the first east hop counts.
	dst := m.ID(topology.Coord{X: 1, Y: 6})
	v := fakeView{
		free: map[topology.Dir]int{},
		path: map[topology.Dir][]int{
			topology.East:  {1, 9, 9},
			topology.South: {2, 0, 0},
		},
	}
	got := s.Select(0, dst, []topology.Dir{topology.East, topology.South}, v)
	if got != topology.East {
		t.Fatalf("selected %v: offset clipping not applied", got)
	}
}

func TestDBARLocalTieBreak(t *testing.T) {
	m := topology.NewMesh(8, 8)
	s := DBARSelector{Mesh: m, Regions: region.Single(m), Depth: 5}
	v := fakeView{
		free: map[topology.Dir]int{topology.East: 0, topology.South: 5},
		path: map[topology.Dir][]int{},
	}
	got := s.Select(0, 63, []topology.Dir{topology.East, topology.South}, v)
	if got != topology.South {
		t.Fatalf("selected %v: local term ignored", got)
	}
}

func TestDBARSingleCandidate(t *testing.T) {
	m := topology.NewMesh(8, 8)
	s := DBARSelector{Mesh: m}
	v := fakeView{}
	if got := s.Select(0, 7, []topology.Dir{topology.East}, v); got != topology.East {
		t.Fatalf("selected %v", got)
	}
	if got := s.Select(5, 5, []topology.Dir{topology.Local}, v); got != topology.Local {
		t.Fatalf("selected %v", got)
	}
	if s.Name() != "DBAR" {
		t.Fatal("name")
	}
}
