// Package routing provides the routing algorithms used in the evaluation:
// dimension-ordered XY routing, minimal fully-adaptive routing with a
// Duato-style XY escape path, and the two output-selection functions the
// paper compares — Local (credit/free-buffer based, the "typical adaptive
// routing algorithm that uses the information available at the local
// router") and DBAR (non-local congestion aggregated along dimensions,
// clipped at region boundaries so other regions' load does not interfere
// with in-region decisions, per Figure 4).
//
// RAIR itself places no restriction on routing (Section IV.D); the router
// composes any Algorithm with any Selector.
package routing

import (
	"rair/internal/region"
	"rair/internal/topology"
)

// Algorithm produces the candidate output directions for a packet.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Candidates appends the productive output directions for a packet
	// at cur heading to dst and returns the extended slice. For
	// cur == dst it appends Local.
	Candidates(cur, dst int, out []topology.Dir) []topology.Dir
	// EscapeDir returns the single deadlock-free (dimension-ordered)
	// direction from cur toward dst; escape VCs may only be requested on
	// this direction. Local when cur == dst.
	EscapeDir(cur, dst int) topology.Dir
}

// XY is deterministic dimension-ordered routing: the only candidate is the
// escape direction itself.
type XY struct {
	Mesh *topology.Mesh
}

// Name implements Algorithm.
func (XY) Name() string { return "XY" }

// Candidates implements Algorithm.
func (a XY) Candidates(cur, dst int, out []topology.Dir) []topology.Dir {
	return append(out, a.Mesh.XYDir(cur, dst))
}

// EscapeDir implements Algorithm.
func (a XY) EscapeDir(cur, dst int) topology.Dir { return a.Mesh.XYDir(cur, dst) }

// MinimalAdaptive offers every productive direction (at most two in a mesh)
// and relies on an escape VC network routed XY for deadlock freedom, per
// Duato's theory.
type MinimalAdaptive struct {
	Mesh *topology.Mesh
}

// Name implements Algorithm.
func (MinimalAdaptive) Name() string { return "MinAdaptive" }

// Candidates implements Algorithm.
func (a MinimalAdaptive) Candidates(cur, dst int, out []topology.Dir) []topology.Dir {
	if cur == dst {
		return append(out, topology.Local)
	}
	return a.Mesh.MinimalDirs(cur, dst, out)
}

// EscapeDir implements Algorithm.
func (a MinimalAdaptive) EscapeDir(cur, dst int) topology.Dir { return a.Mesh.XYDir(cur, dst) }

// CongestionView is the congestion information a router exposes to its
// selection function.
type CongestionView interface {
	// OutputFree reports the total downstream credits available at the
	// output port in direction d (the local, credit-based signal).
	OutputFree(d topology.Dir) int
	// PathOccupancy reports the aggregated occupancy of the next hops
	// routers along direction d (the DBAR-style non-local signal, as
	// fresh as the one-hop-per-cycle propagation allows).
	PathOccupancy(d topology.Dir, hops int) int
}

// Selector picks one direction among the candidates returned by an
// Algorithm.
type Selector interface {
	// Name identifies the selector in reports.
	Name() string
	// Select returns one of dirs (len >= 1) for a packet at cur heading
	// to dst given the router's congestion view.
	Select(cur, dst int, dirs []topology.Dir, view CongestionView) topology.Dir
}

// CongestionConsumer is implemented by selectors that read the propagated
// non-local congestion signal (CongestionView.PathOccupancy). The network
// runs the cycle-by-cycle DBAR propagation only when the configured selector
// consumes it; selectors that don't implement the interface are
// conservatively assumed to consume it.
type CongestionConsumer interface {
	// ConsumesCongestion reports whether Select ever calls PathOccupancy.
	ConsumesCongestion() bool
}

// ConsumesCongestion reports whether sel needs the propagated congestion
// signal: its CongestionConsumer answer if implemented, true otherwise.
func ConsumesCongestion(sel Selector) bool {
	if c, ok := sel.(CongestionConsumer); ok {
		return c.ConsumesCongestion()
	}
	return true
}

// LocalSelector picks the candidate with the most free downstream credits,
// breaking ties toward the first candidate (the X dimension, keeping the
// tie-break deterministic).
type LocalSelector struct{}

// Name implements Selector.
func (LocalSelector) Name() string { return "Local" }

// ConsumesCongestion implements CongestionConsumer: local selection reads
// only the credit signal, so the network can skip DBAR propagation.
func (LocalSelector) ConsumesCongestion() bool { return false }

// Select implements Selector.
func (LocalSelector) Select(cur, dst int, dirs []topology.Dir, view CongestionView) topology.Dir {
	best := dirs[0]
	bestFree := view.OutputFree(best)
	for _, d := range dirs[1:] {
		if f := view.OutputFree(d); f > bestFree {
			best, bestFree = d, f
		}
	}
	return best
}

// DBARSelector implements the DBAR selection function: candidates are
// scored by the congestion of the routers along the candidate dimension,
// aggregated only up to the nearer of (a) the hop where the packet would
// reach its destination coordinate in that dimension, and (b) the boundary
// of the current region — so the load of other regions never influences the
// decision (Figure 4). The local credit signal breaks near-ties.
type DBARSelector struct {
	Mesh    *topology.Mesh
	Regions *region.Map
	// Depth is the total downstream buffer capacity behind OutputFree
	// (all VCs of a port), used to convert free credits into an
	// occupancy-style penalty. Zero disables the local term.
	Depth int
}

// Name implements Selector.
func (DBARSelector) Name() string { return "DBAR" }

// ConsumesCongestion implements CongestionConsumer: DBAR scoring is built on
// the propagated per-dimension occupancy tables.
func (DBARSelector) ConsumesCongestion() bool { return true }

// Select implements Selector.
func (s DBARSelector) Select(cur, dst int, dirs []topology.Dir, view CongestionView) topology.Dir {
	best := dirs[0]
	bestScore := s.score(cur, dst, best, view)
	for _, d := range dirs[1:] {
		if sc := s.score(cur, dst, d, view); sc < bestScore {
			best, bestScore = d, sc
		}
	}
	return best
}

func (s DBARSelector) score(cur, dst int, d topology.Dir, view CongestionView) int {
	if d == topology.Local {
		return 0
	}
	cc, cd := s.Mesh.Coord(cur), s.Mesh.Coord(dst)
	var offset int
	switch d {
	case topology.East, topology.West:
		offset = abs(cd.X - cc.X)
	default:
		offset = abs(cd.Y - cc.Y)
	}
	clip := offset
	if s.Regions != nil {
		if span := s.Regions.SpanWithin(cur, d); span < clip {
			clip = span
		}
	}
	// Path occupancy (buffered flits at the input ports a d-traveling
	// packet will enter) plus the fresh local credit signal for the first
	// hop; both are in buffer-slot units, so they compose directly.
	score := view.PathOccupancy(d, clip)
	if s.Depth > 0 {
		score += s.Depth - min(view.OutputFree(d), s.Depth)
	}
	return score
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
