package routing

import (
	"fmt"

	"rair/internal/region"
	"rair/internal/topology"
)

// LBDR models the restricted region-aware technique of Flich/Trivino et
// al. (Section III.B): packets are confined to their originating region by
// routing restriction, so inter-region ("global") traffic simply cannot be
// routed. Because every application still needs memory, a mapping is only
// valid when every region contains at least one memory controller — the
// constraint behind the paper's ≈14% valid-mapping fraction
// (region.LBDRValidFraction).
//
// LBDR exists here as the restricted baseline: it demonstrates what the
// restriction costs (construction fails for MC-less regions; Supports
// reports which traffic is routable at all). RAIR needs none of this.
type LBDR struct {
	regions *region.Map
}

// NewLBDR validates the mapping — every region must contain at least one of
// the given memory-controller nodes — and returns the restricted router.
func NewLBDR(regions *region.Map, mcs []int) (LBDR, error) {
	if err := regions.Validate(); err != nil {
		return LBDR{}, err
	}
	hasMC := make(map[int]bool)
	for _, mc := range mcs {
		app := regions.AppAt(mc)
		if app != region.Unassigned {
			hasMC[app] = true
		}
	}
	for app := 0; app < regions.NumApps(); app++ {
		if !hasMC[app] {
			return LBDR{}, fmt.Errorf(
				"routing: LBDR-invalid mapping: region %d contains no memory controller", app)
		}
	}
	return LBDR{regions: regions}, nil
}

// Supports reports whether LBDR can route from src to dst: only
// intra-region traffic is legal.
func (l LBDR) Supports(src, dst int) bool {
	return src == dst || l.regions.SameRegion(src, dst)
}

// Name implements Algorithm.
func (LBDR) Name() string { return "LBDR" }

// Candidates implements Algorithm: minimal directions within the region.
// Regions are rectangular, so every minimal path between two region nodes
// stays inside it. Routing a packet LBDR cannot support is a configuration
// error and panics — restricted techniques must filter traffic at the
// source (see Supports).
func (l LBDR) Candidates(cur, dst int, out []topology.Dir) []topology.Dir {
	if !l.Supports(cur, dst) {
		panic(fmt.Sprintf("routing: LBDR cannot route inter-region packet %d->%d", cur, dst))
	}
	mesh := l.regions.Mesh()
	if cur == dst {
		return append(out, topology.Local)
	}
	return mesh.MinimalDirs(cur, dst, out)
}

// EscapeDir implements Algorithm (XY within the region).
func (l LBDR) EscapeDir(cur, dst int) topology.Dir {
	if !l.Supports(cur, dst) {
		panic(fmt.Sprintf("routing: LBDR cannot route inter-region packet %d->%d", cur, dst))
	}
	return l.regions.Mesh().XYDir(cur, dst)
}
