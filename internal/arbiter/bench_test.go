package arbiter

import "testing"

func BenchmarkRoundRobinGrant(b *testing.B) {
	a := NewRoundRobin(25)
	req := make([]bool, 25)
	req[3], req[17] = true, true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Grant(req)
	}
}

func BenchmarkPrioritizedGrant(b *testing.B) {
	a := NewPrioritized(25)
	req := make([]bool, 25)
	prio := make([]int, 25)
	for i := 0; i < 25; i += 3 {
		req[i] = true
		prio[i] = i % 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Grant(req, prio)
	}
}
