// Package arbiter provides the arbitration primitives used at every
// contention point of the router: round-robin, priority-class arbitration
// with round-robin tie-breaking (the shape all RAIR/STC policies reduce to),
// and a matrix (least-recently-served) arbiter.
package arbiter

// None is returned when no input is requesting.
const None = -1

// RoundRobin grants one of n requestors per call, rotating a pointer so that
// the most recently served requestor has the lowest priority next time.
type RoundRobin struct {
	n, ptr int
}

// NewRoundRobin returns an arbiter over n requestors.
func NewRoundRobin(n int) *RoundRobin {
	if n < 1 {
		panic("arbiter: need at least one requestor")
	}
	return &RoundRobin{n: n}
}

// N reports the requestor count.
func (a *RoundRobin) N() int { return a.n }

// Grant returns the winning index among req (true = requesting), or None.
// The search starts at the rotating pointer; on a grant the pointer moves
// just past the winner.
func (a *RoundRobin) Grant(req []bool) int {
	if len(req) != a.n {
		panic("arbiter: request vector size mismatch")
	}
	for idx := a.ptr; idx < a.n; idx++ {
		if req[idx] {
			a.ptr = idx + 1
			if a.ptr == a.n {
				a.ptr = 0
			}
			return idx
		}
	}
	for idx := 0; idx < a.ptr; idx++ {
		if req[idx] {
			a.ptr = idx + 1
			return idx
		}
	}
	return None
}

// Prioritized grants the requestor with the highest priority class, breaking
// ties round-robin. This is the hardware shape of all the paper's policies:
// a small priority computed per requestor (from batching/ranking in STC, or
// native/foreign status and DPA state in RAIR) in front of a fair arbiter.
type Prioritized struct {
	n, ptr int
}

// NewPrioritized returns a priority arbiter over n requestors.
func NewPrioritized(n int) *Prioritized {
	if n < 1 {
		panic("arbiter: need at least one requestor")
	}
	return &Prioritized{n: n}
}

// Grant returns the index of a requesting input with maximal prio, ties
// broken round-robin, or None. req and prio must both have length n.
func (a *Prioritized) Grant(req []bool, prio []int) int {
	if len(req) != a.n || len(prio) != a.n {
		panic("arbiter: request/priority vector size mismatch")
	}
	best, bestPrio := None, 0
	for idx := a.ptr; idx < a.n; idx++ {
		if req[idx] && (best == None || prio[idx] > bestPrio) {
			best, bestPrio = idx, prio[idx]
		}
	}
	for idx := 0; idx < a.ptr; idx++ {
		if req[idx] && (best == None || prio[idx] > bestPrio) {
			best, bestPrio = idx, prio[idx]
		}
	}
	if best != None {
		a.ptr = best + 1
		if a.ptr == a.n {
			a.ptr = 0
		}
	}
	return best
}

// GrantSingle commits a grant when the caller already knows idx is the only
// requestor: the outcome and the round-robin pointer update are exactly
// those of Grant with a one-hot request vector, without scanning it.
func (a *Prioritized) GrantSingle(idx int) int {
	// idx+1 <= n always, so the wrap is a compare instead of a division
	// (this sits on the uncontended fast path of every SA/VA grant).
	a.ptr = idx + 1
	if a.ptr == a.n {
		a.ptr = 0
	}
	return idx
}

// Matrix implements a matrix arbiter: a triangular matrix of "i beats j"
// bits updated so the winner becomes lowest priority against everyone.
// It provides strong fairness (least recently served wins) and is used in
// tests as a fairness reference.
type Matrix struct {
	n     int
	beats [][]bool // beats[i][j]: i has priority over j
}

// NewMatrix returns a matrix arbiter over n requestors; initially lower
// indices beat higher ones.
func NewMatrix(n int) *Matrix {
	if n < 1 {
		panic("arbiter: need at least one requestor")
	}
	m := &Matrix{n: n, beats: make([][]bool, n)}
	for i := range m.beats {
		m.beats[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			m.beats[i][j] = true
		}
	}
	return m
}

// Grant returns the requestor that beats all other requestors, or None.
func (m *Matrix) Grant(req []bool) int {
	if len(req) != m.n {
		panic("arbiter: request vector size mismatch")
	}
	winner := None
	for i := 0; i < m.n; i++ {
		if !req[i] {
			continue
		}
		wins := true
		for j := 0; j < m.n; j++ {
			if j != i && req[j] && !m.beats[i][j] {
				wins = false
				break
			}
		}
		if wins {
			winner = i
			break
		}
	}
	if winner != None {
		for j := 0; j < m.n; j++ {
			if j != winner {
				m.beats[winner][j] = false
				m.beats[j][winner] = true
			}
		}
	}
	return winner
}
