package arbiter

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinRotates(t *testing.T) {
	a := NewRoundRobin(4)
	all := []bool{true, true, true, true}
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, a.Grant(all))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	a := NewRoundRobin(4)
	req := []bool{false, true, false, true}
	if g := a.Grant(req); g != 1 {
		t.Fatalf("grant = %d", g)
	}
	if g := a.Grant(req); g != 3 {
		t.Fatalf("grant = %d", g)
	}
	if g := a.Grant(req); g != 1 {
		t.Fatalf("grant = %d", g)
	}
}

func TestRoundRobinNone(t *testing.T) {
	a := NewRoundRobin(3)
	if g := a.Grant([]bool{false, false, false}); g != None {
		t.Fatalf("grant = %d, want None", g)
	}
}

// Property: under persistent full load, every requestor is served exactly
// once per n grants (strong fairness).
func TestRoundRobinFairness(t *testing.T) {
	if err := quick.Check(func(n8 uint8) bool {
		n := int(n8%8) + 2
		a := NewRoundRobin(n)
		all := make([]bool, n)
		for i := range all {
			all[i] = true
		}
		counts := make([]int, n)
		for i := 0; i < 5*n; i++ {
			counts[a.Grant(all)]++
		}
		for _, c := range counts {
			if c != 5 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrioritizedHighestWins(t *testing.T) {
	a := NewPrioritized(4)
	req := []bool{true, true, true, true}
	prio := []int{0, 2, 1, 2}
	// Ties between 1 and 3 break round-robin.
	first := a.Grant(req, prio)
	second := a.Grant(req, prio)
	if !(first == 1 && second == 3 || first == 3 && second == 1) {
		t.Fatalf("grants %d,%d — must alternate among max-priority", first, second)
	}
	// Non-requesting high priority is ignored.
	req2 := []bool{true, false, true, false}
	if g := a.Grant(req2, prio); g != 2 {
		t.Fatalf("grant = %d, want 2", g)
	}
}

func TestPrioritizedEqualsRRWhenFlat(t *testing.T) {
	p := NewPrioritized(5)
	r := NewRoundRobin(5)
	flat := make([]int, 5)
	rng := []bool{true, false, true, true, false}
	for i := 0; i < 20; i++ {
		if p.Grant(rng, flat) != r.Grant(rng) {
			t.Fatal("prioritized with flat priorities diverged from round-robin")
		}
	}
}

// Property: a prioritized grant never selects a lower-priority requestor
// while a higher-priority one is requesting.
func TestPrioritizedNeverInverts(t *testing.T) {
	if err := quick.Check(func(reqBits, prioSeed uint16) bool {
		const n = 8
		a := NewPrioritized(n)
		req := make([]bool, n)
		prio := make([]int, n)
		any := false
		for i := 0; i < n; i++ {
			req[i] = reqBits&(1<<i) != 0
			prio[i] = int((prioSeed >> (2 * uint(i))) & 3)
			any = any || req[i]
		}
		g := a.Grant(req, prio)
		if !any {
			return g == None
		}
		if g == None || !req[g] {
			return false
		}
		for i := 0; i < n; i++ {
			if req[i] && prio[i] > prio[g] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrioritizedStarvesLowUnderLoad(t *testing.T) {
	// Fixed priority + persistent high-priority load starves low priority;
	// this is exactly why RAIR needs DPA's negative feedback. Document the
	// behavior here.
	a := NewPrioritized(2)
	req := []bool{true, true}
	prio := []int{1, 0}
	for i := 0; i < 100; i++ {
		if a.Grant(req, prio) != 0 {
			t.Fatal("low priority served while high priority pending")
		}
	}
}

func TestMatrixLeastRecentlyServed(t *testing.T) {
	m := NewMatrix(3)
	all := []bool{true, true, true}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		seen[m.Grant(all)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("first 3 grants not distinct: %v", seen)
	}
	// After serving 0,1,2 the winner order repeats.
	if g := m.Grant(all); !seen[g] {
		t.Fatal("unexpected grant")
	}
}

func TestMatrixSingleRequestor(t *testing.T) {
	m := NewMatrix(4)
	req := []bool{false, false, true, false}
	for i := 0; i < 5; i++ {
		if g := m.Grant(req); g != 2 {
			t.Fatalf("grant = %d", g)
		}
	}
	if g := m.Grant(make([]bool, 4)); g != None {
		t.Fatal("grant on empty request vector")
	}
}

// Property: the matrix arbiter always produces exactly one winner when
// anyone requests (the matrix stays a total order).
func TestMatrixAlwaysDecides(t *testing.T) {
	if err := quick.Check(func(steps []uint8) bool {
		const n = 5
		m := NewMatrix(n)
		for _, s := range steps {
			req := make([]bool, n)
			any := false
			for i := 0; i < n; i++ {
				req[i] = s&(1<<uint(i)) != 0
				any = any || req[i]
			}
			g := m.Grant(req)
			if any != (g != None) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewRoundRobin(0) },
		func() { NewPrioritized(0) },
		func() { NewMatrix(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRoundRobin(3).Grant([]bool{true})
}
