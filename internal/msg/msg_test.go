package msg

import (
	"testing"
	"testing/quick"
)

func TestFlitsSingle(t *testing.T) {
	p := &Packet{ID: 1, Size: 1}
	fs := Flits(p)
	if len(fs) != 1 || fs[0].Type != HeadTail {
		t.Fatalf("single-flit packet: %+v", fs)
	}
	if !fs[0].Type.IsHead() || !fs[0].Type.IsTail() {
		t.Fatal("HeadTail must be both head and tail")
	}
}

func TestFlitsMulti(t *testing.T) {
	p := &Packet{ID: 2, Size: 5}
	fs := Flits(p)
	if len(fs) != 5 {
		t.Fatalf("len = %d", len(fs))
	}
	if fs[0].Type != Head || fs[4].Type != Tail {
		t.Fatal("head/tail misplaced")
	}
	for i := 1; i < 4; i++ {
		if fs[i].Type != Body {
			t.Fatalf("flit %d type %v", i, fs[i].Type)
		}
	}
	for i, f := range fs {
		if f.Seq != i || f.Pkt != p {
			t.Fatalf("flit %d seq/pkt wrong", i)
		}
	}
}

// Property: any packet has exactly one head and one tail, in the right spots.
func TestFlitsInvariant(t *testing.T) {
	if err := quick.Check(func(size8 uint8) bool {
		size := int(size8%10) + 1
		fs := Flits(&Packet{Size: size})
		heads, tails := 0, 0
		for _, f := range fs {
			if f.Type.IsHead() {
				heads++
			}
			if f.Type.IsTail() {
				tails++
			}
		}
		return heads == 1 && tails == 1 && fs[0].Type.IsHead() && fs[len(fs)-1].Type.IsTail()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlitsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Flits(&Packet{Size: 0})
}

func TestLatencies(t *testing.T) {
	p := &Packet{CreatedAt: 10, InjectedAt: 15, EjectedAt: 40}
	if p.TotalLatency() != 30 {
		t.Fatalf("TotalLatency = %d", p.TotalLatency())
	}
	if p.NetworkLatency() != 25 {
		t.Fatalf("NetworkLatency = %d", p.NetworkLatency())
	}
}

func TestSizeFor(t *testing.T) {
	if SizeFor(ClassRequest) != ShortPacketFlits {
		t.Fatal("request size")
	}
	if SizeFor(ClassResponse) != LongPacketFlits {
		t.Fatal("response size")
	}
}

func TestStrings(t *testing.T) {
	if ClassRequest.String() != "Request" || ClassResponse.String() != "Response" {
		t.Fatal("Class strings")
	}
	if Class(7).String() != "Class(7)" {
		t.Fatal("unknown class string")
	}
	for _, tc := range []struct {
		ft   FlitType
		want string
	}{{Head, "Head"}, {Body, "Body"}, {Tail, "Tail"}, {HeadTail, "HeadTail"}} {
		if tc.ft.String() != tc.want {
			t.Fatalf("%v string", tc.ft)
		}
	}
	p := &Packet{ID: 3, App: 1, Src: 0, Dst: 5, Class: ClassRequest, Size: 1}
	if p.String() == "" {
		t.Fatal("empty packet string")
	}
}
