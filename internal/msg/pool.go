package msg

// Pool is a packet freelist: generators draw packets from it and the
// network returns them once ejected, so a steady-state simulation reuses a
// bounded working set of Packet structs instead of allocating one per
// injection (and feeding the garbage collector at the same rate).
//
// A Pool is NOT safe for concurrent use. The simulator only touches it from
// the coordinating goroutine: the traffic generator Gets between ticks, and
// the network Puts ejected packets while replaying ejection callbacks after
// all tick barriers. Recycling is only sound when no observer retains the
// packet pointer past its ejection callback — callers that record packets
// (trace capture, the memory-system model) must simply not attach a pool.
type Pool struct {
	free []*Packet
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, reusing a recycled one when available.
func (p *Pool) Get() *Packet {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free = p.free[:n-1]
		*pkt = Packet{}
		return pkt
	}
	return &Packet{}
}

// Put recycles an ejected packet for a later Get. The caller must not touch
// the packet afterwards.
func (p *Pool) Put(pkt *Packet) { p.free = append(p.free, pkt) }

// Len reports the packets currently parked in the freelist.
func (p *Pool) Len() int { return len(p.free) }
