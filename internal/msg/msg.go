// Package msg defines the units of communication in the network: packets and
// the flits they are serialized into, together with the message-class and
// traffic-kind vocabulary used by the interference-reduction policies.
package msg

import "fmt"

// Class distinguishes protocol message classes. Classes have disjoint VC
// sets (Duato's methodology for protocol-level deadlock freedom): requests
// and responses never share VCs.
type Class int

const (
	// ClassRequest carries cache requests (short, 1 flit / 16 B).
	ClassRequest Class = iota
	// ClassResponse carries data replies (long, 5 flits: head + 64 B).
	ClassResponse
	// NumClasses is the number of message classes modeled.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "Request"
	case ClassResponse:
		return "Response"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Flit sizes used by the evaluation: short packets are 16 B single-flit,
// long packets carry 64 B of data plus a head flit (5 flits at 128-bit links).
const (
	ShortPacketFlits = 1
	LongPacketFlits  = 5
)

// Blame cause buckets for interference attribution. When a packet's head
// flit stalls for a cycle, the stall is charged to the bucket named after
// whatever blocked it, keyed by the blocker's region class relative to the
// stalled packet. Precedence when causes coincide: fault > escape > foreign
// > native (see DESIGN.md "Observability").
const (
	// BlameNative: blocked by traffic of the packet's own region class.
	BlameNative = iota
	// BlameForeign: blocked by traffic from a foreign region — the
	// interference RAIR exists to reduce.
	BlameForeign
	// BlameEscape: serialized behind the escape-VC discipline (only the
	// masked escape VC was available, or an escape-VC holder blocked us).
	BlameEscape
	// BlameFault: stalled by fault handling (retransmission hold, or a
	// downstream flit pinned in ST by a faulty link).
	BlameFault
	// NumBlame is the number of blame buckets.
	NumBlame
)

// BlameName returns the canonical short name of a blame bucket.
func BlameName(b int) string {
	switch b {
	case BlameNative:
		return "native"
	case BlameForeign:
		return "foreign"
	case BlameEscape:
		return "escape"
	case BlameFault:
		return "fault"
	}
	return fmt.Sprintf("blame(%d)", b)
}

// Packet is a network packet. Flits reference their packet; per-packet
// fields are written once at creation and treated as read-only afterwards,
// except the latency bookkeeping stamps set by the network.
type Packet struct {
	ID  uint64
	App int // application number carried by the packet (RAIR tags)
	Src int // source node id
	Dst int // destination node id

	// FinalDst is the packet's ultimate destination in a chiplet system,
	// where Dst holds only the current leg's target (the tile gateway on
	// the first leg). Plain meshes leave it equal to Dst. Maintained by the
	// network's chiplet bridge; routers never read it.
	FinalDst int

	Class Class
	Size  int // flits, including head

	// Global reports whether the packet crosses a region boundary
	// (inter-region, "global traffic"); packets inside their source's
	// region are "regional traffic". Precomputed at creation from the
	// region map, since src/dst regions never change in flight.
	Global bool

	// CreatedAt is the cycle the packet entered its source queue.
	// InjectedAt is the cycle its head flit entered the network (left the
	// NI). EjectedAt is the cycle its tail flit was consumed at the
	// destination; -1 while in flight.
	CreatedAt  int64
	InjectedAt int64
	EjectedAt  int64

	// Hops counts router traversals, filled in by the network.
	Hops int

	// BatchID is the STC-style batch the packet belongs to (set at
	// injection by policies that batch; zero otherwise).
	BatchID int64

	// Payload carries protocol-level content (e.g. the memory system's
	// request descriptors). The network never inspects it.
	Payload any

	// Blame accumulates stalled-head-flit cycles per cause bucket while
	// attribution telemetry is enabled. Observer-only: the simulation never
	// reads it, so its contents cannot perturb behavior. Reset by the NI at
	// injection so pooled or protocol-reused packets start clean.
	Blame [NumBlame]int32
}

// TotalLatency is the queueing-inclusive packet latency, defined only after
// ejection.
func (p *Packet) TotalLatency() int64 { return p.EjectedAt - p.CreatedAt }

// NetworkLatency is the in-network latency (injection to ejection).
func (p *Packet) NetworkLatency() int64 { return p.EjectedAt - p.InjectedAt }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d app%d %d->%d %v size=%d", p.ID, p.App, p.Src, p.Dst, p.Class, p.Size)
}

// FlitType marks a flit's position in its packet.
type FlitType uint8

const (
	// Head starts a packet and carries routing state.
	Head FlitType = iota
	// Body is an interior flit.
	Body
	// Tail ends a packet and releases its VCs.
	Tail
	// HeadTail is a single-flit packet.
	HeadTail
)

func (t FlitType) String() string {
	switch t {
	case Head:
		return "Head"
	case Body:
		return "Body"
	case Tail:
		return "Tail"
	case HeadTail:
		return "HeadTail"
	}
	return fmt.Sprintf("FlitType(%d)", int(t))
}

// IsHead reports whether the flit opens a packet.
func (t FlitType) IsHead() bool { return t == Head || t == HeadTail }

// IsTail reports whether the flit closes a packet.
func (t FlitType) IsTail() bool { return t == Tail || t == HeadTail }

// Flit is the flow-control unit. VC is the virtual channel the flit occupies
// on the link it is currently traversing; it is rewritten at every hop by
// the upstream VC allocator.
type Flit struct {
	Pkt  *Packet
	Type FlitType
	Seq  int // 0-based position within the packet
	VC   int
}

// FlitAt synthesizes the i-th flit of p (VC unassigned) without
// materializing the whole sequence. Streaming senders (the NI) call it once
// per cycle, so packets never allocate a flit slice on the hot path.
func FlitAt(p *Packet, i int) Flit {
	if p.Size < 1 {
		panic("msg: packet with no flits")
	}
	if i < 0 || i >= p.Size {
		panic("msg: flit index out of range")
	}
	t := Body
	switch {
	case p.Size == 1:
		t = HeadTail
	case i == 0:
		t = Head
	case i == p.Size-1:
		t = Tail
	}
	return Flit{Pkt: p, Type: t, Seq: i}
}

// Flits serializes a packet into its flit sequence (VC unassigned).
func Flits(p *Packet) []Flit {
	if p.Size < 1 {
		panic("msg: packet with no flits")
	}
	fs := make([]Flit, p.Size)
	for i := range fs {
		fs[i] = FlitAt(p, i)
	}
	return fs
}

// SizeFor returns the canonical packet size for a message class.
func SizeFor(c Class) int {
	if c == ClassResponse {
		return LongPacketFlits
	}
	return ShortPacketFlits
}
