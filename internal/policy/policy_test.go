package policy

import (
	"testing"

	"rair/internal/msg"
)

func TestFromPacket(t *testing.T) {
	p := &msg.Packet{App: 2, Global: true, BatchID: 3, CreatedAt: 3500}
	r := FromPacket(p, 2)
	if !r.Native || !r.Global || r.App != 2 || r.BatchID != 3 {
		t.Fatalf("requestor %+v", r)
	}
	if FromPacket(p, 1).Native {
		t.Fatal("app mismatch must be foreign")
	}
	if FromPacket(p, -1).Native {
		t.Fatal("unassigned router has no native traffic")
	}
}

func TestBatchFor(t *testing.T) {
	if BatchFor(0) != 0 || BatchFor(BatchInterval-1) != 0 || BatchFor(BatchInterval) != 1 {
		t.Fatal("batch boundaries wrong")
	}
}

func TestRoundRobinFlat(t *testing.T) {
	p := NewRoundRobin(0, 0)
	if p.Name() != "RO_RR" {
		t.Fatalf("name %q", p.Name())
	}
	r1 := Requestor{Native: true}
	r2 := Requestor{Native: false, Global: true}
	for _, cls := range []VCClass{VCEscape, VCGlobal, VCRegional} {
		if p.VAOutPriority(r1, cls, 0) != p.VAOutPriority(r2, cls, 0) {
			t.Fatal("RO_RR must be flat")
		}
	}
	if p.SAPriority(r1, 0) != p.SAPriority(r2, 0) {
		t.Fatal("RO_RR must be flat at SA")
	}
	p.Update(3, 4) // must not panic or change anything
}

func TestRankPrefersLowIntensity(t *testing.T) {
	// App 0 rank 0 (least intensive), app 1 rank 1.
	f := NewRankFactory([]int{0, 1})
	p := f(0, 0)
	if p.Name() != "RO_Rank" {
		t.Fatalf("name %q", p.Name())
	}
	lo := Requestor{App: 0, BatchID: 0}
	hi := Requestor{App: 1, BatchID: 0}
	if p.SAPriority(lo, 10) <= p.SAPriority(hi, 10) {
		t.Fatal("lower-intensity app must outrank")
	}
	// Region-obliviousness: identical across VC classes and for
	// regional/global variants of the same requestor.
	g := lo
	g.Global = true
	if p.VAOutPriority(lo, VCRegional, 10) != p.VAOutPriority(g, VCGlobal, 10) {
		t.Fatal("RO_Rank must ignore region/VC class")
	}
}

func TestRankBatchDominates(t *testing.T) {
	f := NewRankFactory([]int{0, 1})
	p := f(0, 0)
	now := int64(5 * BatchInterval)
	oldBad := Requestor{App: 1, CreatedAt: 1 * BatchInterval}    // worst rank, old batch
	youngGood := Requestor{App: 0, CreatedAt: 4 * BatchInterval} // best rank, young batch
	if p.SAPriority(oldBad, now) <= p.SAPriority(youngGood, now) {
		t.Fatal("older batch must dominate rank")
	}
}

func TestRankUnrankedAppIsWorst(t *testing.T) {
	f := NewRankFactory([]int{0, 1})
	p := f(0, 0)
	adv := Requestor{App: 9} // adversarial, unranked
	worst := Requestor{App: 1}
	if p.SAPriority(adv, 10) >= p.SAPriority(worst, 10) {
		t.Fatal("unranked app must be below every ranked app")
	}
}

func TestRankFutureBatchClamped(t *testing.T) {
	p := NewRankFactory([]int{0})(0, 0)
	r := Requestor{App: 0, CreatedAt: 100 * BatchInterval}
	if p.SAPriority(r, 0) < 0 {
		t.Fatal("future creation must not produce negative priority")
	}
}

func TestRankAgeSaturates(t *testing.T) {
	p := NewRankFactory([]int{0})(0, 0)
	ancient := Requestor{App: 0, CreatedAt: 0}
	now := int64(BatchInterval) * (maxBatchAge + 50)
	v1 := p.SAPriority(ancient, now)
	v2 := p.SAPriority(ancient, now+BatchInterval)
	if v1 != v2 {
		t.Fatal("batch age must saturate")
	}
}

func TestRankCustomInterval(t *testing.T) {
	p := NewRankFactoryInterval([]int{0, 1}, 100)(0, 0)
	young := Requestor{App: 1, CreatedAt: 150}
	old := Requestor{App: 1, CreatedAt: 40}
	if p.SAPriority(old, 180) <= p.SAPriority(young, 180) {
		t.Fatal("custom interval batching inactive")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for interval 0")
		}
	}()
	NewRankFactoryInterval(nil, 0)
}

func TestVCClassStrings(t *testing.T) {
	if VCEscape.String() != "Escape" || VCGlobal.String() != "Global" || VCRegional.String() != "Regional" {
		t.Fatal("class strings")
	}
	if VCClass(9).String() != "VCClass(?)" {
		t.Fatal("unknown class string")
	}
}
