package policy

import "testing"

func TestRankStateRanking(t *testing.T) {
	s := NewRankState(3, 100)
	// App 2 injects the most, app 0 the least.
	for i := 0; i < 5; i++ {
		s.Observe(1)
	}
	for i := 0; i < 20; i++ {
		s.Observe(2)
	}
	s.Observe(0)
	s.Advance(100)
	if s.Rank(0) != 0 || s.Rank(1) != 1 || s.Rank(2) != 2 {
		t.Fatalf("ranks %d %d %d", s.Rank(0), s.Rank(1), s.Rank(2))
	}
	// Counts reset each interval: a quiet next interval re-ranks by the
	// new window only.
	for i := 0; i < 9; i++ {
		s.Observe(0)
	}
	s.Advance(150) // not due yet
	if s.Rank(0) != 0 {
		t.Fatal("re-ranked before the interval elapsed")
	}
	s.Advance(200)
	if s.Rank(0) != 2 {
		t.Fatalf("app 0 rank %d after becoming the most intensive", s.Rank(0))
	}
}

func TestRankStateOutOfRange(t *testing.T) {
	s := NewRankState(2, 10)
	s.Observe(-1)
	s.Observe(9) // ignored
	if s.Rank(9) != 2 || s.Rank(-1) != 2 {
		t.Fatal("out-of-range apps must get the worst rank")
	}
}

func TestRankStateValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewRankState(0, 10) },
		func() { NewRankState(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDynRankPolicy(t *testing.T) {
	s := NewRankState(2, 100)
	p := NewDynRankFactory(s)(0, 0)
	if p.Name() != "RO_RankDyn" {
		t.Fatalf("name %q", p.Name())
	}
	for i := 0; i < 10; i++ {
		s.Observe(1)
	}
	s.Advance(100)
	light := Requestor{App: 0, CreatedAt: 100}
	heavy := Requestor{App: 1, CreatedAt: 100}
	if p.SAPriority(light, 120) <= p.SAPriority(heavy, 120) {
		t.Fatal("measured ranking must favor the lighter app")
	}
	if p.VAOutPriority(light, VCGlobal, 120) != p.VAOutPriority(light, VCRegional, 120) {
		t.Fatal("DynRank must be VC-class-oblivious")
	}
	// Batching still dominates rank.
	oldHeavy := Requestor{App: 1, CreatedAt: 0}
	freshLight := Requestor{App: 0, CreatedAt: 9 * BatchInterval}
	if p.SAPriority(oldHeavy, 10*BatchInterval) <= p.SAPriority(freshLight, 10*BatchInterval) {
		t.Fatal("older batch must dominate measured rank")
	}
	p.Update(0, 0) // no-op
}
