// Package policy defines the interference-reduction policy interface the
// router consults at its arbitration steps, plus the region-oblivious
// baselines evaluated in the paper: RO_RR (round-robin) and RO_Rank (an
// idealized STC with oracle application ranking and time-based batching).
//
// A policy instance is per-router: it may keep per-router state (RAIR's DPA
// registers). All policies reduce to the same hardware shape — a small
// integer priority per requestor in front of a fair (round-robin) arbiter —
// evaluated at the VA output arbitration and the SA input/output
// arbitrations. VA input arbitration is contention-free between flows
// (Section IV.B), so no policy hook exists there.
package policy

import "rair/internal/msg"

// VCClass tags a virtual channel under RAIR's VC regionalization. Escape
// VCs exist for Duato-style deadlock freedom and take no part in the
// regional/global prioritization.
type VCClass int

const (
	// VCEscape is a deadlock-avoidance escape VC (DOR-routed).
	VCEscape VCClass = iota
	// VCGlobal is tagged for inter-region traffic priority rules.
	VCGlobal
	// VCRegional is tagged for intra-region traffic priority rules.
	VCRegional
)

func (c VCClass) String() string {
	switch c {
	case VCEscape:
		return "Escape"
	case VCGlobal:
		return "Global"
	case VCRegional:
		return "Regional"
	}
	return "VCClass(?)"
}

// Requestor is the per-packet context a policy sees at an arbitration step.
// The router builds it from the packet header and its own region tag.
type Requestor struct {
	// App is the application number carried by the packet.
	App int
	// Native reports whether the packet's application matches the
	// router's assigned application (native vs. foreign traffic).
	Native bool
	// Global reports whether the packet is inter-region traffic.
	Global bool
	// BatchID is the packet's STC batch (stamped at creation).
	BatchID int64
	// CreatedAt is the packet creation cycle (age-based tie-breaks).
	CreatedAt int64
}

// FromPacket builds a Requestor for a packet traversing a router assigned
// to routerApp (region.Unassigned = -1 when the router has no application).
func FromPacket(p *msg.Packet, routerApp int) Requestor {
	return Requestor{
		App:       p.App,
		Native:    routerApp >= 0 && p.App == routerApp,
		Global:    p.Global,
		BatchID:   p.BatchID,
		CreatedAt: p.CreatedAt,
	}
}

// Policy computes arbitration priorities for one router. Higher values win;
// equal values fall back to the arbiter's round-robin fairness. now is the
// current cycle, available for batch-age computation.
type Policy interface {
	// Name identifies the policy in reports ("RO_RR", "RA_RAIR", ...).
	Name() string
	// VAOutPriority is consulted at the VA output arbitration for an
	// output VC of class cls.
	VAOutPriority(r Requestor, cls VCClass, now int64) int
	// SAPriority is consulted at the SA input and SA output arbitrations
	// (the paper uses one consistent priority across both).
	SAPriority(r Requestor, now int64) int
	// Update is called once per cycle with the router's occupied-VC
	// counts for native and foreign traffic; DPA-style policies adapt
	// their state from it. The updated state takes effect next cycle,
	// matching the paper's removal of DPA from the critical path.
	Update(ovcNative, ovcForeign int)
}

// Factory builds one Policy instance per router. node is the router's node
// id and app its assigned application (or -1).
type Factory func(node, app int) Policy

// Tabular is an optional Policy facet for policies whose priorities depend
// only on the requestor's native bit and the VC class — never on packet age
// or batch. Such policies expose their current priorities as small lookup
// tables: sa indexed by native (0/1), va by [VCClass][native]. The pointers
// stay valid for the policy's lifetime; the policy rewrites the table
// contents whenever its state changes (inside Update, whose effect the
// router already defers to the next cycle), so the router's arbitration hot
// path reads two array cells instead of making two interface calls per
// requestor. Age- and batch-based policies (Rank, Age, DynRank) cannot
// implement this facet and keep the interface path.
type Tabular interface {
	PriorityTables() (sa *[2]int8, va *[3][2]int8)
}

// flatTables backs every stateless all-zero Tabular policy (read-only).
var flatSA [2]int8
var flatVA [3][2]int8

// PriorityTables implements Tabular: all priorities flat.
func (RoundRobin) PriorityTables() (*[2]int8, *[3][2]int8) { return &flatSA, &flatVA }

// BatchInterval is the default STC batching interval in cycles: packets
// created in the same interval share a batch, and older batches always
// outrank younger ones (starvation avoidance). The interval balances two
// failure modes under adversarial load — too fine and starved low-rank
// traffic ages into priority quickly (the batching weakness the paper
// points out in Section III.A); too coarse and starved packets hog VC
// buffers, collapsing throughput for everyone.
const BatchInterval = 250

// BatchFor returns the batch id for a packet created at the given cycle.
// NIs stamp every packet so batching policies can be swapped without
// regenerating traffic.
func BatchFor(createdAt int64) int64 { return createdAt / BatchInterval }

// RoundRobin is RO_RR: the application- and region-oblivious baseline. All
// priorities are flat, so every arbitration is pure round-robin.
type RoundRobin struct{}

// NewRoundRobin returns the RO_RR policy (stateless; one value serves any
// router).
func NewRoundRobin(node, app int) Policy { return RoundRobin{} }

// Name implements Policy.
func (RoundRobin) Name() string { return "RO_RR" }

// VAOutPriority implements Policy; always 0.
func (RoundRobin) VAOutPriority(Requestor, VCClass, int64) int { return 0 }

// SAPriority implements Policy; always 0.
func (RoundRobin) SAPriority(Requestor, int64) int { return 0 }

// Update implements Policy; RO_RR keeps no state.
func (RoundRobin) Update(int, int) {}

// maxBatchAge caps the batch-age component so the composed priority stays
// well away from overflow while preserving "older batch always wins".
const maxBatchAge = 1 << 20

// Rank is RO_Rank: the paper's optimized STC. Applications are ranked by
// network intensity (rank 0 = least intensive = highest priority), the
// ranking being an oracle input from the harness, exactly as the paper
// assumes ("able to always find the optimal application rankings").
// Packets in older batches outrank younger batches regardless of rank,
// providing starvation avoidance. Region-oblivious: the VC class and the
// regional/global nature of traffic are ignored.
type Rank struct {
	ranks    []int // app -> rank, 0 best
	numApps  int
	interval int64 // batching interval in cycles
}

// NewRankFactory returns a Factory for RO_Rank with the given oracle
// ranking (ranks[app] = rank, 0 = highest priority) and the default
// BatchInterval. Apps beyond the table (e.g. adversarial traffic with an
// unranked app id) get the worst rank.
func NewRankFactory(ranks []int) Factory {
	return NewRankFactoryInterval(ranks, BatchInterval)
}

// NewRankFactoryInterval is NewRankFactory with an explicit batching
// interval (the batching ablation).
func NewRankFactoryInterval(ranks []int, interval int64) Factory {
	if interval < 1 {
		panic("policy: batch interval must be >= 1")
	}
	r := append([]int(nil), ranks...)
	return func(node, app int) Policy {
		return &Rank{ranks: r, numApps: len(r), interval: interval}
	}
}

// Name implements Policy.
func (*Rank) Name() string { return "RO_Rank" }

func (p *Rank) priority(r Requestor, now int64) int {
	age := now/p.interval - r.CreatedAt/p.interval
	if age < 0 {
		age = 0
	}
	if age > maxBatchAge-1 {
		age = maxBatchAge - 1
	}
	rank := p.numApps // worst (unranked apps, e.g. adversarial traffic)
	if r.App >= 0 && r.App < len(p.ranks) {
		rank = p.ranks[r.App]
	}
	// Older batch dominates; within a batch, better (lower) rank wins.
	return int(age)*(p.numApps+2) + (p.numApps - rank)
}

// VAOutPriority implements Policy (region- and VC-class-oblivious).
func (p *Rank) VAOutPriority(r Requestor, _ VCClass, now int64) int {
	return p.priority(r, now)
}

// SAPriority implements Policy.
func (p *Rank) SAPriority(r Requestor, now int64) int { return p.priority(r, now) }

// Update implements Policy; ranking is static within an interval.
func (*Rank) Update(int, int) {}
