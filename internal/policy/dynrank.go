package policy

import "sort"

// RankState is the shared state of the measured (non-oracle) STC variant:
// per-application injection counts accumulated over a ranking interval,
// converted into ranks (least intensive first) at each interval boundary —
// the central "application ranking" logic STC performs in hardware/OS,
// which the paper idealizes away by granting RO_Rank perfect rankings.
//
// One RankState is shared by every router's policy instance; the traffic
// source reports injections via Observe, and Advance recomputes ranks. It
// is not safe for concurrent use (one simulation = one goroutine).
type RankState struct {
	interval int64
	maxApps  int

	counts   []uint64
	ranks    []int
	lastRoll int64
}

// NewRankState builds shared ranking state for up to maxApps application
// ids, re-ranking every interval cycles.
func NewRankState(maxApps int, interval int64) *RankState {
	if maxApps < 1 || interval < 1 {
		panic("policy: invalid rank state parameters")
	}
	s := &RankState{
		interval: interval,
		maxApps:  maxApps,
		counts:   make([]uint64, maxApps),
		ranks:    make([]int, maxApps),
	}
	for i := range s.ranks {
		s.ranks[i] = i
	}
	return s
}

// Observe records one injected packet for app (ignored if out of range).
func (s *RankState) Observe(app int) {
	if app >= 0 && app < s.maxApps {
		s.counts[app]++
	}
}

// Advance rolls the ranking interval if due. Call once per cycle.
func (s *RankState) Advance(now int64) {
	if now-s.lastRoll < s.interval {
		return
	}
	s.lastRoll = now
	type ac struct {
		app   int
		count uint64
	}
	byLoad := make([]ac, s.maxApps)
	for a := range byLoad {
		byLoad[a] = ac{app: a, count: s.counts[a]}
		s.counts[a] = 0
	}
	sort.SliceStable(byLoad, func(i, j int) bool { return byLoad[i].count < byLoad[j].count })
	for r, e := range byLoad {
		s.ranks[e.app] = r
	}
}

// Rank returns the current rank of app (0 = least intensive); apps outside
// the tracked range get the worst rank.
func (s *RankState) Rank(app int) int {
	if app < 0 || app >= s.maxApps {
		return s.maxApps
	}
	return s.ranks[app]
}

// DynRank is the measured STC: identical arbitration to Rank, but the
// ranking comes from observed injection counts instead of an oracle.
type DynRank struct {
	state    *RankState
	interval int64
}

// NewDynRankFactory returns a Factory whose policies share the given
// measured ranking state; batch starvation-avoidance uses BatchInterval.
func NewDynRankFactory(state *RankState) Factory {
	return func(node, app int) Policy {
		return &DynRank{state: state, interval: BatchInterval}
	}
}

// Name implements Policy.
func (*DynRank) Name() string { return "RO_RankDyn" }

func (p *DynRank) priority(r Requestor, now int64) int {
	age := now/p.interval - r.CreatedAt/p.interval
	if age < 0 {
		age = 0
	}
	if age > maxBatchAge-1 {
		age = maxBatchAge - 1
	}
	n := p.state.maxApps
	rank := p.state.Rank(r.App)
	return int(age)*(n+2) + (n - rank)
}

// VAOutPriority implements Policy (region-oblivious).
func (p *DynRank) VAOutPriority(r Requestor, _ VCClass, now int64) int {
	return p.priority(r, now)
}

// SAPriority implements Policy.
func (p *DynRank) SAPriority(r Requestor, now int64) int { return p.priority(r, now) }

// Update implements Policy; ranking state advances externally.
func (*DynRank) Update(int, int) {}
