package policy

// Age is the oldest-first baseline (Abts & Weisser, SC'07), the other
// region-oblivious technique Section III.A discusses: packets are
// prioritized purely by age, with no application or region awareness.
// Starvation-free by construction (age only grows), but it lets any flood —
// including an adversarial one — inherit priority as it waits.
type Age struct{}

// NewAge returns the oldest-first policy (stateless).
func NewAge(node, app int) Policy { return Age{} }

// Name implements Policy.
func (Age) Name() string { return "RO_Age" }

// maxAge caps the priority contribution of age; far beyond any sane
// in-network latency, it only guards against integer overflow.
const maxAge = 1 << 30

func agePriority(r Requestor, now int64) int {
	age := now - r.CreatedAt
	if age < 0 {
		age = 0
	}
	if age > maxAge {
		age = maxAge
	}
	return int(age)
}

// VAOutPriority implements Policy: older packets win everywhere.
func (Age) VAOutPriority(r Requestor, _ VCClass, now int64) int { return agePriority(r, now) }

// SAPriority implements Policy.
func (Age) SAPriority(r Requestor, now int64) int { return agePriority(r, now) }

// Update implements Policy; age keeps no router state.
func (Age) Update(int, int) {}
