package policy

import "testing"

func TestAgeOldestWins(t *testing.T) {
	p := NewAge(0, 0)
	if p.Name() != "RO_Age" {
		t.Fatalf("name %q", p.Name())
	}
	old := Requestor{CreatedAt: 10}
	young := Requestor{CreatedAt: 500}
	if p.SAPriority(old, 1000) <= p.SAPriority(young, 1000) {
		t.Fatal("older packet must outrank")
	}
	if p.VAOutPriority(old, VCGlobal, 1000) <= p.VAOutPriority(young, VCGlobal, 1000) {
		t.Fatal("older packet must outrank at VA")
	}
}

func TestAgeRegionOblivious(t *testing.T) {
	p := NewAge(0, 0)
	native := Requestor{Native: true, CreatedAt: 100}
	foreign := Requestor{Native: false, Global: true, CreatedAt: 100}
	for _, cls := range []VCClass{VCEscape, VCGlobal, VCRegional} {
		if p.VAOutPriority(native, cls, 200) != p.VAOutPriority(foreign, cls, 200) {
			t.Fatal("age must ignore region")
		}
	}
}

func TestAgeClamps(t *testing.T) {
	p := NewAge(0, 0)
	future := Requestor{CreatedAt: 1000}
	if p.SAPriority(future, 0) != 0 {
		t.Fatal("future creation must clamp to zero")
	}
	ancient := Requestor{CreatedAt: 0}
	if p.SAPriority(ancient, 1<<40) != maxAge {
		t.Fatal("age must saturate")
	}
	p.Update(1, 2) // no-op, must not panic
}
