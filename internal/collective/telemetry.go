package collective

import (
	"rair/internal/msg"
	"rair/internal/telemetry"
)

// Telemetry converts the progress snapshot into the telemetry report
// section the harness attaches to an instrumented run's collector.
func (p *Progress) Telemetry(app int) *telemetry.CollectiveReport {
	rep := &telemetry.CollectiveReport{
		Op:               p.Op.String(),
		App:              app,
		Ranks:            p.Ranks,
		RoundsStarted:    p.RoundsStarted,
		Rounds:           p.Rounds,
		CompletionCycles: p.TotalCycles,
	}
	for i := range p.Phases {
		ph := &p.Phases[i]
		rep.Phases = append(rep.Phases, telemetry.CollectivePhase{
			Phase:             ph.Name,
			Sent:              ph.Sent,
			Delivered:         ph.Delivered,
			LatencyCycles:     ph.LatencyCycles,
			InjectQueueCycles: ph.InjectQueueCycles,
			NativeCycles:      ph.Blame[msg.BlameNative],
			ForeignCycles:     ph.Blame[msg.BlameForeign],
			EscapeCycles:      ph.Blame[msg.BlameEscape],
			FaultCycles:       ph.Blame[msg.BlameFault],
		})
	}
	return rep
}
