package collective

import (
	"testing"
	"testing/quick"

	"rair/internal/msg"
	"rair/internal/topology"
)

// rankCount maps an arbitrary fuzz byte onto a usable participant count.
func rankCount(b uint8) int { return int(b)%62 + 2 }

// TestRingStepPermutation: every AllReduce step's send set is a permutation
// of the ranks with no self-sends — each rank sends exactly once and
// receives exactly once per step.
func TestRingStepPermutation(t *testing.T) {
	prop := func(b uint8) bool {
		n := rankCount(b)
		seen := make([]bool, n)
		for r := 0; r < n; r++ {
			d := RingDst(n, r)
			if d == r || d < 0 || d >= n || seen[d] {
				return false
			}
			seen[d] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAllToAllStepPermutation: each shuffle step s in [1, n) is a
// self-send-free bijection on the ranks.
func TestAllToAllStepPermutation(t *testing.T) {
	prop := func(b uint8) bool {
		n := rankCount(b)
		for s := 1; s < n; s++ {
			seen := make([]bool, n)
			for r := 0; r < n; r++ {
				d := AllToAllDst(n, r, s)
				if d == r || d < 0 || d >= n || seen[d] {
					return false
				}
				seen[d] = true
			}
			for _, ok := range seen {
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTreeReachesAll: the binary tree spans all n ranks from the root in
// exactly n-1 parent→child messages, and TreeParent inverts TreeChildren.
func TestTreeReachesAll(t *testing.T) {
	prop := func(b uint8) bool {
		n := rankCount(b)
		reached := make([]bool, n)
		reached[0] = true
		msgs, frontier := 0, []int{0}
		for len(frontier) > 0 {
			r := frontier[0]
			frontier = frontier[1:]
			for _, c := range TreeChildren(n, r) {
				if reached[c] || TreeParent(c) != r {
					return false
				}
				reached[c] = true
				msgs++
				frontier = append(frontier, c)
			}
		}
		if msgs != n-1 {
			return false
		}
		for _, ok := range reached {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRanksSnake: Ranks is a permutation of the input nodes, and on a full
// rectangular region consecutive ranks are mesh neighbors (the ring maps
// onto physical links).
func TestRanksSnake(t *testing.T) {
	prop := func(wb, hb uint8) bool {
		w, h := int(wb)%7+1, int(hb)%7+1
		if w*h < 2 {
			w = 2
		}
		m := topology.NewMesh(w, h)
		nodes := make([]int, m.N())
		for i := range nodes {
			nodes[i] = i
		}
		ranks := Ranks(m, nodes)
		seen := make([]bool, m.N())
		for _, node := range ranks {
			if node < 0 || node >= m.N() || seen[node] {
				return false
			}
			seen[node] = true
		}
		for i := 1; i < len(ranks); i++ {
			a, b := m.Coord(ranks[i-1]), m.Coord(ranks[i])
			if abs(a.X-b.X)+abs(a.Y-b.Y) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// loopback runs one source round against an instant-delivery network:
// inject hands the packet straight back to Deliver, so the dependency
// thresholds resolve as fast as Tick can issue sends. Returns per-node send
// and receive counts and fails the test on any self-send or out-of-set
// destination.
func loopback(t *testing.T, op Op, mesh *topology.Mesh, nodes []int, chunk int) (sent, recvd map[int]int64, prog Progress) {
	t.Helper()
	inSet := map[int]bool{}
	for _, n := range nodes {
		inSet[n] = true
	}
	sent, recvd = map[int]int64{}, map[int]int64{}
	var src *Source
	src = NewSource(Spec{
		Op: op, App: 1, Nodes: nodes, Mesh: mesh,
		ChunkPackets: chunk, Burst: 8, Rounds: 1,
	}, 5, func(node int, p *msg.Packet, now int64) {
		if p.Src == p.Dst {
			t.Fatalf("self-send from node %d", node)
		}
		if !inSet[p.Src] || !inSet[p.Dst] {
			t.Fatalf("packet %d>%d leaves the participant set", p.Src, p.Dst)
		}
		sent[p.Src]++
		recvd[p.Dst]++
		p.EjectedAt = now
		src.Deliver(p, now)
	})
	for now := int64(0); now < 10000 && src.Progress().Rounds == 0; now++ {
		src.Tick(now)
	}
	prog = src.Progress()
	if prog.Rounds != 1 {
		t.Fatalf("round did not complete: %+v", prog)
	}
	return sent, recvd, prog
}

// TestMessageCounts: per round, the ring sends 2(n-1)·C packets per rank,
// the tree exactly (n-1)·C in total (reaching every non-root rank with C
// packets), and the shuffle exactly n·(n-1)·C.
func TestMessageCounts(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	nodes := make([]int, mesh.N())
	for i := range nodes {
		nodes[i] = i
	}
	n, chunk := int64(len(nodes)), 3
	c := int64(chunk)
	sent, recvd, prog := loopback(t, RingAllReduce, mesh, nodes, chunk)
	for _, node := range nodes {
		if sent[node] != 2*(n-1)*c || recvd[node] != 2*(n-1)*c {
			t.Fatalf("ring node %d: sent %d recvd %d, want %d", node, sent[node], recvd[node], 2*(n-1)*c)
		}
	}
	if got := prog.Sent(); got != n*2*(n-1)*c {
		t.Fatalf("ring total %d, want %d", got, n*2*(n-1)*c)
	}
	if prog.Phases[0].Sent != prog.Phases[1].Sent || prog.Phases[0].Sent != n*(n-1)*c {
		t.Fatalf("ring phases must split evenly: %+v", prog.Phases)
	}

	sent, recvd, prog = loopback(t, TreeBroadcast, mesh, nodes, chunk)
	if got := prog.Sent(); got != (n-1)*c {
		t.Fatalf("tree total %d, want %d", got, (n-1)*c)
	}
	root := Ranks(mesh, nodes)[0]
	for _, node := range nodes {
		want := c
		if node == root {
			want = 0
		}
		if recvd[node] != want {
			t.Fatalf("tree node %d received %d, want %d", node, recvd[node], want)
		}
	}
	if sent[root] == 0 {
		t.Fatal("tree root sent nothing")
	}

	sent, recvd, prog = loopback(t, AllToAll, mesh, nodes, chunk)
	for _, node := range nodes {
		if sent[node] != (n-1)*c || recvd[node] != (n-1)*c {
			t.Fatalf("a2a node %d: sent %d recvd %d, want %d", node, sent[node], recvd[node], (n-1)*c)
		}
	}
	if got := prog.Sent(); got != n*(n-1)*c {
		t.Fatalf("a2a total %d, want %d", got, n*(n-1)*c)
	}
}

// TestOpNames: OpByName inverts String for every operation.
func TestOpNames(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		got, err := OpByName(op.String())
		if err != nil || got != op {
			t.Fatalf("OpByName(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := OpByName("nope"); err == nil {
		t.Fatal("unknown op must error")
	}
}

// TestNewSourcePanics: configuration errors fail loudly.
func TestNewSourcePanics(t *testing.T) {
	mesh := topology.NewMesh(2, 2)
	for name, spec := range map[string]Spec{
		"nil mesh":  {Op: RingAllReduce, Nodes: []int{0, 1}},
		"one node":  {Op: RingAllReduce, Nodes: []int{0}, Mesh: mesh},
		"duplicate": {Op: RingAllReduce, Nodes: []int{0, 1, 1}, Mesh: mesh},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			NewSource(spec, 1, nil)
		}()
	}
}
