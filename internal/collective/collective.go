// Package collective generates phase-structured collective-communication
// workloads — ring AllReduce, binary-tree broadcast and full all-to-all
// shuffle — as first-class traffic sources for the regionalized network.
//
// Unlike the Bernoulli generators of internal/traffic, a collective is a
// closed-loop state machine: every message of step s depends on a message of
// step s-1 having been *delivered*, so the injection process reacts to the
// network's own latency. The source still produces a deterministic,
// seed-reproducible stream because all of its state changes on the
// coordinating goroutine: sends happen in Source.Tick (registered before the
// network, like traffic.Generator), and deliveries arrive through
// Source.Deliver, driven by network.Params.OnEject, which the network
// guarantees to run on the ticking goroutine in ascending node order
// regardless of the worker count. Results are therefore bit-identical across
// tick-engine shard counts and lockstep batch widths.
//
// Phase model: a collective executes rounds; a round is a fixed schedule of
// per-rank packet sends partitioned into named phases (reduce-scatter and
// all-gather for the ring; a single phase for broadcast and shuffle). Each
// rank's sends are gated by a per-packet dependency threshold on its own
// delivery count — the count-based formulation of "send chunk k of step s
// only after receiving chunk k of step s-1", which is robust to in-network
// reordering of same-pair packets under adaptive routing.
package collective

import (
	"fmt"
	"sort"

	"rair/internal/msg"
	"rair/internal/sim"
	"rair/internal/topology"
	"rair/internal/traffic"
)

// Op selects the collective operation.
type Op int

const (
	// RingAllReduce is the bandwidth-optimal ring: N-1 reduce-scatter steps
	// followed by N-1 all-gather steps, each rank sending to its ring
	// successor, with a per-step dependency barrier on the predecessor's
	// previous-step chunk.
	RingAllReduce Op = iota
	// TreeBroadcast propagates the root's chunks down a binary tree laid
	// over the rank order: a rank forwards chunk k to its children only
	// after receiving chunk k from its parent. N-1 messages per chunk.
	TreeBroadcast
	// AllToAll is the full shuffle: N-1 steps, rank i sending to rank
	// (i+s) mod N in step s, self-paced by its own inbound deliveries.
	AllToAll
	// NumOps counts the operations.
	NumOps
)

var opNames = [...]string{"allreduce", "bcast", "a2a"}

func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// OpByName parses an operation name ("allreduce", "bcast", "a2a").
func OpByName(name string) (Op, error) {
	for i, n := range opNames {
		if n == name {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("collective: unknown op %q (have %v)", name, opNames)
}

// Spec describes one collective workload placed on a set of mesh nodes.
type Spec struct {
	// Op is the collective operation.
	Op Op
	// App is the application number carried by the collective's packets
	// (normally the region the participant nodes belong to).
	App int
	// Nodes are the participant nodes. Rank order is the boustrophedon
	// (snake) order of their mesh coordinates — ring neighbors are mesh
	// neighbors wherever the node set is a contiguous rectangle.
	Nodes []int
	// Mesh supplies coordinates for the rank ordering.
	Mesh *topology.Mesh
	// ChunkPackets is how many packets make up one chunk-step message
	// (default 1). Larger chunks raise the collective's offered load.
	ChunkPackets int
	// Burst caps packets sent per rank per cycle (default 1), pacing a
	// rank whose dependencies ran ahead of its injection.
	Burst int
	// Rounds bounds how many rounds are started; 0 means keep starting
	// rounds until Until.
	Rounds int
	// Gap is the idle gap in cycles between a round's completion and the
	// next round's start.
	Gap int64
	// Jitter is the maximum per-rank start offset, drawn per round from
	// the source's seeded RNG; 0 disables. Jitter is what makes distinct
	// seeds produce distinct (but individually reproducible) streams.
	Jitter int
	// Class is the message class of the collective's packets (long data
	// packets ride ClassResponse on two-class networks).
	Class msg.Class
}

// Ranks returns nodes in boustrophedon (snake) order of their coordinates
// on mesh: rows in ascending Y, alternating X direction per row, so that
// consecutive ranks are mesh neighbors on contiguous rectangular regions.
func Ranks(mesh *topology.Mesh, nodes []int) []int {
	out := append([]int(nil), nodes...)
	sort.Slice(out, func(i, j int) bool {
		a, b := mesh.Coord(out[i]), mesh.Coord(out[j])
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.Y%2 == 1 {
			return a.X > b.X
		}
		return a.X < b.X
	})
	return out
}

// RingSteps is the number of dependency steps in a ring AllReduce over n
// ranks: n-1 reduce-scatter plus n-1 all-gather.
func RingSteps(n int) int { return 2 * (n - 1) }

// RingDst is the ring successor every AllReduce step sends to.
func RingDst(n, rank int) int { return (rank + 1) % n }

// AllToAllDst is the shuffle destination of rank in step s (1 <= s < n):
// the rotation (rank+s) mod n, a self-send-free permutation per step.
func AllToAllDst(n, rank, step int) int { return (rank + step) % n }

// TreeParent is the binary-heap parent of rank (undefined for the root).
func TreeParent(rank int) int { return (rank - 1) / 2 }

// TreeChildren are the binary-heap children of rank that exist among n
// ranks, in deterministic order.
func TreeChildren(n, rank int) []int {
	var out []int
	for _, c := range []int{2*rank + 1, 2*rank + 2} {
		if c < n {
			out = append(out, c)
		}
	}
	return out
}

// PhaseProgress is the progress and blame decomposition of one phase.
type PhaseProgress struct {
	// Name labels the phase ("reduce-scatter", "all-gather", ...).
	Name string
	// Sent and Delivered count the phase's packets.
	Sent, Delivered int64
	// LatencyCycles sums the queueing-inclusive latency of the phase's
	// delivered packets; InjectQueueCycles the portion spent in the
	// source NI queue before entering the network.
	LatencyCycles     int64
	InjectQueueCycles int64
	// Blame sums the packets' stalled-head-flit blame vectors per cause
	// bucket (nonzero only when attribution telemetry is on): the blame
	// accountant's answer to who stalls the collective at its region
	// boundary, per phase.
	Blame [msg.NumBlame]int64
}

// Progress is a snapshot of a source's counters.
type Progress struct {
	// Op echoes the operation; Ranks the participant count.
	Op    Op
	Ranks int
	// RoundsStarted counts rounds begun; Rounds counts rounds whose every
	// packet was delivered. TotalCycles sums completed rounds' durations.
	RoundsStarted, Rounds int64
	TotalCycles           int64
	// Phases holds the per-phase progress counters in phase order.
	Phases []PhaseProgress
}

// CompletionTime is the mean cycles per completed round (0 when none
// completed) — the collective completion time (CCT) the experiments report.
func (p *Progress) CompletionTime() float64 {
	if p.Rounds == 0 {
		return 0
	}
	return float64(p.TotalCycles) / float64(p.Rounds)
}

// Sent and Delivered total the phase counters.
func (p *Progress) Sent() int64 {
	var n int64
	for i := range p.Phases {
		n += p.Phases[i].Sent
	}
	return n
}

// Delivered totals the phase delivery counters.
func (p *Progress) Delivered() int64 {
	var n int64
	for i := range p.Phases {
		n += p.Phases[i].Delivered
	}
	return n
}

// Source drives one collective workload. It implements sim.Tickable;
// register it before the network, wire Deliver into the network's OnEject
// for packets carrying the collective's App, and set Until/Pool like a
// traffic.Generator.
type Source struct {
	spec   Spec
	inject traffic.InjectorFunc
	rng    *sim.RNG

	// Until stops round starts and sends at this cycle when > 0 (the
	// network then drains; an incomplete round is not counted).
	Until int64
	// Pool, when non-nil, supplies packet structs instead of the heap.
	Pool *msg.Pool

	n      int
	ranks  []int       // rank -> node id
	rankOf map[int]int // node id -> rank

	// Per-rank round-invariant schedule: sched[r][j] is the destination
	// rank of rank r's j-th packet, need[r][j] the delivery count rank r
	// must have reached before sending it, phase[r][j] its phase index.
	sched [][]int
	need  [][]int
	phase [][]uint8
	// recvPhaseEdge is the per-rank delivery count at which inbound
	// packets switch from phase 0 to phase 1 (ring only; otherwise the
	// round's full expectation, i.e. never crossed).
	recvPhaseEdge []int
	expectedRound int // total deliveries per round across ranks

	active     bool
	roundStart int64
	nextRound  int64
	startAt    []int64 // per-rank first-send cycle this round (jitter)
	sentPkts   []int   // per-rank packets sent this round
	recvPkts   []int   // per-rank packets received this round
	delivered  int     // total deliveries this round
	nextID     uint64

	prog Progress
}

// idBase offsets collective packet IDs away from the Bernoulli generators'
// ID space so traces and samplers can tell the streams apart.
const idBase = uint64(1) << 32

// NewSource builds a source over spec. It panics on an unusable spec
// (fewer than two participants, missing mesh, duplicate nodes), matching
// the configuration-error convention of the traffic package.
func NewSource(spec Spec, seed uint64, inject traffic.InjectorFunc) *Source {
	if spec.Mesh == nil {
		panic("collective: spec needs a mesh")
	}
	if len(spec.Nodes) < 2 {
		panic("collective: need at least two participant nodes")
	}
	if spec.ChunkPackets <= 0 {
		spec.ChunkPackets = 1
	}
	if spec.Burst <= 0 {
		spec.Burst = 1
	}
	s := &Source{
		spec:   spec,
		inject: inject,
		rng:    sim.NewRNG(seed ^ 0xc0113c71fe), // distinct stream from the co-running generators
		n:      len(spec.Nodes),
		ranks:  Ranks(spec.Mesh, spec.Nodes),
		rankOf: make(map[int]int, len(spec.Nodes)),
	}
	for r, node := range s.ranks {
		if _, dup := s.rankOf[node]; dup {
			panic(fmt.Sprintf("collective: duplicate participant node %d", node))
		}
		s.rankOf[node] = r
	}
	s.buildSchedule()
	s.prog.Op = spec.Op
	s.prog.Ranks = s.n
	for _, name := range phaseNames(spec.Op) {
		s.prog.Phases = append(s.prog.Phases, PhaseProgress{Name: name})
	}
	s.startAt = make([]int64, s.n)
	s.sentPkts = make([]int, s.n)
	s.recvPkts = make([]int, s.n)
	return s
}

func phaseNames(op Op) []string {
	switch op {
	case RingAllReduce:
		return []string{"reduce-scatter", "all-gather"}
	case TreeBroadcast:
		return []string{"broadcast"}
	case AllToAll:
		return []string{"shuffle"}
	}
	panic("collective: unknown op")
}

// buildSchedule precomputes every rank's packet destinations, dependency
// thresholds and phases for one round. The schedule is identical across
// rounds; only the jitter offsets vary.
func (s *Source) buildSchedule() {
	n, c := s.n, s.spec.ChunkPackets
	s.sched = make([][]int, n)
	s.need = make([][]int, n)
	s.phase = make([][]uint8, n)
	s.recvPhaseEdge = make([]int, n)
	for r := 0; r < n; r++ {
		switch s.spec.Op {
		case RingAllReduce:
			l := RingSteps(n) * c
			dsts := make([]int, l)
			needs := make([]int, l)
			phases := make([]uint8, l)
			for j := 0; j < l; j++ {
				dsts[j] = RingDst(n, r)
				// Chunk k of step s may go once chunk k of step s-1 is
				// in: delivery count j-c+1 (<=0 for the free step 0).
				needs[j] = j - c + 1
				if j >= (n-1)*c {
					phases[j] = 1
				}
			}
			s.sched[r], s.need[r], s.phase[r] = dsts, needs, phases
			s.recvPhaseEdge[r] = (n - 1) * c
		case TreeBroadcast:
			children := TreeChildren(n, r)
			l := len(children) * c
			dsts := make([]int, l)
			needs := make([]int, l)
			for j := 0; j < l; j++ {
				// Interleave children so both subtrees start streaming
				// with the first chunk.
				dsts[j] = children[j%len(children)]
				if r == 0 {
					needs[j] = 0 // the root owns the data
				} else {
					needs[j] = j/len(children) + 1 // forward chunk k after receiving it
				}
			}
			s.sched[r], s.need[r], s.phase[r] = dsts, needs, make([]uint8, l)
			s.recvPhaseEdge[r] = l + n*c // single phase: never crossed
		case AllToAll:
			l := (n - 1) * c
			dsts := make([]int, l)
			needs := make([]int, l)
			for j := 0; j < l; j++ {
				dsts[j] = AllToAllDst(n, r, j/c+1)
				needs[j] = j - c + 1 // step s waits on own step s-1 arrivals
			}
			s.sched[r], s.need[r], s.phase[r] = dsts, needs, make([]uint8, l)
			s.recvPhaseEdge[r] = l + 1
		default:
			panic("collective: unknown op")
		}
	}
	s.expectedRound = 0
	for r := 0; r < n; r++ {
		s.expectedRound += len(s.sched[r])
	}
}

// App reports the application number of the source's packets.
func (s *Source) App() int { return s.spec.App }

// Progress returns a snapshot of the source's counters.
func (s *Source) Progress() Progress {
	p := s.prog
	p.Phases = append([]PhaseProgress(nil), s.prog.Phases...)
	return p
}

// Tick implements sim.Tickable: starts rounds and performs every send whose
// dependency threshold is met, in ascending rank order.
func (s *Source) Tick(now int64) {
	if s.Until > 0 && now >= s.Until {
		return
	}
	if !s.active && now >= s.nextRound &&
		(s.spec.Rounds <= 0 || s.prog.RoundsStarted < int64(s.spec.Rounds)) {
		s.startRound(now)
	}
	if !s.active {
		return
	}
	for r := 0; r < s.n; r++ {
		if now < s.startAt[r] {
			continue
		}
		for b := 0; b < s.spec.Burst; b++ {
			j := s.sentPkts[r]
			if j >= len(s.sched[r]) || s.recvPkts[r] < s.need[r][j] {
				break
			}
			s.send(r, j, now)
		}
	}
}

func (s *Source) startRound(now int64) {
	s.active = true
	s.roundStart = now
	s.delivered = 0
	s.prog.RoundsStarted++
	for r := 0; r < s.n; r++ {
		s.sentPkts[r] = 0
		s.recvPkts[r] = 0
		s.startAt[r] = now
		if s.spec.Jitter > 0 {
			s.startAt[r] = now + int64(s.rng.Intn(s.spec.Jitter+1))
		}
	}
}

func (s *Source) send(r, j int, now int64) {
	src := s.ranks[r]
	dst := s.ranks[s.sched[r][j]]
	s.nextID++
	var p *msg.Packet
	if s.Pool != nil {
		p = s.Pool.Get()
	} else {
		p = &msg.Packet{}
	}
	p.ID, p.App, p.Src, p.Dst = idBase+s.nextID, s.spec.App, src, dst
	p.Class, p.Size = s.spec.Class, msg.LongPacketFlits
	s.sentPkts[r]++
	s.prog.Phases[s.phase[r][j]].Sent++
	s.inject(src, p, now)
}

// Deliver folds one delivered collective packet into the dependency state
// and progress counters. Wire it into network.Params.OnEject for packets
// carrying the collective's App; the network runs OnEject on the ticking
// goroutine in node order, so no locking is needed and results are
// bit-identical across worker counts. Read-only on the packet, and called
// before the network recycles it.
func (s *Source) Deliver(p *msg.Packet, now int64) {
	r, ok := s.rankOf[p.Dst]
	if !ok || !s.active {
		return
	}
	pi := 0
	if s.recvPkts[r] >= s.recvPhaseEdge[r] {
		pi = 1
	}
	ph := &s.prog.Phases[pi]
	ph.Delivered++
	ph.LatencyCycles += p.TotalLatency()
	if p.InjectedAt >= 0 {
		ph.InjectQueueCycles += p.InjectedAt - p.CreatedAt
	}
	for b, v := range p.Blame {
		ph.Blame[b] += int64(v)
	}
	s.recvPkts[r]++
	s.delivered++
	if s.delivered == s.expectedRound {
		s.active = false
		s.prog.Rounds++
		s.prog.TotalCycles += now - s.roundStart
		s.nextRound = now + 1 + s.spec.Gap
	}
}
