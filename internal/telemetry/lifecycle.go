package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Stage identifies a point in a flit's lifecycle. Router stages are
// recorded at completion: StageRC is the cycle route computation ran,
// StageVA the cycle the VC allocation was granted, StageSA the cycle the
// head flit won switch allocation (latching into the ST register), and
// StageST the cycle the flit left on the output link. StageInject and
// StageEject are NI instants.
type Stage uint8

// Lifecycle stages in pipeline order.
const (
	StageInject Stage = iota
	StageRC
	StageVA
	StageSA
	StageST
	StageEject
	numStages
)

var stageNames = [numStages]string{"Inject", "RC", "VA", "SA", "ST", "Eject"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "Stage(?)"
}

// Event is one lifecycle point of a traced packet at one node.
type Event struct {
	Pkt   uint64
	Node  int32
	Stage Stage
	Cycle int64
}

// Traced reports whether packet id is sampled for lifecycle tracing. It is
// nil-safe and allocation-free so callers can use it as the sole hot-path
// guard.
func (p *Probe) Traced(id uint64) bool {
	return p != nil && p.col.cfg.TraceEvery != 0 && id%p.col.cfg.TraceEvery == 0
}

// Lifecycle records a lifecycle event for a traced packet. Callers should
// gate on Traced first; the method re-checks nothing beyond the nil guard
// and the per-node cap.
func (p *Probe) Lifecycle(id uint64, s Stage, cycle int64) {
	if p == nil {
		return
	}
	if len(p.events) >= p.col.cfg.TraceCap {
		p.dropped++
		return
	}
	p.events = append(p.events, Event{Pkt: id, Node: int32(p.node), Stage: s, Cycle: cycle})
}

// Events returns the probe's retained lifecycle events in recording order.
func (p *Probe) Events() []Event {
	if p == nil {
		return nil
	}
	return p.events
}

// TraceDropped reports lifecycle events discarded at the per-node cap.
func (p *Probe) TraceDropped() int64 {
	if p == nil {
		return 0
	}
	return p.dropped
}

// mergedEvents gathers every probe's lifecycle events sorted by
// (packet, cycle, stage) — a deterministic order independent of shard
// count, since per-probe buffers are already cycle-ordered.
func (c *Collector) mergedEvents() []Event {
	var all []Event
	for _, p := range c.probes {
		if p != nil {
			all = append(all, p.events...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pkt != b.Pkt {
			return a.Pkt < b.Pkt
		}
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.Stage < b.Stage
	})
	return all
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry ts+dur; "i" instant events mark points. One
// simulated cycle maps to one microsecond, packets map to pids and nodes
// to tids, so a trace viewer shows one track per router hop under each
// sampled packet.
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`
	Dur   int64  `json:"dur,omitempty"`
	PID   uint64 `json:"pid"`
	TID   int64  `json:"tid"`
	Scope string `json:"s,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every sampled packet's lifecycle as Chrome
// trace_event JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
// Per hop it derives one span per pipeline stage: RC occupies the arrival
// cycle, and each later stage spans from the previous stage's completion to
// its own, with link traversal (LT) bridging hops.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.mergedEvents()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	span := func(name string, e Event, ts, dur int64, tid int64) {
		if dur < 1 {
			dur = 1
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: "pipeline", Phase: "X", TS: ts, Dur: dur,
			PID: e.Pkt, TID: tid,
		})
	}
	for i, e := range events {
		switch e.Stage {
		case StageInject, StageEject:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Stage.String(), Cat: "ni", Phase: "i", TS: e.Cycle,
				PID: e.Pkt, TID: int64(e.Node), Scope: "p",
			})
		case StageRC:
			// RC runs in the arrival cycle.
			span("RC", e, e.Cycle, 1, int64(e.Node))
		default:
			// VA/SA/ST span from the previous stage's completion at the
			// same node to this stage's completion.
			if i == 0 {
				continue
			}
			prev := events[i-1]
			if prev.Pkt != e.Pkt || prev.Node != e.Node {
				continue
			}
			span(e.Stage.String(), e, prev.Cycle+1, e.Cycle-prev.Cycle, int64(e.Node))
			// A completed ST followed by the next hop's RC is the link
			// traversal; draw it on the sending node's track.
			if e.Stage == StageST && i+1 < len(events) {
				next := events[i+1]
				if next.Pkt == e.Pkt && next.Stage == StageRC {
					span("LT", e, e.Cycle+1, next.Cycle-e.Cycle, int64(e.Node))
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
