package telemetry

import (
	"errors"
	"fmt"
	"sort"

	"rair/internal/msg"
)

// Interference attribution: every cycle a head flit sits stalled at a
// router (VA deny, SA deny, credit stall, fault hold), the router charges
// the cycle to one of the msg.Blame* buckets on the packet and to the
// charging router's counters. When the packet ejects, the destination NI
// folds the packet's accumulated blame vector — together with its measured
// latency — into a per-(source app, class) decomposition owned by the
// destination node's probe.
//
// The accounting is observer-only (routers never read Blame) and charges at
// most one cycle per packet per cycle: only the un-sent head flit is
// charged, and a packet's head is pending at exactly one router at a time.
// Undercharging is possible (a stall whose cause the router cannot see) and
// lands in the ZeroLoad residual; overcharging would make the residual
// negative, which the conservation check rejects.

// Charge attributes one stalled cycle of pkt's head flit to a cause bucket.
// Callers guard on AttributionOn; the method is additionally nil-safe.
func (p *Probe) Charge(pkt *msg.Packet, cause int) {
	if p == nil {
		return
	}
	pkt.Blame[cause]++
	switch cause {
	case msg.BlameNative:
		p.c.AttrNativeCycles++
	case msg.BlameForeign:
		p.c.AttrForeignCycles++
	case msg.BlameEscape:
		p.c.AttrEscapeCycles++
	case msg.BlameFault:
		p.c.AttrFaultCycles++
	}
}

// AttributionOn reports whether blame accounting is enabled for this
// probe's collector. Routers cache the answer at wiring time so the off
// path stays a single branch.
func (p *Probe) AttributionOn() bool {
	return p != nil && p.col.cfg.Attribution
}

// DecompKey identifies one latency-decomposition row: the source
// application (RAIR assigns each application its own region, so App names
// the source region) and the message class.
type DecompKey struct {
	App   int       `json:"app"`
	Class msg.Class `json:"class"`
}

// Decomp is the accumulated latency decomposition of the ejected packets
// under one key. All fields are cycle sums over those packets;
// conservation: Total = InjectQueue + ZeroLoad + Native + Foreign + Escape
// + Fault, with ZeroLoad the non-negative unattributed residual (pipeline
// transit plus stalls whose cause the router could not classify).
type Decomp struct {
	Packets           int64 `json:"packets"`
	TotalCycles       int64 `json:"totalCycles"`
	InjectQueueCycles int64 `json:"injectQueueCycles"`
	ZeroLoadCycles    int64 `json:"zeroLoadCycles"`
	NativeCycles      int64 `json:"nativeCycles"`
	ForeignCycles     int64 `json:"foreignCycles"`
	EscapeCycles      int64 `json:"escapeCycles"`
	FaultCycles       int64 `json:"faultCycles"`
}

func (d *Decomp) add(o *Decomp) {
	d.Packets += o.Packets
	d.TotalCycles += o.TotalCycles
	d.InjectQueueCycles += o.InjectQueueCycles
	d.ZeroLoadCycles += o.ZeroLoadCycles
	d.NativeCycles += o.NativeCycles
	d.ForeignCycles += o.ForeignCycles
	d.EscapeCycles += o.EscapeCycles
	d.FaultCycles += o.FaultCycles
}

// attributed is the sum of the cause buckets (everything except inject
// queueing and the zero-load residual).
func (d *Decomp) attributed() int64 {
	return d.NativeCycles + d.ForeignCycles + d.EscapeCycles + d.FaultCycles
}

// FoldAttribution folds an ejected packet's blame vector and measured
// latency into the destination probe's decomposition table. Called by the
// destination NI at tail ejection, i.e. by the shard that owns this probe
// during the link phase, so the table needs no locking.
func (p *Probe) FoldAttribution(pkt *msg.Packet) {
	if p == nil || !p.col.cfg.Attribution {
		return
	}
	if p.decomp == nil {
		p.decomp = make(map[DecompKey]*Decomp)
	}
	k := DecompKey{App: pkt.App, Class: pkt.Class}
	d := p.decomp[k]
	if d == nil {
		d = &Decomp{}
		p.decomp[k] = d
	}
	total := pkt.TotalLatency()
	inject := pkt.InjectedAt - pkt.CreatedAt
	if pkt.InjectedAt < 0 { // ejected without an inject stamp (synthetic)
		inject = 0
	}
	var blamed int64
	for _, b := range pkt.Blame {
		blamed += int64(b)
	}
	d.Packets++
	d.TotalCycles += total
	d.InjectQueueCycles += inject
	d.ZeroLoadCycles += total - inject - blamed
	d.NativeCycles += int64(pkt.Blame[msg.BlameNative])
	d.ForeignCycles += int64(pkt.Blame[msg.BlameForeign])
	d.EscapeCycles += int64(pkt.Blame[msg.BlameEscape])
	d.FaultCycles += int64(pkt.Blame[msg.BlameFault])
}

// DecompRow is one (source app, class) row of the attribution report.
type DecompRow struct {
	DecompKey
	Decomp
	// InterferenceRatio is ForeignCycles over all attributed cycles for
	// the row (0 when nothing was attributed) — the scalar the paper's
	// interference figures argue about.
	InterferenceRatio float64 `json:"interferenceRatio"`
}

// AttributionReport is the run-wide latency decomposition: one row per
// (source app, class) with ejected packets, sorted by key, plus the total.
type AttributionReport struct {
	Rows  []DecompRow `json:"rows"`
	Total DecompRow   `json:"total"`
}

// Attribution merges every probe's decomposition table into a sorted
// report, or returns nil when attribution is off or nothing ejected.
// Coordinator-only, like Report.
func (c *Collector) Attribution() *AttributionReport {
	if !c.cfg.Attribution {
		return nil
	}
	merged := make(map[DecompKey]*Decomp)
	for _, p := range c.probes {
		if p == nil {
			continue
		}
		for k, d := range p.decomp {
			m := merged[k]
			if m == nil {
				m = &Decomp{}
				merged[k] = m
			}
			m.add(d)
		}
	}
	if len(merged) == 0 {
		return nil
	}
	keys := make([]DecompKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].App != keys[j].App {
			return keys[i].App < keys[j].App
		}
		return keys[i].Class < keys[j].Class
	})
	rep := &AttributionReport{Rows: make([]DecompRow, 0, len(keys))}
	for _, k := range keys {
		d := merged[k]
		rep.Rows = append(rep.Rows, DecompRow{DecompKey: k, Decomp: *d, InterferenceRatio: ratioOf(d)})
		rep.Total.Decomp.add(d)
	}
	rep.Total.App, rep.Total.Class = -1, -1
	rep.Total.InterferenceRatio = ratioOf(&rep.Total.Decomp)
	return rep
}

func ratioOf(d *Decomp) float64 {
	if a := d.attributed(); a > 0 {
		return float64(d.ForeignCycles) / float64(a)
	}
	return 0
}

// Conservation checks the report's accounting identities: every row's
// cycle buckets must sum exactly to its measured total latency, and no
// row may have a negative zero-load residual (which would mean a packet
// was double-charged for one cycle).
func (r *AttributionReport) Conservation() error {
	if r == nil {
		return nil
	}
	check := func(label string, d *Decomp) error {
		if sum := d.InjectQueueCycles + d.ZeroLoadCycles + d.attributed(); sum != d.TotalCycles {
			return fmt.Errorf("attribution row %s: buckets sum to %d, measured total %d", label, sum, d.TotalCycles)
		}
		if d.ZeroLoadCycles < 0 {
			return fmt.Errorf("attribution row %s: negative zero-load residual %d (double charge)", label, d.ZeroLoadCycles)
		}
		return nil
	}
	var err error
	for i := range r.Rows {
		row := &r.Rows[i]
		label := fmt.Sprintf("app=%d class=%v", row.App, row.Class)
		err = errors.Join(err, check(label, &row.Decomp))
	}
	return errors.Join(err, check("total", &r.Total.Decomp))
}

// Totals returns the sum of every probe's counter block (the same totals a
// full Report would carry), for lightweight snapshotting.
func (c *Collector) Totals() Counters {
	var t Counters
	for _, p := range c.probes {
		if p == nil {
			continue
		}
		cnt := p.c
		t.add(&cnt)
	}
	return t
}

// Now reports the last cycle the collector observed via Advance.
func (c *Collector) Now() int64 { return c.now }
