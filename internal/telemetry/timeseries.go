package telemetry

import "rair/internal/msg"

// WindowSample is one closed sampling window at one router: the DPA
// occupancy registers (VC occupancy by region tag) at the window boundary,
// the derived OVC_f/OVC_n ratio, and the flits the router pushed onto its
// output links during the window.
type WindowSample struct {
	// Cycle is the last cycle included in the window.
	Cycle int64 `json:"cycle"`
	// OVCNative / OVCForeign are the router's occupied-VC registers at
	// the boundary (the inputs to DPA, Section IV.C).
	OVCNative  int `json:"ovcNative"`
	OVCForeign int `json:"ovcForeign"`
	// Ratio is OVC_f/OVC_n; -1 encodes the infinite ratio (foreign
	// occupancy with no native occupancy), 0 when both registers are
	// empty.
	Ratio float64 `json:"ratio"`
	// LinkFlits is the number of flits pushed onto the router's output
	// links during the window; Utilization is LinkFlits per cycle (an
	// upper bound of one per connected output link).
	LinkFlits   int64   `json:"linkFlits"`
	Utilization float64 `json:"utilization"`
	// Blame* are the stalled-head cycles this router charged per cause
	// bucket during the window, and InterferenceRatio is BlameForeign over
	// all four (0 when nothing was charged) — the windowed
	// interference-ratio series. All zero (and omitted from JSON) unless
	// attribution is on.
	BlameNative       int64   `json:"blameNative,omitempty"`
	BlameForeign      int64   `json:"blameForeign,omitempty"`
	BlameEscape       int64   `json:"blameEscape,omitempty"`
	BlameFault        int64   `json:"blameFault,omitempty"`
	InterferenceRatio float64 `json:"interferenceRatio,omitempty"`
}

// winRing is a fixed-capacity ring of window samples; once full, the
// oldest window is overwritten.
type winRing struct {
	buf  []WindowSample
	next int
	full bool
}

func (r *winRing) push(cap int, s WindowSample) {
	if r.buf == nil {
		r.buf = make([]WindowSample, 0, cap)
	}
	if len(r.buf) < cap {
		r.buf = append(r.buf, s)
		return
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % cap
	r.full = true
}

// ordered returns the retained samples in chronological order.
func (r *winRing) ordered() []WindowSample {
	if !r.full {
		return r.buf
	}
	out := make([]WindowSample, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Sample closes a window at cycle now: the network calls it for every
// probe when Advance reports a window boundary, passing the router's DPA
// occupancy registers. Link flits are differenced against the previous
// boundary from the probe's own counter.
func (p *Probe) Sample(now int64, ovcNative, ovcForeign int) {
	if p == nil {
		return
	}
	delta := p.c.LinkFlits - p.lastFlits
	p.lastFlits = p.c.LinkFlits
	ratio := 0.0
	switch {
	case ovcNative > 0:
		ratio = float64(ovcForeign) / float64(ovcNative)
	case ovcForeign > 0:
		ratio = -1 // infinite: foreign occupancy against empty native
	}
	s := WindowSample{
		Cycle:       now,
		OVCNative:   ovcNative,
		OVCForeign:  ovcForeign,
		Ratio:       ratio,
		LinkFlits:   delta,
		Utilization: float64(delta) / float64(p.col.cfg.Window),
	}
	if p.col.cfg.Attribution {
		attr := [msg.NumBlame]int64{
			msg.BlameNative:  p.c.AttrNativeCycles,
			msg.BlameForeign: p.c.AttrForeignCycles,
			msg.BlameEscape:  p.c.AttrEscapeCycles,
			msg.BlameFault:   p.c.AttrFaultCycles,
		}
		s.BlameNative = attr[msg.BlameNative] - p.lastAttr[msg.BlameNative]
		s.BlameForeign = attr[msg.BlameForeign] - p.lastAttr[msg.BlameForeign]
		s.BlameEscape = attr[msg.BlameEscape] - p.lastAttr[msg.BlameEscape]
		s.BlameFault = attr[msg.BlameFault] - p.lastAttr[msg.BlameFault]
		p.lastAttr = attr
		if total := s.BlameNative + s.BlameForeign + s.BlameEscape + s.BlameFault; total > 0 {
			s.InterferenceRatio = float64(s.BlameForeign) / float64(total)
		}
	}
	p.win.push(p.col.cfg.WindowCap, s)
}

// Windows returns the probe's retained window samples in chronological
// order.
func (p *Probe) Windows() []WindowSample {
	if p == nil {
		return nil
	}
	return p.win.ordered()
}
