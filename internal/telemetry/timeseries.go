package telemetry

// WindowSample is one closed sampling window at one router: the DPA
// occupancy registers (VC occupancy by region tag) at the window boundary,
// the derived OVC_f/OVC_n ratio, and the flits the router pushed onto its
// output links during the window.
type WindowSample struct {
	// Cycle is the last cycle included in the window.
	Cycle int64 `json:"cycle"`
	// OVCNative / OVCForeign are the router's occupied-VC registers at
	// the boundary (the inputs to DPA, Section IV.C).
	OVCNative  int `json:"ovcNative"`
	OVCForeign int `json:"ovcForeign"`
	// Ratio is OVC_f/OVC_n; -1 encodes the infinite ratio (foreign
	// occupancy with no native occupancy), 0 when both registers are
	// empty.
	Ratio float64 `json:"ratio"`
	// LinkFlits is the number of flits pushed onto the router's output
	// links during the window; Utilization is LinkFlits per cycle (an
	// upper bound of one per connected output link).
	LinkFlits   int64   `json:"linkFlits"`
	Utilization float64 `json:"utilization"`
}

// winRing is a fixed-capacity ring of window samples; once full, the
// oldest window is overwritten.
type winRing struct {
	buf  []WindowSample
	next int
	full bool
}

func (r *winRing) push(cap int, s WindowSample) {
	if r.buf == nil {
		r.buf = make([]WindowSample, 0, cap)
	}
	if len(r.buf) < cap {
		r.buf = append(r.buf, s)
		return
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % cap
	r.full = true
}

// ordered returns the retained samples in chronological order.
func (r *winRing) ordered() []WindowSample {
	if !r.full {
		return r.buf
	}
	out := make([]WindowSample, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Sample closes a window at cycle now: the network calls it for every
// probe when Advance reports a window boundary, passing the router's DPA
// occupancy registers. Link flits are differenced against the previous
// boundary from the probe's own counter.
func (p *Probe) Sample(now int64, ovcNative, ovcForeign int) {
	if p == nil {
		return
	}
	delta := p.c.LinkFlits - p.lastFlits
	p.lastFlits = p.c.LinkFlits
	ratio := 0.0
	switch {
	case ovcNative > 0:
		ratio = float64(ovcForeign) / float64(ovcNative)
	case ovcForeign > 0:
		ratio = -1 // infinite: foreign occupancy against empty native
	}
	p.win.push(p.col.cfg.WindowCap, WindowSample{
		Cycle:       now,
		OVCNative:   ovcNative,
		OVCForeign:  ovcForeign,
		Ratio:       ratio,
		LinkFlits:   delta,
		Utilization: float64(delta) / float64(p.col.cfg.Window),
	})
}

// Windows returns the probe's retained window samples in chronological
// order.
func (p *Probe) Windows() []WindowSample {
	if p == nil {
		return nil
	}
	return p.win.ordered()
}
