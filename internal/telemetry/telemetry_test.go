package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilProbeCallsAllocateNothing is the zero-cost-off contract: every
// hot-path call on a disabled (nil) probe must allocate zero bytes.
func TestNilProbeCallsAllocateNothing(t *testing.T) {
	var p *Probe
	allocs := testing.AllocsPerRun(1000, func() {
		p.VAGrant(true)
		p.VADeny(false)
		p.SAInGrant(true)
		p.SAInDeny(false)
		p.SAOutGrant(true)
		p.SAOutDeny(false)
		p.DPATransition(true)
		p.CreditStall()
		p.InjectStall()
		p.LinkFlit()
		p.Sample(100, 1, 2)
		if p.Traced(42) {
			t.Fatal("nil probe traced a packet")
		}
		p.Lifecycle(42, StageRC, 100)
	})
	if allocs != 0 {
		t.Fatalf("disabled-path telemetry calls allocated %v bytes/run, want 0", allocs)
	}
}

func TestCountersAggregateIntoReport(t *testing.T) {
	c := NewCollector(Config{Window: 10})
	p0 := c.ProbeFor(0, 0)
	p1 := c.ProbeFor(1, 1)
	p0.VAGrant(true)
	p0.VAGrant(true)
	p0.VADeny(false)
	p1.SAInGrant(false)
	p1.SAOutDeny(true)
	p1.DPATransition(true)
	p1.DPATransition(false)
	p0.CreditStall()
	p1.InjectStall()
	p0.LinkFlit()
	p0.LinkFlit()

	c.Advance(9)
	p0.Sample(9, 3, 6)
	p1.Sample(9, 0, 2)

	r := c.Report()
	if r.Totals.VAGrantNative != 2 || r.Totals.VADenyForeign != 1 {
		t.Fatalf("VA totals wrong: %+v", r.Totals)
	}
	if r.Totals.SAInGrantForeign != 1 || r.Totals.SAOutDenyNative != 1 {
		t.Fatalf("SA totals wrong: %+v", r.Totals)
	}
	if r.Totals.DPAToNativeHigh != 1 || r.Totals.DPAToForeignHigh != 1 {
		t.Fatalf("DPA totals wrong: %+v", r.Totals)
	}
	if r.Totals.CreditStalls != 1 || r.Totals.InjectStalls != 1 || r.Totals.LinkFlits != 2 {
		t.Fatalf("stall/link totals wrong: %+v", r.Totals)
	}
	if len(r.Routers) != 2 {
		t.Fatalf("router reports = %d, want 2", len(r.Routers))
	}
	w0 := r.Routers[0].Windows
	if len(w0) != 1 || w0[0].OVCNative != 3 || w0[0].OVCForeign != 6 || w0[0].Ratio != 2 {
		t.Fatalf("node 0 window wrong: %+v", w0)
	}
	if w0[0].LinkFlits != 2 || w0[0].Utilization != 0.2 {
		t.Fatalf("node 0 link window wrong: %+v", w0[0])
	}
	w1 := r.Routers[1].Windows
	if len(w1) != 1 || w1[0].Ratio != -1 {
		t.Fatalf("node 1 infinite ratio not encoded: %+v", w1)
	}
}

func TestWindowRingOverwritesOldest(t *testing.T) {
	c := NewCollector(Config{Window: 4, WindowCap: 3})
	p := c.ProbeFor(0, 0)
	for i := int64(0); i < 5; i++ {
		p.Sample(4*i+3, int(i), 0)
	}
	got := p.Windows()
	if len(got) != 3 {
		t.Fatalf("retained %d windows, want 3", len(got))
	}
	for i, want := range []int64{11, 15, 19} {
		if got[i].Cycle != want {
			t.Fatalf("window %d cycle = %d, want %d (not chronological)", i, got[i].Cycle, want)
		}
	}
}

func TestAdvanceWindowBoundaries(t *testing.T) {
	c := NewCollector(Config{Window: 8})
	var boundaries []int64
	for now := int64(0); now < 24; now++ {
		if c.Advance(now) {
			boundaries = append(boundaries, now)
		}
	}
	if len(boundaries) != 3 || boundaries[0] != 7 || boundaries[2] != 23 {
		t.Fatalf("boundaries = %v", boundaries)
	}
}

func TestTracedSampling(t *testing.T) {
	c := NewCollector(Config{TraceEvery: 4})
	p := c.ProbeFor(0, 0)
	if !p.Traced(0) || !p.Traced(8) || p.Traced(3) {
		t.Fatal("TraceEvery sampling wrong")
	}
	off := NewCollector(Config{}).ProbeFor(0, 0)
	if off.Traced(0) {
		t.Fatal("tracing disabled but Traced reported true")
	}
}

func TestTraceCapDrops(t *testing.T) {
	c := NewCollector(Config{TraceEvery: 1, TraceCap: 2})
	p := c.ProbeFor(0, 0)
	for i := 0; i < 5; i++ {
		p.Lifecycle(1, StageRC, int64(i))
	}
	if len(p.Events()) != 2 || p.TraceDropped() != 3 {
		t.Fatalf("events=%d dropped=%d, want 2/3", len(p.Events()), p.TraceDropped())
	}
}

// TestChromeTraceSpans drives a synthetic two-hop packet through the
// lifecycle recorder and checks the export: one span per pipeline stage
// per hop, plus LT bridges, as valid trace_event JSON.
func TestChromeTraceSpans(t *testing.T) {
	c := NewCollector(Config{TraceEvery: 1})
	n0 := c.ProbeFor(0, 0)
	n1 := c.ProbeFor(1, 0)
	// Hop 0: RC@10, VA@11, SA@12, ST@13. Link latency 2 → hop 1 RC@15.
	n0.Lifecycle(7, StageInject, 8)
	n0.Lifecycle(7, StageRC, 10)
	n0.Lifecycle(7, StageVA, 11)
	n0.Lifecycle(7, StageSA, 12)
	n0.Lifecycle(7, StageST, 13)
	n1.Lifecycle(7, StageRC, 15)
	n1.Lifecycle(7, StageVA, 16)
	n1.Lifecycle(7, StageSA, 17)
	n1.Lifecycle(7, StageST, 18)
	n1.Lifecycle(7, StageEject, 21)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    int64  `json:"ts"`
			Dur   int64  `json:"dur"`
			PID   uint64 `json:"pid"`
			TID   int64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	spans := map[string]int{}
	for _, e := range out.TraceEvents {
		if e.PID != 7 {
			t.Fatalf("event for wrong packet: %+v", e)
		}
		if e.Phase == "X" {
			spans[e.Name]++
			if e.Dur < 1 {
				t.Fatalf("span %s has dur %d", e.Name, e.Dur)
			}
		}
	}
	for _, stage := range []string{"RC", "VA", "SA", "ST"} {
		if spans[stage] != 2 {
			t.Fatalf("stage %s has %d spans, want one per hop (2); spans=%v", stage, spans[stage], spans)
		}
	}
	if spans["LT"] != 1 {
		t.Fatalf("LT spans = %d, want 1", spans["LT"])
	}
	instants := 0
	for _, e := range out.TraceEvents {
		if e.Phase == "i" {
			instants++
		}
	}
	if instants != 2 {
		t.Fatalf("instant events = %d, want Inject+Eject", instants)
	}
}

func TestReportCSV(t *testing.T) {
	c := NewCollector(Config{})
	p := c.ProbeFor(0, 3)
	p.VAGrant(true)
	p.LinkFlit()
	var buf bytes.Buffer
	if err := c.Report().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + node 0 + totals
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "0,3,1,") {
		t.Fatalf("router row wrong: %s", lines[1])
	}
	if !strings.HasPrefix(lines[2], "total,-1,1,") {
		t.Fatalf("totals row wrong: %s", lines[2])
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	c := NewCollector(Config{Window: 16})
	p := c.ProbeFor(0, 0)
	p.DPATransition(true)
	p.Sample(15, 1, 3)
	var buf bytes.Buffer
	if err := c.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Totals.DPAToNativeHigh != 1 || len(back.Routers) != 1 || len(back.Routers[0].Windows) != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
