package telemetry

import "testing"

// ringCycles pushes n samples stamped 1..n into a ring of the given
// capacity and returns the cycles ordered() yields.
func ringCycles(cap, n int) []int64 {
	var r winRing
	for i := 1; i <= n; i++ {
		r.push(cap, WindowSample{Cycle: int64(i)})
	}
	out := r.ordered()
	cycles := make([]int64, len(out))
	for i, s := range out {
		cycles[i] = s.Cycle
	}
	return cycles
}

func TestWinRingBelowCap(t *testing.T) {
	got := ringCycles(4, 3)
	want := []int64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ordered() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ordered() = %v, want %v", got, want)
		}
	}
}

// TestWinRingWraparound pushes past WindowCap and checks that the ring
// keeps exactly the newest cap samples in chronological order, across
// several wrap positions (including multiple full revolutions).
func TestWinRingWraparound(t *testing.T) {
	for _, tc := range []struct{ cap, n int }{
		{4, 4},  // exactly full, no overwrite yet
		{4, 5},  // first overwrite
		{4, 7},  // mid-revolution
		{4, 8},  // wrap lands back on slot 0
		{4, 21}, // several revolutions
		{1, 6},  // degenerate single-slot ring
	} {
		got := ringCycles(tc.cap, tc.n)
		if len(got) != tc.cap {
			t.Fatalf("cap=%d n=%d: kept %d samples, want %d (%v)", tc.cap, tc.n, len(got), tc.cap, got)
		}
		for i, c := range got {
			want := int64(tc.n - tc.cap + 1 + i)
			if c != want {
				t.Fatalf("cap=%d n=%d: ordered()[%d] = %d, want %d (full: %v)", tc.cap, tc.n, i, c, want, got)
			}
		}
	}
}

// TestWinRingOrderedChronological checks the ordering property directly:
// whatever the push count, ordered() must be strictly increasing in Cycle.
func TestWinRingOrderedChronological(t *testing.T) {
	for n := 0; n <= 20; n++ {
		got := ringCycles(6, n)
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("n=%d: ordered() not chronological: %v", n, got)
			}
		}
	}
}
