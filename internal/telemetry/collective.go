package telemetry

// Collective-workload progress rows. The collective source (see
// internal/collective) tracks per-phase send/delivery counters and folds
// each delivered packet's blame vector per phase; the harness attaches the
// resulting report to the run's telemetry collector, so the observability
// snapshot decomposes both directions of a region-boundary standoff: the
// attribution tables say who stalls the latency-sensitive applications, the
// collective phase rows say who stalls the collective, phase by phase.

// CollectivePhase is one phase's progress and blame decomposition.
type CollectivePhase struct {
	Phase             string `json:"phase"`
	Sent              int64  `json:"sent"`
	Delivered         int64  `json:"delivered"`
	LatencyCycles     int64  `json:"latencyCycles"`
	InjectQueueCycles int64  `json:"injectQueueCycles"`
	NativeCycles      int64  `json:"nativeCycles"`
	ForeignCycles     int64  `json:"foreignCycles"`
	EscapeCycles      int64  `json:"escapeCycles"`
	FaultCycles       int64  `json:"faultCycles"`
}

// CollectiveReport summarizes one collective workload's run.
type CollectiveReport struct {
	Op            string `json:"op"`
	App           int    `json:"app"`
	Ranks         int    `json:"ranks"`
	RoundsStarted int64  `json:"roundsStarted"`
	Rounds        int64  `json:"rounds"`
	// CompletionCycles sums completed rounds' durations; divide by Rounds
	// for the mean collective completion time.
	CompletionCycles int64             `json:"completionCycles"`
	Phases           []CollectivePhase `json:"phases"`
}

// AttachCollective records a collective progress report for inclusion in
// Report(). Coordinator-only, like all cross-probe operations.
func (c *Collector) AttachCollective(rep *CollectiveReport) { c.collective = rep }

// Collective returns the attached collective report (nil when none).
func (c *Collector) Collective() *CollectiveReport { return c.collective }
