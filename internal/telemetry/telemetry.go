// Package telemetry is the per-router instrumentation layer: monotonic
// counters for the arbitration decisions the paper's mechanisms live in
// (MSP grants/denials split by native/foreign traffic, DPA priority
// transitions, credit and injection stalls, link-flit counts), windowed
// time-series of VC occupancy and link utilization, and an opt-in
// flit-lifecycle trace exportable as Chrome trace_event JSON.
//
// The layer is zero-cost when disabled: components hold a *Probe that is
// nil when telemetry is off and guard every hot-path call on it, and every
// Probe method is additionally nil-receiver-safe so a stray unguarded call
// still costs no allocation (asserted by TestNilProbeCallsAllocateNothing).
//
// Shard safety in the parallel tick engine comes from ownership, not
// locking: one Probe belongs to one node, a node's router and NI belong to
// exactly one shard, and probes are only written during the engine's
// compute/link phases by that owning shard. Cross-router aggregation (the
// window sampler, report building, trace export) runs on the coordinating
// goroutine between or after barriers, so results are bit-identical across
// worker counts.
package telemetry

import "rair/internal/msg"

// Config parameterizes a Collector.
type Config struct {
	// Window is the time-series sampling window in cycles (default 256).
	Window int64
	// WindowCap bounds the per-router sample ring; older windows are
	// overwritten once the ring is full (default 4096).
	WindowCap int
	// TraceEvery samples every N-th packet (by packet ID) for
	// flit-lifecycle tracing; 0 disables tracing.
	TraceEvery uint64
	// TraceCap bounds the lifecycle events retained per node; events
	// beyond it are counted as dropped (default 65536).
	TraceCap int
	// Attribution enables the per-flit blame accountant (stalled-head
	// cycle charging and per-(source app, class) latency decompositions;
	// see attribution.go). Off by default: routers cache the flag at
	// wiring time and skip every charge site when it is false.
	Attribution bool
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.WindowCap <= 0 {
		c.WindowCap = 4096
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 1 << 16
	}
	return c
}

// Counters are the monotonic per-router event counts. Grant/deny pairs
// cover the three MSP-prioritized arbitration steps (Section IV.B): the VA
// output arbitration and the SA input and output arbitrations, each split
// by the requestor's native/foreign status at the counting router.
type Counters struct {
	// VA output arbitration (step 1 of MSP).
	VAGrantNative  int64 `json:"vaGrantNative"`
	VAGrantForeign int64 `json:"vaGrantForeign"`
	VADenyNative   int64 `json:"vaDenyNative"`
	VADenyForeign  int64 `json:"vaDenyForeign"`
	// SA input arbitration (step 2).
	SAInGrantNative  int64 `json:"saInGrantNative"`
	SAInGrantForeign int64 `json:"saInGrantForeign"`
	SAInDenyNative   int64 `json:"saInDenyNative"`
	SAInDenyForeign  int64 `json:"saInDenyForeign"`
	// SA output arbitration (step 3).
	SAOutGrantNative  int64 `json:"saOutGrantNative"`
	SAOutGrantForeign int64 `json:"saOutGrantForeign"`
	SAOutDenyNative   int64 `json:"saOutDenyNative"`
	SAOutDenyForeign  int64 `json:"saOutDenyForeign"`
	// DPA state transitions (Section IV.C), split by direction.
	DPAToNativeHigh  int64 `json:"dpaToNativeHigh"`
	DPAToForeignHigh int64 `json:"dpaToForeignHigh"`
	// CreditStalls counts SA candidates skipped for lack of a downstream
	// credit; InjectStalls counts cycles an NI class queue held a packet
	// but no local-input VC could be claimed (buffer-full injection).
	CreditStalls int64 `json:"creditStalls"`
	InjectStalls int64 `json:"injectStalls"`
	// LinkFlits counts flits pushed onto the router's output links.
	LinkFlits int64 `json:"linkFlits"`
	// Fault-injection events (internal/faults), attributed to the node that
	// owns the affected side of the link: drop/corrupt/retransmit/lost to
	// the receiver of the faulty flit wire, credit leaks and reconciled
	// credits to the sender, stall cycles to the stalled router.
	FaultDroppedFlits      int64 `json:"faultDroppedFlits,omitempty"`
	FaultCorruptedFlits    int64 `json:"faultCorruptedFlits,omitempty"`
	FaultRetransmits       int64 `json:"faultRetransmits,omitempty"`
	FaultLostFlits         int64 `json:"faultLostFlits,omitempty"`
	FaultCreditLeaks       int64 `json:"faultCreditLeaks,omitempty"`
	FaultReconciledCredits int64 `json:"faultReconciledCredits,omitempty"`
	FaultStallCycles       int64 `json:"faultStallCycles,omitempty"`
	// Stalled-head-flit cycles this router charged per blame bucket
	// (attribution only; see Probe.Charge). These count charges made *at*
	// this router, unlike the decomposition tables, which fold per source.
	AttrNativeCycles  int64 `json:"attrNativeCycles,omitempty"`
	AttrForeignCycles int64 `json:"attrForeignCycles,omitempty"`
	AttrEscapeCycles  int64 `json:"attrEscapeCycles,omitempty"`
	AttrFaultCycles   int64 `json:"attrFaultCycles,omitempty"`
}

// add accumulates o into c (report totals).
func (c *Counters) add(o *Counters) {
	c.VAGrantNative += o.VAGrantNative
	c.VAGrantForeign += o.VAGrantForeign
	c.VADenyNative += o.VADenyNative
	c.VADenyForeign += o.VADenyForeign
	c.SAInGrantNative += o.SAInGrantNative
	c.SAInGrantForeign += o.SAInGrantForeign
	c.SAInDenyNative += o.SAInDenyNative
	c.SAInDenyForeign += o.SAInDenyForeign
	c.SAOutGrantNative += o.SAOutGrantNative
	c.SAOutGrantForeign += o.SAOutGrantForeign
	c.SAOutDenyNative += o.SAOutDenyNative
	c.SAOutDenyForeign += o.SAOutDenyForeign
	c.DPAToNativeHigh += o.DPAToNativeHigh
	c.DPAToForeignHigh += o.DPAToForeignHigh
	c.CreditStalls += o.CreditStalls
	c.InjectStalls += o.InjectStalls
	c.LinkFlits += o.LinkFlits
	c.FaultDroppedFlits += o.FaultDroppedFlits
	c.FaultCorruptedFlits += o.FaultCorruptedFlits
	c.FaultRetransmits += o.FaultRetransmits
	c.FaultLostFlits += o.FaultLostFlits
	c.FaultCreditLeaks += o.FaultCreditLeaks
	c.FaultReconciledCredits += o.FaultReconciledCredits
	c.FaultStallCycles += o.FaultStallCycles
	c.AttrNativeCycles += o.AttrNativeCycles
	c.AttrForeignCycles += o.AttrForeignCycles
	c.AttrEscapeCycles += o.AttrEscapeCycles
	c.AttrFaultCycles += o.AttrFaultCycles
}

// Probe is one node's sink: the router and NI of the node hold it and feed
// it events. A nil Probe is the disabled state; all methods are nil-safe.
type Probe struct {
	node int
	app  int
	c    Counters

	col *Collector

	win       winRing
	lastFlits int64
	lastAttr  [msg.NumBlame]int64

	// decomp holds the per-(source app, class) latency decompositions of
	// packets ejected at this node (attribution only; see attribution.go).
	decomp map[DecompKey]*Decomp

	events  []Event
	dropped int64

	lastNativeHigh bool
	dpaSeen        bool
}

// Node reports the probe's node id.
func (p *Probe) Node() int { return p.node }

// App reports the application assigned to the probe's node (-1 if none).
func (p *Probe) App() int { return p.app }

// Counters returns a snapshot of the probe's counter block.
func (p *Probe) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	return p.c
}

// VAGrant counts a VA output arbitration grant.
func (p *Probe) VAGrant(native bool) {
	if p == nil {
		return
	}
	if native {
		p.c.VAGrantNative++
	} else {
		p.c.VAGrantForeign++
	}
}

// VADeny counts a requestor that lost a VA output arbitration this cycle.
func (p *Probe) VADeny(native bool) {
	if p == nil {
		return
	}
	if native {
		p.c.VADenyNative++
	} else {
		p.c.VADenyForeign++
	}
}

// SAInGrant counts an SA input arbitration grant.
func (p *Probe) SAInGrant(native bool) {
	if p == nil {
		return
	}
	if native {
		p.c.SAInGrantNative++
	} else {
		p.c.SAInGrantForeign++
	}
}

// SAInDeny counts a requestor that lost an SA input arbitration this cycle.
func (p *Probe) SAInDeny(native bool) {
	if p == nil {
		return
	}
	if native {
		p.c.SAInDenyNative++
	} else {
		p.c.SAInDenyForeign++
	}
}

// SAOutGrant counts an SA output arbitration grant.
func (p *Probe) SAOutGrant(native bool) {
	if p == nil {
		return
	}
	if native {
		p.c.SAOutGrantNative++
	} else {
		p.c.SAOutGrantForeign++
	}
}

// SAOutDeny counts a requestor that lost an SA output arbitration this
// cycle.
func (p *Probe) SAOutDeny(native bool) {
	if p == nil {
		return
	}
	if native {
		p.c.SAOutDenyNative++
	} else {
		p.c.SAOutDenyForeign++
	}
}

// DPATransition counts a DPA priority flip; toNativeHigh is the new state.
func (p *Probe) DPATransition(toNativeHigh bool) {
	if p == nil {
		return
	}
	if toNativeHigh {
		p.c.DPAToNativeHigh++
	} else {
		p.c.DPAToForeignHigh++
	}
}

// CreditStall counts an SA candidate blocked on an empty credit counter.
func (p *Probe) CreditStall() {
	if p == nil {
		return
	}
	p.c.CreditStalls++
}

// InjectStall counts a cycle in which an NI class queue held a packet but
// every eligible local-input VC was busy (buffer-full injection stall).
func (p *Probe) InjectStall() {
	if p == nil {
		return
	}
	p.c.InjectStalls++
}

// LinkFlit counts one flit pushed onto an output link.
func (p *Probe) LinkFlit() {
	if p == nil {
		return
	}
	p.c.LinkFlits++
}

// FaultDroppedFlit counts a flit silently lost on an input link.
func (p *Probe) FaultDroppedFlit() {
	if p == nil {
		return
	}
	p.c.FaultDroppedFlits++
}

// FaultCorruptedFlit counts a flit discarded by the CRC check on an input
// link.
func (p *Probe) FaultCorruptedFlit() {
	if p == nil {
		return
	}
	p.c.FaultCorruptedFlits++
}

// FaultRetransmit counts a flit re-entering an input link's wire.
func (p *Probe) FaultRetransmit() {
	if p == nil {
		return
	}
	p.c.FaultRetransmits++
}

// FaultLostFlit counts a flit permanently lost after exhausting its retry
// budget.
func (p *Probe) FaultLostFlit() {
	if p == nil {
		return
	}
	p.c.FaultLostFlits++
}

// FaultCreditLeak counts a credit lost on an output link's return wire.
func (p *Probe) FaultCreditLeak() {
	if p == nil {
		return
	}
	p.c.FaultCreditLeaks++
}

// FaultReconciledCredits counts n leaked credits restored by
// reconciliation.
func (p *Probe) FaultReconciledCredits(n int64) {
	if p == nil {
		return
	}
	p.c.FaultReconciledCredits += n
}

// FaultStallCycle counts one cycle of an injected router-pipeline stall.
func (p *Probe) FaultStallCycle() {
	if p == nil {
		return
	}
	p.c.FaultStallCycles++
}

// Collector owns the per-node probes of one network and the run-wide
// configuration. It is not safe for concurrent use by itself; the network
// confines all cross-probe operations to the coordinating goroutine.
type Collector struct {
	cfg    Config
	probes []*Probe
	now    int64

	// collective, when attached, rides along into Report (see
	// collective.go).
	collective *CollectiveReport
}

// NewCollector returns a collector with cfg's zero fields defaulted.
func NewCollector(cfg Config) *Collector {
	return &Collector{cfg: cfg.withDefaults()}
}

// Window reports the configured sampling window in cycles.
func (c *Collector) Window() int64 { return c.cfg.Window }

// TraceEvery reports the lifecycle-trace sampling stride (0 = off).
func (c *Collector) TraceEvery() uint64 { return c.cfg.TraceEvery }

// ProbeFor returns (creating if needed) the probe for a node. The network
// calls it while wiring; the probe set must be complete before sampling.
func (c *Collector) ProbeFor(node, app int) *Probe {
	for len(c.probes) <= node {
		c.probes = append(c.probes, nil)
	}
	if c.probes[node] == nil {
		c.probes[node] = &Probe{node: node, app: app, col: c}
	}
	return c.probes[node]
}

// Probes returns the per-node probes in node order (nil entries possible
// for nodes never wired).
func (c *Collector) Probes() []*Probe { return c.probes }

// Advance notes the cycle and reports whether a sampling window just
// closed; the network then samples every router. Runs on the coordinator
// only.
func (c *Collector) Advance(now int64) bool {
	c.now = now
	return (now+1)%c.cfg.Window == 0
}
