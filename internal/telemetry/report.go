package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the aggregated outcome of one instrumented run: run-wide
// counter totals plus the per-router counter blocks and window series.
type Report struct {
	// Window is the sampling window in cycles; Cycles the last cycle the
	// collector observed.
	Window int64 `json:"window"`
	Cycles int64 `json:"cycles"`
	// TraceEvery echoes the lifecycle sampling stride (0 = off);
	// TraceEvents/TraceDropped count retained and capped events.
	TraceEvery   uint64 `json:"traceEvery,omitempty"`
	TraceEvents  int    `json:"traceEvents,omitempty"`
	TraceDropped int64  `json:"traceDropped,omitempty"`

	Totals  Counters       `json:"totals"`
	Routers []RouterReport `json:"routers"`

	// Attribution is the per-(source app, class) latency decomposition;
	// nil unless Config.Attribution was on and packets ejected.
	Attribution *AttributionReport `json:"attribution,omitempty"`

	// Collective is the per-phase progress and blame decomposition of a
	// co-running collective workload; nil unless one was attached.
	Collective *CollectiveReport `json:"collective,omitempty"`
}

// RouterReport is one node's slice of the report.
type RouterReport struct {
	Node     int            `json:"node"`
	App      int            `json:"app"`
	Counters Counters       `json:"counters"`
	Windows  []WindowSample `json:"windows,omitempty"`
}

// Report builds the aggregated report from the collector's probes.
func (c *Collector) Report() *Report {
	r := &Report{Window: c.cfg.Window, Cycles: c.now, TraceEvery: c.cfg.TraceEvery}
	for _, p := range c.probes {
		if p == nil {
			continue
		}
		cnt := p.Counters()
		r.Totals.add(&cnt)
		r.TraceEvents += len(p.events)
		r.TraceDropped += p.dropped
		r.Routers = append(r.Routers, RouterReport{
			Node: p.node, App: p.app, Counters: cnt, Windows: p.Windows(),
		})
	}
	r.Attribution = c.Attribution()
	r.Collective = c.collective
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes the per-router counter blocks as CSV, one row per router
// plus a totals row (window series are JSON-only; see WriteJSON).
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "node,app,vaGrantNative,vaGrantForeign,vaDenyNative,vaDenyForeign,"+
		"saInGrantNative,saInGrantForeign,saInDenyNative,saInDenyForeign,"+
		"saOutGrantNative,saOutGrantForeign,saOutDenyNative,saOutDenyForeign,"+
		"dpaToNativeHigh,dpaToForeignHigh,creditStalls,injectStalls,linkFlits,"+
		"faultDroppedFlits,faultCorruptedFlits,faultRetransmits,faultLostFlits,"+
		"faultCreditLeaks,faultReconciledCredits,faultStallCycles,"+
		"attrNativeCycles,attrForeignCycles,attrEscapeCycles,attrFaultCycles"); err != nil {
		return err
	}
	row := func(label string, app int, c *Counters) error {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			label, app,
			c.VAGrantNative, c.VAGrantForeign, c.VADenyNative, c.VADenyForeign,
			c.SAInGrantNative, c.SAInGrantForeign, c.SAInDenyNative, c.SAInDenyForeign,
			c.SAOutGrantNative, c.SAOutGrantForeign, c.SAOutDenyNative, c.SAOutDenyForeign,
			c.DPAToNativeHigh, c.DPAToForeignHigh, c.CreditStalls, c.InjectStalls, c.LinkFlits,
			c.FaultDroppedFlits, c.FaultCorruptedFlits, c.FaultRetransmits, c.FaultLostFlits,
			c.FaultCreditLeaks, c.FaultReconciledCredits, c.FaultStallCycles,
			c.AttrNativeCycles, c.AttrForeignCycles, c.AttrEscapeCycles, c.AttrFaultCycles)
		return err
	}
	for i := range r.Routers {
		rr := &r.Routers[i]
		if err := row(fmt.Sprint(rr.Node), rr.App, &rr.Counters); err != nil {
			return err
		}
	}
	return row("total", -1, &r.Totals)
}
