// Package region models the regionalized structure of the NoC: which
// application each node belongs to, the native/foreign and regional/global
// traffic classification the RAIR mechanisms rely on, and the standard
// layouts used in the paper's evaluation (halves, quadrants, and a six-region
// grid on an 8×8 mesh).
package region

import (
	"fmt"

	"rair/internal/topology"
)

// Unassigned marks a node that belongs to no application region (RAIR treats
// all traffic at such a node as foreign).
const Unassigned = -1

// Map assigns every node of a mesh to an application region. Region IDs
// equal application IDs: the paper maps one application per region.
type Map struct {
	mesh *topology.Mesh
	app  []int // node id -> app id or Unassigned
	n    int   // number of applications
}

// New returns a map with all nodes unassigned.
func New(mesh *topology.Mesh) *Map {
	app := make([]int, mesh.N())
	for i := range app {
		app[i] = Unassigned
	}
	return &Map{mesh: mesh, app: app}
}

// Mesh returns the underlying mesh.
func (m *Map) Mesh() *topology.Mesh { return m.mesh }

// NumApps reports the number of applications with at least one node.
func (m *Map) NumApps() int { return m.n }

// Assign places node under application app (app >= 0).
func (m *Map) Assign(node, app int) {
	if app < 0 {
		panic("region: negative app id")
	}
	m.app[node] = app
	if app+1 > m.n {
		m.n = app + 1
	}
}

// AppAt returns the application owning node, or Unassigned.
func (m *Map) AppAt(node int) int { return m.app[node] }

// Nodes returns the nodes assigned to app, in id order.
func (m *Map) Nodes(app int) []int {
	var out []int
	for id, a := range m.app {
		if a == app {
			out = append(out, id)
		}
	}
	return out
}

// SameRegion reports whether nodes a and b are in the same (assigned) region.
func (m *Map) SameRegion(a, b int) bool {
	return m.app[a] != Unassigned && m.app[a] == m.app[b]
}

// Global reports whether a packet from src to dst is inter-region ("global
// traffic"). Traffic touching an unassigned node is global: it necessarily
// leaves every application's region.
func (m *Map) Global(src, dst int) bool { return !m.SameRegion(src, dst) }

// Native reports whether a packet belonging to app is native traffic at
// node: the paper's classification compares the packet's application number
// with the router's assigned application number.
func (m *Map) Native(node, app int) bool {
	return m.app[node] != Unassigned && m.app[node] == app
}

// SpanWithin returns the number of consecutive hops from node in direction d
// that stay inside node's region (0 if the first hop already leaves it).
// DBAR's region-clipped congestion aggregation uses this span.
func (m *Map) SpanWithin(node int, d topology.Dir) int {
	a := m.app[node]
	span := 0
	cur := node
	for {
		next := m.mesh.Neighbor(cur, d)
		if next == -1 || m.app[next] != a {
			return span
		}
		span++
		cur = next
	}
}

// Validate checks structural sanity: every app in [0, NumApps) owns at least
// one node.
func (m *Map) Validate() error {
	counts := make([]int, m.n)
	for _, a := range m.app {
		if a != Unassigned {
			counts[a]++
		}
	}
	for app, c := range counts {
		if c == 0 {
			return fmt.Errorf("region: app %d owns no nodes", app)
		}
	}
	return nil
}

// Rect is a half-open rectangle of nodes: x in [X0, X1), y in [Y0, Y1).
type Rect struct{ X0, Y0, X1, Y1 int }

// Contains reports whether c lies in the rectangle.
func (r Rect) Contains(c topology.Coord) bool {
	return c.X >= r.X0 && c.X < r.X1 && c.Y >= r.Y0 && c.Y < r.Y1
}

// Area returns the node count of the rectangle.
func (r Rect) Area() int { return (r.X1 - r.X0) * (r.Y1 - r.Y0) }

// FromRects builds a map assigning app i to rects[i]. Rectangles must be
// non-overlapping and within the mesh; nodes outside all rectangles stay
// unassigned.
func FromRects(mesh *topology.Mesh, rects []Rect) (*Map, error) {
	m := New(mesh)
	for app, r := range rects {
		if r.X0 < 0 || r.Y0 < 0 || r.X1 > mesh.W || r.Y1 > mesh.H || r.X0 >= r.X1 || r.Y0 >= r.Y1 {
			return nil, fmt.Errorf("region: rect %d %+v out of mesh %dx%d", app, r, mesh.W, mesh.H)
		}
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				id := mesh.ID(topology.Coord{X: x, Y: y})
				if m.app[id] != Unassigned {
					return nil, fmt.Errorf("region: rect %d overlaps node %d (app %d)", app, id, m.app[id])
				}
				m.Assign(id, app)
			}
		}
	}
	return m, nil
}

// Halves splits the mesh into left/right halves: app 0 west, app 1 east
// (the two-application scenario of the MSP and routing experiments).
func Halves(mesh *topology.Mesh) *Map {
	m, err := FromRects(mesh, []Rect{
		{0, 0, mesh.W / 2, mesh.H},
		{mesh.W / 2, 0, mesh.W, mesh.H},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// Quadrants splits the mesh into four quadrants, numbered row-major
// (0 = NW, 1 = NE, 2 = SW, 3 = SE), matching the four-application DPA and
// PARSEC scenarios.
func Quadrants(mesh *topology.Mesh) *Map {
	w2, h2 := mesh.W/2, mesh.H/2
	m, err := FromRects(mesh, []Rect{
		{0, 0, w2, h2},
		{w2, 0, mesh.W, h2},
		{0, h2, w2, mesh.H},
		{w2, h2, mesh.W, mesh.H},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// SixGrid splits the mesh into a 3×2 grid of regions, numbered row-major
// (apps 0-2 on the top half, 3-5 on the bottom), for the six-application
// scenario. The paper does not give exact rectangles for 64 nodes across 6
// regions; we split each half-height row into column blocks of widths
// ⌈W/3⌉, ⌈W/3⌉ and the remainder (3+3+2 on an 8-wide mesh).
func SixGrid(mesh *topology.Mesh) *Map {
	w3 := (mesh.W + 2) / 3
	h2 := mesh.H / 2
	m, err := FromRects(mesh, []Rect{
		{0, 0, w3, h2},
		{w3, 0, 2 * w3, h2},
		{2 * w3, 0, mesh.W, h2},
		{0, h2, w3, mesh.H},
		{w3, h2, 2 * w3, mesh.H},
		{2 * w3, h2, mesh.W, mesh.H},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// Grid splits the mesh into cols×rows rectangular regions numbered
// row-major, with balanced column/row widths (every region non-empty for
// any cols ≤ W, rows ≤ H). Halves and Quadrants are special cases; Grid
// supports the scalability studies of Section VI (regions up to one per
// node).
func Grid(mesh *topology.Mesh, cols, rows int) *Map {
	if cols < 1 || rows < 1 || cols > mesh.W || rows > mesh.H {
		panic(fmt.Sprintf("region: %dx%d grid does not fit a %dx%d mesh", cols, rows, mesh.W, mesh.H))
	}
	var rects []Rect
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			rects = append(rects, Rect{
				X0: c * mesh.W / cols, X1: (c + 1) * mesh.W / cols,
				Y0: r * mesh.H / rows, Y1: (r + 1) * mesh.H / rows,
			})
		}
	}
	m, err := FromRects(mesh, rects)
	if err != nil {
		panic(err)
	}
	return m
}

// Single assigns the whole mesh to one application: the degenerate
// "conventional NoC" case (an RNoC with one region).
func Single(mesh *topology.Mesh) *Map {
	m, err := FromRects(mesh, []Rect{{0, 0, mesh.W, mesh.H}})
	if err != nil {
		panic(err)
	}
	return m
}
