package region

import (
	"testing"
	"testing/quick"

	"rair/internal/topology"
)

func mesh8() *topology.Mesh { return topology.NewMesh(8, 8) }

func TestHalves(t *testing.T) {
	m := Halves(mesh8())
	if m.NumApps() != 2 {
		t.Fatalf("NumApps = %d", m.NumApps())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// (0,0) is app 0; (7,0) is app 1.
	if m.AppAt(0) != 0 || m.AppAt(7) != 1 {
		t.Fatalf("halves assignment wrong: %d %d", m.AppAt(0), m.AppAt(7))
	}
	if len(m.Nodes(0)) != 32 || len(m.Nodes(1)) != 32 {
		t.Fatal("halves must have 32 nodes each")
	}
}

func TestQuadrants(t *testing.T) {
	m := Quadrants(mesh8())
	if m.NumApps() != 4 {
		t.Fatalf("NumApps = %d", m.NumApps())
	}
	for app := 0; app < 4; app++ {
		if len(m.Nodes(app)) != 16 {
			t.Fatalf("quadrant %d has %d nodes", app, len(m.Nodes(app)))
		}
	}
	mesh := m.Mesh()
	if m.AppAt(mesh.ID(topology.Coord{X: 0, Y: 0})) != 0 ||
		m.AppAt(mesh.ID(topology.Coord{X: 7, Y: 0})) != 1 ||
		m.AppAt(mesh.ID(topology.Coord{X: 0, Y: 7})) != 2 ||
		m.AppAt(mesh.ID(topology.Coord{X: 7, Y: 7})) != 3 {
		t.Fatal("quadrant numbering wrong")
	}
}

func TestSixGrid(t *testing.T) {
	m := SixGrid(mesh8())
	if m.NumApps() != 6 {
		t.Fatalf("NumApps = %d", m.NumApps())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	sizes := []int{12, 12, 8, 12, 12, 8}
	for app := 0; app < 6; app++ {
		n := len(m.Nodes(app))
		if n != sizes[app] {
			t.Fatalf("region %d size %d, want %d", app, n, sizes[app])
		}
		total += n
	}
	if total != 64 {
		t.Fatalf("regions cover %d nodes", total)
	}
}

func TestSingle(t *testing.T) {
	m := Single(mesh8())
	if m.NumApps() != 1 || len(m.Nodes(0)) != 64 {
		t.Fatal("single region wrong")
	}
	if m.Global(0, 63) {
		t.Fatal("no traffic is global in a single-region NoC")
	}
}

func TestGlobalAndNative(t *testing.T) {
	m := Halves(mesh8())
	left, right := 0, 7
	if m.Global(left, 1) {
		t.Fatal("same-half traffic is regional")
	}
	if !m.Global(left, right) {
		t.Fatal("cross-half traffic is global")
	}
	if !m.Native(left, 0) || m.Native(left, 1) {
		t.Fatal("native classification wrong")
	}
}

func TestUnassignedIsGlobalAndForeign(t *testing.T) {
	m := New(mesh8())
	m.Assign(0, 0)
	if !m.Global(0, 63) || !m.Global(63, 0) {
		t.Fatal("traffic touching unassigned nodes must be global")
	}
	if m.Native(63, 0) {
		t.Fatal("nothing is native at an unassigned node")
	}
	if m.SameRegion(63, 63) {
		t.Fatal("unassigned nodes are never in the same region")
	}
}

func TestSpanWithin(t *testing.T) {
	m := Halves(mesh8())
	mesh := m.Mesh()
	// From (0,0): 3 hops east stay in the left half (cols 1,2,3).
	id := mesh.ID(topology.Coord{X: 0, Y: 0})
	if s := m.SpanWithin(id, topology.East); s != 3 {
		t.Fatalf("east span = %d, want 3", s)
	}
	// Going south stays in-region to the mesh edge: 7 hops.
	if s := m.SpanWithin(id, topology.South); s != 7 {
		t.Fatalf("south span = %d, want 7", s)
	}
	// From (3,0), east immediately leaves the region.
	id = mesh.ID(topology.Coord{X: 3, Y: 0})
	if s := m.SpanWithin(id, topology.East); s != 0 {
		t.Fatalf("boundary east span = %d, want 0", s)
	}
}

func TestFromRectsErrors(t *testing.T) {
	mesh := mesh8()
	if _, err := FromRects(mesh, []Rect{{0, 0, 9, 1}}); err == nil {
		t.Fatal("out-of-mesh rect accepted")
	}
	if _, err := FromRects(mesh, []Rect{{0, 0, 2, 2}, {1, 1, 3, 3}}); err == nil {
		t.Fatal("overlapping rects accepted")
	}
	if _, err := FromRects(mesh, []Rect{{2, 2, 2, 4}}); err == nil {
		t.Fatal("empty rect accepted")
	}
}

func TestValidateDetectsEmptyApp(t *testing.T) {
	m := New(mesh8())
	m.Assign(0, 2) // apps 0 and 1 own nothing
	if err := m.Validate(); err == nil {
		t.Fatal("Validate missed empty apps")
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{1, 1, 3, 4}
	if r.Area() != 6 {
		t.Fatalf("Area = %d", r.Area())
	}
	if !r.Contains(topology.Coord{X: 2, Y: 3}) || r.Contains(topology.Coord{X: 3, Y: 3}) {
		t.Fatal("Contains wrong at boundaries")
	}
}

// Property: for rect layouts, SameRegion is an equivalence relation
// consistent with AppAt.
func TestSameRegionConsistent(t *testing.T) {
	m := Quadrants(mesh8())
	if err := quick.Check(func(a, b uint8) bool {
		x, y := int(a)%64, int(b)%64
		return m.SameRegion(x, y) == (m.AppAt(x) == m.AppAt(y))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssignNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(mesh8()).Assign(0, -3)
}

func TestGridLayouts(t *testing.T) {
	mesh := mesh8()
	cases := []struct {
		cols, rows, want int
	}{{2, 1, 2}, {2, 2, 4}, {4, 2, 8}, {4, 4, 16}, {8, 8, 64}, {1, 1, 1}, {3, 2, 6}}
	for _, c := range cases {
		m := Grid(mesh, c.cols, c.rows)
		if m.NumApps() != c.want {
			t.Fatalf("%dx%d grid has %d regions, want %d", c.cols, c.rows, m.NumApps(), c.want)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%dx%d: %v", c.cols, c.rows, err)
		}
		total := 0
		for a := 0; a < m.NumApps(); a++ {
			total += len(m.Nodes(a))
		}
		if total != 64 {
			t.Fatalf("%dx%d grid covers %d nodes", c.cols, c.rows, total)
		}
	}
	// Balanced partition: region sizes differ by at most one column/row.
	g := Grid(mesh, 3, 2)
	for a := 0; a < 6; a++ {
		if n := len(g.Nodes(a)); n != 8 && n != 12 {
			t.Fatalf("Grid(3,2) region %d has %d nodes", a, n)
		}
	}
	// Grid matches the fixed layouts where they overlap.
	q := Grid(mesh, 2, 2)
	qq := Quadrants(mesh)
	for node := 0; node < 64; node++ {
		if q.AppAt(node) != qq.AppAt(node) {
			t.Fatalf("Grid(2,2) diverges from Quadrants at node %d", node)
		}
	}
}

func TestGridNonDivisibleAlwaysCovers(t *testing.T) {
	// Balanced partition must never leave a region empty, even when the
	// mesh dimension does not divide evenly (the case a ceil-based split
	// gets wrong, e.g. 3 columns on a 4-wide mesh).
	for _, dims := range [][4]int{{4, 4, 3, 2}, {5, 3, 4, 3}, {7, 7, 5, 6}, {4, 4, 4, 4}} {
		mesh := topology.NewMesh(dims[0], dims[1])
		m := Grid(mesh, dims[2], dims[3])
		if m.NumApps() != dims[2]*dims[3] {
			t.Fatalf("%v: %d regions", dims, m.NumApps())
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
	}
}

func TestGridPanicsWhenUnfit(t *testing.T) {
	mesh := mesh8()
	for _, c := range [][2]int{{0, 1}, {9, 1}, {1, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Grid(%d,%d) accepted", c[0], c[1])
				}
			}()
			Grid(mesh, c[0], c[1])
		}()
	}
}
