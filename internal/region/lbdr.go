package region

import (
	"fmt"
	"math/big"
)

// LBDRValidFraction computes the fraction of application-to-core mappings
// that the restricted LBDR technique permits, reproducing the in-text
// calculation of Section III.B: with LBDR, every region must contain at
// least one memory controller, which with 16 cores, 4 MCs and 4 apps of 4
// threads admits only ≈14% of all mappings.
//
// cores is the total core count, mcs the number of cores hosting a memory
// controller, apps the number of applications and threads the region size
// (threads per application). Applications are labeled; mappings draw each
// application's threads in turn from the remaining cores, exactly as the
// paper's formula does. apps*threads must not exceed cores, and mcs must not
// exceed cores.
func LBDRValidFraction(cores, mcs, apps, threads int) (*big.Rat, error) {
	switch {
	case cores < 1 || mcs < 0 || apps < 1 || threads < 1:
		return nil, fmt.Errorf("region: invalid parameters cores=%d mcs=%d apps=%d threads=%d", cores, mcs, apps, threads)
	case apps*threads > cores:
		return nil, fmt.Errorf("region: %d apps x %d threads exceed %d cores", apps, threads, cores)
	case mcs > cores:
		return nil, fmt.Errorf("region: %d MCs exceed %d cores", mcs, cores)
	}

	// Denominator: all ordered placements, C(cores,T)*C(cores-T,T)*...
	denom := big.NewInt(1)
	rem := cores
	for i := 0; i < apps; i++ {
		denom.Mul(denom, binom(rem, threads))
		rem -= threads
	}
	if denom.Sign() == 0 {
		return nil, fmt.Errorf("region: no mappings exist")
	}

	// Numerator: placements in which every region holds >= 1 MC. Count by
	// dynamic programming over applications, tracking how many MC cores
	// remain unplaced. Region i draws k >= 1 MC cores and threads-k
	// non-MC cores from the remaining pools.
	nonMC := cores - mcs
	// ways[m] = number of ways to fill regions i..apps-1 given m MC cores
	// and the matching number of non-MC cores remain.
	ways := make([]*big.Int, mcs+1)
	next := make([]*big.Int, mcs+1)
	for m := range ways {
		ways[m] = big.NewInt(1) // after the last region, one way regardless
		next[m] = new(big.Int)
	}
	for i := apps - 1; i >= 0; i-- {
		// Cores remaining before region i is placed.
		remCores := cores - i*threads
		for m := 0; m <= mcs; m++ {
			next[m].SetInt64(0)
			remNonMC := remCores - m
			if remNonMC < 0 || remNonMC > nonMC {
				continue
			}
			for k := 1; k <= threads && k <= m; k++ {
				if threads-k > remNonMC {
					continue
				}
				term := new(big.Int).Mul(binom(m, k), binom(remNonMC, threads-k))
				term.Mul(term, ways[m-k])
				next[m].Add(next[m], term)
			}
		}
		ways, next = next, ways
	}
	num := ways[mcs]

	return new(big.Rat).SetFrac(num, denom), nil
}

// binom returns C(n, k) as a big integer (0 when k > n or k < 0).
func binom(n, k int) *big.Int {
	if k < 0 || k > n {
		return new(big.Int)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}
