package region

import (
	"math"
	"math/big"
	"testing"
)

// The paper (Section III.B) computes that with 16 cores, 4 MCs and 4 apps of
// 4 threads each, only ≈14% of mappings leave every region with an MC:
//
//	4!·C(12,3)·C(9,3)·C(6,3)·C(3,3) / [C(16,4)·C(12,4)·C(8,4)·C(4,4)]
func TestLBDRFractionPaperExample(t *testing.T) {
	got, err := LBDRValidFraction(16, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := big.NewRat(8870400, 63063000)
	if got.Cmp(want) != 0 {
		t.Fatalf("fraction = %v, want %v", got, want)
	}
	f, _ := got.Float64()
	if math.Abs(f-0.1407) > 0.001 {
		t.Fatalf("fraction ≈ %.4f, want ≈0.14", f)
	}
}

func TestLBDRFractionNoMCs(t *testing.T) {
	got, err := LBDRValidFraction(16, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("with no MCs nothing is valid, got %v", got)
	}
}

func TestLBDRFractionFewerRegionsThanMCs(t *testing.T) {
	// 2 regions, 4 MCs, regions of 4 in a 16-core chip: compute directly
	// by brute force over MC placements. Denominator C(16,4)*C(12,4).
	got, err := LBDRValidFraction(16, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: region 1 picks 4 of 16, region 2 picks 4 of 12; cores
	// 0..3 are MCs (labels don't matter, only counts). Count selections
	// where both regions include >=1 MC.
	valid, total := 0, 0
	var rec func(i, placed int, sel []int)
	// enumerate region A as a 4-subset, region B as a 4-subset of the rest
	subsets := func(set []int, k int) [][]int {
		var out [][]int
		var cur []int
		var walk func(start int)
		walk = func(start int) {
			if len(cur) == k {
				out = append(out, append([]int(nil), cur...))
				return
			}
			for i := start; i < len(set); i++ {
				cur = append(cur, set[i])
				walk(i + 1)
				cur = cur[:len(cur)-1]
			}
		}
		walk(0)
		return out
	}
	_ = rec
	all := make([]int, 16)
	for i := range all {
		all[i] = i
	}
	countMC := func(s []int) int {
		n := 0
		for _, v := range s {
			if v < 4 {
				n++
			}
		}
		return n
	}
	for _, a := range subsets(all, 4) {
		rest := make([]int, 0, 12)
		used := map[int]bool{}
		for _, v := range a {
			used[v] = true
		}
		for _, v := range all {
			if !used[v] {
				rest = append(rest, v)
			}
		}
		for _, b := range subsets(rest, 4) {
			total++
			if countMC(a) >= 1 && countMC(b) >= 1 {
				valid++
			}
		}
	}
	want := big.NewRat(int64(valid), int64(total))
	if got.Cmp(want) != 0 {
		t.Fatalf("fraction = %v, brute force %v", got, want)
	}
}

func TestLBDRFractionAllMCs(t *testing.T) {
	// Every core is an MC: every mapping is valid.
	got, err := LBDRValidFraction(8, 8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("fraction = %v, want 1", got)
	}
}

func TestLBDRFractionErrors(t *testing.T) {
	cases := [][4]int{
		{0, 1, 1, 1},   // no cores
		{16, 4, 5, 4},  // apps*threads > cores
		{16, 17, 4, 4}, // more MCs than cores
		{16, 4, 0, 4},  // no apps
		{16, 4, 4, 0},  // no threads
		{16, -1, 4, 4}, // negative MCs
	}
	for _, c := range cases {
		if _, err := LBDRValidFraction(c[0], c[1], c[2], c[3]); err == nil {
			t.Fatalf("parameters %v accepted", c)
		}
	}
}

func TestLBDRFractionMonotoneInMCs(t *testing.T) {
	// More MCs can only make more mappings valid.
	prev := new(big.Rat)
	for mcs := 1; mcs <= 8; mcs++ {
		f, err := LBDRValidFraction(16, mcs, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if f.Cmp(prev) < 0 {
			t.Fatalf("fraction decreased at mcs=%d: %v < %v", mcs, f, prev)
		}
		prev = f
	}
}
