package trace

import (
	"bytes"
	"testing"

	"rair/internal/msg"
)

func benchTrace(n int) *Trace {
	t := &Trace{}
	for i := 0; i < n; i++ {
		t.Add(Event{Cycle: int64(i / 3), App: int32(i % 4), Src: int32(i % 64),
			Dst: int32((i * 7) % 64), Class: msg.Class(i % 2), Size: int32(1 + 4*(i%2))})
	}
	return t
}

func BenchmarkTraceWrite(b *testing.B) {
	t := benchTrace(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := t.Write(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkTraceRead(b *testing.B) {
	t := benchTrace(100000)
	var buf bytes.Buffer
	t.Write(&buf)
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
