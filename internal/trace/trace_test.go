package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"rair/internal/msg"
)

func sample() *Trace {
	t := &Trace{}
	t.Add(Event{Cycle: 0, App: 0, Src: 1, Dst: 2, Class: msg.ClassRequest, Size: 1})
	t.Add(Event{Cycle: 0, App: 1, Src: 3, Dst: 4, Class: msg.ClassResponse, Size: 5})
	t.Add(Event{Cycle: 7, App: 0, Src: 2, Dst: 1, Class: msg.ClassRequest, Size: 1})
	t.Add(Event{Cycle: 100000, App: 2, Src: 63, Dst: 0, Class: msg.ClassResponse, Size: 5})
	return t
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Events, got.Events) {
		t.Fatalf("round trip mismatch:\n%v\n%v", tr.Events, got.Events)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

// Property: arbitrary ordered traces round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(deltas []uint8, seeds []uint16) bool {
		tr := &Trace{}
		cycle := int64(0)
		for i, d := range deltas {
			cycle += int64(d)
			var s uint16
			if i < len(seeds) {
				s = seeds[i]
			}
			tr.Add(Event{
				Cycle: cycle,
				App:   int32(s % 7),
				Src:   int32(s % 64),
				Dst:   int32((s >> 4) % 64),
				Class: msg.Class(s % 2),
				Size:  int32(s%5) + 1,
			})
		}
		var buf bytes.Buffer
		if tr.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(tr.Events) == 0 {
			return got.Len() == 0
		}
		return reflect.DeepEqual(tr.Events, got.Events)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRejectsUnsorted(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{Cycle: 5, Size: 1})
	tr.Add(Event{Cycle: 3, Size: 1})
	if err := tr.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("unsorted trace accepted")
	}
	tr.Sort()
	if err := tr.Write(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated body.
	tr := sample()
	var buf bytes.Buffer
	tr.Write(&buf)
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestValidate(t *testing.T) {
	tr := sample()
	if err := tr.Validate(64); err != nil {
		t.Fatal(err)
	}
	bad := &Trace{}
	bad.Add(Event{Cycle: 0, Src: 70, Dst: 0, Size: 1})
	if bad.Validate(64) == nil {
		t.Fatal("out-of-range node accepted")
	}
	bad2 := &Trace{}
	bad2.Add(Event{Cycle: 5, Size: 1})
	bad2.Add(Event{Cycle: 3, Size: 1})
	if bad2.Validate(64) == nil {
		t.Fatal("unsorted accepted")
	}
	bad3 := &Trace{}
	bad3.Add(Event{Cycle: 0, Size: 0})
	if bad3.Validate(64) == nil {
		t.Fatal("empty packet accepted")
	}
	bad4 := &Trace{}
	bad4.Add(Event{Cycle: 0, Size: 1, Class: 9})
	if bad4.Validate(64) == nil {
		t.Fatal("bad class accepted")
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Capture(1, &msg.Packet{App: 2, Src: 1, Dst: 9, Class: msg.ClassResponse, Size: 5}, 42)
	if r.T.Len() != 1 {
		t.Fatal("capture missed")
	}
	e := r.T.Events[0]
	if e.Cycle != 42 || e.App != 2 || e.Src != 1 || e.Dst != 9 || e.Size != 5 {
		t.Fatalf("event %+v", e)
	}
}

type injected struct {
	node int
	pkt  *msg.Packet
	now  int64
}

func TestPlayerTiming(t *testing.T) {
	tr := sample()
	var got []injected
	p := NewPlayer(tr, func(node int, pkt *msg.Packet, now int64) {
		got = append(got, injected{node, pkt, now})
	})
	for c := int64(0); c <= tr.Duration(); c++ {
		p.Tick(c)
	}
	if !p.Done() {
		t.Fatal("player not done")
	}
	if len(got) != tr.Len() {
		t.Fatalf("injected %d of %d", len(got), tr.Len())
	}
	for i, e := range tr.Events {
		g := got[i]
		if g.now != e.Cycle || g.node != int(e.Src) || g.pkt.Dst != int(e.Dst) || g.pkt.App != int(e.App) {
			t.Fatalf("event %d replayed wrong: %+v vs %+v", i, g, e)
		}
	}
	if p.Injected() != uint64(tr.Len()) {
		t.Fatal("Injected count wrong")
	}
}

func TestPlayerOffset(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{Cycle: 10, Src: 0, Dst: 1, Size: 1})
	var at int64 = -1
	p := NewPlayer(tr, func(_ int, _ *msg.Packet, now int64) { at = now })
	p.Offset = 5
	for c := int64(0); c < 20; c++ {
		p.Tick(c)
	}
	if at != 15 {
		t.Fatalf("injected at %d, want 15", at)
	}
}

func TestPlayerRepeat(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{Cycle: 0, Src: 0, Dst: 1, Size: 1})
	tr.Add(Event{Cycle: 3, Src: 1, Dst: 0, Size: 1})
	n := 0
	p := NewPlayer(tr, func(int, *msg.Packet, int64) { n++ })
	p.Repeat = true
	for c := int64(0); c < 20; c++ {
		p.Tick(c)
	}
	if p.Done() {
		t.Fatal("repeating player reported done")
	}
	if n < 8 {
		t.Fatalf("replayed %d events, want several loops", n)
	}
}

func TestPlayerCatchesUpAfterGap(t *testing.T) {
	// If ticks skip cycles (should not happen, but be robust), all due
	// events fire.
	tr := sample()
	n := 0
	p := NewPlayer(tr, func(int, *msg.Packet, int64) { n++ })
	p.Tick(tr.Duration() + 1)
	if n != tr.Len() {
		t.Fatalf("caught up %d of %d", n, tr.Len())
	}
}

// TestValidateMalformed covers each malformed-field case and pins the
// error messages to include the offending event index, field and value.
func TestValidateMalformed(t *testing.T) {
	cases := []struct {
		name string
		ev   []Event
		want string
	}{
		{"negative cycle", []Event{{Cycle: -3, Size: 1}},
			"event 0: cycle is -3"},
		{"cycle regression", []Event{{Cycle: 7, Size: 1}, {Cycle: 2, Size: 1}},
			"event 1: cycle 2 regresses below event 0's cycle 7"},
		{"negative src", []Event{{Cycle: 0, Src: -1, Size: 1}},
			"event 0: src -1 outside mesh of 16 nodes"},
		{"src out of range", []Event{{Cycle: 0, Src: 16, Size: 1}},
			"event 0: src 16 outside mesh of 16 nodes"},
		{"negative dst", []Event{{Cycle: 0, Dst: -2, Size: 1}},
			"event 0: dst -2 outside mesh of 16 nodes"},
		{"dst out of range", []Event{{Cycle: 0, Dst: 99, Size: 1}},
			"event 0: dst 99 outside mesh of 16 nodes"},
		{"negative size", []Event{{Cycle: 0, Size: -5}},
			"event 0: size -5"},
		{"zero size", []Event{{Cycle: 0, Size: 0}},
			"event 0: size 0"},
		{"negative class", []Event{{Cycle: 0, Size: 1, Class: -1}},
			"event 0: class -1 outside"},
		{"class out of range", []Event{{Cycle: 0, Size: 1, Class: 42}},
			"event 0: class 42 outside"},
	}
	for _, tc := range cases {
		tr := &Trace{Events: tc.ev}
		err := tr.Validate(16)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name the field (want substring %q)", tc.name, err, tc.want)
		}
	}
	// The second event's index is reported, not the first's.
	tr := &Trace{Events: []Event{{Cycle: 0, Size: 1}, {Cycle: 1, Src: 50, Size: 1}}}
	if err := tr.Validate(16); err == nil || !strings.Contains(err.Error(), "event 1:") {
		t.Fatalf("wrong index in %v", err)
	}
}
