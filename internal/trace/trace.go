// Package trace provides packet-level traffic traces: a compact binary
// format, recording from live runs, and cycle-accurate replay. This is the
// trace-driven methodology of the paper's application experiments: traffic
// is captured once from the full-system memory model (standing in for the
// SIMICS+GEMS captures) and replayed identically under every scheme so that
// latency differences come from the network alone.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"rair/internal/msg"
)

// Event is one packet injection.
type Event struct {
	Cycle int64
	App   int32
	Src   int32
	Dst   int32
	Class msg.Class
	Size  int32
}

// Trace is an ordered sequence of injections (non-decreasing cycles).
type Trace struct {
	Events []Event
}

// Len reports the event count.
func (t *Trace) Len() int { return len(t.Events) }

// Duration reports the cycle of the last event (0 when empty).
func (t *Trace) Duration() int64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Cycle
}

// Add appends an event; callers should append in cycle order (Sort fixes
// out-of-order appends).
func (t *Trace) Add(e Event) { t.Events = append(t.Events, e) }

// Sort orders events by cycle (stable, preserving same-cycle order).
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].Cycle < t.Events[j].Cycle })
}

// Validate checks cycle monotonicity and field sanity for a mesh of n
// nodes. Errors name the offending event index, field and value so a bad
// capture can be located without a hex dump.
func (t *Trace) Validate(n int) error {
	var prev int64
	for i, e := range t.Events {
		switch {
		case e.Cycle < 0:
			return fmt.Errorf("trace: event %d: cycle is %d, must be non-negative", i, e.Cycle)
		case e.Cycle < prev:
			return fmt.Errorf("trace: event %d: cycle %d regresses below event %d's cycle %d", i, e.Cycle, i-1, prev)
		case e.Src < 0 || int(e.Src) >= n:
			return fmt.Errorf("trace: event %d: src %d outside mesh of %d nodes", i, e.Src, n)
		case e.Dst < 0 || int(e.Dst) >= n:
			return fmt.Errorf("trace: event %d: dst %d outside mesh of %d nodes", i, e.Dst, n)
		case e.Size < 1:
			return fmt.Errorf("trace: event %d: size %d, packets need at least one flit", i, e.Size)
		case e.Class < 0 || e.Class >= msg.NumClasses:
			return fmt.Errorf("trace: event %d: class %d outside [0,%d)", i, e.Class, msg.NumClasses)
		}
		prev = e.Cycle
	}
	return nil
}

// magic identifies the binary trace format.
var magic = [4]byte{'R', 'A', 'I', 'R'}

const formatVersion = 1

// Write encodes the trace: a header followed by varint-delta records.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(formatVersion); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	var prev int64
	for _, e := range t.Events {
		if e.Cycle < prev {
			return errors.New("trace: events not cycle-ordered; call Sort first")
		}
		for _, v := range []uint64{
			uint64(e.Cycle - prev),
			uint64(e.App),
			uint64(e.Src),
			uint64(e.Dst),
			uint64(e.Class),
			uint64(e.Size),
		} {
			if err := putUvarint(v); err != nil {
				return err
			}
		}
		prev = e.Cycle
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: not a RAIR trace file")
	}
	next := func() (uint64, error) { return binary.ReadUvarint(br) }
	ver, err := next()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	count, err := next()
	if err != nil {
		return nil, err
	}
	const maxEvents = 1 << 30
	if count > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	t := &Trace{Events: make([]Event, 0, count)}
	var cycle int64
	for i := uint64(0); i < count; i++ {
		var vals [6]uint64
		for j := range vals {
			v, err := next()
			if err != nil {
				return nil, fmt.Errorf("trace: event %d field %d: %w", i, j, err)
			}
			vals[j] = v
		}
		cycle += int64(vals[0])
		t.Events = append(t.Events, Event{
			Cycle: cycle,
			App:   int32(vals[1]),
			Src:   int32(vals[2]),
			Dst:   int32(vals[3]),
			Class: msg.Class(vals[4]),
			Size:  int32(vals[5]),
		})
	}
	return t, nil
}

// Recorder captures injected packets into a trace. Hook Capture into the
// traffic source's injection path.
type Recorder struct {
	T Trace
}

// Capture records one packet injection.
func (r *Recorder) Capture(node int, p *msg.Packet, now int64) {
	r.T.Add(Event{
		Cycle: now,
		App:   int32(p.App),
		Src:   int32(p.Src),
		Dst:   int32(p.Dst),
		Class: p.Class,
		Size:  int32(p.Size),
	})
}

// Player replays a trace into a network, injecting each event at its
// recorded cycle (plus Offset). It implements sim.Tickable; tick it before
// the network.
type Player struct {
	trace  *Trace
	inject func(node int, p *msg.Packet, now int64)
	next   int
	nextID uint64
	// Offset shifts all event cycles (e.g. to skip a warmup gap).
	Offset int64
	// Repeat loops the trace when its end is reached, re-basing cycles;
	// 0 plays once.
	Repeat bool
	base   int64
}

// NewPlayer builds a player over a validated trace.
func NewPlayer(t *Trace, inject func(node int, p *msg.Packet, now int64)) *Player {
	return &Player{trace: t, inject: inject}
}

// Done reports whether the trace is exhausted (never true with Repeat).
func (p *Player) Done() bool { return !p.Repeat && p.next >= len(p.trace.Events) }

// Injected reports how many events have been replayed.
func (p *Player) Injected() uint64 { return p.nextID }

// Tick implements sim.Tickable.
func (p *Player) Tick(now int64) {
	for {
		if p.next >= len(p.trace.Events) {
			if !p.Repeat || len(p.trace.Events) == 0 {
				return
			}
			p.next = 0
			p.base = now
		}
		e := p.trace.Events[p.next]
		due := e.Cycle + p.Offset + p.base
		if due > now {
			return
		}
		p.next++
		p.nextID++
		p.inject(int(e.Src), &msg.Packet{
			ID:    p.nextID,
			App:   int(e.App),
			Src:   int(e.Src),
			Dst:   int(e.Dst),
			Class: e.Class,
			Size:  int(e.Size),
		}, now)
	}
}
